
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/test_tensor.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/test_tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ahn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ahn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ahn_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/ahn_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/ahn_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ahn_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/autoencoder/CMakeFiles/ahn_autoencoder.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ahn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ahn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/ahn_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ahn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ahn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
