# Empty dependencies file for test_autoencoder.
# This may be replaced when dependencies are built.
