file(REMOVE_RECURSE
  "CMakeFiles/test_autoencoder.dir/test_autoencoder.cpp.o"
  "CMakeFiles/test_autoencoder.dir/test_autoencoder.cpp.o.d"
  "test_autoencoder"
  "test_autoencoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autoencoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
