# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tensor "/root/repo/build/tests/test_tensor")
set_tests_properties(test_tensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sparse "/root/repo/build/tests/test_sparse")
set_tests_properties(test_sparse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nn "/root/repo/build/tests/test_nn")
set_tests_properties(test_nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_gp "/root/repo/build/tests/test_gp")
set_tests_properties(test_gp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trace "/root/repo/build/tests/test_trace")
set_tests_properties(test_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_solvers "/root/repo/build/tests/test_solvers")
set_tests_properties(test_solvers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_autoencoder "/root/repo/build/tests/test_autoencoder")
set_tests_properties(test_autoencoder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_apps "/root/repo/build/tests/test_apps")
set_tests_properties(test_apps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/tests/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nas "/root/repo/build/tests/test_nas")
set_tests_properties(test_nas PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
