file(REMOVE_RECURSE
  "CMakeFiles/fig5_speedup_hitrate.dir/fig5_speedup_hitrate.cpp.o"
  "CMakeFiles/fig5_speedup_hitrate.dir/fig5_speedup_hitrate.cpp.o.d"
  "fig5_speedup_hitrate"
  "fig5_speedup_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_speedup_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
