# Empty dependencies file for fig5_speedup_hitrate.
# This may be replaced when dependencies are built.
