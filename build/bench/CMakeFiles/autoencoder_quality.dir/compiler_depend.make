# Empty compiler generated dependencies file for autoencoder_quality.
# This may be replaced when dependencies are built.
