file(REMOVE_RECURSE
  "CMakeFiles/autoencoder_quality.dir/autoencoder_quality.cpp.o"
  "CMakeFiles/autoencoder_quality.dir/autoencoder_quality.cpp.o.d"
  "autoencoder_quality"
  "autoencoder_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoencoder_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
