# Empty dependencies file for table3_amg_gpu.
# This may be replaced when dependencies are built.
