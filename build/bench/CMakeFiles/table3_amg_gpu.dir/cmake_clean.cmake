file(REMOVE_RECURSE
  "CMakeFiles/table3_amg_gpu.dir/table3_amg_gpu.cpp.o"
  "CMakeFiles/table3_amg_gpu.dir/table3_amg_gpu.cpp.o.d"
  "table3_amg_gpu"
  "table3_amg_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_amg_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
