# Empty dependencies file for nas_ablation.
# This may be replaced when dependencies are built.
