file(REMOVE_RECURSE
  "CMakeFiles/nas_ablation.dir/nas_ablation.cpp.o"
  "CMakeFiles/nas_ablation.dir/nas_ablation.cpp.o.d"
  "nas_ablation"
  "nas_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
