# Empty dependencies file for bo_vs_grid.
# This may be replaced when dependencies are built.
