file(REMOVE_RECURSE
  "CMakeFiles/bo_vs_grid.dir/bo_vs_grid.cpp.o"
  "CMakeFiles/bo_vs_grid.dir/bo_vs_grid.cpp.o.d"
  "bo_vs_grid"
  "bo_vs_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bo_vs_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
