file(REMOVE_RECURSE
  "libahn_gp.a"
)
