# Empty compiler generated dependencies file for ahn_gp.
# This may be replaced when dependencies are built.
