file(REMOVE_RECURSE
  "CMakeFiles/ahn_gp.dir/bayesopt.cpp.o"
  "CMakeFiles/ahn_gp.dir/bayesopt.cpp.o.d"
  "CMakeFiles/ahn_gp.dir/gaussian_process.cpp.o"
  "CMakeFiles/ahn_gp.dir/gaussian_process.cpp.o.d"
  "CMakeFiles/ahn_gp.dir/linalg.cpp.o"
  "CMakeFiles/ahn_gp.dir/linalg.cpp.o.d"
  "libahn_gp.a"
  "libahn_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
