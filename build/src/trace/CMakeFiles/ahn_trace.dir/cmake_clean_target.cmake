file(REMOVE_RECURSE
  "libahn_trace.a"
)
