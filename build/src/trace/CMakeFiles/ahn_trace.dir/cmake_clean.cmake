file(REMOVE_RECURSE
  "CMakeFiles/ahn_trace.dir/dddg.cpp.o"
  "CMakeFiles/ahn_trace.dir/dddg.cpp.o.d"
  "CMakeFiles/ahn_trace.dir/features.cpp.o"
  "CMakeFiles/ahn_trace.dir/features.cpp.o.d"
  "CMakeFiles/ahn_trace.dir/recorder.cpp.o"
  "CMakeFiles/ahn_trace.dir/recorder.cpp.o.d"
  "CMakeFiles/ahn_trace.dir/sampling.cpp.o"
  "CMakeFiles/ahn_trace.dir/sampling.cpp.o.d"
  "libahn_trace.a"
  "libahn_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
