# Empty compiler generated dependencies file for ahn_trace.
# This may be replaced when dependencies are built.
