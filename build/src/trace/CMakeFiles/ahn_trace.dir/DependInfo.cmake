
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/dddg.cpp" "src/trace/CMakeFiles/ahn_trace.dir/dddg.cpp.o" "gcc" "src/trace/CMakeFiles/ahn_trace.dir/dddg.cpp.o.d"
  "/root/repo/src/trace/features.cpp" "src/trace/CMakeFiles/ahn_trace.dir/features.cpp.o" "gcc" "src/trace/CMakeFiles/ahn_trace.dir/features.cpp.o.d"
  "/root/repo/src/trace/recorder.cpp" "src/trace/CMakeFiles/ahn_trace.dir/recorder.cpp.o" "gcc" "src/trace/CMakeFiles/ahn_trace.dir/recorder.cpp.o.d"
  "/root/repo/src/trace/sampling.cpp" "src/trace/CMakeFiles/ahn_trace.dir/sampling.cpp.o" "gcc" "src/trace/CMakeFiles/ahn_trace.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ahn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/ahn_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ahn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ahn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
