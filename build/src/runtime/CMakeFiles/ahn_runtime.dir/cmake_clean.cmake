file(REMOVE_RECURSE
  "CMakeFiles/ahn_runtime.dir/deployment.cpp.o"
  "CMakeFiles/ahn_runtime.dir/deployment.cpp.o.d"
  "CMakeFiles/ahn_runtime.dir/orchestrator.cpp.o"
  "CMakeFiles/ahn_runtime.dir/orchestrator.cpp.o.d"
  "libahn_runtime.a"
  "libahn_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
