# Empty dependencies file for ahn_runtime.
# This may be replaced when dependencies are built.
