file(REMOVE_RECURSE
  "libahn_runtime.a"
)
