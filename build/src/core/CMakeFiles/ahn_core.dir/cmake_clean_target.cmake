file(REMOVE_RECURSE
  "libahn_core.a"
)
