# Empty dependencies file for ahn_core.
# This may be replaced when dependencies are built.
