file(REMOVE_RECURSE
  "CMakeFiles/ahn_core.dir/config.cpp.o"
  "CMakeFiles/ahn_core.dir/config.cpp.o.d"
  "CMakeFiles/ahn_core.dir/evaluation.cpp.o"
  "CMakeFiles/ahn_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/ahn_core.dir/pipeline.cpp.o"
  "CMakeFiles/ahn_core.dir/pipeline.cpp.o.d"
  "libahn_core.a"
  "libahn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
