# Empty dependencies file for ahn_nas.
# This may be replaced when dependencies are built.
