file(REMOVE_RECURSE
  "CMakeFiles/ahn_nas.dir/baseline_searchers.cpp.o"
  "CMakeFiles/ahn_nas.dir/baseline_searchers.cpp.o.d"
  "CMakeFiles/ahn_nas.dir/search_task.cpp.o"
  "CMakeFiles/ahn_nas.dir/search_task.cpp.o.d"
  "CMakeFiles/ahn_nas.dir/two_d_nas.cpp.o"
  "CMakeFiles/ahn_nas.dir/two_d_nas.cpp.o.d"
  "libahn_nas.a"
  "libahn_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
