file(REMOVE_RECURSE
  "libahn_nas.a"
)
