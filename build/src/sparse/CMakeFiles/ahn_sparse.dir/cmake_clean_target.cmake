file(REMOVE_RECURSE
  "libahn_sparse.a"
)
