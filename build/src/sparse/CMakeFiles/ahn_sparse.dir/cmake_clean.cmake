file(REMOVE_RECURSE
  "CMakeFiles/ahn_sparse.dir/formats.cpp.o"
  "CMakeFiles/ahn_sparse.dir/formats.cpp.o.d"
  "CMakeFiles/ahn_sparse.dir/generators.cpp.o"
  "CMakeFiles/ahn_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/ahn_sparse.dir/spmv.cpp.o"
  "CMakeFiles/ahn_sparse.dir/spmv.cpp.o.d"
  "libahn_sparse.a"
  "libahn_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
