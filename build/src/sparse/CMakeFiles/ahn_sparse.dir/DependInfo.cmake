
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/formats.cpp" "src/sparse/CMakeFiles/ahn_sparse.dir/formats.cpp.o" "gcc" "src/sparse/CMakeFiles/ahn_sparse.dir/formats.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/sparse/CMakeFiles/ahn_sparse.dir/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/ahn_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/sparse/spmv.cpp" "src/sparse/CMakeFiles/ahn_sparse.dir/spmv.cpp.o" "gcc" "src/sparse/CMakeFiles/ahn_sparse.dir/spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ahn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ahn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
