# Empty compiler generated dependencies file for ahn_sparse.
# This may be replaced when dependencies are built.
