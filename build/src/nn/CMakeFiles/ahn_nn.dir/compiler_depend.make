# Empty compiler generated dependencies file for ahn_nn.
# This may be replaced when dependencies are built.
