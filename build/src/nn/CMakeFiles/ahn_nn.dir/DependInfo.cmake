
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/ahn_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/ahn_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/ahn_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/ahn_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/ahn_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/ahn_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/ahn_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/ahn_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/topology.cpp" "src/nn/CMakeFiles/ahn_nn.dir/topology.cpp.o" "gcc" "src/nn/CMakeFiles/ahn_nn.dir/topology.cpp.o.d"
  "/root/repo/src/nn/train.cpp" "src/nn/CMakeFiles/ahn_nn.dir/train.cpp.o" "gcc" "src/nn/CMakeFiles/ahn_nn.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ahn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/ahn_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ahn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
