file(REMOVE_RECURSE
  "libahn_nn.a"
)
