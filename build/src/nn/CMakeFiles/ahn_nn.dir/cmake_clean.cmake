file(REMOVE_RECURSE
  "CMakeFiles/ahn_nn.dir/layers.cpp.o"
  "CMakeFiles/ahn_nn.dir/layers.cpp.o.d"
  "CMakeFiles/ahn_nn.dir/loss.cpp.o"
  "CMakeFiles/ahn_nn.dir/loss.cpp.o.d"
  "CMakeFiles/ahn_nn.dir/network.cpp.o"
  "CMakeFiles/ahn_nn.dir/network.cpp.o.d"
  "CMakeFiles/ahn_nn.dir/optimizer.cpp.o"
  "CMakeFiles/ahn_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/ahn_nn.dir/topology.cpp.o"
  "CMakeFiles/ahn_nn.dir/topology.cpp.o.d"
  "CMakeFiles/ahn_nn.dir/train.cpp.o"
  "CMakeFiles/ahn_nn.dir/train.cpp.o.d"
  "libahn_nn.a"
  "libahn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
