# Empty dependencies file for ahn_common.
# This may be replaced when dependencies are built.
