file(REMOVE_RECURSE
  "libahn_common.a"
)
