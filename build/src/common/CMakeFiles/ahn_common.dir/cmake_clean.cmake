file(REMOVE_RECURSE
  "CMakeFiles/ahn_common.dir/table.cpp.o"
  "CMakeFiles/ahn_common.dir/table.cpp.o.d"
  "libahn_common.a"
  "libahn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
