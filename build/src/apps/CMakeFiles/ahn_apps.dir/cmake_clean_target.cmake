file(REMOVE_RECURSE
  "libahn_apps.a"
)
