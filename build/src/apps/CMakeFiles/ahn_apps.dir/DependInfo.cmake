
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/amg_app.cpp" "src/apps/CMakeFiles/ahn_apps.dir/amg_app.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/amg_app.cpp.o.d"
  "/root/repo/src/apps/application.cpp" "src/apps/CMakeFiles/ahn_apps.dir/application.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/application.cpp.o.d"
  "/root/repo/src/apps/blackscholes_app.cpp" "src/apps/CMakeFiles/ahn_apps.dir/blackscholes_app.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/blackscholes_app.cpp.o.d"
  "/root/repo/src/apps/canneal_app.cpp" "src/apps/CMakeFiles/ahn_apps.dir/canneal_app.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/canneal_app.cpp.o.d"
  "/root/repo/src/apps/cg_app.cpp" "src/apps/CMakeFiles/ahn_apps.dir/cg_app.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/cg_app.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/ahn_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/fft_app.cpp" "src/apps/CMakeFiles/ahn_apps.dir/fft_app.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/fft_app.cpp.o.d"
  "/root/repo/src/apps/fluidanimate_app.cpp" "src/apps/CMakeFiles/ahn_apps.dir/fluidanimate_app.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/fluidanimate_app.cpp.o.d"
  "/root/repo/src/apps/laghos_app.cpp" "src/apps/CMakeFiles/ahn_apps.dir/laghos_app.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/laghos_app.cpp.o.d"
  "/root/repo/src/apps/mg_app.cpp" "src/apps/CMakeFiles/ahn_apps.dir/mg_app.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/mg_app.cpp.o.d"
  "/root/repo/src/apps/miniqmc_app.cpp" "src/apps/CMakeFiles/ahn_apps.dir/miniqmc_app.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/miniqmc_app.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/ahn_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/solvers.cpp" "src/apps/CMakeFiles/ahn_apps.dir/solvers.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/solvers.cpp.o.d"
  "/root/repo/src/apps/streamcluster_app.cpp" "src/apps/CMakeFiles/ahn_apps.dir/streamcluster_app.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/streamcluster_app.cpp.o.d"
  "/root/repo/src/apps/x264_app.cpp" "src/apps/CMakeFiles/ahn_apps.dir/x264_app.cpp.o" "gcc" "src/apps/CMakeFiles/ahn_apps.dir/x264_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/ahn_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ahn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ahn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
