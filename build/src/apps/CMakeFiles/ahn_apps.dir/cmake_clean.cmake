file(REMOVE_RECURSE
  "CMakeFiles/ahn_apps.dir/amg_app.cpp.o"
  "CMakeFiles/ahn_apps.dir/amg_app.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/application.cpp.o"
  "CMakeFiles/ahn_apps.dir/application.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/blackscholes_app.cpp.o"
  "CMakeFiles/ahn_apps.dir/blackscholes_app.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/canneal_app.cpp.o"
  "CMakeFiles/ahn_apps.dir/canneal_app.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/cg_app.cpp.o"
  "CMakeFiles/ahn_apps.dir/cg_app.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/fft.cpp.o"
  "CMakeFiles/ahn_apps.dir/fft.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/fft_app.cpp.o"
  "CMakeFiles/ahn_apps.dir/fft_app.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/fluidanimate_app.cpp.o"
  "CMakeFiles/ahn_apps.dir/fluidanimate_app.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/laghos_app.cpp.o"
  "CMakeFiles/ahn_apps.dir/laghos_app.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/mg_app.cpp.o"
  "CMakeFiles/ahn_apps.dir/mg_app.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/miniqmc_app.cpp.o"
  "CMakeFiles/ahn_apps.dir/miniqmc_app.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/registry.cpp.o"
  "CMakeFiles/ahn_apps.dir/registry.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/solvers.cpp.o"
  "CMakeFiles/ahn_apps.dir/solvers.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/streamcluster_app.cpp.o"
  "CMakeFiles/ahn_apps.dir/streamcluster_app.cpp.o.d"
  "CMakeFiles/ahn_apps.dir/x264_app.cpp.o"
  "CMakeFiles/ahn_apps.dir/x264_app.cpp.o.d"
  "libahn_apps.a"
  "libahn_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
