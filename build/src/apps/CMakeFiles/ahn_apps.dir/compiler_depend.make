# Empty compiler generated dependencies file for ahn_apps.
# This may be replaced when dependencies are built.
