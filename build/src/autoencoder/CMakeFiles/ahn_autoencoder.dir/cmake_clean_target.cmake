file(REMOVE_RECURSE
  "libahn_autoencoder.a"
)
