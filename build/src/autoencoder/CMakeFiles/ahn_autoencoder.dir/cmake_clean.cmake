file(REMOVE_RECURSE
  "CMakeFiles/ahn_autoencoder.dir/autoencoder.cpp.o"
  "CMakeFiles/ahn_autoencoder.dir/autoencoder.cpp.o.d"
  "libahn_autoencoder.a"
  "libahn_autoencoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_autoencoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
