# Empty compiler generated dependencies file for ahn_autoencoder.
# This may be replaced when dependencies are built.
