file(REMOVE_RECURSE
  "CMakeFiles/ahn_baselines.dir/accept.cpp.o"
  "CMakeFiles/ahn_baselines.dir/accept.cpp.o.d"
  "CMakeFiles/ahn_baselines.dir/perforation.cpp.o"
  "CMakeFiles/ahn_baselines.dir/perforation.cpp.o.d"
  "libahn_baselines.a"
  "libahn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
