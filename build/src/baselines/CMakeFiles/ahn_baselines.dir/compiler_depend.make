# Empty compiler generated dependencies file for ahn_baselines.
# This may be replaced when dependencies are built.
