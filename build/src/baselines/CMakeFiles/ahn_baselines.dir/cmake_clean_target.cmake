file(REMOVE_RECURSE
  "libahn_baselines.a"
)
