file(REMOVE_RECURSE
  "CMakeFiles/ahn_tensor.dir/ops.cpp.o"
  "CMakeFiles/ahn_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/ahn_tensor.dir/tensor.cpp.o"
  "CMakeFiles/ahn_tensor.dir/tensor.cpp.o.d"
  "libahn_tensor.a"
  "libahn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
