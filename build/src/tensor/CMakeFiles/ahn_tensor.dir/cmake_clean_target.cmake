file(REMOVE_RECURSE
  "libahn_tensor.a"
)
