# Empty dependencies file for ahn_tensor.
# This may be replaced when dependencies are built.
