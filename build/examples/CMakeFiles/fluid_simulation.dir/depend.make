# Empty dependencies file for fluid_simulation.
# This may be replaced when dependencies are built.
