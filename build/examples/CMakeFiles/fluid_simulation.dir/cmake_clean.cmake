file(REMOVE_RECURSE
  "CMakeFiles/fluid_simulation.dir/fluid_simulation.cpp.o"
  "CMakeFiles/fluid_simulation.dir/fluid_simulation.cpp.o.d"
  "fluid_simulation"
  "fluid_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
