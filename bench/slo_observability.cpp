// SLO + tracing observability bench (docs/OBSERVABILITY.md): gates the
// cluster-wide request-tracing and burn-rate-alerting pipeline end to end.
//
// Phase A — trace propagation + live scrape: a 2-shard cluster serves keyed
// batched requests with head sampling on; the gate requires at least one
// trace id whose spans cover every layer of one request (cluster root →
// route decision → shard serve → batch wait), then scrapes the embedded
// HTTP exposition server over a real socket and requires a valid
// OpenMetrics payload carrying >= 1 exemplar. The scraped body is written
// verbatim to BENCH_slo.prom so CI can re-validate it with
// tools/check_prom.py.
//
// Phase B — burn-rate alerting: the same cluster shape runs twice against a
// p99-style latency SLO with compressed windows (0.3s/1s/3s). The clean run
// must stay silent (zero slo_burn alerts, cluster.slo_burning == 0); the
// fault run (every request takes an injected latency spike far above the
// SLO threshold) must page within the fast window.
//
// Phase C — overhead: best-of-3 wall time for the same request stream with
// observability off (sampling disabled, no SLOs) vs on (default sampling +
// two SLOs). Gate: instrumented <= 1.05x baseline (plus a small absolute
// allowance for timer noise on tiny runs).
//
// Emits BENCH_slo.json and BENCH_slo.prom. Exits non-zero if any gate
// fails, so CI can gate on it.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "nn/topology.hpp"
#include "obs/exposition.hpp"
#include "obs/http_server.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "runtime/cluster.hpp"
#include "runtime/fault_injector.hpp"

namespace {

using namespace ahn;

constexpr std::size_t kInFeatures = 16;
constexpr std::size_t kOutFeatures = 4;
constexpr double kLatencyThreshold = 1e-3;  ///< SLO: served under 1ms modeled

std::shared_ptr<runtime::ServableModel> make_model() {
  Rng rng(11);
  nn::TopologySpec spec;
  spec.num_layers = 2;
  spec.hidden_units = 32;
  nn::Network net = nn::build_surrogate(spec, kInFeatures, kOutFeatures, rng);
  auto m = std::make_shared<runtime::ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  return m;
}

std::vector<obs::SloSpec> bench_slos() {
  obs::SloSpec avail;
  avail.name = "availability";
  avail.kind = obs::SloKind::kAvailability;
  avail.objective = 0.999;
  obs::SloSpec p99;
  p99.name = "p99_latency";
  p99.kind = obs::SloKind::kLatency;
  p99.objective = 0.99;
  p99.threshold_seconds = kLatencyThreshold;
  // Compressed burn windows so one bench second spans the slow horizon.
  p99.fast_window_seconds = 0.3;
  p99.mid_window_seconds = 1.0;
  p99.slow_window_seconds = 3.0;
  avail.fast_window_seconds = 0.3;
  avail.mid_window_seconds = 1.0;
  avail.slow_window_seconds = 3.0;
  return {avail, p99};
}

runtime::ClusterOptions cluster_options(obs::Tracer* tracer,
                                        std::size_t sample_every,
                                        bool with_slos) {
  runtime::ClusterOptions opts;
  opts.shards = 2;
  opts.replication = 2;
  opts.shard_opts.max_batch = 1;              // submits execute inline
  opts.shard_opts.batch_delay_seconds = 0.0;  // no flusher thread
  opts.shard_opts.tracer = tracer;
  opts.shard_opts.trace_sample_every = sample_every;
  if (with_slos) opts.shard_opts.slos = bench_slos();
  return opts;
}

/// One-shot raw-socket HTTP GET against 127.0.0.1:port. Returns the full
/// response (headers + body); empty on connection failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: bench\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string body_of(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

std::size_t count_occurrences(const std::string& text, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t at = text.find(pat); at != std::string::npos;
       at = text.find(pat, at + pat.size())) {
    ++n;
  }
  return n;
}

/// Serves `requests` keyed rows through the cluster; aborts on any failure.
void drive(runtime::ClusterOrchestrator& cluster, const std::vector<Tensor>& rows,
           std::size_t requests, const char* what) {
  for (std::size_t i = 0; i < requests; ++i) {
    auto f = cluster.run_model_batched("surrogate", rows[i % rows.size()],
                                       "req/" + std::to_string(i));
    if (!f.get().is_ok()) {
      std::cout << "FAIL: " << what << " request " << i << " failed\n";
      std::exit(1);
    }
  }
}

/// Serves rows for `seconds` of wall time (Phase B: burn windows are
/// time-based, so the stream must span them). Returns requests served.
std::size_t drive_for(runtime::ClusterOrchestrator& cluster,
                      const std::vector<Tensor>& rows, double seconds,
                      const char* what) {
  Timer wall;
  std::size_t i = 0;
  while (wall.seconds() < seconds) {
    auto f = cluster.run_model_batched("surrogate", rows[i % rows.size()],
                                       "req/" + std::to_string(i));
    if (!f.get().is_ok()) {
      std::cout << "FAIL: " << what << " request " << i << " failed\n";
      std::exit(1);
    }
    ++i;
  }
  return i;
}

std::uint64_t slo_alerts(runtime::ClusterOrchestrator& cluster) {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    total += cluster.shard(s).alerts().raised(obs::AlertKind::kSloBurn);
  }
  return total;
}

}  // namespace

int main() {
  bench::print_header(
      "SLO observability: end-to-end tracing, burn-rate alerts, live scrape",
      "the ROADMAP observability item over the paper's §6.3 serving path");

  Rng rng(3);
  std::vector<Tensor> rows;
  rows.reserve(256);
  for (int i = 0; i < 256; ++i) {
    rows.push_back(Tensor::randn({1, kInFeatures}, rng));
  }

  // --- Phase A: one trace across the cluster + live /metrics scrape. -------
  obs::Tracer tracer;
  runtime::ClusterOrchestrator cluster(
      cluster_options(&tracer, /*sample_every=*/4, /*with_slos=*/true));
  cluster.set_model("surrogate", make_model());
  drive(cluster, rows, 64, "phase A");

  // Gate (a): at least one sampled request's spans cover every layer.
  std::map<std::uint64_t, std::set<std::string>> by_trace;
  for (const obs::SpanRecord& rec : tracer.snapshot().recent) {
    by_trace[rec.trace_id].insert(rec.name);
  }
  const std::vector<std::string> layers = {
      "cluster.run_model_batched", "cluster.route", "serve.run_model_batched",
      "batching.batch_wait"};
  std::size_t full_traces = 0;
  for (const auto& [id, names] : by_trace) {
    bool full = true;
    for (const std::string& layer : layers) full = full && names.count(layer) > 0;
    full_traces += full ? 1 : 0;
  }
  std::cout << "sampled traces: " << by_trace.size() << " (" << full_traces
            << " cover router->shard->batch)\n";

  // Gate (c): live scrape through the embedded HTTP server.
  obs::HttpServer& server = cluster.serve_exposition();
  const std::string metrics_res = http_get(server.port(), "/metrics");
  const std::string healthz_res = http_get(server.port(), "/healthz");
  const std::string slo_res = http_get(server.port(), "/slo");
  const std::string prom_body = body_of(metrics_res);
  const std::size_t exemplars = count_occurrences(prom_body, " # {trace_id=\"");
  const bool scrape_ok =
      metrics_res.find("HTTP/1.1 200") == 0 &&
      metrics_res.find("application/openmetrics-text") != std::string::npos &&
      prom_body.find("# EOF\n") != std::string::npos &&
      prom_body.find("# HELP") != std::string::npos && exemplars >= 1 &&
      healthz_res.find("HTTP/1.1 200") == 0 &&
      slo_res.find("\"p99_latency\"") != std::string::npos;
  std::cout << "live scrape: " << prom_body.size() << " bytes, " << exemplars
            << " exemplars, /healthz+/slo "
            << (scrape_ok ? "ok" : "FAILED") << "\n\n";
  {
    std::ofstream prom("BENCH_slo.prom");
    prom << prom_body;
  }
  std::cout << "wrote BENCH_slo.prom\n\n";

  // --- Phase B: burn alert fires on the fault run, silent on clean. --------
  const double run_seconds = 0.8;

  obs::Tracer clean_tracer;
  runtime::ClusterOrchestrator clean(cluster_options(&clean_tracer, 16, true));
  clean.set_model("surrogate", make_model());
  const std::size_t clean_requests = drive_for(clean, rows, run_seconds, "clean");
  const runtime::ClusterHealth clean_health = clean.cluster_health();
  const std::uint64_t clean_alerts = slo_alerts(clean);
  const double clean_burn = clean_health.merged.gauges.at("cluster.slo_burn_rate");

  obs::Tracer fault_tracer;
  runtime::ClusterOrchestrator faulty(cluster_options(&fault_tracer, 16, true));
  faulty.set_model("surrogate", make_model());
  runtime::FaultSpec fault;
  fault.latency_spike_prob = 1.0;       // every phase draw spikes...
  fault.latency_spike_seconds = 5e-3;   // ...5x past the 1ms SLO threshold
  for (std::size_t s = 0; s < 2; ++s) {
    faulty.shard(s).set_fault_injector(
        std::make_shared<runtime::FaultInjector>(fault));
  }
  const std::size_t fault_requests = drive_for(faulty, rows, run_seconds, "fault");
  const runtime::ClusterHealth fault_health = faulty.cluster_health();
  const std::uint64_t fault_alerts = slo_alerts(faulty);
  const double fault_burn = fault_health.merged.gauges.at("cluster.slo_burn_rate");

  TextTable burn_table({"run", "requests", "slo_burn alerts", "max burn rate",
                        "cluster.slo_burning"});
  burn_table.add_row({"clean", std::to_string(clean_requests),
                      std::to_string(clean_alerts), TextTable::num(clean_burn, 2),
                      TextTable::num(
                          clean_health.merged.gauges.at("cluster.slo_burning"), 0)});
  burn_table.add_row({"latency fault", std::to_string(fault_requests),
                      std::to_string(fault_alerts), TextTable::num(fault_burn, 2),
                      TextTable::num(
                          fault_health.merged.gauges.at("cluster.slo_burning"), 0)});
  std::cout << burn_table.render() << "\n";

  // --- Phase C: observability overhead, best-of-3. -------------------------
  const std::size_t overhead_requests = bench::scaled(6000, 600);
  const auto best_of_3 = [&](bool instrumented) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      obs::Tracer t;
      runtime::ClusterOrchestrator c(cluster_options(
          &t, instrumented ? 16 : 0, instrumented));
      c.set_model("surrogate", make_model());
      Timer wall;
      drive(c, rows, overhead_requests, "overhead");
      best = std::min(best, wall.seconds());
    }
    return best;
  };
  const double base_best = best_of_3(false);
  const double instr_best = best_of_3(true);
  const double overhead_ratio = instr_best / base_best;
  std::cout << "overhead: baseline " << TextTable::num(base_best, 4)
            << "s, instrumented " << TextTable::num(instr_best, 4) << "s ("
            << TextTable::num(overhead_ratio, 3) << "x, target <= 1.05x)\n\n";

  // --- Machine-readable exports. -------------------------------------------
  {
    std::ofstream json("BENCH_slo.json");
    json << "{\n  \"bench\": \"slo_observability\",\n"
         << "  \"traces\": {\"sampled\": " << by_trace.size()
         << ", \"full_router_shard_batch\": " << full_traces << "},\n"
         << "  \"scrape\": {\"bytes\": " << prom_body.size()
         << ", \"exemplars\": " << exemplars << ", \"ok\": "
         << (scrape_ok ? "true" : "false") << "},\n"
         << "  \"clean\": {\"requests\": " << clean_requests
         << ", \"alerts\": " << clean_alerts
         << ", \"burn\": " << TextTable::num(clean_burn, 4) << "},\n"
         << "  \"fault\": {\"requests\": " << fault_requests
         << ", \"alerts\": " << fault_alerts
         << ", \"burn\": " << TextTable::num(fault_burn, 4) << "},\n"
         << "  \"overhead\": {\"baseline_seconds\": "
         << TextTable::num(base_best, 6) << ", \"instrumented_seconds\": "
         << TextTable::num(instr_best, 6) << ", \"ratio\": "
         << TextTable::num(overhead_ratio, 4) << "}\n}\n";
  }
  std::cout << "wrote BENCH_slo.json\n";

  // --- Gates. ---------------------------------------------------------------
  const bool trace_ok = full_traces >= 1;
  const bool alert_ok = clean_alerts == 0 &&
                        clean_health.merged.gauges.at("cluster.slo_burning") == 0.0 &&
                        fault_alerts >= 1 && fault_burn > clean_burn;
  // 5% relative plus 5ms absolute: tiny scaled runs are timer-noise bound.
  const bool overhead_ok = instr_best <= base_best * 1.05 + 5e-3;
  if (!trace_ok) std::cout << "FAIL: no trace covers router->shard->batch\n";
  if (!scrape_ok) std::cout << "FAIL: live /metrics scrape invalid\n";
  if (!alert_ok) std::cout << "FAIL: burn alert gate (clean=" << clean_alerts
                           << " fault=" << fault_alerts << ")\n";
  if (!overhead_ok) std::cout << "FAIL: observability overhead above 5%\n";
  const bool pass = trace_ok && scrape_ok && alert_ok && overhead_ok;
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
