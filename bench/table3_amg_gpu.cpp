// Reproduces Table 3: the AMG application compared three ways —
//   (1) CPU-only: the exact AMG-preconditioned CG solve, measured on host;
//   (2) original code on GPU (the paper uses AMGX): the same solve priced
//       on the accelerator model with the sparse-solver profile, including
//       the redundant work GPU sparse solvers perform for parallelism;
//   (3) Auto-HPCnet on GPU: the searched surrogate on the same model.
//
// Reported rows match the paper: floating-point operations, modeled L2
// cache-miss rate, memory bandwidth, and wall-clock time over the
// evaluation problems. Absolute values are model outputs (see DESIGN.md);
// the paper's shape to check: surrogate has the fewest FLOPs, the lowest
// miss rate, and the best wall clock, with original-on-GPU in between on
// wall clock.

#include <iostream>

#include "apps/amg_app.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace ahn;
  bench::print_header("Table 3: AMG on CPU vs GPU-original (AMGX-like) vs Auto-HPCnet",
                      "paper Table 3");

  core::Config cfg = bench::bench_config();
  for (int i = 1; i < argc; ++i) cfg.apply(argv[i]);
  const core::AutoHPCnet framework(cfg);

  apps::AmgApp app;
  const core::PipelineResult res = framework.run(app);
  const runtime::DeviceModel device;

  // GPU sparse solvers (AMGX) perform extra FP work to expose parallelism
  // (redundant smoother operations, setup re-computation). The paper
  // measures 72.82G vs 30.66G FLOPs (2.4x); this factor models that.
  constexpr double kGpuRedundantWork = 2.4;

  OpCounts cpu_ops, gpu_ops;
  double cpu_seconds = 0.0, gpu_seconds = 0.0;
  for (const std::size_t p : res.eval_problems) {
    const apps::RegionRun run = app.run_region(p);
    cpu_ops += run.region_ops;
    cpu_seconds += run.region_seconds + app.other_part_seconds(p);

    OpCounts scaled = run.region_ops;
    scaled.flops = static_cast<std::uint64_t>(
        static_cast<double>(scaled.flops) * kGpuRedundantWork);
    gpu_ops += scaled;
    // An iterative solver on the device is not one kernel: every SpMV /
    // axpy / reduction in the PCG+V-cycle chain is its own launch. Estimate
    // the launch count from the SpMV-equivalent work in the region (four
    // SpMV-equivalents fused per launch is generous to the GPU port).
    const double spmv_flops = 2.0 * static_cast<double>(app.matrix(p).nnz());
    const double launches =
        std::max(1.0, static_cast<double>(run.region_ops.flops) / spmv_flops / 4.0);
    gpu_seconds += launches * device.spec().launch_latency +
                   device.kernel_seconds(scaled, runtime::sparse_solver_profile()) +
                   device.transfer_seconds(app.matrix(p).bytes()) +
                   app.other_part_seconds(p);
  }

  // Surrogate ops: encoder + NN inference per problem (from the deployed
  // pipeline), wall clock from the Fig-5-style evaluation.
  OpCounts surrogate_ops = res.model.surrogate.net.inference_cost(1);
  if (res.model.encoder != nullptr) surrogate_ops += res.model.encoder->encode_cost(1);
  OpCounts surrogate_total = surrogate_ops;
  surrogate_total.flops *= res.eval_problems.size();
  surrogate_total.bytes_read *= res.eval_problems.size();
  surrogate_total.bytes_written *= res.eval_problems.size();
  const double surrogate_seconds = res.evaluation.surrogate_seconds;

  auto gflops = [](const OpCounts& c) {
    return TextTable::num(static_cast<double>(c.flops) / 1e9, 4) + "G";
  };
  auto miss = [](const OpCounts& c, const runtime::WorkloadProfile& p) {
    return TextTable::num(100.0 * runtime::DeviceModel::modeled_l2_miss_rate(c, p), 2) +
           "%";
  };
  auto bandwidth = [](const OpCounts& c, double secs) {
    return TextTable::num(runtime::DeviceModel::achieved_bandwidth(c, secs) / 1e6, 2) +
           " MB/s";
  };

  TextTable table({"Methods", "CPU-only", "Original code on GPU", "Auto-HPCnet on GPU"});
  table.add_row({"Floating-Point Operations", gflops(cpu_ops), gflops(gpu_ops),
                 gflops(surrogate_total)});
  table.add_row({"L2 level cache-miss rate",
                 miss(cpu_ops, runtime::sparse_solver_profile()),
                 miss(gpu_ops, runtime::sparse_solver_profile()),
                 miss(surrogate_total, runtime::nn_inference_profile())});
  table.add_row({"Mem Bandwidth", bandwidth(cpu_ops, cpu_seconds),
                 bandwidth(gpu_ops, gpu_seconds),
                 bandwidth(surrogate_total, res.evaluation.breakdown.total())});
  table.add_row({"Wall clock time (seconds)", TextTable::num(cpu_seconds, 4),
                 TextTable::num(gpu_seconds, 4), TextTable::num(surrogate_seconds, 4)});
  std::cout << table.render();
  std::cout << "\npaper reference: FLOPs 30.66G / 72.82G / 21.97G, "
               "miss 37.47% / 26.31% / 17.81%, wall 2.47s / 2.11s / 0.51s\n"
            << "speedup of Auto-HPCnet over original-on-GPU: "
            << TextTable::num(gpu_seconds / surrogate_seconds, 2)
            << "x   (paper: 4.14x)\n"
            << "note: at this scaled problem size (dim 64 vs the paper's\n"
               "production AMG) the exact solve is so small that the surrogate's\n"
               "FLOP count exceeds it — the FLOP ordering of Table 3 only emerges\n"
               "at production solver sizes; the miss-rate ordering and the\n"
               "surrogate-beats-both wall-clock ordering are the shapes checked here.\n";
  return 0;
}
