// Multi-shard serving bench (docs/SHARDING.md): aggregate throughput scaling
// and zero-loss shard failover for the ClusterOrchestrator.
//
// Phase A — scaling: the same request stream is served by clusters of 1, 2,
// 4, and 8 shards (round-robin batched path). Each shard owns one modeled
// accelerator, so the cluster finishes its work in max-over-shards modeled
// device time; aggregate device-bound throughput is
//     requests / max_i(device_seconds(shard i))
// which is the quantity that must scale near-linearly with shard count.
// (This testbed is a single-core container: wall-clock cannot show N-way
// parallelism, but per-shard modeled device seconds — the same analytic
// DeviceModel the rest of the benches gate on — can. Requests execute
// inline with batch size 1 so the per-request device cost is constant
// across shard counts and the comparison isolates partitioning.)
//
// Phase B — failover: 4 shards, replication 2, concurrent keyed clients; a
// shard is killed mid-stream. The zero-loss contract (router flips first,
// victim drains, racing submits are resubmitted to a replica) is gated at
// exactly zero lost requests.
//
// Emits BENCH_multi_shard.json (scaling table + failover outcome + the
// merged shard-labeled cluster metrics) and BENCH_multi_shard.prom (the
// merged snapshot through the Prometheus text exposition). Exits non-zero
// if the >=3x @ 4 shards or zero-loss gate fails, so CI can gate on it.

#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "nn/topology.hpp"
#include "obs/export.hpp"
#include "obs/exposition.hpp"
#include "runtime/cluster.hpp"

namespace {

using namespace ahn;

constexpr std::size_t kInFeatures = 16;
constexpr std::size_t kOutFeatures = 4;

std::shared_ptr<runtime::ServableModel> make_model() {
  Rng rng(11);
  nn::TopologySpec spec;
  spec.num_layers = 2;
  spec.hidden_units = 32;
  nn::Network net = nn::build_surrogate(spec, kInFeatures, kOutFeatures, rng);
  auto m = std::make_shared<runtime::ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  return m;
}

runtime::ClusterOptions cluster_options(std::size_t shards) {
  runtime::ClusterOptions opts;
  opts.shards = shards;
  opts.replication = std::min<std::size_t>(2, shards);
  opts.shard_opts.max_batch = 1;              // constant per-request device cost
  opts.shard_opts.batch_delay_seconds = 0.0;  // no flusher thread
  return opts;
}

struct ScalingRow {
  std::size_t shards = 0;
  std::uint64_t requests = 0;
  double wall_seconds = 0.0;
  double max_device_seconds = 0.0;  ///< cluster-critical-path device time
  double modeled_rps = 0.0;
};

ScalingRow run_scaling(std::size_t shards, const std::vector<Tensor>& rows) {
  runtime::ClusterOrchestrator cluster(cluster_options(shards));
  cluster.set_model("surrogate", make_model());

  Timer wall;
  std::vector<std::future<Result<Tensor>>> futures;
  futures.reserve(rows.size());
  for (const Tensor& row : rows) {
    futures.push_back(cluster.run_model_batched("surrogate", row));
  }
  for (auto& f : futures) {
    if (!f.get().is_ok()) {
      std::cout << "FAIL: scaling request failed at " << shards << " shards\n";
      std::exit(1);
    }
  }

  ScalingRow r;
  r.shards = shards;
  r.wall_seconds = wall.seconds();
  const runtime::ClusterHealth h = cluster.cluster_health();
  r.requests = h.requests_served;
  r.modeled_rps = h.modeled_rps;
  for (std::size_t i = 0; i < shards; ++i) {
    r.max_device_seconds = std::max(r.max_device_seconds, cluster.device_seconds(i));
  }
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Multi-shard serving: aggregate throughput scaling + zero-loss failover",
      "the ROADMAP scale-out item over the paper's §6.3 serving path");

  const std::size_t requests = bench::scaled(16000, 1600);
  std::vector<Tensor> rows;
  rows.reserve(requests);
  Rng rng(3);
  for (std::size_t i = 0; i < requests; ++i) {
    rows.push_back(Tensor::randn({1, kInFeatures}, rng));
  }

  // --- Phase A: scaling at 1/2/4/8 shards. ---------------------------------
  std::vector<ScalingRow> scaling;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    scaling.push_back(run_scaling(shards, rows));
  }
  const double base_rps = scaling.front().modeled_rps;

  TextTable table({"shards", "requests", "wall (s)", "max shard device (s)",
                   "aggregate modeled req/s", "speedup"});
  for (const ScalingRow& r : scaling) {
    table.add_row({std::to_string(r.shards), std::to_string(r.requests),
                   TextTable::num(r.wall_seconds, 3),
                   TextTable::num(r.max_device_seconds, 6),
                   TextTable::num(r.modeled_rps, 0),
                   TextTable::num(r.modeled_rps / base_rps, 2) + "x"});
  }
  std::cout << table.render() << "\n";

  const double speedup4 = scaling[2].modeled_rps / base_rps;
  std::cout << "aggregate speedup @ 4 shards: " << TextTable::num(speedup4, 2)
            << "x (target >= 3x)\n\n";

  // --- Phase B: zero-loss shard failure with replica failover. -------------
  constexpr std::size_t kClients = 4;
  const std::size_t per_client = bench::scaled(2000, 400);

  runtime::ClusterOptions fopts = cluster_options(4);
  fopts.shard_opts.max_batch = 4;
  runtime::ClusterOrchestrator cluster(fopts);
  cluster.set_model("surrogate", make_model());

  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> lost{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < per_client; ++i) {
        // Keyed routing: requests follow their tensor key's replica set, so
        // the killed shard's keys must fail over to replicas.
        const std::string key = "req/" + std::to_string(c) + "/" + std::to_string(i);
        auto f = cluster.run_model_batched("surrogate", rows[i % rows.size()], key);
        cluster.flush_batches();
        if (f.get().is_ok()) {
          ok.fetch_add(1);
        } else {
          lost.fetch_add(1);
        }
      }
    });
  }
  // Kill a shard once the stream is genuinely mid-flight (a quarter of the
  // requests resolved), so post-kill traffic must exercise failover.
  const std::size_t total_requests = kClients * per_client;
  while (ok.load() + lost.load() < total_requests / 4) {
    std::this_thread::yield();
  }
  cluster.fail_shard(1);
  for (std::thread& t : clients) t.join();

  const std::size_t total = total_requests;
  runtime::ClusterHealth health = cluster.cluster_health();

  std::cout << "failover run: " << total << " requests, " << ok.load() << " ok, "
            << lost.load() << " lost (target 0)\n"
            << "shards alive after kill:  " << health.shards_alive << "/"
            << health.shards_total << "\n"
            << "failovers recorded:       " << health.failovers << "\n"
            << "cluster p99 latency (s):  " << TextTable::num(health.latency_p99, 9)
            << "\n\n";

  // --- Machine-readable exports. -------------------------------------------
  {
    std::ofstream json("BENCH_multi_shard.json");
    json << "{\n  \"bench\": \"multi_shard\",\n  \"scaling\": [\n";
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      const ScalingRow& r = scaling[i];
      json << "    {\"shards\": " << r.shards << ", \"requests\": " << r.requests
           << ", \"max_shard_device_seconds\": "
           << TextTable::num(r.max_device_seconds, 6)
           << ", \"aggregate_rps\": " << TextTable::num(r.modeled_rps, 1)
           << ", \"speedup\": " << TextTable::num(r.modeled_rps / base_rps, 3)
           << "}" << (i + 1 < scaling.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"speedup_4_shards\": " << TextTable::num(speedup4, 3) << ",\n"
         << "  \"failover\": {\n"
         << "    \"requests\": " << total << ",\n"
         << "    \"lost\": " << lost.load() << ",\n"
         << "    \"failovers\": " << health.failovers << ",\n"
         << "    \"shards_alive\": " << health.shards_alive << ",\n"
         << "    \"shards_total\": " << health.shards_total << "\n"
         << "  },\n"
         << "  \"cluster_metrics\": ";
    obs::ExportOptions eo;
    eo.base_indent = 2;
    obs::export_json(json, health.merged, nullptr, eo);
    json << "\n}\n";
  }
  std::cout << "wrote BENCH_multi_shard.json\n";

  if (!obs::export_prometheus_file("BENCH_multi_shard.prom", health.merged)) {
    std::cout << "FAIL: prometheus export\n";
    return 1;
  }
  std::cout << "wrote BENCH_multi_shard.prom\n";

  const bool scaling_ok = speedup4 >= 3.0;
  const bool failover_ok =
      lost.load() == 0 && ok.load() == total && health.failovers > 0 &&
      health.shards_alive == 3;
  if (!scaling_ok) std::cout << "FAIL: sub-3x aggregate scaling at 4 shards\n";
  if (!failover_ok) std::cout << "FAIL: lost requests or no failover recorded\n";
  const bool pass = scaling_ok && failover_ok;
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
