// End-to-end throughput bench for the perf-kernel layer: (A) surrogate
// training wall-clock with the blocked/packed kernels (GemmImpl::Fast) vs the
// naive reference, and (B) 2D-NAS search wall-clock with batched candidate
// evaluation on a ThreadPool vs the serial loop.
//
// Both comparisons REQUIRE unchanged results: training must reach the same
// validation loss to float tolerance (the kernels reorder no accumulation the
// optimizer can observe across impls beyond the documented blocking order),
// and the pooled search must reproduce the serial incumbent and every search
// step EXACTLY — parallelism is not allowed to change what the search finds.
//
// The speedup gates are dynamic: the kernel gate is 2x with >= 8 hardware
// threads (kernels + scaling) and 1.2x below that (kernels alone), and the
// NAS wall-clock gate only applies with >= 2 hardware threads (on a 1-core
// container the pooled path degenerates to the serial schedule plus queueing
// overhead, so only the identity check gates there).

#include <omp.h>

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "nas/two_d_nas.hpp"
#include "nn/topology.hpp"
#include "nn/train.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace ahn;

/// Low-rank synthetic regression task, same shape family as the app traces.
nas::SearchTask make_task(std::size_t width, std::size_t samples) {
  Rng rng(11);
  const std::size_t rank = 4, out = 6;
  const Tensor basis = Tensor::randn({rank, width}, rng);
  const Tensor w = Tensor::randn({width, out}, rng, 0.2);

  nas::SearchTask task;
  task.data.x = Tensor({samples, width});
  for (std::size_t i = 0; i < samples; ++i) {
    std::vector<double> c(rank);
    for (auto& v : c) v = rng.uniform(-1, 1);
    for (std::size_t j = 0; j < width; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < rank; ++r) acc += c[r] * basis.at(r, j);
      task.data.x.at(i, j) = acc;
    }
  }
  task.data.y = ops::matmul(task.data.x, w);

  auto holdout = std::make_shared<nn::Dataset>();
  std::vector<std::size_t> rows(20);
  std::iota(rows.begin(), rows.end(), samples - 20);
  *holdout = task.data.subset(rows);
  task.evaluate_quality = [holdout](const nas::PipelineModel& pm) {
    double total = 0.0;
    for (std::size_t i = 0; i < holdout->size(); ++i) {
      const std::vector<double> feat(holdout->x.row(i).begin(),
                                     holdout->x.row(i).end());
      const std::vector<double> pred = pm.infer(feat);
      double num = 0.0, den = 0.0;
      for (std::size_t j = 0; j < pred.size(); ++j) {
        const double d = pred[j] - holdout->y.at(i, j);
        num += d * d;
        den += holdout->y.at(i, j) * holdout->y.at(i, j);
      }
      total += std::sqrt(num / (den + 1e-12));
    }
    return total / static_cast<double>(holdout->size());
  };
  return task;
}

nn::TrainResult train_once(const nn::Dataset& data, const nn::TrainOptions& opts) {
  Rng rng(23);
  nn::TopologySpec spec;
  spec.num_layers = 3;
  spec.hidden_units = 128;
  nn::Network net = nn::build_surrogate(spec, data.in_features(),
                                        data.out_features(), rng);
  return nn::train_surrogate(std::move(net), data, opts).result;
}

}  // namespace

int main() {
  bench::print_header("Training + NAS throughput: fast kernels and pooled search",
                      "offline search cost, Table 2 / §7.2 budget");

  const int max_threads = omp_get_max_threads();

  // --- A. surrogate training: naive vs fast kernels. -----------------------
  const nas::SearchTask task = make_task(64, bench::scaled(320, 96));
  nn::TrainOptions topts;
  topts.epochs = bench::scaled(60, 20);
  topts.batch_size = 32;
  topts.patience = topts.epochs;  // fixed work: no early-stop jitter
  topts.seed = 7;

  ops::set_gemm_impl(ops::GemmImpl::Naive);
  const Timer naive_timer;
  const nn::TrainResult naive_res = train_once(task.data, topts);
  const double naive_seconds = naive_timer.seconds();

  ops::set_gemm_impl(ops::GemmImpl::Fast);
  const Timer fast_timer;
  const nn::TrainResult fast_res = train_once(task.data, topts);
  const double fast_seconds = fast_timer.seconds();

  const double train_speedup = naive_seconds / fast_seconds;
  const double val_gap =
      std::abs(fast_res.val_loss - naive_res.val_loss) /
      (std::abs(naive_res.val_loss) + 1e-12);

  // --- B. NAS search: serial vs pooled candidate evaluation. ---------------
  nas::NasOptions nopts;
  nopts.outer_iterations = bench::scaled(2, 1);
  nopts.inner_iterations = bench::scaled(4, 3);
  nopts.k_min = 2;
  nopts.k_max = 12;
  nopts.ae_epochs = bench::scaled(30, 10);
  nopts.eval_batch = 4;

  const Timer serial_timer;
  const nas::NasResult serial = nas::TwoDNas(nopts).search(task);
  const double serial_seconds = serial_timer.seconds();

  runtime::ThreadPool pool(std::max(2, max_threads));
  nopts.pool = &pool;
  const Timer pooled_timer;
  const nas::NasResult pooled = nas::TwoDNas(nopts).search(task);
  const double pooled_seconds = pooled_timer.seconds();
  const double nas_speedup = serial_seconds / pooled_seconds;

  // Pooled search must reproduce the serial search step-for-step.
  bool identical = pooled.steps.size() == serial.steps.size() &&
                   pooled.found_feasible == serial.found_feasible &&
                   pooled.best.quality_error == serial.best.quality_error &&
                   pooled.best.latent_k == serial.best.latent_k;
  for (std::size_t i = 0; identical && i < serial.steps.size(); ++i) {
    identical = pooled.steps[i].latent_k == serial.steps[i].latent_k &&
                pooled.steps[i].spec.num_layers == serial.steps[i].spec.num_layers &&
                pooled.steps[i].spec.hidden_units == serial.steps[i].spec.hidden_units &&
                pooled.steps[i].quality_error == serial.steps[i].quality_error;
  }

  TextTable table({"stage", "baseline (s)", "optimized (s)", "speedup"});
  table.add_row({"surrogate training (naive vs fast GEMM)",
                 TextTable::num(naive_seconds, 3), TextTable::num(fast_seconds, 3),
                 TextTable::num(train_speedup, 2) + "x"});
  table.add_row({"2D NAS (serial vs eval_batch=4 pooled)",
                 TextTable::num(serial_seconds, 3), TextTable::num(pooled_seconds, 3),
                 TextTable::num(nas_speedup, 2) + "x"});
  std::cout << table.render() << "\n";

  std::cout << "threads:                   " << max_threads << "\n"
            << "val loss naive/fast:       " << TextTable::num(naive_res.val_loss, 6)
            << " / " << TextTable::num(fast_res.val_loss, 6) << " (rel gap "
            << TextTable::num(val_gap, 4) << ", tol 0.5)\n"
            << "pooled == serial search:   " << (identical ? "yes" : "NO") << "\n";

  // Gates: kernel speedup always (2x once >= 8 threads can contribute, 1.2x
  // from the kernels alone); NAS wall-clock only when cores can help. The
  // val-loss tolerance is loose on purpose: Fast and Naive use different
  // (each internally deterministic) accumulation orders, so training is only
  // required to land in the same quality regime, while the SEARCH results
  // above must match exactly.
  const double train_target = max_threads >= 8 ? 2.0 : 1.2;
  const double nas_target = max_threads >= 2 ? 1.3 : 0.0;
  const bool ok = train_speedup >= train_target && val_gap <= 0.5 && identical &&
                  (nas_target == 0.0 || nas_speedup >= nas_target);
  std::cout << "train speedup target:      >= "
            << TextTable::num(train_target, 1) << "x\n"
            << "NAS speedup target:        "
            << (nas_target > 0.0
                    ? ">= " + TextTable::num(nas_target, 1) + "x"
                    : "(skipped: single hardware thread)")
            << "\n"
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
