#pragma once
// Shared helpers for the paper-reproduction bench binaries. Every bench
// prints the paper's rows/series as text tables; AHN_BENCH_SCALE in (0, 1]
// shrinks problem counts and search budgets for quick smoke runs.

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/config.hpp"

namespace ahn::bench {

/// Global scale factor from the environment (default 1.0).
[[nodiscard]] inline double scale_factor() {
  if (const char* env = std::getenv("AHN_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) return s;
  }
  return 1.0;
}

[[nodiscard]] inline std::size_t scaled(std::size_t n, std::size_t floor_value = 1) {
  const auto v = static_cast<std::size_t>(static_cast<double>(n) * scale_factor());
  return std::max(floor_value, v);
}

/// The evaluation-wide default configuration used by the paper-figure
/// benches: paper settings (mu = 10%) with laptop-scale search budgets.
[[nodiscard]] inline core::Config bench_config() {
  core::Config cfg;
  cfg.outer_iterations = scaled(3);
  cfg.inner_iterations = scaled(4, 2);
  cfg.valid_problems = scaled(16, 8);
  cfg.eval_problems = scaled(40, 10);
  cfg.num_epoch = scaled(120, 40);
  cfg.retrain_epochs = scaled(250, 60);
  cfg.ae_epochs = scaled(30, 10);
  return cfg;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "(reproduces " << paper_ref << "; scale factor " << scale_factor()
            << ")\n\n";
}

}  // namespace ahn::bench
