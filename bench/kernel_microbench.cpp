// GEMM kernel microbenchmark: blocked/packed kernels (GemmImpl::Fast) vs the
// retained naive reference (GemmImpl::Naive) on the paper's surrogate-sized
// square matmuls. Prints a throughput table, writes machine-readable results
// to BENCH_kernels.json, and exits non-zero when the speedup gates fail so CI
// can gate on it.
//
// Gates (geometric mean over the measured sizes):
//   single-thread   >= 2.0x         (pure kernel win, no parallelism)
//   all threads     >= min(4.0x, 2.0 * omp_get_max_threads())
// The full-thread target is capped below 4x on machines with too few cores to
// reach it from scaling; on a 1-core container both gates coincide at 2x.

#include <omp.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace ahn;

struct SizeResult {
  std::size_t n = 0;
  double naive_seconds = 0.0;   // best-of-reps, single thread
  double fast_1t_seconds = 0.0;
  double fast_mt_seconds = 0.0; // best-of-reps, all threads
  [[nodiscard]] double speedup_1t() const { return naive_seconds / fast_1t_seconds; }
  [[nodiscard]] double speedup_mt() const { return naive_seconds / fast_mt_seconds; }
  [[nodiscard]] double gflops_mt() const {
    return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
           static_cast<double>(n) / fast_mt_seconds / 1e9;
  }
};

volatile double g_sink = 0.0;  // keeps the products live under -O3

/// Best wall-clock over `reps` runs of C = A * B at the current thread count.
double best_of(const Tensor& a, const Tensor& b, std::size_t reps) {
  g_sink = ops::matmul(a, b).at(0, 0);  // untimed warm-up: pack buffers, pages
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const Timer t;
    const Tensor c = ops::matmul(a, b);
    best = std::min(best, t.seconds());
    g_sink = c.at(0, 0);
  }
  return best;
}

double geomean(const std::vector<double>& xs) {
  double acc = 0.0;
  for (const double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace

int main() {
  bench::print_header("GEMM kernel microbench: blocked+packed vs naive",
                      "the training/inference kernel cost model (§5, §7.3)");

  const int max_threads = omp_get_max_threads();
  const std::size_t reps = std::max<std::size_t>(2, bench::scaled(5, 2));
  const std::vector<std::size_t> sizes{256, 512, 1024};

  std::vector<SizeResult> results;
  for (const std::size_t n : sizes) {
    Rng rng(17 + n);
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    SizeResult r;
    r.n = n;

    omp_set_num_threads(1);
    ops::set_gemm_impl(ops::GemmImpl::Naive);
    r.naive_seconds = best_of(a, b, reps);
    ops::set_gemm_impl(ops::GemmImpl::Fast);
    r.fast_1t_seconds = best_of(a, b, reps);

    omp_set_num_threads(max_threads);
    r.fast_mt_seconds =
        max_threads > 1 ? best_of(a, b, reps) : r.fast_1t_seconds;
    results.push_back(r);
  }
  omp_set_num_threads(max_threads);

  TextTable table({"n", "naive 1T (s)", "fast 1T (s)", "fast all-T (s)",
                   "speedup 1T", "speedup all-T", "GFLOP/s"});
  std::vector<double> sp1, spm;
  for (const SizeResult& r : results) {
    sp1.push_back(r.speedup_1t());
    spm.push_back(r.speedup_mt());
    table.add_row({std::to_string(r.n), TextTable::num(r.naive_seconds, 4),
                   TextTable::num(r.fast_1t_seconds, 4),
                   TextTable::num(r.fast_mt_seconds, 4),
                   TextTable::num(r.speedup_1t(), 2) + "x",
                   TextTable::num(r.speedup_mt(), 2) + "x",
                   TextTable::num(r.gflops_mt(), 1)});
  }
  std::cout << table.render() << "\n";

  const double geo_1t = geomean(sp1);
  const double geo_mt = geomean(spm);
  const double target_1t = 2.0;
  const double target_mt = std::min(4.0, 2.0 * static_cast<double>(max_threads));
  std::cout << "threads:                 " << max_threads << "\n"
            << "geomean speedup 1T:      " << TextTable::num(geo_1t, 2)
            << "x (target >= " << TextTable::num(target_1t, 1) << "x)\n"
            << "geomean speedup all-T:   " << TextTable::num(geo_mt, 2)
            << "x (target >= " << TextTable::num(target_mt, 1) << "x)\n";

  const bool ok = geo_1t >= target_1t && geo_mt >= target_mt;

  std::ofstream json("BENCH_kernels.json");
  json << "{\n  \"threads\": " << max_threads << ",\n  \"reps\": " << reps
       << ",\n  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    json << "    {\"n\": " << r.n << ", \"naive_seconds\": " << r.naive_seconds
         << ", \"fast_1t_seconds\": " << r.fast_1t_seconds
         << ", \"fast_mt_seconds\": " << r.fast_mt_seconds
         << ", \"speedup_1t\": " << r.speedup_1t()
         << ", \"speedup_mt\": " << r.speedup_mt() << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"geomean_speedup_1t\": " << geo_1t
       << ",\n  \"geomean_speedup_all_threads\": " << geo_mt
       << ",\n  \"target_1t\": " << target_1t
       << ",\n  \"target_all_threads\": " << target_mt
       << ",\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
  json.close();
  std::cout << "wrote BENCH_kernels.json\n";

  std::cout << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
