// GEMM kernel microbenchmark: blocked/packed kernels (GemmImpl::Fast) vs the
// retained naive reference (GemmImpl::Naive) on the paper's surrogate-sized
// square matmuls. Prints a throughput table, writes machine-readable results
// to BENCH_kernels.json, and exits non-zero when the speedup gates fail so CI
// can gate on it.
//
// Gates (geometric mean over the measured sizes):
//   single-thread   >= 2.0x         (pure kernel win, no parallelism)
//   all threads     >= min(4.0x, 2.0 * omp_get_max_threads())
// The full-thread target is capped below 4x on machines with too few cores to
// reach it from scaling; on a 1-core container both gates coincide at 2x.

#include <omp.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernel_select.hpp"
#include "tensor/ops.hpp"
#include "tensor/quantize.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace ahn;

struct SizeResult {
  std::size_t n = 0;
  double naive_seconds = 0.0;   // best-of-reps, single thread
  double fast_1t_seconds = 0.0;
  double fast_mt_seconds = 0.0; // best-of-reps, all threads
  [[nodiscard]] double speedup_1t() const { return naive_seconds / fast_1t_seconds; }
  [[nodiscard]] double speedup_mt() const { return naive_seconds / fast_mt_seconds; }
  [[nodiscard]] double gflops_mt() const {
    return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
           static_cast<double>(n) / fast_mt_seconds / 1e9;
  }
};

volatile double g_sink = 0.0;  // keeps the products live under -O3

/// Best wall-clock over `reps` runs of C = A * B at the current thread count.
double best_of(const Tensor& a, const Tensor& b, std::size_t reps) {
  g_sink = ops::matmul(a, b).at(0, 0);  // untimed warm-up: pack buffers, pages
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const Timer t;
    const Tensor c = ops::matmul(a, b);
    best = std::min(best, t.seconds());
    g_sink = c.at(0, 0);
  }
  return best;
}

double geomean(const std::vector<double>& xs) {
  double acc = 0.0;
  for (const double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

// ----------------------------------------------------- skinny served shapes
// The shapes serving actually runs: batch M x small-hidden (N, K) dense
// forwards, where the Goto blocking was never the design point. Measured
// single-thread against the per-shape KernelSelector's pick (ROADMAP item 5;
// int8 picks include the activation-quantize pass, i.e. true served cost).

struct SkinnyResult {
  std::size_t m = 0, n = 0, k = 0;
  double fast_seconds = 0.0;      // fp32 blocked path
  double selected_seconds = 0.0;  // KernelSelector's pick
  ops::KernelChoice choice = ops::KernelChoice::kFp32Fast;
  [[nodiscard]] double speedup() const { return fast_seconds / selected_seconds; }
};

/// Best per-call seconds of `fn` with enough inner iterations to make each
/// measurement a few hundred microseconds.
template <typename F>
double best_of_calls(F&& fn, std::size_t flops_per_call, std::size_t reps) {
  const auto iters = std::max<std::size_t>(
      1, static_cast<std::size_t>(4.0e6 / static_cast<double>(std::max<std::size_t>(flops_per_call, 1))));
  fn();  // warm-up
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const Timer t;
    for (std::size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, t.seconds() / static_cast<double>(iters));
  }
  return best;
}

SkinnyResult run_skinny(std::size_t m, std::size_t n, std::size_t k, std::size_t reps) {
  Rng rng(101 + m * 131 + n * 7 + k);
  std::vector<double> a(m * k), w(k * n), bias(n), c(m * n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : w) v = rng.uniform(-1.0, 1.0);
  for (auto& v : bias) v = rng.uniform(-0.5, 0.5);

  SkinnyResult r;
  r.m = m;
  r.n = n;
  r.k = k;
  const std::size_t flops = 2 * m * n * k;

  r.fast_seconds = best_of_calls(
      [&] {
        ops::detail::gemm(false, false, m, n, k, a.data(), w.data(), c.data(),
                          bias.data(), ops::EpilogueAct::None);
        g_sink = c[0];
      },
      flops, reps);

  r.choice = ops::KernelSelector::instance().choose(m, n, k, /*allow_int8=*/true);
  if (ops::kernel_is_int8(r.choice)) {
    const quant::QuantParams aq = quant::params_from_range(-1.0, 1.0);
    const quant::QuantParams wq = quant::params_symmetric(1.0);
    std::vector<std::int16_t> a16(m * k), w16(k * n), wt16(n * k);
    quant::quantize(w, wq, w16.data());
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t j = 0; j < n; ++j) wt16[j * k + p] = w16[p * n + j];
    }
    std::vector<std::int32_t> colsum(n, 0);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t p = 0; p < k; ++p) colsum[j] += wt16[j * k + p];
    }
    const auto kind = r.choice == ops::KernelChoice::kInt8Row ? quant::Int8Kernel::Row
                                                              : quant::Int8Kernel::Dot;
    r.selected_seconds = best_of_calls(
        [&] {
          quant::quantize(a, aq, a16.data());  // served cost includes this pass
          quant::i8_gemm(kind, m, n, k, a16.data(), wt16.data(), w16.data(),
                         colsum.data(), aq, wq, bias.data(), ops::EpilogueAct::None,
                         c.data());
          g_sink = c[0];
        },
        flops, reps);
  } else if (r.choice == ops::KernelChoice::kFp32Naive) {
    r.selected_seconds = best_of_calls(
        [&] {
          for (std::size_t i = 0; i < m; ++i) {
            double* crow = c.data() + i * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] = bias[j];
            const double* arow = a.data() + i * k;
            for (std::size_t p = 0; p < k; ++p) {
              const double av = arow[p];
              const double* wrow = w.data() + p * n;
              for (std::size_t j = 0; j < n; ++j) crow[j] += av * wrow[j];
            }
          }
          g_sink = c[0];
        },
        flops, reps);
  } else {
    r.selected_seconds = r.fast_seconds;
  }
  return r;
}

}  // namespace

int main() {
  bench::print_header("GEMM kernel microbench: blocked+packed vs naive",
                      "the training/inference kernel cost model (§5, §7.3)");

  const int max_threads = omp_get_max_threads();
  const std::size_t reps = std::max<std::size_t>(2, bench::scaled(5, 2));
  const std::vector<std::size_t> sizes{256, 512, 1024};

  std::vector<SizeResult> results;
  for (const std::size_t n : sizes) {
    Rng rng(17 + n);
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    SizeResult r;
    r.n = n;

    omp_set_num_threads(1);
    ops::set_gemm_impl(ops::GemmImpl::Naive);
    r.naive_seconds = best_of(a, b, reps);
    ops::set_gemm_impl(ops::GemmImpl::Fast);
    r.fast_1t_seconds = best_of(a, b, reps);

    omp_set_num_threads(max_threads);
    r.fast_mt_seconds =
        max_threads > 1 ? best_of(a, b, reps) : r.fast_1t_seconds;
    results.push_back(r);
  }
  omp_set_num_threads(max_threads);

  TextTable table({"n", "naive 1T (s)", "fast 1T (s)", "fast all-T (s)",
                   "speedup 1T", "speedup all-T", "GFLOP/s"});
  std::vector<double> sp1, spm;
  for (const SizeResult& r : results) {
    sp1.push_back(r.speedup_1t());
    spm.push_back(r.speedup_mt());
    table.add_row({std::to_string(r.n), TextTable::num(r.naive_seconds, 4),
                   TextTable::num(r.fast_1t_seconds, 4),
                   TextTable::num(r.fast_mt_seconds, 4),
                   TextTable::num(r.speedup_1t(), 2) + "x",
                   TextTable::num(r.speedup_mt(), 2) + "x",
                   TextTable::num(r.gflops_mt(), 1)});
  }
  std::cout << table.render() << "\n";

  const double geo_1t = geomean(sp1);
  const double geo_mt = geomean(spm);
  const double target_1t = 2.0;
  const double target_mt = std::min(4.0, 2.0 * static_cast<double>(max_threads));
  std::cout << "threads:                 " << max_threads << "\n"
            << "geomean speedup 1T:      " << TextTable::num(geo_1t, 2)
            << "x (target >= " << TextTable::num(target_1t, 1) << "x)\n"
            << "geomean speedup all-T:   " << TextTable::num(geo_mt, 2)
            << "x (target >= " << TextTable::num(target_mt, 1) << "x)\n";

  // Skinny served-shape suite: single-thread, per-shape selector vs the
  // blocked fp32 path it would otherwise always take.
  omp_set_num_threads(1);
  ops::set_gemm_impl(ops::GemmImpl::Fast);
  const std::vector<std::size_t> skinny_m{1, 8, 32, 128};
  const std::vector<std::pair<std::size_t, std::size_t>> skinny_nk{
      {16, 16}, {64, 64}, {128, 128}, {32, 128}, {128, 32}};
  std::vector<SkinnyResult> skinny;
  for (const std::size_t m : skinny_m) {
    for (const auto& [n, k] : skinny_nk) skinny.push_back(run_skinny(m, n, k, reps));
  }
  omp_set_num_threads(max_threads);

  TextTable skinny_table({"M", "N", "K", "fp32-fast (s)", "selected (s)",
                          "kernel", "speedup"});
  std::vector<double> skinny_sp;
  for (const SkinnyResult& r : skinny) {
    skinny_sp.push_back(r.speedup());
    skinny_table.add_row({std::to_string(r.m), std::to_string(r.n), std::to_string(r.k),
                          TextTable::num(r.fast_seconds, 4),
                          TextTable::num(r.selected_seconds, 4),
                          ops::kernel_choice_name(r.choice),
                          TextTable::num(r.speedup(), 2) + "x"});
  }
  std::cout << "\nskinny served shapes (single thread, selector vs fp32 fast):\n"
            << skinny_table.render() << "\n";
  const double skinny_geo = geomean(skinny_sp);
  const double skinny_target = 1.0;  // selector must never lose to always-fast
  std::cout << "geomean speedup skinny:  " << TextTable::num(skinny_geo, 2)
            << "x (target >= " << TextTable::num(skinny_target, 2) << "x)\n";

  const bool ok =
      geo_1t >= target_1t && geo_mt >= target_mt && skinny_geo >= skinny_target;

  std::ofstream json("BENCH_kernels.json");
  json << "{\n  \"threads\": " << max_threads << ",\n  \"reps\": " << reps
       << ",\n  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    json << "    {\"n\": " << r.n << ", \"naive_seconds\": " << r.naive_seconds
         << ", \"fast_1t_seconds\": " << r.fast_1t_seconds
         << ", \"fast_mt_seconds\": " << r.fast_mt_seconds
         << ", \"speedup_1t\": " << r.speedup_1t()
         << ", \"speedup_mt\": " << r.speedup_mt() << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"skinny\": [\n";
  for (std::size_t i = 0; i < skinny.size(); ++i) {
    const SkinnyResult& r = skinny[i];
    json << "    {\"m\": " << r.m << ", \"n\": " << r.n << ", \"k\": " << r.k
         << ", \"fast_seconds\": " << r.fast_seconds
         << ", \"selected_seconds\": " << r.selected_seconds << ", \"kernel\": \""
         << ops::kernel_choice_name(r.choice) << "\", \"speedup\": " << r.speedup()
         << "}" << (i + 1 < skinny.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"geomean_speedup_1t\": " << geo_1t
       << ",\n  \"geomean_speedup_all_threads\": " << geo_mt
       << ",\n  \"geomean_speedup_skinny\": " << skinny_geo
       << ",\n  \"target_1t\": " << target_1t
       << ",\n  \"target_all_threads\": " << target_mt
       << ",\n  \"target_skinny\": " << skinny_target
       << ",\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
  json.close();
  std::cout << "wrote BENCH_kernels.json\n";

  std::cout << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
