// Reproduces §7.3 "Overhead Analysis": the offline phase breakdown (trace /
// sample generation, Bayesian optimization, autoencoder training) and the
// online inference breakdown (fetch / encode / load / run), whose paper
// reference is 21.2% / 10.1% / 1.6% / 67.1% of online time.

#include <iostream>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace ahn;
  bench::print_header("Overhead analysis (offline phases, online breakdown)",
                      "paper §7.3");

  core::Config cfg = bench::bench_config();
  for (int i = 1; i < argc; ++i) cfg.apply(argv[i]);
  const core::AutoHPCnet framework(cfg);

  // A sparse-input app (where the encoder matters) and a dense one.
  const std::vector<std::string> names{"CG", "fluidanimate", "miniQMC"};

  TextTable offline({"app", "sample gen (s)", "BO search (s)", "AE training (s)",
                     "offline total (s)"});
  TextTable online({"app", "fetch", "encode", "load", "run"});
  double fetch = 0, encode = 0, load = 0, run = 0;

  for (const std::string& name : names) {
    auto app = apps::make_application(name);
    const core::PipelineResult res = framework.run(*app);
    offline.add_row({name, TextTable::num(res.offline.sample_generation_seconds, 3),
                     TextTable::num(res.offline.search_seconds, 3),
                     TextTable::num(res.offline.autoencoder_seconds, 3),
                     TextTable::num(res.offline.total(), 3)});
    const core::OnlineBreakdown& b = res.evaluation.breakdown;
    const double total = std::max(b.total(), 1e-30);
    online.add_row({name, TextTable::num(100.0 * b.fetch / total, 1) + "%",
                    TextTable::num(100.0 * b.encode / total, 1) + "%",
                    TextTable::num(100.0 * b.load / total, 1) + "%",
                    TextTable::num(100.0 * b.run / total, 1) + "%"});
    fetch += b.fetch;
    encode += b.encode;
    load += b.load;
    run += b.run;
  }

  std::cout << "offline phases (paper: trace gen 24-59 min, BO 6-13 h, AE 1.4-2.2 h\n"
               "on a DGX-1; laptop-scale budgets here — compare the ordering:\n"
               "BO dominates, then AE, then sample generation):\n\n"
            << offline.render() << "\n";

  const double total = std::max(fetch + encode + load + run, 1e-30);
  std::cout << "online breakdown per app:\n\n" << online.render() << "\n";
  TextTable avg({"phase", "measured", "paper"});
  avg.add_row({"(1) fetch input to device", TextTable::num(100.0 * fetch / total, 1) + "%",
               "21.2%"});
  avg.add_row({"(2) encode to low-dim features",
               TextTable::num(100.0 * encode / total, 1) + "%", "10.1%"});
  avg.add_row({"(3) load pre-trained model", TextTable::num(100.0 * load / total, 1) + "%",
               "1.6%"});
  avg.add_row({"(4) run surrogate + retrieve",
               TextTable::num(100.0 * run / total, 1) + "%", "67.1%"});
  std::cout << "average online-time split:\n\n" << avg.render();
  return 0;
}
