// Supports §4.2: sweeps the autoencoder latent dimension K on the CG
// application's sparse inputs and reports the Eqn-1 miss fraction, the
// compression ratio, and the modeled online encode cost — the trade-off the
// outer Bayesian loop navigates. Also demonstrates the sparse-input path's
// footprint saving (the "14x" blow-up §2 quotes for NPB CG).

#include <iostream>
#include <numeric>

#include "apps/cg_app.hpp"
#include "autoencoder/autoencoder.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "runtime/device.hpp"

int main() {
  using namespace ahn;
  bench::print_header("Autoencoder quality vs compression (Eqn 1 sweep)",
                      "paper §4.2 and the sparse-input design");

  apps::CgApp app;
  const std::size_t problems = bench::scaled(150, 40);
  app.generate_problems(problems, 7);
  std::vector<std::size_t> ids(problems);
  std::iota(ids.begin(), ids.end(), 0);
  const sparse::Csr x = app.sparse_input_batch(ids);

  std::cout << "CG input features: " << x.cols() << " wide, CSR batch density "
            << TextTable::num(100.0 * x.density(), 2) << "%\n"
            << "dense footprint " << x.dense_bytes() / 1024 << " KiB vs CSR "
            << x.bytes() / 1024 << " KiB  ("
            << TextTable::num(static_cast<double>(x.dense_bytes()) /
                                  static_cast<double>(x.bytes()), 1)
            << "x blow-up if densified; paper quotes 14x for NPB CG)\n\n";

  const runtime::DeviceModel device;
  TextTable table({"K", "compression", "Eqn-1 miss", "meets 0.25 bound",
                   "encode us/problem", "train s"});
  for (const std::size_t k : {4u, 8u, 16u, 32u, 64u}) {
    autoencoder::AutoencoderConfig cfg;
    cfg.latent_dim = k;
    cfg.epochs = bench::scaled(60, 20);
    cfg.encoding_loss_bound = 0.25;
    const Timer timer;
    autoencoder::Autoencoder ae(x.cols(), cfg);
    const autoencoder::AutoencoderReport rep = ae.train_sparse(x);
    const double train_s = timer.seconds();
    const double encode_us =
        1e6 * device.kernel_seconds(ae.encode_cost(1), runtime::nn_inference_profile());
    table.add_row({std::to_string(k),
                   TextTable::num(static_cast<double>(x.cols()) / k, 1) + "x",
                   TextTable::num(rep.miss_fraction, 4),
                   rep.meets_bound ? "yes" : "no", TextTable::num(encode_us, 2),
                   TextTable::num(train_s, 2)});
  }
  std::cout << table.render()
            << "\nexpected shape: CG's inputs have a fixed sparsity pattern and\n"
               "low-rank variation, so even small K reconstructs within the Eqn-1\n"
               "bound once trained — exactly why feature reduction wins here —\n"
               "while the encode cost (f_c share) grows with K.\n";
  return 0;
}
