// Reproduces Figure 5: whole-application speedup (Eqn 2) and prediction hit
// rate (Eqn 3) of Auto-HPCnet surrogates across the 11 applications of
// Table 2, plus the harmonic-mean speedup the paper headlines (5.50x).
//
// The paper evaluates 2000 input problems per app on a DGX-1; this harness
// runs the identical pipeline at laptop scale (see DESIGN.md for the
// device-model substitution). Shapes to compare: Blackscholes should lead,
// every app should beat 1x, and MG/Canneal/streamcluster/AMG are the apps
// whose hit rate may dip below 100%.

#include <iostream>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace ahn;
  bench::print_header("Figure 5: Auto-HPCnet speedup and HitRate",
                      "paper Fig. 5 and the 5.50x harmonic-mean claim");

  core::Config cfg = bench::bench_config();
  for (int i = 1; i < argc; ++i) cfg.apply(argv[i]);
  const core::AutoHPCnet framework(cfg);

  TextTable table({"app", "type", "replaced function", "speedup", "HitRate",
                   "mean QoI err", "K", "topology"});
  std::vector<double> speedups;
  for (const std::string& name : apps::application_names()) {
    auto app = apps::make_application(name);
    const core::PipelineResult res = framework.run(*app);
    table.add_row({app->name(), apps::app_type_name(app->type()),
                   app->replaced_function(),
                   TextTable::num(res.evaluation.speedup) + "x",
                   TextTable::num(100.0 * res.evaluation.hit_rate, 1) + "%",
                   TextTable::num(res.evaluation.mean_qoi_error, 4),
                   res.model.latent_k > 0 ? std::to_string(res.model.latent_k) : "full",
                   res.model.spec.describe()});
    speedups.push_back(res.evaluation.speedup);
    std::cout << "  [" << name << "] done: speedup "
              << TextTable::num(res.evaluation.speedup) << "x, hit rate "
              << TextTable::num(100.0 * res.evaluation.hit_rate, 1) << "%\n" << std::flush;
  }

  std::cout << "\n" << table.render();
  std::cout << "\nharmonic-mean speedup: " << TextTable::num(harmonic_mean(speedups), 2)
            << "x   (paper: 5.50x, range 1.89x - 16.8x)\n";
  return 0;
}
