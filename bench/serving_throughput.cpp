// Serving-throughput bench for the concurrent batched runtime (§6.3 path).
//
// Compares aggregate single-row inference throughput of:
//   A. legacy      — one client thread driving the Listing-1 sync loop
//                    (put_tensor -> run_model -> unpack_tensor per request),
//                    i.e. the original one-inference-at-a-time orchestrator;
//   B. concurrent  — 8 client threads issuing the same requests through the
//                    micro-batching path (run_model_batched), which
//                    coalesces rows per model into one GEMM and amortizes
//                    the fetch/encode/load phases (§7.3).
//
// Prints measured wall-clock throughput and the modeled per-request online
// latency, and verifies the batched outputs are bitwise-identical to the
// per-row sync outputs. Exits non-zero if the ≥4x throughput target or the
// identity check fails, so CI can gate on it.

#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "nn/topology.hpp"
#include "obs/export.hpp"
#include "obs/exposition.hpp"
#include "runtime/orchestrator.hpp"

namespace {

using namespace ahn;

std::shared_ptr<runtime::ServableModel> make_model(std::size_t in, std::size_t out,
                                                   std::size_t hidden) {
  Rng rng(11);
  nn::TopologySpec spec;
  spec.num_layers = 2;
  spec.hidden_units = hidden;
  nn::Network net = nn::build_surrogate(spec, in, out, rng);
  auto m = std::make_shared<runtime::ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  return m;
}

}  // namespace

int main() {
  bench::print_header("Serving throughput: sync single-client vs 8 threads + batching",
                      "the §6.3 deployment path under concurrent load");

  constexpr std::size_t kInFeatures = 16;
  constexpr std::size_t kOutFeatures = 4;
  constexpr std::size_t kThreads = 8;
  const std::size_t requests = bench::scaled(40000, 4000);
  const std::size_t per_thread = requests / kThreads;
  const std::size_t total = per_thread * kThreads;  // divisible request count

  runtime::OrchestratorOptions opts;
  opts.max_batch = 64;
  opts.batch_delay_seconds = 200e-6;
  // Wall-clock here must honor the analytic accelerator (this testbed has no
  // real device): every executed batch occupies the modeled device for its
  // modeled online time, so the serial path pays per-request fetch/load/
  // launch latencies that the batched path amortizes (§7.3).
  opts.simulate_device_occupancy = true;
  runtime::Orchestrator orc(runtime::DeviceModel{}, opts);
  orc.set_model("surrogate", make_model(kInFeatures, kOutFeatures, 32));

  // Distinct deterministic inputs, reused by both modes.
  std::vector<Tensor> rows;
  rows.reserve(total);
  Rng rng(3);
  for (std::size_t i = 0; i < total; ++i) {
    rows.push_back(Tensor::randn({1, kInFeatures}, rng));
  }

  // --- A. legacy sync loop: one client, one request at a time. -------------
  runtime::Client client(orc);
  std::vector<Tensor> sync_outputs;
  sync_outputs.reserve(total);
  Timer sync_timer;
  for (std::size_t i = 0; i < total; ++i) {
    client.put_tensor("in", rows[i]);
    if (!client.run_model("surrogate", "in", "out").is_ok()) return 1;
    sync_outputs.push_back(client.unpack_tensor("out"));
  }
  const double sync_seconds = sync_timer.seconds();
  const double sync_rps = static_cast<double>(total) / sync_seconds;

  // Modeled per-request online seconds of the unbatched path (batch of 1).
  const double modeled_unbatched =
      orc.stats().latency_percentile("total", 50.0) * 1.0;

  // --- B. 8 client threads + micro-batching. -------------------------------
  orc.stats().reset();
  std::vector<Tensor> batched_outputs(total);
  Timer conc_timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        runtime::Client c(orc);
        std::vector<std::future<Result<Tensor>>> futures;
        futures.reserve(per_thread);
        for (std::size_t i = 0; i < per_thread; ++i) {
          futures.push_back(c.run_model_batched("surrogate", rows[t * per_thread + i]));
        }
        orc.flush_batches();  // don't strand this thread's tail partial batch
        for (std::size_t i = 0; i < per_thread; ++i) {
          batched_outputs[t * per_thread + i] = futures[i].get().value();
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const double conc_seconds = conc_timer.seconds();
  const double conc_rps = static_cast<double>(total) / conc_seconds;
  const double modeled_batched = orc.stats().latency_percentile("total", 50.0);

  // --- Bitwise identity of the batched path. -------------------------------
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < total; ++i) {
    if (batched_outputs[i].size() != sync_outputs[i].size() ||
        std::memcmp(batched_outputs[i].data(), sync_outputs[i].data(),
                    sync_outputs[i].size() * sizeof(double)) != 0) {
      ++mismatches;
    }
  }

  const ServingStatsSnapshot snap = orc.stats().snapshot();
  const double speedup = conc_rps / sync_rps;

  TextTable table({"mode", "requests", "wall (s)", "req/s",
                   "modeled online s/req (p50)"});
  table.add_row({"sync 1 thread (legacy path)", std::to_string(total),
                 TextTable::num(sync_seconds, 3), TextTable::num(sync_rps, 0),
                 TextTable::num(modeled_unbatched, 9)});
  table.add_row({"batched 8 threads", std::to_string(total),
                 TextTable::num(conc_seconds, 3), TextTable::num(conc_rps, 0),
                 TextTable::num(modeled_batched, 9)});
  std::cout << table.render() << "\n";

  std::cout << "throughput speedup:      " << TextTable::num(speedup, 2) << "x"
            << " (target >= 4x)\n"
            << "modeled latency ratio:   "
            << TextTable::num(modeled_unbatched / modeled_batched, 2)
            << "x lower per request with batching\n"
            << "batches executed:        " << snap.batches_executed
            << " (mean batch " << TextTable::num(snap.mean_batch_size(), 1) << ")\n"
            << "bitwise-identical rows:  " << (total - mismatches) << "/" << total
            << "\n";

  // Machine-readable result + the full observability state of run B: the
  // registry the ServingStats counters/histograms live in, plus span
  // aggregates from the tracer. CI smoke-gates this file for well-formedness
  // and for counter/snapshot agreement.
  {
    std::ofstream json("BENCH_serving.json");
    json << "{\n"
         << "  \"bench\": \"serving_throughput\",\n"
         << "  \"requests\": " << total << ",\n"
         << "  \"sync_rps\": " << TextTable::num(sync_rps, 1) << ",\n"
         << "  \"batched_rps\": " << TextTable::num(conc_rps, 1) << ",\n"
         << "  \"speedup\": " << TextTable::num(speedup, 3) << ",\n"
         << "  \"mean_batch\": " << TextTable::num(snap.mean_batch_size(), 2) << ",\n"
         << "  \"bitwise_identical\": " << (mismatches == 0 ? "true" : "false") << ",\n"
         << "  \"metrics\": ";
    obs::ExportOptions eo;
    eo.base_indent = 2;
    obs::export_json(json, orc.stats().metrics(), &orc.tracer(), eo);
    json << "\n}\n";
  }
  std::cout << "wrote BENCH_serving.json\n";

  // Standalone exports through the library writers (return values checked —
  // a silent half-written file is worse than a failed bench): the registry
  // as its own JSON document, and the Prometheus text exposition CI's
  // line-format smoke gate parses.
  const bool json_ok = obs::export_json_file("BENCH_serving.metrics.json",
                                             orc.stats().metrics(), &orc.tracer());
  const bool prom_ok =
      obs::export_prometheus_file("BENCH_serving.prom", orc.stats().metrics());
  if (!json_ok || !prom_ok) {
    std::cout << "FAIL: metrics export (json=" << json_ok << " prom=" << prom_ok
              << ")\n";
    return 1;
  }
  std::cout << "wrote BENCH_serving.metrics.json, BENCH_serving.prom\n";

  const bool ok = speedup >= 4.0 && mismatches == 0;
  std::cout << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
