// Model-health drift demo (docs/OBSERVABILITY.md): serve a deployed
// surrogate twice over deterministic inputs —
//   A. in-distribution — live requests drawn from the same N(0,1) the
//      reference sketch was built over;
//   B. shifted         — the same requests with a +3-sigma covariate shift
//      on every feature (a grid resize, a new parameter regime).
//
// The gate: run B's drift score must cross the alert threshold (the
// drift_detected alert fires and ModelHealth recommends retraining) while
// run A stays below it with no alert. Exits non-zero otherwise, so CI can
// gate on drift detection actually detecting — and only detecting — drift.

#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "nn/topology.hpp"
#include "obs/exposition.hpp"
#include "runtime/deployment.hpp"
#include "runtime/orchestrator.hpp"

namespace {

using namespace ahn;

std::shared_ptr<runtime::ServableModel> make_model(std::size_t in, std::size_t out) {
  Rng rng(11);
  nn::TopologySpec spec;
  spec.num_layers = 2;
  spec.hidden_units = 32;
  nn::Network net = nn::build_surrogate(spec, in, out, rng);
  auto m = std::make_shared<runtime::ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  return m;
}

/// Serves `rows` through the batched path and returns the model's health.
obs::ModelHealth serve(runtime::Orchestrator& orc, const std::vector<Tensor>& rows) {
  std::vector<std::future<Result<Tensor>>> futures;
  futures.reserve(rows.size());
  for (const Tensor& r : rows) {
    futures.push_back(orc.run_model_batched("surrogate", r));
  }
  orc.flush_batches();
  for (auto& f : futures) {
    if (!f.get().is_ok()) {
      std::cout << "FAIL: request did not complete\n";
      std::exit(1);
    }
  }
  return orc.model_health("surrogate");
}

}  // namespace

int main() {
  bench::print_header("Drift detection: in-distribution vs +3-sigma shifted serving",
                      "the model-health layer, docs/OBSERVABILITY.md");

  constexpr std::size_t kInFeatures = 16;
  constexpr std::size_t kOutFeatures = 4;
  const std::size_t train_rows = bench::scaled(4000, 1000);
  const std::size_t live_rows = bench::scaled(8000, 2000);

  // Training set: N(0,1) features — what the reference sketch records.
  Rng rng(3);
  const Tensor training = Tensor::randn({train_rows, kInFeatures}, rng);

  // Live traffic: same distribution, and a +3-sigma shifted copy.
  std::vector<Tensor> in_dist, shifted;
  in_dist.reserve(live_rows);
  shifted.reserve(live_rows);
  for (std::size_t i = 0; i < live_rows; ++i) {
    Tensor row = Tensor::randn({1, kInFeatures}, rng);
    Tensor moved = row;
    for (double& v : moved.row(0)) v += 3.0;
    in_dist.push_back(std::move(row));
    shifted.push_back(std::move(moved));
  }

  // Sample every row: the demo should exercise the detector, not the sampler.
  runtime::OrchestratorOptions opts;
  opts.monitor.sample_every = 1;

  const auto run = [&](const std::vector<Tensor>& rows) {
    runtime::Orchestrator orc(runtime::DeviceModel{}, opts);
    orc.deploy(runtime::DeploymentPackage::build("surrogate",
                                                 make_model(kInFeatures, kOutFeatures),
                                                 training));
    obs::ModelHealth h = serve(orc, rows);
    // The health snapshot travels with the standard exposition too.
    if (!obs::export_prometheus_file("BENCH_drift_monitor.prom",
                                     orc.stats().metrics())) {
      std::cout << "FAIL: prometheus export\n";
      std::exit(1);
    }
    return std::make_pair(std::move(h), orc.alerts().raised(
                                            obs::AlertKind::kDriftDetected));
  };

  const auto [clean, clean_alerts] = run(in_dist);
  const auto [drifted, drift_alerts] = run(shifted);
  const double threshold = opts.monitor.drift_threshold;

  TextTable table({"run", "rows sampled", "drift score", "alert", "retrain?"});
  table.add_row({"in-distribution", std::to_string(clean.rows_sampled),
                 TextTable::num(clean.drift_score, 3),
                 clean.drift_alert ? "yes" : "no",
                 clean.retrain_recommended ? "yes" : "no"});
  table.add_row({"+3 sigma shift", std::to_string(drifted.rows_sampled),
                 TextTable::num(drifted.drift_score, 3),
                 drifted.drift_alert ? "yes" : "no",
                 drifted.retrain_recommended ? "yes" : "no"});
  std::cout << table.render() << "\n"
            << "alert threshold:        " << TextTable::num(threshold, 2) << "\n"
            << "drift_detected alerts:  clean=" << clean_alerts
            << " shifted=" << drift_alerts << "\n"
            << "wrote BENCH_drift_monitor.prom\n";

  const bool clean_quiet = clean.drift_score < threshold && !clean.drift_alert &&
                           clean_alerts == 0 && !clean.retrain_recommended;
  const bool drift_caught = drifted.drift_score >= threshold &&
                            drifted.drift_alert && drift_alerts >= 1 &&
                            drifted.retrain_recommended;
  if (!clean_quiet) std::cout << "FAIL: in-distribution run raised drift\n";
  if (!drift_caught) std::cout << "FAIL: shifted run did not cross the threshold\n";
  const bool ok = clean_quiet && drift_caught;
  std::cout << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
