// Self-healing serving bench (docs/RETRAINING.md): the closed
// drift -> retrain -> shadow -> canary -> promote loop, end to end, on a
// 2-shard cluster — and the guard rail that makes it safe to automate: a
// poisoned candidate must be rolled back with zero client impact.
//
// Phase A — closed loop: a surrogate trained against a linear "original
// code" teacher on in-distribution inputs serves a stream whose inputs then
// shift by +3 sigma. The per-row QoI contract (relative error vs the
// teacher, epsilon = p70 of the OLD model's error on drifted rows, so the
// active model misses ~30% — enough signal to beat, below the 50% breaker
// trip) routes misses to the teacher, the drift detector alerts, and an
// attached Retrainer labels its Turaco-weighted reservoir with the teacher,
// fine-tunes, and walks the candidate through the coordinated cluster
// rollout. Gated: zero lost requests, >= 1 drift alert, the cycle ends
// PROMOTED with every shard serving v2, and the post-promote drift score
// (against the candidate's reservoir reference) is back under the alert
// threshold.
//
// Phase B — poisoned candidate: on a fresh cluster an untrained (garbage
// but finite) candidate is pushed through install_candidate +
// begin_rollout while in-distribution traffic flows. Shadow double-scoring
// must catch the QoI regression and the coordinator must roll every shard
// back to v1 — still with zero lost requests, since shadow rows never
// change responses. Gated on the terminal ROLLED_BACK state and v1 active
// everywhere.
//
// Emits BENCH_retrain_loop.json and BENCH_retrain_loop.prom (the merged
// cluster metrics, including serving.model_version / serving.rollout_state
// and the shadow/canary counters). Exits non-zero if any gate fails.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "nn/topology.hpp"
#include "nn/train.hpp"
#include "obs/export.hpp"
#include "obs/exposition.hpp"
#include "runtime/cluster.hpp"
#include "runtime/deployment.hpp"
#include "runtime/retrainer.hpp"

namespace {

using namespace ahn;

constexpr std::size_t kIn = 8;
constexpr std::size_t kOut = 2;
constexpr double kDriftShift = 3.0;      // +3 sigma vs the randn training inputs
constexpr double kDriftThreshold = 3.0;  // reservoir-reference PSI noise < this

/// The "original code": a fixed linear map, cheap enough to call per row.
Tensor teacher(const Tensor& row) {
  Tensor out({1, kOut});
  double y0 = 0.0, y1 = 0.0;
  for (std::size_t f = 0; f < kIn; ++f) {
    const double x = row.flat()[f];
    y0 += (0.3 + 0.1 * static_cast<double>(f)) * x;
    y1 += (0.9 - 0.1 * static_cast<double>(f)) * x;
  }
  out.flat()[0] = y0;
  out.flat()[1] = 0.5 * y1;
  return out;
}

/// Relative L2 error with the denominator floored at 1: near-zero teacher
/// outputs (zero-mean inputs through a linear map) must not blow the ratio
/// up — the floor makes the metric absolute in that regime.
double rel_error(const Tensor& got, const Tensor& want) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const double d = got.flat()[i] - want.flat()[i];
    num += d * d;
    den += want.flat()[i] * want.flat()[i];
  }
  return std::sqrt(num) / std::max(std::sqrt(den), 1.0);
}

Tensor random_rows(std::size_t n, double shift, Rng& rng) {
  Tensor x({n, kIn});
  for (double& v : x.flat()) v = rng.gaussian() + shift;
  return x;
}

/// v1: genuinely trained on in-distribution inputs against the teacher.
std::shared_ptr<runtime::ServableModel> make_v1(const Tensor& train_x) {
  nn::Dataset data;
  data.x = train_x;
  data.y = Tensor({train_x.shape()[0], kOut});
  for (std::size_t r = 0; r < train_x.shape()[0]; ++r) {
    const Tensor row = Tensor({1, kIn}, {train_x.row(r).begin(), train_x.row(r).end()});
    const Tensor y = teacher(row);
    for (std::size_t c = 0; c < kOut; ++c) data.y.row(r)[c] = y.flat()[c];
  }
  Rng rng(17);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 16;
  nn::Network net = nn::build_surrogate(spec, kIn, kOut, rng);
  nn::TrainOptions topts;
  // NOT scaled: both phases calibrate their QoI epsilon from v1's error
  // distribution, so v1 must be genuinely good even in smoke runs — a
  // half-trained v1 loosens eps_b until the untrained poison sits on the
  // shadow pass/fail boundary and Phase B turns into a coin flip. 60
  // epochs on this 8->16->2 net is milliseconds.
  topts.epochs = 60;
  auto m = std::make_shared<runtime::ServableModel>();
  m->surrogate = nn::train_surrogate(std::move(net), data, topts);
  m->infer_ops = m->surrogate.net.inference_cost(1);
  m->fallback = teacher;
  return m;
}

runtime::ClusterOptions cluster_options() {
  runtime::ClusterOptions opts;
  opts.shards = 2;
  opts.replication = 2;
  opts.shard_opts.max_batch = 1;              // inline: caller drives rollouts
  opts.shard_opts.batch_delay_seconds = 0.0;  // no flusher thread
  opts.shard_opts.monitor.sample_every = 1;
  opts.shard_opts.monitor.drift_threshold = kDriftThreshold;
  return opts;
}

runtime::RolloutOptions rollout_options() {
  runtime::RolloutOptions ro;
  ro.shadow_rows = bench::scaled(192, 64);
  ro.canary_rows = bench::scaled(192, 64);
  ro.canary_min_samples = 16;
  ro.stage_timeout_seconds = 60.0;
  return ro;
}

}  // namespace

int main() {
  bench::print_header(
      "Self-healing serving: drift-triggered retraining + poisoned-candidate rollback",
      "the ROADMAP self-healing item over the paper's §7.1 QoI contract");

  Rng rng(29);
  const Tensor train_x = random_rows(bench::scaled(1024, 256), 0.0, rng);
  const std::shared_ptr<runtime::ServableModel> v1 = make_v1(train_x);

  // QoI epsilon from the OLD model's error distribution on +3 sigma rows:
  // p70 makes v1 miss ~30% of drifted rows — above any rollout margin,
  // safely below the breaker's 50% trip threshold.
  std::vector<double> errs;
  for (int i = 0; i < 512; ++i) {
    const Tensor row = random_rows(1, kDriftShift, rng);
    errs.push_back(rel_error(v1->surrogate.predict(row), teacher(row)));
  }
  std::sort(errs.begin(), errs.end());
  const double eps = errs[errs.size() * 70 / 100];
  auto model = std::make_shared<runtime::ServableModel>(*v1);
  model->qoi_check = [eps](const Tensor& in, const Tensor& out) {
    return rel_error(out, teacher(in)) <= eps;
  };
  std::cout << "QoI epsilon (p70 of v1 rel-error on drifted rows): "
            << TextTable::num(eps, 4) << "\n\n";

  // --- Phase A: the closed loop on a 2-shard cluster. ----------------------
  runtime::ClusterOrchestrator cluster(cluster_options());
  cluster.deploy(runtime::DeploymentPackage::build("surrogate", model, train_x));

  runtime::RetrainerOptions ropts;
  ropts.sample_every = 1;
  ropts.reservoir_capacity = bench::scaled(512, 128);
  ropts.min_retrain_rows = bench::scaled(128, 32);
  ropts.train.epochs = static_cast<std::size_t>(bench::scaled(60, 20));
  ropts.rollout = rollout_options();
  ropts.cycle_timeout_seconds = 60.0;
  runtime::Retrainer retrainer(cluster, ropts);

  Timer wall;
  const std::size_t max_rows = bench::scaled(30000, 6000);
  std::size_t served_a = 0, lost_a = 0;
  while (retrainer.stats().cycles_promoted == 0 && served_a < max_rows &&
         wall.seconds() < 90.0) {
    const Tensor row = random_rows(1, kDriftShift, rng);
    if (cluster.run_model_batched("surrogate", row).get().is_ok()) {
      ++served_a;
    } else {
      ++lost_a;
    }
  }
  retrainer.stop();  // no second cycle while we measure the outcome

  // Post-promote drift: serve more of the SAME drifted stream; against the
  // candidate's reservoir-built reference it must score under the threshold.
  for (std::size_t i = 0; i < bench::scaled(2000, 400); ++i) {
    const Tensor row = random_rows(1, kDriftShift, rng);
    if (cluster.run_model_batched("surrogate", row).get().is_ok()) {
      ++served_a;
    } else {
      ++lost_a;
    }
  }
  const runtime::RetrainerStats stats = retrainer.stats();
  const std::uint64_t drift_alerts =
      cluster.alert_sink().raised(obs::AlertKind::kDriftDetected);
  const std::uint64_t active_a = cluster.registry().active_id("surrogate");
  std::size_t shards_on_v2 = 0;
  double post_drift = 0.0;
  for (std::size_t s = 0; s < 2; ++s) {
    if (cluster.shard(s).registry().active_id("surrogate") == 2) ++shards_on_v2;
    post_drift =
        std::max(post_drift, cluster.shard(s).model_health("surrogate").drift_score);
  }

  TextTable loop({"metric", "value"});
  loop.add_row({"rows served (drifted)", std::to_string(served_a)});
  loop.add_row({"rows lost", std::to_string(lost_a)});
  loop.add_row({"drift alerts", std::to_string(drift_alerts)});
  loop.add_row({"retrain cycles started", std::to_string(stats.cycles_started)});
  loop.add_row({"retrain cycles promoted", std::to_string(stats.cycles_promoted)});
  loop.add_row({"active version (cluster)", "v" + std::to_string(active_a)});
  loop.add_row({"shards serving v2", std::to_string(shards_on_v2) + "/2"});
  loop.add_row({"post-promote drift score", TextTable::num(post_drift, 3)});
  loop.add_row({"wall seconds", TextTable::num(wall.seconds(), 2)});
  std::cout << loop.render() << "\n";

  const bool loop_ok = lost_a == 0 && drift_alerts >= 1 &&
                       stats.cycles_promoted >= 1 && active_a == 2 &&
                       shards_on_v2 == 2 && post_drift < kDriftThreshold;

  // --- Phase B: a poisoned candidate must be auto-rolled-back. -------------
  // Own QoI contract, calibrated for the traffic this phase serves: p95 of
  // v1's error on IN-distribution rows, so the active model misses ~5%
  // (breaker stays far from its 50% trip) while the untrained candidate
  // misses nearly everything — the regression shadow scoring must catch.
  std::vector<double> in_errs;
  for (int i = 0; i < 512; ++i) {
    const Tensor row = random_rows(1, 0.0, rng);
    in_errs.push_back(rel_error(v1->surrogate.predict(row), teacher(row)));
  }
  std::sort(in_errs.begin(), in_errs.end());
  const double eps_b = in_errs[in_errs.size() * 95 / 100];
  std::cout << "Phase B QoI epsilon (p95 of v1 rel-error in-distribution): "
            << TextTable::num(eps_b, 4) << "\n";
  auto model_b = std::make_shared<runtime::ServableModel>(*v1);
  model_b->qoi_check = [eps_b](const Tensor& in, const Tensor& out) {
    return rel_error(out, teacher(in)) <= eps_b;
  };

  runtime::ClusterOrchestrator guard(cluster_options());
  guard.deploy(runtime::DeploymentPackage::build("surrogate", model_b, train_x));

  // Untrained network: finite but wrong everywhere the teacher is consulted.
  auto poison = std::make_shared<runtime::ServableModel>(*model_b);
  {
    Rng prng(997);
    nn::TopologySpec spec;
    spec.num_layers = 1;
    spec.hidden_units = 16;
    poison->surrogate = nn::TrainedSurrogate{};
    poison->surrogate.net = nn::build_surrogate(spec, kIn, kOut, prng);
  }
  const std::uint64_t vp = guard.install_candidate("surrogate", poison, nullptr, "poison");
  if (!guard.begin_rollout("surrogate", vp, rollout_options()).is_ok()) {
    std::cout << "FAIL: begin_rollout refused the poisoned candidate\n";
    return 1;
  }

  std::size_t served_b = 0, lost_b = 0;
  runtime::RolloutState guard_state = runtime::RolloutState::kShadow;
  std::string guard_reason;
  for (std::size_t i = 0; i < bench::scaled(4000, 800); ++i) {
    const Tensor row = random_rows(1, 0.0, rng);  // in-distribution: v1 is good
    if (guard.run_model_batched("surrogate", row).get().is_ok()) {
      ++served_b;
    } else {
      ++lost_b;
    }
    const auto snap = guard.rollout_progress("surrogate");
    if (snap && runtime::rollout_terminal(snap->state)) {
      guard_state = snap->state;
      guard_reason = snap->reason;
      break;
    }
  }
  const std::uint64_t active_b = guard.registry().active_id("surrogate");
  std::size_t shards_on_v1 = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    if (guard.shard(s).registry().active_id("surrogate") == 1) ++shards_on_v1;
  }

  std::cout << "poisoned candidate: state="
            << runtime::rollout_state_name(guard_state) << ", served " << served_b
            << ", lost " << lost_b << ", active v" << active_b << " on "
            << shards_on_v1 << "/2 shards\n  reason: " << guard_reason << "\n\n";

  const bool guard_ok = guard_state == runtime::RolloutState::kRolledBack &&
                        lost_b == 0 && active_b == 1 && shards_on_v1 == 2;

  // --- Machine-readable exports. -------------------------------------------
  runtime::ClusterHealth health = cluster.cluster_health();
  {
    std::ofstream json("BENCH_retrain_loop.json");
    json << "{\n  \"bench\": \"retrain_loop\",\n"
         << "  \"closed_loop\": {\n"
         << "    \"rows_served\": " << served_a << ",\n"
         << "    \"rows_lost\": " << lost_a << ",\n"
         << "    \"drift_alerts\": " << drift_alerts << ",\n"
         << "    \"cycles_started\": " << stats.cycles_started << ",\n"
         << "    \"cycles_promoted\": " << stats.cycles_promoted << ",\n"
         << "    \"active_version\": " << active_a << ",\n"
         << "    \"shards_on_v2\": " << shards_on_v2 << ",\n"
         << "    \"qoi_epsilon\": " << TextTable::num(eps, 6) << ",\n"
         << "    \"post_promote_drift\": " << TextTable::num(post_drift, 4) << "\n"
         << "  },\n"
         << "  \"poisoned_candidate\": {\n"
         << "    \"state\": \"" << runtime::rollout_state_name(guard_state) << "\",\n"
         << "    \"rows_served\": " << served_b << ",\n"
         << "    \"rows_lost\": " << lost_b << ",\n"
         << "    \"active_version\": " << active_b << ",\n"
         << "    \"shards_on_v1\": " << shards_on_v1 << "\n"
         << "  },\n"
         << "  \"cluster_metrics\": ";
    obs::ExportOptions eo;
    eo.base_indent = 2;
    obs::export_json(json, health.merged, nullptr, eo);
    json << "\n}\n";
  }
  std::cout << "wrote BENCH_retrain_loop.json\n";
  if (!obs::export_prometheus_file("BENCH_retrain_loop.prom", health.merged)) {
    std::cout << "FAIL: prometheus export\n";
    return 1;
  }
  std::cout << "wrote BENCH_retrain_loop.prom\n";

  if (!loop_ok) std::cout << "FAIL: closed loop did not end promoted and clean\n";
  if (!guard_ok) std::cout << "FAIL: poisoned candidate was not rolled back cleanly\n";
  const bool pass = loop_ok && guard_ok;
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
