// Graceful-degradation bench for the reliability layer (docs/RELIABILITY.md).
//
// Drives the same 8-thread micro-batching workload as serving_throughput
// twice over identical inputs:
//   A. fault-free  — baseline wall-clock throughput;
//   B. faulty      — ~1% injected transient faults (plus occasional dropped
//                    batches and NaN-corrupted outputs) through the seeded
//                    FaultInjector, with the default retry policy and the
//                    original-code fallback absorbing what retries cannot.
//
// The gate: under injected faults EVERY request must still complete
// successfully (retries + QoI fallback make the faults invisible to
// clients), and throughput must stay within 2x of the fault-free run.
// Exits non-zero otherwise, so CI can gate on graceful degradation.

#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "nn/topology.hpp"
#include "obs/export.hpp"
#include "obs/exposition.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/orchestrator.hpp"

namespace {

using namespace ahn;

std::shared_ptr<runtime::ServableModel> make_model(std::size_t in, std::size_t out,
                                                   std::size_t hidden) {
  Rng rng(11);
  nn::TopologySpec spec;
  spec.num_layers = 2;
  spec.hidden_units = hidden;
  nn::Network net = nn::build_surrogate(spec, in, out, rng);
  auto m = std::make_shared<runtime::ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  // Original-code path for QoI misses (paper §7.1): here a cheap exact stub —
  // the bench measures serving resilience, not application quality.
  m->fallback = [out](const Tensor& row_in) {
    Tensor exact({1, out});
    for (double& v : exact.row(0)) v = row_in.at(0, 0);
    return exact;
  };
  return m;
}

struct RunResult {
  double seconds = 0.0;
  std::size_t completed = 0;
  std::size_t failed = 0;
};

RunResult drive(runtime::Orchestrator& orc, const std::vector<Tensor>& rows,
                std::size_t threads_n) {
  const std::size_t per_thread = rows.size() / threads_n;
  std::vector<std::size_t> completed(threads_n, 0), failed(threads_n, 0);
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(threads_n);
  for (std::size_t t = 0; t < threads_n; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::future<Result<Tensor>>> futures;
      futures.reserve(per_thread);
      for (std::size_t i = 0; i < per_thread; ++i) {
        futures.push_back(
            orc.run_model_batched("surrogate", rows[t * per_thread + i]));
      }
      orc.flush_batches();  // don't strand this thread's tail partial batch
      for (auto& f : futures) {
        if (f.get().is_ok()) {
          ++completed[t];
        } else {
          ++failed[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  RunResult r;
  r.seconds = timer.seconds();
  for (std::size_t t = 0; t < threads_n; ++t) {
    r.completed += completed[t];
    r.failed += failed[t];
  }
  return r;
}

}  // namespace

int main() {
  bench::print_header("Graceful degradation: ~1% injected faults vs fault-free",
                      "the reliability layer's retry + fallback contract");

  constexpr std::size_t kInFeatures = 16;
  constexpr std::size_t kOutFeatures = 4;
  constexpr std::size_t kThreads = 8;
  const std::size_t per_thread = bench::scaled(20000, 2000) / kThreads;
  const std::size_t total = per_thread * kThreads;

  runtime::OrchestratorOptions opts;
  opts.max_batch = 64;
  opts.batch_delay_seconds = 200e-6;
  opts.retry.max_attempts = 4;
  opts.retry.initial_backoff_seconds = 10e-6;
  runtime::Orchestrator orc(runtime::DeviceModel{}, opts);
  orc.set_model("surrogate", make_model(kInFeatures, kOutFeatures, 32));

  std::vector<Tensor> rows;
  rows.reserve(total);
  Rng rng(3);
  for (std::size_t i = 0; i < total; ++i) {
    rows.push_back(Tensor::randn({1, kInFeatures}, rng));
  }

  // --- A. fault-free baseline. ---------------------------------------------
  const RunResult clean = drive(orc, rows, kThreads);

  // --- B. ~1% transient faults + drops + NaN corruption. -------------------
  orc.stats().reset();
  runtime::FaultSpec spec;
  spec.transient_prob = 0.01;   // per phase draw, the headline ~1%
  spec.batch_drop_prob = 0.005;
  spec.nan_prob = 0.002;        // absorbed by the QoI fallback path
  spec.latency_spike_prob = 0.002;
  spec.latency_spike_seconds = 50e-6;
  auto injector = std::make_shared<runtime::FaultInjector>(spec, /*seed=*/1234);
  orc.set_fault_injector(injector);
  const RunResult faulty = drive(orc, rows, kThreads);
  orc.set_fault_injector(nullptr);
  orc.drain();

  const ServingStatsSnapshot snap = orc.stats().snapshot();
  const double clean_rps = static_cast<double>(total) / clean.seconds;
  const double faulty_rps = static_cast<double>(total) / faulty.seconds;
  const double slowdown = clean_rps / faulty_rps;

  TextTable table({"mode", "requests", "completed", "failed", "wall (s)", "req/s"});
  table.add_row({"fault-free", std::to_string(total), std::to_string(clean.completed),
                 std::to_string(clean.failed), TextTable::num(clean.seconds, 3),
                 TextTable::num(clean_rps, 0)});
  table.add_row({"~1% faults", std::to_string(total), std::to_string(faulty.completed),
                 std::to_string(faulty.failed), TextTable::num(faulty.seconds, 3),
                 TextTable::num(faulty_rps, 0)});
  std::cout << table.render() << "\n";

  std::cout << "faults injected:   " << snap.faults_injected;
  for (const auto& [kind, n] : snap.fault_kinds) std::cout << "  " << kind << "=" << n;
  std::cout << "\nretries:           " << snap.retries
            << "\nQoI fallbacks:     " << snap.qoi_fallbacks
            << "\nthroughput ratio:  " << TextTable::num(slowdown, 2)
            << "x slower under faults (limit 2x)\n";

  // Machine-readable result for the faulty run: the fault/retry/QoI counters
  // in the JSON come from the same registry instruments the snapshot above
  // read, so the two can be cross-checked.
  {
    std::ofstream json("BENCH_fault_recovery.json");
    json << "{\n"
         << "  \"bench\": \"fault_recovery\",\n"
         << "  \"requests\": " << total << ",\n"
         << "  \"completed_under_faults\": " << faulty.completed << ",\n"
         << "  \"faults_injected\": " << snap.faults_injected << ",\n"
         << "  \"retries\": " << snap.retries << ",\n"
         << "  \"qoi_fallbacks\": " << snap.qoi_fallbacks << ",\n"
         << "  \"slowdown\": " << TextTable::num(slowdown, 3) << ",\n"
         << "  \"metrics\": ";
    obs::ExportOptions eo;
    eo.base_indent = 2;
    obs::export_json(json, orc.stats().metrics(), &orc.tracer(), eo);
    json << "\n}\n";
  }
  std::cout << "wrote BENCH_fault_recovery.json\n";

  // Standalone library-writer exports (bool-checked) — JSON document plus
  // the Prometheus exposition the CI smoke gate parses.
  const bool json_ok = obs::export_json_file("BENCH_fault_recovery.metrics.json",
                                             orc.stats().metrics(), &orc.tracer());
  const bool prom_ok = obs::export_prometheus_file("BENCH_fault_recovery.prom",
                                                   orc.stats().metrics());
  if (!json_ok || !prom_ok) {
    std::cout << "FAIL: metrics export (json=" << json_ok << " prom=" << prom_ok
              << ")\n";
    return 1;
  }
  std::cout << "wrote BENCH_fault_recovery.metrics.json, BENCH_fault_recovery.prom\n";

  const bool all_complete = clean.failed == 0 && faulty.failed == 0 &&
                            faulty.completed == total;
  const bool within_budget = slowdown <= 2.0;
  if (!all_complete) std::cout << "FAIL: requests were lost under injected faults\n";
  if (!within_budget) std::cout << "FAIL: degradation exceeded the 2x budget\n";
  const bool ok = all_complete && within_budget;
  std::cout << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
