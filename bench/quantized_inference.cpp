// Calibrated int8 inference bench (docs/PERFORMANCE.md — "Calibrated int8
// inference"): the end-to-end quantized serving path across the 11 Table 2
// applications, plus the rollout guard rails that make shipping a quantized
// model safe.
//
// Phase A — per-app throughput + QoI: for every application, train a modest
// MLP surrogate on exact region outputs, quantize a copy (percentile
// calibration on the training inputs, per-shape kernel selection), and
// measure single-thread batched predict throughput of the fp32 fast path vs
// the int8 path on held-out problems. QoI is the application's own
// qoi_error against the exact region outputs — "QoI met" means the
// quantized model's mean QoI error stays within 1.25x of the fp32
// surrogate's (or under the paper's 10% quality bound outright). Gated:
// >= kMinWinningApps apps must show >= kSpeedupTarget speedup with QoI met.
//
// Phase B — rollout: a quantized candidate built by quantized_servable()
// walks shadow -> canary -> promote behind the QoI breaker on clean traffic
// (gated: promoted, zero lost rows, zero breaker trips), and a deliberately
// mis-calibrated candidate (activation scale 1000x off) is auto-rolled back
// by shadow scoring (gated: rolled back, zero lost rows, v1 active).
//
// Emits BENCH_quantized.json and BENCH_quantized.prom (the promote-phase
// orchestrator metrics, picked up by the CI Prometheus smoke gate). Exits
// non-zero if any gate fails.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "nn/quantization.hpp"
#include "nn/topology.hpp"
#include "nn/train.hpp"
#include "obs/exposition.hpp"
#include "runtime/deployment.hpp"
#include "runtime/orchestrator.hpp"
#include "runtime/rollout.hpp"

namespace {

using namespace ahn;

constexpr double kSpeedupTarget = 2.0;  ///< int8 vs fp32 fast path, 1 thread
constexpr std::size_t kMinWinningApps = 3;
constexpr double kQualityBound = 0.10;  ///< paper's default QoI loss bound
constexpr std::size_t kServeBatch = 64;

struct AppResult {
  std::string name;
  std::size_t in = 0, out = 0;
  double fp32_rows_per_s = 0.0;
  double int8_rows_per_s = 0.0;
  double speedup = 0.0;
  double fp32_qoi = 0.0;
  double int8_qoi = 0.0;
  bool qoi_ok = false;
  std::string kernels;  ///< per-layer selected kernels, e.g. "int8_dot,int8_dot"
};

/// Best-of-`reps` wall time of `sweeps` batched predict passes over `x`.
template <typename Fn>
double time_predict(Fn&& predict_all, std::size_t sweeps, int reps) {
  double best = std::numeric_limits<double>::infinity();
  predict_all();  // warm-up: page in weights, settle allocators
  for (int r = 0; r < reps; ++r) {
    const Timer t;
    for (std::size_t s = 0; s < sweeps; ++s) predict_all();
    best = std::min(best, t.seconds());
  }
  return best;
}

std::string layer_kernels(const nn::Network& net) {
  std::string s;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const auto* d = dynamic_cast<const nn::DenseLayer*>(&net.layer(i));
    if (d == nullptr || !d->has_quantized()) continue;
    if (!s.empty()) s += ",";
    s += ops::kernel_choice_name(d->quantized()->kernel);
  }
  return s;
}

AppResult run_app(const std::string& name) {
  auto app = apps::make_application(name);
  const std::size_t count = bench::scaled(240, 72);
  app->generate_problems(count, 0xA11CE5);
  const std::size_t train_n = count * 4 / 5;
  const std::size_t eval_n = count - train_n;

  nn::Dataset data;
  data.x = Tensor({train_n, app->input_dim()});
  data.y = Tensor({train_n, app->output_dim()});
  for (std::size_t i = 0; i < train_n; ++i) {
    const std::vector<double> feat = app->input_features(i);
    std::copy(feat.begin(), feat.end(), data.x.row(i).begin());
    const apps::RegionRun run = app->run_region(i);
    std::copy(run.outputs.begin(), run.outputs.end(), data.y.row(i).begin());
  }
  Tensor eval_x({eval_n, app->input_dim()});
  std::vector<std::vector<double>> exact(eval_n);
  for (std::size_t i = 0; i < eval_n; ++i) {
    const std::vector<double> feat = app->input_features(train_n + i);
    std::copy(feat.begin(), feat.end(), eval_x.row(i).begin());
    exact[i] = app->run_region(train_n + i).outputs;
  }

  Rng rng(0xB0B5 + name.size());
  nn::TopologySpec spec;
  spec.num_layers = 2;
  spec.hidden_units = 64;
  nn::TrainOptions topts;
  topts.epochs = bench::scaled(60, 25);
  nn::TrainedSurrogate fp32 = nn::train_surrogate(
      nn::build_surrogate(spec, app->input_dim(), app->output_dim(), rng), data, topts);

  nn::TrainedSurrogate int8 = fp32;  // deep copy: Network assignment clones layers
  nn::QuantizationOptions qopts;    // percentile calibration + live kernel probe
  nn::quantize_surrogate(int8, data.x, qopts);

  AppResult r;
  r.name = name;
  r.in = app->input_dim();
  r.out = app->output_dim();
  r.kernels = layer_kernels(int8.net);

  // Single-thread throughput over the held-out rows in serving-sized
  // batches; enough sweeps that each measurement covers >= 512 rows.
  const std::size_t sweeps = std::max<std::size_t>(1, 512 / eval_n);
  auto sweep = [&](const nn::TrainedSurrogate& model) {
    for (std::size_t at = 0; at < eval_n; at += kServeBatch) {
      const std::size_t rows = std::min(kServeBatch, eval_n - at);
      Tensor batch({rows, app->input_dim()});
      std::copy(eval_x.row(at).begin(), eval_x.row(at).begin() + rows * app->input_dim(),
                batch.flat().begin());
      volatile double sink = model.predict(batch).flat()[0];
      (void)sink;
    }
  };
  const double t_fp32 = time_predict([&] { sweep(fp32); }, sweeps, 3);
  const double t_int8 = time_predict([&] { sweep(int8); }, sweeps, 3);
  const double rows_total = static_cast<double>(eval_n * sweeps);
  r.fp32_rows_per_s = rows_total / t_fp32;
  r.int8_rows_per_s = rows_total / t_int8;
  r.speedup = t_fp32 / t_int8;

  // Mean application QoI error vs the exact region, per precision.
  const Tensor p_fp32 = fp32.predict(eval_x);
  const Tensor p_int8 = int8.predict(eval_x);
  double e_fp32 = 0.0, e_int8 = 0.0;
  for (std::size_t i = 0; i < eval_n; ++i) {
    const auto row32 = p_fp32.row(i);
    const auto row8 = p_int8.row(i);
    e_fp32 += app->qoi_error(train_n + i, exact[i], {row32.begin(), row32.end()});
    e_int8 += app->qoi_error(train_n + i, exact[i], {row8.begin(), row8.end()});
  }
  r.fp32_qoi = e_fp32 / static_cast<double>(eval_n);
  r.int8_qoi = e_int8 / static_cast<double>(eval_n);
  r.qoi_ok = r.int8_qoi <= std::max(kQualityBound, 1.25 * r.fp32_qoi);
  return r;
}

// ------------------------------------------------------- Phase B: rollout

constexpr std::size_t kIn = 24;
constexpr std::size_t kOut = 4;

Tensor teacher(const Tensor& row) {
  Tensor out({1, kOut});
  for (std::size_t o = 0; o < kOut; ++o) {
    double s = 0.0;
    for (std::size_t f = 0; f < kIn; ++f) {
      s += (0.2 + 0.05 * static_cast<double>((f + o) % 7)) *
           (o % 2 == 0 ? 1.0 : -1.0) * row.flat()[f];
    }
    out.flat()[o] = s;
  }
  return out;
}

double rel_error(const Tensor& got, const Tensor& want) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const double d = got.flat()[i] - want.flat()[i];
    num += d * d;
    den += want.flat()[i] * want.flat()[i];
  }
  return std::sqrt(num) / std::max(std::sqrt(den), 1.0);
}

Tensor random_rows(std::size_t n, Rng& rng) {
  Tensor x({n, kIn});
  for (double& v : x.flat()) v = rng.gaussian();
  return x;
}

std::shared_ptr<runtime::ServableModel> make_v1(const Tensor& train_x) {
  nn::Dataset data;
  data.x = train_x;
  data.y = Tensor({train_x.shape()[0], kOut});
  for (std::size_t r = 0; r < train_x.shape()[0]; ++r) {
    const Tensor row =
        Tensor({1, kIn}, {train_x.row(r).begin(), train_x.row(r).end()});
    const Tensor y = teacher(row);
    for (std::size_t c = 0; c < kOut; ++c) data.y.row(r)[c] = y.flat()[c];
  }
  Rng rng(53);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 32;
  nn::TrainOptions topts;
  topts.epochs = 300;  // NOT scaled: the QoI epsilon is calibrated from v1's
                       // error distribution, so v1 must be genuinely good
                       // even in smoke runs — a sloppy v1 loosens eps until
                       // the mis-calibrated candidate slips through shadow
  auto m = std::make_shared<runtime::ServableModel>();
  m->surrogate = nn::train_surrogate(
      nn::build_surrogate(spec, kIn, kOut, rng), data, topts);
  m->infer_ops = m->surrogate.net.inference_cost(1);
  m->fallback = teacher;
  return m;
}

runtime::OrchestratorOptions inline_opts() {
  runtime::OrchestratorOptions opts;
  opts.max_batch = 1;              // inline: the loop below drives the rollout
  opts.batch_delay_seconds = 0.0;  // no flusher thread
  return opts;
}

runtime::RolloutOptions rollout_options() {
  runtime::RolloutOptions ro;
  ro.shadow_rows = bench::scaled(192, 64);
  ro.canary_rows = bench::scaled(192, 64);
  ro.canary_min_samples = 16;
  ro.stage_timeout_seconds = 60.0;
  return ro;
}

struct RolloutOutcome {
  std::string state = "?";
  std::size_t served = 0, lost = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t active_version = 0;
  bool active_int8 = false;
};

RolloutOutcome drive_rollout(runtime::Orchestrator& orc,
                             std::shared_ptr<runtime::ServableModel> candidate,
                             const char* note, Rng& rng) {
  const std::uint64_t v2 = orc.install_candidate("surrogate", std::move(candidate),
                                                 nullptr, note);
  RolloutOutcome out;
  if (!orc.begin_rollout("surrogate", v2, rollout_options()).is_ok()) return out;
  for (std::size_t i = 0; i < bench::scaled(4000, 800); ++i) {
    if (orc.run_model_batched("surrogate", random_rows(1, rng)).get().is_ok()) {
      ++out.served;
    } else {
      ++out.lost;
    }
    const auto snap = orc.rollout_progress("surrogate");
    if (snap && runtime::rollout_terminal(snap->state)) {
      out.state = runtime::rollout_state_name(snap->state);
      break;
    }
  }
  out.breaker_trips = orc.breaker("surrogate").trips();
  out.active_version = orc.registry().active_id("surrogate");
  const auto active = orc.active_model("surrogate");
  out.active_int8 = active.has_value() &&
                    active->model->surrogate.net.precision() == nn::Precision::kInt8;
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Calibrated int8 inference: per-app speedup + QoI, quantized rollout",
      "the perf path behind the paper's §6.3 serving loop at int8 precision");

#ifdef _OPENMP
  omp_set_num_threads(1);  // the gate is a single-thread throughput claim
#endif

  // --- Phase A: per-app quantized vs fp32. ---------------------------------
  std::vector<AppResult> results;
  TextTable table({"app", "in->out", "fp32 rows/s", "int8 rows/s", "speedup",
                   "fp32 QoI", "int8 QoI", "QoI met", "kernels"});
  std::size_t wins = 0;
  for (const std::string& name : apps::application_names()) {
    AppResult r = run_app(name);
    const bool win = r.speedup >= kSpeedupTarget && r.qoi_ok;
    wins += win ? 1 : 0;
    table.add_row({r.name, std::to_string(r.in) + "->" + std::to_string(r.out),
                   TextTable::num(r.fp32_rows_per_s, 0),
                   TextTable::num(r.int8_rows_per_s, 0),
                   TextTable::num(r.speedup, 2) + "x",
                   TextTable::num(r.fp32_qoi, 4), TextTable::num(r.int8_qoi, 4),
                   r.qoi_ok ? "yes" : "NO", r.kernels});
    std::cout << "  [" << r.name << "] int8 " << TextTable::num(r.speedup, 2)
              << "x, QoI " << (r.qoi_ok ? "met" : "MISSED") << "\n"
              << std::flush;
    results.push_back(std::move(r));
  }
  std::cout << "\n" << table.render() << "\n";
  std::cout << "apps at >= " << TextTable::num(kSpeedupTarget, 1) << "x with QoI met: "
            << wins << "/" << results.size() << " (need >= " << kMinWinningApps
            << ")\n\n";
  const bool apps_ok = wins >= kMinWinningApps;

  // --- Phase B: quantized candidate through shadow/canary. -----------------
  Rng rng(71);
  const Tensor train_x = random_rows(bench::scaled(1024, 256), rng);
  const std::shared_ptr<runtime::ServableModel> v1 = make_v1(train_x);

  // QoI epsilon: p95 of v1's error on clean traffic. v1 misses ~5% (far from
  // the breaker's trip threshold); a well-calibrated int8 copy sits within
  // quantization error of v1, while the mis-calibrated one misses everything.
  std::vector<double> errs;
  for (int i = 0; i < 512; ++i) {
    const Tensor row = random_rows(1, rng);
    errs.push_back(rel_error(v1->surrogate.predict(row), teacher(row)));
  }
  std::sort(errs.begin(), errs.end());
  const double eps = errs[errs.size() * 95 / 100];
  auto model = std::make_shared<runtime::ServableModel>(*v1);
  model->qoi_check = [eps](const Tensor& in, const Tensor& out) {
    return rel_error(out, teacher(in)) <= eps;
  };
  std::cout << "rollout QoI epsilon (p95 of v1 rel-error): "
            << TextTable::num(eps, 4) << "\n";

  runtime::Orchestrator orc(runtime::DeviceModel{}, inline_opts());
  orc.deploy(runtime::DeploymentPackage::build("surrogate", model, train_x));
  auto clean = std::make_shared<runtime::ServableModel>(
      runtime::quantized_servable(*model, train_x));
  const RolloutOutcome promote = drive_rollout(orc, clean, "quantize", rng);
  std::cout << "clean quantized candidate: " << promote.state << ", served "
            << promote.served << ", lost " << promote.lost << ", breaker trips "
            << promote.breaker_trips << ", active v" << promote.active_version
            << (promote.active_int8 ? " (int8)" : " (fp32)") << "\n";
  const bool promote_ok = promote.state == "promoted" && promote.lost == 0 &&
                          promote.breaker_trips == 0 && promote.active_version == 2 &&
                          promote.active_int8;

  // Mis-calibrated candidate: activation scale 1000x too large crushes every
  // input to the zero code — shadow scoring must refuse it.
  runtime::Orchestrator guard(runtime::DeviceModel{}, inline_opts());
  guard.deploy(runtime::DeploymentPackage::build("surrogate", model, train_x));
  auto bad = std::make_shared<runtime::ServableModel>(
      runtime::quantized_servable(*model, train_x));
  for (std::size_t i = 0; i < bad->surrogate.net.layer_count(); ++i) {
    if (auto* d = dynamic_cast<nn::DenseLayer*>(&bad->surrogate.net.layer(i))) {
      d->set_quantized(nn::build_quantized_dense(
          d->weights(), quant::QuantParams{1000.0, 0}, nn::QuantizationOptions{}));
    }
  }
  const RolloutOutcome rollback = drive_rollout(guard, bad, "mis-calibrated", rng);
  std::cout << "mis-calibrated candidate: " << rollback.state << ", served "
            << rollback.served << ", lost " << rollback.lost << ", active v"
            << rollback.active_version << "\n\n";
  const bool rollback_ok = rollback.state == "rolled_back" && rollback.lost == 0 &&
                           rollback.active_version == 1;

  // --- Machine-readable exports. -------------------------------------------
  {
    std::ofstream json("BENCH_quantized.json");
    json << "{\n  \"bench\": \"quantized_inference\",\n"
         << "  \"speedup_target\": " << TextTable::num(kSpeedupTarget, 2) << ",\n"
         << "  \"min_winning_apps\": " << kMinWinningApps << ",\n"
         << "  \"winning_apps\": " << wins << ",\n  \"apps\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const AppResult& r = results[i];
      json << "    {\"app\": \"" << r.name << "\", \"speedup\": "
           << TextTable::num(r.speedup, 3) << ", \"fp32_rows_per_s\": "
           << TextTable::num(r.fp32_rows_per_s, 1) << ", \"int8_rows_per_s\": "
           << TextTable::num(r.int8_rows_per_s, 1) << ", \"fp32_qoi\": "
           << TextTable::num(r.fp32_qoi, 6) << ", \"int8_qoi\": "
           << TextTable::num(r.int8_qoi, 6) << ", \"qoi_met\": "
           << (r.qoi_ok ? "true" : "false") << ", \"kernels\": \"" << r.kernels
           << "\"}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"rollout\": {\n"
         << "    \"clean\": {\"state\": \"" << promote.state << "\", \"lost\": "
         << promote.lost << ", \"breaker_trips\": " << promote.breaker_trips
         << ", \"active_version\": " << promote.active_version << "},\n"
         << "    \"mis_calibrated\": {\"state\": \"" << rollback.state
         << "\", \"lost\": " << rollback.lost << ", \"active_version\": "
         << rollback.active_version << "}\n  }\n}\n";
  }
  std::cout << "wrote BENCH_quantized.json\n";
  if (!obs::export_prometheus_file("BENCH_quantized.prom", orc.stats().metrics())) {
    std::cout << "FAIL: prometheus export\n";
    return 1;
  }
  std::cout << "wrote BENCH_quantized.prom\n";

  if (!apps_ok) std::cout << "FAIL: fewer than " << kMinWinningApps
                          << " apps reached the speedup + QoI gate\n";
  if (!promote_ok) std::cout << "FAIL: clean quantized candidate did not promote cleanly\n";
  if (!rollback_ok) std::cout << "FAIL: mis-calibrated candidate was not rolled back\n";
  const bool pass = apps_ok && promote_ok && rollback_ok;
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
