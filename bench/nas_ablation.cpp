// Ablation of Algorithm 2 (a DESIGN.md-called-out design choice): the
// hierarchical two-level Bayesian optimization versus (a) a flat joint BO
// over the concatenated (K, theta) vector — the encoding §5.2 argues
// against — and (b) fixed-K searches that skip the outer loop entirely.
// Reported: best feasible f_e / f_c and wall time at equal budgets.
//
// Extended with the population-based LTFB arms (docs/NAS.md): P independent
// 2D searchers with tournament elite exchange, at P in {1, 2, 4, 8}. Each
// worker gets the SAME per-worker budget as the serial hierarchical arm
// (3 rounds x budget/3 inner iterations), so the ideal wall-clock of every
// LTFB arm equals the serial arm while total exploration scales with P.
// Two CI gates, both fatal (non-zero exit):
//   1. quality  — the P=8 population is same-or-better than hierarchical 2D
//      BO under the task's quality bound (the LTFB promise: more workers at
//      equal wall-clock must not cost quality);
//   2. determinism — the P=2 configuration is bitwise-identical when run
//      serially and on pools of 1 and 2 threads (the ltfb.hpp contract).
// Emits BENCH_nas_ltfb.json plus BENCH_nas_ltfb.prom for the CI smoke.

#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "nas/baseline_searchers.hpp"
#include "nas/ltfb.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace ahn;

bool same_spec(const nn::TopologySpec& a, const nn::TopologySpec& b) {
  return a.kind == b.kind && a.num_layers == b.num_layers &&
         a.hidden_units == b.hidden_units && a.channels == b.channels &&
         a.kernel == b.kernel && a.pool == b.pool && a.residual == b.residual &&
         a.act == b.act;
}

/// Bitwise trajectory equality: every worker's step sequence and the global
/// elite must match exactly (timings excluded — they are wall-clock).
bool same_trajectory(const nas::PopulationResult& a, const nas::PopulationResult& b) {
  if (a.found_feasible != b.found_feasible) return false;
  if (a.best_worker != b.best_worker) return false;
  if (a.workers.size() != b.workers.size()) return false;
  for (std::size_t w = 0; w < a.workers.size(); ++w) {
    const auto& wa = a.workers[w];
    const auto& wb = b.workers[w];
    if (wa.steps.size() != wb.steps.size()) return false;
    for (std::size_t s = 0; s < wa.steps.size(); ++s) {
      const nas::SearchStep& sa = wa.steps[s];
      const nas::SearchStep& sb = wb.steps[s];
      if (sa.latent_k != sb.latent_k || !same_spec(sa.spec, sb.spec) ||
          sa.quality_error != sb.quality_error ||
          sa.modeled_infer_seconds != sb.modeled_infer_seconds) {
        return false;
      }
    }
  }
  return a.best.latent_k == b.best.latent_k && same_spec(a.best.spec, b.best.spec) &&
         a.best.quality_error == b.best.quality_error &&
         a.best.modeled_infer_seconds == b.best.modeled_infer_seconds &&
         a.tournaments.size() == b.tournaments.size();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahn;
  bench::print_header(
      "2D-NAS ablation: hierarchical vs flat joint vs fixed-K vs LTFB population",
      "paper §5.2's design rationale + docs/NAS.md tournament exchange");

  core::Config cfg = bench::bench_config();
  for (int i = 1; i < argc; ++i) cfg.apply(argv[i]);
  const core::AutoHPCnet framework(cfg);

  auto app = apps::make_application("MG");
  const std::size_t n_train = app->recommended_train_problems();
  app->generate_problems(n_train + cfg.valid_problems, cfg.seed);
  std::vector<std::size_t> train_ids(n_train);
  std::iota(train_ids.begin(), train_ids.end(), 0);
  std::vector<std::size_t> valid_ids(cfg.valid_problems);
  std::iota(valid_ids.begin(), valid_ids.end(), n_train);
  std::shared_ptr<sparse::Csr> sparse_storage;
  nas::SearchTask task = framework.make_task(
      *app, framework.acquire_samples(*app, train_ids), valid_ids, sparse_storage);

  const std::size_t budget = bench::scaled(12, 6);  // total candidate trainings

  TextTable table({"strategy", "feasible", "best f_e", "best f_c (us)", "evals",
                   "search s"});
  auto report = [&](const std::string& name, bool feasible,
                    const nas::PipelineModel& best, std::size_t evals, double secs) {
    table.add_row({name, feasible ? "yes" : "no",
                   TextTable::num(best.quality_error, 4),
                   TextTable::num(1e6 * best.modeled_infer_seconds, 2),
                   std::to_string(evals), TextTable::num(secs, 2)});
  };

  nas::NasResult hierarchical;
  {
    nas::NasOptions opts = cfg.nas_options();
    opts.outer_iterations = 3;
    opts.inner_iterations = budget / 3;
    const Timer t;
    hierarchical = nas::TwoDNas(opts).search(task);
    report("hierarchical 2D (Alg. 2)", hierarchical.found_feasible, hierarchical.best,
           hierarchical.steps.size(), t.seconds());
  }
  {
    nas::FlatJointOptions opts;
    opts.iterations = budget;
    opts.k_min = cfg.k_min;
    opts.k_max = cfg.k_max;
    opts.ae_epochs = cfg.ae_epochs;
    const Timer t;
    const nas::NasResult res = nas::FlatJointNas(opts).search(task);
    report("flat joint (K,theta) BO", res.found_feasible, res.best, res.steps.size(),
           t.seconds());
  }
  {
    // Fixed-K: inner search only, at a K the outer loop would have to guess.
    nas::NasOptions opts = cfg.nas_options();
    opts.search_type = nas::SearchType::FullInput;  // no reduction at all
    opts.inner_iterations = budget;
    const Timer t;
    const nas::NasResult res = nas::TwoDNas(opts).search(task);
    report("fixed: no reduction", res.found_feasible, res.best, res.steps.size(),
           t.seconds());
  }

  // --- LTFB population scaling curve -------------------------------------
  // Per-worker budget mirrors the serial hierarchical arm exactly, so the
  // ideal wall-clock is flat across P while exploration scales with P.
  auto ltfb_options = [&](std::size_t population) {
    nas::PopulationOptions popt;
    popt.nas = cfg.nas_options();
    popt.nas.inner_iterations = budget / 3;
    popt.population = population;
    popt.rounds = 3;
    return popt;
  };

  obs::MetricsRegistry reg;
  struct LtfbArm {
    std::size_t population = 0;
    nas::PopulationResult result;
    double seconds = 0.0;
  };
  std::vector<LtfbArm> arms;
  for (const std::size_t p : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    nas::PopulationOptions popt = ltfb_options(p);
    runtime::ThreadPool pool(p);
    popt.pool = &pool;
    const Timer t;
    nas::PopulationResult res = nas::PopulationSearch(popt).search(task);
    const double secs = t.seconds();
    report("LTFB population P=" + std::to_string(p), res.found_feasible, res.best,
           res.evaluations(), secs);
    reg.counter("nas.ltfb.evaluations").increment(res.evaluations());
    reg.counter("nas.ltfb.tournaments").increment(res.tournaments.size());
    const std::string prefix = "nas.ltfb.p" + std::to_string(p);
    reg.gauge(prefix + ".best_quality_error").set(res.best.quality_error);
    reg.gauge(prefix + ".best_infer_us").set(1e6 * res.best.modeled_infer_seconds);
    reg.gauge(prefix + ".search_seconds").set(secs);
    arms.push_back({p, std::move(res), secs});
  }

  // Gate 1: at equal ideal wall-clock, the P=8 population must reach
  // same-or-better validation quality than hierarchical 2D BO, without
  // buying that quality with a large latency regression (10% guard on the
  // modeled f_c).
  const nas::PopulationResult& ltfb8 = arms.back().result;
  const bool quality_ok =
      ltfb8.found_feasible &&
      (!hierarchical.found_feasible ||
       (ltfb8.best.quality_error <= hierarchical.best.quality_error &&
        ltfb8.best.modeled_infer_seconds <=
            1.10 * hierarchical.best.modeled_infer_seconds));
  reg.gauge("nas.ltfb.quality_gate_ok").set(quality_ok ? 1.0 : 0.0);

  // Gate 2: the determinism contract — serial, pool(1) and pool(2) runs of
  // the P=2 configuration must produce bitwise-identical trajectories.
  bool determinism_ok = true;
  {
    const nas::PopulationOptions serial_opts = ltfb_options(2);
    const nas::PopulationResult serial = nas::PopulationSearch(serial_opts).search(task);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      nas::PopulationOptions popt = ltfb_options(2);
      runtime::ThreadPool pool(threads);
      popt.pool = &pool;
      const nas::PopulationResult pooled = nas::PopulationSearch(popt).search(task);
      if (!same_trajectory(serial, pooled)) {
        std::cout << "FAIL: P=2 trajectory diverged on a " << threads
                  << "-thread pool\n";
        determinism_ok = false;
      }
    }
  }
  reg.gauge("nas.ltfb.determinism_ok").set(determinism_ok ? 1.0 : 0.0);

  std::cout << table.render()
            << "\nexpected shape: the hierarchical search matches or beats the flat\n"
               "joint encoding at equal budget (separating the K and theta GPs is\n"
               "the paper's §5.2 argument), beats no-reduction on f_c whenever\n"
               "reduction is viable, and the LTFB population at P=8 matches or\n"
               "beats the serial hierarchical arm at equal ideal wall-clock.\n";

  {
    std::ofstream json("BENCH_nas_ltfb.json");
    json << "{\n"
         << "  \"bench\": \"nas_ltfb\",\n"
         << "  \"budget_per_worker\": " << budget << ",\n"
         << "  \"hierarchical\": {\"feasible\": "
         << (hierarchical.found_feasible ? "true" : "false")
         << ", \"quality_error\": " << TextTable::num(hierarchical.best.quality_error, 6)
         << ", \"infer_us\": "
         << TextTable::num(1e6 * hierarchical.best.modeled_infer_seconds, 3) << "},\n"
         << "  \"arms\": [\n";
    for (std::size_t i = 0; i < arms.size(); ++i) {
      const LtfbArm& arm = arms[i];
      json << "    {\"population\": " << arm.population << ", \"feasible\": "
           << (arm.result.found_feasible ? "true" : "false")
           << ", \"quality_error\": "
           << TextTable::num(arm.result.best.quality_error, 6) << ", \"infer_us\": "
           << TextTable::num(1e6 * arm.result.best.modeled_infer_seconds, 3)
           << ", \"evaluations\": " << arm.result.evaluations()
           << ", \"tournaments\": " << arm.result.tournaments.size()
           << ", \"best_worker\": " << arm.result.best_worker
           << ", \"search_seconds\": " << TextTable::num(arm.seconds, 3) << "}"
           << (i + 1 < arms.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"quality_gate_ok\": " << (quality_ok ? "true" : "false") << ",\n"
         << "  \"determinism_ok\": " << (determinism_ok ? "true" : "false") << "\n"
         << "}\n";
  }
  std::cout << "wrote BENCH_nas_ltfb.json\n";
  if (!obs::export_prometheus_file("BENCH_nas_ltfb.prom", reg)) {
    std::cout << "FAIL: prometheus export\n";
    return 1;
  }
  std::cout << "wrote BENCH_nas_ltfb.prom\n";

  if (!quality_ok) {
    std::cout << "FAIL: LTFB P=8 lost to the serial hierarchical arm at equal "
                 "wall-clock budget\n";
  }
  if (!determinism_ok) std::cout << "FAIL: LTFB determinism contract violated\n";
  const bool ok = quality_ok && determinism_ok;
  std::cout << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
