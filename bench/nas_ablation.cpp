// Ablation of Algorithm 2 (a DESIGN.md-called-out design choice): the
// hierarchical two-level Bayesian optimization versus (a) a flat joint BO
// over the concatenated (K, theta) vector — the encoding §5.2 argues
// against — and (b) fixed-K searches that skip the outer loop entirely.
// Reported: best feasible f_e / f_c and wall time at equal budgets.

#include <iostream>
#include <numeric>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "nas/baseline_searchers.hpp"

int main(int argc, char** argv) {
  using namespace ahn;
  bench::print_header("2D-NAS ablation: hierarchical vs flat joint vs fixed-K",
                      "paper §5.2's design rationale");

  core::Config cfg = bench::bench_config();
  for (int i = 1; i < argc; ++i) cfg.apply(argv[i]);
  const core::AutoHPCnet framework(cfg);

  auto app = apps::make_application("MG");
  const std::size_t n_train = app->recommended_train_problems();
  app->generate_problems(n_train + cfg.valid_problems, cfg.seed);
  std::vector<std::size_t> train_ids(n_train);
  std::iota(train_ids.begin(), train_ids.end(), 0);
  std::vector<std::size_t> valid_ids(cfg.valid_problems);
  std::iota(valid_ids.begin(), valid_ids.end(), n_train);
  std::shared_ptr<sparse::Csr> sparse_storage;
  nas::SearchTask task = framework.make_task(
      *app, framework.acquire_samples(*app, train_ids), valid_ids, sparse_storage);

  const std::size_t budget = bench::scaled(12, 6);  // total candidate trainings

  TextTable table({"strategy", "feasible", "best f_e", "best f_c (us)", "search s"});
  auto report = [&](const std::string& name, const nas::NasResult& res, double secs) {
    table.add_row({name, res.found_feasible ? "yes" : "no",
                   TextTable::num(res.best.quality_error, 4),
                   TextTable::num(1e6 * res.best.modeled_infer_seconds, 2),
                   TextTable::num(secs, 2)});
  };

  {
    nas::NasOptions opts = cfg.nas_options();
    opts.outer_iterations = 3;
    opts.inner_iterations = budget / 3;
    const Timer t;
    const nas::NasResult res = nas::TwoDNas(opts).search(task);
    report("hierarchical 2D (Alg. 2)", res, t.seconds());
  }
  {
    nas::FlatJointOptions opts;
    opts.iterations = budget;
    opts.k_min = cfg.k_min;
    opts.k_max = cfg.k_max;
    opts.ae_epochs = cfg.ae_epochs;
    const Timer t;
    const nas::NasResult res = nas::FlatJointNas(opts).search(task);
    report("flat joint (K,theta) BO", res, t.seconds());
  }
  {
    // Fixed-K: inner search only, at a K the outer loop would have to guess.
    nas::NasOptions opts = cfg.nas_options();
    opts.search_type = nas::SearchType::FullInput;  // no reduction at all
    opts.inner_iterations = budget;
    const Timer t;
    const nas::NasResult res = nas::TwoDNas(opts).search(task);
    report("fixed: no reduction", res, t.seconds());
  }

  std::cout << table.render()
            << "\nexpected shape: the hierarchical search matches or beats the flat\n"
               "joint encoding at equal budget (separating the K and theta GPs is\n"
               "the paper's §5.2 argument), and beats no-reduction on f_c whenever\n"
               "reduction is viable.\n";
  return 0;
}
