// Microbenchmarks for §3.1's tooling costs (google-benchmark):
//   * instrumentation overhead — traced vs plain execution of a kernel,
//   * trace-size reduction from loop compression,
//   * DDDG construction, serial vs parallel (the paper parallelizes DDDG
//     building to keep trace analysis user-friendly).

#include <benchmark/benchmark.h>

#include <vector>

#include "trace/dddg.hpp"
#include "trace/features.hpp"
#include "trace/traced.hpp"

namespace {

using namespace ahn;
using namespace ahn::trace;

void run_traced_saxpy(TraceRecorder& rec, std::size_t n, bool use_loop_hints) {
  TracedArray x(rec, "x", std::vector<double>(n, 1.5), true);
  TracedArray y(rec, "y", std::vector<double>(n, 0.5), true);
  TracedScalar a(rec, "a", true, 2.0);
  rec.begin_region();
  if (use_loop_hints) rec.begin_loop();
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = a * x[i] + y[i];
    if (use_loop_hints) rec.end_loop_iteration();
  }
  if (use_loop_hints) rec.end_loop();
  rec.end_region();
}

void BM_PlainSaxpy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n, 1.5), y(n, 0.5);
  const double a = 2.0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] = a * x[i] + y[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlainSaxpy)->Arg(1024)->Arg(8192);

void BM_TracedSaxpy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    TraceRecorder rec;
    run_traced_saxpy(rec, n, /*use_loop_hints=*/false);
    benchmark::DoNotOptimize(rec.instructions().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TracedSaxpy)->Arg(1024)->Arg(8192);

void BM_TracedSaxpyLoopCompressed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double ratio = 1.0;
  for (auto _ : state) {
    TraceRecorder rec;
    run_traced_saxpy(rec, n, /*use_loop_hints=*/true);
    ratio = rec.compression_ratio();
    benchmark::DoNotOptimize(rec.instructions().data());
  }
  state.counters["trace_compression"] = ratio;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TracedSaxpyLoopCompressed)->Arg(1024)->Arg(8192);

/// Builds an uncompressed trace with varied per-iteration shape (so the
/// DDDG has real work at every index).
TraceRecorder divergent_trace(std::size_t n) {
  TraceRecorder rec;
  TracedArray x(rec, "x", std::vector<double>(n, 1.0), true);
  TracedArray y(rec, "y", n, true);
  TracedScalar acc(rec, "acc", true, 0.0);
  rec.begin_region();
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      y[i] = x[i] * 2.0;
    } else {
      acc = acc + x[i];
      y[i] = x[i] + 1.0;
    }
  }
  rec.end_region();
  return rec;
}

void BM_DddgBuildSerial(benchmark::State& state) {
  const TraceRecorder rec = divergent_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const Dddg g = Dddg::build(rec, 1);
    benchmark::DoNotOptimize(g.edge_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rec.instructions().size()));
}
BENCHMARK(BM_DddgBuildSerial)->Arg(2000)->Arg(20000);

void BM_DddgBuildParallel(benchmark::State& state) {
  const TraceRecorder rec = divergent_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const Dddg g = Dddg::build(rec, 4);
    benchmark::DoNotOptimize(g.edge_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rec.instructions().size()));
}
BENCHMARK(BM_DddgBuildParallel)->Arg(2000)->Arg(20000);

void BM_FeatureIdentification(benchmark::State& state) {
  const TraceRecorder rec = divergent_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const FeatureReport rep = identify_features(rec);
    benchmark::DoNotOptimize(rep.input_width);
  }
}
BENCHMARK(BM_FeatureIdentification)->Arg(2000)->Arg(20000);

}  // namespace

BENCHMARK_MAIN();
