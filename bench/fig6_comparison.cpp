// Reproduces Figure 6: application speedup of the four approximation
// approaches on all 11 applications —
//   * ACCEPT (fixed user topology, Type-II apps only, as in the paper),
//   * loop perforation (HPAC-style skip-rate tuning),
//   * Autokeras-like NAS (full input, loss-only objective),
//   * Auto-HPCnet (this framework).
// All methods must meet the same 10% quality requirement; methods that miss
// pay the restart-on-miss fallback, which is how low-quality models show up
// as slowdowns (the paper's observation for Autokeras on sparse inputs).

#include <iostream>
#include <numeric>

#include "apps/registry.hpp"
#include "baselines/accept.hpp"
#include "baselines/perforation.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "nas/baseline_searchers.hpp"

namespace {

using namespace ahn;

/// Evaluates a searched pipeline exactly like Fig. 5 does.
double evaluate_speedup(const apps::Application& app,
                        std::span<const std::size_t> eval_ids,
                        const nas::PipelineModel& model, const core::Config& cfg) {
  core::EvalOptions opts;
  opts.mu = cfg.mu;
  return core::evaluate_pipeline(app, eval_ids, model, runtime::DeviceModel{}, opts)
      .speedup;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahn;
  bench::print_header("Figure 6: Auto-HPCnet vs ACCEPT / loop perforation / Autokeras",
                      "paper Fig. 6");

  core::Config cfg = bench::bench_config();
  // Fig. 6 trains four methods per app; keep the per-method budget leaner
  // than Fig. 5's (the comparison's shape, not peak tuning, is the point).
  cfg.outer_iterations = bench::scaled(2);
  cfg.inner_iterations = bench::scaled(3, 2);
  cfg.retrain_epochs = bench::scaled(150, 60);
  for (int i = 1; i < argc; ++i) cfg.apply(argv[i]);
  const core::AutoHPCnet framework(cfg);

  TextTable table({"app", "ACCEPT", "perforation", "Autokeras", "Auto-HPCnet"});
  std::size_t ahn_wins = 0, rows = 0;

  for (const std::string& name : apps::application_names()) {
    auto app = apps::make_application(name);

    // Auto-HPCnet (also sets up the shared problem set + search task).
    const core::PipelineResult ahn_res = framework.run(*app);
    const double ahn_speedup = ahn_res.evaluation.speedup;
    const std::span<const std::size_t> eval_ids(ahn_res.eval_problems);

    // Rebuild the search task on the same data for the NN baselines.
    const std::size_t n_train = cfg.train_problems > 0
                                    ? cfg.train_problems
                                    : app->recommended_train_problems();
    std::vector<std::size_t> train_ids(n_train);
    std::iota(train_ids.begin(), train_ids.end(), 0);
    std::vector<std::size_t> valid_ids(cfg.valid_problems);
    std::iota(valid_ids.begin(), valid_ids.end(), n_train);
    std::shared_ptr<sparse::Csr> sparse_storage;
    nas::SearchTask task = framework.make_task(
        *app, framework.acquire_samples(*app, train_ids), valid_ids, sparse_storage);

    // ACCEPT: Type-II only (the paper's restriction).
    std::string accept_cell = "n/a";
    if (baselines::accept_topology(name).has_value()) {
      const nas::PipelineModel accept = baselines::train_accept_model(task, name);
      accept_cell = TextTable::num(evaluate_speedup(*app, eval_ids, accept, cfg)) + "x";
    }

    // Loop perforation, calibrated on the validation problems.
    baselines::PerforationOptions popts;
    popts.mu = cfg.mu;
    const baselines::PerforationResult perf =
        baselines::tune_and_evaluate(*app, valid_ids, eval_ids, popts);

    // Autokeras-like: full-input, loss-only search.
    nas::AutokerasOptions akopts;
    akopts.iterations = bench::scaled(6, 3);
    const nas::NasResult ak = nas::AutokerasLike(akopts).search(task);
    const double ak_speedup = evaluate_speedup(*app, eval_ids, ak.best, cfg);

    table.add_row({name, accept_cell, TextTable::num(perf.speedup) + "x",
                   TextTable::num(ak_speedup) + "x",
                   TextTable::num(ahn_speedup) + "x"});
    ++rows;
    if (ahn_speedup >= perf.speedup && ahn_speedup >= ak_speedup) ++ahn_wins;
    std::cout << "  [" << name << "] perforation " << TextTable::num(perf.speedup)
              << "x (keep " << perf.keep_fraction << "), autokeras "
              << TextTable::num(ak_speedup) << "x, Auto-HPCnet "
              << TextTable::num(ahn_speedup) << "x\n" << std::flush;
  }

  std::cout << "\n" << table.render();
  std::cout << "\nAuto-HPCnet best-or-tied on " << ahn_wins << "/" << rows
            << " applications (paper: consistently best on all 11)\n";
  return 0;
}
