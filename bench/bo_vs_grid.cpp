// Reproduces §7.2 "Effectiveness of Bayesian Optimization": for one
// representative application per type, run the quality-aware Bayesian
// topology search and the grid search on the same task, and report
// quality-improving search steps per hour — the paper's efficiency
// indicator (BO: 3.3 / 6.5 / 2.1 vs grid: 1.6 / 3.2 / 1.9 for Types
// I / II / III).

#include <iostream>
#include <numeric>

#include "apps/registry.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "nas/baseline_searchers.hpp"

namespace {

using namespace ahn;

struct TimeToQuality {
  std::size_t evaluations = 0;  ///< candidate trainings until target met
  double seconds = 0.0;         ///< wall time until target met
  bool reached = false;
};

/// Walks the search log until the quality target is first met ("reach the
/// same model quality", §7.2).
TimeToQuality time_to_quality(const std::vector<nas::SearchStep>& steps,
                              double target) {
  TimeToQuality out;
  for (const nas::SearchStep& s : steps) {
    ++out.evaluations;
    out.seconds += s.elapsed_seconds;
    if (s.quality_error <= target) {
      out.reached = true;
      return out;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ahn;
  bench::print_header("BO vs grid search efficiency",
                      "paper §7.2 'Effectiveness of Bayesian Optimization'");

  core::Config cfg = bench::bench_config();
  for (int i = 1; i < argc; ++i) cfg.apply(argv[i]);
  const core::AutoHPCnet framework(cfg);

  const std::vector<std::pair<std::string, std::string>> reps{
      {"I", "MG"}, {"II", "Blackscholes"}, {"III", "Laghos"}};

  TextTable table({"type", "app", "target f_e", "BO evals->target",
                   "grid evals->target", "BO s->target", "grid s->target",
                   "BO targets/hour", "grid targets/hour"});
  for (const auto& [type_name, app_name] : reps) {
    auto app = apps::make_application(app_name);
    const std::size_t n_train = app->recommended_train_problems();
    app->generate_problems(n_train + cfg.valid_problems, cfg.seed);
    std::vector<std::size_t> train_ids(n_train);
    std::iota(train_ids.begin(), train_ids.end(), 0);
    std::vector<std::size_t> valid_ids(cfg.valid_problems);
    std::iota(valid_ids.begin(), valid_ids.end(), n_train);
    std::shared_ptr<sparse::Csr> sparse_storage;
    nas::SearchTask task = framework.make_task(
        *app, framework.acquire_samples(*app, train_ids), valid_ids, sparse_storage);

    // Same evaluation budget for both searchers: the 4x4 topology grid vs
    // 16 BO iterations (full-input so the comparison isolates the search).
    nas::NasOptions bo_opts = cfg.nas_options();
    bo_opts.search_type = nas::SearchType::FullInput;
    bo_opts.inner_iterations = bench::scaled(16, 8);
    const Timer bo_timer;
    const nas::NasResult bo = nas::TwoDNas(bo_opts).search(task);
    const double bo_seconds = bo_timer.seconds();

    nas::GridSearchOptions grid_opts;  // default 4x4 = 16 evaluations
    const Timer grid_timer;
    const nas::NasResult grid = nas::GridSearch(grid_opts).search(task);
    const double grid_seconds = grid_timer.seconds();

    // "The same model quality" = the application's actual quality
    // requirement (qualityLoss, the epsilon every method must meet).
    const double target = cfg.quality_loss;
    const TimeToQuality bo_t = time_to_quality(bo.steps, target);
    const TimeToQuality grid_t = time_to_quality(grid.steps, target);
    auto evals_cell = [](const TimeToQuality& t) {
      return t.reached ? std::to_string(t.evaluations) : std::string("never");
    };
    auto secs_cell = [](const TimeToQuality& t) {
      return t.reached ? TextTable::num(t.seconds, 1) : std::string("-");
    };
    auto rate_cell = [](const TimeToQuality& t) {
      return t.reached ? TextTable::num(3600.0 / std::max(t.seconds, 1e-9), 1)
                       : std::string("0 (never)");
    };
    table.add_row({type_name, app_name, TextTable::num(target, 4),
                   evals_cell(bo_t), evals_cell(grid_t), secs_cell(bo_t),
                   secs_cell(grid_t), rate_cell(bo_t), rate_cell(grid_t)});
    std::cout << "  [" << app_name << "] BO " << bo.evaluations() << " evals in "
              << TextTable::num(bo_seconds, 1) << "s (best f_e "
              << TextTable::num(bo.best.quality_error, 4) << "); grid "
              << grid.evaluations() << " evals in " << TextTable::num(grid_seconds, 1)
              << "s (best f_e " << TextTable::num(grid.best.quality_error, 4) << ")\n";
  }

  std::cout << "\n" << table.render();
  std::cout << "\npaper reference (search efficiency toward equal quality): "
               "BO 3.3 / 6.5 / 2.1 vs grid 1.6 / 3.2 / 1.9 for Types I/II/III\n"
               "(absolute rates differ — their unit of work is hours of DGX "
               "training — the shape to check is BO reaching the common quality\n"
               "target with fewer evaluations / sooner, i.e. higher targets/hour)\n";
  return 0;
}
