// Tests for src/gp: Cholesky linear algebra, Gaussian-process regression
// (interpolation, uncertainty, hyperparameter tuning), and the constrained
// Bayesian optimizer (convergence on known objectives, constraint handling).

#include <gtest/gtest.h>

#include <cmath>

#include "gp/bayesopt.hpp"
#include "gp/gaussian_process.hpp"
#include "gp/linalg.hpp"

namespace ahn::gp {
namespace {

TEST(Linalg, CholeskyFactorizesSpd) {
  // A = L L^T with L = [[2,0],[1,3]] -> A = [[4,2],[2,10]]
  const std::vector<double> a{4, 2, 2, 10};
  const std::vector<double> l = cholesky(a, 2);
  EXPECT_NEAR(l[0], 2.0, 1e-12);
  EXPECT_NEAR(l[2], 1.0, 1e-12);
  EXPECT_NEAR(l[3], 3.0, 1e-12);
}

TEST(Linalg, CholeskyRejectsNonSpd) {
  const std::vector<double> a{1, 2, 2, 1};  // indefinite
  EXPECT_THROW((void)cholesky(a, 2), Error);
}

TEST(Linalg, SolveRoundTrip) {
  const std::vector<double> a{4, 2, 2, 10};
  const std::vector<double> l = cholesky(a, 2);
  const std::vector<double> b{6, 24};
  const std::vector<double> x = solve_cholesky(l, 2, b);
  // Verify A x = b.
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 6.0, 1e-10);
  EXPECT_NEAR(2 * x[0] + 10 * x[1], 24.0, 1e-10);
}

TEST(Linalg, LogDetMatchesDirect) {
  const std::vector<double> a{4, 2, 2, 10};
  const std::vector<double> l = cholesky(a, 2);
  EXPECT_NEAR(log_det_from_cholesky(l, 2), std::log(4.0 * 10.0 - 4.0), 1e-10);
}

TEST(Kernel, RbfAndMaternBasicProperties) {
  KernelParams rbf{.kind = KernelKind::Rbf, .length_scale = 0.5, .amplitude = 2.0};
  EXPECT_NEAR(kernel_value(rbf, 0.0), 2.0, 1e-12);
  EXPECT_LT(kernel_value(rbf, 1.0), kernel_value(rbf, 0.1));
  KernelParams mat{.kind = KernelKind::Matern52, .length_scale = 0.5, .amplitude = 1.0};
  EXPECT_NEAR(kernel_value(mat, 0.0), 1.0, 1e-12);
  EXPECT_GT(kernel_value(mat, 0.2), kernel_value(mat, 0.8));
}

TEST(Gp, InterpolatesTrainingPoints) {
  GaussianProcess gp(KernelParams{.length_scale = 0.4, .noise = 1e-8});
  std::vector<std::vector<double>> xs{{0.0}, {0.5}, {1.0}};
  std::vector<double> ys{1.0, -1.0, 2.0};
  gp.fit(xs, ys, /*tune=*/false);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto p = gp.predict(xs[i]);
    EXPECT_NEAR(p.mean, ys[i], 1e-3);
    EXPECT_LT(p.variance, 1e-3);
  }
}

TEST(Gp, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp(KernelParams{.length_scale = 0.2, .noise = 1e-6});
  gp.fit({{0.2}, {0.4}}, {0.0, 1.0}, false);
  const auto near = gp.predict(std::vector<double>{0.3});
  const auto far = gp.predict(std::vector<double>{0.95});
  EXPECT_GT(far.variance, near.variance);
}

TEST(Gp, FitsSmoothFunctionAccurately) {
  GaussianProcess gp;
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 20; ++i) {
    const double x = i / 20.0;
    xs.push_back({x});
    ys.push_back(std::sin(6.0 * x));
  }
  gp.fit(xs, ys, true);  // hyperparameter tuning on
  double worst = 0.0;
  for (int i = 0; i < 19; ++i) {
    const double x = (i + 0.5) / 20.0;
    const auto p = gp.predict(std::vector<double>{x});
    worst = std::max(worst, std::abs(p.mean - std::sin(6.0 * x)));
  }
  EXPECT_LT(worst, 0.05);
}

TEST(Gp, HandlesDuplicateObservations) {
  GaussianProcess gp(KernelParams{.noise = 1e-10});
  // Exact duplicates would make K singular without jitter escalation.
  gp.fit({{0.5}, {0.5}, {0.7}}, {1.0, 1.0, 2.0}, false);
  EXPECT_NO_THROW((void)gp.predict(std::vector<double>{0.6}));
}

TEST(Gp, StandardizesLargeTargets) {
  GaussianProcess gp;
  gp.fit({{0.0}, {1.0}}, {1e6, 2e6}, false);
  const auto p = gp.predict(std::vector<double>{0.0});
  EXPECT_NEAR(p.mean, 1e6, 1e5);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(Bo, ConvergesOnSmoothUnconstrained1d) {
  // Minimize (x - 0.3)^2; constraint always satisfied.
  BoOptions opts;
  opts.dim = 1;
  opts.constraint_threshold = 1.0;
  opts.init_samples = 4;
  BayesianOptimizer bo(opts, Rng(1));
  for (int i = 0; i < 25; ++i) {
    const auto x = bo.propose();
    const double f = (x[0] - 0.3) * (x[0] - 0.3);
    bo.observe({x, f, 0.0});
  }
  const auto best = bo.best_feasible();
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->x[0], 0.3, 0.12);
}

TEST(Bo, RespectsConstraint) {
  // Objective decreases with x, but x > 0.5 violates the constraint: the
  // best feasible point must sit near the boundary from the left.
  BoOptions opts;
  opts.dim = 1;
  opts.constraint_threshold = 0.1;
  opts.init_samples = 5;
  BayesianOptimizer bo(opts, Rng(2));
  for (int i = 0; i < 30; ++i) {
    const auto x = bo.propose();
    const double f = 1.0 - x[0];
    const double c = x[0] > 0.5 ? 1.0 : 0.0;
    bo.observe({x, f, c});
  }
  const auto best = bo.best_feasible();
  ASSERT_TRUE(best.has_value());
  EXPECT_LE(best->x[0], 0.5);
  EXPECT_GT(best->x[0], 0.2);  // pushed toward the boundary
}

TEST(Bo, BeatsRandomSearchOnBudget) {
  // Same evaluation budget: BO should find a lower objective than pure
  // random search on a smooth 2-D bowl (statistically; fixed seeds).
  auto objective = [](const std::vector<double>& x) {
    const double a = x[0] - 0.7, b = x[1] - 0.2;
    return a * a + b * b;
  };
  BoOptions opts;
  opts.dim = 2;
  opts.constraint_threshold = 1.0;
  opts.init_samples = 5;
  BayesianOptimizer bo(opts, Rng(3));
  double bo_best = 1e30;
  for (int i = 0; i < 30; ++i) {
    const auto x = bo.propose();
    const double f = objective(x);
    bo_best = std::min(bo_best, f);
    bo.observe({x, f, 0.0});
  }
  Rng rng(3);
  double rand_best = 1e30;
  for (int i = 0; i < 30; ++i) {
    rand_best = std::min(rand_best, objective({rng.uniform(), rng.uniform()}));
  }
  EXPECT_LT(bo_best, rand_best);
}

TEST(Bo, AcquisitionZeroBeforeModels) {
  BoOptions opts;
  opts.dim = 1;
  BayesianOptimizer bo(opts, Rng(4));
  EXPECT_EQ(bo.acquisition(std::vector<double>{0.5}), 0.0);
}

TEST(Bo, NoFeasibleReturnsNullopt) {
  BoOptions opts;
  opts.dim = 1;
  opts.constraint_threshold = 0.1;
  BayesianOptimizer bo(opts, Rng(5));
  bo.observe({{0.5}, 1.0, 5.0});  // infeasible
  EXPECT_FALSE(bo.best_feasible().has_value());
}

TEST(Bo, HistoryAccumulates) {
  BoOptions opts;
  opts.dim = 1;
  BayesianOptimizer bo(opts, Rng(6));
  for (int i = 0; i < 7; ++i) {
    const auto x = bo.propose();
    bo.observe({x, 1.0, 0.0});
  }
  EXPECT_EQ(bo.history().size(), 7u);
}

TEST(Bo, ProposeBatchOfOneMatchesPropose) {
  BoOptions opts;
  opts.dim = 2;
  opts.init_samples = 3;
  // Identically seeded optimizers fed identical observations must draw the
  // same point whether asked via propose() or propose_batch(1).
  BayesianOptimizer a(opts, Rng(7));
  BayesianOptimizer b(opts, Rng(7));
  for (int i = 0; i < 6; ++i) {
    const auto xa = a.propose();
    const auto xb = b.propose_batch(1);
    ASSERT_EQ(xb.size(), 1u);
    ASSERT_EQ(xa, xb[0]);
    const double f = (xa[0] - 0.4) * (xa[0] - 0.4) + xa[1];
    a.observe({xa, f, 0.0});
    b.observe({xb[0], f, 0.0});
  }
}

TEST(Bo, ProposeBatchOfZeroIsEmptyAndConsumesNothing) {
  BoOptions opts;
  opts.dim = 1;
  opts.init_samples = 2;
  // q=0 is the degenerate edge a caller with no free evaluation slots hits
  // (the population searcher's P=1 degradation): empty batch, and the Rng
  // stream untouched — the next proposal matches an optimizer never asked.
  BayesianOptimizer a(opts, Rng(9));
  BayesianOptimizer b(opts, Rng(9));
  EXPECT_TRUE(a.propose_batch(0).empty());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(a.propose_batch(0).empty());
    const auto xa = a.propose();
    const auto xb = b.propose();
    ASSERT_EQ(xa, xb);
    const double f = (xa[0] - 0.3) * (xa[0] - 0.3);
    a.observe({xa, f, 0.0});
    b.observe({xb, f, 0.0});
  }
  EXPECT_EQ(a.history().size(), b.history().size());
}

TEST(Bo, ProposeBatchSpreadsAndRestoresHistory) {
  BoOptions opts;
  opts.dim = 1;
  opts.init_samples = 3;
  BayesianOptimizer bo(opts, Rng(8));
  for (int i = 0; i < 5; ++i) {
    const auto x = bo.propose();
    bo.observe({x, (x[0] - 0.5) * (x[0] - 0.5), 0.0});
  }
  const std::size_t before = bo.history().size();
  const auto batch = bo.propose_batch(4);
  EXPECT_EQ(batch.size(), 4u);
  // Constant-liar fantasies must not leak into the real history.
  EXPECT_EQ(bo.history().size(), before);
  // The batch should not collapse onto a single point.
  bool any_distinct = false;
  for (std::size_t i = 1; i < batch.size(); ++i) {
    if (std::abs(batch[i][0] - batch[0][0]) > 1e-9) any_distinct = true;
  }
  EXPECT_TRUE(any_distinct);
}

}  // namespace
}  // namespace ahn::gp
