// Tests for the serving-runtime reliability layer (docs/RELIABILITY.md):
// the Status/Result taxonomy, the deterministic FaultInjector, the QoI
// circuit breaker state machine, per-request deadlines, transient-fault
// retries, graceful drain/shutdown, and the no-hung-future contract under
// injected faults + concurrent shutdown.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "nn/topology.hpp"
#include "runtime/circuit_breaker.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/orchestrator.hpp"
#include "runtime/thread_pool.hpp"

namespace ahn::runtime {
namespace {

// ------------------------------------------------------------ Status/Result

TEST(Status, CodesNamesAndMessages) {
  EXPECT_TRUE(Status::ok().is_ok());
  EXPECT_EQ(Status::ok().code(), StatusCode::kOk);
  const Status s(StatusCode::kDeadlineExceeded, "too slow");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "DEADLINE_EXCEEDED: too slow");
  EXPECT_STREQ(status_code_name(StatusCode::kShuttingDown), "SHUTTING_DOWN");
  EXPECT_STREQ(status_code_name(StatusCode::kQoIRejected), "QOI_REJECTED");
}

TEST(Status, ResultHoldsValueOrStatus) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(0), 7);

  Result<int> bad(Status(StatusCode::kNotFound, "nope"));
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW((void)bad.value(), Error);
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjector, DeterministicFromSeed) {
  FaultSpec spec;
  spec.transient_prob = 0.3;
  spec.latency_spike_prob = 0.3;
  FaultInjector a(spec, /*seed=*/123);
  FaultInjector b(spec, /*seed=*/123);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.draw_transient(ServingPhase::kFetch),
              b.draw_transient(ServingPhase::kFetch));
    EXPECT_EQ(a.draw_latency_spike(ServingPhase::kRun),
              b.draw_latency_spike(ServingPhase::kRun));
  }
  EXPECT_EQ(a.injected(FaultKind::kTransient), b.injected(FaultKind::kTransient));
  EXPECT_GT(a.total_injected(), 0u);
}

TEST(FaultInjector, SpecIsRuntimeMutable) {
  FaultInjector inj(FaultSpec{}, 7);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(inj.draw_transient(ServingPhase::kRun));

  FaultSpec storm;
  storm.transient_prob = 1.0;
  storm.nan_prob = 1.0;
  storm.batch_drop_prob = 1.0;
  inj.set_spec(storm);
  EXPECT_TRUE(inj.draw_transient(ServingPhase::kRun));
  EXPECT_TRUE(inj.draw_nan_corruption());
  EXPECT_TRUE(inj.draw_batch_drop());

  inj.set_spec(FaultSpec{});  // storm over
  EXPECT_FALSE(inj.draw_transient(ServingPhase::kRun));
  EXPECT_EQ(inj.injected(FaultKind::kTransient), 1u);
  EXPECT_EQ(inj.injected(FaultKind::kNanCorruption), 1u);
  EXPECT_EQ(inj.injected(FaultKind::kBatchDrop), 1u);
}

// ------------------------------------------------------------ CircuitBreaker

CircuitBreakerOptions fast_breaker(std::atomic<double>* fake_clock) {
  CircuitBreakerOptions o;
  o.window = 8;
  o.min_samples = 4;
  o.trip_threshold = 0.5;
  o.cooldown_seconds = 1.0;
  o.half_open_probes = 2;
  o.clock = [fake_clock] { return fake_clock->load(); };
  return o;
}

TEST(CircuitBreaker, TripsOnFallbackRateAndRecoversViaProbes) {
  std::atomic<double> clock{0.0};
  ServingStats stats;
  CircuitBreaker br(fast_breaker(&clock), &stats);
  EXPECT_EQ(br.state(), BreakerState::kClosed);

  // Four straight misses: rate 1.0 over >= min_samples trips the breaker.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(br.admit(), CircuitBreaker::Route::kSurrogate);
    br.record_outcome(false);
  }
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.trips(), 1u);
  EXPECT_EQ(stats.breaker_transitions("closed", "open"), 1u);

  // During cool-down everything routes to the original-code path.
  clock.store(0.5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(br.admit(), CircuitBreaker::Route::kOriginal);
  }
  EXPECT_EQ(br.state(), BreakerState::kOpen);

  // Cool-down elapsed: half-open admits exactly `half_open_probes` probes.
  clock.store(1.5);
  EXPECT_EQ(br.admit(), CircuitBreaker::Route::kSurrogate);  // probe 1
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(br.admit(), CircuitBreaker::Route::kSurrogate);  // probe 2
  EXPECT_EQ(br.admit(), CircuitBreaker::Route::kOriginal);   // saturated
  br.record_outcome(true);
  br.record_outcome(true);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  EXPECT_EQ(stats.breaker_transitions("open", "half_open"), 1u);
  EXPECT_EQ(stats.breaker_transitions("half_open", "closed"), 1u);

  // The window restarted: old misses must not re-trip immediately.
  EXPECT_DOUBLE_EQ(br.window_fallback_rate(), 0.0);
  br.record_outcome(true);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, ProbeMissReopens) {
  std::atomic<double> clock{0.0};
  CircuitBreaker br(fast_breaker(&clock));
  for (int i = 0; i < 4; ++i) {
    (void)br.admit();
    br.record_outcome(false);
  }
  ASSERT_EQ(br.state(), BreakerState::kOpen);

  clock.store(2.0);
  EXPECT_EQ(br.admit(), CircuitBreaker::Route::kSurrogate);  // probe
  br.record_outcome(false);                                  // probe misses
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.trips(), 2u);
  // The fresh OPEN dwell starts at the reopen time.
  clock.store(2.5);
  EXPECT_EQ(br.admit(), CircuitBreaker::Route::kOriginal);
}

// --------------------------------------------------------------- test rig

std::shared_ptr<ServableModel> rig_model(
    std::function<bool(const Tensor&, const Tensor&)> qoi_check = nullptr,
    std::function<Tensor(const Tensor&)> fallback = nullptr) {
  Rng rng(1);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::Network net = nn::build_surrogate(spec, 4, 2, rng);
  auto m = std::make_shared<ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  m->qoi_check = std::move(qoi_check);
  m->fallback = std::move(fallback);
  return m;
}

Tensor request_row() { return Tensor({1, 4}, {0.1, 0.2, 0.3, 0.4}); }

/// The "original code" result: a row the surrogate would never produce.
Tensor exact_row(const Tensor&) { return Tensor({1, 2}, {42.0, 42.0}); }

OrchestratorOptions inline_opts() {
  OrchestratorOptions opts;
  opts.max_batch = 1;               // every submit executes inline
  opts.batch_delay_seconds = 0.0;   // no flusher thread
  opts.retry.initial_backoff_seconds = 1e-6;
  return opts;
}

// ------------------------------------------------------- deadlines & retries

TEST(Reliability, ExpiredDeadlineIsNotCoalesced) {
  OrchestratorOptions opts;
  opts.max_batch = 32;
  opts.batch_delay_seconds = 0.0;
  Orchestrator orc(DeviceModel{}, opts);
  orc.set_model("m", rig_model());

  RequestOptions expired;
  expired.deadline = BatchingQueue::Clock::now() - std::chrono::milliseconds(1);
  auto dead = orc.run_model_batched("m", request_row(), expired);
  // Resolved immediately, without reaching a batch.
  EXPECT_EQ(dead.get().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(orc.stats().batches_executed(), 0u);
  EXPECT_EQ(orc.stats().deadline_misses(), 1u);

  // A request that expires while *pending* resolves at dispatch time and the
  // live request in the same batch is still served.
  auto expiring = orc.run_model_batched("m", request_row(), RequestOptions::within(1e-3));
  auto live = orc.run_model_batched("m", request_row());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  orc.flush_batches();
  EXPECT_EQ(expiring.get().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(live.get().is_ok());
  const ServingStatsSnapshot snap = orc.stats().snapshot();
  EXPECT_EQ(snap.deadline_misses, 2u);
  ASSERT_TRUE(snap.batch_histogram.contains(1));  // only the live row ran
  EXPECT_EQ(snap.batch_histogram.at(1), 1u);
}

TEST(Reliability, TransientFaultsExhaustRetryBudget) {
  OrchestratorOptions opts = inline_opts();
  opts.retry.max_attempts = 3;
  Orchestrator orc(DeviceModel{}, opts);
  orc.set_model("m", rig_model());
  FaultSpec always_fail;
  always_fail.transient_prob = 1.0;
  orc.set_fault_injector(std::make_shared<FaultInjector>(always_fail, 9));

  auto f = orc.run_model_batched("m", request_row());
  EXPECT_EQ(f.get().code(), StatusCode::kTransientFailure);
  EXPECT_EQ(orc.stats().retries(), 2u);  // attempts - 1
  const ServingStatsSnapshot snap = orc.stats().snapshot();
  EXPECT_EQ(snap.fault_kinds.at("transient"), 3u);  // one per attempt

  // The sync path shares the retry machinery.
  orc.put_tensor("x", request_row());
  EXPECT_EQ(orc.run_model("m", "x", "y").code(), StatusCode::kTransientFailure);
}

TEST(Reliability, RetriesRecoverFromIntermittentFaults) {
  OrchestratorOptions opts = inline_opts();
  opts.retry.max_attempts = 10;
  Orchestrator orc(DeviceModel{}, opts);
  orc.set_model("m", rig_model());
  FaultSpec flaky;
  flaky.transient_prob = 0.1;  // ~34% of attempts lose a phase draw
  flaky.batch_drop_prob = 0.05;
  orc.set_fault_injector(std::make_shared<FaultInjector>(flaky, 77));

  for (int i = 0; i < 20; ++i) {
    auto f = orc.run_model_batched("m", request_row());
    EXPECT_TRUE(f.get().is_ok());  // 10 attempts make failure vanishing
  }
  EXPECT_EQ(orc.stats().requests_served(), 20u);
}

TEST(Reliability, LatencySpikeInflatesModeledPhase) {
  OrchestratorOptions opts = inline_opts();
  Orchestrator orc(DeviceModel{}, opts);
  orc.set_model("m", rig_model());

  auto clean = orc.run_model_batched("m", request_row());
  ASSERT_TRUE(clean.get().is_ok());
  const double clean_p100 = orc.stats().latency_percentile("total", 100.0);

  FaultSpec spiky;
  spiky.latency_spike_prob = 1.0;
  spiky.latency_spike_seconds = 0.5;  // dwarfs the modeled microseconds
  orc.set_fault_injector(std::make_shared<FaultInjector>(spiky, 5));
  auto spiked = orc.run_model_batched("m", request_row());
  ASSERT_TRUE(spiked.get().is_ok());
  EXPECT_GT(orc.stats().latency_percentile("total", 100.0), clean_p100 + 0.4);
  EXPECT_GT(orc.stats().faults_injected(), 0u);
}

// ----------------------------------------------------------- QoI & breaker

TEST(Reliability, NanCorruptionRejectedWithoutFallback) {
  Orchestrator orc(DeviceModel{}, inline_opts());
  orc.set_model("m", rig_model());  // no qoi_check, no fallback
  FaultSpec poison;
  poison.nan_prob = 1.0;
  orc.set_fault_injector(std::make_shared<FaultInjector>(poison, 3));

  auto f = orc.run_model_batched("m", request_row());
  EXPECT_EQ(f.get().code(), StatusCode::kQoIRejected);
  EXPECT_EQ(orc.stats().qoi_fallbacks(), 1u);
}

TEST(Reliability, NanCorruptionFallsBackToOriginalCode) {
  Orchestrator orc(DeviceModel{}, inline_opts());
  orc.set_model("m", rig_model(nullptr, exact_row));
  FaultSpec poison;
  poison.nan_prob = 1.0;
  orc.set_fault_injector(std::make_shared<FaultInjector>(poison, 3));

  auto f = orc.run_model_batched("m", request_row());
  Result<Tensor> r = f.get();
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r.value().at(0, 0), 42.0);  // exact path, not NaN
  EXPECT_EQ(orc.stats().qoi_fallbacks(), 1u);
}

// The acceptance-criteria lifecycle: injected QoI misses trip the breaker,
// cool-down traffic is served by the original-code path, and half-open
// probes restore surrogate serving once the faults stop.
TEST(Reliability, BreakerLifecycleUnderQoIFaults) {
  auto faulty = std::make_shared<std::atomic<bool>>(true);
  auto fake_clock = std::make_shared<std::atomic<double>>(0.0);

  OrchestratorOptions opts = inline_opts();
  opts.breaker.window = 8;
  opts.breaker.min_samples = 4;
  opts.breaker.trip_threshold = 0.5;
  opts.breaker.cooldown_seconds = 1.0;
  opts.breaker.half_open_probes = 2;
  opts.breaker.clock = [fake_clock] { return fake_clock->load(); };
  Orchestrator orc(DeviceModel{}, opts);
  orc.set_model("m", rig_model(
                         [faulty](const Tensor&, const Tensor&) {
                           return !faulty->load();  // miss while faulty
                         },
                         exact_row));

  // Phase 1 — fault storm: every served row misses QoI. Each request still
  // resolves OK (transparent per-request fallback), and the miss rate trips
  // the breaker.
  for (int i = 0; i < 4; ++i) {
    Result<Tensor> r = orc.run_model_batched("m", request_row()).get();
    ASSERT_TRUE(r.is_ok());
    EXPECT_DOUBLE_EQ(r.value().at(0, 0), 42.0);  // original-code result
  }
  EXPECT_EQ(orc.breaker("m").state(), BreakerState::kOpen);
  EXPECT_EQ(orc.stats().breaker_transitions("closed", "open"), 1u);
  EXPECT_EQ(orc.stats().qoi_fallbacks(), 4u);
  const std::uint64_t batches_during_storm = orc.stats().batches_executed();

  // Phase 2 — cool-down: requests route straight to the original code; the
  // surrogate sees no traffic at all.
  fake_clock->store(0.5);
  for (int i = 0; i < 6; ++i) {
    Result<Tensor> r = orc.run_model_batched("m", request_row()).get();
    ASSERT_TRUE(r.is_ok());
    EXPECT_DOUBLE_EQ(r.value().at(0, 0), 42.0);
  }
  EXPECT_EQ(orc.stats().breaker_fallbacks(), 6u);
  EXPECT_EQ(orc.stats().batches_executed(), batches_during_storm);
  EXPECT_EQ(orc.breaker("m").state(), BreakerState::kOpen);

  // Phase 3 — faults stop, cool-down elapses: half-open probes run on the
  // surrogate, pass QoI, and close the breaker.
  faulty->store(false);
  fake_clock->store(1.5);
  for (int i = 0; i < 2; ++i) {
    Result<Tensor> r = orc.run_model_batched("m", request_row()).get();
    ASSERT_TRUE(r.is_ok());
    EXPECT_NE(r.value().at(0, 0), 42.0);  // surrogate-served probe
  }
  EXPECT_EQ(orc.breaker("m").state(), BreakerState::kClosed);
  EXPECT_EQ(orc.stats().breaker_transitions("open", "half_open"), 1u);
  EXPECT_EQ(orc.stats().breaker_transitions("half_open", "closed"), 1u);

  // Phase 4 — surrogate serving restored.
  const std::uint64_t before = orc.stats().batches_executed();
  Result<Tensor> r = orc.run_model_batched("m", request_row()).get();
  ASSERT_TRUE(r.is_ok());
  EXPECT_NE(r.value().at(0, 0), 42.0);
  EXPECT_EQ(orc.stats().batches_executed(), before + 1);
}

// ------------------------------------------------------------ drain/shutdown

TEST(Reliability, PendingRequestsAtTeardownGetShuttingDownStatus) {
  std::future<Result<Tensor>> stranded;
  {
    OrchestratorOptions opts;
    opts.max_batch = 8;              // never fills
    opts.batch_delay_seconds = 0.0;  // never swept
    Orchestrator orc(DeviceModel{}, opts);
    orc.set_model("m", rig_model());
    stranded = orc.run_model_batched("m", request_row());
    // Destroyed with the row still pending: typed status, no broken promise.
  }
  EXPECT_EQ(stranded.get().code(), StatusCode::kShuttingDown);
}

TEST(Reliability, DrainServesAcceptedWorkThenRejectsNew) {
  OrchestratorOptions opts;
  opts.max_batch = 8;
  opts.batch_delay_seconds = 0.0;
  Orchestrator orc(DeviceModel{}, opts);
  orc.set_model("m", rig_model());

  auto accepted = orc.run_model_batched("m", request_row());
  orc.put_tensor("x", request_row());
  auto accepted_async = orc.run_model_async("m", "x", "y");

  orc.drain();
  EXPECT_TRUE(accepted.get().is_ok());        // pending batch was flushed
  EXPECT_TRUE(accepted_async.get().is_ok());  // in-flight async completed
  EXPECT_TRUE(orc.has_tensor("y"));

  // Everything after drain resolves immediately with a typed status.
  EXPECT_EQ(orc.run_model_batched("m", request_row()).get().code(),
            StatusCode::kShuttingDown);
  EXPECT_EQ(orc.run_model_async("m", "x", "z").get().code(),
            StatusCode::kShuttingDown);
  EXPECT_EQ(orc.run_model("m", "x", "z").code(), StatusCode::kShuttingDown);
  EXPECT_GE(orc.stats().shutdown_rejections(), 3u);
  orc.drain();  // idempotent
}

TEST(ThreadPool, WaitIdleBlocksUntilQueueDrains) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    (void)pool.submit([&ran] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ran.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(pool.pending(), 0u);
}

// The acceptance-criteria stress: injected faults + concurrent shutdown;
// every accepted request resolves to a result or a typed status — no hangs,
// no broken promises.
TEST(Reliability, NoHungFuturesUnderFaultsAndConcurrentShutdown) {
  OrchestratorOptions opts;
  opts.max_batch = 8;
  opts.batch_delay_seconds = 100e-6;
  opts.pool_threads = 4;
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff_seconds = 1e-6;
  Orchestrator orc(DeviceModel{}, opts);
  orc.set_model("m", rig_model(nullptr, exact_row));

  FaultSpec chaos;
  chaos.transient_prob = 0.02;
  chaos.nan_prob = 0.05;
  chaos.latency_spike_prob = 0.01;
  chaos.latency_spike_seconds = 1e-5;
  chaos.batch_drop_prob = 0.01;
  orc.set_fault_injector(std::make_shared<FaultInjector>(chaos, 1234));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::vector<std::future<Result<Tensor>>>> futures(kThreads);
  std::vector<std::future<Status>> async_futures;
  std::mutex async_mu;
  std::atomic<int> submitted{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      futures[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        RequestOptions request;
        if (i % 4 == 0) request = RequestOptions::within(200e-6);
        futures[t].push_back(orc.run_model_batched("m", request_row(), request));
        if (i % 10 == 0) {
          const std::string key = "k" + std::to_string(t);
          orc.put_tensor(key, request_row());
          auto f = orc.run_model_async("m", key, key + "_out");
          const std::lock_guard<std::mutex> lock(async_mu);
          async_futures.push_back(std::move(f));
        }
        submitted.fetch_add(1);
      }
    });
  }

  // Shut down while roughly half the traffic is still arriving.
  while (submitted.load() < kThreads * kPerThread / 2) std::this_thread::yield();
  orc.drain();
  for (auto& th : threads) th.join();
  orc.flush_batches();  // anything that slipped in resolves too

  std::size_t ok = 0, typed = 0;
  const auto allowed = [](StatusCode c) {
    return c == StatusCode::kDeadlineExceeded || c == StatusCode::kTransientFailure ||
           c == StatusCode::kShuttingDown;
  };
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready)
          << "hung future";
      Result<Tensor> r = f.get();  // throws only on a broken promise
      if (r.is_ok()) {
        ++ok;
      } else {
        EXPECT_TRUE(allowed(r.code())) << r.status().to_string();
        ++typed;
      }
    }
  }
  for (auto& f : async_futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready)
        << "hung async future";
    const Status s = f.get();
    EXPECT_TRUE(s.is_ok() || allowed(s.code())) << s.to_string();
  }
  EXPECT_EQ(ok + typed, static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_GT(ok, 0u);  // traffic accepted before the drain was served
}

// ------------------------------------------------------------- ServingStats

TEST(ServingStats, ReliabilityCountersAndSnapshot) {
  ServingStats stats;
  stats.record_fault_injected("transient");
  stats.record_fault_injected("transient");
  stats.record_fault_injected("nan_corruption");
  stats.record_retry();
  stats.record_deadline_miss();
  stats.record_shutdown_rejection();
  stats.record_breaker_fallback();
  stats.record_breaker_transition("closed", "open");
  stats.record_breaker_transition("open", "half_open");

  EXPECT_EQ(stats.faults_injected(), 3u);
  EXPECT_EQ(stats.retries(), 1u);
  EXPECT_EQ(stats.deadline_misses(), 1u);
  EXPECT_EQ(stats.shutdown_rejections(), 1u);
  EXPECT_EQ(stats.breaker_fallbacks(), 1u);
  EXPECT_EQ(stats.breaker_transitions("closed", "open"), 1u);
  EXPECT_EQ(stats.breaker_transitions("open", "closed"), 0u);

  const ServingStatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.faults_injected, 3u);
  EXPECT_EQ(snap.fault_kinds.at("transient"), 2u);
  EXPECT_EQ(snap.breaker_transitions.at("closed->open"), 1u);

  stats.reset();
  EXPECT_EQ(stats.faults_injected(), 0u);
  EXPECT_EQ(stats.breaker_transitions("closed", "open"), 0u);
}

}  // namespace
}  // namespace ahn::runtime
