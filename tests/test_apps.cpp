// Tests for src/apps: the Application contract across all 11 workloads
// (parameterized), per-app kernel correctness spot checks, QoI behaviour,
// sparse-input batches, and perforation quality/speed trade-offs.

#include <gtest/gtest.h>

#include <numeric>

#include "apps/blackscholes_app.hpp"
#include "apps/canneal_app.hpp"
#include "apps/miniqmc_app.hpp"
#include "apps/registry.hpp"
#include "apps/x264_app.hpp"
#include "sparse/spmv.hpp"

namespace ahn::apps {
namespace {

class AllApps : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    app = make_application(GetParam());
    app->generate_problems(6, 77);
  }
  std::unique_ptr<Application> app;
};

TEST_P(AllApps, MetadataIsConsistent) {
  EXPECT_FALSE(app->name().empty());
  EXPECT_FALSE(app->replaced_function().empty());
  EXPECT_FALSE(app->qoi_name().empty());
  EXPECT_GT(app->input_dim(), 0u);
  EXPECT_GT(app->output_dim(), 0u);
  EXPECT_EQ(app->problem_count(), 6u);
  EXPECT_GT(app->recommended_train_problems(), 0u);
}

TEST_P(AllApps, FeatureWidthMatchesContract) {
  for (std::size_t i = 0; i < app->problem_count(); ++i) {
    EXPECT_EQ(app->input_features(i).size(), app->input_dim());
  }
}

TEST_P(AllApps, RegionOutputsHaveDeclaredWidth) {
  const RegionRun run = app->run_region(0);
  EXPECT_EQ(run.outputs.size(), app->output_dim());
  EXPECT_GE(run.region_seconds, 0.0);
}

TEST_P(AllApps, RegionIsDeterministic) {
  const RegionRun a = app->run_region(1);
  const RegionRun b = app->run_region(1);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    EXPECT_EQ(a.outputs[i], b.outputs[i]);
  }
}

TEST_P(AllApps, ProblemsVaryAcrossIndices) {
  const auto f0 = app->input_features(0);
  const auto f1 = app->input_features(1);
  double diff = 0.0;
  for (std::size_t i = 0; i < f0.size(); ++i) diff += std::abs(f0[i] - f1[i]);
  EXPECT_GT(diff, 0.0);
}

TEST_P(AllApps, GenerateProblemsIsSeedDeterministic) {
  auto other = make_application(GetParam());
  other->generate_problems(6, 77);
  const auto a = app->input_features(3);
  const auto b = other->input_features(3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(AllApps, QoiErrorZeroForExactOutputs) {
  const RegionRun run = app->run_region(2);
  EXPECT_NEAR(app->qoi_error(2, run.outputs, run.outputs), 0.0, 1e-12);
}

TEST_P(AllApps, QoiErrorPositiveForPerturbedOutputs) {
  const RegionRun run = app->run_region(2);
  std::vector<double> corrupted = run.outputs;
  for (auto& v : corrupted) v = v * 1.5 + 1.0;
  EXPECT_GT(app->qoi_error(2, run.outputs, corrupted), 0.01);
}

TEST_P(AllApps, PerforationFullKeepMatchesExactQuality) {
  const RegionRun exact = app->run_region(0);
  const RegionRun perf = app->run_region_perforated(0, 1.0);
  EXPECT_LT(app->qoi_error(0, exact.outputs, perf.outputs), 1e-9);
}

TEST_P(AllApps, SparseBatchMatchesDenseFeatures) {
  const std::vector<std::size_t> ids{0, 1, 2};
  const sparse::Csr batch = app->sparse_input_batch(ids);
  EXPECT_EQ(batch.rows(), 3u);
  EXPECT_EQ(batch.cols(), app->input_dim());
  const Tensor dense = batch.to_dense();
  for (std::size_t r = 0; r < 3; ++r) {
    const auto feat = app->input_features(ids[r]);
    for (std::size_t c = 0; c < feat.size(); ++c) {
      EXPECT_NEAR(dense.at(r, c), feat[c], 1e-12);
    }
  }
}

TEST_P(AllApps, OtherPartIsCheapRelativeToRegion) {
  const RegionRun run = app->run_region(0);
  const double other = app->other_part_seconds(0);
  EXPECT_LT(other, run.region_seconds);
}

INSTANTIATE_TEST_SUITE_P(Registry, AllApps, ::testing::ValuesIn(application_names()));

TEST(Registry, ListsElevenApplications) {
  EXPECT_EQ(application_names().size(), 11u);
  EXPECT_EQ(make_all_applications().size(), 11u);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_application("NotAnApp"), Error);
}

TEST(Registry, TypesMatchTable2) {
  EXPECT_EQ(make_application("CG")->type(), AppType::TypeI);
  EXPECT_EQ(make_application("Blackscholes")->type(), AppType::TypeII);
  EXPECT_EQ(make_application("AMG")->type(), AppType::TypeIII);
}

TEST(Blackscholes, CallPriceSanity) {
  // ATM call, no rate: price ~ 0.4 * S * sigma * sqrt(T).
  const double p = BlackscholesApp::call_price(100, 100, 0.0, 0.2, 1.0);
  EXPECT_NEAR(p, 0.4 * 100 * 0.2, 0.3);
  // Deep ITM: price ~ S - K e^{-rT}.
  const double itm = BlackscholesApp::call_price(200, 100, 0.05, 0.2, 1.0);
  EXPECT_NEAR(itm, 200 - 100 * std::exp(-0.05), 0.5);
  // Monotone in volatility.
  EXPECT_GT(BlackscholesApp::call_price(100, 100, 0.03, 0.4, 1.0),
            BlackscholesApp::call_price(100, 100, 0.03, 0.2, 1.0));
}

TEST(Blackscholes, PerforationDegradesQuality) {
  BlackscholesApp app(8, 4);
  app.generate_problems(3, 5);
  const RegionRun exact = app.run_region(0);
  const RegionRun perf = app.run_region_perforated(0, 0.5);
  EXPECT_GT(app.qoi_error(0, exact.outputs, perf.outputs), 0.05);
}

TEST(Canneal, AnnealingReducesRoutingCost) {
  CannealApp app(32, 64, 8, 40);
  app.generate_problems(2, 9);
  std::vector<std::size_t> initial(32);
  std::iota(initial.begin(), initial.end(), 0);
  const double initial_cost = app.routing_cost(0, initial);
  const RegionRun run = app.run_region(0);
  EXPECT_LT(run.outputs[0], initial_cost);
}

TEST(X264, SsimBounds) {
  std::vector<double> a(64), b(64);
  Rng rng(4);
  for (std::size_t i = 0; i < 64; ++i) {
    a[i] = rng.uniform(0, 255);
    b[i] = rng.uniform(0, 255);
  }
  EXPECT_NEAR(X264App::ssim(a, a), 1.0, 1e-12);
  const double cross = X264App::ssim(a, b);
  EXPECT_LT(cross, 1.0);
  EXPECT_GT(cross, -1.0);
}

TEST(X264, ReconstructionIsCloseToSource) {
  X264App app(16, 12.0, 1);
  app.generate_problems(2, 3);
  const RegionRun run = app.run_region(0);
  const double q = app.qoi(0, run.outputs);  // SSIM vs source
  EXPECT_GT(q, 0.9);
}

TEST(MiniQmc, SlaterMatrixPositiveEntries) {
  MiniQmcApp app(4, 1);
  app.generate_problems(1, 1);
  const auto pos = app.input_features(0);
  const auto a = app.slater_matrix(pos);
  for (double v : a) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);  // exp(-r^2)
  }
}

TEST(MiniQmc, PerforationBiasesEnergy) {
  MiniQmcApp app(8, 1);
  app.generate_problems(2, 6);
  const RegionRun exact = app.run_region(0);
  const RegionRun perf = app.run_region_perforated(0, 0.25);
  // logdet identical (not perforated), energy differs.
  EXPECT_NEAR(exact.outputs[0], perf.outputs[0], 1e-9);
  EXPECT_NE(exact.outputs[1], perf.outputs[1]);
}

TEST(Perforation, IterativeSolversDegradeGracefully) {
  // Property: for solver apps, stronger perforation never improves quality.
  for (const char* name : {"CG", "MG", "fluidanimate", "Laghos"}) {
    auto app = make_application(name);
    app->generate_problems(2, 21);
    const RegionRun exact = app->run_region(0);
    const double e_mild = app->qoi_error(
        0, exact.outputs, app->run_region_perforated(0, 0.5).outputs);
    const double e_harsh = app->qoi_error(
        0, exact.outputs, app->run_region_perforated(0, 0.05).outputs);
    EXPECT_LE(e_mild, e_harsh + 1e-9) << name;
  }
}

}  // namespace
}  // namespace ahn::apps
