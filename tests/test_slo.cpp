// Tests for the SLO burn-rate engine (obs/slo.hpp) and the embedded HTTP
// exposition server (obs/http_server.hpp): deterministic fake-clock burn
// math, edge-triggered alerting with re-arm, gauge/counter families, and
// raw-socket request/response behaviour of the listener.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/slo.hpp"

namespace {

using namespace ahn;

// ---------------------------------------------------------------------------
// SloEngine

// A shared fake clock: tests advance *t and the engine observes it.
obs::SloEngine::ClockFn fake_clock(const std::shared_ptr<double>& t) {
  return [t] { return *t; };
}

obs::SloSpec availability_spec() {
  obs::SloSpec spec;
  spec.name = "avail";
  spec.kind = obs::SloKind::kAvailability;
  spec.objective = 0.9;  // 10% error budget, so burn = error_rate * 10
  spec.fast_window_seconds = 10.0;
  spec.mid_window_seconds = 50.0;
  spec.slow_window_seconds = 200.0;
  spec.page_burn_threshold = 5.0;
  spec.ticket_burn_threshold = 3.0;
  return spec;
}

TEST(SloEngine, BurnRatesFollowTheEwmaClosedForm) {
  auto t = std::make_shared<double>(0.0);
  obs::SloEngine eng({availability_spec()}, nullptr, nullptr, fake_clock(t));

  // 50s of all-good traffic: zero burn everywhere.
  for (int i = 0; i < 50; ++i) {
    *t += 1.0;
    eng.record("m", 0.0, /*ok=*/true, /*qoi_fallback=*/false);
  }
  auto st = eng.evaluate();
  ASSERT_EQ(st.size(), 1u);
  EXPECT_EQ(st[0].events, 50u);
  EXPECT_EQ(st[0].bad_events, 0u);
  EXPECT_DOUBLE_EQ(st[0].fast_burn, 0.0);
  EXPECT_FALSE(st[0].burning);

  // 100s of all-bad traffic. Starting from ewma=0 and stepping x=1 at dt=1,
  // the EWMA has the closed form 1 - exp(-N / tau); burn divides by the 0.1
  // error budget.
  for (int i = 0; i < 100; ++i) {
    *t += 1.0;
    eng.record("m", 0.0, /*ok=*/false, /*qoi_fallback=*/false);
  }
  st = eng.evaluate();
  EXPECT_EQ(st[0].events, 150u);
  EXPECT_EQ(st[0].bad_events, 100u);
  EXPECT_NEAR(st[0].fast_burn, (1.0 - std::exp(-100.0 / 10.0)) / 0.1, 1e-2);
  EXPECT_NEAR(st[0].mid_burn, (1.0 - std::exp(-100.0 / 50.0)) / 0.1, 1e-2);
  EXPECT_NEAR(st[0].slow_burn, (1.0 - std::exp(-100.0 / 200.0)) / 0.1, 1e-2);
  EXPECT_TRUE(st[0].burning);
}

TEST(SloEngine, BurnsDecayToZeroOnAnIdleStream) {
  auto t = std::make_shared<double>(0.0);
  obs::SloEngine eng({availability_spec()}, nullptr, nullptr, fake_clock(t));
  for (int i = 0; i < 100; ++i) {
    *t += 1.0;
    eng.record("m", 0.0, false, false);
  }
  ASSERT_TRUE(eng.evaluate()[0].burning);

  // No events at all for a long time: the windows decay toward zero, so an
  // idle (or recovered) stream stops burning without needing good traffic.
  *t += 1000.0;
  auto st = eng.evaluate();
  EXPECT_LT(st[0].fast_burn, 1e-6);
  EXPECT_LT(st[0].mid_burn, 1e-3);
  EXPECT_FALSE(st[0].burning);
}

TEST(SloEngine, AlertsAreEdgeTriggeredAndReArm) {
  auto t = std::make_shared<double>(0.0);
  obs::AlertSink sink;
  obs::SloEngine eng({availability_spec()}, &sink, nullptr, fake_clock(t));

  auto burn_for = [&](int seconds) {
    for (int i = 0; i < seconds; ++i) {
      *t += 1.0;
      eng.record("m", 0.0, false, false);
    }
    eng.evaluate();
  };

  burn_for(100);
  EXPECT_EQ(sink.raised(obs::AlertKind::kSloBurn), 1u);
  // Re-evaluating while still burning must not re-fire.
  eng.evaluate();
  eng.evaluate();
  EXPECT_EQ(sink.raised(obs::AlertKind::kSloBurn), 1u);

  // Recovery clears the condition and re-arms the edge...
  *t += 1000.0;
  EXPECT_FALSE(eng.evaluate()[0].burning);
  EXPECT_EQ(sink.raised(obs::AlertKind::kSloBurn), 1u);

  // ...so a second burn episode fires a second alert.
  burn_for(100);
  EXPECT_EQ(sink.raised(obs::AlertKind::kSloBurn), 2u);
  EXPECT_EQ(eng.status()[0].alerts_raised, 2u);

  const std::vector<obs::Alert> recent = sink.recent();
  ASSERT_FALSE(recent.empty());
  const obs::Alert& alert = recent.back();
  EXPECT_EQ(alert.kind, obs::AlertKind::kSloBurn);
  EXPECT_NE(alert.message.find("avail"), std::string::npos);
}

TEST(SloEngine, LatencyAndFallbackKindsClassifyBadEvents) {
  auto t = std::make_shared<double>(0.0);
  obs::SloSpec lat;
  lat.name = "p99_latency";
  lat.kind = obs::SloKind::kLatency;
  lat.objective = 0.99;
  lat.threshold_seconds = 0.1;
  obs::SloSpec qoi;
  qoi.name = "fallback";
  qoi.kind = obs::SloKind::kQoiFallbackRate;
  qoi.objective = 0.95;
  obs::SloEngine eng({lat, qoi}, nullptr, nullptr, fake_clock(t));

  *t += 1.0;
  eng.record("m", 0.05, true, false);  // fast + served: good for both
  *t += 1.0;
  eng.record("m", 0.50, true, false);  // slow: bad for latency only
  *t += 1.0;
  eng.record("m", 0.05, true, true);   // fallback: bad for qoi only
  *t += 1.0;
  eng.record("m", 0.05, false, false);  // failed: bad for latency (no number
                                        // to be under threshold), not qoi

  auto st = eng.status();
  ASSERT_EQ(st.size(), 2u);
  EXPECT_EQ(st[0].spec.name, "p99_latency");
  EXPECT_EQ(st[0].bad_events, 2u);
  EXPECT_EQ(st[1].spec.name, "fallback");
  EXPECT_EQ(st[1].bad_events, 1u);
}

TEST(SloEngine, ModelFilterAndDroppedRequests) {
  auto t = std::make_shared<double>(0.0);
  obs::SloSpec only_a = availability_spec();
  only_a.model = "a";
  obs::SloSpec lat;
  lat.name = "lat";
  lat.kind = obs::SloKind::kLatency;
  lat.threshold_seconds = 1.0;
  obs::SloEngine eng({only_a, lat}, nullptr, nullptr, fake_clock(t));

  *t += 1.0;
  eng.record("b", 0.0, true, false);  // wrong model: spec "a" sees nothing
  auto st = eng.status();
  EXPECT_EQ(st[0].events, 0u);
  EXPECT_EQ(st[1].events, 1u);  // unfiltered latency spec sees every model

  *t += 1.0;
  eng.record("a", 0.0, true, false);
  *t += 1.0;
  eng.record_dropped("a");  // availability bad event; latency spec unchanged
  st = eng.status();
  EXPECT_EQ(st[0].events, 2u);
  EXPECT_EQ(st[0].bad_events, 1u);
  EXPECT_EQ(st[1].events, 2u);
  EXPECT_EQ(st[1].bad_events, 0u);
}

TEST(SloEngine, PublishesGaugeAndCounterFamilies) {
  auto t = std::make_shared<double>(0.0);
  obs::MetricsRegistry reg;
  obs::SloEngine eng({availability_spec()}, nullptr, &reg, fake_clock(t));
  for (int i = 0; i < 100; ++i) {
    *t += 1.0;
    eng.record("m", 0.0, false, false);
  }
  auto st = eng.evaluate();

  auto snap = reg.snapshot();
  const auto fast = snap.gauges.find("slo.burn_rate{slo=\"avail\",window=\"fast\"}");
  ASSERT_NE(fast, snap.gauges.end());
  EXPECT_NEAR(fast->second, st[0].fast_burn, 1e-9);
  EXPECT_TRUE(snap.gauges.count("slo.burn_rate{slo=\"avail\",window=\"mid\"}"));
  EXPECT_TRUE(snap.gauges.count("slo.burn_rate{slo=\"avail\",window=\"slow\"}"));
  const auto burning = snap.gauges.find("slo.burning{slo=\"avail\"}");
  ASSERT_NE(burning, snap.gauges.end());
  EXPECT_DOUBLE_EQ(burning->second, 1.0);
  EXPECT_EQ(snap.counters.at("slo.events{slo=\"avail\"}"), 100u);
  EXPECT_EQ(snap.counters.at("slo.bad_events{slo=\"avail\"}"), 100u);
  EXPECT_EQ(snap.counters.at("slo.alerts{slo=\"avail\"}"), st[0].alerts_raised);
}

TEST(SloEngine, StatusJsonListsEverySpec) {
  auto t = std::make_shared<double>(0.0);
  obs::SloSpec lat;
  lat.name = "p99";
  lat.kind = obs::SloKind::kLatency;
  lat.threshold_seconds = 0.25;
  obs::SloEngine eng({availability_spec(), lat}, nullptr, nullptr, fake_clock(t));
  *t += 1.0;
  eng.record("m", 0.5, true, false);

  const std::string json = eng.status_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"avail\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("availability"), std::string::npos);
  EXPECT_NE(json.find("latency"), std::string::npos);
  EXPECT_NE(json.find("burning"), std::string::npos);
}

TEST(SloEngine, RecordIsThreadSafe) {
  auto t = std::make_shared<double>(0.0);
  obs::AlertSink sink;
  obs::MetricsRegistry reg;
  obs::SloEngine eng({availability_spec()}, &sink, &reg, fake_clock(t));
  eng.set_eval_every(8);  // exercise the inline evaluation path under racing

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&eng, w] {
      for (int i = 0; i < kPerThread; ++i) {
        eng.record("m", 0.0, (i + w) % 2 == 0, false);
      }
    });
  }
  for (auto& th : workers) th.join();
  auto st = eng.evaluate();
  EXPECT_EQ(st[0].events, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(st[0].bad_events, st[0].events / 2);
}

// ---------------------------------------------------------------------------
// HttpServer

// Minimal raw-socket HTTP client: one request, read to EOF.
std::string http_request(std::uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::size_t off = 0;
  while (off < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + off, raw.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string http_get(std::uint16_t port, const std::string& path,
                     const std::string& method = "GET") {
  return http_request(port, method + " " + path +
                                " HTTP/1.1\r\nHost: test\r\n\r\n");
}

TEST(HttpServer, ServesRoutesOnAnEphemeralPort) {
  obs::HttpServer server;
  server.add_route("/ping", [](const obs::HttpRequest& req, obs::HttpResponse& res) {
    res.body = "pong query=" + req.query;
  });
  ASSERT_TRUE(server.start());
  ASSERT_TRUE(server.running());
  const std::uint16_t port = server.port();
  ASSERT_NE(port, 0);

  const std::string res = http_get(port, "/ping?x=1");
  EXPECT_NE(res.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(res.find("Connection: close"), std::string::npos);
  EXPECT_NE(res.find("pong query=x=1"), std::string::npos);
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.requests_served(), 1u);
}

TEST(HttpServer, UnknownPathIs404AndNonGetIs405) {
  obs::HttpServer server;
  server.add_route("/ok", [](const obs::HttpRequest&, obs::HttpResponse& res) {
    res.body = "ok";
  });
  ASSERT_TRUE(server.start());
  EXPECT_NE(http_get(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/ok", "POST").find("HTTP/1.1 405"),
            std::string::npos);
  // Garbage that is not an HTTP request line gets a 400.
  EXPECT_NE(http_request(server.port(), "nonsense\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
}

TEST(HttpServer, HeadReturnsHeadersWithoutBody) {
  obs::HttpServer server;
  server.add_route("/m", [](const obs::HttpRequest&, obs::HttpResponse& res) {
    res.body = "BODYBYTES";
  });
  ASSERT_TRUE(server.start());
  const std::string res = http_get(server.port(), "/m", "HEAD");
  EXPECT_NE(res.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(res.find("Content-Length: 9"), std::string::npos);
  EXPECT_EQ(res.find("BODYBYTES"), std::string::npos);
}

TEST(HttpServer, StopDrainsAndConcurrentRequestsAllComplete) {
  obs::HttpServer server;
  server.add_route("/slow", [](const obs::HttpRequest&, obs::HttpResponse& res) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    res.body = "done";
  });
  ASSERT_TRUE(server.start());
  const std::uint16_t port = server.port();

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> responses(kClients);
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back(
        [port, i, &responses] { responses[i] = http_get(port, "/slow"); });
  }
  for (auto& th : clients) th.join();
  for (const std::string& res : responses) {
    EXPECT_NE(res.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(res.find("done"), std::string::npos);
  }
  EXPECT_EQ(server.requests_served(), static_cast<std::uint64_t>(kClients));
  server.stop();
  server.stop();  // idempotent
}

TEST(HttpServer, RestartAfterStopBindsAgain) {
  obs::HttpServer server;
  server.add_route("/x", [](const obs::HttpRequest&, obs::HttpResponse& res) {
    res.body = "x";
  });
  ASSERT_TRUE(server.start());
  server.stop();
  ASSERT_TRUE(server.start());
  EXPECT_NE(http_get(server.port(), "/x").find("HTTP/1.1 200"),
            std::string::npos);
}

}  // namespace
