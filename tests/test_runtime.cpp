// Tests for src/runtime: the roofline device model (monotonicity, profiles,
// Table-3 cache heuristics), the orchestrator/client tensor store and model
// registry (Listing 1 semantics), deployed-surrogate inference timing, and
// the concurrent serving path (sharded store, thread pool, micro-batching).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "nn/topology.hpp"
#include "runtime/deployment.hpp"
#include "runtime/orchestrator.hpp"
#include "runtime/sharded_store.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/generators.hpp"

namespace ahn::runtime {
namespace {

TEST(Device, KernelTimeIncludesLaunchLatency) {
  const DeviceModel dev;
  const OpCounts none{};
  EXPECT_GE(dev.kernel_seconds(none, nn_inference_profile()),
            dev.spec().launch_latency);
}

TEST(Device, KernelTimeMonotoneInFlops) {
  const DeviceModel dev;
  OpCounts small{1000, 100, 100};
  OpCounts big{1000000000, 100, 100};
  EXPECT_LT(dev.kernel_seconds(small, nn_inference_profile()),
            dev.kernel_seconds(big, nn_inference_profile()));
}

TEST(Device, SparseSolverProfileSlowerThanNn) {
  const DeviceModel dev;
  const OpCounts ops{100000000, 1000000, 1000000};
  EXPECT_GT(dev.kernel_seconds(ops, sparse_solver_profile()),
            dev.kernel_seconds(ops, nn_inference_profile()));
}

TEST(Device, TransferTimeLinearInBytes) {
  const DeviceModel dev;
  const double t1 = dev.transfer_seconds(1 << 20);
  const double t2 = dev.transfer_seconds(2 << 20);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(t2 - t1, static_cast<double>(1 << 20) / dev.spec().transfer_bandwidth,
              1e-9);
}

TEST(Device, MissRateDecreasesWithIntensity) {
  const OpCounts low_intensity{100, 10000, 10000};   // memory-bound gather
  const OpCounts high_intensity{1000000, 1000, 0};   // GEMM-like
  const auto profile = nn_inference_profile();
  EXPECT_GT(DeviceModel::modeled_l2_miss_rate(low_intensity, profile),
            DeviceModel::modeled_l2_miss_rate(high_intensity, profile));
}

TEST(Device, MissRateCalibratedToTable3Regimes) {
  // Sparse-solver-on-CPU-like ops: low intensity -> ~30-45% misses.
  const OpCounts solver{2 * 512, 512 * 12, 512 * 8};
  const double cpu_like =
      DeviceModel::modeled_l2_miss_rate(solver, sparse_solver_profile());
  EXPECT_GT(cpu_like, 0.25);
  EXPECT_LT(cpu_like, 0.5);
  // NN inference: high intensity -> under 25%.
  const OpCounts gemm{2ULL * 64 * 64 * 64, 3 * 64 * 64 * 8, 64 * 64 * 8};
  const double nn_like = DeviceModel::modeled_l2_miss_rate(gemm, nn_inference_profile());
  EXPECT_LT(nn_like, 0.25);
}

TEST(Device, EnergyMonotoneAndAboveIdleFloor) {
  const DeviceModel dev;
  const OpCounts small{1000, 1000, 0};
  const OpCounts big{1000000000, 1000, 0};
  const double es = dev.kernel_joules(small, nn_inference_profile());
  const double eb = dev.kernel_joules(big, nn_inference_profile());
  EXPECT_GT(eb, es);
  // Energy >= idle power x modeled time.
  EXPECT_GE(es, 50.0 * dev.kernel_seconds(small, nn_inference_profile()) * 0.99);
}

TEST(Device, AchievedBandwidthComputed) {
  const OpCounts ops{0, 1000, 1000};
  EXPECT_DOUBLE_EQ(DeviceModel::achieved_bandwidth(ops, 2.0), 1000.0);
}

TEST(Orchestrator, TensorStorePutGetDelete) {
  Orchestrator orc;
  Tensor t({1, 3}, {1, 2, 3});
  orc.put_tensor("in", t);
  EXPECT_TRUE(orc.has_tensor("in"));
  const Tensor got = orc.get_tensor("in");
  EXPECT_EQ(got.at(0, 1), 2.0);
  orc.delete_tensor("in");
  EXPECT_FALSE(orc.has_tensor("in"));
  EXPECT_THROW((void)orc.get_tensor("in"), Error);
}

std::shared_ptr<ServableModel> tiny_model() {
  Rng rng(1);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::Network net = nn::build_surrogate(spec, 4, 2, rng);
  auto m = std::make_shared<ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  return m;
}

TEST(Orchestrator, RunModelListing1Flow) {
  Orchestrator orc;
  orc.set_model("AI-CFD-net", tiny_model());

  // Listing 1: put_tensor -> run_model -> unpack_tensor.
  Client client(orc);
  Tensor in({1, 4}, {0.1, 0.2, 0.3, 0.4});
  client.put_tensor("in_key", in);
  PhaseAccumulator phases;
  EXPECT_TRUE(client.run_model("AI-CFD-net", "in_key", "out_key", &phases).is_ok());
  const Tensor out = client.unpack_tensor("out_key");
  EXPECT_EQ(out.rows(), 1u);
  EXPECT_EQ(out.cols(), 2u);

  // §7.3's four online phases are all accounted.
  EXPECT_GT(phases.seconds("fetch"), 0.0);
  EXPECT_GT(phases.seconds("load"), 0.0);
  EXPECT_GT(phases.seconds("run"), 0.0);
  EXPECT_EQ(phases.seconds("encode"), 0.0);  // no encoder in this model
}

TEST(Orchestrator, UnknownModelReportsModelUnavailable) {
  Orchestrator orc;
  orc.put_tensor("x", Tensor({1, 1}, {1}));
  const Status s = orc.run_model("nope", "x", "y");
  EXPECT_EQ(s.code(), StatusCode::kModelUnavailable);
  EXPECT_NE(s.to_string().find("nope"), std::string::npos);
  // The throwing registry lookup is still the contract for direct use.
  EXPECT_THROW((void)orc.model("nope"), Error);
}

TEST(Orchestrator, MissingInputKeyReportsNotFound) {
  Orchestrator orc;
  orc.set_model("m", tiny_model());
  const Status s = orc.run_model("m", "absent", "out");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_FALSE(orc.has_tensor("out"));
}

TEST(Deployment, InferShapesAndTiming) {
  Rng rng(2);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::TrainedSurrogate ts;
  ts.net = nn::build_surrogate(spec, 6, 3, rng);
  const DeployedSurrogate dep(nullptr, std::move(ts), DeviceModel{});

  const std::vector<double> feat{1, 2, 3, 4, 5, 6};
  const InferenceResult res = dep.infer(feat);
  EXPECT_EQ(res.outputs.size(), 3u);
  EXPECT_GT(res.timing.fetch_seconds, 0.0);
  EXPECT_GT(res.timing.run_seconds, 0.0);
  EXPECT_EQ(res.timing.encode_seconds, 0.0);
  EXPECT_NEAR(res.timing.total(),
              res.timing.fetch_seconds + res.timing.encode_seconds +
                  res.timing.load_seconds + res.timing.run_seconds,
              1e-15);
}

TEST(Deployment, SparsePathShipsFewerBytes) {
  Rng rng(3);
  const std::size_t width = 400;
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::TrainedSurrogate ts;
  ts.net = nn::build_surrogate(spec, width, 2, rng);
  const DeployedSurrogate dep(nullptr, std::move(ts), DeviceModel{});

  // One batch with a single very sparse row.
  const sparse::Csr batch = sparse::random_sparse(1, width, 0.02, rng);
  const InferenceResult sparse_res = dep.infer_sparse(batch, 0);
  const Tensor dense_row = batch.to_dense();
  const InferenceResult dense_res = dep.infer(
      std::vector<double>(dense_row.row(0).begin(), dense_row.row(0).end()));
  // The sparse fetch moves the compressed payload only (§4.2's saving).
  EXPECT_LT(sparse_res.timing.fetch_seconds, dense_res.timing.fetch_seconds);
  // Same math, same outputs.
  ASSERT_EQ(sparse_res.outputs.size(), dense_res.outputs.size());
  for (std::size_t i = 0; i < sparse_res.outputs.size(); ++i) {
    EXPECT_NEAR(sparse_res.outputs[i], dense_res.outputs[i], 1e-9);
  }
}

TEST(Deployment, EncoderAddsEncodePhase) {
  Rng rng(4);
  autoencoder::AutoencoderConfig acfg;
  acfg.latent_dim = 4;
  auto enc = std::make_shared<autoencoder::Autoencoder>(16, acfg);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::TrainedSurrogate ts;
  ts.net = nn::build_surrogate(spec, 4, 2, rng);
  const DeployedSurrogate dep(enc, std::move(ts), DeviceModel{});
  const InferenceResult res = dep.infer(std::vector<double>(16, 0.5));
  EXPECT_GT(res.timing.encode_seconds, 0.0);
  EXPECT_EQ(res.outputs.size(), 2u);
}

// ------------------------------------------------------------ ShardedStore

TEST(ShardedStore, BasicPutGetEraseAndSize) {
  ShardedTensorStore store(/*shards=*/4);
  EXPECT_EQ(store.shard_count(), 4u);
  store.put("a", Tensor({1, 2}, {1, 2}));
  store.put("b", Tensor({1, 1}, {3}));
  EXPECT_TRUE(store.has("a"));
  EXPECT_EQ(store.get("b").at(0, 0), 3.0);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.erase("a"));
  EXPECT_FALSE(store.erase("a"));
  EXPECT_THROW((void)store.get("a"), Error);
}

TEST(ShardedStore, EightThreadsNoLostUpdates) {
  // The satellite stress contract: 8 writer/reader threads hammer the store;
  // afterwards every key must hold exactly the tensor its writer stored.
  ShardedTensorStore store;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeysPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (std::size_t k = 0; k < kKeysPerThread; ++k) {
        const std::string key = "t" + std::to_string(t) + ":" + std::to_string(k);
        const double v = static_cast<double>(t * kKeysPerThread + k);
        store.put(key, Tensor({1, 3}, {v, v, v}));
        // Read-your-write while other threads churn their own keyspaces.
        const Tensor got = store.get(key);
        EXPECT_EQ(got.at(0, 0), v);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(store.size(), kThreads * kKeysPerThread);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t k = 0; k < kKeysPerThread; ++k) {
      const std::string key = "t" + std::to_string(t) + ":" + std::to_string(k);
      const double v = static_cast<double>(t * kKeysPerThread + k);
      const Tensor got = store.get(key);
      ASSERT_EQ(got.size(), 3u) << key;
      EXPECT_EQ(got.at(0, 2), v) << key;
    }
  }
}

TEST(ShardedStore, NoTornReadsUnderContendedOverwrites) {
  // Writers overwrite the SAME key with internally-uniform tensors; readers
  // must only ever observe a uniform tensor (value-copy semantics — a torn
  // or in-place-mutated read would mix two writes).
  ShardedTensorStore store;
  std::atomic<bool> go{true};
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < 4; ++w) {
    writers.emplace_back([&store, &go, w] {
      for (std::size_t i = 0; i < 300 && go.load(); ++i) {
        const double v = static_cast<double>(w * 1000 + i);
        store.put("hot", Tensor({1, 16}, std::vector<double>(16, v)));
      }
    });
  }
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 4; ++r) {
    readers.emplace_back([&store, &go] {
      for (std::size_t i = 0; i < 300; ++i) {
        if (!store.has("hot")) continue;
        Tensor t;
        try {
          t = store.get("hot");
        } catch (const Error&) {
          continue;  // not yet written
        }
        const double first = t.at(0, 0);
        for (std::size_t c = 1; c < t.cols(); ++c) {
          if (t.at(0, c) != first) {
            go.store(false);
            FAIL() << "torn read: " << t.at(0, c) << " vs " << first;
          }
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  for (auto& th : readers) th.join();
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPool, ExecutesSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::future<int>> futures;
  futures.reserve(64);
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw Error("boom"); });
  EXPECT_THROW((void)f.get(), Error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      // Futures intentionally dropped: destruction must still run the work.
      (void)pool.submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 32);
}

// ------------------------------------------------- Concurrent orchestration

TEST(Orchestrator, RunModelAsyncMatchesSyncResults) {
  Orchestrator orc;
  orc.set_model("m", tiny_model());
  Client client(orc);

  // Sync reference for each distinct input.
  std::vector<Tensor> expected;
  for (int i = 0; i < 16; ++i) {
    const double base = 0.1 * i;
    client.put_tensor("ref_in", Tensor({1, 4}, {base, base + 1, base + 2, base + 3}));
    ASSERT_TRUE(client.run_model("m", "ref_in", "ref_out").is_ok());
    expected.push_back(client.unpack_tensor("ref_out"));
  }

  // 8 threads × 2 requests each on distinct keys, concurrently.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&orc, t] {
      Client c(orc);
      for (int j = 0; j < 2; ++j) {
        const int i = t * 2 + j;
        const double base = 0.1 * i;
        const std::string in = "in" + std::to_string(i);
        const std::string out = "out" + std::to_string(i);
        c.put_tensor(in, Tensor({1, 4}, {base, base + 1, base + 2, base + 3}));
        EXPECT_TRUE(c.run_model_async("m", in, out).get().is_ok());
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int i = 0; i < 16; ++i) {
    const Tensor got = orc.get_tensor("out" + std::to_string(i));
    ASSERT_EQ(got.size(), expected[i].size());
    for (std::size_t c = 0; c < got.size(); ++c) EXPECT_EQ(got[c], expected[i][c]);
  }
  EXPECT_GE(orc.stats().requests_served(), 32u);
}

TEST(Orchestrator, AsyncUnknownModelResolvesTypedStatus) {
  Orchestrator orc;
  orc.put_tensor("x", Tensor({1, 1}, {1}));
  auto f = orc.run_model_async("nope", "x", "y");
  EXPECT_EQ(f.get().code(), StatusCode::kModelUnavailable);
}

TEST(Orchestrator, AsyncMissingInputResolvesNotFound) {
  Orchestrator orc;
  orc.set_model("m", tiny_model());
  auto f = orc.run_model_async("m", "absent", "y");
  EXPECT_EQ(f.get().code(), StatusCode::kNotFound);
  EXPECT_FALSE(orc.has_tensor("y"));
}

TEST(Orchestrator, MixedStoreAndInferenceStress) {
  // The satellite's combined stress: 8 threads hammer put/get/delete while
  // also issuing run_model_async calls; assert correctness of every result.
  Orchestrator orc;
  orc.set_model("m", tiny_model());

  // Reference output for the one shared input row.
  Client ref(orc);
  ref.put_tensor("ref_in", Tensor({1, 4}, {1, 2, 3, 4}));
  ASSERT_TRUE(ref.run_model("m", "ref_in", "ref_out").is_ok());
  const Tensor expected = ref.unpack_tensor("ref_out");

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&orc, &expected, t] {
      Client c(orc);
      const std::string tid = std::to_string(t);
      for (int i = 0; i < 25; ++i) {
        const std::string scratch = "scratch" + tid + "_" + std::to_string(i);
        c.put_tensor(scratch, Tensor({1, 2}, {double(t), double(i)}));
        const std::string in = "sin" + tid + "_" + std::to_string(i);
        const std::string out = "sout" + tid + "_" + std::to_string(i);
        c.put_tensor(in, Tensor({1, 4}, {1, 2, 3, 4}));
        auto f = c.run_model_async("m", in, out);
        EXPECT_TRUE(orc.has_tensor(scratch));
        orc.delete_tensor(scratch);
        EXPECT_TRUE(f.get().is_ok());
        const Tensor got = c.unpack_tensor(out);
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t k = 0; k < got.size(); ++k) EXPECT_EQ(got[k], expected[k]);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(orc.stats().requests_served(), 8u * 25u + 1u);
}

// ------------------------------------------------------------ Micro-batching

TEST(Batching, BitwiseIdenticalToPerRowInference) {
  OrchestratorOptions opts;
  opts.max_batch = 16;
  opts.batch_delay_seconds = 0.0;  // flush manually for determinism
  Orchestrator orc(DeviceModel{}, opts);
  orc.set_model("m", tiny_model());
  Client client(orc);

  constexpr std::size_t kRows = 50;  // exercises full and partial batches
  std::vector<Tensor> rows;
  std::vector<Tensor> expected;
  Rng rng(7);
  for (std::size_t i = 0; i < kRows; ++i) {
    rows.push_back(Tensor::randn({1, 4}, rng));
    client.put_tensor("in", rows.back());
    ASSERT_TRUE(client.run_model("m", "in", "out").is_ok());
    expected.push_back(client.unpack_tensor("out"));
  }

  std::vector<std::future<Result<Tensor>>> futures;
  futures.reserve(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    futures.push_back(client.run_model_batched("m", rows[i]));
  }
  orc.flush_batches();  // resolve the trailing partial batch

  for (std::size_t i = 0; i < kRows; ++i) {
    Result<Tensor> r = futures[i].get();
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    const Tensor got = r.value();
    ASSERT_EQ(got.size(), expected[i].size());
    // Bitwise comparison, not EXPECT_NEAR: the batched GEMM accumulates each
    // row in the same order as the single-row GEMM.
    EXPECT_EQ(std::memcmp(got.data(), expected[i].data(),
                          got.size() * sizeof(double)),
              0)
        << "row " << i << " diverged";
  }
}

TEST(Batching, CoalescesUpToMaxBatch) {
  OrchestratorOptions opts;
  opts.max_batch = 16;
  opts.batch_delay_seconds = 0.0;
  Orchestrator orc(DeviceModel{}, opts);
  orc.set_model("m", tiny_model());

  std::vector<std::future<Result<Tensor>>> futures;
  for (std::size_t i = 0; i < 40; ++i) {
    futures.push_back(orc.run_model_batched("m", Tensor({1, 4}, {1, 2, 3, 4})));
  }
  orc.flush_batches();
  for (auto& f : futures) EXPECT_TRUE(f.get().is_ok());

  const ServingStatsSnapshot snap = orc.stats().snapshot();
  EXPECT_EQ(snap.requests_served, 40u);
  // 40 rows with max_batch 16 from one thread: 16 + 16 + 8.
  EXPECT_EQ(snap.batches_executed, 3u);
  ASSERT_TRUE(snap.batch_histogram.contains(16));
  EXPECT_EQ(snap.batch_histogram.at(16), 2u);
  ASSERT_TRUE(snap.batch_histogram.contains(8));
  EXPECT_EQ(snap.batch_histogram.at(8), 1u);
  EXPECT_GT(snap.mean_batch_size(), 1.0);
}

TEST(Batching, ConcurrentSubmittersAllResolve) {
  OrchestratorOptions opts;
  opts.max_batch = 8;
  opts.batch_delay_seconds = 100e-6;  // background flusher handles stragglers
  Orchestrator orc(DeviceModel{}, opts);
  orc.set_model("m", tiny_model());

  Client ref(orc);
  ref.put_tensor("in", Tensor({1, 4}, {1, 2, 3, 4}));
  ASSERT_TRUE(ref.run_model("m", "in", "out").is_ok());
  const Tensor expected = ref.unpack_tensor("out");

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&orc, &expected] {
      Client c(orc);
      for (int i = 0; i < 20; ++i) {
        Result<Tensor> r = c.run_model_batched("m", Tensor({1, 4}, {1, 2, 3, 4})).get();
        ASSERT_TRUE(r.is_ok()) << r.status().to_string();
        const Tensor got = r.value();
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t k = 0; k < got.size(); ++k) EXPECT_EQ(got[k], expected[k]);
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(Batching, UnknownModelResolvesTypedStatus) {
  OrchestratorOptions opts;
  opts.batch_delay_seconds = 0.0;
  Orchestrator orc(DeviceModel{}, opts);
  auto f = orc.run_model_batched("nope", Tensor({1, 4}, {1, 2, 3, 4}));
  orc.flush_batches();
  EXPECT_EQ(f.get().code(), StatusCode::kModelUnavailable);
}

TEST(Batching, ModelRemovedBeforeDispatchResolvesTypedStatus) {
  // The model exists at submit time but is gone at batch-execution time: the
  // failure must surface as a typed status through every affected future.
  OrchestratorOptions opts;
  opts.batch_delay_seconds = 0.0;
  Orchestrator orc(DeviceModel{}, opts);
  BatchingQueue queue(
      [](const std::string& name, const Tensor& batch,
         const std::vector<obs::SpanContext>&) {
        // Mimics the orchestrator's BatchFn against an empty registry.
        return BatchingQueue::RowResults(
            batch.rows(), Result<Tensor>(Status(StatusCode::kModelUnavailable,
                                                "no model named '" + name + "'")));
      },
      BatchingOptions{.max_batch = 8, .max_delay_seconds = 0.0});
  auto f1 = queue.submit("gone", Tensor({1, 4}, {1, 2, 3, 4}));
  auto f2 = queue.submit("gone", Tensor({1, 4}, {5, 6, 7, 8}));
  queue.flush();
  EXPECT_EQ(f1.get().code(), StatusCode::kModelUnavailable);
  EXPECT_EQ(f2.get().code(), StatusCode::kModelUnavailable);
}

// ------------------------------------------------------------- ServingStats

TEST(ServingStats, CountersHistogramAndPercentiles) {
  ServingStats stats;
  stats.record_request({1e-6, 0.0, 2e-6, 3e-6});
  stats.record_request({3e-6, 0.0, 2e-6, 5e-6});
  stats.record_batch(2);
  stats.record_qoi_fallback();

  EXPECT_EQ(stats.requests_served(), 2u);
  EXPECT_EQ(stats.batches_executed(), 1u);
  EXPECT_EQ(stats.qoi_fallbacks(), 1u);
  EXPECT_DOUBLE_EQ(stats.latency_percentile("fetch", 0.0), 1e-6);
  EXPECT_DOUBLE_EQ(stats.latency_percentile("fetch", 100.0), 3e-6);
  EXPECT_DOUBLE_EQ(stats.latency_percentile("load", 50.0), 2e-6);
  EXPECT_DOUBLE_EQ(stats.latency_percentile("total", 100.0), 1e-5);
  EXPECT_THROW((void)stats.latency_percentile("nope", 50.0), Error);

  const ServingStatsSnapshot snap = stats.snapshot();
  EXPECT_DOUBLE_EQ(snap.mean_batch_size(), 2.0);

  stats.reset();
  EXPECT_EQ(stats.requests_served(), 0u);
  EXPECT_DOUBLE_EQ(stats.latency_percentile("fetch", 50.0), 0.0);
}

TEST(ServingStats, ThreadSafeUnderConcurrentRecording) {
  ServingStats stats;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < 100; ++i) {
        stats.record_request({1e-6, 0.0, 1e-6, 1e-6});
        if (i % 10 == 0) stats.record_batch(10);
        (void)stats.requests_served();  // concurrent reader
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(stats.requests_served(), 800u);
  EXPECT_EQ(stats.batches_executed(), 80u);
}

TEST(ServingStats, PercentileReadsDoNotBlockRecording) {
  // Percentiles now come from fixed-bucket histograms: a reader computing
  // them holds no lock the recording hot path needs, so recorders lose
  // nothing no matter how hard the stats are hammered mid-flight.
  ServingStats stats;
  constexpr int kRecorders = 4;
  constexpr int kPerRecorder = 5000;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        (void)stats.latency_percentile("total", 99.0);
        (void)stats.latency_percentile("run", 50.0);
        (void)stats.snapshot();
      }
    });
  }
  std::vector<std::thread> recorders;
  for (int t = 0; t < kRecorders; ++t) {
    recorders.emplace_back([&stats] {
      for (int i = 0; i < kPerRecorder; ++i) {
        stats.record_request({1e-6, 0.0, 1e-6, 1e-6 * (1 + i % 7)});
      }
    });
  }
  for (auto& th : recorders) th.join();
  done.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
  EXPECT_EQ(stats.requests_served(),
            static_cast<std::uint64_t>(kRecorders) * kPerRecorder);
  EXPECT_EQ(stats.metrics().snapshot().histograms.at("serving.latency.total").count,
            static_cast<std::uint64_t>(kRecorders) * kPerRecorder);
  const double p99 = stats.latency_percentile("total", 99.0);
  EXPECT_GT(p99, 0.0);
  EXPECT_LE(p99, stats.latency_percentile("total", 100.0));
}

}  // namespace
}  // namespace ahn::runtime
