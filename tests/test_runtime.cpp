// Tests for src/runtime: the roofline device model (monotonicity, profiles,
// Table-3 cache heuristics), the orchestrator/client tensor store and model
// registry (Listing 1 semantics), and deployed-surrogate inference timing.

#include <gtest/gtest.h>

#include "nn/topology.hpp"
#include "runtime/deployment.hpp"
#include "runtime/orchestrator.hpp"
#include "sparse/generators.hpp"

namespace ahn::runtime {
namespace {

TEST(Device, KernelTimeIncludesLaunchLatency) {
  const DeviceModel dev;
  const OpCounts none{};
  EXPECT_GE(dev.kernel_seconds(none, nn_inference_profile()),
            dev.spec().launch_latency);
}

TEST(Device, KernelTimeMonotoneInFlops) {
  const DeviceModel dev;
  OpCounts small{1000, 100, 100};
  OpCounts big{1000000000, 100, 100};
  EXPECT_LT(dev.kernel_seconds(small, nn_inference_profile()),
            dev.kernel_seconds(big, nn_inference_profile()));
}

TEST(Device, SparseSolverProfileSlowerThanNn) {
  const DeviceModel dev;
  const OpCounts ops{100000000, 1000000, 1000000};
  EXPECT_GT(dev.kernel_seconds(ops, sparse_solver_profile()),
            dev.kernel_seconds(ops, nn_inference_profile()));
}

TEST(Device, TransferTimeLinearInBytes) {
  const DeviceModel dev;
  const double t1 = dev.transfer_seconds(1 << 20);
  const double t2 = dev.transfer_seconds(2 << 20);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(t2 - t1, static_cast<double>(1 << 20) / dev.spec().transfer_bandwidth,
              1e-9);
}

TEST(Device, MissRateDecreasesWithIntensity) {
  const OpCounts low_intensity{100, 10000, 10000};   // memory-bound gather
  const OpCounts high_intensity{1000000, 1000, 0};   // GEMM-like
  const auto profile = nn_inference_profile();
  EXPECT_GT(DeviceModel::modeled_l2_miss_rate(low_intensity, profile),
            DeviceModel::modeled_l2_miss_rate(high_intensity, profile));
}

TEST(Device, MissRateCalibratedToTable3Regimes) {
  // Sparse-solver-on-CPU-like ops: low intensity -> ~30-45% misses.
  const OpCounts solver{2 * 512, 512 * 12, 512 * 8};
  const double cpu_like =
      DeviceModel::modeled_l2_miss_rate(solver, sparse_solver_profile());
  EXPECT_GT(cpu_like, 0.25);
  EXPECT_LT(cpu_like, 0.5);
  // NN inference: high intensity -> under 25%.
  const OpCounts gemm{2ULL * 64 * 64 * 64, 3 * 64 * 64 * 8, 64 * 64 * 8};
  const double nn_like = DeviceModel::modeled_l2_miss_rate(gemm, nn_inference_profile());
  EXPECT_LT(nn_like, 0.25);
}

TEST(Device, EnergyMonotoneAndAboveIdleFloor) {
  const DeviceModel dev;
  const OpCounts small{1000, 1000, 0};
  const OpCounts big{1000000000, 1000, 0};
  const double es = dev.kernel_joules(small, nn_inference_profile());
  const double eb = dev.kernel_joules(big, nn_inference_profile());
  EXPECT_GT(eb, es);
  // Energy >= idle power x modeled time.
  EXPECT_GE(es, 50.0 * dev.kernel_seconds(small, nn_inference_profile()) * 0.99);
}

TEST(Device, AchievedBandwidthComputed) {
  const OpCounts ops{0, 1000, 1000};
  EXPECT_DOUBLE_EQ(DeviceModel::achieved_bandwidth(ops, 2.0), 1000.0);
}

TEST(Orchestrator, TensorStorePutGetDelete) {
  Orchestrator orc;
  Tensor t({1, 3}, {1, 2, 3});
  orc.put_tensor("in", t);
  EXPECT_TRUE(orc.has_tensor("in"));
  const Tensor got = orc.get_tensor("in");
  EXPECT_EQ(got.at(0, 1), 2.0);
  orc.delete_tensor("in");
  EXPECT_FALSE(orc.has_tensor("in"));
  EXPECT_THROW((void)orc.get_tensor("in"), Error);
}

std::shared_ptr<ServableModel> tiny_model() {
  Rng rng(1);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::Network net = nn::build_surrogate(spec, 4, 2, rng);
  auto m = std::make_shared<ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  return m;
}

TEST(Orchestrator, RunModelListing1Flow) {
  Orchestrator orc;
  orc.set_model("AI-CFD-net", tiny_model());

  // Listing 1: put_tensor -> run_model -> unpack_tensor.
  Client client(orc);
  Tensor in({1, 4}, {0.1, 0.2, 0.3, 0.4});
  client.put_tensor("in_key", in);
  PhaseAccumulator phases;
  client.run_model("AI-CFD-net", "in_key", "out_key", &phases);
  const Tensor out = client.unpack_tensor("out_key");
  EXPECT_EQ(out.rows(), 1u);
  EXPECT_EQ(out.cols(), 2u);

  // §7.3's four online phases are all accounted.
  EXPECT_GT(phases.seconds("fetch"), 0.0);
  EXPECT_GT(phases.seconds("load"), 0.0);
  EXPECT_GT(phases.seconds("run"), 0.0);
  EXPECT_EQ(phases.seconds("encode"), 0.0);  // no encoder in this model
}

TEST(Orchestrator, UnknownModelThrows) {
  Orchestrator orc;
  orc.put_tensor("x", Tensor({1, 1}, {1}));
  EXPECT_THROW(orc.run_model("nope", "x", "y"), Error);
}

TEST(Deployment, InferShapesAndTiming) {
  Rng rng(2);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::TrainedSurrogate ts;
  ts.net = nn::build_surrogate(spec, 6, 3, rng);
  const DeployedSurrogate dep(nullptr, std::move(ts), DeviceModel{});

  const std::vector<double> feat{1, 2, 3, 4, 5, 6};
  const InferenceResult res = dep.infer(feat);
  EXPECT_EQ(res.outputs.size(), 3u);
  EXPECT_GT(res.timing.fetch_seconds, 0.0);
  EXPECT_GT(res.timing.run_seconds, 0.0);
  EXPECT_EQ(res.timing.encode_seconds, 0.0);
  EXPECT_NEAR(res.timing.total(),
              res.timing.fetch_seconds + res.timing.encode_seconds +
                  res.timing.load_seconds + res.timing.run_seconds,
              1e-15);
}

TEST(Deployment, SparsePathShipsFewerBytes) {
  Rng rng(3);
  const std::size_t width = 400;
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::TrainedSurrogate ts;
  ts.net = nn::build_surrogate(spec, width, 2, rng);
  const DeployedSurrogate dep(nullptr, std::move(ts), DeviceModel{});

  // One batch with a single very sparse row.
  const sparse::Csr batch = sparse::random_sparse(1, width, 0.02, rng);
  const InferenceResult sparse_res = dep.infer_sparse(batch, 0);
  const Tensor dense_row = batch.to_dense();
  const InferenceResult dense_res = dep.infer(
      std::vector<double>(dense_row.row(0).begin(), dense_row.row(0).end()));
  // The sparse fetch moves the compressed payload only (§4.2's saving).
  EXPECT_LT(sparse_res.timing.fetch_seconds, dense_res.timing.fetch_seconds);
  // Same math, same outputs.
  ASSERT_EQ(sparse_res.outputs.size(), dense_res.outputs.size());
  for (std::size_t i = 0; i < sparse_res.outputs.size(); ++i) {
    EXPECT_NEAR(sparse_res.outputs[i], dense_res.outputs[i], 1e-9);
  }
}

TEST(Deployment, EncoderAddsEncodePhase) {
  Rng rng(4);
  autoencoder::AutoencoderConfig acfg;
  acfg.latent_dim = 4;
  auto enc = std::make_shared<autoencoder::Autoencoder>(16, acfg);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::TrainedSurrogate ts;
  ts.net = nn::build_surrogate(spec, 4, 2, rng);
  const DeployedSurrogate dep(enc, std::move(ts), DeviceModel{});
  const InferenceResult res = dep.infer(std::vector<double>(16, 0.5));
  EXPECT_GT(res.timing.encode_seconds, 0.0);
  EXPECT_EQ(res.outputs.size(), 2u);
}

}  // namespace
}  // namespace ahn::runtime
