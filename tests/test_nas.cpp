// Tests for src/nas and src/baselines: candidate evaluation, the 2D
// hierarchical search (feasibility, quality-bound behaviour, checkpoint
// round trip, warm start), the Autokeras-like/grid/flat-joint comparators,
// loop-perforation tuning and the ACCEPT baseline.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "apps/registry.hpp"
#include "baselines/accept.hpp"
#include "baselines/perforation.hpp"
#include "nas/baseline_searchers.hpp"
#include "nas/ltfb.hpp"
#include "nas/two_d_nas.hpp"
#include "nn/topology.hpp"
#include "runtime/orchestrator.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace ahn::nas {
namespace {

/// A controlled synthetic search task: y = W x with x of dimension `width`
/// but intrinsic rank 4, so feature reduction genuinely helps. Quality is
/// the mean relative prediction error on a held-out slice.
SearchTask make_synthetic_task(std::size_t width, std::size_t samples = 160) {
  Rng rng(11);
  const std::size_t rank = 4, out = 6;
  Tensor basis = Tensor::randn({rank, width}, rng);
  Tensor w = Tensor::randn({width, out}, rng, 0.2);

  SearchTask task;
  task.data.x = Tensor({samples, width});
  for (std::size_t i = 0; i < samples; ++i) {
    std::vector<double> c(rank);
    for (auto& v : c) v = rng.uniform(-1, 1);
    for (std::size_t j = 0; j < width; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < rank; ++r) acc += c[r] * basis.at(r, j);
      task.data.x.at(i, j) = acc;
    }
  }
  task.data.y = ops::matmul(task.data.x, w);

  // Hold out the last 20 rows for the quality probe.
  auto holdout = std::make_shared<nn::Dataset>();
  std::vector<std::size_t> rows(20);
  std::iota(rows.begin(), rows.end(), samples - 20);
  *holdout = task.data.subset(rows);

  task.evaluate_quality = [holdout](const PipelineModel& pm) {
    double total = 0.0;
    for (std::size_t i = 0; i < holdout->size(); ++i) {
      const std::vector<double> feat(holdout->x.row(i).begin(), holdout->x.row(i).end());
      const std::vector<double> pred = pm.infer(feat);
      double num = 0.0, den = 0.0;
      for (std::size_t j = 0; j < pred.size(); ++j) {
        const double d = pred[j] - holdout->y.at(i, j);
        num += d * d;
        den += holdout->y.at(i, j) * holdout->y.at(i, j);
      }
      total += std::sqrt(num / (den + 1e-30));
    }
    return total / static_cast<double>(holdout->size());
  };
  task.quality_bound = 0.2;
  task.train.epochs = 60;
  task.train.lr = 5e-3;
  task.seed = 5;
  return task;
}

TEST(EvaluateCandidate, FillsObjectives) {
  const SearchTask task = make_synthetic_task(24);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 16;
  spec.act = nn::Activation::Identity;
  Rng rng(1);
  const PipelineModel pm = evaluate_candidate(task, spec, nullptr, task.data, rng);
  EXPECT_LT(pm.quality_error, 0.5);
  EXPECT_GT(pm.modeled_infer_seconds, 0.0);
  EXPECT_EQ(pm.latent_k, 0u);
}

TEST(PipelineModel, InferMatchesSurrogatePredict) {
  const SearchTask task = make_synthetic_task(12);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  spec.act = nn::Activation::Identity;
  Rng rng(2);
  const PipelineModel pm = evaluate_candidate(task, spec, nullptr, task.data, rng);
  const std::vector<double> feat(task.data.x.row(0).begin(), task.data.x.row(0).end());
  const std::vector<double> out = pm.infer(feat);
  EXPECT_EQ(out.size(), 6u);
}

TEST(TwoDNas, FindsFeasiblePipelineOnSyntheticTask) {
  const SearchTask task = make_synthetic_task(32);
  NasOptions opts;
  opts.outer_iterations = 2;
  opts.inner_iterations = 3;
  opts.k_min = 2;
  opts.k_max = 16;
  opts.ae_epochs = 40;
  const TwoDNas nas(opts);
  const NasResult res = nas.search(task);
  EXPECT_TRUE(res.found_feasible);
  EXPECT_LE(res.best.quality_error, task.quality_bound);
  EXPECT_GT(res.evaluations(), 3u);
  EXPECT_GT(res.search_seconds, 0.0);
}

TEST(TwoDNas, FullInputModeSkipsEncoder) {
  const SearchTask task = make_synthetic_task(16);
  NasOptions opts;
  opts.search_type = SearchType::FullInput;
  opts.inner_iterations = 3;
  const TwoDNas nas(opts);
  const NasResult res = nas.search(task);
  EXPECT_EQ(res.best.encoder, nullptr);
  EXPECT_EQ(res.best.latent_k, 0u);
}

TEST(TwoDNas, UserModelSeedIsEvaluatedFirst) {
  const SearchTask task = make_synthetic_task(16);
  NasOptions opts;
  opts.search_type = SearchType::UserModel;
  opts.user_model.num_layers = 3;
  opts.user_model.hidden_units = 24;
  opts.inner_iterations = 2;
  opts.outer_iterations = 1;
  const TwoDNas nas(opts);
  const NasResult res = nas.search(task);
  ASSERT_FALSE(res.steps.empty());
  EXPECT_EQ(res.steps.front().spec.num_layers, 3u);
  EXPECT_EQ(res.steps.front().spec.hidden_units, 24u);
}

TEST(TwoDNas, CheckpointRoundTrip) {
  const SearchTask task = make_synthetic_task(16);
  NasOptions opts;
  opts.outer_iterations = 1;
  opts.inner_iterations = 2;
  const TwoDNas nas(opts);
  const NasResult res = nas.search(task);

  std::stringstream ss;
  TwoDNas::save_checkpoint(ss, res);
  const std::vector<SearchStep> loaded = TwoDNas::load_checkpoint(ss);
  ASSERT_EQ(loaded.size(), res.steps.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].latent_k, res.steps[i].latent_k);
    EXPECT_EQ(loaded[i].spec.hidden_units, res.steps[i].spec.hidden_units);
    EXPECT_EQ(loaded[i].spec.act, res.steps[i].spec.act);
    EXPECT_DOUBLE_EQ(loaded[i].quality_error, res.steps[i].quality_error);
  }
}

TEST(TwoDNas, WarmStartConsumesPriorSteps) {
  const SearchTask task = make_synthetic_task(16);
  NasOptions opts;
  opts.outer_iterations = 1;
  opts.inner_iterations = 2;
  const TwoDNas nas(opts);
  const NasResult first = nas.search(task);
  const NasResult second = nas.search_from(task, first.steps);
  EXPECT_GT(second.evaluations(), first.evaluations());
}

/// Steps and incumbent must be identical whether candidates train inline or
/// on a thread pool — the per-candidate Rng forks are drafted in proposal
/// order on the coordinator, so scheduling cannot perturb the search.
TEST(TwoDNas, ParallelSearchMatchesSerialExactly) {
  const SearchTask task = make_synthetic_task(24);
  NasOptions opts;
  opts.outer_iterations = 2;
  opts.inner_iterations = 4;
  opts.k_min = 2;
  opts.k_max = 12;
  opts.ae_epochs = 30;
  opts.eval_batch = 3;

  const NasResult serial = TwoDNas(opts).search(task);

  runtime::ThreadPool pool(4);
  opts.pool = &pool;
  const NasResult parallel = TwoDNas(opts).search(task);

  ASSERT_EQ(parallel.steps.size(), serial.steps.size());
  for (std::size_t i = 0; i < serial.steps.size(); ++i) {
    EXPECT_EQ(parallel.steps[i].latent_k, serial.steps[i].latent_k) << "step " << i;
    EXPECT_EQ(parallel.steps[i].spec.num_layers, serial.steps[i].spec.num_layers);
    EXPECT_EQ(parallel.steps[i].spec.hidden_units, serial.steps[i].spec.hidden_units);
    EXPECT_EQ(parallel.steps[i].spec.act, serial.steps[i].spec.act);
    EXPECT_EQ(parallel.steps[i].quality_error, serial.steps[i].quality_error);
    EXPECT_EQ(parallel.steps[i].modeled_infer_seconds,
              serial.steps[i].modeled_infer_seconds);
  }
  EXPECT_EQ(parallel.best.spec.num_layers, serial.best.spec.num_layers);
  EXPECT_EQ(parallel.best.spec.hidden_units, serial.best.spec.hidden_units);
  EXPECT_EQ(parallel.best.latent_k, serial.best.latent_k);
  EXPECT_EQ(parallel.best.quality_error, serial.best.quality_error);
  EXPECT_EQ(parallel.best.modeled_infer_seconds, serial.best.modeled_infer_seconds);
  EXPECT_EQ(parallel.found_feasible, serial.found_feasible);
}

/// The memo cache must hand back the recorded result when the BO re-proposes
/// a (K, theta) it has already trained: re-proposed specs show up as repeat
/// steps with identical objectives.
TEST(TwoDNas, MemoCacheReturnsIdenticalResultsForRepeatedSpecs) {
  const SearchTask task = make_synthetic_task(16);
  NasOptions opts;
  opts.search_type = SearchType::FullInput;
  opts.inner_iterations = 8;  // enough rounds that specs recur
  const NasResult res = TwoDNas(opts).search(task);
  for (std::size_t i = 0; i < res.steps.size(); ++i) {
    for (std::size_t j = i + 1; j < res.steps.size(); ++j) {
      const SearchStep& a = res.steps[i];
      const SearchStep& b = res.steps[j];
      const bool same_spec = a.spec.num_layers == b.spec.num_layers &&
                             a.spec.hidden_units == b.spec.hidden_units &&
                             a.spec.kind == b.spec.kind && a.spec.act == b.spec.act &&
                             a.spec.channels == b.spec.channels &&
                             a.spec.kernel == b.spec.kernel &&
                             a.spec.pool == b.spec.pool &&
                             a.spec.residual == b.spec.residual;
      if (same_spec) {
        EXPECT_EQ(a.quality_error, b.quality_error);
        EXPECT_EQ(a.modeled_infer_seconds, b.modeled_infer_seconds);
      }
    }
  }
}

TEST(GridSearch, ParallelMatchesSerialExactly) {
  const SearchTask task = make_synthetic_task(12);
  GridSearchOptions opts;
  opts.layer_grid = {1, 2};
  opts.unit_grid = {8, 16, 32};
  const NasResult serial = GridSearch(opts).search(task);

  runtime::ThreadPool pool(4);
  opts.pool = &pool;
  const NasResult parallel = GridSearch(opts).search(task);

  ASSERT_EQ(parallel.steps.size(), serial.steps.size());
  for (std::size_t i = 0; i < serial.steps.size(); ++i) {
    EXPECT_EQ(parallel.steps[i].quality_error, serial.steps[i].quality_error);
    EXPECT_EQ(parallel.steps[i].modeled_infer_seconds,
              serial.steps[i].modeled_infer_seconds);
  }
  EXPECT_EQ(parallel.best.spec.num_layers, serial.best.spec.num_layers);
  EXPECT_EQ(parallel.best.spec.hidden_units, serial.best.spec.hidden_units);
  EXPECT_EQ(parallel.best.quality_error, serial.best.quality_error);
}

TEST(AutokerasLike, BatchedSearchMatchesUnpooledExactly) {
  const SearchTask task = make_synthetic_task(16);
  AutokerasOptions opts;
  opts.iterations = 5;
  opts.eval_batch = 2;
  const NasResult serial = AutokerasLike(opts).search(task);

  runtime::ThreadPool pool(2);
  opts.pool = &pool;
  const NasResult parallel = AutokerasLike(opts).search(task);

  ASSERT_EQ(parallel.steps.size(), serial.steps.size());
  for (std::size_t i = 0; i < serial.steps.size(); ++i) {
    EXPECT_EQ(parallel.steps[i].spec.hidden_units, serial.steps[i].spec.hidden_units);
    EXPECT_EQ(parallel.steps[i].quality_error, serial.steps[i].quality_error);
  }
  EXPECT_EQ(parallel.best.spec.hidden_units, serial.best.spec.hidden_units);
  EXPECT_EQ(parallel.best.quality_error, serial.best.quality_error);
}

TEST(AutokerasLike, SearchesWithoutQualityConstraint) {
  const SearchTask task = make_synthetic_task(24);
  AutokerasOptions opts;
  opts.iterations = 4;
  const AutokerasLike ak(opts);
  const NasResult res = ak.search(task);
  EXPECT_EQ(res.evaluations(), 4u);
  EXPECT_EQ(res.best.encoder, nullptr);  // never reduces features
}

TEST(GridSearch, EnumeratesFullGrid) {
  const SearchTask task = make_synthetic_task(12);
  GridSearchOptions opts;
  opts.layer_grid = {1, 2};
  opts.unit_grid = {8, 16};
  const GridSearch grid(opts);
  const NasResult res = grid.search(task);
  EXPECT_EQ(res.evaluations(), 4u);
}

TEST(FlatJointNas, RunsAndTracksEncodingMiss) {
  const SearchTask task = make_synthetic_task(24);
  FlatJointOptions opts;
  opts.iterations = 3;
  opts.k_min = 2;
  opts.k_max = 12;
  opts.ae_epochs = 30;
  const FlatJointNas flat(opts);
  const NasResult res = flat.search(task);
  EXPECT_EQ(res.evaluations(), 3u);
  for (const auto& s : res.steps) EXPECT_GT(s.latent_k, 0u);
}

// ------------------------------------------------------- LTFB population

PopulationOptions small_population(std::size_t population, std::size_t rounds) {
  PopulationOptions opts;
  opts.nas.inner_iterations = 2;
  opts.nas.k_min = 2;
  opts.nas.k_max = 8;
  opts.nas.ae_epochs = 25;
  opts.population = population;
  opts.rounds = rounds;
  return opts;
}

void expect_same_population_result(const PopulationResult& a, const PopulationResult& b) {
  ASSERT_EQ(a.workers.size(), b.workers.size());
  for (std::size_t w = 0; w < a.workers.size(); ++w) {
    ASSERT_EQ(a.workers[w].steps.size(), b.workers[w].steps.size()) << "worker " << w;
    for (std::size_t i = 0; i < a.workers[w].steps.size(); ++i) {
      const SearchStep& sa = a.workers[w].steps[i];
      const SearchStep& sb = b.workers[w].steps[i];
      EXPECT_EQ(sa.latent_k, sb.latent_k) << "worker " << w << " step " << i;
      EXPECT_EQ(sa.spec.num_layers, sb.spec.num_layers);
      EXPECT_EQ(sa.spec.hidden_units, sb.spec.hidden_units);
      EXPECT_EQ(sa.spec.act, sb.spec.act);
      EXPECT_EQ(sa.quality_error, sb.quality_error);
      EXPECT_EQ(sa.modeled_infer_seconds, sb.modeled_infer_seconds);
    }
  }
  ASSERT_EQ(a.tournaments.size(), b.tournaments.size());
  for (std::size_t i = 0; i < a.tournaments.size(); ++i) {
    EXPECT_EQ(a.tournaments[i].round, b.tournaments[i].round);
    EXPECT_EQ(a.tournaments[i].winner, b.tournaments[i].winner);
    EXPECT_EQ(a.tournaments[i].loser, b.tournaments[i].loser);
    EXPECT_EQ(a.tournaments[i].adopted.latent_k, b.tournaments[i].adopted.latent_k);
    EXPECT_EQ(a.tournaments[i].adopted.spec.hidden_units,
              b.tournaments[i].adopted.spec.hidden_units);
  }
  EXPECT_EQ(a.best_worker, b.best_worker);
  EXPECT_EQ(a.best.latent_k, b.best.latent_k);
  EXPECT_EQ(a.best.spec.num_layers, b.best.spec.num_layers);
  EXPECT_EQ(a.best.spec.hidden_units, b.best.spec.hidden_units);
  EXPECT_EQ(a.best.quality_error, b.best.quality_error);
  EXPECT_EQ(a.best.modeled_infer_seconds, b.best.modeled_infer_seconds);
  EXPECT_EQ(a.found_feasible, b.found_feasible);
}

TEST(Ltfb, PairingIsDeterministicDisjointAndSitsOddWorkerOut) {
  for (const std::size_t p : {2u, 3u, 5u, 8u}) {
    for (std::size_t round = 0; round < 4; ++round) {
      const auto pairs = PopulationSearch::pairing(17, round, p);
      EXPECT_EQ(pairs.size(), p / 2) << "P=" << p;
      std::vector<bool> seen(p, false);
      for (const auto& [a, b] : pairs) {
        ASSERT_LT(a, p);
        ASSERT_LT(b, p);
        EXPECT_NE(a, b);
        EXPECT_FALSE(seen[a]) << "worker " << a << " paired twice";
        EXPECT_FALSE(seen[b]) << "worker " << b << " paired twice";
        seen[a] = seen[b] = true;
      }
      // Keyed by (seed, round) only: replaying the schedule is identical.
      EXPECT_EQ(pairs, PopulationSearch::pairing(17, round, p));
    }
    // Different seeds must decouple the schedules (with 8 workers the odds
    // of all four rounds colliding by chance are negligible).
    if (p == 8) {
      bool any_differ = false;
      for (std::size_t round = 0; round < 4; ++round) {
        if (PopulationSearch::pairing(17, round, p) !=
            PopulationSearch::pairing(18, round, p)) {
          any_differ = true;
        }
      }
      EXPECT_TRUE(any_differ);
    }
  }
}

TEST(Ltfb, PerturbationStaysInsideSearchSpace) {
  nn::TopologySpace space;
  const std::size_t k_min = 2, k_max = 16;
  Elite winner;
  winner.latent_k = 8;
  winner.spec.num_layers = 2;
  winner.spec.hidden_units = 64;
  winner.spec.channels = 4;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    for (std::size_t round = 0; round < 4; ++round) {
      const Elite out = PopulationSearch::perturb_elite(winner, seed, round,
                                                        /*loser=*/seed % 5, space,
                                                        k_min, k_max, 0.25);
      EXPECT_GE(out.latent_k, k_min);
      EXPECT_LE(out.latent_k, k_max);
      EXPECT_GE(out.spec.hidden_units, space.min_units);
      EXPECT_LE(out.spec.hidden_units, space.max_units);
      EXPECT_GE(out.spec.num_layers, space.min_layers);
      EXPECT_LE(out.spec.num_layers, space.max_layers);
      EXPECT_GE(out.spec.channels, space.min_channels);
      EXPECT_LE(out.spec.channels, space.max_channels);
      // Keyed schedule: same (seed, round, loser) -> same perturbation.
      const Elite again = PopulationSearch::perturb_elite(winner, seed, round,
                                                          seed % 5, space, k_min,
                                                          k_max, 0.25);
      EXPECT_EQ(out.latent_k, again.latent_k);
      EXPECT_EQ(out.spec.hidden_units, again.spec.hidden_units);
      EXPECT_EQ(out.spec.num_layers, again.spec.num_layers);
    }
  }
  // A full-input elite (K = 0) stays full-input: the adoption never invents
  // a reduction the winner did not have.
  winner.latent_k = 0;
  const Elite out = PopulationSearch::perturb_elite(winner, 3, 1, 2, space, k_min,
                                                    k_max, 0.25);
  EXPECT_EQ(out.latent_k, 0u);
}

TEST(Ltfb, SingleWorkerDegradesToSerialSearchWithoutTournaments) {
  const SearchTask task = make_synthetic_task(16);
  const PopulationResult res =
      PopulationSearch(small_population(/*population=*/1, /*rounds=*/2)).search(task);
  EXPECT_EQ(res.workers.size(), 1u);
  EXPECT_TRUE(res.tournaments.empty());
  EXPECT_EQ(res.best_worker, 0u);
  EXPECT_GT(res.evaluations(), 2u);
}

/// The determinism contract of the hpp header: a fixed task seed yields a
/// bitwise-identical search whether workers run serially, on one pool
/// thread, or on eight.
TEST(Ltfb, SearchIsBitwiseIdenticalAcrossPoolSizes) {
  const SearchTask task = make_synthetic_task(16);
  PopulationOptions opts = small_population(/*population=*/4, /*rounds=*/2);

  const PopulationResult serial = PopulationSearch(opts).search(task);
  // P=4, rounds=2 -> exactly one tournament barrier, two adoption records.
  EXPECT_EQ(serial.tournaments.size(), 2u);
  for (const TournamentRecord& t : serial.tournaments) {
    EXPECT_NE(t.winner, t.loser);
    EXPECT_EQ(t.round, 0u);
  }

  runtime::ThreadPool one(1);
  opts.pool = &one;
  const PopulationResult pooled1 = PopulationSearch(opts).search(task);
  expect_same_population_result(serial, pooled1);

  runtime::ThreadPool eight(8);
  opts.pool = &eight;
  const PopulationResult pooled8 = PopulationSearch(opts).search(task);
  expect_same_population_result(serial, pooled8);
}

TEST(Ltfb, SingleWorkerMatchesAcrossPoolPresence) {
  const SearchTask task = make_synthetic_task(16);
  PopulationOptions opts = small_population(/*population=*/1, /*rounds=*/2);
  const PopulationResult serial = PopulationSearch(opts).search(task);
  runtime::ThreadPool eight(8);
  opts.pool = &eight;
  const PopulationResult pooled = PopulationSearch(opts).search(task);
  expect_same_population_result(serial, pooled);
}

TEST(Ltfb, PopulationTrainFnProducesRolloutCandidate) {
  // The Retrainer seam: a labeled reservoir dataset in, a candidate (with
  // replacement encoder wiring when the search reduced features) out.
  const SearchTask probe = make_synthetic_task(16, /*samples=*/96);
  nn::Dataset data = probe.data;

  PopulationOptions opts = small_population(/*population=*/2, /*rounds=*/1);
  nn::TrainOptions train;
  train.epochs = 40;
  train.lr = 5e-3;
  const runtime::RetrainCandidateFn fn =
      make_population_train_fn(opts, train, /*quality_bound=*/0.5);

  runtime::ServableModel active;
  Rng rng(3);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  active.surrogate.net = nn::build_surrogate(spec, data.x.cols(), data.y.cols(), rng);

  const runtime::RetrainCandidate cand = fn(active, data);
  EXPECT_GT(cand.surrogate.net.layer_count(), 0u);
  if (cand.replace_encoder && cand.encode) {
    // The encode hook must feed the surrogate's expected input width.
    const Tensor reduced = cand.encode(data.x);
    EXPECT_EQ(reduced.rows(), data.x.rows());
    EXPECT_GT(cand.encode_ops.flops, 0u);
    const Tensor y = cand.surrogate.predict(reduced);
    EXPECT_EQ(y.rows(), data.x.rows());
  }
}

}  // namespace
}  // namespace ahn::nas

namespace ahn::baselines {
namespace {

TEST(Perforation, PicksFullKeepWhenQualityFragile) {
  // FFT collapses under stage perforation, so calibration must keep 1.0.
  auto app = apps::make_application("FFT");
  app->generate_problems(10, 3);
  const std::vector<std::size_t> cal{0, 1, 2, 3};
  const std::vector<std::size_t> eval{4, 5, 6, 7};
  const PerforationResult res = tune_and_evaluate(*app, cal, eval);
  EXPECT_EQ(res.keep_fraction, 1.0);
  EXPECT_NEAR(res.speedup, 1.0, 0.35);
}

TEST(Perforation, ExploitsTolerantKernels) {
  // x264 forwards source pixels for skipped tiles: quality stays high and a
  // sub-1.0 keep should be selected with real speedup.
  auto app = apps::make_application("X264");
  app->generate_problems(10, 5);
  const std::vector<std::size_t> cal{0, 1, 2, 3};
  const std::vector<std::size_t> eval{4, 5, 6, 7};
  const PerforationResult res = tune_and_evaluate(*app, cal, eval);
  EXPECT_LT(res.keep_fraction, 1.0);
  EXPECT_GT(res.speedup, 1.2);
  EXPECT_GE(res.hit_rate, 0.75);
}

TEST(Accept, CoversOnlyTypeTwoApps) {
  EXPECT_TRUE(accept_topology("Blackscholes").has_value());
  EXPECT_TRUE(accept_topology("X264").has_value());
  EXPECT_FALSE(accept_topology("CG").has_value());
  EXPECT_FALSE(accept_topology("AMG").has_value());
  EXPECT_FALSE(accept_topology("miniQMC").has_value());
}

TEST(Accept, TrainsFixedTopology) {
  const nas::SearchTask task = [] {
    // Tiny synthetic task reusing the nas test helper shape.
    Rng rng(2);
    nas::SearchTask t;
    t.data.x = Tensor::randn({80, 10}, rng);
    t.data.y = ops::matmul(t.data.x, Tensor::randn({10, 2}, rng));
    t.evaluate_quality = [](const nas::PipelineModel&) { return 0.05; };
    t.train.epochs = 20;
    return t;
  }();
  const nas::PipelineModel pm = train_accept_model(task, "Canneal");
  EXPECT_EQ(pm.spec.num_layers, 1u);
  EXPECT_EQ(pm.spec.act, nn::Activation::Sigmoid);
  EXPECT_EQ(pm.encoder, nullptr);
  EXPECT_THROW((void)train_accept_model(task, "CG"), Error);
}

}  // namespace
}  // namespace ahn::baselines
