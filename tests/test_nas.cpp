// Tests for src/nas and src/baselines: candidate evaluation, the 2D
// hierarchical search (feasibility, quality-bound behaviour, checkpoint
// round trip, warm start), the Autokeras-like/grid/flat-joint comparators,
// loop-perforation tuning and the ACCEPT baseline.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "apps/registry.hpp"
#include "baselines/accept.hpp"
#include "baselines/perforation.hpp"
#include "nas/baseline_searchers.hpp"
#include "nas/two_d_nas.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace ahn::nas {
namespace {

/// A controlled synthetic search task: y = W x with x of dimension `width`
/// but intrinsic rank 4, so feature reduction genuinely helps. Quality is
/// the mean relative prediction error on a held-out slice.
SearchTask make_synthetic_task(std::size_t width, std::size_t samples = 160) {
  Rng rng(11);
  const std::size_t rank = 4, out = 6;
  Tensor basis = Tensor::randn({rank, width}, rng);
  Tensor w = Tensor::randn({width, out}, rng, 0.2);

  SearchTask task;
  task.data.x = Tensor({samples, width});
  for (std::size_t i = 0; i < samples; ++i) {
    std::vector<double> c(rank);
    for (auto& v : c) v = rng.uniform(-1, 1);
    for (std::size_t j = 0; j < width; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < rank; ++r) acc += c[r] * basis.at(r, j);
      task.data.x.at(i, j) = acc;
    }
  }
  task.data.y = ops::matmul(task.data.x, w);

  // Hold out the last 20 rows for the quality probe.
  auto holdout = std::make_shared<nn::Dataset>();
  std::vector<std::size_t> rows(20);
  std::iota(rows.begin(), rows.end(), samples - 20);
  *holdout = task.data.subset(rows);

  task.evaluate_quality = [holdout](const PipelineModel& pm) {
    double total = 0.0;
    for (std::size_t i = 0; i < holdout->size(); ++i) {
      const std::vector<double> feat(holdout->x.row(i).begin(), holdout->x.row(i).end());
      const std::vector<double> pred = pm.infer(feat);
      double num = 0.0, den = 0.0;
      for (std::size_t j = 0; j < pred.size(); ++j) {
        const double d = pred[j] - holdout->y.at(i, j);
        num += d * d;
        den += holdout->y.at(i, j) * holdout->y.at(i, j);
      }
      total += std::sqrt(num / (den + 1e-30));
    }
    return total / static_cast<double>(holdout->size());
  };
  task.quality_bound = 0.2;
  task.train.epochs = 60;
  task.train.lr = 5e-3;
  task.seed = 5;
  return task;
}

TEST(EvaluateCandidate, FillsObjectives) {
  const SearchTask task = make_synthetic_task(24);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 16;
  spec.act = nn::Activation::Identity;
  Rng rng(1);
  const PipelineModel pm = evaluate_candidate(task, spec, nullptr, task.data, rng);
  EXPECT_LT(pm.quality_error, 0.5);
  EXPECT_GT(pm.modeled_infer_seconds, 0.0);
  EXPECT_EQ(pm.latent_k, 0u);
}

TEST(PipelineModel, InferMatchesSurrogatePredict) {
  const SearchTask task = make_synthetic_task(12);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  spec.act = nn::Activation::Identity;
  Rng rng(2);
  const PipelineModel pm = evaluate_candidate(task, spec, nullptr, task.data, rng);
  const std::vector<double> feat(task.data.x.row(0).begin(), task.data.x.row(0).end());
  const std::vector<double> out = pm.infer(feat);
  EXPECT_EQ(out.size(), 6u);
}

TEST(TwoDNas, FindsFeasiblePipelineOnSyntheticTask) {
  const SearchTask task = make_synthetic_task(32);
  NasOptions opts;
  opts.outer_iterations = 2;
  opts.inner_iterations = 3;
  opts.k_min = 2;
  opts.k_max = 16;
  opts.ae_epochs = 40;
  const TwoDNas nas(opts);
  const NasResult res = nas.search(task);
  EXPECT_TRUE(res.found_feasible);
  EXPECT_LE(res.best.quality_error, task.quality_bound);
  EXPECT_GT(res.evaluations(), 3u);
  EXPECT_GT(res.search_seconds, 0.0);
}

TEST(TwoDNas, FullInputModeSkipsEncoder) {
  const SearchTask task = make_synthetic_task(16);
  NasOptions opts;
  opts.search_type = SearchType::FullInput;
  opts.inner_iterations = 3;
  const TwoDNas nas(opts);
  const NasResult res = nas.search(task);
  EXPECT_EQ(res.best.encoder, nullptr);
  EXPECT_EQ(res.best.latent_k, 0u);
}

TEST(TwoDNas, UserModelSeedIsEvaluatedFirst) {
  const SearchTask task = make_synthetic_task(16);
  NasOptions opts;
  opts.search_type = SearchType::UserModel;
  opts.user_model.num_layers = 3;
  opts.user_model.hidden_units = 24;
  opts.inner_iterations = 2;
  opts.outer_iterations = 1;
  const TwoDNas nas(opts);
  const NasResult res = nas.search(task);
  ASSERT_FALSE(res.steps.empty());
  EXPECT_EQ(res.steps.front().spec.num_layers, 3u);
  EXPECT_EQ(res.steps.front().spec.hidden_units, 24u);
}

TEST(TwoDNas, CheckpointRoundTrip) {
  const SearchTask task = make_synthetic_task(16);
  NasOptions opts;
  opts.outer_iterations = 1;
  opts.inner_iterations = 2;
  const TwoDNas nas(opts);
  const NasResult res = nas.search(task);

  std::stringstream ss;
  TwoDNas::save_checkpoint(ss, res);
  const std::vector<SearchStep> loaded = TwoDNas::load_checkpoint(ss);
  ASSERT_EQ(loaded.size(), res.steps.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].latent_k, res.steps[i].latent_k);
    EXPECT_EQ(loaded[i].spec.hidden_units, res.steps[i].spec.hidden_units);
    EXPECT_EQ(loaded[i].spec.act, res.steps[i].spec.act);
    EXPECT_DOUBLE_EQ(loaded[i].quality_error, res.steps[i].quality_error);
  }
}

TEST(TwoDNas, WarmStartConsumesPriorSteps) {
  const SearchTask task = make_synthetic_task(16);
  NasOptions opts;
  opts.outer_iterations = 1;
  opts.inner_iterations = 2;
  const TwoDNas nas(opts);
  const NasResult first = nas.search(task);
  const NasResult second = nas.search_from(task, first.steps);
  EXPECT_GT(second.evaluations(), first.evaluations());
}

/// Steps and incumbent must be identical whether candidates train inline or
/// on a thread pool — the per-candidate Rng forks are drafted in proposal
/// order on the coordinator, so scheduling cannot perturb the search.
TEST(TwoDNas, ParallelSearchMatchesSerialExactly) {
  const SearchTask task = make_synthetic_task(24);
  NasOptions opts;
  opts.outer_iterations = 2;
  opts.inner_iterations = 4;
  opts.k_min = 2;
  opts.k_max = 12;
  opts.ae_epochs = 30;
  opts.eval_batch = 3;

  const NasResult serial = TwoDNas(opts).search(task);

  runtime::ThreadPool pool(4);
  opts.pool = &pool;
  const NasResult parallel = TwoDNas(opts).search(task);

  ASSERT_EQ(parallel.steps.size(), serial.steps.size());
  for (std::size_t i = 0; i < serial.steps.size(); ++i) {
    EXPECT_EQ(parallel.steps[i].latent_k, serial.steps[i].latent_k) << "step " << i;
    EXPECT_EQ(parallel.steps[i].spec.num_layers, serial.steps[i].spec.num_layers);
    EXPECT_EQ(parallel.steps[i].spec.hidden_units, serial.steps[i].spec.hidden_units);
    EXPECT_EQ(parallel.steps[i].spec.act, serial.steps[i].spec.act);
    EXPECT_EQ(parallel.steps[i].quality_error, serial.steps[i].quality_error);
    EXPECT_EQ(parallel.steps[i].modeled_infer_seconds,
              serial.steps[i].modeled_infer_seconds);
  }
  EXPECT_EQ(parallel.best.spec.num_layers, serial.best.spec.num_layers);
  EXPECT_EQ(parallel.best.spec.hidden_units, serial.best.spec.hidden_units);
  EXPECT_EQ(parallel.best.latent_k, serial.best.latent_k);
  EXPECT_EQ(parallel.best.quality_error, serial.best.quality_error);
  EXPECT_EQ(parallel.best.modeled_infer_seconds, serial.best.modeled_infer_seconds);
  EXPECT_EQ(parallel.found_feasible, serial.found_feasible);
}

/// The memo cache must hand back the recorded result when the BO re-proposes
/// a (K, theta) it has already trained: re-proposed specs show up as repeat
/// steps with identical objectives.
TEST(TwoDNas, MemoCacheReturnsIdenticalResultsForRepeatedSpecs) {
  const SearchTask task = make_synthetic_task(16);
  NasOptions opts;
  opts.search_type = SearchType::FullInput;
  opts.inner_iterations = 8;  // enough rounds that specs recur
  const NasResult res = TwoDNas(opts).search(task);
  for (std::size_t i = 0; i < res.steps.size(); ++i) {
    for (std::size_t j = i + 1; j < res.steps.size(); ++j) {
      const SearchStep& a = res.steps[i];
      const SearchStep& b = res.steps[j];
      const bool same_spec = a.spec.num_layers == b.spec.num_layers &&
                             a.spec.hidden_units == b.spec.hidden_units &&
                             a.spec.kind == b.spec.kind && a.spec.act == b.spec.act &&
                             a.spec.channels == b.spec.channels &&
                             a.spec.kernel == b.spec.kernel &&
                             a.spec.pool == b.spec.pool &&
                             a.spec.residual == b.spec.residual;
      if (same_spec) {
        EXPECT_EQ(a.quality_error, b.quality_error);
        EXPECT_EQ(a.modeled_infer_seconds, b.modeled_infer_seconds);
      }
    }
  }
}

TEST(GridSearch, ParallelMatchesSerialExactly) {
  const SearchTask task = make_synthetic_task(12);
  GridSearchOptions opts;
  opts.layer_grid = {1, 2};
  opts.unit_grid = {8, 16, 32};
  const NasResult serial = GridSearch(opts).search(task);

  runtime::ThreadPool pool(4);
  opts.pool = &pool;
  const NasResult parallel = GridSearch(opts).search(task);

  ASSERT_EQ(parallel.steps.size(), serial.steps.size());
  for (std::size_t i = 0; i < serial.steps.size(); ++i) {
    EXPECT_EQ(parallel.steps[i].quality_error, serial.steps[i].quality_error);
    EXPECT_EQ(parallel.steps[i].modeled_infer_seconds,
              serial.steps[i].modeled_infer_seconds);
  }
  EXPECT_EQ(parallel.best.spec.num_layers, serial.best.spec.num_layers);
  EXPECT_EQ(parallel.best.spec.hidden_units, serial.best.spec.hidden_units);
  EXPECT_EQ(parallel.best.quality_error, serial.best.quality_error);
}

TEST(AutokerasLike, BatchedSearchMatchesUnpooledExactly) {
  const SearchTask task = make_synthetic_task(16);
  AutokerasOptions opts;
  opts.iterations = 5;
  opts.eval_batch = 2;
  const NasResult serial = AutokerasLike(opts).search(task);

  runtime::ThreadPool pool(2);
  opts.pool = &pool;
  const NasResult parallel = AutokerasLike(opts).search(task);

  ASSERT_EQ(parallel.steps.size(), serial.steps.size());
  for (std::size_t i = 0; i < serial.steps.size(); ++i) {
    EXPECT_EQ(parallel.steps[i].spec.hidden_units, serial.steps[i].spec.hidden_units);
    EXPECT_EQ(parallel.steps[i].quality_error, serial.steps[i].quality_error);
  }
  EXPECT_EQ(parallel.best.spec.hidden_units, serial.best.spec.hidden_units);
  EXPECT_EQ(parallel.best.quality_error, serial.best.quality_error);
}

TEST(AutokerasLike, SearchesWithoutQualityConstraint) {
  const SearchTask task = make_synthetic_task(24);
  AutokerasOptions opts;
  opts.iterations = 4;
  const AutokerasLike ak(opts);
  const NasResult res = ak.search(task);
  EXPECT_EQ(res.evaluations(), 4u);
  EXPECT_EQ(res.best.encoder, nullptr);  // never reduces features
}

TEST(GridSearch, EnumeratesFullGrid) {
  const SearchTask task = make_synthetic_task(12);
  GridSearchOptions opts;
  opts.layer_grid = {1, 2};
  opts.unit_grid = {8, 16};
  const GridSearch grid(opts);
  const NasResult res = grid.search(task);
  EXPECT_EQ(res.evaluations(), 4u);
}

TEST(FlatJointNas, RunsAndTracksEncodingMiss) {
  const SearchTask task = make_synthetic_task(24);
  FlatJointOptions opts;
  opts.iterations = 3;
  opts.k_min = 2;
  opts.k_max = 12;
  opts.ae_epochs = 30;
  const FlatJointNas flat(opts);
  const NasResult res = flat.search(task);
  EXPECT_EQ(res.evaluations(), 3u);
  for (const auto& s : res.steps) EXPECT_GT(s.latent_k, 0u);
}

}  // namespace
}  // namespace ahn::nas

namespace ahn::baselines {
namespace {

TEST(Perforation, PicksFullKeepWhenQualityFragile) {
  // FFT collapses under stage perforation, so calibration must keep 1.0.
  auto app = apps::make_application("FFT");
  app->generate_problems(10, 3);
  const std::vector<std::size_t> cal{0, 1, 2, 3};
  const std::vector<std::size_t> eval{4, 5, 6, 7};
  const PerforationResult res = tune_and_evaluate(*app, cal, eval);
  EXPECT_EQ(res.keep_fraction, 1.0);
  EXPECT_NEAR(res.speedup, 1.0, 0.35);
}

TEST(Perforation, ExploitsTolerantKernels) {
  // x264 forwards source pixels for skipped tiles: quality stays high and a
  // sub-1.0 keep should be selected with real speedup.
  auto app = apps::make_application("X264");
  app->generate_problems(10, 5);
  const std::vector<std::size_t> cal{0, 1, 2, 3};
  const std::vector<std::size_t> eval{4, 5, 6, 7};
  const PerforationResult res = tune_and_evaluate(*app, cal, eval);
  EXPECT_LT(res.keep_fraction, 1.0);
  EXPECT_GT(res.speedup, 1.2);
  EXPECT_GE(res.hit_rate, 0.75);
}

TEST(Accept, CoversOnlyTypeTwoApps) {
  EXPECT_TRUE(accept_topology("Blackscholes").has_value());
  EXPECT_TRUE(accept_topology("X264").has_value());
  EXPECT_FALSE(accept_topology("CG").has_value());
  EXPECT_FALSE(accept_topology("AMG").has_value());
  EXPECT_FALSE(accept_topology("miniQMC").has_value());
}

TEST(Accept, TrainsFixedTopology) {
  const nas::SearchTask task = [] {
    // Tiny synthetic task reusing the nas test helper shape.
    Rng rng(2);
    nas::SearchTask t;
    t.data.x = Tensor::randn({80, 10}, rng);
    t.data.y = ops::matmul(t.data.x, Tensor::randn({10, 2}, rng));
    t.evaluate_quality = [](const nas::PipelineModel&) { return 0.05; };
    t.train.epochs = 20;
    return t;
  }();
  const nas::PipelineModel pm = train_accept_model(task, "Canneal");
  EXPECT_EQ(pm.spec.num_layers, 1u);
  EXPECT_EQ(pm.spec.act, nn::Activation::Sigmoid);
  EXPECT_EQ(pm.encoder, nullptr);
  EXPECT_THROW((void)train_accept_model(task, "CG"), Error);
}

}  // namespace
}  // namespace ahn::baselines
