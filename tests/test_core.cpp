// Tests for src/core: Table-1 config parsing, Eqn-2/Eqn-3 evaluation
// mechanics (fallback accounting, breakdown), and a miniature end-to-end
// pipeline run on the cheapest application.

#include <gtest/gtest.h>

#include <numeric>

#include "apps/registry.hpp"
#include "core/config.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"

namespace ahn::core {
namespace {

TEST(Config, DefaultsMatchPaperSettings) {
  const Config cfg;
  EXPECT_EQ(cfg.search_type, nas::SearchType::Autokeras);
  EXPECT_DOUBLE_EQ(cfg.mu, 0.1);  // §7.1: mu = 10%
  EXPECT_DOUBLE_EQ(cfg.quality_loss, 0.1);
  EXPECT_EQ(cfg.init_model, nn::ModelKind::Mlp);  // Table 1 default
}

TEST(Config, AppliesTable1Knobs) {
  Config cfg;
  cfg.apply("searchType=fullInput");
  cfg.apply("bayesianInit=7");
  cfg.apply("encodingLoss=0.3");
  cfg.apply("qualityLoss=0.05");
  cfg.apply("initModel=CNN");
  cfg.apply("numEpoch=99");
  cfg.apply("trainRatio=0.7");
  cfg.apply("batchSize=16");
  cfg.apply("lr=0.01");
  cfg.apply("preprocessing=0");
  EXPECT_EQ(cfg.search_type, nas::SearchType::FullInput);
  EXPECT_EQ(cfg.bayesian_init, 7u);
  EXPECT_DOUBLE_EQ(cfg.encoding_loss, 0.3);
  EXPECT_DOUBLE_EQ(cfg.quality_loss, 0.05);
  EXPECT_EQ(cfg.init_model, nn::ModelKind::Cnn);
  EXPECT_EQ(cfg.num_epoch, 99u);
  EXPECT_DOUBLE_EQ(cfg.train_ratio, 0.7);
  EXPECT_EQ(cfg.batch_size, 16u);
  EXPECT_DOUBLE_EQ(cfg.lr, 0.01);
  EXPECT_FALSE(cfg.preprocessing);
}

TEST(Config, RejectsUnknownKeysAndBadValues) {
  Config cfg;
  EXPECT_THROW(cfg.apply("noSuchKey=1"), Error);
  EXPECT_THROW(cfg.apply("numEpoch=abc"), Error);
  EXPECT_THROW(cfg.apply("malformed"), Error);
  EXPECT_THROW(cfg.apply("searchType=bogus"), Error);
}

TEST(Config, FromArgsAppliesEach) {
  const char* argv[] = {"prog", "mu=0.2", "seed=9"};
  const Config cfg = Config::from_args(3, argv);
  EXPECT_DOUBLE_EQ(cfg.mu, 0.2);
  EXPECT_EQ(cfg.seed, 9u);
}

TEST(Config, TranslatesToNasAndTrainOptions) {
  Config cfg;
  cfg.apply("innerIterations=9");
  cfg.apply("kMax=32");
  const nas::NasOptions nopts = cfg.nas_options();
  EXPECT_EQ(nopts.inner_iterations, 9u);
  EXPECT_EQ(nopts.k_max, 32u);
  const nn::TrainOptions topts = cfg.train_options();
  EXPECT_EQ(topts.epochs, cfg.num_epoch);
  EXPECT_EQ(topts.batch_size, cfg.batch_size);
}

/// Builds a perfect pipeline model (predicts the app's exact outputs) by
/// wrapping a lookup — lets evaluation mechanics be tested in isolation.
nas::PipelineModel oracle_like_model(const apps::Application& app,
                                     std::span<const std::size_t> problems,
                                     double corruption) {
  // Train a tiny identity-activation net to regress the mapping; corruption
  // perturbs its weights to force controlled misses.
  nn::Dataset data;
  data.x = Tensor({problems.size(), app.input_dim()});
  data.y = Tensor({problems.size(), app.output_dim()});
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const auto f = app.input_features(problems[i]);
    std::copy(f.begin(), f.end(), data.x.row(i).begin());
    const auto out = app.run_region(problems[i]).outputs;
    std::copy(out.begin(), out.end(), data.y.row(i).begin());
  }
  // Width must exceed the map's rank (identity MLPs are low-rank otherwise).
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 96;
  spec.act = nn::Activation::Identity;
  Rng rng(3);
  nn::Network net = nn::build_surrogate(spec, app.input_dim(), app.output_dim(), rng);
  nn::TrainOptions topts;
  topts.epochs = 300;
  topts.lr = 5e-3;
  topts.patience = 50;
  nas::PipelineModel pm;
  pm.surrogate = nn::train_surrogate(std::move(net), data, topts);
  if (corruption > 0.0) {
    for (Tensor* p : pm.surrogate.net.params()) {
      for (double& v : p->flat()) v *= (1.0 + corruption);
    }
  }
  pm.spec = spec;
  return pm;
}

TEST(Evaluation, GoodModelHitsAndSpeedsUp) {
  auto app = apps::make_application("MG");
  app->generate_problems(160, 11);
  std::vector<std::size_t> train(150), eval(10);
  std::iota(train.begin(), train.end(), 0);
  std::iota(eval.begin(), eval.end(), 150);
  const nas::PipelineModel pm = oracle_like_model(*app, train, 0.0);
  const AppEvaluation ev =
      evaluate_pipeline(*app, eval, pm, runtime::DeviceModel{});
  EXPECT_GT(ev.hit_rate, 0.8);
  EXPECT_GT(ev.speedup, 1.0);
  EXPECT_GT(ev.breakdown.run, 0.0);
  EXPECT_GT(ev.breakdown.fetch, 0.0);
}

TEST(Evaluation, FallbackChargesExactTimeOnMisses) {
  auto app = apps::make_application("MG");
  app->generate_problems(160, 13);
  std::vector<std::size_t> train(150), eval(10);
  std::iota(train.begin(), train.end(), 0);
  std::iota(eval.begin(), eval.end(), 150);
  // Heavy corruption: everything misses.
  const nas::PipelineModel pm = oracle_like_model(*app, train, 10.0);

  EvalOptions with_fallback;
  const AppEvaluation ev_fb = evaluate_pipeline(*app, eval, pm,
                                                runtime::DeviceModel{}, with_fallback);
  EvalOptions no_fallback;
  no_fallback.fallback_on_miss = false;
  const AppEvaluation ev_nf = evaluate_pipeline(*app, eval, pm,
                                                runtime::DeviceModel{}, no_fallback);
  EXPECT_LT(ev_fb.hit_rate, 0.5);
  // Restart-on-miss makes the surrogate path strictly slower.
  EXPECT_GT(ev_nf.speedup, ev_fb.speedup);
  EXPECT_LT(ev_fb.speedup, 1.05);
}

TEST(Evaluation, BreakdownSumsToOnlineTotal) {
  auto app = apps::make_application("Laghos");
  app->generate_problems(20, 17);
  std::vector<std::size_t> train(15), eval(5);
  std::iota(train.begin(), train.end(), 0);
  std::iota(eval.begin(), eval.end(), 15);
  const nas::PipelineModel pm = oracle_like_model(*app, train, 0.0);
  EvalOptions opts;
  opts.fallback_on_miss = false;
  const AppEvaluation ev =
      evaluate_pipeline(*app, eval, pm, runtime::DeviceModel{}, opts);
  double others = 0.0;
  for (std::size_t p : eval) others += app->other_part_seconds(p);
  // surrogate_seconds ~ online breakdown + other-part time (other-part is
  // re-measured so allow generous slack).
  EXPECT_NEAR(ev.surrogate_seconds, ev.breakdown.total() + others,
              0.5 * ev.surrogate_seconds);
}

TEST(Pipeline, MiniEndToEndOnMg) {
  Config cfg;
  cfg.train_problems = 120;
  cfg.valid_problems = 8;
  cfg.eval_problems = 12;
  cfg.outer_iterations = 1;
  cfg.inner_iterations = 2;
  cfg.num_epoch = 60;
  cfg.retrain_epochs = 120;
  cfg.ae_epochs = 15;
  const AutoHPCnet framework(cfg);
  auto app = apps::make_application("MG");
  const PipelineResult res = framework.run(*app);
  EXPECT_GT(res.search.evaluations(), 0u);
  EXPECT_GT(res.offline.sample_generation_seconds, 0.0);
  EXPECT_GT(res.offline.search_seconds, 0.0);
  EXPECT_EQ(res.eval_problems.size(), 12u);
  EXPECT_GE(res.evaluation.hit_rate, 0.0);
  EXPECT_LE(res.evaluation.hit_rate, 1.0);
}

TEST(Pipeline, AcquireSamplesShapes) {
  Config cfg;
  const AutoHPCnet framework(cfg);
  auto app = apps::make_application("miniQMC");
  app->generate_problems(10, 3);
  std::vector<std::size_t> ids(10);
  std::iota(ids.begin(), ids.end(), 0);
  const nn::Dataset data = framework.acquire_samples(*app, ids);
  EXPECT_EQ(data.size(), 10u);
  EXPECT_EQ(data.in_features(), app->input_dim());
  EXPECT_EQ(data.out_features(), app->output_dim());
}

}  // namespace
}  // namespace ahn::core
