// Tests for src/sparse: format conversions (COO/CSR/CSC round trips), SpMV
// and SpMM against dense references, generators' structural properties, and
// the compressed-vs-dense footprint ratio the paper's §2 motivates.

#include <gtest/gtest.h>

#include "sparse/formats.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"
#include "tensor/ops.hpp"

namespace ahn::sparse {
namespace {

Csr small_example() {
  // [1 0 2]
  // [0 0 3]
  // [4 5 0]
  Coo coo;
  coo.rows = coo.cols = 3;
  coo.push(0, 0, 1.0);
  coo.push(0, 2, 2.0);
  coo.push(1, 2, 3.0);
  coo.push(2, 0, 4.0);
  coo.push(2, 1, 5.0);
  return Csr::from_coo(std::move(coo));
}

TEST(Coo, CoalesceSortsAndSumsDuplicates) {
  Coo coo;
  coo.rows = coo.cols = 2;
  coo.push(1, 1, 1.0);
  coo.push(0, 0, 2.0);
  coo.push(1, 1, 3.0);
  coo.coalesce();
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.row[0], 0u);
  EXPECT_EQ(coo.val[1], 4.0);
}

TEST(Csr, FromCooBasicAccess) {
  const Csr a = small_example();
  EXPECT_EQ(a.nnz(), 5u);
  EXPECT_EQ(a.at(0, 0), 1.0);
  EXPECT_EQ(a.at(0, 1), 0.0);
  EXPECT_EQ(a.at(2, 1), 5.0);
  EXPECT_NEAR(a.density(), 5.0 / 9.0, 1e-12);
}

TEST(Csr, DenseRoundTrip) {
  const Csr a = small_example();
  const Csr b = Csr::from_dense(a.to_dense());
  EXPECT_EQ(b.nnz(), a.nnz());
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(a.at(r, c), b.at(r, c));
  }
}

TEST(Csr, CooRoundTrip) {
  const Csr a = small_example();
  const Csr b = Csr::from_coo(a.to_coo());
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(a.at(r, c), b.at(r, c));
  }
}

TEST(Csr, TransposeMatchesDense) {
  const Csr a = small_example();
  const Csr at = a.transpose();
  const Tensor dt = ops::transpose(a.to_dense());
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(at.at(r, c), dt.at(r, c));
  }
}

TEST(Csc, WrapsTransposedCsr) {
  const Csr a = small_example();
  const Csc c = Csc::from_csr(a);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_EQ(c.nnz(), a.nnz());
  EXPECT_EQ(c.transposed_csr().at(2, 0), 2.0);  // A(0,2) viewed transposed
}

TEST(Csr, DiagonalExtraction) {
  const Csr a = poisson2d(4);
  const auto d = a.diagonal();
  for (double v : d) EXPECT_EQ(v, 4.0);
}

TEST(Csr, CompressedFootprintBeatsDense) {
  Rng rng(1);
  const Csr a = random_spd(64, 5, rng);
  // The paper reports ~14x dense blow-up for NPB CG inputs; ours is of the
  // same order (exact factor depends on nnz/row).
  EXPECT_GT(static_cast<double>(a.dense_bytes()) / static_cast<double>(a.bytes()), 2.5);
}

TEST(Spmv, MatchesDenseMatvec) {
  Rng rng(3);
  const Csr a = random_sparse(12, 9, 0.3, rng);
  std::vector<double> x(9);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const std::vector<double> y = spmv(a, x);
  const Tensor yd = ops::matvec(a.to_dense(), Tensor::vector1d(x));
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], yd[i], 1e-12);
}

TEST(Spmv, TransposeMatchesDense) {
  Rng rng(4);
  const Csr a = random_sparse(7, 11, 0.4, rng);
  std::vector<double> x(7);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y(11);
  spmv_transpose(a, x, y);
  const Tensor yd = ops::matvec(ops::transpose(a.to_dense()), Tensor::vector1d(x));
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], yd[i], 1e-12);
}

TEST(Spmm, MatchesDenseMatmul) {
  Rng rng(5);
  const Csr a = random_sparse(8, 6, 0.35, rng);
  const Tensor b = Tensor::randn({6, 4}, rng);
  const Tensor c = spmm(a, b);
  const Tensor cd = ops::matmul(a.to_dense(), b);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], cd[i], 1e-12);
}

TEST(Csr, SliceRowsPreservesContent) {
  Rng rng(6);
  const Csr a = random_sparse(10, 7, 0.4, rng);
  const Csr mid = a.slice_rows(3, 8);
  EXPECT_EQ(mid.rows(), 5u);
  EXPECT_EQ(mid.cols(), 7u);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 7; ++c) EXPECT_EQ(mid.at(r, c), a.at(r + 3, c));
  }
  // Degenerate and full slices.
  EXPECT_EQ(a.slice_rows(4, 4).rows(), 0u);
  EXPECT_EQ(a.slice_rows(0, 10).nnz(), a.nnz());
  EXPECT_THROW((void)a.slice_rows(5, 3), Error);
}

TEST(Spmv, DimensionChecks) {
  const Csr a = small_example();
  std::vector<double> wrong(2), y(3);
  EXPECT_THROW(spmv(a, wrong, y), Error);
}

class PoissonSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoissonSizes, Poisson2dStructure) {
  const std::size_t n = GetParam();
  const Csr a = poisson2d(n);
  EXPECT_EQ(a.rows(), n * n);
  // Symmetric, diagonally 4, off-diagonals -1.
  for (std::size_t r = 0; r < a.rows(); ++r) EXPECT_EQ(a.at(r, r), 4.0);
  const Csr at = a.transpose();
  for (std::size_t r = 0; r < a.rows(); r += 3) {
    for (std::size_t c = 0; c < a.cols(); c += 7) {
      EXPECT_EQ(a.at(r, c), at.at(r, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sparse, PoissonSizes, ::testing::Values(2, 4, 8, 16));

TEST(Generators, Poisson3dStencilCounts) {
  const Csr a = poisson3d(3);
  EXPECT_EQ(a.rows(), 27u);
  // Interior node has 7 entries, corner has 4.
  EXPECT_EQ(a.at(13, 13), 6.0);  // center of 3x3x3
}

class SpdSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpdSizes, RandomSpdIsSymmetricDiagonallyDominant) {
  Rng rng(GetParam());
  const Csr a = random_spd(GetParam() * 8, 4, rng);
  const Csr at = a.transpose();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double offdiag = 0.0;
    for (std::size_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      const std::size_t c = a.col_idx()[k];
      EXPECT_NEAR(a.values()[k], at.at(r, c), 1e-12);
      if (c != r) offdiag += std::abs(a.values()[k]);
    }
    EXPECT_GT(a.at(r, r), offdiag);  // strict diagonal dominance
  }
}

INSTANTIATE_TEST_SUITE_P(Sparse, SpdSizes, ::testing::Values(1, 2, 4, 8));

TEST(Generators, TridiagonalMassIsSymmetricTridiagonal) {
  Rng rng(9);
  const Csr m = tridiagonal_mass(16, rng);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      if (std::max(r, c) - std::min(r, c) > 1) {
        EXPECT_EQ(m.at(r, c), 0.0);
      }
    }
  }
}

TEST(Generators, RandomRhsInRange) {
  Rng rng(10);
  const auto b = random_rhs(100, rng);
  for (double v : b) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Generators, RandomSparseHitsTargetDensity) {
  Rng rng(11);
  const Csr a = random_sparse(50, 50, 0.1, rng);
  EXPECT_NEAR(a.density(), 0.1, 0.03);  // duplicates coalesce, slight dip
}

}  // namespace
}  // namespace ahn::sparse
