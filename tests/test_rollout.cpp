// Tests for the self-healing serving loop (docs/RETRAINING.md): the
// versioned ModelRegistry (monotone ids, atomic promote/rollback,
// retention), the shadow/canary RolloutController state machine, the
// Orchestrator's live-traffic rollout path (shadow isolation, QoI-regression
// auto-rollback, promote/rollback races), the coordinated cluster rollout
// fan-out, and the Retrainer's Turaco-weighted reservoir + closed
// drift-to-promotion loop.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/topology.hpp"
#include "runtime/cluster.hpp"
#include "runtime/deployment.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/orchestrator.hpp"
#include "runtime/retrainer.hpp"
#include "runtime/rollout.hpp"

namespace ahn::runtime {
namespace {

constexpr std::size_t kFeatures = 4;

/// A servable with a deterministic tiny network; `seed` varies the weights
/// so two rigs produce bitwise-different outputs.
std::shared_ptr<ServableModel> rig_model(std::uint64_t seed = 1) {
  Rng rng(seed);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::Network net = nn::build_surrogate(spec, kFeatures, 2, rng);
  auto m = std::make_shared<ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  return m;
}

Tensor request_row(double base = 0.1) {
  return Tensor({1, kFeatures}, {base, base + 0.1, base + 0.2, base + 0.3});
}

OrchestratorOptions inline_opts() {
  OrchestratorOptions opts;
  opts.max_batch = 1;              // submits execute inline on the caller
  opts.batch_delay_seconds = 0.0;  // no flusher thread
  return opts;
}

// ----------------------------------------------------------- ModelRegistry

TEST(Registry, PublishMintsMonotoneIdsAndPromoteActivates) {
  ModelRegistry reg;
  EXPECT_EQ(reg.active_id("m"), 0u);
  const std::uint64_t v1 = reg.publish("m", rig_model(1), nullptr, "deploy");
  const std::uint64_t v2 = reg.publish("m", rig_model(2), nullptr, "retrain");
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(v2, 2u);
  // Publishing does not serve; promotion does.
  EXPECT_EQ(reg.active_id("m"), 0u);
  EXPECT_EQ(reg.active_model("m"), nullptr);
  ASSERT_TRUE(reg.promote("m", v1));
  EXPECT_EQ(reg.active_id("m"), v1);
  EXPECT_NE(reg.active_model("m"), nullptr);
  EXPECT_EQ(reg.active("m")->origin, "deploy");
  // Unknown ids / names refuse without side effects.
  EXPECT_FALSE(reg.promote("m", 99));
  EXPECT_FALSE(reg.promote("ghost", v1));
  EXPECT_EQ(reg.active_id("m"), v1);
}

TEST(Registry, ExplicitIdsAdoptedAndMintingStaysAbove) {
  ModelRegistry reg;
  const std::uint64_t adopted =
      reg.publish("m", rig_model(1), nullptr, "replicated", 7);
  EXPECT_EQ(adopted, 7u);
  EXPECT_EQ(reg.publish("m", rig_model(2), nullptr, "retrain"), 8u);
  // Out-of-order replay (revive) keeps the versions vector ascending.
  reg.publish("m", rig_model(3), nullptr, "replicated", 3);
  const std::vector<ModelVersion> vs = reg.versions("m");
  ASSERT_EQ(vs.size(), 3u);
  EXPECT_EQ(vs[0].id, 3u);
  EXPECT_EQ(vs[1].id, 7u);
  EXPECT_EQ(vs[2].id, 8u);
  // A duplicate explicit id is a caller bug, not a silent overwrite.
  EXPECT_THROW(reg.publish("m", rig_model(4), nullptr, "replicated", 7), Error);
}

TEST(Registry, RollbackSwapsActiveAndPrior) {
  ModelRegistry reg;
  const std::uint64_t v1 = reg.publish("m", rig_model(1), nullptr, "deploy");
  const std::uint64_t v2 = reg.publish("m", rig_model(2), nullptr, "retrain");
  EXPECT_FALSE(reg.rollback("m").has_value());  // nothing promoted yet
  reg.promote("m", v1);
  EXPECT_FALSE(reg.rollback("m").has_value());  // no prior yet
  reg.promote("m", v2);
  const std::optional<ModelVersion> restored = reg.rollback("m");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->id, v1);
  EXPECT_EQ(reg.active_id("m"), v1);
  // Roll forward again: rollback is a swap, so it undoes itself.
  ASSERT_TRUE(reg.rollback("m").has_value());
  EXPECT_EQ(reg.active_id("m"), v2);
}

TEST(Registry, RetentionEvictsOldestButNeverActiveOrPrior) {
  RegistryOptions opts;
  opts.retain = 2;
  ModelRegistry reg(opts);
  const std::uint64_t v1 = reg.publish("m", rig_model(1), nullptr, "deploy");
  reg.promote("m", v1);
  const std::uint64_t v2 = reg.publish("m", rig_model(2), nullptr, "retrain");
  reg.promote("m", v2);  // active=2, prior=1
  // v3 exceeds retention, but v1 (prior) and v2 (active) are protected —
  // the newcomer itself is the only evictable version and is kept.
  const std::uint64_t v3 = reg.publish("m", rig_model(3), nullptr, "retrain");
  std::optional<RegistryEntrySnapshot> snap = reg.snapshot("m");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->active, v2);
  EXPECT_EQ(snap->prior, v1);
  EXPECT_EQ(snap->retained, (std::vector<std::uint64_t>{v1, v2, v3}));
  // Promoting v3 frees v1: active=3, prior=2 — the next publish evicts v1.
  reg.promote("m", v3);
  reg.publish("m", rig_model(4), nullptr, "retrain");
  snap = reg.snapshot("m");
  EXPECT_EQ(snap->retained, (std::vector<std::uint64_t>{v2, v3, 4u}));
  EXPECT_FALSE(reg.version("m", v1).has_value());
}

// ------------------------------------------------------- RolloutController

RolloutOptions tiny_rollout() {
  RolloutOptions o;
  o.shadow_rows = 4;
  o.shadow_margin = 0.0;
  o.canary_rows = 4;
  o.canary_min_samples = 2;
  o.canary_fraction = 1.0;
  o.canary_max_miss = 0.25;
  o.stage_timeout_seconds = 60.0;
  return o;
}

TEST(RolloutController, ShadowPassAdvancesToCanary) {
  RolloutController ctl("m", 2, tiny_rollout());
  EXPECT_EQ(ctl.state(), RolloutState::kShadow);
  EXPECT_FALSE(ctl.admit_canary());  // not in canary yet
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ctl.record_shadow(true, true), RolloutState::kShadow);
  }
  EXPECT_EQ(ctl.record_shadow(true, true), RolloutState::kCanary);
  const RolloutSnapshot s = ctl.snapshot();
  EXPECT_EQ(s.shadow_rows, 4u);
  EXPECT_EQ(s.shadow_candidate_miss, 0u);
}

TEST(RolloutController, ShadowQoIRegressionFails) {
  RolloutController ctl("m", 2, tiny_rollout());
  ctl.record_shadow(true, true);
  ctl.record_shadow(true, false);  // candidate misses where active passes
  ctl.record_shadow(true, true);
  EXPECT_EQ(ctl.record_shadow(true, true), RolloutState::kFailed);
  EXPECT_NE(ctl.snapshot().reason.find("shadow QoI regression"),
            std::string::npos);
}

TEST(RolloutController, CanaryPassesThenFailsOnMissRate) {
  RolloutController pass("m", 2, tiny_rollout());
  for (int i = 0; i < 4; ++i) pass.record_shadow(true, true);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pass.admit_canary());
    EXPECT_EQ(pass.record_canary(true), RolloutState::kCanary);
  }
  ASSERT_TRUE(pass.admit_canary());
  EXPECT_EQ(pass.record_canary(true), RolloutState::kPassed);

  RolloutController fail("m", 2, tiny_rollout());
  for (int i = 0; i < 4; ++i) fail.record_shadow(true, true);
  fail.record_canary(false);                  // below min_samples: no verdict
  EXPECT_EQ(fail.state(), RolloutState::kCanary);
  EXPECT_EQ(fail.record_canary(false), RolloutState::kFailed);
  EXPECT_NE(fail.snapshot().reason.find("canary QoI miss rate"),
            std::string::npos);
}

TEST(RolloutController, CanaryAdmissionHonorsFraction) {
  RolloutOptions o = tiny_rollout();
  o.canary_fraction = 0.25;
  RolloutController ctl("m", 2, o);
  for (int i = 0; i < 4; ++i) ctl.record_shadow(true, true);
  std::size_t admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (ctl.admit_canary()) ++admitted;
  }
  EXPECT_EQ(admitted, 25u);  // deterministic stride, exact at 1/4
}

TEST(RolloutController, StageTimeoutFailsViaPoll) {
  double now = 0.0;
  RolloutOptions o = tiny_rollout();
  o.stage_timeout_seconds = 10.0;
  o.clock = [&now] { return now; };
  RolloutController ctl("m", 2, o);
  now = 9.0;
  EXPECT_EQ(ctl.poll(), RolloutState::kShadow);
  now = 10.5;
  EXPECT_EQ(ctl.poll(), RolloutState::kFailed);
  EXPECT_NE(ctl.snapshot().reason.find("stage exceeded"), std::string::npos);
}

TEST(RolloutController, BreakerTripFailsMidStage) {
  RolloutController ctl("m", 2, tiny_rollout());
  ctl.record_shadow(true, true);
  ctl.note_breaker_trip();
  EXPECT_EQ(ctl.state(), RolloutState::kFailed);
  EXPECT_NE(ctl.snapshot().reason.find("breaker"), std::string::npos);
  // Terminal marks are idempotent against prior decisions.
  ctl.mark_rolled_back("verdict");
  EXPECT_EQ(ctl.state(), RolloutState::kRolledBack);
  ctl.mark_promoted();
  EXPECT_EQ(ctl.state(), RolloutState::kRolledBack);
}

// --------------------------------------------------- reservoir + weighting

TEST(Retraining, ComplexityWeightScoresDriftedRows) {
  obs::FeatureSketch ref(2);
  Rng rng(5);
  std::vector<double> row(2);
  for (int i = 0; i < 512; ++i) {
    row[0] = rng.uniform(-1.0, 1.0);
    row[1] = rng.uniform(9.0, 11.0);
    ref.observe(row);
  }
  // An in-distribution row scores near zero; a +5σ feature dominates.
  const std::vector<double> typical{0.0, 10.0};
  const std::vector<double> drifted{0.0, 10.0 + 5.0 * ref.stddev(1)};
  EXPECT_LT(complexity_weight(ref, typical), 0.5);
  EXPECT_NEAR(complexity_weight(ref, drifted), 5.0, 0.5);
  // NaN features are skipped, not propagated.
  const std::vector<double> with_nan{std::nan(""), 10.0};
  EXPECT_TRUE(std::isfinite(complexity_weight(ref, with_nan)));
}

TEST(Retraining, ReservoirKeepsHighestWeightRows) {
  RetrainReservoir res(3);
  const auto offer = [&](double v, double w) {
    const std::vector<double> row{v};
    res.offer(row, w);
  };
  offer(1.0, 1.0);
  offer(2.0, 2.0);
  offer(3.0, 3.0);
  offer(4.0, 0.5);  // lighter than the current minimum: dropped
  EXPECT_EQ(res.size(), 3u);
  offer(5.0, 9.0);  // heavier: replaces the min-weight row (1.0)
  const std::vector<ReservoirRow> rows = res.snapshot();
  double min_w = 1e300, max_w = 0.0;
  for (const ReservoirRow& r : rows) {
    min_w = std::min(min_w, r.weight);
    max_w = std::max(max_w, r.weight);
  }
  EXPECT_EQ(min_w, 2.0);
  EXPECT_EQ(max_w, 9.0);
  EXPECT_EQ(res.offered(), 5u);
  res.clear();
  EXPECT_EQ(res.size(), 0u);
}

// ------------------------------------------- Orchestrator rollout serving

TEST(Serving, ShadowLeavesResponsesBitwiseUnchanged) {
  Orchestrator orc(DeviceModel{}, inline_opts());
  const std::shared_ptr<ServableModel> active = rig_model(1);
  const std::shared_ptr<ServableModel> cand = rig_model(2);
  orc.set_model("m", active);
  const std::uint64_t v2 = orc.install_candidate("m", cand, nullptr, "test");

  RolloutOptions ro = tiny_rollout();
  ro.shadow_rows = 64;  // stay in shadow for the whole test
  ASSERT_TRUE(orc.begin_rollout("m", v2, ro).is_ok());

  for (int i = 0; i < 16; ++i) {
    const Tensor row = request_row(0.01 * i);
    const Tensor expected = active->surrogate.predict(row);
    const Tensor shadowed_candidate = cand->surrogate.predict(row);
    Result<Tensor> r = orc.run_model_batched("m", row).get();
    ASSERT_TRUE(r.is_ok());
    const Tensor& got = r.value();
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got.flat()[k], expected.flat()[k]) << "row " << i;
    }
    // Sanity: the two versions do disagree, so the check is meaningful.
    EXPECT_NE(got.flat()[0], shadowed_candidate.flat()[0]);
  }
  const std::optional<RolloutSnapshot> snap = orc.rollout_progress("m");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, RolloutState::kShadow);
  EXPECT_EQ(snap->shadow_rows, 16u);
  EXPECT_EQ(orc.registry().active_id("m"), 1u);
}

TEST(Serving, BadCandidateAutoRollsBackAndAlerts) {
  Orchestrator orc(DeviceModel{}, inline_opts());
  orc.set_model("m", rig_model(1));
  auto bad = rig_model(2);
  bad->qoi_check = [](const Tensor&, const Tensor&) { return false; };
  const std::uint64_t v2 = orc.install_candidate("m", bad, nullptr, "test");
  ASSERT_TRUE(orc.begin_rollout("m", v2, tiny_rollout()).is_ok());

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(orc.run_model_batched("m", request_row()).get().is_ok());
  }
  const std::optional<RolloutSnapshot> snap = orc.rollout_progress("m");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, RolloutState::kRolledBack);
  EXPECT_EQ(snap->shadow_candidate_miss, 4u);
  EXPECT_EQ(orc.registry().active_id("m"), 1u);
  EXPECT_EQ(orc.alerts().raised(obs::AlertKind::kRolloutRolledBack), 1u);
  // The candidate is discarded but retained — a post-mortem can inspect it.
  EXPECT_TRUE(orc.registry().version("m", v2).has_value());
}

TEST(Serving, GoodCandidatePromotesThroughCanary) {
  Orchestrator orc(DeviceModel{}, inline_opts());
  orc.set_model("m", rig_model(1));
  const std::uint64_t v2 = orc.install_candidate("m", rig_model(2), nullptr, "test");
  ASSERT_TRUE(orc.begin_rollout("m", v2, tiny_rollout()).is_ok());
  // A duplicate rollout for the same model is refused while one is live.
  EXPECT_FALSE(orc.begin_rollout("m", v2, tiny_rollout()).is_ok());

  for (int i = 0; i < 8; ++i) {  // 4 shadow + 4 canary rows
    ASSERT_TRUE(orc.run_model_batched("m", request_row()).get().is_ok());
  }
  const std::optional<RolloutSnapshot> snap = orc.rollout_progress("m");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, RolloutState::kPromoted);
  EXPECT_EQ(snap->canary_rows, 4u);
  EXPECT_EQ(orc.registry().active_id("m"), v2);
  EXPECT_EQ(orc.alerts().raised(obs::AlertKind::kRolloutRolledBack), 0u);
}

TEST(Serving, BeginRolloutValidatesVersions) {
  Orchestrator orc(DeviceModel{}, inline_opts());
  EXPECT_EQ(orc.begin_rollout("m", 1, tiny_rollout()).code(),
            StatusCode::kNotFound);
  orc.set_model("m", rig_model(1));
  EXPECT_EQ(orc.begin_rollout("m", 1, tiny_rollout()).code(),
            StatusCode::kInvalidArgument);  // candidate == active
  EXPECT_EQ(orc.begin_rollout("m", 9, tiny_rollout()).code(),
            StatusCode::kNotFound);
}

TEST(Serving, PromoteRebaselinesDriftForSecondEpisode) {
  // Regression test for the dangling re-arm: after a promote, the monitor
  // must re-baseline so a *second* drift episode alerts again.
  OrchestratorOptions opts = inline_opts();
  opts.monitor.sample_every = 1;
  opts.monitor.drift_check_every = 1;
  opts.monitor.drift.min_samples = 16;
  opts.monitor.drift_threshold = 2.0;
  Orchestrator orc(DeviceModel{}, opts);

  Rng rng(7);
  Tensor train({128, kFeatures});
  for (double& v : train.flat()) v = rng.uniform(-1.0, 1.0);
  orc.deploy(DeploymentPackage::build("m", rig_model(1), train));

  const auto serve_drifted = [&] {
    for (int i = 0; i < 32; ++i) {
      Tensor row({1, kFeatures});
      for (double& v : row.flat()) v = rng.uniform(4.0, 5.0);
      ASSERT_TRUE(orc.run_model_batched("m", std::move(row)).get().is_ok());
    }
  };
  serve_drifted();
  EXPECT_EQ(orc.alerts().raised(obs::AlertKind::kDriftDetected), 1u);
  EXPECT_TRUE(orc.model_health("m").retrain_recommended);

  // "Recover" by promoting a fresh version (no new sketch: rebaseline path).
  const std::uint64_t v2 = orc.install_candidate("m", rig_model(2), nullptr, "fix");
  ASSERT_TRUE(orc.promote("m", v2));
  EXPECT_FALSE(orc.model_health("m").retrain_recommended);
  EXPECT_EQ(orc.model_health("m").drift_score, 0.0);

  // The same drifted traffic must alert again — the edge-trigger re-armed.
  serve_drifted();
  EXPECT_EQ(orc.alerts().raised(obs::AlertKind::kDriftDetected), 2u);
}

TEST(Serving, PromoteRollbackRaceWithConcurrentBatchedServing) {
  Orchestrator orc(DeviceModel{}, inline_opts());
  orc.set_model("m", rig_model(1));
  const std::uint64_t v2 = orc.install_candidate("m", rig_model(2), nullptr, "b");
  ASSERT_TRUE(orc.promote("m", v2));  // active=2, prior=1

  // Version flips race a fixed amount of serving: every request must still
  // resolve OK against whichever version is active when its batch executes.
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(orc.rollback("m").has_value());  // flips 1 <-> 2
    }
  });
  constexpr int kRowsPerClient = 200;
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRowsPerClient; ++i) {
        if (orc.run_model_batched("m", request_row()).get().is_ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  EXPECT_EQ(served.load(), 3u * kRowsPerClient);
  const std::uint64_t active = orc.registry().active_id("m");
  EXPECT_TRUE(active == 1u || active == 2u);
}

// --------------------------------------------------- cluster coordination

ClusterOptions small_cluster(std::size_t shards) {
  ClusterOptions opts;
  opts.shards = shards;
  opts.replication = 2;
  opts.shard_opts = inline_opts();
  return opts;
}

TEST(ClusterRollout, VersionedFanOutSharesIds) {
  ClusterOrchestrator cluster(small_cluster(3));
  cluster.set_model("m", rig_model(1));
  const std::uint64_t v2 =
      cluster.install_candidate("m", rig_model(2), nullptr, "retrain");
  EXPECT_EQ(v2, 2u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(cluster.shard(s).registry().active_id("m"), 1u);
    EXPECT_TRUE(cluster.shard(s).registry().version("m", v2).has_value());
  }
  ASSERT_TRUE(cluster.promote("m", v2));
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(cluster.shard(s).registry().active_id("m"), v2);
  }
  const std::optional<std::uint64_t> restored = cluster.rollback("m");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, 1u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(cluster.shard(s).registry().active_id("m"), 1u);
  }
  EXPECT_EQ(cluster.registry_version(), 4u);  // set_model + install + 2 flips
}

TEST(ClusterRollout, CoordinatedPromotionAcrossShards) {
  ClusterOrchestrator cluster(small_cluster(2));
  cluster.set_model("m", rig_model(1));
  const std::uint64_t v2 =
      cluster.install_candidate("m", rig_model(2), nullptr, "retrain");
  RolloutOptions ro = tiny_rollout();
  ro.canary_min_samples = 1;
  ASSERT_TRUE(cluster.begin_rollout("m", v2, ro).is_ok());

  // Round-robin serving spreads rows over both shards; every alive shard
  // must individually reach PASSED before the coordinator promotes.
  std::size_t lost = 0;
  for (int i = 0; i < 200; ++i) {
    if (!cluster.run_model_batched("m", request_row()).get().is_ok()) ++lost;
    const std::optional<RolloutSnapshot> snap = cluster.rollout_progress("m");
    ASSERT_TRUE(snap.has_value());
    if (snap->state == RolloutState::kPromoted) break;
    ASSERT_NE(snap->state, RolloutState::kRolledBack) << snap->reason;
  }
  EXPECT_EQ(lost, 0u);
  const std::optional<RolloutSnapshot> fin = cluster.rollout_progress("m");
  ASSERT_TRUE(fin.has_value());
  EXPECT_EQ(fin->state, RolloutState::kPromoted);
  EXPECT_EQ(cluster.registry().active_id("m"), v2);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(cluster.shard(s).registry().active_id("m"), v2);
  }
}

TEST(ClusterRollout, AnyShardFailureRollsBackEverywhere) {
  ClusterOrchestrator cluster(small_cluster(2));
  cluster.set_model("m", rig_model(1));
  auto bad = rig_model(2);
  bad->qoi_check = [](const Tensor&, const Tensor&) { return false; };
  const std::uint64_t v2 = cluster.install_candidate("m", bad, nullptr, "retrain");
  ASSERT_TRUE(cluster.begin_rollout("m", v2, tiny_rollout()).is_ok());

  std::optional<RolloutSnapshot> snap;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.run_model_batched("m", request_row()).get().is_ok());
    snap = cluster.rollout_progress("m");
    ASSERT_TRUE(snap.has_value());
    if (snap->state == RolloutState::kRolledBack) break;
  }
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, RolloutState::kRolledBack);
  EXPECT_NE(snap->reason.find("shard"), std::string::npos);
  EXPECT_EQ(cluster.registry().active_id("m"), 1u);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(cluster.shard(s).registry().active_id("m"), 1u);
  }
  // Every shard's rollback alert forwards into the cluster-merged sink.
  EXPECT_GE(cluster.alert_sink().raised(obs::AlertKind::kRolloutRolledBack), 1u);
}

TEST(ClusterRollout, SurvivesMidRolloutShardFailAndRevive) {
  ClusterOrchestrator cluster(small_cluster(3));
  cluster.set_model("m", rig_model(1));
  const std::uint64_t v2 =
      cluster.install_candidate("m", rig_model(2), nullptr, "retrain");
  RolloutOptions ro = tiny_rollout();
  ro.canary_min_samples = 1;
  ASSERT_TRUE(cluster.begin_rollout("m", v2, ro).is_ok());

  cluster.fail_shard(0);
  cluster.revive_shard(0);
  // The revived shard reconciled the full versioned registry and resumed
  // the in-flight rollout from scratch.
  EXPECT_EQ(cluster.shard(0).registry().active_id("m"), 1u);
  EXPECT_TRUE(cluster.shard(0).registry().version("m", v2).has_value());
  const std::optional<RolloutSnapshot> resumed = cluster.shard(0).rollout_progress("m");
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(resumed->state, RolloutState::kShadow);

  std::size_t lost = 0;
  std::optional<RolloutSnapshot> snap;
  for (int i = 0; i < 400; ++i) {
    if (!cluster.run_model_batched("m", request_row()).get().is_ok()) ++lost;
    snap = cluster.rollout_progress("m");
    ASSERT_TRUE(snap.has_value());
    if (snap->state == RolloutState::kPromoted) break;
    ASSERT_NE(snap->state, RolloutState::kRolledBack) << snap->reason;
  }
  EXPECT_EQ(lost, 0u);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, RolloutState::kPromoted);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(cluster.shard(s).registry().active_id("m"), v2)
        << "shard " << s;
  }
}

// ------------------------------------------------------- closed retrain loop

TEST(Retraining, DriftAlertDrivesRetrainToPromotion) {
  // The full single-node loop: drifted traffic -> drift alert -> Retrainer
  // labels its reservoir with the original code, fine-tunes, shadows,
  // canaries, and promotes — ending with the monitor re-baselined.
  OrchestratorOptions opts = inline_opts();
  opts.monitor.sample_every = 1;
  opts.monitor.drift_check_every = 1;
  opts.monitor.drift.min_samples = 16;
  // 3.0, not the default 2.0: the promoted version's reference sketch is
  // built from <= 64 reservoir rows, whose coarse deciles leave ~2.0 of PSI
  // noise against identically-distributed traffic. Real drift scores ~10.
  opts.monitor.drift_threshold = 3.0;
  Orchestrator orc(DeviceModel{}, opts);

  // Teacher: y = (sum(x), sum(x)/2). The initial surrogate never trained on
  // anything, so the QoI contract is left open (accept finite) — the loop
  // under test is trigger -> retrain -> rollout, not model quality.
  auto model = rig_model(1);
  model->fallback = [](const Tensor& row_in) {
    const double s =
        std::accumulate(row_in.flat().begin(), row_in.flat().end(), 0.0);
    return Tensor({1, 2}, {s, 0.5 * s});
  };
  Rng rng(11);
  Tensor train({128, kFeatures});
  for (double& v : train.flat()) v = rng.uniform(-1.0, 1.0);
  orc.deploy(DeploymentPackage::build("m", model, train));

  RetrainerOptions ro;
  ro.sample_every = 1;
  ro.reservoir_capacity = 64;
  // Strictly below the drift detector's min_samples (16): the edge-triggered
  // alert fires exactly once, so the one cycle it queues must find enough
  // reservoir rows even if it races the last sample-hook offers.
  ro.min_retrain_rows = 8;
  ro.train.epochs = 8;
  ro.train.batch_size = 8;
  ro.train.patience = 8;
  ro.rollout = tiny_rollout();
  ro.rollout.canary_min_samples = 1;
  Retrainer retrainer(orc, ro);

  // Drifted traffic (+4..5 vs the [-1,1] training range) until the cycle
  // completes: the drift alert fires once 16 sampled rows accumulate, the
  // worker trains on the reservoir, and the rollout consumes live rows.
  // Stop serving on the registry flip (promotion runs inline on this
  // thread via auto_finalize), NOT on the worker's cycles_promoted: the
  // worker notices the terminal state on its next poll, and rows served in
  // that gap would accumulate against the freshly re-baselined (and, at
  // 8 reservoir rows, very coarse) reference sketch until its min_samples
  // fill and PSI noise re-raises the drift alert.
  std::size_t lost = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (orc.registry().active_id("m") == 1 &&
         std::chrono::steady_clock::now() < deadline) {
    Tensor row({1, kFeatures});
    for (double& v : row.flat()) v = rng.uniform(4.0, 5.0);
    if (!orc.run_model_batched("m", std::move(row)).get().is_ok()) ++lost;
  }
  while (retrainer.stats().cycles_promoted == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const RetrainerStats stats = retrainer.stats();
  EXPECT_EQ(lost, 0u);
  EXPECT_GE(stats.alerts_seen, 1u);
  EXPECT_GE(stats.cycles_started, 1u);
  ASSERT_EQ(stats.cycles_promoted, 1u) << "rolled back " << stats.cycles_rolled_back
                                       << ", skipped " << stats.cycles_skipped;
  EXPECT_EQ(orc.registry().active_id("m"), 2u);
  EXPECT_EQ(orc.registry().active("m")->origin, "retrain");
  // Promotion installed the reservoir sketch and cleared the retrain flag.
  EXPECT_FALSE(orc.model_health("m").retrain_recommended);
  // The promoted cycle flushed its reservoir for the next episode (a few
  // rows served between the worker's promote and this check may re-enter).
  EXPECT_LE(retrainer.reservoir_size("m"), 8u);
  retrainer.stop();
}

// Alert storms must collapse into the cycle already running: a duplicate
// trigger for a model that is queued or mid-cycle is counted, not stacked.
TEST(Retraining, AlertStormCoalescesQueuedDuplicates) {
  Orchestrator orc(DeviceModel{}, inline_opts());
  orc.set_model("m", rig_model(1));
  Retrainer retrainer(orc, RetrainerOptions{});
  retrainer.stop();  // freeze the worker: queued entries stay queued

  retrainer.request_retrain("m");   // enqueues
  retrainer.request_retrain("m");   // duplicate -> coalesced
  retrainer.request_retrain("m");   // duplicate -> coalesced
  retrainer.request_retrain("m2");  // different model -> enqueues

  const RetrainerStats stats = retrainer.stats();
  EXPECT_EQ(stats.cycles_coalesced, 2u);
  EXPECT_EQ(stats.cycles_started, 0u);
  // The dedupes are also visible on the host's registry for operators.
  EXPECT_EQ(orc.stats().metrics().counter("serving.retrain.coalesced").value(), 2u);
}

// A rollout in flight (whoever started it) means a candidate is already
// being judged: a new trigger for that model coalesces instead of queueing a
// second cycle behind it — rollout_in_flight is the side-effect-free probe.
TEST(Retraining, TriggerDuringLiveRolloutCoalesces) {
  Orchestrator orc(DeviceModel{}, inline_opts());
  orc.set_model("m", rig_model(1));
  const std::uint64_t v2 = orc.install_candidate("m", rig_model(2), nullptr, "test");
  RolloutOptions ro = tiny_rollout();
  ro.shadow_rows = 64;  // stays in shadow for the whole test
  ASSERT_TRUE(orc.begin_rollout("m", v2, ro).is_ok());
  ASSERT_TRUE(orc.rollout_in_flight("m"));
  EXPECT_FALSE(orc.rollout_in_flight("other"));

  Retrainer retrainer(orc, RetrainerOptions{});
  retrainer.request_retrain("m");
  retrainer.stop();
  const RetrainerStats stats = retrainer.stats();
  EXPECT_EQ(stats.cycles_coalesced, 1u);
  EXPECT_EQ(stats.cycles_started, 0u);
  // The probe left the rollout untouched (no deadline poll side effects).
  ASSERT_TRUE(orc.rollout_in_flight("m"));
}

TEST(Retraining, CycleSkipsWithoutFallbackOrRows) {
  Orchestrator orc(DeviceModel{}, inline_opts());
  orc.set_model("m", rig_model(1));  // no fallback: nothing can label rows
  RetrainerOptions ro;
  ro.min_retrain_rows = 4;
  Retrainer retrainer(orc, ro);
  retrainer.request_retrain("m");
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (retrainer.stats().cycles_skipped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const RetrainerStats stats = retrainer.stats();
  EXPECT_EQ(stats.cycles_started, 1u);
  EXPECT_EQ(stats.cycles_skipped, 1u);
  EXPECT_EQ(stats.cycles_promoted, 0u);
  EXPECT_EQ(orc.registry().active_id("m"), 1u);
}

}  // namespace
}  // namespace ahn::runtime
