// Tests for src/apps solvers: CG/PCG convergence on SPD systems, the
// Jacobi and AMG preconditioners, geometric multigrid, and the FFT kernel
// against a naive DFT oracle (property-style over sizes).

#include <gtest/gtest.h>

#include <cmath>

#include "apps/fft.hpp"
#include "apps/solvers.hpp"
#include "sparse/generators.hpp"
#include "sparse/spmv.hpp"

namespace ahn::apps {
namespace {

double residual_norm(const sparse::Csr& a, std::span<const double> b,
                     std::span<const double> x) {
  std::vector<double> ax(a.rows());
  sparse::spmv(a, x, ax);
  double s = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const double d = b[i] - ax[i];
    s += d * d;
  }
  return std::sqrt(s);
}

class CgDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CgDims, ConvergesOnRandomSpd) {
  Rng rng(GetParam());
  const sparse::Csr a = sparse::random_spd(GetParam() * 16, 4, rng);
  const std::vector<double> b = sparse::random_rhs(a.rows(), rng);
  std::vector<double> x(a.rows(), 0.0);
  const SolveStats stats = conjugate_gradient(a, b, x, 1e-10, 4 * a.rows());
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(residual_norm(a, b, x), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Solvers, CgDims, ::testing::Values(1, 2, 4, 8));

TEST(Cg, ZeroRhsYieldsZeroSolution) {
  Rng rng(1);
  const sparse::Csr a = sparse::random_spd(16, 3, rng);
  const std::vector<double> b(16, 0.0);
  std::vector<double> x(16, 0.0);
  const SolveStats stats = conjugate_gradient(a, b, x);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(Pcg, JacobiPreconditionerAcceleratesIllScaled) {
  // Badly scaled diagonal: plain CG needs many iterations, Jacobi fixes it.
  sparse::Coo coo;
  coo.rows = coo.cols = 32;
  Rng rng(3);
  for (std::size_t i = 0; i < 32; ++i) {
    coo.push(i, i, std::pow(10.0, rng.uniform(0.0, 4.0)));
  }
  const sparse::Csr a = sparse::Csr::from_coo(std::move(coo));
  const std::vector<double> b = sparse::random_rhs(32, rng);

  std::vector<double> x0(32, 0.0), x1(32, 0.0);
  const SolveStats plain = conjugate_gradient(a, b, x0, 1e-12, 500);
  const SolveStats jac =
      preconditioned_cg(a, b, x1, jacobi_preconditioner(a), 1e-12, 500);
  EXPECT_TRUE(jac.converged);
  EXPECT_LE(jac.iterations, plain.iterations);
  EXPECT_LE(jac.iterations, 3u);  // diagonal system: 1-2 iterations
}

TEST(Pcg, RejectsNonSpd) {
  sparse::Coo coo;
  coo.rows = coo.cols = 2;
  coo.push(0, 0, -1.0);
  coo.push(1, 1, -1.0);
  const sparse::Csr a = sparse::Csr::from_coo(std::move(coo));
  const std::vector<double> b{1.0, 1.0};
  std::vector<double> x(2, 0.0);
  EXPECT_THROW((void)conjugate_gradient(a, b, x), Error);
}

class MgGrids : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MgGrids, VcycleSolvesPoisson) {
  const GeometricMultigrid mg(GetParam());
  Rng rng(7);
  const std::vector<double> b = sparse::random_rhs(mg.dim(), rng);
  std::vector<double> x(mg.dim(), 0.0);
  const SolveStats stats = mg.solve(b, x, 1e-9, 60);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(residual_norm(mg.matrix(), b, x) / mg.dim(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Solvers, MgGrids, ::testing::Values(8, 16, 32));

TEST(Mg, ConvergesInFewCycles) {
  const GeometricMultigrid mg(16);
  Rng rng(9);
  const std::vector<double> b = sparse::random_rhs(mg.dim(), rng);
  std::vector<double> x(mg.dim(), 0.0);
  const SolveStats stats = mg.solve(b, x, 1e-8, 60);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.iterations, 30u);  // multigrid efficiency
}

TEST(Amg, PreconditionerBeatsPlainCgOnPoisson) {
  const sparse::Csr a = sparse::poisson2d(16);
  Rng rng(11);
  const std::vector<double> b = sparse::random_rhs(a.rows(), rng);

  std::vector<double> x0(a.rows(), 0.0), x1(a.rows(), 0.0);
  const SolveStats plain = conjugate_gradient(a, b, x0, 1e-10, 2000);
  const AlgebraicMultigrid amg(a);
  const SolveStats pre =
      preconditioned_cg(a, b, x1, amg.as_preconditioner(), 1e-10, 2000);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(Amg, BuildsMultipleLevels) {
  const sparse::Csr a = sparse::poisson2d(16);
  const AlgebraicMultigrid amg(a, 4, 8);
  EXPECT_GE(amg.levels(), 2u);
}

TEST(Amg, ApplyIsDeterministic) {
  const sparse::Csr a = sparse::poisson2d(8);
  const AlgebraicMultigrid amg(a);
  Rng rng(13);
  const std::vector<double> r = sparse::random_rhs(a.rows(), rng);
  std::vector<double> z1(a.rows()), z2(a.rows());
  amg.apply(r, z1);
  amg.apply(r, z2);
  for (std::size_t i = 0; i < z1.size(); ++i) EXPECT_EQ(z1[i], z2[i]);
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<Complex> data(n);
  for (auto& c : data) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const std::vector<Complex> expect = dft_reference(data);
  std::vector<Complex> got = data;
  fft_inplace(got);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[i].real(), expect[i].real(), 1e-9 * n);
    EXPECT_NEAR(got[i].imag(), expect[i].imag(), 1e-9 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Solvers, FftSizes, ::testing::Values(2, 4, 8, 16, 64, 256));

TEST(Fft, InverseRoundTrip) {
  Rng rng(17);
  std::vector<Complex> data(32);
  for (auto& c : data) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  std::vector<Complex> work = data;
  fft_inplace(work, false);
  fft_inplace(work, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(work[i].real(), data[i].real(), 1e-10);
    EXPECT_NEAR(work[i].imag(), data[i].imag(), 1e-10);
  }
}

TEST(Fft, RealWrapperInterleavesComplexOutput) {
  const std::vector<double> signal{1.0, 0.0, 0.0, 0.0};
  const std::vector<double> out = fft_real(signal);
  ASSERT_EQ(out.size(), 8u);
  // Impulse -> flat spectrum of ones.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(out[2 * k], 1.0, 1e-12);
    EXPECT_NEAR(out[2 * k + 1], 0.0, 1e-12);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(6);
  EXPECT_THROW(fft_inplace(data), Error);
}

TEST(Fft, PerforatedFullKeepMatchesExact) {
  Rng rng(19);
  std::vector<double> signal(64);
  for (auto& v : signal) v = rng.uniform(-1, 1);
  const auto exact = fft_real(signal);
  const auto perf = fft_real_perforated(signal, 1.0);
  for (std::size_t i = 0; i < exact.size(); ++i) EXPECT_NEAR(exact[i], perf[i], 1e-12);
}

TEST(Fft, PerforationDegradesQuality) {
  Rng rng(21);
  std::vector<double> signal(64);
  for (auto& v : signal) v = rng.uniform(-1, 1);
  const auto exact = fft_real(signal);
  const auto perf = fft_real_perforated(signal, 0.5);
  double diff = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) diff += std::abs(exact[i] - perf[i]);
  EXPECT_GT(diff, 1.0);  // stage skipping visibly corrupts the spectrum
}

}  // namespace
}  // namespace ahn::apps
