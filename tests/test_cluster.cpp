// Tests for the multi-shard serving layer (docs/SHARDING.md): FNV-1a /
// consistent-hash placement stability, ShardRouter liveness + failover,
// ClusterOrchestrator replication, atomic deploy fan-out, zero-loss shard
// failure, revive re-sync, and cluster_health aggregation.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "nn/topology.hpp"
#include "obs/exposition.hpp"
#include "runtime/cluster.hpp"
#include "runtime/shard_router.hpp"

namespace ahn::runtime {
namespace {

std::vector<std::string> make_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back("key/" + std::to_string(i));
  return keys;
}

// ------------------------------------------------------------- hashing

TEST(Fnv1a, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors — placement is a cross-build
  // contract, so the hash itself is pinned.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(RingHash, AvalanchesSequentialKeys) {
  // Plain FNV-1a leaves sequential keys within a narrow band (poor
  // last-byte avalanche); the ring hash must spread them across the space.
  std::vector<std::uint64_t> hs;
  for (const std::string& k : make_keys(100)) hs.push_back(ring_hash(k));
  std::sort(hs.begin(), hs.end());
  EXPECT_GT(hs.back() - hs.front(), std::uint64_t{1} << 62);
  for (std::size_t i = 1; i < hs.size(); ++i) EXPECT_NE(hs[i], hs[i - 1]);
}

TEST(RingHash, SpreadsKeysAcrossShards) {
  ConsistentHashRing ring(8);
  std::vector<std::size_t> counts(8, 0);
  for (const std::string& k : make_keys(8000)) ++counts[ring.owner(k)];
  for (std::size_t s = 0; s < 8; ++s) {
    // Each shard should own a non-degenerate slice: between a third and
    // three times its fair share (1000 keys).
    EXPECT_GT(counts[s], 300u) << "shard " << s;
    EXPECT_LT(counts[s], 3000u) << "shard " << s;
  }
}

// ------------------------------------------------- consistent-hash stability

TEST(ConsistentHashRing, AddingShardMovesOnlyItsSlice) {
  const std::vector<std::string> keys = make_keys(10000);
  ConsistentHashRing before(4);
  ConsistentHashRing after(4);
  after.add_shard(4);

  std::size_t moved = 0;
  for (const std::string& k : keys) {
    const std::size_t was = before.owner(k);
    const std::size_t now = after.owner(k);
    if (was != now) {
      ++moved;
      // Every migrated key must land on the NEW shard — consistent hashing
      // never shuffles keys between pre-existing shards.
      EXPECT_EQ(now, 4u) << "key " << k << " moved " << was << "->" << now;
    }
  }
  // Expected migration is ~1/5 of the key space; allow generous slack but
  // fail on anything resembling rehash-everything behaviour.
  EXPECT_GT(moved, keys.size() / 20);
  EXPECT_LT(moved, keys.size() * 2 / 5);
}

TEST(ConsistentHashRing, RemovingShardStrandsOnlyItsKeys) {
  const std::vector<std::string> keys = make_keys(10000);
  ConsistentHashRing before(5);
  ConsistentHashRing after(5);
  after.remove_shard(2);

  std::size_t moved = 0;
  for (const std::string& k : keys) {
    const std::size_t was = before.owner(k);
    const std::size_t now = after.owner(k);
    if (was != 2) {
      // Keys not owned by the removed shard keep their owner exactly.
      EXPECT_EQ(now, was) << "key " << k;
    } else {
      EXPECT_NE(now, 2u);
      ++moved;
    }
  }
  EXPECT_GT(moved, keys.size() / 20);
  EXPECT_LT(moved, keys.size() * 2 / 5);
}

TEST(ConsistentHashRing, OwnersAreDistinctAndStartAtPrimary) {
  ConsistentHashRing ring(6);
  for (const std::string& k : make_keys(200)) {
    const std::vector<std::size_t> owners = ring.owners(k, 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(owners.front(), ring.owner(k));
    const std::set<std::size_t> uniq(owners.begin(), owners.end());
    EXPECT_EQ(uniq.size(), owners.size());
  }
}

TEST(ConsistentHashRing, ReplicaSetClampsToShardCount) {
  ConsistentHashRing ring(2);
  EXPECT_EQ(ring.owners("k", 5).size(), 2u);
}

// ------------------------------------------------------------ router failover

TEST(ShardRouter, RoutesAroundDeadShard) {
  ShardRouter router(4, /*replicas=*/3);
  std::size_t failed_over = 0;
  for (const std::string& k : make_keys(500)) {
    const std::vector<std::size_t> owners = router.owners(k);
    router.set_alive(owners.front(), false);
    const std::size_t routed = router.route(k);
    EXPECT_EQ(routed, owners[1]) << "key " << k;  // next replica in ring order
    if (routed != owners.front()) ++failed_over;
    router.set_alive(owners.front(), true);
  }
  EXPECT_EQ(failed_over, 500u);
}

TEST(ShardRouter, ReportsNoShardWhenReplicaSetIsDead) {
  ShardRouter router(3, /*replicas=*/2);
  const std::vector<std::size_t> owners = router.owners("k");
  for (const std::size_t s : owners) router.set_alive(s, false);
  EXPECT_EQ(router.route("k"), ShardRouter::kNoShard);
  EXPECT_TRUE(router.alive_owners("k").empty());
  router.set_alive(owners[1], true);
  EXPECT_EQ(router.route("k"), owners[1]);
}

TEST(ShardRouter, LivenessFlipDoesNotMoveOtherKeys) {
  ShardRouter router(5, /*replicas=*/2);
  const std::vector<std::string> keys = make_keys(2000);
  std::vector<std::size_t> before;
  before.reserve(keys.size());
  for (const std::string& k : keys) before.push_back(router.route(k));

  router.set_alive(3, false);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t now = router.route(keys[i]);
    if (before[i] != 3) {
      EXPECT_EQ(now, before[i]) << "key " << keys[i];
    } else {
      EXPECT_NE(now, 3u);
    }
  }
}

// ---------------------------------------------------------------- test rig

std::shared_ptr<ServableModel> rig_model() {
  Rng rng(1);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::Network net = nn::build_surrogate(spec, 4, 2, rng);
  auto m = std::make_shared<ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  return m;
}

Tensor request_row() { return Tensor({1, 4}, {0.1, 0.2, 0.3, 0.4}); }

ClusterOptions small_cluster(std::size_t shards, std::size_t replication = 2) {
  ClusterOptions opts;
  opts.shards = shards;
  opts.replication = replication;
  opts.shard_opts.max_batch = 1;              // submits execute inline
  opts.shard_opts.batch_delay_seconds = 0.0;  // no flusher thread
  return opts;
}

// ---------------------------------------------------------- replicated store

TEST(Cluster, PutReplicatesAndSurvivesPrimaryDeath) {
  ClusterOrchestrator cluster(small_cluster(4, 2));
  const Tensor t({1, 3}, {1.0, 2.0, 3.0});
  cluster.put_tensor("k", t);

  const std::vector<std::size_t> owners = cluster.router().owners("k");
  ASSERT_EQ(owners.size(), 2u);
  for (const std::size_t s : owners) {
    EXPECT_TRUE(cluster.shard(s).has_tensor("k"));
  }
  for (std::size_t s = 0; s < 4; ++s) {
    if (std::find(owners.begin(), owners.end(), s) == owners.end()) {
      EXPECT_FALSE(cluster.shard(s).has_tensor("k"));
    }
  }

  cluster.fail_shard(owners.front());
  ASSERT_TRUE(cluster.has_tensor("k"));
  const Tensor got = cluster.get_tensor("k");
  ASSERT_EQ(got.flat().size(), t.flat().size());
  EXPECT_TRUE(std::equal(got.flat().begin(), got.flat().end(), t.flat().begin()));
}

TEST(Cluster, GetThrowsWhenWholeReplicaSetIsDown) {
  ClusterOrchestrator cluster(small_cluster(3, 1));
  cluster.put_tensor("k", Tensor({1, 1}, {7.0}));
  cluster.fail_shard(cluster.router().primary("k"));
  EXPECT_FALSE(cluster.has_tensor("k"));
  EXPECT_THROW((void)cluster.get_tensor("k"), Error);
}

TEST(Cluster, DeleteRemovesFromAllReplicas) {
  ClusterOrchestrator cluster(small_cluster(4, 2));
  cluster.put_tensor("k", Tensor({1, 1}, {1.0}));
  cluster.delete_tensor("k");
  EXPECT_FALSE(cluster.has_tensor("k"));
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_FALSE(cluster.shard(s).has_tensor("k"));
  }
}

// ------------------------------------------------------------ registry fan-out

TEST(Cluster, SetModelFansOutToEveryShard) {
  ClusterOrchestrator cluster(small_cluster(4));
  EXPECT_EQ(cluster.registry_version(), 0u);
  cluster.set_model("m", rig_model());
  EXPECT_EQ(cluster.registry_version(), 1u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NE(cluster.shard(s).model("m"), nullptr);
  }
  EXPECT_EQ(cluster.model_names(), std::vector<std::string>{"m"});
}

TEST(Cluster, DeployFansOutDriftReference) {
  ClusterOrchestrator cluster(small_cluster(2));
  Rng rng(3);
  Tensor train({64, 4});
  for (double& v : train.flat()) v = rng.uniform(-1.0, 1.0);
  cluster.deploy(DeploymentPackage::build("m", rig_model(), train));
  EXPECT_EQ(cluster.registry_version(), 1u);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_TRUE(cluster.shard(s).model_health("m").has_reference);
  }
}

TEST(Cluster, ReviveResyncsRegistryAndServes) {
  ClusterOrchestrator cluster(small_cluster(3));
  cluster.set_model("m", rig_model());
  cluster.fail_shard(1);
  EXPECT_EQ(cluster.alive_count(), 2u);

  cluster.revive_shard(1);
  EXPECT_EQ(cluster.alive_count(), 3u);
  EXPECT_NE(cluster.shard(1).model("m"), nullptr);
  // The revived shard serves directly — the registry was re-synced onto the
  // fresh Orchestrator.
  auto f = cluster.shard(1).run_model_batched("m", request_row());
  EXPECT_TRUE(f.get().is_ok());
}

// ------------------------------------------------------------------- serving

TEST(Cluster, KeyedRunModelExecutesAndRehomesOutput) {
  ClusterOrchestrator cluster(small_cluster(4, 2));
  cluster.set_model("m", rig_model());
  cluster.put_tensor("in", request_row());

  ASSERT_TRUE(cluster.run_model("m", "in", "out").is_ok());
  ASSERT_TRUE(cluster.has_tensor("out"));
  EXPECT_EQ(cluster.get_tensor("out").cols(), 2u);
  // The output lives on its own replica set, not wherever it was computed.
  for (const std::size_t s : cluster.router().owners("out")) {
    EXPECT_TRUE(cluster.shard(s).has_tensor("out"));
  }
}

TEST(Cluster, KeyedRunModelFailsOverToReplica) {
  ClusterOrchestrator cluster(small_cluster(4, 2));
  cluster.set_model("m", rig_model());
  cluster.put_tensor("in", request_row());

  cluster.fail_shard(cluster.router().primary("in"));
  EXPECT_TRUE(cluster.run_model("m", "in", "out").is_ok());
  EXPECT_GE(cluster.failovers(), 1u);
  EXPECT_TRUE(cluster.has_tensor("out"));
}

TEST(Cluster, BatchedServesAcrossShards) {
  ClusterOrchestrator cluster(small_cluster(4));
  cluster.set_model("m", rig_model());
  std::vector<std::future<Result<Tensor>>> futs;
  futs.reserve(64);
  for (int i = 0; i < 64; ++i) {
    futs.push_back(cluster.run_model_batched("m", request_row()));
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().is_ok());
  // Round-robin spread: every shard served some of the traffic.
  const ClusterHealth h = cluster.cluster_health();
  EXPECT_EQ(h.requests_served, 64u);
  for (const ShardHealth& sh : h.shards) {
    EXPECT_GT(sh.requests_served, 0u) << "shard " << sh.shard;
  }
}

TEST(Cluster, BatchedWithRoutingKeyHasAffinity) {
  ClusterOrchestrator cluster(small_cluster(4, 2));
  cluster.set_model("m", rig_model());
  const std::size_t owner = cluster.router().primary("tenant-a");
  for (int i = 0; i < 8; ++i) {
    auto f = cluster.run_model_batched("m", request_row(), "tenant-a");
    ASSERT_TRUE(f.get().is_ok());
  }
  const ClusterHealth h = cluster.cluster_health();
  EXPECT_EQ(h.shards[owner].requests_served, 8u);
}

TEST(Cluster, ZeroLossThroughShardFailure) {
  // The bench gate in unit form: kill a shard mid-stream; every submitted
  // request must still resolve OK (accepted work drains, racing submits are
  // transparently resubmitted to a replica).
  ClusterOrchestrator cluster(small_cluster(4, 2));
  cluster.set_model("m", rig_model());

  std::vector<std::future<Result<Tensor>>> futs;
  futs.reserve(200);
  for (int i = 0; i < 100; ++i) {
    futs.push_back(cluster.run_model_batched("m", request_row(),
                                             "k" + std::to_string(i)));
  }
  cluster.fail_shard(0);
  for (int i = 100; i < 200; ++i) {
    futs.push_back(cluster.run_model_batched("m", request_row(),
                                             "k" + std::to_string(i)));
  }
  std::size_t ok = 0;
  for (auto& f : futs) ok += f.get().is_ok() ? 1 : 0;
  EXPECT_EQ(ok, 200u);
  EXPECT_EQ(cluster.alive_count(), 3u);
}

TEST(Cluster, SubmitRacingDrainIsResubmitted) {
  // Drain a shard underneath the router (without marking it dead) to force
  // the kShuttingDown-future race path: the cluster must detect it, mark the
  // shard dead, and resubmit.
  ClusterOrchestrator cluster(small_cluster(2, 2));
  cluster.set_model("m", rig_model());
  cluster.shard(0).drain();  // router still believes shard 0 is alive

  for (int i = 0; i < 16; ++i) {
    auto f = cluster.run_model_batched("m", request_row());
    EXPECT_TRUE(f.get().is_ok()) << "request " << i;
  }
  EXPECT_FALSE(cluster.shard_alive(0));  // race was detected and recorded
  EXPECT_GE(cluster.failovers(), 1u);
}

TEST(Cluster, AllShardsDeadRefusesCleanly) {
  ClusterOrchestrator cluster(small_cluster(2, 2));
  cluster.set_model("m", rig_model());
  cluster.fail_shard(0);
  cluster.fail_shard(1);
  auto f = cluster.run_model_batched("m", request_row());
  const Result<Tensor> r = f.get();
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), StatusCode::kTransientFailure);
}

// ------------------------------------------------------------ aggregate health

TEST(Cluster, HealthMergesShardMetrics) {
  ClusterOrchestrator cluster(small_cluster(3));
  cluster.set_model("m", rig_model());
  for (int i = 0; i < 30; ++i) {
    auto f = cluster.run_model_batched("m", request_row());
    ASSERT_TRUE(f.get().is_ok());
  }

  ClusterHealth h = cluster.cluster_health();
  EXPECT_EQ(h.shards_total, 3u);
  EXPECT_EQ(h.shards_alive, 3u);
  EXPECT_EQ(h.requests_served, 30u);
  EXPECT_EQ(h.registry_version, 1u);
  EXPECT_GT(h.uptime_seconds, 0.0);
  EXPECT_GT(h.modeled_rps, 0.0);
  EXPECT_GT(h.latency_p99, 0.0);
  EXPECT_GE(h.latency_p99, h.latency_p50);

  // Per-shard sums reconcile with the aggregate.
  std::uint64_t sum = 0;
  for (const ShardHealth& sh : h.shards) sum += sh.requests_served;
  EXPECT_EQ(sum, h.requests_served);

  // The merged snapshot is shard-labeled (no collisions) and carries the
  // cluster.* aggregates.
  EXPECT_EQ(h.merged.counters.at("cluster.requests_served"), 30u);
  EXPECT_EQ(h.merged.counters.at(
                "serving.requests_served{shard=\"0\"}") +
                h.merged.counters.at("serving.requests_served{shard=\"1\"}") +
                h.merged.counters.at("serving.requests_served{shard=\"2\"}"),
            30u);
  EXPECT_EQ(h.merged.histograms.at("cluster.latency.total").count, 30u);
  EXPECT_GT(h.merged.gauges.at("cluster.modeled_rps"), 0.0);
}

TEST(Cluster, HealthTracksDeadShardsAndBreakerStates) {
  ClusterOrchestrator cluster(small_cluster(3));
  cluster.set_model("m", rig_model());
  cluster.fail_shard(2);

  const ClusterHealth h = cluster.cluster_health();
  EXPECT_EQ(h.shards_alive, 2u);
  EXPECT_FALSE(h.shards[2].alive);
  for (const ShardHealth& sh : h.shards) {
    ASSERT_EQ(sh.breaker_states.count("m"), 1u);
    EXPECT_STREQ(sh.breaker_states.at("m").c_str(), "closed");
  }
  EXPECT_EQ(h.merged.gauges.at("cluster.shards_alive"), 2.0);
}

TEST(Cluster, ConcurrentClientsAndKillSurviveTsan) {
  // Thread-safety smoke: concurrent batched clients, a mid-run kill and
  // revive, and a health poll — no losses besides none expected, no races.
  ClusterOptions opts = small_cluster(4, 2);
  opts.shard_opts.max_batch = 4;
  ClusterOrchestrator cluster(opts);
  cluster.set_model("m", rig_model());

  std::atomic<std::size_t> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        auto f = cluster.run_model_batched(
            "m", request_row(), "c" + std::to_string(t) + "/" + std::to_string(i));
        cluster.flush_batches();
        if (f.get().is_ok()) ok.fetch_add(1);
      }
    });
  }
  cluster.fail_shard(1);
  (void)cluster.cluster_health();
  cluster.revive_shard(1);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), 200u);
}

// ------------------------------------------------- tracing + SLOs + HTTP

TEST(Cluster, OneTraceSpansRouterShardAndBatch) {
  obs::Tracer tracer;
  ClusterOptions opts = small_cluster(3, 2);
  opts.shard_opts.tracer = &tracer;
  opts.shard_opts.trace_sample_every = 1;  // trace everything
  ClusterOrchestrator cluster(opts);
  cluster.set_model("m", rig_model());

  auto f = cluster.run_model_batched("m", request_row(), "tenant-a");
  ASSERT_TRUE(f.get().is_ok());

  // Every layer of the one request shares ONE trace id: cluster root →
  // route decision → shard serve → batching (queue wait + execute).
  const obs::TracerSnapshot snap = tracer.snapshot();
  std::set<std::uint64_t> trace_ids;
  std::set<std::string> names;
  for (const obs::SpanRecord& rec : snap.recent) {
    trace_ids.insert(rec.trace_id);
    names.insert(rec.name);
  }
  EXPECT_EQ(trace_ids.size(), 1u);
  EXPECT_NE(*trace_ids.begin(), 0u);
  EXPECT_TRUE(names.count("cluster.run_model_batched"));
  EXPECT_TRUE(names.count("cluster.route"));
  EXPECT_TRUE(names.count("serve.run_model_batched"));
  EXPECT_TRUE(names.count("batching.batch_wait"));
  EXPECT_TRUE(names.count("batching.execute"));

  // The root span is the cluster entry point; everything else descends from
  // the same trace, and the trace id reaches the latency histograms as an
  // OpenMetrics exemplar.
  const ClusterHealth h = cluster.cluster_health();
  obs::PrometheusOptions popts;
  popts.exemplars = true;
  const std::string prom = obs::export_prometheus_string(h.merged, popts);
  EXPECT_NE(prom.find("# {trace_id=\"" + std::to_string(*trace_ids.begin()) +
                      "\"}"),
            std::string::npos);
}

TEST(Cluster, UnsampledRequestsOpenNoSpans) {
  obs::Tracer tracer;
  ClusterOptions opts = small_cluster(2, 1);
  opts.shard_opts.tracer = &tracer;
  opts.shard_opts.trace_sample_every = 0;  // head sampling disabled
  ClusterOrchestrator cluster(opts);
  cluster.set_model("m", rig_model());
  for (int i = 0; i < 8; ++i) {
    auto f = cluster.run_model_batched("m", request_row());
    ASSERT_TRUE(f.get().is_ok());
  }
  EXPECT_TRUE(tracer.snapshot().recent.empty());
  for (const obs::SpanRecord& rec : tracer.snapshot().recent) {
    ADD_FAILURE() << "unexpected span: " << rec.name;
  }
}

TEST(Cluster, SloGaugesRollUpAcrossShards) {
  ClusterOptions opts = small_cluster(2, 1);
  obs::SloSpec slo;
  slo.name = "availability";
  slo.kind = obs::SloKind::kAvailability;
  slo.objective = 0.999;
  opts.shard_opts.slos = {slo};
  ClusterOrchestrator cluster(opts);
  cluster.set_model("m", rig_model());
  for (int i = 0; i < 16; ++i) {
    auto f = cluster.run_model_batched("m", request_row());
    ASSERT_TRUE(f.get().is_ok());
  }

  // cluster_health() forces an SLO evaluation on every shard and rolls the
  // per-shard burn gauges up pessimistically (max across shards).
  const ClusterHealth h = cluster.cluster_health();
  ASSERT_EQ(h.merged.gauges.count("cluster.slo_burn_rate"), 1u);
  ASSERT_EQ(h.merged.gauges.count("cluster.slo_burning"), 1u);
  EXPECT_DOUBLE_EQ(h.merged.gauges.at("cluster.slo_burning"), 0.0);
  bool saw_shard_gauge = false;
  for (const auto& [key, value] : h.merged.gauges) {
    if (key.rfind("slo.burn_rate", 0) == 0) {
      saw_shard_gauge = true;
      EXPECT_GE(h.merged.gauges.at("cluster.slo_burn_rate"), value);
    }
  }
  EXPECT_TRUE(saw_shard_gauge);
  // A healthy all-OK stream burns (essentially) nothing.
  EXPECT_LT(h.merged.gauges.at("cluster.slo_burn_rate"), 1.0);
}

TEST(Cluster, ExpositionServerServesClusterEndpoints) {
  ClusterOptions opts = small_cluster(2, 1);
  obs::SloSpec slo;
  slo.name = "availability";
  opts.shard_opts.slos = {slo};
  opts.shard_opts.trace_sample_every = 1;
  ClusterOrchestrator cluster(opts);
  cluster.set_model("m", rig_model());
  for (int i = 0; i < 4; ++i) {
    auto f = cluster.run_model_batched("m", request_row());
    ASSERT_TRUE(f.get().is_ok());
  }

  obs::HttpServer& server = cluster.serve_exposition();
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);
  // Idempotent: a second call returns the same running server.
  EXPECT_EQ(&cluster.serve_exposition(), &server);
  EXPECT_EQ(server.port(), cluster.serve_exposition().port());
}

}  // namespace
}  // namespace ahn::runtime
