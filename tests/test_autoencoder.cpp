// Tests for src/autoencoder: the Eqn-1 quality metric, hourglass shape,
// dense/sparse training parity, error-bounded early stop, gradient
// checkpointing inside AE training, and compression-quality monotonicity.

#include <gtest/gtest.h>

#include <sstream>

#include "autoencoder/autoencoder.hpp"
#include "sparse/generators.hpp"

namespace ahn::autoencoder {
namespace {

Tensor correlated_data(std::size_t n, std::size_t dim, std::size_t rank, Rng& rng) {
  // Low-rank data: AE with latent >= rank can reconstruct well.
  const Tensor basis = Tensor::randn({rank, dim}, rng);
  Tensor data({n, dim});
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> coeff(rank);
    for (auto& c : coeff) c = rng.uniform(-1.0, 1.0);
    for (std::size_t j = 0; j < dim; ++j) {
      double v = 0.0;
      for (std::size_t r = 0; r < rank; ++r) v += coeff[r] * basis.at(r, j);
      data.at(i, j) = v;
    }
  }
  return data;
}

TEST(Eqn1, ZeroWhenIdenticalOneWhenFar) {
  const Tensor x({1, 4}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(relative_miss_fraction(x, x, 0.1), 0.0);
  const Tensor y({1, 4}, {10.0, 20.0, 30.0, 40.0});
  EXPECT_EQ(relative_miss_fraction(x, y, 0.1), 1.0);
}

TEST(Eqn1, CountsOnlyOutOfToleranceElements) {
  const Tensor x({1, 4}, {1.0, 1.0, 1.0, 1.0});
  const Tensor y({1, 4}, {1.05, 1.5, 0.99, 1.0});
  EXPECT_DOUBLE_EQ(relative_miss_fraction(x, y, 0.1), 0.25);
}

TEST(Eqn1, ZeroToleranceForSparseZeros) {
  const Tensor x({1, 2}, {0.0, 0.0});
  const Tensor y({1, 2}, {1e-8, 0.5});
  // Default zero_tol 1e-6: the tiny deviation passes, the large one misses.
  EXPECT_DOUBLE_EQ(relative_miss_fraction(x, y, 0.1), 0.5);
}

TEST(Autoencoder, LatentClampedToInputDim) {
  AutoencoderConfig cfg;
  cfg.latent_dim = 100;
  const Autoencoder ae(8, cfg);
  EXPECT_EQ(ae.latent_dim(), 8u);
}

TEST(Autoencoder, EncodeProducesLatentWidth) {
  AutoencoderConfig cfg;
  cfg.latent_dim = 3;
  const Autoencoder ae(10, cfg);
  Rng rng(1);
  const Tensor x = Tensor::randn({5, 10}, rng);
  const Tensor z = ae.encode(x);
  EXPECT_EQ(z.rows(), 5u);
  EXPECT_EQ(z.cols(), 3u);
  const Tensor back = ae.decode(z);
  EXPECT_EQ(back.cols(), 10u);
}

TEST(Autoencoder, LearnsLowRankStructure) {
  Rng rng(2);
  const Tensor data = correlated_data(150, 16, 3, rng);
  AutoencoderConfig cfg;
  cfg.latent_dim = 6;
  cfg.epochs = 200;
  cfg.encoding_loss_bound = 0.35;
  cfg.mu = 0.15;
  Autoencoder ae(16, cfg);
  const AutoencoderReport rep = ae.train(data);
  EXPECT_LT(rep.miss_fraction, 0.6);
  // Reconstruction must be far better than a zero prediction.
  const Tensor recon = ae.reconstruct(data);
  double err = 0.0, base = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    err += (recon[i] - data[i]) * (recon[i] - data[i]);
    base += data[i] * data[i];
  }
  EXPECT_LT(err / base, 0.2);
}

TEST(Autoencoder, ErrorBoundedTrainingStopsEarlyWhenMet) {
  Rng rng(3);
  const Tensor data = correlated_data(100, 12, 2, rng);
  AutoencoderConfig cfg;
  cfg.latent_dim = 8;
  cfg.epochs = 400;
  cfg.encoding_loss_bound = 0.9;  // trivially satisfiable bound
  cfg.mu = 0.5;
  Autoencoder ae(12, cfg);
  const AutoencoderReport rep = ae.train(data);
  EXPECT_TRUE(rep.meets_bound);
  EXPECT_LT(rep.epochs_run, 400u);
}

TEST(Autoencoder, SparseEncodeMatchesDenseEncode) {
  Rng rng(4);
  const sparse::Csr xs = sparse::random_sparse(20, 30, 0.15, rng);
  AutoencoderConfig cfg;
  cfg.latent_dim = 5;
  cfg.epochs = 30;
  Autoencoder ae(30, cfg);
  (void)ae.train_sparse(xs);
  const Tensor z_sparse = ae.encode_sparse(xs);
  const Tensor z_dense = ae.encode(xs.to_dense());
  ASSERT_EQ(z_sparse.size(), z_dense.size());
  for (std::size_t i = 0; i < z_sparse.size(); ++i) {
    EXPECT_NEAR(z_sparse[i], z_dense[i], 1e-9);
  }
}

TEST(Autoencoder, CheckpointedTrainingWorks) {
  Rng rng(5);
  const Tensor data = correlated_data(60, 10, 2, rng);
  AutoencoderConfig cfg;
  cfg.latent_dim = 4;
  cfg.epochs = 50;
  cfg.checkpoint_segments = 3;  // gradient checkpointing path
  Autoencoder ae(10, cfg);
  EXPECT_NO_THROW((void)ae.train(data));
  EXPECT_LT(ae.evaluate(data), 1.01);
}

TEST(Autoencoder, LargerLatentReconstructsBetter) {
  Rng rng(6);
  const Tensor data = correlated_data(150, 20, 6, rng);
  auto miss_at = [&](std::size_t k) {
    AutoencoderConfig cfg;
    cfg.latent_dim = k;
    cfg.epochs = 120;
    cfg.seed = 3;
    Autoencoder ae(20, cfg);
    (void)ae.train(data);
    return ae.evaluate(data);
  };
  const double small = miss_at(2);
  const double large = miss_at(12);
  EXPECT_LE(large, small + 0.05);  // monotone-ish in capacity
}

TEST(Autoencoder, SaveLoadRoundTrip) {
  Rng rng(8);
  const Tensor data = correlated_data(60, 10, 2, rng);
  AutoencoderConfig cfg;
  cfg.latent_dim = 4;
  cfg.epochs = 40;
  Autoencoder a(10, cfg);
  (void)a.train(data);
  std::stringstream ss;
  a.save(ss);

  AutoencoderConfig cfg2 = cfg;
  cfg2.hidden_dim = a.config().hidden_dim;  // same derived shape
  Autoencoder b(10, cfg2);
  b.load(ss);
  const Tensor za = a.encode(data);
  const Tensor zb = b.encode(data);
  for (std::size_t i = 0; i < za.size(); ++i) EXPECT_NEAR(za[i], zb[i], 1e-12);
}

TEST(Autoencoder, LoadRejectsShapeMismatch) {
  AutoencoderConfig cfg;
  cfg.latent_dim = 4;
  Autoencoder a(10, cfg);
  std::stringstream ss;
  a.save(ss);
  Autoencoder b(12, cfg);
  EXPECT_THROW(b.load(ss), Error);
}

TEST(Autoencoder, EncodeCostScalesWithLatent) {
  AutoencoderConfig small_cfg, big_cfg;
  small_cfg.latent_dim = 2;
  big_cfg.latent_dim = 32;
  const Autoencoder small(64, small_cfg);
  const Autoencoder big(64, big_cfg);
  EXPECT_LT(small.encode_cost(1).flops, big.encode_cost(1).flops);
}

TEST(Autoencoder, ScalesRawFeatureMagnitudes) {
  // Features of magnitude ~100 must not saturate the tanh bottleneck.
  Rng rng(7);
  Tensor data = correlated_data(120, 12, 3, rng);
  for (auto& v : data.flat()) v *= 100.0;
  AutoencoderConfig cfg;
  cfg.latent_dim = 6;
  cfg.epochs = 150;
  cfg.mu = 0.15;
  Autoencoder ae(12, cfg);
  (void)ae.train(data);
  const Tensor recon = ae.reconstruct(data);
  double err = 0.0, base = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    err += (recon[i] - data[i]) * (recon[i] - data[i]);
    base += data[i] * data[i];
  }
  EXPECT_LT(err / base, 0.2);
}

}  // namespace
}  // namespace ahn::autoencoder
