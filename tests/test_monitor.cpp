// Tests for the model-health monitoring layer (obs/monitor.hpp): P² quantile
// accuracy, the streaming feature sketch, drift scoring, trend monitors,
// alert fan-out, and the per-model monitor fed from concurrent serving
// threads. Runs under TSan in CI alongside test_obs.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "nn/topology.hpp"
#include "obs/monitor.hpp"
#include "runtime/deployment.hpp"
#include "runtime/orchestrator.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace ahn;

// ------------------------------------------------------------- P2Quantile

TEST(P2Quantile, ExactForFirstFiveSamples) {
  obs::P2Quantile med(0.5);
  const double samples[] = {9.0, 1.0, 5.0, 3.0, 7.0};
  med.observe(samples[0]);
  EXPECT_DOUBLE_EQ(med.value(), 9.0);
  for (int i = 1; i < 5; ++i) med.observe(samples[i]);
  EXPECT_DOUBLE_EQ(med.value(), 5.0);  // exact median of {1,3,5,7,9}
}

TEST(P2Quantile, TracksQuantilesOfKnownDistributions) {
  // Uniform(0, 1): q-th quantile is q. Gaussian(0, 1): median 0.
  Rng rng(7);
  for (const double q : {0.1, 0.5, 0.9}) {
    obs::P2Quantile est(q);
    for (int i = 0; i < 20000; ++i) est.observe(rng.uniform());
    EXPECT_NEAR(est.value(), q, 0.02) << "quantile " << q;
  }
  obs::P2Quantile med(0.5);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.gaussian();
    samples.push_back(v);
    med.observe(v);
  }
  EXPECT_NEAR(med.value(), percentile(std::move(samples), 50.0), 0.05);
}

TEST(P2Quantile, DropsNaN) {
  obs::P2Quantile est(0.5);
  est.observe(1.0);
  est.observe(std::nan(""));
  est.observe(3.0);
  EXPECT_EQ(est.count(), 2u);
  EXPECT_DOUBLE_EQ(est.value(), 2.0);
}

// ----------------------------------------------------------- FeatureSketch

TEST(FeatureSketch, StreamingMomentsMatchBatchStatistics) {
  Rng rng(3);
  const std::size_t rows = 5000, features = 4;
  const Tensor data = Tensor::randn({rows, features}, rng);

  obs::FeatureSketch sketch(features);
  for (std::size_t r = 0; r < rows; ++r) sketch.observe(data.row(r));
  EXPECT_EQ(sketch.rows(), rows);

  for (std::size_t f = 0; f < features; ++f) {
    std::vector<double> col;
    col.reserve(rows);
    for (std::size_t r = 0; r < rows; ++r) col.push_back(data.at(r, f));
    const double mean = std::accumulate(col.begin(), col.end(), 0.0) /
                        static_cast<double>(rows);
    EXPECT_NEAR(sketch.mean(f), mean, 1e-12);
    EXPECT_NEAR(sketch.stddev(f), 1.0, 0.05);  // N(0,1) columns
    // Decile estimates agree with the sorted-sample reference.
    for (std::size_t i = 0; i < obs::FeatureSketch::kDeciles; ++i) {
      const double exact = percentile(col, 10.0 * static_cast<double>(i + 1));
      EXPECT_NEAR(sketch.decile(f, i), exact, 0.08)
          << "feature " << f << " decile " << i;
    }
    const obs::FeatureSummary s = sketch.summary(f);
    EXPECT_EQ(s.count, rows);
    EXPECT_LE(s.min, s.deciles[0]);
    EXPECT_GE(s.max, s.deciles[8]);
  }
}

TEST(FeatureSketch, AdoptsWidthFromFirstRowAndChecksLater) {
  obs::FeatureSketch sketch;
  const std::vector<double> row{1.0, 2.0, 3.0};
  sketch.observe(row);
  EXPECT_EQ(sketch.features(), 3u);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(sketch.observe(wrong), ahn::Error);
}

// ----------------------------------------------------------- DriftDetector

obs::FeatureSketch gaussian_reference(std::size_t features, std::size_t rows,
                                      unsigned long long seed) {
  Rng rng(seed);
  const Tensor data = Tensor::randn({rows, features}, rng);
  obs::FeatureSketch sketch(features);
  for (std::size_t r = 0; r < rows; ++r) sketch.observe(data.row(r));
  return sketch;
}

TEST(DriftDetector, InDistributionScoresLow) {
  auto ref = std::make_shared<obs::FeatureSketch>(gaussian_reference(3, 4000, 5));
  obs::DriftDetector det(ref);
  Rng rng(6);  // different stream, same distribution
  const Tensor live = Tensor::randn({2000, 3}, rng);
  for (std::size_t r = 0; r < live.rows(); ++r) det.observe(live.row(r));

  const obs::DriftReport rep = det.report();
  EXPECT_EQ(rep.live_rows, 2000u);
  EXPECT_LT(rep.score, 0.5);
}

TEST(DriftDetector, DetectsCovariateShiftOnTheRightFeature) {
  auto ref = std::make_shared<obs::FeatureSketch>(gaussian_reference(3, 4000, 5));
  obs::DriftDetector det(ref);
  Rng rng(6);
  Tensor live = Tensor::randn({2000, 3}, rng);
  for (std::size_t r = 0; r < live.rows(); ++r) live.at(r, 1) += 3.0;  // shift f1
  for (std::size_t r = 0; r < live.rows(); ++r) det.observe(live.row(r));

  const obs::DriftReport rep = det.report();
  EXPECT_EQ(rep.worst_feature, 1u);
  // Mean shift alone contributes ~3 sigma; PSI adds on top.
  EXPECT_GT(rep.score, 3.0);
  EXPECT_GT(rep.features[1].mean_shift, 2.5);
  EXPECT_GT(rep.features[1].psi, rep.features[0].psi);
}

TEST(DriftDetector, SilentBelowMinSamples) {
  auto ref = std::make_shared<obs::FeatureSketch>(gaussian_reference(2, 1000, 5));
  obs::DriftOptions opts;
  opts.min_samples = 64;
  obs::DriftDetector det(ref, opts);
  std::vector<double> far{100.0, 100.0};
  for (int i = 0; i < 63; ++i) det.observe(far);
  EXPECT_DOUBLE_EQ(det.report().score, 0.0);  // gated
  det.observe(far);
  EXPECT_GT(det.report().score, 10.0);  // 64th sample releases the gate
}

// --------------------------------------------------------------- RateTrend

TEST(RateTrend, EwmaAndWindowTrackEventRate) {
  obs::TrendOptions opts;
  opts.ewma_alpha = 0.1;
  opts.window = 10;
  obs::RateTrend trend(opts);
  EXPECT_DOUBLE_EQ(trend.window_rate(), 0.0);

  for (int i = 0; i < 200; ++i) {
    const bool event = i >= 150;  // last quarter all events
    trend.record(event);
    trend.record_window(event);
  }
  EXPECT_EQ(trend.total(), 200u);
  EXPECT_EQ(trend.events(), 50u);
  EXPECT_GT(trend.ewma(), 0.9);            // converged to the recent rate
  EXPECT_DOUBLE_EQ(trend.window_rate(), 1.0);  // last 10 all events
}

TEST(RateTrend, LockFreeRecordIsThreadSafe) {
  obs::RateTrend trend;
  constexpr int kThreads = 4, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trend] {
      for (int i = 0; i < kPerThread; ++i) trend.record(i % 2 == 0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(trend.total(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(trend.events(), static_cast<std::uint64_t>(kThreads * kPerThread / 2));
  EXPECT_GT(trend.ewma(), 0.0);
  EXPECT_LT(trend.ewma(), 1.0);
}

// --------------------------------------------------------------- AlertSink

TEST(AlertSink, StampsCountsAndDeliversToCallback) {
  obs::AlertSink sink;
  std::vector<obs::Alert> delivered;
  sink.set_callback([&delivered](const obs::Alert& a) { delivered.push_back(a); });

  obs::Alert a;
  a.kind = obs::AlertKind::kQoiDegraded;
  a.model = "m";
  a.value = 0.4;
  a.threshold = 0.3;
  sink.raise(a);
  a.kind = obs::AlertKind::kDriftDetected;
  sink.raise(a);

  EXPECT_EQ(sink.raised_total(), 2u);
  EXPECT_EQ(sink.raised(obs::AlertKind::kQoiDegraded), 1u);
  EXPECT_EQ(sink.raised(obs::AlertKind::kDriftDetected), 1u);
  EXPECT_EQ(sink.raised(obs::AlertKind::kBreakerOpen), 0u);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].sequence, 1u);
  EXPECT_EQ(delivered[1].sequence, 2u);
}

TEST(AlertSink, AddCallbackSubscribersSurviveSetCallback) {
  obs::AlertSink sink;
  int primary = 0, sub_a = 0, sub_b = 0;
  sink.set_callback([&primary](const obs::Alert&) { ++primary; });
  sink.add_callback([&sub_a](const obs::Alert&) { ++sub_a; });
  sink.add_callback([&sub_b](const obs::Alert&) { ++sub_b; });

  obs::Alert a;
  a.model = "m";
  sink.raise(a);
  EXPECT_EQ(primary, 1);
  EXPECT_EQ(sub_a, 1);
  EXPECT_EQ(sub_b, 1);

  // Replacing the primary slot (e.g. a test re-wiring the log hook) must
  // not detach add_callback subscribers — the Retrainer depends on this.
  int replacement = 0;
  sink.set_callback([&replacement](const obs::Alert&) { ++replacement; });
  sink.raise(a);
  EXPECT_EQ(primary, 1);
  EXPECT_EQ(replacement, 1);
  EXPECT_EQ(sub_a, 2);
  EXPECT_EQ(sub_b, 2);
}

TEST(RateTrend, ResetForgetsAllHistory) {
  obs::TrendOptions opts;
  opts.window = 4;
  obs::RateTrend trend(opts);
  for (int i = 0; i < 50; ++i) {
    trend.record(true);
    trend.record_window(true);
  }
  ASSERT_GT(trend.ewma(), 0.9);
  ASSERT_DOUBLE_EQ(trend.window_rate(), 1.0);

  trend.reset();
  EXPECT_DOUBLE_EQ(trend.ewma(), 0.0);
  EXPECT_DOUBLE_EQ(trend.window_rate(), 0.0);
  EXPECT_EQ(trend.total(), 0u);
  EXPECT_EQ(trend.events(), 0u);

  // Post-reset recording starts from scratch (no stale window slots).
  trend.record(false);
  trend.record_window(false);
  EXPECT_EQ(trend.total(), 1u);
  EXPECT_DOUBLE_EQ(trend.window_rate(), 0.0);
}

TEST(AlertSink, RingIsBoundedOldestFirst) {
  obs::AlertSink sink(/*ring_capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    obs::Alert a;
    a.model = "m" + std::to_string(i);
    sink.raise(a);
  }
  const std::vector<obs::Alert> recent = sink.recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].model, "m2");
  EXPECT_EQ(recent[2].model, "m4");
  EXPECT_EQ(sink.raised_total(), 5u);
}

// ------------------------------------------------------------ ModelMonitor

obs::MonitorOptions every_row_options() {
  obs::MonitorOptions opts;
  opts.sample_every = 1;
  opts.drift_check_every = 1;
  return opts;
}

TEST(ModelMonitor, DriftAlertFiresOnceAndRearmsAfterRecovery) {
  obs::AlertSink sink;
  obs::ModelMonitor mon("m", every_row_options(), &sink);
  mon.set_reference(
      std::make_shared<obs::FeatureSketch>(gaussian_reference(2, 2000, 5)));

  Rng rng(9);
  // In-distribution traffic: no alert.
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> row{rng.gaussian(), rng.gaussian()};
    mon.record_request(row, /*qoi_ok=*/true);
  }
  EXPECT_EQ(sink.raised(obs::AlertKind::kDriftDetected), 0u);
  obs::ModelHealth h = mon.health();
  EXPECT_TRUE(h.has_reference);
  EXPECT_FALSE(h.drift_alert);
  EXPECT_FALSE(h.retrain_recommended);
  EXPECT_LT(h.drift_score, 2.0);

  // Shifted traffic: the edge-trigger raises exactly one alert.
  for (int i = 0; i < 600; ++i) {
    const std::vector<double> row{rng.gaussian() + 4.0, rng.gaussian()};
    mon.record_request(row, /*qoi_ok=*/true);
  }
  EXPECT_EQ(sink.raised(obs::AlertKind::kDriftDetected), 1u);
  h = mon.health();
  EXPECT_TRUE(h.drift_alert);
  EXPECT_TRUE(h.retrain_recommended);
  EXPECT_GE(h.drift_score, 2.0);
  EXPECT_EQ(h.drift_worst_feature, 0u);

  // Re-deploying (fresh reference) resets the live state and the trigger.
  mon.set_reference(
      std::make_shared<obs::FeatureSketch>(gaussian_reference(2, 2000, 5)));
  h = mon.health();
  EXPECT_FALSE(h.drift_alert);
  EXPECT_EQ(h.rows_sampled, 0u);
}

TEST(ModelMonitor, QoiDegradationRaisesAndRecovers) {
  obs::MonitorOptions opts = every_row_options();
  opts.qoi_alert_rate = 0.3;
  opts.qoi_trend.ewma_alpha = 0.2;
  opts.qoi_trend.min_samples = 16;
  obs::AlertSink sink;
  obs::ModelMonitor mon("m", opts, &sink);  // no reference: QoI only

  const std::vector<double> row{0.0};
  for (int i = 0; i < 50; ++i) mon.record_request(row, /*qoi_ok=*/true);
  EXPECT_EQ(sink.raised(obs::AlertKind::kQoiDegraded), 0u);

  for (int i = 0; i < 50; ++i) mon.record_request(row, /*qoi_ok=*/false);
  EXPECT_EQ(sink.raised(obs::AlertKind::kQoiDegraded), 1u);
  obs::ModelHealth h = mon.health();
  EXPECT_TRUE(h.qoi_alert);
  EXPECT_TRUE(h.retrain_recommended);
  EXPECT_GT(h.qoi_miss_ewma, 0.3);
  EXPECT_GE(h.qoi_miss_window_rate, 0.5);  // 50 misses in a 100-sample window

  // Recovery re-arms the trigger; a second degradation raises again.
  for (int i = 0; i < 100; ++i) mon.record_request(row, /*qoi_ok=*/true);
  EXPECT_FALSE(mon.health().qoi_alert);
  for (int i = 0; i < 100; ++i) mon.record_request(row, /*qoi_ok=*/false);
  EXPECT_EQ(sink.raised(obs::AlertKind::kQoiDegraded), 2u);
}

TEST(ModelMonitor, BreakerOpenHookRaisesAlert) {
  obs::AlertSink sink;
  obs::ModelMonitor mon("m", obs::MonitorOptions{}, &sink);
  mon.record_breaker_open(/*window_fallback_rate=*/0.75, /*trip_threshold=*/0.5);
  EXPECT_EQ(sink.raised(obs::AlertKind::kBreakerOpen), 1u);
  const std::vector<obs::Alert> recent = sink.recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_DOUBLE_EQ(recent[0].value, 0.75);
  EXPECT_DOUBLE_EQ(recent[0].threshold, 0.5);
  EXPECT_EQ(recent[0].model, "m");
}

TEST(ModelMonitor, DisabledMonitorRecordsNothing) {
  obs::MonitorOptions opts = every_row_options();
  opts.enabled = false;
  obs::AlertSink sink;
  obs::ModelMonitor mon("m", opts, &sink);
  const std::vector<double> row{100.0};
  for (int i = 0; i < 100; ++i) mon.record_request(row, /*qoi_ok=*/false);
  const obs::ModelHealth h = mon.health();
  EXPECT_EQ(h.requests_observed, 0u);
  EXPECT_EQ(h.rows_sampled, 0u);
  EXPECT_EQ(sink.raised_total(), 0u);
}

TEST(ModelMonitor, ConcurrentRecordingIsSafeAndCounted) {
  obs::AlertSink sink;
  obs::ModelMonitor mon("m", obs::MonitorOptions{}, &sink);  // sample_every=16
  mon.set_reference(
      std::make_shared<obs::FeatureSketch>(gaussian_reference(2, 500, 5)));

  constexpr int kThreads = 4, kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mon, t] {
      Rng rng(100 + static_cast<unsigned long long>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const std::vector<double> row{rng.gaussian(), rng.gaussian()};
        mon.record_request(row, /*qoi_ok=*/i % 7 != 0);
      }
    });
  }
  for (auto& th : threads) th.join();

  const obs::ModelHealth h = mon.health();
  EXPECT_EQ(h.requests_observed, static_cast<std::uint64_t>(kThreads * kPerThread));
  // The sampler admits exactly 1 in sample_every ticks across all threads.
  EXPECT_EQ(h.rows_sampled, static_cast<std::uint64_t>(kThreads * kPerThread / 16));
  EXPECT_FALSE(h.drift_alert);  // in-distribution traffic
}

// ------------------------------------------- End-to-end through the runtime

std::shared_ptr<runtime::ServableModel> tiny_model(std::size_t in, std::size_t out) {
  Rng rng(11);
  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  nn::Network net = nn::build_surrogate(spec, in, out, rng);
  auto m = std::make_shared<runtime::ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  return m;
}

TEST(OrchestratorHealth, DeployServeShiftedTrafficReportsDrift) {
  Rng rng(3);
  const Tensor training = Tensor::randn({1000, 4}, rng);

  runtime::OrchestratorOptions opts;
  opts.monitor.sample_every = 1;
  opts.tracer = nullptr;  // global tracer is fine here
  runtime::Orchestrator orc(runtime::DeviceModel{}, opts);
  orc.deploy(runtime::DeploymentPackage::build("m", tiny_model(4, 2), training));

  // In-distribution serving stays quiet.
  std::vector<std::future<Result<Tensor>>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(orc.run_model_batched("m", Tensor::randn({1, 4}, rng)));
  }
  orc.flush_batches();
  for (auto& f : futures) ASSERT_TRUE(f.get().is_ok());
  obs::ModelHealth h = orc.model_health("m");
  EXPECT_TRUE(h.has_reference);
  EXPECT_FALSE(h.drift_alert);
  EXPECT_EQ(h.breaker_state, "closed");
  EXPECT_GT(h.latency_p95, 0.0);

  // Shifted serving crosses the threshold and recommends retraining.
  futures.clear();
  for (int i = 0; i < 400; ++i) {
    Tensor row = Tensor::randn({1, 4}, rng);
    for (double& v : row.row(0)) v += 3.0;
    futures.push_back(orc.run_model_batched("m", std::move(row)));
  }
  orc.flush_batches();
  for (auto& f : futures) ASSERT_TRUE(f.get().is_ok());
  h = orc.model_health("m");
  EXPECT_TRUE(h.drift_alert);
  EXPECT_TRUE(h.retrain_recommended);
  EXPECT_GE(h.drift_score, opts.monitor.drift_threshold);
  EXPECT_GE(orc.alerts().raised(obs::AlertKind::kDriftDetected), 1u);
  orc.drain();
}

TEST(OrchestratorHealth, BreakerTransitionsDriveGaugeAndAlert) {
  // A surrogate whose outputs always miss QoI, with a fallback: the breaker
  // trips, the state gauge follows, and a breaker_open alert is raised.
  auto m = tiny_model(2, 1);
  m->qoi_check = [](const Tensor&, const Tensor&) { return false; };
  m->fallback = [](const Tensor& row_in) {
    Tensor exact({1, 1});
    exact.at(0, 0) = row_in.at(0, 0);
    return exact;
  };

  runtime::OrchestratorOptions opts;
  opts.breaker.window = 8;
  opts.breaker.min_samples = 4;
  opts.breaker.trip_threshold = 0.5;
  opts.breaker.cooldown_seconds = 1e9;  // stays open for the test's lifetime
  runtime::Orchestrator orc(runtime::DeviceModel{}, opts);
  orc.set_model("m", std::move(m));

  Rng rng(4);
  std::vector<std::future<Result<Tensor>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(orc.run_model_batched("m", Tensor::randn({1, 2}, rng)));
    orc.flush_batches();
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().is_ok());

  const obs::ModelHealth h = orc.model_health("m");
  EXPECT_EQ(h.breaker_state, "open");
  EXPECT_GE(h.breaker_trips, 1u);
  EXPECT_GE(orc.alerts().raised(obs::AlertKind::kBreakerOpen), 1u);
  const obs::RegistrySnapshot snap = orc.stats().metrics().snapshot();
  const auto it = snap.gauges.find("serving.breaker_state{model=\"m\"}");
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_DOUBLE_EQ(it->second, 1.0);  // open
  orc.drain();
}

TEST(OrchestratorHealth, QueueDepthGaugeTracksPendingRows) {
  runtime::OrchestratorOptions opts;
  opts.max_batch = 64;              // larger than we submit: rows stay queued
  opts.batch_delay_seconds = 0.0;   // no flusher: deterministic depth
  runtime::Orchestrator orc(runtime::DeviceModel{}, opts);
  orc.set_model("m", tiny_model(2, 1));

  Rng rng(4);
  std::vector<std::future<Result<Tensor>>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(orc.run_model_batched("m", Tensor::randn({1, 2}, rng)));
  }
  obs::RegistrySnapshot snap = orc.stats().metrics().snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("serving.batch_queue_depth"), 5.0);

  orc.flush_batches();
  for (auto& f : futures) ASSERT_TRUE(f.get().is_ok());
  snap = orc.stats().metrics().snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("serving.batch_queue_depth"), 0.0);
  orc.drain();
}

TEST(DeploymentPackageTest, BuildSketchesTrainingInputs) {
  Rng rng(3);
  const Tensor training = Tensor::randn({500, 3}, rng);
  const runtime::DeploymentPackage pkg =
      runtime::DeploymentPackage::build("m", tiny_model(3, 1), training);
  ASSERT_NE(pkg.reference, nullptr);
  EXPECT_EQ(pkg.reference->rows(), 500u);
  EXPECT_EQ(pkg.reference->features(), 3u);
  EXPECT_NEAR(pkg.reference->mean(0), 0.0, 0.2);
  EXPECT_NEAR(pkg.reference->stddev(0), 1.0, 0.2);
}

}  // namespace
