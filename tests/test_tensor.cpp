// Tests for src/tensor: shape handling, element access, and the BLAS-like
// kernels (including the transposed products used by backprop).

#include <gtest/gtest.h>

#include "common/flops.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace ahn {
namespace {

TEST(Tensor, ConstructsWithShapeAndZeros) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  for (double v : t.flat()) EXPECT_EQ(v, 0.0);
}

TEST(Tensor, DataConstructorValidatesVolume) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, ElementAccessRowMajor) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 2), 3.0);
  EXPECT_EQ(t.at(1, 0), 4.0);
  t.at(1, 1) = 42.0;
  EXPECT_EQ(t[4], 42.0);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.at(2, 1), 6.0);
  EXPECT_THROW(t.reshape({4, 2}), Error);
}

TEST(Tensor, RowSpanViewsWithoutCopy) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  auto row = t.row(1);
  row[0] = -4.0;
  EXPECT_EQ(t.at(1, 0), -4.0);
}

TEST(Tensor, RandnReproducibleFromSeed) {
  Rng a(5), b(5);
  const Tensor x = Tensor::randn({3, 3}, a);
  const Tensor y = Tensor::randn({3, 3}, b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], y[i]);
}

TEST(Tensor, FullFillsValue) {
  const Tensor t = Tensor::full({4}, 2.5);
  for (double v : t.flat()) EXPECT_EQ(v, 2.5);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).shape_string(), "[2x3]");
}

TEST(Ops, MatmulMatchesHandComputed) {
  const Tensor a({2, 2}, {1, 2, 3, 4});
  const Tensor b({2, 2}, {5, 6, 7, 8});
  const Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0);
  EXPECT_EQ(c.at(0, 1), 22.0);
  EXPECT_EQ(c.at(1, 0), 43.0);
  EXPECT_EQ(c.at(1, 1), 50.0);
}

TEST(Ops, MatmulRejectsBadInnerDims) {
  const Tensor a({2, 3});
  const Tensor b({2, 3});
  EXPECT_THROW((void)ops::matmul(a, b), Error);
}

TEST(Ops, TransposedProductsAgreeWithExplicitTranspose) {
  Rng rng(2);
  const Tensor a = Tensor::randn({4, 3}, rng);
  const Tensor b = Tensor::randn({5, 3}, rng);
  const Tensor expect_nt = ops::matmul(a, ops::transpose(b));
  const Tensor got_nt = ops::matmul_nt(a, b);
  for (std::size_t i = 0; i < expect_nt.size(); ++i) {
    EXPECT_NEAR(got_nt[i], expect_nt[i], 1e-12);
  }

  const Tensor c = Tensor::randn({4, 6}, rng);
  const Tensor expect_tn = ops::matmul(ops::transpose(a), c);
  const Tensor got_tn = ops::matmul_tn(a, c);
  for (std::size_t i = 0; i < expect_tn.size(); ++i) {
    EXPECT_NEAR(got_tn[i], expect_tn[i], 1e-12);
  }
}

TEST(Ops, MatvecMatchesMatmul) {
  Rng rng(3);
  const Tensor a = Tensor::randn({3, 4}, rng);
  Tensor x = Tensor::randn({4}, rng);
  const Tensor y = ops::matvec(a, x);
  Tensor xm = x;
  xm.reshape({4, 1});
  const Tensor ym = ops::matmul(a, xm);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], ym[i], 1e-12);
}

TEST(Ops, AxpyAndElementwise) {
  Tensor x({3}, {1, 2, 3});
  Tensor y({3}, {10, 20, 30});
  ops::axpy(2.0, x, y);
  EXPECT_EQ(y[0], 12.0);
  EXPECT_EQ(y[2], 36.0);

  const Tensor s = ops::add(x, x);
  EXPECT_EQ(s[1], 4.0);
  const Tensor d = ops::sub(y, x);
  EXPECT_EQ(d[0], 11.0);
  const Tensor h = ops::hadamard(x, x);
  EXPECT_EQ(h[2], 9.0);
}

TEST(Ops, AddRowBiasBroadcasts) {
  Tensor t({2, 2}, {1, 1, 1, 1});
  const Tensor bias({2}, {5, 7});
  ops::add_row_bias(t, bias);
  EXPECT_EQ(t.at(0, 0), 6.0);
  EXPECT_EQ(t.at(1, 1), 8.0);
}

TEST(Ops, DotNormSumMax) {
  const Tensor x({3}, {3, 4, 0});
  EXPECT_DOUBLE_EQ(ops::dot(x.flat(), x.flat()), 25.0);
  EXPECT_DOUBLE_EQ(ops::norm2(x.flat()), 5.0);
  EXPECT_DOUBLE_EQ(ops::sum(x), 7.0);
  const Tensor y({3}, {-9, 4, 0});
  EXPECT_DOUBLE_EQ(ops::max_abs(y), 9.0);
}

TEST(Ops, MatmulCountsFlops) {
  FlopCounter::instance().reset();
  FlopRegion region;
  const Tensor a({4, 5});
  const Tensor b({5, 6});
  (void)ops::matmul(a, b);
  EXPECT_EQ(region.delta().flops, 2u * 4 * 5 * 6);
}

TEST(Ops, TransposeRoundTrip) {
  Rng rng(4);
  const Tensor a = Tensor::randn({3, 5}, rng);
  const Tensor att = ops::transpose(ops::transpose(a));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], att[i]);
}

}  // namespace
}  // namespace ahn
