// Tests for src/tensor: shape handling, element access, and the BLAS-like
// kernels (including the transposed products used by backprop). The blocked
// GEMM battery at the bottom checks the fast kernels against the retained
// naive references across rectangular/degenerate shapes, and pins down the
// determinism contract (bitwise-equal results across thread counts, and
// row-of-batch == 1-row product) that checkpointed training and batched
// serving rely on.

#include <gtest/gtest.h>
#include <omp.h>

#include <cstring>
#include <vector>

#include "common/flops.hpp"
#include "common/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/reference.hpp"
#include "tensor/tensor.hpp"

namespace ahn {
namespace {

TEST(Tensor, ConstructsWithShapeAndZeros) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  for (double v : t.flat()) EXPECT_EQ(v, 0.0);
}

TEST(Tensor, DataConstructorValidatesVolume) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, ElementAccessRowMajor) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 2), 3.0);
  EXPECT_EQ(t.at(1, 0), 4.0);
  t.at(1, 1) = 42.0;
  EXPECT_EQ(t[4], 42.0);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.at(2, 1), 6.0);
  EXPECT_THROW(t.reshape({4, 2}), Error);
}

TEST(Tensor, RowSpanViewsWithoutCopy) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  auto row = t.row(1);
  row[0] = -4.0;
  EXPECT_EQ(t.at(1, 0), -4.0);
}

TEST(Tensor, RandnReproducibleFromSeed) {
  Rng a(5), b(5);
  const Tensor x = Tensor::randn({3, 3}, a);
  const Tensor y = Tensor::randn({3, 3}, b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], y[i]);
}

TEST(Tensor, FullFillsValue) {
  const Tensor t = Tensor::full({4}, 2.5);
  for (double v : t.flat()) EXPECT_EQ(v, 2.5);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).shape_string(), "[2x3]");
}

TEST(Ops, MatmulMatchesHandComputed) {
  const Tensor a({2, 2}, {1, 2, 3, 4});
  const Tensor b({2, 2}, {5, 6, 7, 8});
  const Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0);
  EXPECT_EQ(c.at(0, 1), 22.0);
  EXPECT_EQ(c.at(1, 0), 43.0);
  EXPECT_EQ(c.at(1, 1), 50.0);
}

TEST(Ops, MatmulRejectsBadInnerDims) {
  const Tensor a({2, 3});
  const Tensor b({2, 3});
  EXPECT_THROW((void)ops::matmul(a, b), Error);
}

TEST(Ops, TransposedProductsAgreeWithExplicitTranspose) {
  Rng rng(2);
  const Tensor a = Tensor::randn({4, 3}, rng);
  const Tensor b = Tensor::randn({5, 3}, rng);
  const Tensor expect_nt = ops::matmul(a, ops::transpose(b));
  const Tensor got_nt = ops::matmul_nt(a, b);
  for (std::size_t i = 0; i < expect_nt.size(); ++i) {
    EXPECT_NEAR(got_nt[i], expect_nt[i], 1e-12);
  }

  const Tensor c = Tensor::randn({4, 6}, rng);
  const Tensor expect_tn = ops::matmul(ops::transpose(a), c);
  const Tensor got_tn = ops::matmul_tn(a, c);
  for (std::size_t i = 0; i < expect_tn.size(); ++i) {
    EXPECT_NEAR(got_tn[i], expect_tn[i], 1e-12);
  }
}

TEST(Ops, MatvecMatchesMatmul) {
  Rng rng(3);
  const Tensor a = Tensor::randn({3, 4}, rng);
  Tensor x = Tensor::randn({4}, rng);
  const Tensor y = ops::matvec(a, x);
  Tensor xm = x;
  xm.reshape({4, 1});
  const Tensor ym = ops::matmul(a, xm);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], ym[i], 1e-12);
}

TEST(Ops, AxpyAndElementwise) {
  Tensor x({3}, {1, 2, 3});
  Tensor y({3}, {10, 20, 30});
  ops::axpy(2.0, x, y);
  EXPECT_EQ(y[0], 12.0);
  EXPECT_EQ(y[2], 36.0);

  const Tensor s = ops::add(x, x);
  EXPECT_EQ(s[1], 4.0);
  const Tensor d = ops::sub(y, x);
  EXPECT_EQ(d[0], 11.0);
  const Tensor h = ops::hadamard(x, x);
  EXPECT_EQ(h[2], 9.0);
}

TEST(Ops, AddRowBiasBroadcasts) {
  Tensor t({2, 2}, {1, 1, 1, 1});
  const Tensor bias({2}, {5, 7});
  ops::add_row_bias(t, bias);
  EXPECT_EQ(t.at(0, 0), 6.0);
  EXPECT_EQ(t.at(1, 1), 8.0);
}

TEST(Ops, DotNormSumMax) {
  const Tensor x({3}, {3, 4, 0});
  EXPECT_DOUBLE_EQ(ops::dot(x.flat(), x.flat()), 25.0);
  EXPECT_DOUBLE_EQ(ops::norm2(x.flat()), 5.0);
  EXPECT_DOUBLE_EQ(ops::sum(x), 7.0);
  const Tensor y({3}, {-9, 4, 0});
  EXPECT_DOUBLE_EQ(ops::max_abs(y), 9.0);
}

TEST(Ops, MatmulCountsFlops) {
  FlopCounter::instance().reset();
  FlopRegion region;
  const Tensor a({4, 5});
  const Tensor b({5, 6});
  (void)ops::matmul(a, b);
  EXPECT_EQ(region.delta().flops, 2u * 4 * 5 * 6);
}

TEST(Ops, TransposeRoundTrip) {
  Rng rng(4);
  const Tensor a = Tensor::randn({3, 5}, rng);
  const Tensor att = ops::transpose(ops::transpose(a));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], att[i]);
}

// ------------------------------------------------------------ blocked GEMM

/// Restores the default kernel selection after each test in the battery.
class GemmKernels : public ::testing::Test {
 protected:
  void TearDown() override { ops::set_gemm_impl(ops::GemmImpl::Fast); }

  static void expect_close(const Tensor& got, const Tensor& want, double tol) {
    ASSERT_EQ(got.size(), want.size());
    double scale = 1.0;
    for (std::size_t i = 0; i < want.size(); ++i) {
      scale = std::max(scale, std::abs(want[i]));
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], tol * scale) << "at flat index " << i;
    }
  }
};

// Shapes chosen to straddle every tiling boundary: 1-row/1-col products,
// sizes around the 4x8 microtile, the 64-row MC block, and (via k = 300)
// the 256-deep KC panel split.
TEST_F(GemmKernels, MatchesNaiveReferenceAcrossShapes) {
  const std::size_t dims[] = {1, 3, 5, 17, 33, 65, 97};
  Rng rng(11);
  for (std::size_t m : dims) {
    for (std::size_t n : dims) {
      for (std::size_t k : {std::size_t{1}, std::size_t{7}, std::size_t{300}}) {
        const Tensor a = Tensor::randn({m, k}, rng);
        const Tensor b = Tensor::randn({k, n}, rng);
        const Tensor bt = ops::ref::transpose(b);   // (n x k)
        const Tensor at = ops::ref::transpose(a);   // (k x m)
        ops::set_gemm_impl(ops::GemmImpl::Fast);
        const Tensor c = ops::matmul(a, b);
        const Tensor c_nt = ops::matmul_nt(a, bt);
        const Tensor c_tn = ops::matmul_tn(at, b);
        const Tensor want = ops::ref::matmul(a, b);
        const double tol = 1e-13 * static_cast<double>(k);
        expect_close(c, want, tol);
        expect_close(c_nt, want, tol);
        expect_close(c_tn, want, tol);
        expect_close(ops::transpose(a), at, 0.0);
      }
    }
  }
}

TEST_F(GemmKernels, NaiveImplSelectable) {
  Rng rng(12);
  const Tensor a = Tensor::randn({9, 31}, rng);
  const Tensor b = Tensor::randn({31, 6}, rng);
  ops::set_gemm_impl(ops::GemmImpl::Naive);
  EXPECT_EQ(ops::gemm_impl(), ops::GemmImpl::Naive);
  const Tensor naive = ops::matmul(a, b);
  const Tensor want = ops::ref::matmul(a, b);
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(naive[i], want[i]);
}

// The determinism contract: bitwise-identical output for any thread count.
// Both GEMM paths (small and blocked) are covered — 40x48x24 stays on the
// small path, 80x96x300 packs and splits KC panels.
TEST_F(GemmKernels, BitwiseDeterministicAcrossThreadCounts) {
  Rng rng(13);
  struct Shape { std::size_t m, k, n; };
  for (const auto& s : {Shape{40, 24, 48}, Shape{80, 300, 96}}) {
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    const Tensor bias = Tensor::randn({s.n}, rng);
    const int saved = omp_get_max_threads();
    std::vector<Tensor> outs;
    for (int threads : {1, 2, 8}) {
      omp_set_num_threads(threads);
      outs.push_back(ops::matmul_epilogue(a, b, &bias, ops::EpilogueAct::Relu));
    }
    omp_set_num_threads(saved);
    for (std::size_t i = 1; i < outs.size(); ++i) {
      ASSERT_EQ(0, std::memcmp(outs[0].data(), outs[i].data(),
                               outs[0].size() * sizeof(double)))
          << "thread-count variant " << i << " differs for " << s.m << "x"
          << s.k << "x" << s.n;
    }
  }
}

// Row i of a batched product must equal the same row computed alone — the
// bitwise guarantee PR 1's batched serving runtime asserts. Exercises both
// a small-path and a KC-split shape.
TEST_F(GemmKernels, BatchRowEqualsSingleRowProduct) {
  Rng rng(14);
  for (std::size_t k : {std::size_t{24}, std::size_t{300}}) {
    const std::size_t m = 7, n = 33;
    const Tensor a = Tensor::randn({m, k}, rng);
    const Tensor b = Tensor::randn({k, n}, rng);
    const Tensor bias = Tensor::randn({n}, rng);
    const Tensor batch = ops::matmul_epilogue(a, b, &bias, ops::EpilogueAct::Tanh);
    for (std::size_t i = 0; i < m; ++i) {
      Tensor row({1, k});
      std::memcpy(row.data(), a.data() + i * k, k * sizeof(double));
      const Tensor single = ops::matmul_epilogue(row, b, &bias,
                                                 ops::EpilogueAct::Tanh);
      ASSERT_EQ(0, std::memcmp(single.data(), batch.data() + i * n,
                               n * sizeof(double)))
          << "row " << i << " of batch differs from 1-row product (k=" << k << ")";
    }
  }
}

// Fused epilogue == unfused matmul + add_row_bias + pointwise activation,
// bitwise (the epilogue applies after the identical accumulation).
TEST_F(GemmKernels, FusedEpilogueBitwiseEqualsUnfused) {
  Rng rng(15);
  for (std::size_t k : {std::size_t{24}, std::size_t{300}}) {
    const Tensor a = Tensor::randn({19, k}, rng);
    const Tensor b = Tensor::randn({k, 41}, rng);
    const Tensor bias = Tensor::randn({41}, rng);
    for (auto act : {ops::EpilogueAct::None, ops::EpilogueAct::Relu,
                     ops::EpilogueAct::Tanh, ops::EpilogueAct::Sigmoid,
                     ops::EpilogueAct::LeakyRelu}) {
      const Tensor fused = ops::matmul_epilogue(a, b, &bias, act);
      Tensor unfused = ops::matmul(a, b);
      ops::add_row_bias(unfused, bias);
      for (double& v : unfused.flat()) v = ops::epilogue_apply(act, v);
      ASSERT_EQ(0, std::memcmp(fused.data(), unfused.data(),
                               fused.size() * sizeof(double)));
    }
  }
}

TEST_F(GemmKernels, DegenerateAndBiaslessShapes) {
  Rng rng(16);
  // k == 0: product is all zeros; epilogue still applies.
  const Tensor a0({3, 0});
  const Tensor b0({0, 4});
  const Tensor bias = Tensor::randn({4}, rng);
  const Tensor c0 = ops::matmul_epilogue(a0, b0, &bias, ops::EpilogueAct::None);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(c0.at(0, j), bias[j]);
    EXPECT_EQ(c0.at(2, j), bias[j]);
  }
  // No bias, no activation: plain product.
  const Tensor a = Tensor::randn({2, 5}, rng);
  const Tensor b = Tensor::randn({5, 3}, rng);
  const Tensor c = ops::matmul_epilogue(a, b, nullptr);
  const Tensor want = ops::ref::matmul(a, b);
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_NEAR(c[i], want[i], 1e-12);
}

TEST_F(GemmKernels, EpilogueCountsBiasAndActivationFlops) {
  Rng rng(17);
  const Tensor a = Tensor::randn({4, 5}, rng);
  const Tensor b = Tensor::randn({5, 6}, rng);
  const Tensor bias = Tensor::randn({6}, rng);
  FlopRegion region;
  (void)ops::matmul_epilogue(a, b, &bias, ops::EpilogueAct::Relu);
  // gemm 2mnk + bias mn + activation mn
  EXPECT_EQ(region.delta().flops, 2u * 4 * 5 * 6 + 4 * 6 + 4 * 6);
}

}  // namespace
}  // namespace ahn
