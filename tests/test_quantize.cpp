// Tests for the calibrated int8 inference path (docs/PERFORMANCE.md —
// "Calibrated int8 inference"): quantize/dequantize round-trip bounds, the
// zero-range identity guard, calibrator determinism across runs and OpenMP
// thread counts, per-shape kernel-selector cache behaviour, bitwise batch
// invariance of quantized serving, precision switching, the NAS precision
// axis, and quantized candidates riding the shadow/canary rollout.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/rng.hpp"
#include "nas/search_task.hpp"
#include "nn/quantization.hpp"
#include "nn/topology.hpp"
#include "nn/train.hpp"
#include "runtime/deployment.hpp"
#include "runtime/orchestrator.hpp"
#include "runtime/rollout.hpp"
#include "tensor/kernel_select.hpp"
#include "tensor/quantize.hpp"

namespace ahn {
namespace {

// ------------------------------------------------------------ QuantParams

TEST(QuantParams, RoundTripWithinHalfScale) {
  const quant::QuantParams q = quant::params_from_range(-3.0, 5.0);
  ASSERT_GT(q.scale, 0.0);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    const double back = quant::dequantize_value(quant::quantize_value(x, q), q);
    EXPECT_LE(std::abs(back - x), 0.5 * q.scale + 1e-12) << "x=" << x;
  }
}

TEST(QuantParams, ZeroIsExactlyRepresentable) {
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {-3.0, 5.0}, {0.5, 9.0}, {-7.0, -0.25}}) {
    const quant::QuantParams q = quant::params_from_range(lo, hi);
    EXPECT_EQ(quant::dequantize_value(quant::quantize_value(0.0, q), q), 0.0)
        << "[" << lo << "," << hi << "]";
  }
}

TEST(QuantParams, DegenerateRangesReturnIdentity) {
  EXPECT_TRUE(quant::params_from_range(0.0, 0.0).is_identity());
  EXPECT_TRUE(quant::params_from_range(2.0, 2.0).is_identity() ||
              quant::params_from_range(2.0, 2.0).scale > 0.0);  // widened to [0,2]
  const double nan = std::nan("");
  EXPECT_TRUE(quant::params_from_range(nan, 1.0).is_identity());
  EXPECT_TRUE(quant::params_from_range(-1.0, nan).is_identity());
  EXPECT_TRUE(quant::params_symmetric(0.0).is_identity());
  EXPECT_TRUE(quant::params_symmetric(nan).is_identity());
  EXPECT_TRUE(quant::params_symmetric(-1.0).is_identity());
}

// Regression (satellite): a constant/zero-range tensor must quantize with
// identity scale — no division by zero, finite outputs everywhere.
TEST(QuantParams, ConstantZeroTensorQuantizesFinite) {
  quant::Calibrator calib;
  const Tensor zeros = Tensor::zeros({8, 16});
  calib.observe(zeros);
  const quant::QuantParams q = calib.params({});
  EXPECT_TRUE(q.is_identity());
  std::vector<std::int8_t> out(zeros.size());
  quant::quantize(zeros.flat(), q, out.data());
  for (const std::int8_t v : out) EXPECT_EQ(v, 0);
  EXPECT_TRUE(std::isfinite(quant::dequantize_value(out[0], q)));
}

TEST(QuantParams, AllZeroWeightLayerServesFiniteZeros) {
  Rng rng(3);
  nn::DenseLayer layer(6, 4, rng);
  layer.mutable_weights().fill(0.0);
  nn::QuantizationOptions opts;
  opts.probe_kernels = false;  // force the int8 kernel path
  layer.set_quantized(nn::build_quantized_dense(
      layer.weights(), quant::params_from_range(-1.0, 1.0), opts));
  Tensor x({2, 6});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.3;
  const Tensor y = layer.forward(x, /*training=*/false);
  for (const double v : y.flat()) {
    ASSERT_TRUE(std::isfinite(v));
    EXPECT_EQ(v, 0.0);
  }
}

// ------------------------------------------------------------- Calibrator

TEST(Calibrator, DeterministicAcrossRuns) {
  Rng rng(11);
  std::vector<double> stream(4096);
  for (auto& v : stream) v = rng.gaussian() * 2.5;
  quant::Calibrator a, b;
  a.observe(stream);
  b.observe(stream);
  for (const auto method : {quant::CalibMethod::MinMax, quant::CalibMethod::Percentile,
                            quant::CalibMethod::Entropy}) {
    quant::CalibOptions o;
    o.method = method;
    const quant::QuantParams pa = a.params(o), pb = b.params(o);
    EXPECT_EQ(pa.scale, pb.scale) << quant::calib_method_name(method);
    EXPECT_EQ(pa.zero_point, pb.zero_point) << quant::calib_method_name(method);
  }
}

TEST(Calibrator, PercentileClipsOutliers) {
  Rng rng(13);
  std::vector<double> stream(9999);
  for (auto& v : stream) v = rng.uniform(-1.0, 1.0);
  stream.push_back(1000.0);  // one wild outlier
  quant::Calibrator c;
  c.observe(stream);
  quant::CalibOptions minmax{quant::CalibMethod::MinMax, 99.9, false};
  quant::CalibOptions pct{quant::CalibMethod::Percentile, 99.9, false};
  const double s_minmax = c.params(minmax).scale;
  const double s_pct = c.params(pct).scale;
  EXPECT_GT(s_minmax, 100.0 * s_pct);  // outlier inflates minmax only
  EXPECT_LT(s_pct, 0.05);              // ~2/255, histogram-bin resolution
}

TEST(Calibrator, EntropyRangeWithinObserved) {
  Rng rng(17);
  std::vector<double> stream(8192);
  for (auto& v : stream) v = rng.gaussian();
  quant::Calibrator c;
  c.observe(stream);
  quant::CalibOptions o;
  o.method = quant::CalibMethod::Entropy;
  const quant::QuantParams q = c.params(o);
  ASSERT_GT(q.scale, 0.0);
  // Clip threshold never exceeds the observed extent.
  EXPECT_LE(q.scale * 255.0, (c.max() - c.min()) + 1e-9);
}

TEST(Calibrator, NonFiniteSamplesIgnored) {
  quant::Calibrator c;
  const double inf = std::numeric_limits<double>::infinity();
  c.observe(std::vector<double>{1.0, -2.0, inf, -inf, std::nan(""), 0.5});
  EXPECT_EQ(c.count(), 3u);
  EXPECT_EQ(c.min(), -2.0);
  EXPECT_EQ(c.max(), 1.0);
  EXPECT_GT(c.params({}).scale, 0.0);
  EXPECT_TRUE(std::isfinite(c.params({}).scale));
}

// Calibration + quantized install must yield bitwise-identical networks
// regardless of the OpenMP thread count running the forwards.
TEST(Calibrator, QuantizedNetworkIdenticalAcrossThreadCounts) {
#ifdef _OPENMP
  Rng data_rng(23);
  Tensor calib({64, 12});
  for (std::size_t i = 0; i < calib.size(); ++i) calib[i] = data_rng.gaussian();
  Tensor probe({32, 12});
  for (std::size_t i = 0; i < probe.size(); ++i) probe[i] = data_rng.gaussian();

  auto build = [&] {
    Rng rng(29);
    nn::TopologySpec spec;
    spec.num_layers = 2;
    spec.hidden_units = 16;
    return nn::build_surrogate(spec, 12, 3, rng);
  };
  nn::QuantizationOptions opts;
  opts.probe_kernels = false;  // probe timing is allowed to vary; params are not

  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  nn::Network net1 = build();
  nn::quantize_network(net1, calib, opts);
  const Tensor out1 = net1.predict(probe);

  omp_set_num_threads(4);
  nn::Network net4 = build();
  nn::quantize_network(net4, calib, opts);
  const Tensor out4 = net4.predict(probe);
  omp_set_num_threads(saved);

  ASSERT_EQ(out1.size(), out4.size());
  EXPECT_EQ(std::memcmp(out1.data(), out4.data(), out1.size() * sizeof(double)), 0);
#else
  GTEST_SKIP() << "OpenMP not enabled";
#endif
}

// ---------------------------------------------------------- KernelSelector

TEST(KernelSelector, CachesProbesAndCountsHits) {
  auto& sel = ops::KernelSelector::instance();
  sel.clear();
  sel.set_probe_reps(1);
  const ops::KernelChoice first = sel.choose(4, 8, 16, true);
  EXPECT_EQ(sel.probes(), 1u);
  EXPECT_EQ(sel.hits(), 0u);
  EXPECT_EQ(sel.cache_size(), 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sel.choose(4, 8, 16, true), first);  // cached answer is stable
  }
  EXPECT_EQ(sel.probes(), 1u);
  EXPECT_EQ(sel.hits(), 5u);
  sel.choose(4, 8, 16, false);  // int8 eligibility is part of the key
  EXPECT_EQ(sel.probes(), 2u);
  EXPECT_EQ(sel.cache_size(), 2u);
  sel.clear();
  EXPECT_EQ(sel.cache_size(), 0u);
  EXPECT_EQ(sel.probes(), 0u);
}

TEST(KernelSelector, Fp32OnlyWhenInt8Disallowed) {
  auto& sel = ops::KernelSelector::instance();
  sel.clear();
  sel.set_probe_reps(1);
  const ops::KernelChoice c = sel.choose(8, 8, 8, false);
  EXPECT_FALSE(ops::kernel_is_int8(c));
}

// Both int8 kernel variants compute the identical int32 accumulation.
TEST(Int8Gemm, DotAndRowVariantsBitwiseEqual) {
  Rng rng(31);
  const std::size_t m = 5, n = 7, k = 23;
  std::vector<double> a(m * k), w(k * n), bias(n);
  for (auto& v : a) v = rng.uniform(-2.0, 2.0);
  for (auto& v : w) v = rng.uniform(-1.0, 1.0);
  for (auto& v : bias) v = rng.uniform(-0.5, 0.5);
  const quant::QuantParams aq = quant::params_from_range(-2.0, 2.0);
  const quant::QuantParams wq = quant::params_symmetric(1.0);
  std::vector<std::int16_t> a16(m * k), w16(k * n), wt16(n * k);
  quant::quantize(a, aq, a16.data());
  quant::quantize(w, wq, w16.data());
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) wt16[j * k + p] = w16[p * n + j];
  }
  std::vector<std::int32_t> colsum(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t p = 0; p < k; ++p) colsum[j] += wt16[j * k + p];
  }
  std::vector<double> dot(m * n), row(m * n);
  quant::i8_gemm(quant::Int8Kernel::Dot, m, n, k, a16.data(), wt16.data(), w16.data(),
                 colsum.data(), aq, wq, bias.data(), ops::EpilogueAct::Relu, dot.data());
  quant::i8_gemm(quant::Int8Kernel::Row, m, n, k, a16.data(), wt16.data(), w16.data(),
                 colsum.data(), aq, wq, bias.data(), ops::EpilogueAct::Relu, row.data());
  EXPECT_EQ(std::memcmp(dot.data(), row.data(), dot.size() * sizeof(double)), 0);
}

// ------------------------------------------------- Quantized dense serving

nn::Network small_net(std::uint64_t seed, std::size_t in = 10, std::size_t out = 3) {
  Rng rng(seed);
  nn::TopologySpec spec;
  spec.num_layers = 2;
  spec.hidden_units = 24;
  return nn::build_surrogate(spec, in, out, rng);
}

Tensor gaussian_batch(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t({rows, cols});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.gaussian();
  return t;
}

TEST(QuantizedNetwork, CloseToFp32OnCalibratedDomain) {
  nn::Network net = small_net(41);
  const Tensor calib = gaussian_batch(128, 10, 42);
  const Tensor x = gaussian_batch(32, 10, 43);
  const Tensor fp = net.predict(x);
  nn::QuantizationOptions opts;
  opts.probe_kernels = false;
  EXPECT_EQ(nn::quantize_network(net, calib, opts), 3u);  // 2 hidden + 1 out
  const Tensor q = net.predict(x);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < fp.size(); ++i) {
    num += (q[i] - fp[i]) * (q[i] - fp[i]);
    den += fp[i] * fp[i];
  }
  EXPECT_LT(std::sqrt(num / den), 0.1) << "relative L2 error of int8 vs fp32";
}

// Quantized batched serving must equal quantized per-row inference bitwise.
TEST(QuantizedNetwork, BitwiseStableAcrossBatchSizes) {
  nn::Network net = small_net(47);
  nn::QuantizationOptions opts;
  opts.probe_kernels = false;
  nn::quantize_network(net, gaussian_batch(96, 10, 48), opts);

  const Tensor batch = gaussian_batch(32, 10, 49);
  const Tensor full = net.predict(batch);
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    Tensor one({1, batch.cols()});
    std::copy(batch.row(r).begin(), batch.row(r).end(), one.row(0).begin());
    const Tensor single = net.predict(one);
    ASSERT_EQ(single.size(), full.cols());
    EXPECT_EQ(std::memcmp(single.data(), full.row(r).data(),
                          full.cols() * sizeof(double)),
              0)
        << "row " << r;
  }
}

TEST(QuantizedNetwork, PrecisionSwitchRoundTrips) {
  nn::Network net = small_net(53);
  const Tensor x = gaussian_batch(8, 10, 54);
  const Tensor fp_before = net.predict(x);
  EXPECT_EQ(net.precision(), nn::Precision::kFp32);

  nn::QuantizationOptions opts;
  opts.probe_kernels = false;
  nn::quantize_network(net, gaussian_batch(64, 10, 55), opts);
  EXPECT_EQ(net.precision(), nn::Precision::kInt8);
  const Tensor q1 = net.predict(x);

  EXPECT_GT(net.set_precision(nn::Precision::kFp32), 0u);
  const Tensor fp_after = net.predict(x);
  EXPECT_EQ(std::memcmp(fp_before.data(), fp_after.data(),
                        fp_before.size() * sizeof(double)),
            0);

  EXPECT_GT(net.set_precision(nn::Precision::kInt8), 0u);
  const Tensor q2 = net.predict(x);
  EXPECT_EQ(std::memcmp(q1.data(), q2.data(), q1.size() * sizeof(double)), 0);
}

TEST(QuantizedNetwork, CopyCarriesQuantizedPayload) {
  nn::Network net = small_net(59);
  nn::QuantizationOptions opts;
  opts.probe_kernels = false;
  nn::quantize_network(net, gaussian_batch(64, 10, 60), opts);
  const Tensor x = gaussian_batch(4, 10, 61);
  const Tensor orig = net.predict(x);

  const nn::Network copy = net;  // registry/cluster fan-out path
  EXPECT_EQ(copy.precision(), nn::Precision::kInt8);
  const Tensor replicated = copy.predict(x);
  EXPECT_EQ(std::memcmp(orig.data(), replicated.data(), orig.size() * sizeof(double)),
            0);
}

// Regression (tentpole bugfix): load_weights used to leave the calibrated
// int8 payloads installed, so a weight refresh kept serving codes quantized
// from the OLD weights. Any mutable weight access must drop the payload.
TEST(QuantizedNetwork, LoadWeightsInvalidatesStaleInt8Payload) {
  nn::Network net = small_net(71);
  nn::QuantizationOptions opts;
  opts.probe_kernels = false;
  nn::quantize_network(net, gaussian_batch(64, 10, 72), opts);
  ASSERT_EQ(net.precision(), nn::Precision::kInt8);

  // A same-architecture network with different weights (the registry's
  // version-refresh path).
  nn::Network donor = small_net(73);
  std::stringstream weights;
  donor.save_weights(weights);
  net.load_weights(weights);

  // No retained calibration: the net must fall back to fp32 — never serve
  // old-weight codes — and track the donor's outputs bitwise.
  EXPECT_EQ(net.precision(), nn::Precision::kFp32);
  const Tensor x = gaussian_batch(8, 10, 74);
  const Tensor got = net.predict(x);
  const Tensor want = donor.predict(x);
  EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size() * sizeof(double)), 0);
}

// Opt-in retention: load_weights re-runs the exact quantize_network install,
// so serving after a weight refresh is bitwise-equal to a fresh calibration.
TEST(QuantizedNetwork, LoadWeightsAutoRequantizesWithRetainedCalibration) {
  const Tensor calib = gaussian_batch(64, 10, 76);
  nn::QuantizationOptions opts;
  opts.probe_kernels = false;
  opts.retain_calibration = true;

  nn::Network net = small_net(75);
  nn::quantize_network(net, calib, opts);
  ASSERT_TRUE(net.has_retained_calibration());

  nn::Network donor = small_net(77);
  std::stringstream weights;
  donor.save_weights(weights);
  net.load_weights(weights);
  EXPECT_EQ(net.precision(), nn::Precision::kInt8);

  // Reference: the donor weights quantized from scratch on the same batch.
  nn::Network fresh = donor;
  nn::quantize_network(fresh, calib, opts);
  const Tensor x = gaussian_batch(16, 10, 78);
  const Tensor got = net.predict(x);
  const Tensor want = fresh.predict(x);
  EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size() * sizeof(double)), 0);
}

TEST(QuantizedNetwork, MutableWeightAccessDropsPayloadAndBumpsGeneration) {
  nn::Network net = small_net(79);
  auto* dense = dynamic_cast<nn::DenseLayer*>(&net.layer(0));
  ASSERT_NE(dense, nullptr);
  const std::uint64_t gen0 = dense->weights_generation();

  nn::QuantizationOptions opts;
  opts.probe_kernels = false;
  nn::quantize_network(net, gaussian_batch(64, 10, 80), opts);
  ASSERT_TRUE(dense->has_quantized());

  dense->mutable_weights()[0] += 0.5;
  EXPECT_FALSE(dense->has_quantized());
  EXPECT_EQ(dense->precision(), nn::Precision::kFp32);
  EXPECT_GT(dense->weights_generation(), gen0);
}

// Saving is a read-only walk: it must not perturb the quantized payloads.
TEST(QuantizedNetwork, SaveWeightsKeepsServingQuantized) {
  nn::Network net = small_net(81);
  nn::QuantizationOptions opts;
  opts.probe_kernels = false;
  nn::quantize_network(net, gaussian_batch(64, 10, 82), opts);
  const Tensor x = gaussian_batch(4, 10, 83);
  const Tensor before = net.predict(x);

  std::stringstream ss;
  net.save_weights(ss);
  EXPECT_EQ(net.precision(), nn::Precision::kInt8);
  const Tensor after = net.predict(x);
  EXPECT_EQ(std::memcmp(before.data(), after.data(), before.size() * sizeof(double)),
            0);
}

TEST(QuantizedNetwork, TrainingDropsToFp32MasterWeights) {
  nn::Network net = small_net(67);
  nn::QuantizationOptions opts;
  opts.probe_kernels = false;
  nn::quantize_network(net, gaussian_batch(64, 10, 68), opts);

  nn::Dataset data;
  data.x = gaussian_batch(32, 10, 69);
  data.y = gaussian_batch(32, 3, 70);
  nn::TrainOptions topt;
  topt.epochs = 2;
  // Must not trip the int8-cannot-train guard: train_surrogate forces fp32.
  const nn::TrainedSurrogate ts = nn::train_surrogate(net, data, topt);
  EXPECT_EQ(ts.net.precision(), nn::Precision::kFp32);
  EXPECT_GT(ts.result.epochs_run, 0u);
}

// ------------------------------------------------------- NAS precision axis

TEST(NasPrecision, EvaluateCandidatePicksInt8WhenFeasible) {
  nas::SearchTask task;
  task.data.x = gaussian_batch(48, 6, 71);
  task.data.y = gaussian_batch(48, 2, 72);
  task.evaluate_quality = [](const nas::PipelineModel&) { return 0.05; };
  task.quality_bound = 0.1;
  task.train.epochs = 2;
  task.search_precision = true;
  task.quant.probe_kernels = false;

  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  const nas::PipelineModel pm =
      nas::evaluate_candidate(task, spec, nullptr, task.data, Rng(73));
  // Both modes hit the bound; int8 must win on modeled time.
  EXPECT_EQ(pm.precision, nn::Precision::kInt8);
  EXPECT_EQ(pm.surrogate.net.precision(), nn::Precision::kInt8);
}

TEST(NasPrecision, StaysFp32WhenQuantizedInfeasible) {
  nas::SearchTask task;
  task.data.x = gaussian_batch(48, 6, 74);
  task.data.y = gaussian_batch(48, 2, 75);
  // Quality oracle that rejects quantized candidates only.
  task.evaluate_quality = [](const nas::PipelineModel& pm) {
    return pm.precision == nn::Precision::kInt8 ? 0.9 : 0.05;
  };
  task.quality_bound = 0.1;
  task.train.epochs = 2;
  task.search_precision = true;
  task.quant.probe_kernels = false;

  nn::TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  const nas::PipelineModel pm =
      nas::evaluate_candidate(task, spec, nullptr, task.data, Rng(76));
  EXPECT_EQ(pm.precision, nn::Precision::kFp32);
  EXPECT_EQ(pm.surrogate.net.precision(), nn::Precision::kFp32);
}

TEST(NasPrecision, TrainFnEmitsQuantizedCandidate) {
  nn::Dataset data;
  data.x = gaussian_batch(40, 6, 77);
  data.y = gaussian_batch(40, 2, 78);
  nn::TrainOptions topt;
  topt.epochs = 2;
  nn::QuantizationOptions qopts;
  qopts.probe_kernels = false;
  const auto train_fn = nas::make_precision_train_fn(topt, qopts, /*quality_bound=*/10.0);

  nn::TrainedSurrogate active = nn::train_surrogate(small_net(79, 6, 2), data, topt);
  const nn::TrainedSurrogate cand = train_fn(active, data);
  EXPECT_EQ(cand.net.precision(), nn::Precision::kInt8);
}

// -------------------------------------------- Rollout of quantized models

constexpr std::size_t kIn = 4, kOut = 2;

Tensor teacher_row(const Tensor& in) {
  Tensor out({1, kOut});
  double sum = 0.0, alt = 0.0;
  for (std::size_t i = 0; i < kIn; ++i) {
    sum += in[i];
    alt += (i % 2 == 0 ? 1.0 : -1.0) * in[i];
  }
  out[0] = 0.5 * sum;
  out[1] = 0.25 * alt;
  return out;
}

/// Hand-built exact linear model: fp32 output equals the teacher, so the
/// quantized copy sits within quantization error of it.
std::shared_ptr<runtime::ServableModel> exact_model() {
  Rng rng(83);
  auto dense = std::make_unique<nn::DenseLayer>(kIn, kOut, rng);
  Tensor& w = dense->mutable_weights();
  for (std::size_t i = 0; i < kIn; ++i) {
    w.at(i, 0) = 0.5;
    w.at(i, 1) = (i % 2 == 0 ? 0.25 : -0.25);
  }
  dense->mutable_bias().fill(0.0);
  nn::Network net;
  net.add(std::move(dense));
  auto m = std::make_shared<runtime::ServableModel>();
  m->infer_ops = net.inference_cost(1);
  m->surrogate.net = std::move(net);
  m->qoi_check = [](const Tensor& in, const Tensor& out) {
    const Tensor want = teacher_row(in);
    double err = 0.0, den = 0.0;
    for (std::size_t i = 0; i < kOut; ++i) {
      err += (out[i] - want[i]) * (out[i] - want[i]);
      den += want[i] * want[i];
    }
    return std::sqrt(err) <= 0.2 * std::max(1.0, std::sqrt(den));
  };
  return m;
}

runtime::OrchestratorOptions inline_opts() {
  runtime::OrchestratorOptions opts;
  opts.max_batch = 1;
  opts.batch_delay_seconds = 0.0;
  return opts;
}

runtime::RolloutOptions tiny_rollout() {
  runtime::RolloutOptions o;
  o.shadow_rows = 4;
  o.shadow_margin = 0.0;
  o.canary_rows = 4;
  o.canary_min_samples = 2;
  o.canary_fraction = 1.0;
  o.canary_max_miss = 0.25;
  o.stage_timeout_seconds = 60.0;
  return o;
}

Tensor request_row(Rng& rng) {
  Tensor row({1, kIn});
  for (std::size_t i = 0; i < kIn; ++i) row[i] = rng.uniform(-1.0, 1.0);
  return row;
}

TEST(QuantizedRollout, CalibratedCandidatePromotes) {
  runtime::Orchestrator orc(runtime::DeviceModel{}, inline_opts());
  orc.set_model("m", exact_model());

  Rng rng(89);
  Tensor calib({64, kIn});
  for (std::size_t i = 0; i < calib.size(); ++i) calib[i] = rng.uniform(-1.0, 1.0);
  nn::QuantizationOptions qopts;
  qopts.probe_kernels = false;
  auto cand = std::make_shared<runtime::ServableModel>(
      runtime::quantized_servable(*exact_model(), calib, qopts));
  ASSERT_EQ(cand->surrogate.net.precision(), nn::Precision::kInt8);

  const std::uint64_t v2 = orc.install_candidate("m", cand, nullptr, "quantize");
  ASSERT_TRUE(orc.begin_rollout("m", v2, tiny_rollout()).is_ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(orc.run_model_batched("m", request_row(rng)).get().is_ok());
  }
  const auto snap = orc.rollout_progress("m");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, runtime::RolloutState::kPromoted);
  EXPECT_EQ(orc.registry().active_id("m"), v2);
  // The promoted serving path is now int8.
  EXPECT_EQ(orc.active_model("m")->model->surrogate.net.precision(),
            nn::Precision::kInt8);
}

TEST(QuantizedRollout, MisCalibratedCandidateRollsBack) {
  runtime::Orchestrator orc(runtime::DeviceModel{}, inline_opts());
  orc.set_model("m", exact_model());

  // Deliberately mis-calibrated: activation scale 1000x too large crushes
  // every input to the zero code, so outputs are garbage.
  auto bad = std::make_shared<runtime::ServableModel>(*exact_model());
  nn::QuantizationOptions qopts;
  qopts.probe_kernels = false;
  auto* dense = dynamic_cast<nn::DenseLayer*>(&bad->surrogate.net.layer(0));
  ASSERT_NE(dense, nullptr);
  dense->set_quantized(nn::build_quantized_dense(
      dense->weights(), quant::QuantParams{1000.0, 0}, qopts));

  const std::uint64_t v2 = orc.install_candidate("m", bad, nullptr, "quantize");
  ASSERT_TRUE(orc.begin_rollout("m", v2, tiny_rollout()).is_ok());
  Rng rng(97);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(orc.run_model_batched("m", request_row(rng)).get().is_ok());
  }
  const auto snap = orc.rollout_progress("m");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, runtime::RolloutState::kRolledBack);
  EXPECT_EQ(orc.registry().active_id("m"), 1u);
  EXPECT_EQ(orc.active_model("m")->model->surrogate.net.precision(),
            nn::Precision::kFp32);
}

// DeploymentPackage::build(..., QuantizeSpec) calibrates inside packaging.
TEST(QuantizedRollout, DeploymentPackageQuantizesInsideBuild) {
  Rng rng(101);
  Tensor training({64, kIn});
  for (std::size_t i = 0; i < training.size(); ++i) training[i] = rng.uniform(-1.0, 1.0);

  runtime::QuantizeSpec spec;
  spec.enabled = true;
  spec.options.probe_kernels = false;
  const runtime::DeploymentPackage pkg = runtime::DeploymentPackage::build(
      "m", *exact_model(), training, spec);
  ASSERT_NE(pkg.model, nullptr);
  EXPECT_EQ(pkg.model->surrogate.net.precision(), nn::Precision::kInt8);
  EXPECT_NE(pkg.reference, nullptr);

  // And the package deploys + serves like any other.
  runtime::Orchestrator orc(runtime::DeviceModel{}, inline_opts());
  orc.deploy(pkg);
  const auto r = orc.run_model_batched("m", request_row(rng)).get();
  ASSERT_TRUE(r.is_ok());
  for (const double v : r.value().flat()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace ahn
