// Tests for the observability layer (docs/OBSERVABILITY.md): histogram
// percentile accuracy against the sorted-sample reference, lock-free
// recording under concurrency, span nesting and cross-thread parenting,
// JSON export well-formedness, and the thread-safety regressions for
// PhaseAccumulator and the logger (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/serving_stats.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "obs/export.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace ahn;

// One log-spaced bucket spans a factor of 10^(12/240); an estimate that is
// "within one bucket" of the reference is within this relative error.
constexpr double kBucketRelWidth = 0.13;

TEST(LatencyHistogram, PercentilesWithinOneBucketOfReference) {
  obs::LatencyHistogram hist;
  Rng rng(42);
  std::vector<double> samples;
  samples.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    // Lognormal-ish latencies spanning ~3 decades around 100us.
    const double v = 100e-6 * std::exp(1.2 * rng.gaussian());
    samples.push_back(v);
    hist.record(v);
  }
  EXPECT_EQ(hist.count(), samples.size());
  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    const double ref = percentile(samples, p);
    const double est = hist.percentile(p);
    EXPECT_NEAR(est, ref, ref * kBucketRelWidth)
        << "p" << p << ": est=" << est << " ref=" << ref;
  }
}

TEST(LatencyHistogram, ExtremesAreExact) {
  obs::LatencyHistogram hist;
  for (const double v : {3.7e-5, 1.1e-4, 9.0e-4, 2.2e-3}) hist.record(v);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 3.7e-5);
  EXPECT_DOUBLE_EQ(hist.percentile(100.0), 2.2e-3);
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.min, 3.7e-5);
  EXPECT_DOUBLE_EQ(snap.max, 2.2e-3);
  EXPECT_NEAR(snap.sum, 3.7e-5 + 1.1e-4 + 9.0e-4 + 2.2e-3, 1e-12);
}

TEST(LatencyHistogram, EmptyAndOutOfRangeValues) {
  obs::LatencyHistogram hist;
  EXPECT_DOUBLE_EQ(hist.percentile(50.0), 0.0);
  hist.record(0.0);                       // below range -> first bucket
  hist.record(1e9);                       // above range -> last bucket
  hist.record(std::nan(""));              // dropped, never corrupts state
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_GE(hist.percentile(50.0), 0.0);
}

TEST(LatencyHistogram, SnapshotsMergeAssociatively) {
  obs::LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record(1e-4);
  for (int i = 0; i < 300; ++i) b.record(4e-3);
  obs::HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 400u);
  EXPECT_DOUBLE_EQ(merged.min, 1e-4);
  EXPECT_DOUBLE_EQ(merged.max, 4e-3);
  // 300 of 400 samples sit at 4e-3, so the median lands in its bucket.
  EXPECT_NEAR(merged.percentile(50.0), 4e-3, 4e-3 * kBucketRelWidth);
}

TEST(LatencyHistogram, ConcurrentRecordWhileSnapshotting) {
  obs::LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const obs::HistogramSnapshot snap = hist.snapshot();
      ASSERT_LE(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
      (void)snap.percentile(99.0);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(1e-5 * static_cast<double>(1 + (i + t) % 50));
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  // Lock-free recording loses nothing: the final count is exact.
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, InstrumentsHaveStableIdentity) {
  obs::MetricsRegistry reg;
  obs::Counter& c1 = reg.counter("events");
  obs::Counter& c2 = reg.counter("events");
  EXPECT_EQ(&c1, &c2);
  c1.increment(3);
  EXPECT_EQ(c2.value(), 3u);

  reg.gauge("depth").set(7.5);
  reg.histogram("lat").record(1e-4);
  const obs::RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("events"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("depth"), 7.5);
  EXPECT_EQ(snap.histograms.at("lat").count, 1u);

  reg.reset();
  EXPECT_EQ(c1.value(), 0u);  // outstanding references survive reset
  c1.increment();
  EXPECT_EQ(reg.snapshot().counters.at("events"), 1u);
}

TEST(MetricsRegistry, ConcurrentGetOrCreateAndIncrement) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.counter("shared").increment();
        reg.histogram("shared.lat").record(2e-4);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.histogram("shared.lat").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Tracer, SpansNestAndRestoreCurrent) {
  obs::Tracer tracer;
  EXPECT_EQ(obs::Tracer::current().span_id, 0u);
  std::uint64_t outer_span = 0, outer_trace = 0;
  {
    obs::Span outer(tracer, "outer");
    outer_span = outer.context().span_id;
    outer_trace = outer.context().trace_id;
    EXPECT_EQ(obs::Tracer::current().span_id, outer_span);
    {
      const obs::Span inner(tracer, "inner");
      EXPECT_EQ(inner.context().trace_id, outer_trace);  // same trace
      EXPECT_NE(inner.context().span_id, outer_span);
      EXPECT_EQ(obs::Tracer::current().span_id, inner.context().span_id);
    }
    EXPECT_EQ(obs::Tracer::current().span_id, outer_span);
  }
  EXPECT_EQ(obs::Tracer::current().span_id, 0u);

  const obs::TracerSnapshot snap = tracer.snapshot();
  ASSERT_EQ(snap.recent.size(), 2u);
  // "inner" finished first; its parent is "outer", whose parent is root (0).
  EXPECT_EQ(snap.recent[0].name, "inner");
  EXPECT_EQ(snap.recent[0].parent_span_id, outer_span);
  EXPECT_EQ(snap.recent[1].name, "outer");
  EXPECT_EQ(snap.recent[1].parent_span_id, 0u);
  EXPECT_EQ(snap.recent[0].trace_id, snap.recent[1].trace_id);
  EXPECT_EQ(snap.aggregates.at("inner").count, 1u);
  EXPECT_GE(snap.aggregates.at("outer").total_seconds,
            snap.aggregates.at("inner").total_seconds);
}

TEST(Tracer, ExplicitParentCrossesThreads) {
  obs::Tracer tracer;
  obs::SpanContext parent;
  {
    const obs::Span root(tracer, "submit");
    parent = root.context();
    std::thread worker([&tracer, parent] {
      const obs::Span child(tracer, "pool_task", parent);
      EXPECT_EQ(child.context().trace_id, parent.trace_id);
    });
    worker.join();
  }
  const obs::TracerSnapshot snap = tracer.snapshot();
  ASSERT_EQ(snap.recent.size(), 2u);
  EXPECT_EQ(snap.recent[0].name, "pool_task");
  EXPECT_EQ(snap.recent[0].trace_id, parent.trace_id);
  EXPECT_EQ(snap.recent[0].parent_span_id, parent.span_id);
}

TEST(Tracer, RingIsBoundedButAggregatesAreNot) {
  obs::Tracer tracer(/*ring_capacity=*/8);
  for (int i = 0; i < 100; ++i) {
    const obs::Span s(tracer, "tick");
  }
  EXPECT_EQ(tracer.spans_recorded(), 100u);
  const obs::TracerSnapshot snap = tracer.snapshot();
  EXPECT_EQ(snap.recent.size(), 8u);  // only the newest 8 survive
  EXPECT_EQ(snap.aggregates.at("tick").count, 100u);
}

TEST(Tracer, ConcurrentSpansKeepExactCounts) {
  obs::Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        const obs::Span s(tracer, "work");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.spans_recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.snapshot().aggregates.at("work").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// Minimal structural JSON check: quotes pair up and braces/brackets balance
// outside strings. Enough to catch an unterminated object or a raw NaN.
void expect_balanced_json(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
}

TEST(ExportJson, RoundTripsRegistryAndSpans) {
  obs::MetricsRegistry reg;
  reg.counter("requests").increment(42);
  reg.gauge("queue_depth").set(3.0);
  for (int i = 0; i < 10; ++i) reg.histogram("latency").record(1e-4);

  obs::Tracer tracer;
  {
    const obs::Span s(tracer, R"(needs "escaping"
badly)");
  }

  const std::string json = obs::export_json_string(reg, &tracer);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"requests\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 10"), std::string::npos);
  EXPECT_NE(json.find("needs \\\"escaping\\\"\\nbadly"), std::string::npos);

  // Without a tracer the span sections are omitted entirely.
  const std::string bare = obs::export_json_string(reg);
  expect_balanced_json(bare);
  EXPECT_EQ(bare.find("recent_spans"), std::string::npos);
}

TEST(ExportJson, EmptyRegistryIsStillValid) {
  obs::MetricsRegistry reg;
  const std::string json = obs::export_json_string(reg);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
}

/// Minimal Prometheus text-format line check: every non-comment line is
/// `name[{labels}] value`, every family has `# HELP` + `# TYPE` lines before
/// its first sample, and histogram `_bucket` series are cumulative
/// (monotone).
void expect_valid_prometheus(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::uint64_t last_bucket = 0;
  std::string last_bucket_family;
  std::string pending_help_family;  // HELP seen, TYPE expected next
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      pending_help_family = rest.substr(0, rest.find(' '));
      ASSERT_FALSE(pending_help_family.empty()) << line;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      // HELP must immediately precede TYPE for the same family.
      const std::string rest = line.substr(7);
      ASSERT_EQ(rest.substr(0, rest.find(' ')), pending_help_family) << line;
      last_bucket_family.clear();
      continue;
    }
    if (line == "# EOF") continue;
    ASSERT_NE(line[0], '#') << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    const std::size_t brace = name.find('{');
    std::string labels;
    if (brace != std::string::npos) {
      ASSERT_EQ(name.back(), '}') << line;
      labels = name.substr(brace + 1, name.size() - brace - 2);
      name = name.substr(0, brace);
    }
    // Metric name charset.
    ASSERT_FALSE(name.empty()) << line;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
      ASSERT_TRUE(ok) << "bad metric name char in: " << line;
    }
    // Value parses as a double (Prometheus accepts +Inf/-Inf/NaN).
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      std::size_t consumed = 0;
      (void)std::stod(value, &consumed);
      ASSERT_EQ(consumed, value.size()) << line;
    }
    // Cumulative-bucket monotonicity within one series.
    if (name.size() > 7 && name.compare(name.size() - 7, 7, "_bucket") == 0) {
      if (name != last_bucket_family) {
        last_bucket_family = name;
        last_bucket = 0;
      }
      const std::uint64_t count = std::stoull(value);
      ASSERT_GE(count, last_bucket) << "non-monotone buckets: " << line;
      last_bucket = count;
      ASSERT_NE(labels.find("le="), std::string::npos) << line;
    }
  }
}

TEST(Exposition, PrometheusFormatsCountersGaugesHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("serving.requests_served").increment(42);
  reg.gauge("serving.batch_queue_depth").set(7.0);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    reg.histogram("serving.latency.total").record(std::exp(rng.gaussian() - 9.0));
  }

  const std::string text = obs::export_prometheus_string(reg.snapshot());
  expect_valid_prometheus(text);
  EXPECT_NE(text.find("# TYPE serving_requests_served counter"), std::string::npos);
  EXPECT_NE(text.find("serving_requests_served 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serving_batch_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serving_latency_total histogram"), std::string::npos);
  EXPECT_NE(text.find("serving_latency_total_bucket{le=\"+Inf\"} 500"),
            std::string::npos);
  EXPECT_NE(text.find("serving_latency_total_count 500"), std::string::npos);
  EXPECT_NE(text.find("serving_latency_total_sum "), std::string::npos);
}

TEST(Exposition, EmptyRegistryProducesValidEmptyExposition) {
  obs::MetricsRegistry reg;
  const std::string text = obs::export_prometheus_string(reg.snapshot());
  expect_valid_prometheus(text);
  EXPECT_TRUE(text.empty());
}

TEST(Exposition, SanitizesNamesAndParsesLabelBlocks) {
  obs::MetricsRegistry reg;
  reg.counter("weird name:with-dashes.and.dots").increment();
  reg.gauge("serving.breaker_state{model=\"heat-3d \\ \"quoted\"\"}").set(1.0);
  reg.gauge("serving.breaker_state{model=\"other\"}").set(2.0);

  const std::string text = obs::export_prometheus_string(reg.snapshot());
  expect_valid_prometheus(text);
  EXPECT_NE(text.find("weird_name:with_dashes_and_dots 1"), std::string::npos);
  // Both labeled gauges land in ONE family with a single TYPE line.
  const std::size_t first = text.find("# TYPE serving_breaker_state gauge");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE serving_breaker_state gauge", first + 1),
            std::string::npos);
  EXPECT_NE(text.find("serving_breaker_state{model=\"other\"} 2"),
            std::string::npos);
  // The messy label value is escaped, not emitted raw.
  EXPECT_NE(text.find("\\\\"), std::string::npos);
  EXPECT_NE(text.find("\\\""), std::string::npos);
}

TEST(Exposition, DisjointSnapshotsMergeAndRoundTripBothFormats) {
  obs::MetricsRegistry a, b;
  a.counter("alpha.requests").increment(10);
  a.histogram("alpha.latency").record(1e-4);
  b.counter("beta.requests").increment(20);
  b.gauge("beta.depth").set(4.0);

  obs::RegistrySnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  ASSERT_EQ(merged.counters.size(), 2u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  ASSERT_EQ(merged.histograms.size(), 1u);

  const std::string prom = obs::export_prometheus_string(merged);
  expect_valid_prometheus(prom);
  EXPECT_NE(prom.find("alpha_requests 10"), std::string::npos);
  EXPECT_NE(prom.find("beta_requests 20"), std::string::npos);
  EXPECT_NE(prom.find("beta_depth 4"), std::string::npos);
  EXPECT_NE(prom.find("alpha_latency_count 1"), std::string::npos);

  std::ostringstream json;
  obs::export_json(json, merged);
  expect_balanced_json(json.str());
  EXPECT_NE(json.str().find("\"alpha.requests\": 10"), std::string::npos);
  EXPECT_NE(json.str().find("\"beta.requests\": 20"), std::string::npos);
}

TEST(Exposition, ChromeTraceExportIsSchemaValid) {
  obs::Tracer tracer;
  {
    const obs::Span root(tracer, "serve.run_model");
    const obs::Span child(tracer, R"(needs "escaping")");
  }
  const obs::TracerSnapshot snap = tracer.snapshot();
  ASSERT_EQ(snap.recent.size(), 2u);

  const std::string json = obs::export_chrome_trace_string(snap, "test-proc");
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);  // process_name meta
  EXPECT_NE(json.find("\"test-proc\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // complete events
  EXPECT_NE(json.find("\"serve.run_model\""), std::string::npos);
  EXPECT_NE(json.find("needs \\\"escaping\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  // Parent/child relationship is preserved in the args.
  const obs::SpanRecord& child_rec =
      snap.recent[0].parent_span_id != 0 ? snap.recent[0] : snap.recent[1];
  EXPECT_NE(json.find("\"parent_span_id\": " +
                      std::to_string(child_rec.parent_span_id)),
            std::string::npos);
}

TEST(Exposition, OpenMetricsExemplarsLinkBucketsToTraces) {
  obs::MetricsRegistry reg;
  obs::Tracer tracer;
  std::uint64_t trace_id = 0;
  {
    const obs::Span span(tracer, "serve.run_model");
    trace_id = span.context().trace_id;
    reg.histogram("serving.latency.total").record(1e-4, trace_id);
  }
  reg.histogram("serving.latency.total").record(2e-4);  // untraced: no exemplar

  // Exemplars are opt-in: the plain exposition carries none.
  const std::string plain = obs::export_prometheus_string(reg.snapshot());
  EXPECT_EQ(plain.find("# {trace_id="), std::string::npos);

  obs::PrometheusOptions opts;
  opts.exemplars = true;
  opts.openmetrics_eof = true;
  const std::string text = obs::export_prometheus_string(reg.snapshot(), opts);
  expect_valid_prometheus(text);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);

  // Exactly one bucket carries the exemplar, in OpenMetrics form:
  //   name_bucket{le="..."} N # {trace_id="T"} V
  const std::string marker =
      " # {trace_id=\"" + std::to_string(trace_id) + "\"} ";
  const std::size_t at = text.find(marker);
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(text.find("# {trace_id=", at + marker.size()), std::string::npos);
  const std::size_t line_start = text.rfind('\n', at) + 1;
  const std::string line = text.substr(line_start, at - line_start);
  EXPECT_EQ(line.rfind("serving_latency_total_bucket{le=\"", 0), 0u);

  // The exemplar's value respects its bucket bound and its trace id names a
  // span actually retained in the tracer ring.
  const std::size_t le_start = line.find("le=\"") + 4;
  const double le = std::stod(line.substr(le_start));
  const double value = std::stod(text.substr(at + marker.size()));
  EXPECT_LE(value, le);
  bool found = false;
  for (const obs::SpanRecord& rec : tracer.snapshot().recent) {
    found = found || rec.trace_id == trace_id;
  }
  EXPECT_TRUE(found);

  // Exemplars survive a cross-shard snapshot merge.
  obs::MetricsRegistry other;
  other.histogram("serving.latency.total").record(3e-4);
  obs::RegistrySnapshot merged = reg.snapshot();
  merged.merge(other.snapshot());
  EXPECT_NE(obs::export_prometheus_string(merged, opts).find(marker),
            std::string::npos);
}

TEST(Exposition, HelpRegistryFeedsHelpLines) {
  obs::register_metric_help("serving.test_family",
                            "Curated help text\nwith a newline");
  obs::MetricsRegistry reg;
  reg.counter("serving.test_family").increment();
  reg.counter("serving.completely_unknown").increment();

  const std::string text = obs::export_prometheus_string(reg.snapshot());
  expect_valid_prometheus(text);
  // Registered help is emitted with the newline escaped; unknown families
  // still get a HELP line from the fallback.
  EXPECT_NE(text.find("# HELP serving_test_family Curated help text\\n"
                      "with a newline"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP serving_completely_unknown "), std::string::npos);
  EXPECT_FALSE(obs::metric_help("serving_completely_unknown").empty());
}

TEST(Exposition, ChromeTraceFlowEventsLinkCrossThreadSpans) {
  obs::Tracer tracer;
  obs::SpanContext root_ctx;
  {
    const obs::Span root(tracer, "cluster.run_model");
    root_ctx = root.context();
    std::thread worker([&tracer, root_ctx] {
      const obs::Span child(tracer, "serve.batch", root_ctx);
    });
    worker.join();
  }
  const obs::TracerSnapshot snap = tracer.snapshot();
  ASSERT_EQ(snap.recent.size(), 2u);
  const obs::SpanRecord& child =
      snap.recent[0].parent_span_id != 0 ? snap.recent[0] : snap.recent[1];
  const obs::SpanRecord& root =
      snap.recent[0].parent_span_id != 0 ? snap.recent[1] : snap.recent[0];
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.thread_id, root.thread_id);  // sequential ids, per thread

  const std::string json = obs::export_chrome_trace_string(snap);
  expect_balanced_json(json);
  // A cross-thread parent/child handoff draws a flow arrow: an "s" (start)
  // event on the parent's track and an "f" (finish) on the child's.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": " + std::to_string(child.thread_id)),
            std::string::npos);
  EXPECT_NE(json.find("\"tid\": " + std::to_string(root.thread_id)),
            std::string::npos);

  // Same-thread nesting draws no arrow.
  obs::Tracer flat;
  {
    const obs::Span a(flat, "a");
    const obs::Span b(flat, "b");
  }
  const std::string flat_json = obs::export_chrome_trace_string(flat.snapshot());
  EXPECT_EQ(flat_json.find("\"ph\": \"s\""), std::string::npos);
}

TEST(Exposition, FileWritersReportFailureForBadPaths) {
  obs::MetricsRegistry reg;
  obs::Tracer tracer;
  EXPECT_FALSE(obs::export_prometheus_file("/nonexistent-dir/x.prom", reg));
  EXPECT_FALSE(obs::export_chrome_trace_file("/nonexistent-dir/x.json", tracer));
  EXPECT_TRUE(obs::export_prometheus_file("test_obs_exposition.prom", reg));
  EXPECT_TRUE(obs::export_chrome_trace_file("test_obs_trace.json", tracer));
  std::remove("test_obs_exposition.prom");
  std::remove("test_obs_trace.json");
}

TEST(Exposition, PeriodicExporterWritesAndStopsCleanly) {
  obs::MetricsRegistry reg;
  reg.counter("ticks").increment(3);
  obs::Tracer tracer;
  { const obs::Span s(tracer, "periodic.work"); }

  obs::PeriodicExporter::Options opts;
  opts.period_seconds = 0.005;
  opts.prometheus_path = "test_obs_periodic.prom";
  opts.json_path = "test_obs_periodic.json";
  opts.chrome_trace_path = "test_obs_periodic_trace.json";
  opts.registry = &reg;
  opts.tracer = &tracer;
  {
    obs::PeriodicExporter exporter(opts);
    // Wait for at least one periodic pass (bounded, not timing-sensitive).
    for (Timer t; exporter.exports_completed() == 0 && t.seconds() < 5.0;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(exporter.exports_completed(), 1u);
    reg.counter("ticks").increment(39);  // visible in the final export
  }  // destructor: stop + final export

  std::ifstream prom("test_obs_periodic.prom");
  ASSERT_TRUE(prom.good());
  std::stringstream buf;
  buf << prom.rdbuf();
  expect_valid_prometheus(buf.str());
  EXPECT_NE(buf.str().find("ticks 42"), std::string::npos);

  std::ifstream json("test_obs_periodic.json");
  ASSERT_TRUE(json.good());
  std::stringstream jbuf;
  jbuf << json.rdbuf();
  expect_balanced_json(jbuf.str());

  std::ifstream trace("test_obs_periodic_trace.json");
  ASSERT_TRUE(trace.good());
  std::stringstream tbuf;
  tbuf << trace.rdbuf();
  expect_balanced_json(tbuf.str());
  EXPECT_NE(tbuf.str().find("periodic.work"), std::string::npos);

  std::remove("test_obs_periodic.prom");
  std::remove("test_obs_periodic.json");
  std::remove("test_obs_periodic_trace.json");
}

TEST(ServingStatsObs, RegistryCountersMatchSnapshot) {
  ServingStats stats;
  RequestPhases phases;
  phases.fetch = 1e-5;
  phases.encode = 2e-5;
  phases.load = 3e-5;
  phases.run = 4e-5;
  for (int i = 0; i < 7; ++i) stats.record_request(phases);
  stats.record_qoi_fallback();
  stats.record_fault_injected("transient");
  stats.record_fault_injected("transient");
  stats.record_retry();

  const ServingStatsSnapshot snap = stats.snapshot();
  const obs::RegistrySnapshot reg = stats.metrics().snapshot();
  EXPECT_EQ(reg.counters.at("serving.requests_served"), snap.requests_served);
  EXPECT_EQ(reg.counters.at("serving.qoi_fallbacks"), snap.qoi_fallbacks);
  EXPECT_EQ(reg.counters.at("serving.faults_injected"), snap.faults_injected);
  EXPECT_EQ(reg.counters.at("serving.fault.transient"), 2u);
  EXPECT_EQ(reg.counters.at("serving.retries"), snap.retries);
  EXPECT_EQ(reg.histograms.at("serving.latency.total").count, 7u);
  EXPECT_NEAR(reg.histograms.at("serving.latency.total").sum, 7 * 1e-4, 1e-10);
}

TEST(ServingStatsObs, ExactSamplesModeMatchesSortedReference) {
  ServingStats stats;
  stats.set_exact_samples(true);
  Rng rng(7);
  std::vector<double> totals;
  for (int i = 0; i < 200; ++i) {
    RequestPhases phases;
    phases.fetch = 1e-5 * (1.0 + rng.uniform());
    phases.encode = 2e-5 * (1.0 + rng.uniform());
    phases.load = 5e-6;
    phases.run = 1e-4 * (1.0 + rng.uniform());
    totals.push_back(phases.total());
    stats.record_request(phases);
  }
  for (const double p : {0.0, 25.0, 50.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(stats.latency_percentile("total", p), percentile(totals, p));
  }
  // Histogram mode stays within one bucket of the same reference.
  stats.set_exact_samples(false);
  const double ref = percentile(totals, 95.0);
  EXPECT_NEAR(stats.latency_percentile("total", 95.0), ref, ref * kBucketRelWidth);
}

// Regression: PhaseAccumulator is shared across concurrent run_model_async
// requests; concurrent add() used to race. TSan covers this in CI.
TEST(PhaseAccumulatorObs, ConcurrentAddIsExact) {
  PhaseAccumulator acc;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&acc] {
      for (int i = 0; i < kPerThread; ++i) acc.add("phase", 1e-6);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_NEAR(acc.total(), kThreads * kPerThread * 1e-6, 1e-9);
  const std::vector<PhaseAccumulator::Entry> entries = acc.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_NEAR(entries[0].seconds, kThreads * kPerThread * 1e-6, 1e-9);
}

// Regression: Log::set_level used to write a plain enum that reader threads
// loaded unsynchronized. TSan covers this in CI.
TEST(LogObs, SetLevelRacesAreBenign) {
  const LogLevel before = Log::level();
  std::atomic<bool> done{false};
  std::thread flipper([&] {
    for (int i = 0; i < 2000; ++i) {
      Log::set_level(i % 2 == 0 ? LogLevel::Off : LogLevel::ErrorLevel);
    }
    done.store(true, std::memory_order_relaxed);
  });
  std::thread writer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      AHN_DEBUG("concurrent with set_level");  // level gate races harmlessly
    }
  });
  flipper.join();
  writer.join();
  Log::set_level(before);
}

TEST(LogObs, StructuredLineCarriesTimestampComponentAndTrace) {
  const LogLevel before = Log::level();
  Log::set_level(LogLevel::Info);
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  {
    const obs::Span span(obs::Tracer::global(), "log_test");
    AHN_INFO_C("mycomp", "hello " << 42);
  }
  std::cerr.rdbuf(old);
  Log::set_level(before);

  const std::string line = captured.str();
  // 2026-08-05T12:34:56.789Z [info] mycomp trace=N hello 42
  ASSERT_GE(line.size(), 24u);
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[23], 'Z');
  EXPECT_NE(line.find(" [info] mycomp "), std::string::npos);
  EXPECT_NE(line.find(" trace="), std::string::npos);
  EXPECT_NE(line.find("hello 42"), std::string::npos);
}

}  // namespace
