// Tests for src/trace: the recorder (region directives, loop compression),
// traced value handles, parallel DDDG construction (roots/leaves/use-def),
// feature identification (inputs/outputs/internals with liveness), and
// Gaussian-perturbation sample generation.

#include <gtest/gtest.h>

#include "trace/dddg.hpp"
#include "trace/features.hpp"
#include "trace/recorder.hpp"
#include "trace/sampling.hpp"
#include "trace/traced.hpp"

namespace ahn::trace {
namespace {

TEST(Recorder, RegionDirectivesGateRecording) {
  TraceRecorder rec;
  TracedScalar s(rec, "s", true, 1.0);
  (void)(s + s);  // outside the region: not recorded
  EXPECT_TRUE(rec.instructions().empty());
  rec.begin_region();
  (void)(s + s);
  rec.end_region();
  EXPECT_FALSE(rec.instructions().empty());
}

TEST(Recorder, RegionCannotNest) {
  TraceRecorder rec;
  rec.begin_region();
  EXPECT_THROW(rec.begin_region(), Error);
}

TEST(Recorder, TracedArithmeticComputesCorrectValues) {
  TraceRecorder rec;
  TracedScalar a(rec, "a", true, 3.0);
  TracedScalar b(rec, "b", true, 4.0);
  TracedScalar out(rec, "out", true);
  rec.begin_region();
  out = tsqrt(a * a + b * b);
  rec.end_region();
  EXPECT_DOUBLE_EQ(out.value(), 5.0);
}

TEST(Recorder, LoopCompressionElidesUniformIterations) {
  TraceRecorder rec;
  TracedArray a(rec, "a", std::vector<double>(64, 2.0), true);
  TracedScalar sum(rec, "sum", true);
  rec.begin_region();
  rec.begin_loop();
  for (std::size_t i = 0; i < 64; ++i) {
    sum = sum + a[i];
    rec.end_loop_iteration();
  }
  rec.end_loop();
  rec.end_region();
  // All iterations have identical shape: only one is stored.
  EXPECT_GT(rec.compression_ratio(), 30.0);
  EXPECT_EQ(rec.total_region_instructions(),
            static_cast<std::uint64_t>(64 * 4));  // load a, load sum, add, store
}

TEST(Recorder, DivergentLoopIsNotCompressed) {
  TraceRecorder rec;
  TracedArray a(rec, "a", std::vector<double>{1, -2, 3, -4}, true);
  TracedScalar sum(rec, "pos_sum", true);
  rec.begin_region();
  rec.begin_loop();
  for (std::size_t i = 0; i < 4; ++i) {
    // Control-flow divergence: only positive entries touch `sum`.
    if (a.raw()[i] > 0) sum = sum + a[i];
    rec.end_loop_iteration();
  }
  rec.end_loop();
  rec.end_region();
  EXPECT_LT(rec.compression_ratio(), 2.0);
}

TEST(Recorder, PostRegionReadsTrackLiveness) {
  TraceRecorder rec;
  TracedScalar x(rec, "x", true, 1.0);
  TracedScalar y(rec, "y", true, 0.0);
  rec.begin_region();
  y = x + 1.0;
  rec.end_region();
  (void)y.get();  // read after region -> live-out
  EXPECT_TRUE(rec.read_after_region()[static_cast<std::size_t>(y.var())]);
  EXPECT_FALSE(rec.read_after_region()[static_cast<std::size_t>(x.var())]);
}

TEST(Recorder, PostRegionOverwriteKillsScalarLiveness) {
  TraceRecorder rec;
  TracedScalar y(rec, "y", true, 0.0);
  rec.begin_region();
  y = 5.0;
  rec.end_region();
  y = 0.0;       // overwritten before any read
  (void)y.get(); // later read sees the overwrite, not the region value
  EXPECT_TRUE(rec.overwritten_after_region()[static_cast<std::size_t>(y.var())]);
}

TEST(Dddg, RootsAreUpwardExposedLoads) {
  TraceRecorder rec;
  TracedScalar a(rec, "a", true, 2.0);
  TracedScalar t(rec, "t", false, 0.0);
  rec.begin_region();
  t = a + 1.0;           // a: read before any store -> root
  (void)(t + t);         // t: defined in region, not a root
  rec.end_region();
  const Dddg g = Dddg::build(rec);
  EXPECT_TRUE(g.root_vars().contains(a.var()));
  EXPECT_FALSE(g.root_vars().contains(t.var()));
}

TEST(Dddg, LeavesAreFinalStores) {
  TraceRecorder rec;
  TracedScalar a(rec, "a", true, 1.0);
  TracedScalar tmp(rec, "tmp", false);
  TracedScalar out(rec, "out", true);
  rec.begin_region();
  tmp = a + 1.0;
  out = tmp + 2.0;  // tmp re-read after its store; out never re-read
  rec.end_region();
  const Dddg g = Dddg::build(rec);
  EXPECT_TRUE(g.leaf_vars().contains(out.var()));
  EXPECT_FALSE(g.leaf_vars().contains(tmp.var()));
}

TEST(Dddg, UseDefChainsLinkLoadsToStores) {
  TraceRecorder rec;
  TracedScalar x(rec, "x", true, 1.0);
  rec.begin_region();
  x = x + 1.0;  // load x (upward-exposed), store x
  (void)(x + 0.0);  // load x again -> defined by the store above
  rec.end_region();
  const Dddg g = Dddg::build(rec);
  std::size_t exposed = 0, resolved = 0;
  for (const auto& [load_idx, def_idx] : g.use_def()) {
    if (def_idx == Dddg::npos) {
      ++exposed;
    } else {
      EXPECT_EQ(rec.instructions()[def_idx].kind, OpKind::Store);
      ++resolved;
    }
  }
  EXPECT_EQ(exposed, 1u);
  EXPECT_EQ(resolved, 1u);
}

TEST(Dddg, ParallelBuildMatchesSerial) {
  TraceRecorder rec;
  TracedArray a(rec, "a", std::vector<double>(300, 1.5), true);
  TracedArray b(rec, "b", 300, true);
  rec.begin_region();
  for (std::size_t i = 0; i < 300; ++i) b[i] = a[i] * 2.0 + 1.0;
  rec.end_region();
  const Dddg serial = Dddg::build(rec, 1);
  const Dddg parallel = Dddg::build(rec, 4);
  EXPECT_EQ(serial.root_vars(), parallel.root_vars());
  EXPECT_EQ(serial.leaf_vars(), parallel.leaf_vars());
  EXPECT_EQ(serial.edge_count(), parallel.edge_count());
  EXPECT_EQ(serial.use_def().size(), parallel.use_def().size());
}

TEST(Features, IdentifiesInputsOutputsInternals) {
  TraceRecorder rec;
  TracedArray a(rec, "A", std::vector<double>{1, 2, 3, 4}, true);  // input
  TracedScalar acc(rec, "acc", false);                             // internal
  TracedScalar result(rec, "result", true);                        // output
  rec.begin_region();
  for (std::size_t i = 0; i < 4; ++i) acc = acc + a[i];
  result = acc * 0.25;
  rec.end_region();
  (void)result.get();  // used after the region

  const FeatureReport rep = identify_features(rec);
  ASSERT_EQ(rep.inputs.size(), 1u);
  EXPECT_EQ(rep.inputs[0], a.var());
  ASSERT_EQ(rep.outputs.size(), 1u);
  EXPECT_EQ(rep.outputs[0], result.var());
  EXPECT_EQ(rep.input_width, 4u);   // array grouping: the whole array
  EXPECT_EQ(rep.output_width, 1u);
}

TEST(Features, InternalVariablesExcluded) {
  TraceRecorder rec;
  TracedScalar in(rec, "in", true, 2.0);
  TracedScalar scratch(rec, "scratch", false);
  TracedScalar out(rec, "out", true);
  rec.begin_region();
  scratch = in * in;
  out = scratch + 1.0;
  rec.end_region();
  (void)out.get();
  const FeatureReport rep = identify_features(rec);
  EXPECT_EQ(rep.inputs.size(), 1u);
  EXPECT_EQ(rep.outputs.size(), 1u);
  ASSERT_EQ(rep.internals.size(), 1u);
  EXPECT_EQ(rep.internals[0], scratch.var());
}

TEST(Features, FallsBackToDddgLeavesWithoutPostRegionInfo) {
  TraceRecorder rec;
  TracedScalar in(rec, "in", true, 1.0);
  TracedScalar out(rec, "out", true);
  rec.begin_region();
  out = in + 1.0;
  rec.end_region();
  // No post-region accesses recorded at all -> leaf-based fallback.
  const FeatureReport rep = identify_features(rec);
  ASSERT_EQ(rep.outputs.size(), 1u);
  EXPECT_EQ(rep.outputs[0], out.var());
}

TEST(Features, DescribeMentionsNames) {
  TraceRecorder rec;
  TracedArray a(rec, "matrixA", std::vector<double>{1, 2}, true);
  TracedScalar out(rec, "result", true);
  rec.begin_region();
  out = a[0] + a[1];
  rec.end_region();
  (void)out.get();
  const FeatureReport rep = identify_features(rec);
  const std::string desc = rep.describe(rec);
  EXPECT_NE(desc.find("matrixA[2]"), std::string::npos);
  EXPECT_NE(desc.find("result"), std::string::npos);
}

TEST(Sampling, GeneratesRequestedSamplesWithPerturbation) {
  Rng rng(3);
  const RegionFn region = [](const std::vector<double>& x) {
    return std::vector<double>{x[0] + x[1], x[0] * x[1]};
  };
  PerturbationSpec spec;
  spec.sigma = 0.1;
  const nn::Dataset data = generate_samples(region, {2.0, 3.0}, 50, spec, rng);
  EXPECT_EQ(data.size(), 50u);
  EXPECT_EQ(data.in_features(), 2u);
  EXPECT_EQ(data.out_features(), 2u);
  // Outputs must be consistent with inputs.
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data.y.at(i, 0), data.x.at(i, 0) + data.x.at(i, 1), 1e-12);
  }
  // Inputs perturbed around the base (not all identical).
  double spread = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    spread += std::abs(data.x.at(i, 0) - 2.0);
  }
  EXPECT_GT(spread, 0.5);
}

TEST(Sampling, UniformPerturbationBounded) {
  Rng rng(4);
  const RegionFn region = [](const std::vector<double>& x) {
    return std::vector<double>{x[0]};
  };
  PerturbationSpec spec;
  spec.kind = PerturbationKind::Uniform;
  spec.sigma = 0.5;
  const nn::Dataset data = generate_samples(region, {10.0}, 100, spec, rng);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_GE(data.x.at(i, 0), 5.0 - 1e-9);
    EXPECT_LE(data.x.at(i, 0), 15.0 + 1e-9);
  }
}

TEST(Sampling, TracedPcgRegionEndToEnd) {
  // A miniature Algorithm-1-style traced region: identify features of a
  // dot-product + axpy region, then generate training samples for it.
  TraceRecorder rec;
  TracedArray r(rec, "r", std::vector<double>{1.0, 2.0, 2.0}, true);
  TracedArray p(rec, "p", std::vector<double>{0.5, 0.5, 0.5}, true);
  TracedArray x(rec, "x", 3, true);
  rec.begin_region();
  // alpha = (r.r)/(p.p); x = x + alpha p
  TracedValue rr = TracedValue::constant(rec, 0.0);
  TracedValue pp = TracedValue::constant(rec, 0.0);
  rec.begin_loop();
  for (std::size_t i = 0; i < 3; ++i) {
    rr = rr + r[i] * r[i];
    pp = pp + p[i] * p[i];
    rec.end_loop_iteration();
  }
  rec.end_loop();
  const TracedValue alpha = rr / pp;
  for (std::size_t i = 0; i < 3; ++i) x[i] = x[i] + alpha * p[i];
  rec.end_region();
  for (std::size_t i = 0; i < 3; ++i) (void)x[i];  // post-region reads

  const FeatureReport rep = identify_features(rec);
  EXPECT_EQ(rep.input_width, 9u);   // r, p and x (x is read-modify-write)
  EXPECT_EQ(rep.output_width, 3u);  // x
}

}  // namespace
}  // namespace ahn::trace
