// Tests for src/common: RNG determinism and distributions, statistics
// helpers, phase accounting, FLOP counting and table rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/flops.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace ahn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) seen[rng.uniform_index(10)]++;
  for (int count : seen) EXPECT_GT(count, 300);  // roughly uniform
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 40000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianScaledMeanSigma) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.fork();
  // The fork should not replay the parent's stream.
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(1.25));
}

TEST(Stats, HarmonicMeanMatchesClosedForm) {
  const std::vector<double> v{1.0, 2.0, 4.0};
  EXPECT_NEAR(harmonic_mean(v), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(Stats, HarmonicMeanRejectsNonPositive) {
  const std::vector<double> v{1.0, -2.0};
  EXPECT_THROW((void)harmonic_mean(v), Error);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(median(v), 25.0);
}

TEST(Stats, RelativeErrorHandlesZeroReference) {
  EXPECT_DOUBLE_EQ(relative_error(3.0, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(relative_error(11.0, 10.0), 0.1);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.milliseconds(), 8.0);
  t.restart();
  EXPECT_LT(t.milliseconds(), 5.0);
}

TEST(PhaseAccumulator, AccumulatesAndComputesFractions) {
  PhaseAccumulator acc;
  acc.add("fetch", 1.0);
  acc.add("run", 3.0);
  acc.add("fetch", 1.0);
  EXPECT_DOUBLE_EQ(acc.total(), 5.0);
  EXPECT_DOUBLE_EQ(acc.seconds("fetch"), 2.0);
  EXPECT_DOUBLE_EQ(acc.fraction("run"), 0.6);
  EXPECT_DOUBLE_EQ(acc.seconds("missing"), 0.0);
}

TEST(PhaseAccumulator, ScopedPhaseAddsOnDestruction) {
  PhaseAccumulator acc;
  {
    ScopedPhase phase(acc, "work");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(acc.seconds("work"), 0.0);
}

TEST(OpCounts, SumAndIntensity) {
  OpCounts a{100, 50, 50};
  OpCounts b{100, 0, 0};
  const OpCounts c = a + b;
  EXPECT_EQ(c.flops, 200u);
  EXPECT_EQ(c.bytes_total(), 100u);
  EXPECT_DOUBLE_EQ(c.intensity(), 2.0);
  EXPECT_DOUBLE_EQ(b.intensity(), 0.0);
}

TEST(FlopRegion, CapturesDelta) {
  FlopCounter::instance().reset();
  FlopRegion region;
  FlopCounter::instance().add({10, 20, 30});
  const OpCounts d = region.delta();
  EXPECT_EQ(d.flops, 10u);
  EXPECT_EQ(d.bytes_read, 20u);
  EXPECT_EQ(d.bytes_written, 30u);
}

TEST(TextTable, RendersAlignedRows) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1.00"});
  t.add_row({"longer-name", "2.50"});
  const std::string out = t.render();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  // header separator present
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TextTable, RejectsAridityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace ahn
