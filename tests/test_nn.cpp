// Tests for src/nn: layer forward/backward correctness (numeric gradient
// checks across layer types), optimizers, losses, the sparse-input path,
// gradient checkpointing equivalence and memory accounting, topology
// encode/decode, training loop behaviour and weight serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "nn/network.hpp"
#include "nn/topology.hpp"
#include "nn/train.hpp"
#include "sparse/generators.hpp"
#include "tensor/ops.hpp"

namespace ahn::nn {
namespace {

/// Numeric-vs-analytic gradient check for an arbitrary network.
double max_gradient_error(Network& net, const Tensor& x, const Tensor& y) {
  const Tensor pred = net.forward(x, true);
  net.backward(loss_grad(LossKind::Mse, pred, y));
  const auto params = net.params();
  const auto grads = net.grads();
  double worst = 0.0;
  for (std::size_t t = 0; t < params.size(); ++t) {
    const std::size_t stride = std::max<std::size_t>(1, params[t]->size() / 8);
    for (std::size_t j = 0; j < params[t]->size(); j += stride) {
      const double orig = (*params[t])[j];
      const double h = 1e-6;
      (*params[t])[j] = orig + h;
      const double lp = loss_value(LossKind::Mse, net.predict(x), y);
      (*params[t])[j] = orig - h;
      const double lm = loss_value(LossKind::Mse, net.predict(x), y);
      (*params[t])[j] = orig;
      const double numeric = (lp - lm) / (2.0 * h);
      const double analytic = (*grads[t])[j];
      worst = std::max(worst, std::abs(numeric - analytic) /
                                  std::max(1e-8, std::abs(numeric) + std::abs(analytic)));
    }
  }
  return worst;
}

TEST(Layers, DenseGradientCheck) {
  Rng rng(1);
  Network net;
  net.add(std::make_unique<DenseLayer>(5, 4, rng));
  const Tensor x = Tensor::randn({3, 5}, rng);
  const Tensor y = Tensor::randn({3, 4}, rng);
  EXPECT_LT(max_gradient_error(net, x, y), 1e-5);
}

// DenseLayer::forward fuses the bias add into the GEMM epilogue; the result
// must stay bitwise-identical to the unfused matmul + add_row_bias pair.
TEST(Layers, DenseForwardMatchesUnfusedBitwise) {
  Rng rng(21);
  DenseLayer dense(37, 19, rng);
  const Tensor x = Tensor::randn({5, 37}, rng);
  const Tensor fused = dense.forward(x, false);

  // An identically-seeded twin exposes the same weights; recompute the
  // forward pass through the unfused public ops.
  Rng rng2(21);
  DenseLayer twin(37, 19, rng2);
  const auto params = twin.params();
  const Tensor& w = *params[0];
  const Tensor& b = *params[1];
  Tensor manual = ops::matmul(x, w);
  ops::add_row_bias(manual, b);
  ASSERT_EQ(fused.size(), manual.size());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i], manual[i]) << "flat index " << i;
  }
}

// gather_rows into a reused buffer must reproduce subset() exactly — the
// training loop depends on the two being interchangeable.
TEST(Train, GatherRowsMatchesSubset) {
  Rng rng(22);
  Dataset data;
  data.x = Tensor::randn({12, 5}, rng);
  data.y = Tensor::randn({12, 3}, rng);
  const std::vector<std::size_t> rows{7, 0, 11, 3};
  const Dataset expect = data.subset(rows);
  Dataset buffer;
  buffer.x = Tensor({rows.size(), 5});
  buffer.y = Tensor({rows.size(), 3});
  data.gather_rows(rows, buffer);
  for (std::size_t i = 0; i < expect.x.size(); ++i) EXPECT_EQ(buffer.x[i], expect.x[i]);
  for (std::size_t i = 0; i < expect.y.size(); ++i) EXPECT_EQ(buffer.y[i], expect.y[i]);
}

class ActivationGrad : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGrad, MlpGradientCheck) {
  Rng rng(2);
  Network net;
  net.add(std::make_unique<DenseLayer>(6, 8, rng));
  net.add(std::make_unique<ActivationLayer>(GetParam()));
  net.add(std::make_unique<DenseLayer>(8, 3, rng));
  const Tensor x = Tensor::randn({4, 6}, rng);
  const Tensor y = Tensor::randn({4, 3}, rng);
  EXPECT_LT(max_gradient_error(net, x, y), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGrad,
                         ::testing::Values(Activation::Identity, Activation::Tanh,
                                           Activation::Sigmoid, Activation::LeakyRelu));

TEST(Layers, Conv1dGradientCheck) {
  Rng rng(3);
  Network net;
  net.add(std::make_unique<Conv1dLayer>(2, 3, 3, 8, rng));  // 2ch x len8 -> 3ch
  const Tensor x = Tensor::randn({2, 16}, rng);
  const Tensor y = Tensor::randn({2, 24}, rng);
  EXPECT_LT(max_gradient_error(net, x, y), 1e-4);
}

TEST(Layers, MaxPoolForwardAndRouting) {
  MaxPool1dLayer pool(1, 4, 2);
  Tensor x({1, 4}, {1.0, 5.0, 2.0, 3.0});
  const Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], 5.0);
  EXPECT_EQ(y[1], 3.0);
  Tensor g({1, 2}, {1.0, 1.0});
  const Tensor gx = pool.backward(g);
  EXPECT_EQ(gx[1], 1.0);  // grad routed to the max positions
  EXPECT_EQ(gx[0], 0.0);
  EXPECT_EQ(gx[3], 1.0);
}

TEST(Layers, UpsampleForwardBackwardAdjoint) {
  Upsample1dLayer up(1, 3, 2);
  Tensor x({1, 3}, {1.0, 2.0, 3.0});
  const Tensor y = up.forward(x, true);
  ASSERT_EQ(y.size(), 6u);
  EXPECT_EQ(y[0], 1.0);
  EXPECT_EQ(y[1], 1.0);
  EXPECT_EQ(y[5], 3.0);
  Tensor g({1, 6}, {1, 1, 1, 1, 1, 1});
  const Tensor gx = up.backward(g);
  EXPECT_EQ(gx[0], 2.0);  // each input feeds `factor` outputs
}

TEST(Layers, ResidualGradientCheck) {
  Rng rng(4);
  std::vector<std::unique_ptr<Layer>> body;
  body.push_back(std::make_unique<DenseLayer>(5, 5, rng));
  body.push_back(std::make_unique<ActivationLayer>(Activation::Tanh));
  Network net;
  net.add(std::make_unique<ResidualLayer>(std::move(body)));
  const Tensor x = Tensor::randn({3, 5}, rng);
  const Tensor y = Tensor::randn({3, 5}, rng);
  EXPECT_LT(max_gradient_error(net, x, y), 1e-4);
}

TEST(Layers, DropoutTrainVsInference) {
  Rng rng(5);
  DropoutLayer drop(0.5, rng);
  Tensor x = Tensor::full({1, 1000}, 1.0);
  const Tensor y_train = drop.forward(x, true);
  double zeros = 0;
  for (double v : y_train.flat()) zeros += v == 0.0;
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.1);
  const Tensor y_infer = drop.forward(x, false);
  for (double v : y_infer.flat()) EXPECT_EQ(v, 1.0);  // identity at inference
  EXPECT_FALSE(drop.deterministic());
}

TEST(Loss, ValuesAndGradients) {
  const Tensor p({1, 2}, {1.0, 3.0});
  const Tensor t({1, 2}, {0.0, 5.0});
  EXPECT_DOUBLE_EQ(loss_value(LossKind::Mse, p, t), (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(loss_value(LossKind::Mae, p, t), (1.0 + 2.0) / 2.0);
  const Tensor g = loss_grad(LossKind::Mse, p, t);
  EXPECT_DOUBLE_EQ(g[0], 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(g[1], 2.0 * -2.0 / 2.0);
  // Huber behaves quadratic inside delta, linear outside.
  EXPECT_NEAR(loss_value(LossKind::Huber, p, t), (0.5 * 1.0 + (2.0 - 0.5)) / 2.0, 1e-12);
}

TEST(Optimizer, SgdReducesLossOnQuadratic) {
  // Minimize ||w - 3||^2 via the network machinery equivalent: single param.
  Tensor w({1}, {0.0});
  Tensor g({1}, {0.0});
  Sgd opt(0.1, 0.0);
  opt.bind({&w}, {&g});
  for (int i = 0; i < 100; ++i) {
    g[0] = 2.0 * (w[0] - 3.0);
    opt.step();
  }
  EXPECT_NEAR(w[0], 3.0, 1e-3);
}

TEST(Optimizer, AdamReducesLossOnQuadratic) {
  Tensor w({2}, {0.0, 10.0});
  Tensor g({2}, {0.0, 0.0});
  Adam opt(0.3);
  opt.bind({&w}, {&g});
  for (int i = 0; i < 300; ++i) {
    g[0] = 2.0 * (w[0] + 1.0);
    g[1] = 2.0 * (w[1] - 4.0);
    opt.step();
  }
  EXPECT_NEAR(w[0], -1.0, 1e-2);
  EXPECT_NEAR(w[1], 4.0, 1e-2);
}

TEST(Network, SparsePredictMatchesDense) {
  Rng rng(6);
  Network net;
  net.add(std::make_unique<DenseLayer>(10, 6, rng));
  net.add(std::make_unique<ActivationLayer>(Activation::Tanh));
  net.add(std::make_unique<DenseLayer>(6, 2, rng));
  const sparse::Csr x = sparse::random_sparse(4, 10, 0.3, rng);
  const Tensor dense_pred = net.predict(x.to_dense());
  const Tensor sparse_pred = net.predict_sparse(x);
  for (std::size_t i = 0; i < dense_pred.size(); ++i) {
    EXPECT_NEAR(dense_pred[i], sparse_pred[i], 1e-12);
  }
}

TEST(Network, SparseTrainingMatchesDenseTraining) {
  Rng rng(7);
  const sparse::Csr x = sparse::random_sparse(16, 10, 0.3, rng);
  const Tensor y = Tensor::randn({16, 3}, rng);

  auto make_net = [] {
    Rng r(99);
    Network net;
    net.add(std::make_unique<DenseLayer>(10, 8, r));
    net.add(std::make_unique<ActivationLayer>(Activation::Tanh));
    net.add(std::make_unique<DenseLayer>(8, 3, r));
    return net;
  };
  Network dense_net = make_net();
  Network sparse_net = make_net();
  Adam od(1e-2), os(1e-2);
  od.bind(dense_net.params(), dense_net.grads());
  os.bind(sparse_net.params(), sparse_net.grads());

  const Tensor xd = x.to_dense();
  double dl = 0, sl = 0;
  for (int i = 0; i < 5; ++i) {
    dl = dense_net.train_batch(xd, y, LossKind::Mse, od);
    sl = sparse_net.train_batch_sparse(x, y, LossKind::Mse, os);
  }
  EXPECT_NEAR(dl, sl, 1e-9);
  const Tensor pd = dense_net.predict(xd);
  const Tensor ps = sparse_net.predict_sparse(x);
  for (std::size_t i = 0; i < pd.size(); ++i) EXPECT_NEAR(pd[i], ps[i], 1e-9);
}

TEST(Network, CheckpointedTrainingMatchesPlain) {
  Rng rng(8);
  const Tensor x = Tensor::randn({8, 6}, rng);
  const Tensor y = Tensor::randn({8, 2}, rng);
  auto make_net = [] {
    Rng r(5);
    Network net;
    net.add(std::make_unique<DenseLayer>(6, 12, r));
    net.add(std::make_unique<ActivationLayer>(Activation::Tanh));
    net.add(std::make_unique<DenseLayer>(12, 12, r));
    net.add(std::make_unique<ActivationLayer>(Activation::Tanh));
    net.add(std::make_unique<DenseLayer>(12, 2, r));
    return net;
  };
  Network plain = make_net();
  Network ckpt = make_net();
  Adam op(1e-2), oc(1e-2);
  op.bind(plain.params(), plain.grads());
  oc.bind(ckpt.params(), ckpt.grads());
  for (int i = 0; i < 4; ++i) {
    const double lp = plain.train_batch(x, y, LossKind::Mse, op, 1);
    const double lc = ckpt.train_batch(x, y, LossKind::Mse, oc, 3);
    EXPECT_NEAR(lp, lc, 1e-10);  // recomputation must be bit-for-bit-ish
  }
}

TEST(Network, CheckpointingRejectsStochasticLayers) {
  Rng rng(9);
  Network net;
  net.add(std::make_unique<DenseLayer>(4, 4, rng));
  net.add(std::make_unique<DropoutLayer>(0.5, rng));
  net.add(std::make_unique<DenseLayer>(4, 2, rng));
  Adam opt(1e-3);
  opt.bind(net.params(), net.grads());
  const Tensor x = Tensor::randn({2, 4}, rng);
  const Tensor y = Tensor::randn({2, 2}, rng);
  EXPECT_THROW((void)net.train_batch(x, y, LossKind::Mse, opt, 2), Error);
}

TEST(Network, CheckpointingReducesActivationMemory) {
  Rng rng(10);
  Network net;
  std::size_t width = 64;
  net.add(std::make_unique<DenseLayer>(width, width, rng));
  for (int i = 0; i < 6; ++i) {
    net.add(std::make_unique<ActivationLayer>(Activation::Tanh));
    net.add(std::make_unique<DenseLayer>(width, width, rng));
  }
  const std::size_t plain = net.activation_bytes_plain(32, width);
  const std::size_t ckpt = net.activation_bytes_checkpointed(32, width, 4);
  EXPECT_LT(ckpt, plain);  // the whole point of §4.2's gradient checkpointing
  EXPECT_LT(static_cast<double>(ckpt) / static_cast<double>(plain), 0.75);
}

TEST(Network, WeightSerializationRoundTrip) {
  Rng rng(11);
  Network a;
  a.add(std::make_unique<DenseLayer>(4, 3, rng));
  a.add(std::make_unique<ActivationLayer>(Activation::Relu));
  a.add(std::make_unique<DenseLayer>(3, 2, rng));
  std::stringstream ss;
  a.save_weights(ss);

  Rng rng2(999);  // different init — will be overwritten by load
  Network b;
  b.add(std::make_unique<DenseLayer>(4, 3, rng2));
  b.add(std::make_unique<ActivationLayer>(Activation::Relu));
  b.add(std::make_unique<DenseLayer>(3, 2, rng2));
  b.load_weights(ss);

  const Tensor x = Tensor::randn({2, 4}, rng);
  const Tensor pa = a.predict(x);
  const Tensor pb = b.predict(x);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_NEAR(pa[i], pb[i], 1e-12);
}

TEST(Network, CopySemanticDeep) {
  Rng rng(12);
  Network a;
  a.add(std::make_unique<DenseLayer>(3, 3, rng));
  Network b = a;
  // Mutating b's weights must not affect a.
  auto* bd = dynamic_cast<DenseLayer*>(&b.layer(0));
  bd->mutable_weights().fill(0.0);
  const Tensor x = Tensor::randn({1, 3}, rng);
  const Tensor pa = a.predict(x);
  EXPECT_NE(ops::norm2(pa.flat()), 0.0);
}

TEST(Train, DatasetSplitPartitionsRows) {
  Rng rng(13);
  Dataset d;
  d.x = Tensor::randn({10, 3}, rng);
  d.y = Tensor::randn({10, 1}, rng);
  auto [train, val] = d.split(0.7, rng);
  EXPECT_EQ(train.size() + val.size(), 10u);
  EXPECT_GE(train.size(), 1u);
  EXPECT_GE(val.size(), 1u);
}

TEST(Train, NormalizerRoundTrip) {
  Rng rng(14);
  Tensor data = Tensor::randn({20, 4}, rng, 3.0);
  const Normalizer norm = Normalizer::fit(data);
  const Tensor z = norm.apply(data);
  // Standardized columns: ~zero mean.
  for (std::size_t c = 0; c < 4; ++c) {
    double m = 0;
    for (std::size_t r = 0; r < 20; ++r) m += z.at(r, c);
    EXPECT_NEAR(m / 20.0, 0.0, 1e-10);
  }
  const Tensor back = norm.invert(z);
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_NEAR(back[i], data[i], 1e-10);
}

TEST(Train, LearnsLinearMapWell) {
  Rng rng(15);
  Dataset d;
  const Tensor w = Tensor::randn({6, 4}, rng);
  d.x = Tensor::randn({200, 6}, rng);
  d.y = ops::matmul(d.x, w);
  TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 16;
  spec.act = Activation::Identity;
  Rng r2(1);
  Network net = build_surrogate(spec, 6, 4, r2);
  TrainOptions opts;
  opts.epochs = 200;
  opts.lr = 5e-3;
  opts.patience = 100;
  const TrainedSurrogate ts = train_surrogate(std::move(net), d, opts);
  const Tensor pred = ts.predict(d.x);
  EXPECT_LT(mean_relative_error(pred, d.y), 0.05);
}

TEST(Train, EarlyStoppingStopsBeforeBudget) {
  Rng rng(16);
  Dataset d;
  d.x = Tensor::randn({40, 2}, rng);
  d.y = d.x;  // trivially learnable
  TopologySpec spec;
  spec.num_layers = 1;
  spec.hidden_units = 8;
  spec.act = Activation::Identity;
  Rng r2(2);
  Network net = build_surrogate(spec, 2, 2, r2);
  TrainOptions opts;
  opts.epochs = 2000;
  opts.lr = 1e-2;
  opts.patience = 5;
  const TrainedSurrogate ts = train_surrogate(std::move(net), d, opts);
  EXPECT_LT(ts.result.epochs_run, 2000u);
}

TEST(Topology, EncodeDecodeRoundTripPreservesSpec) {
  TopologySpace space;
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const TopologySpec s = space.random(rng);
    const TopologySpec t = space.decode(space.encode(s));
    EXPECT_EQ(t.kind, s.kind);
    EXPECT_EQ(t.num_layers, s.num_layers);
    EXPECT_EQ(t.residual, s.residual);
    EXPECT_EQ(t.act, s.act);
    // Width round-trips within the log-grid resolution.
    const double ratio = static_cast<double>(t.hidden_units) /
                         static_cast<double>(s.hidden_units);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
  }
}

TEST(Topology, DecodeClampsOutOfRange) {
  TopologySpace space;
  std::vector<double> x(TopologySpace::encoded_dim(), 2.0);  // out of box
  const TopologySpec s = space.decode(x);
  EXPECT_LE(s.num_layers, space.max_layers);
  EXPECT_LE(s.hidden_units, space.max_units + 1);
}

TEST(Topology, MutateStaysInSpace) {
  TopologySpace space;
  Rng rng(18);
  TopologySpec s = space.random(rng);
  for (int i = 0; i < 30; ++i) {
    s = space.mutate(s, rng);
    EXPECT_GE(s.num_layers, space.min_layers);
    EXPECT_LE(s.num_layers, space.max_layers);
  }
}

TEST(Topology, BuildCnnShapesCompose) {
  TopologySpec spec;
  spec.kind = ModelKind::Cnn;
  spec.num_layers = 2;
  spec.channels = 4;
  spec.kernel = 3;
  spec.pool = 2;
  spec.hidden_units = 16;
  Rng rng(19);
  Network net = build_surrogate(spec, 32, 5, rng);
  const Tensor x = Tensor::randn({3, 32}, rng);
  const Tensor y = net.predict(x);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 5u);
}

TEST(Topology, InferenceCostGrowsWithWidth) {
  Rng rng(20);
  TopologySpec narrow, wide;
  narrow.hidden_units = 16;
  wide.hidden_units = 256;
  Network a = build_surrogate(narrow, 32, 8, rng);
  Network b = build_surrogate(wide, 32, 8, rng);
  EXPECT_LT(a.inference_cost(1).flops, b.inference_cost(1).flops);
}

}  // namespace
}  // namespace ahn::nn
