// Trace-inspection example: runs the compiler-based feature extractor on a
// traced PCG iteration (Algorithm 1 of the paper) and prints what the
// tooling sees — the dynamic instruction trace, the loop-compression
// effect, the DDDG summary, use-def statistics, and the identified
// input/output variables with array grouping.

#include <iostream>

#include "common/table.hpp"
#include "trace/dddg.hpp"
#include "trace/features.hpp"
#include "trace/traced.hpp"

int main() {
  using namespace ahn;
  using namespace ahn::trace;

  constexpr std::size_t n = 32;

  TraceRecorder rec;
  // Variables of one PCG iteration (Algorithm 1, lines 4-11): the matrix is
  // applied via its action; x, r, p are read-modify-write state.
  TracedArray ap(rec, "Ap", std::vector<double>(n, 1.0), true);
  TracedArray x(rec, "x", std::vector<double>(n, 0.0), true);
  TracedArray r(rec, "r", std::vector<double>(n, 0.5), true);
  TracedArray p(rec, "p", std::vector<double>(n, 0.5), true);
  TracedScalar rr_old(rec, "rr_old", true, static_cast<double>(n) * 0.25);
  TracedScalar tolerance_flag(rec, "converged", true, 0.0);

  rec.begin_region();
  {
    // alpha = (r . r) / (p . Ap)
    TracedValue rr = TracedValue::constant(rec, 0.0);
    TracedValue pap = TracedValue::constant(rec, 0.0);
    rec.begin_loop();
    for (std::size_t i = 0; i < n; ++i) {
      rr = rr + r[i] * r[i];
      pap = pap + p[i] * ap[i];
      rec.end_loop_iteration();
    }
    rec.end_loop();
    const TracedValue alpha = rr / pap;

    // x += alpha p ; r -= alpha Ap (the RAW dependencies §2.1 discusses)
    rec.begin_loop();
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = x[i] + alpha * p[i];
      r[i] = r[i] - alpha * ap[i];
      rec.end_loop_iteration();
    }
    rec.end_loop();

    // beta = (r . r) / rr_old ; p = r + beta p
    TracedValue rr_new = TracedValue::constant(rec, 0.0);
    rec.begin_loop();
    for (std::size_t i = 0; i < n; ++i) {
      rr_new = rr_new + r[i] * r[i];
      rec.end_loop_iteration();
    }
    rec.end_loop();
    const TracedValue beta = rr_new / rr_old.get();
    rec.begin_loop();
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * p[i];
      rec.end_loop_iteration();
    }
    rec.end_loop();
    tolerance_flag = rr_new;  // caller tests convergence on it
  }
  rec.end_region();

  // Post-region uses: the solver state is consumed by the next iteration.
  for (std::size_t i = 0; i < n; ++i) {
    (void)x[i].get();
    (void)r[i].get();
    (void)p[i].get();
  }
  (void)tolerance_flag.get();

  std::cout << "=== PCG iteration trace (Algorithm 1) ===\n\n";
  TextTable stats({"metric", "value"});
  stats.add_row({"dynamic instructions executed",
                 std::to_string(rec.total_region_instructions())});
  stats.add_row({"instructions stored after loop compression",
                 std::to_string(rec.instructions().size())});
  stats.add_row({"compression ratio", TextTable::num(rec.compression_ratio(), 1) + "x"});

  const Dddg dddg = Dddg::build(rec);
  stats.add_row({"DDDG nodes", std::to_string(dddg.node_count())});
  stats.add_row({"DDDG edges", std::to_string(dddg.edge_count())});
  std::size_t exposed = 0;
  for (const auto& [load, def] : dddg.use_def()) {
    if (def == Dddg::npos) ++exposed;
  }
  stats.add_row({"use-def chains resolved",
                 std::to_string(dddg.use_def().size() - exposed)});
  stats.add_row({"upward-exposed loads (root candidates)", std::to_string(exposed)});
  std::cout << stats.render() << "\n";

  const FeatureReport rep = identify_features(rec, dddg);
  std::cout << "identified features (array grouping applied):\n"
            << rep.describe(rec) << "\n\n";
  std::cout << "A surrogate for this region would take " << rep.input_width
            << " input features and produce " << rep.output_width
            << " output features.\n";
  return 0;
}
