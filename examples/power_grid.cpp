// Power-grid example (the paper's Fig. 2 scenario: replacing the power-flow
// solver in a grid simulation). Unlike the registry apps, this walks the
// COMPLETE user journey on a *custom* code region:
//
//   1. write the region against traced handles (the LLVM-Tracer stand-in),
//   2. let the compiler-based extractor identify input/output features from
//      the dynamic trace (DDDG + liveness),
//   3. generate training samples by Gaussian input perturbation (§3.1),
//   4. run the 2D NAS (hierarchical BO + autoencoder) under a quality bound,
//   5. deploy and check quality on fresh inputs.
//
// The region is a DC power-flow solve: B' theta = P (bus susceptance matrix
// against net injections), the linearized core of the MIPS solver the
// paper's power-grid example replaces.

#include <iostream>
#include <numeric>

#include "apps/solvers.hpp"
#include "common/table.hpp"
#include "nas/two_d_nas.hpp"
#include "sparse/generators.hpp"
#include "trace/features.hpp"
#include "trace/sampling.hpp"
#include "trace/traced.hpp"

namespace {

using namespace ahn;

constexpr std::size_t kBuses = 24;  // IEEE-RTS-sized toy grid

/// Fixed grid topology: ring + random chords, as a susceptance matrix.
sparse::Csr build_susceptance() {
  Rng rng(0x9a1dULL);
  sparse::Coo coo;
  coo.rows = coo.cols = kBuses;
  std::vector<double> diag(kBuses, 0.0);
  auto add_line = [&](std::size_t a, std::size_t b, double y) {
    coo.push(a, b, -y);
    coo.push(b, a, -y);
    diag[a] += y;
    diag[b] += y;
  };
  for (std::size_t i = 0; i < kBuses; ++i) {
    add_line(i, (i + 1) % kBuses, rng.uniform(4.0, 10.0));
  }
  for (int c = 0; c < 10; ++c) {
    const auto a = static_cast<std::size_t>(rng.uniform_index(kBuses));
    const auto b = static_cast<std::size_t>(rng.uniform_index(kBuses));
    if (a != b) add_line(a, b, rng.uniform(2.0, 6.0));
  }
  for (std::size_t i = 0; i < kBuses; ++i) {
    coo.push(i, i, diag[i] + 0.5);  // shunt term keeps it SPD
  }
  return sparse::Csr::from_coo(std::move(coo));
}

/// The user's annotated code region, written against traced handles so the
/// extractor can observe it. Solves B theta = P with CG (a few fixed sweeps
/// of traced arithmetic stand in for the full solve in the trace; the
/// actual numerics run below in `power_flow`).
void traced_power_flow_region(trace::TraceRecorder& rec, const sparse::Csr& b_matrix,
                              const std::vector<double>& injections) {
  trace::TracedArray p(rec, "P_injections", injections, true);
  trace::TracedArray theta(rec, "theta", kBuses, true);
  trace::TracedArray bdiag(rec, "B_diag", b_matrix.diagonal(), true);

  rec.begin_region();
  // One damped-Jacobi sweep of the solve, traced (enough for the DDDG to
  // see which variables flow where; loop compression keeps the trace tiny).
  rec.begin_loop();
  for (std::size_t i = 0; i < kBuses; ++i) {
    theta[i] = theta[i] + (p[i] - theta[i] * bdiag[i]) / bdiag[i];
    rec.end_loop_iteration();
  }
  rec.end_loop();
  rec.end_region();
  for (std::size_t i = 0; i < kBuses; ++i) (void)theta[i].get();  // used afterwards
}

/// The real numerical region: exact DC power flow.
std::vector<double> power_flow(const sparse::Csr& b_matrix,
                               const std::vector<double>& injections) {
  std::vector<double> theta(kBuses, 0.0);
  apps::conjugate_gradient(b_matrix, injections, theta, 1e-12, 8 * kBuses);
  return theta;
}

}  // namespace

int main() {
  const sparse::Csr b_matrix = build_susceptance();
  Rng rng(2026);

  // --- Step 1+2: trace the annotated region, identify features.
  std::vector<double> base_injections(kBuses);
  for (std::size_t i = 0; i < kBuses; ++i) {
    base_injections[i] = rng.uniform(-1.0, 1.0);
  }
  // Balance injections (sum to zero, as power flow requires).
  const double mean =
      std::accumulate(base_injections.begin(), base_injections.end(), 0.0) / kBuses;
  for (double& v : base_injections) v -= mean;

  trace::TraceRecorder rec;
  traced_power_flow_region(rec, b_matrix, base_injections);
  const trace::FeatureReport features = trace::identify_features(rec);
  std::cout << "Compiler-based extractor on the power-flow region:\n"
            << features.describe(rec) << "\n"
            << "trace: " << rec.total_region_instructions() << " dynamic instructions, "
            << rec.instructions().size() << " stored (loop compression "
            << TextTable::num(rec.compression_ratio(), 1) << "x)\n\n";

  // --- Step 3: training samples by Gaussian perturbation of the inputs.
  const trace::RegionFn region = [&](const std::vector<double>& p) {
    return power_flow(b_matrix, p);
  };
  trace::PerturbationSpec perturb;
  perturb.sigma = 0.2;
  nn::Dataset data = trace::generate_samples(region, base_injections, 400, perturb, rng);
  std::cout << "Generated " << data.size() << " training samples ("
            << data.in_features() << " -> " << data.out_features() << ")\n\n";

  // --- Step 4: 2D NAS under a 5% quality bound.
  nas::SearchTask task;
  task.data = std::move(data);
  task.quality_bound = 0.05;
  task.train.epochs = 150;
  task.train.lr = 3e-3;
  // Quality probe: fresh perturbed injections each call.
  auto probe_rng = std::make_shared<Rng>(99);
  task.evaluate_quality = [&, probe_rng](const nas::PipelineModel& pm) {
    double total = 0.0;
    const int kProbes = 12;
    for (int i = 0; i < kProbes; ++i) {
      std::vector<double> p = base_injections;
      for (double& v : p) v = probe_rng->gaussian(v, 0.2 * std::abs(v) + 0.02);
      const std::vector<double> exact = power_flow(b_matrix, p);
      const std::vector<double> pred = pm.infer(p);
      double num = 0.0, den = 0.0;
      for (std::size_t j = 0; j < exact.size(); ++j) {
        num += (pred[j] - exact[j]) * (pred[j] - exact[j]);
        den += exact[j] * exact[j];
      }
      total += std::sqrt(num / (den + 1e-30));
    }
    return total / kProbes;
  };

  nas::NasOptions opts;
  // Table 1 searchType=userModel: power flow is linear, so start the search
  // from a linear topology (the user's domain knowledge, as §6.1 intends).
  opts.search_type = nas::SearchType::UserModel;
  opts.user_model.num_layers = 1;
  opts.user_model.hidden_units = 48;
  opts.user_model.act = nn::Activation::Identity;
  opts.outer_iterations = 2;
  opts.inner_iterations = 4;
  opts.k_min = 4;
  opts.k_max = 16;
  const nas::NasResult result = nas::TwoDNas(opts).search(task);
  std::cout << "2D NAS: " << result.evaluations() << " candidates, best "
            << result.best.spec.describe()
            << (result.best.latent_k > 0
                    ? " on K=" + std::to_string(result.best.latent_k)
                    : " on full input")
            << ", f_e = " << TextTable::num(result.best.quality_error, 4)
            << (result.found_feasible ? " (meets 5% bound)" : " (NOT within bound)")
            << "\n\n";

  // --- Step 5: spot-check the deployed surrogate on fresh operating points.
  TextTable table({"operating point", "max |theta| exact", "rel err"});
  for (int i = 0; i < 5; ++i) {
    std::vector<double> p = base_injections;
    for (double& v : p) v = rng.gaussian(v, 0.2 * std::abs(v) + 0.02);
    const std::vector<double> exact = power_flow(b_matrix, p);
    const std::vector<double> pred = result.best.infer(p);
    double num = 0.0, den = 0.0, max_theta = 0.0;
    for (std::size_t j = 0; j < exact.size(); ++j) {
      num += (pred[j] - exact[j]) * (pred[j] - exact[j]);
      den += exact[j] * exact[j];
      max_theta = std::max(max_theta, std::abs(exact[j]));
    }
    table.add_row({std::to_string(i), TextTable::num(max_theta, 4),
                   TextTable::num(std::sqrt(num / den), 5)});
  }
  std::cout << table.render();
  return 0;
}
