// Metrics-server example (docs/OBSERVABILITY.md): stands up a small serving
// cluster, generates traffic with head-sampled tracing and two SLOs
// attached, and serves the live observability surface over HTTP:
//
//   /metrics  OpenMetrics text with per-bucket trace exemplars
//   /healthz  liveness JSON (per-shard alive flags)
//   /slo      per-shard burn-rate verdicts as JSON
//   /tracez   Chrome trace (load into chrome://tracing or Perfetto)
//
// Usage: metrics_server [port] [seconds]
//   port     bind port (default 0 = ephemeral; the real port is printed)
//   seconds  how long to keep serving after the warm-up traffic (default 5;
//            0 = scrape-and-exit immediately after printing the port, which
//            is what the CI smoke test uses)
//
// While the server is up the example keeps a background trickle of requests
// flowing so repeated scrapes show moving counters.

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "nn/topology.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "runtime/cluster.hpp"

int main(int argc, char** argv) {
  using namespace ahn;

  const std::uint16_t port =
      argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 0;
  const double serve_seconds = argc > 2 ? std::atof(argv[2]) : 5.0;

  // A 2-shard cluster with tracing on (every 4th request) and two SLOs with
  // window constants compressed so burn rates move while you watch.
  obs::Tracer tracer;
  runtime::ClusterOptions opts;
  opts.shards = 2;
  opts.replication = 2;
  opts.shard_opts.max_batch = 1;
  opts.shard_opts.batch_delay_seconds = 0.0;
  opts.shard_opts.tracer = &tracer;
  opts.shard_opts.trace_sample_every = 4;
  obs::SloSpec avail;
  avail.name = "availability";
  avail.kind = obs::SloKind::kAvailability;
  avail.objective = 0.999;
  avail.fast_window_seconds = 5.0;
  avail.mid_window_seconds = 30.0;
  avail.slow_window_seconds = 120.0;
  obs::SloSpec p99 = avail;
  p99.name = "p99_latency";
  p99.kind = obs::SloKind::kLatency;
  p99.objective = 0.99;
  p99.threshold_seconds = 1e-3;
  opts.shard_opts.slos = {avail, p99};

  runtime::ClusterOrchestrator cluster(opts);
  Rng rng(7);
  nn::TopologySpec spec;
  spec.num_layers = 2;
  spec.hidden_units = 32;
  nn::Network net = nn::build_surrogate(spec, 16, 4, rng);
  auto model = std::make_shared<runtime::ServableModel>();
  model->infer_ops = net.inference_cost(1);
  model->surrogate.net = std::move(net);
  cluster.set_model("surrogate", model);

  // Warm-up traffic so the first scrape already has histograms, spans, and
  // exemplars to show.
  const Tensor row = Tensor::randn({1, 16}, rng);
  for (int i = 0; i < 256; ++i) {
    auto f = cluster.run_model_batched("surrogate", row,
                                       "warm/" + std::to_string(i));
    if (!f.get().is_ok()) {
      std::cerr << "warm-up request failed\n";
      return 1;
    }
  }

  obs::HttpServer& server = cluster.serve_exposition(port);
  // CI greps for this exact line to discover the ephemeral port.
  std::cout << "metrics server listening on http://127.0.0.1:" << server.port()
            << "\n"
            << "  curl http://127.0.0.1:" << server.port() << "/metrics\n"
            << "  curl http://127.0.0.1:" << server.port() << "/healthz\n"
            << "  curl http://127.0.0.1:" << server.port() << "/slo\n"
            << "  curl http://127.0.0.1:" << server.port() << "/tracez\n"
            << std::flush;

  // A background trickle (~200 req/s) keeps the scraped counters moving.
  std::atomic<bool> done{false};
  std::thread traffic([&] {
    std::uint64_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto f = cluster.run_model_batched("surrogate", row,
                                         "live/" + std::to_string(i++));
      (void)f.get();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  Timer wall;
  while (wall.seconds() < serve_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  done.store(true, std::memory_order_release);
  traffic.join();

  const runtime::ClusterHealth h = cluster.cluster_health();
  std::cout << "served " << h.requests_served << " requests ("
            << h.shards_alive << "/" << h.shards_total
            << " shards alive); shutting down\n";
  return 0;
}
