// Fluid simulation example (the paper's §2 motivation): the NS_equation
// projection step — whose core is the PCG pressure solve of Algorithm 1 —
// is replaced with an Auto-HPCnet surrogate. The example then runs a short
// simulation loop where each step is served through the orchestrator
// (Listing 1's client API) with QoI checking and restart-on-miss fallback,
// and reports per-step quality and the modeled end-to-end speedup.

#include <iostream>

#include "apps/fluidanimate_app.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "runtime/orchestrator.hpp"

int main(int argc, char** argv) {
  using namespace ahn;

  core::Config config = core::Config::from_args(argc, argv);
  config.outer_iterations = 2;
  config.inner_iterations = 3;

  apps::FluidanimateApp app;
  std::cout << "Building a surrogate for " << app.replaced_function()
            << " (grid " << app.input_dim() / 2 << " cells, QoI: " << app.qoi_name()
            << ") ...\n";
  const core::AutoHPCnet framework(config);
  const core::PipelineResult result = framework.run(app);
  std::cout << "  searched model: " << result.model.spec.describe()
            << (result.model.latent_k > 0
                    ? " on K=" + std::to_string(result.model.latent_k) + " features"
                    : " on full input")
            << ", search f_e = " << TextTable::num(result.model.quality_error, 4)
            << "\n\n";

  // Deploy through the orchestrator exactly as Listing 1 does: the "HPC
  // application" below only talks to the Client.
  runtime::Orchestrator orchestrator;
  auto servable = std::make_shared<runtime::ServableModel>();
  if (result.model.encoder != nullptr) {
    auto encoder = result.model.encoder;
    servable->encode = [encoder](const Tensor& x) { return encoder->encode(x); };
    servable->encode_ops = encoder->encode_cost(1);
  }
  servable->infer_ops = result.model.surrogate.net.inference_cost(1);
  servable->surrogate = result.model.surrogate;
  orchestrator.set_model("AI-CFD-net", servable);
  runtime::Client client(orchestrator);

  // Simulation loop over the held-out problems ("timesteps").
  TextTable table({"step", "QoI err", "accepted", "exact us", "surrogate us"});
  PhaseAccumulator phases;
  double exact_total = 0.0, surrogate_total = 0.0;
  std::size_t accepted = 0;
  const std::size_t steps = std::min<std::size_t>(10, result.eval_problems.size());
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t problem = result.eval_problems[s];

    // Exact path (reference + fallback).
    const apps::RegionRun exact = app.run_region(problem);

    // Surrogate path via the client (Listing 1: put / run / unpack).
    const std::vector<double> feat = app.input_features(problem);
    Tensor in({1, feat.size()});
    std::copy(feat.begin(), feat.end(), in.row(0).begin());
    client.put_tensor("in_key", std::move(in));
    const double before = phases.total();
    if (!client.run_model("AI-CFD-net", "in_key", "out_key", &phases).is_ok()) {
      std::cerr << "surrogate serving failed\n";
      return 1;
    }
    const double online_seconds = phases.total() - before;
    const Tensor out = client.unpack_tensor("out_key");
    const std::vector<double> pred(out.row(0).begin(), out.row(0).end());

    const double err = app.qoi_error(problem, exact.outputs, pred);
    const bool ok = err <= config.mu;
    if (ok) ++accepted;
    exact_total += exact.region_seconds;
    surrogate_total += online_seconds + (ok ? 0.0 : exact.region_seconds);
    table.add_row({std::to_string(s), TextTable::num(err, 4), ok ? "yes" : "RESTART",
                   TextTable::num(1e6 * exact.region_seconds, 1),
                   TextTable::num(1e6 * online_seconds, 1)});
  }

  std::cout << table.render() << "\n";
  std::cout << "accepted " << accepted << "/" << steps
            << " steps; modeled speedup over the simulation: "
            << TextTable::num(exact_total / surrogate_total, 2) << "x\n";
  std::cout << "online phase split: fetch " << TextTable::num(100 * phases.fraction("fetch"), 1)
            << "% / encode " << TextTable::num(100 * phases.fraction("encode"), 1)
            << "% / load " << TextTable::num(100 * phases.fraction("load"), 1)
            << "% / run " << TextTable::num(100 * phases.fraction("run"), 1) << "%\n";
  return 0;
}
