// Quickstart: build an NN surrogate for the Blackscholes pricing kernel with
// the full Auto-HPCnet workflow — data acquisition, 2D NAS with the
// customized autoencoder, deployment, evaluation — then serve the searched
// model through the concurrent batched runtime (docs/SERVING.md).
//
// Usage: quickstart [key=value ...]   (keys from core::Config, e.g.
//        trainProblems=100 evalProblems=40 qualityLoss=0.1)

#include <future>
#include <iostream>
#include <vector>

#include "apps/registry.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "runtime/orchestrator.hpp"

int main(int argc, char** argv) {
  using namespace ahn;

  core::Config config;
  // Keep the quickstart snappy (a couple of minutes); overrides on the
  // command line take precedence.
  config.outer_iterations = 2;
  config.inner_iterations = 3;
  for (int i = 1; i < argc; ++i) config.apply(argv[i]);

  auto app = apps::make_application("Blackscholes");
  std::cout << "Application: " << app->name() << " (replacing "
            << app->replaced_function() << ", QoI: " << app->qoi_name() << ")\n";

  const core::AutoHPCnet framework(config);
  const core::PipelineResult result = framework.run(*app);

  std::cout << "\nSearched " << result.search.evaluations() << " candidates; best: "
            << result.model.spec.describe();
  if (result.model.latent_k > 0) {
    std::cout << " with K=" << result.model.latent_k << " reduced features";
  }
  std::cout << "\n  search quality f_e = " << result.model.quality_error
            << " (bound " << config.quality_loss << ")\n";

  TextTable table({"metric", "value"});
  table.add_row({"speedup (Eqn 2)", TextTable::num(result.evaluation.speedup) + "x"});
  table.add_row({"hit rate (Eqn 3)", TextTable::num(100.0 * result.evaluation.hit_rate, 1) + "%"});
  table.add_row({"mean QoI error", TextTable::num(result.evaluation.mean_qoi_error, 4)});
  table.add_row({"offline sample gen (s)",
                 TextTable::num(result.offline.sample_generation_seconds, 3)});
  table.add_row({"offline search (s)", TextTable::num(result.offline.search_seconds, 3)});
  table.add_row({"  of which AE training (s)",
                 TextTable::num(result.offline.autoencoder_seconds, 3)});
  std::cout << "\n" << table.render();

  // Serve the searched model through the §6.3 runtime: register it with the
  // orchestrator, then submit each evaluation problem as a single-row
  // request on the micro-batching path (coalesced into shared GEMMs).
  runtime::Orchestrator orchestrator;  // same default DeviceModel the search used
  auto servable = std::make_shared<runtime::ServableModel>();
  if (result.model.encoder != nullptr) {
    auto encoder = result.model.encoder;
    servable->encode = [encoder](const Tensor& x) { return encoder->encode(x); };
    servable->encode_ops = encoder->encode_cost(1);
  }
  servable->infer_ops = result.model.surrogate.net.inference_cost(1);
  servable->surrogate = result.model.surrogate;
  orchestrator.set_model("blackscholes-net", std::move(servable));

  runtime::Client serving_client(orchestrator);
  std::vector<std::future<Result<Tensor>>> pending;
  for (const std::size_t p : result.eval_problems) {
    pending.push_back(serving_client.run_model_batched(
        "blackscholes-net", Tensor::vector1d(app->input_features(p))));
  }
  orchestrator.flush_batches();
  for (auto& f : pending) (void)f.get().value();
  orchestrator.drain();  // graceful shutdown: every accepted request resolved

  const ServingStatsSnapshot serving = orchestrator.stats().snapshot();
  std::cout << "\nServed " << serving.requests_served << " requests in "
            << serving.batches_executed << " micro-batches (mean batch "
            << TextTable::num(serving.mean_batch_size(), 1) << "), p99 online latency "
            << TextTable::num(
                   orchestrator.stats().latency_percentile("total", 99.0) * 1e6, 2)
            << " us/request\n";
  return 0;
}
