// Quickstart: build an NN surrogate for the Blackscholes pricing kernel with
// the full Auto-HPCnet workflow — data acquisition, 2D NAS with the
// customized autoencoder, deployment, evaluation — in ~30 lines of user
// code.
//
// Usage: quickstart [key=value ...]   (keys from core::Config, e.g.
//        trainProblems=100 evalProblems=40 qualityLoss=0.1)

#include <iostream>

#include "apps/registry.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace ahn;

  core::Config config;
  // Keep the quickstart snappy (a couple of minutes); overrides on the
  // command line take precedence.
  config.outer_iterations = 2;
  config.inner_iterations = 3;
  for (int i = 1; i < argc; ++i) config.apply(argv[i]);

  auto app = apps::make_application("Blackscholes");
  std::cout << "Application: " << app->name() << " (replacing "
            << app->replaced_function() << ", QoI: " << app->qoi_name() << ")\n";

  const core::AutoHPCnet framework(config);
  const core::PipelineResult result = framework.run(*app);

  std::cout << "\nSearched " << result.search.evaluations() << " candidates; best: "
            << result.model.spec.describe();
  if (result.model.latent_k > 0) {
    std::cout << " with K=" << result.model.latent_k << " reduced features";
  }
  std::cout << "\n  search quality f_e = " << result.model.quality_error
            << " (bound " << config.quality_loss << ")\n";

  TextTable table({"metric", "value"});
  table.add_row({"speedup (Eqn 2)", TextTable::num(result.evaluation.speedup) + "x"});
  table.add_row({"hit rate (Eqn 3)", TextTable::num(100.0 * result.evaluation.hit_rate, 1) + "%"});
  table.add_row({"mean QoI error", TextTable::num(result.evaluation.mean_qoi_error, 4)});
  table.add_row({"offline sample gen (s)",
                 TextTable::num(result.offline.sample_generation_seconds, 3)});
  table.add_row({"offline search (s)", TextTable::num(result.offline.search_seconds, 3)});
  table.add_row({"  of which AE training (s)",
                 TextTable::num(result.offline.autoencoder_seconds, 3)});
  std::cout << "\n" << table.render();
  return 0;
}
