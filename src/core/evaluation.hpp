#pragma once
// Application-level evaluation: whole-application speedup (Eqn 2) and
// prediction hit rate (Eqn 3), with the online-time breakdown of §7.3 and
// the restart-on-miss fallback accounting of §7.1.

#include <span>

#include "common/serving_stats.hpp"
#include "apps/application.hpp"
#include "nas/search_task.hpp"
#include "runtime/deployment.hpp"

namespace ahn::core {

struct OnlineBreakdown {
  double fetch = 0.0;
  double encode = 0.0;
  double load = 0.0;
  double run = 0.0;

  [[nodiscard]] double total() const noexcept { return fetch + encode + load + run; }
};

struct AppEvaluation {
  double speedup = 1.0;        ///< Eqn 2 over all evaluation problems
  double hit_rate = 1.0;       ///< Eqn 3
  double mean_qoi_error = 0.0;
  double exact_seconds = 0.0;      ///< sum T_solver + T_other (measured)
  double surrogate_seconds = 0.0;  ///< sum T_infer' + T_load' + T_other (+fallback)
  OnlineBreakdown breakdown;       ///< summed modeled online phases
};

struct EvalOptions {
  double mu = 0.1;             ///< Eqn-3 acceptance bound
  bool fallback_on_miss = true;///< restart with the original code on a miss
  ServingStats* stats = nullptr;///< optional serving-metrics sink (QoI
                               ///  fallbacks + per-request phase latency)
};

/// Evaluates a searched pipeline on the given problems of `app`.
[[nodiscard]] AppEvaluation evaluate_pipeline(const apps::Application& app,
                                              std::span<const std::size_t> problems,
                                              const nas::PipelineModel& model,
                                              const runtime::DeviceModel& device,
                                              const EvalOptions& opts = {});

}  // namespace ahn::core
