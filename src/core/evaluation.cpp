#include "core/evaluation.hpp"

#include <algorithm>

namespace ahn::core {

AppEvaluation evaluate_pipeline(const apps::Application& app,
                                std::span<const std::size_t> problems,
                                const nas::PipelineModel& model,
                                const runtime::DeviceModel& device,
                                const EvalOptions& opts) {
  AHN_CHECK(!problems.empty());
  const runtime::DeployedSurrogate deployed(model.encoder, model.surrogate, device);

  // When the app's natural input is sparse, ship the CSR batch (the sparse
  // fast path: smaller fetch payload, no densification).
  sparse::Csr sparse_batch;
  if (app.has_sparse_input()) sparse_batch = app.sparse_input_batch(problems);

  AppEvaluation ev;
  std::size_t hits = 0;
  for (std::size_t idx = 0; idx < problems.size(); ++idx) {
    const std::size_t p = problems[idx];
    const apps::RegionRun exact = app.run_region(p);
    const double other = app.other_part_seconds(p);

    runtime::InferenceResult inf;
    if (app.has_sparse_input()) {
      inf = deployed.infer_sparse(sparse_batch, idx);
    } else {
      inf = deployed.infer(app.input_features(p));
    }

    const double err = app.qoi_error(p, exact.outputs, inf.outputs);
    const bool hit = err <= opts.mu;
    if (hit) ++hits;
    ev.mean_qoi_error += err;

    ev.exact_seconds += exact.region_seconds + other;
    double surr = inf.timing.total() + other;
    if (!hit && opts.fallback_on_miss) {
      // §7.1: the application restarts and runs the original code region.
      surr += exact.region_seconds;
      if (opts.stats != nullptr) opts.stats->record_qoi_fallback();
    }
    ev.surrogate_seconds += surr;

    if (opts.stats != nullptr) {
      opts.stats->record_request({inf.timing.fetch_seconds, inf.timing.encode_seconds,
                                  inf.timing.load_seconds, inf.timing.run_seconds});
    }

    ev.breakdown.fetch += inf.timing.fetch_seconds;
    ev.breakdown.encode += inf.timing.encode_seconds;
    ev.breakdown.load += inf.timing.load_seconds;
    ev.breakdown.run += inf.timing.run_seconds;
  }

  ev.hit_rate = static_cast<double>(hits) / static_cast<double>(problems.size());
  ev.mean_qoi_error /= static_cast<double>(problems.size());
  ev.speedup = ev.exact_seconds / std::max(ev.surrogate_seconds, 1e-12);
  return ev;
}

}  // namespace ahn::core
