#include "core/pipeline.hpp"

#include <memory>
#include <numeric>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace ahn::core {

nn::Dataset AutoHPCnet::acquire_samples(const apps::Application& app,
                                        std::span<const std::size_t> problems) const {
  AHN_CHECK(!problems.empty());
  nn::Dataset data;
  data.x = Tensor({problems.size(), app.input_dim()});
  data.y = Tensor({problems.size(), app.output_dim()});
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const std::vector<double> feat = app.input_features(problems[i]);
    AHN_CHECK(feat.size() == app.input_dim());
    std::copy(feat.begin(), feat.end(), data.x.row(i).begin());
    const apps::RegionRun run = app.run_region(problems[i]);
    AHN_CHECK(run.outputs.size() == app.output_dim());
    std::copy(run.outputs.begin(), run.outputs.end(), data.y.row(i).begin());
  }
  return data;
}

nas::SearchTask AutoHPCnet::make_task(const apps::Application& app, nn::Dataset data,
                                      std::span<const std::size_t> valid_problems,
                                      std::shared_ptr<sparse::Csr>& sparse_storage) const {
  nas::SearchTask task;
  task.data = std::move(data);
  task.device = runtime::DeviceModel{};
  task.quality_bound = config_.quality_loss;
  task.encoding_loss_bound = config_.encoding_loss;
  task.train = config_.train_options();
  task.space.allow_cnn = config_.init_model == nn::ModelKind::Cnn;
  task.seed = config_.seed;

  if (app.has_sparse_input()) {
    // CSR view of the training features for the sparse AE / NAS path.
    sparse_storage = std::make_shared<sparse::Csr>(
        sparse::Csr::from_dense(task.data.x, 0.0));
    task.sparse_x = sparse_storage.get();
  }

  // Cache exact outputs + features for the validation problems once; the
  // quality callback replays the candidate pipeline against them.
  auto cache = std::make_shared<std::vector<std::pair<std::vector<double>,
                                                      std::vector<double>>>>();
  cache->reserve(valid_problems.size());
  for (std::size_t p : valid_problems) {
    cache->emplace_back(app.input_features(p), app.run_region(p).outputs);
  }
  const apps::Application* app_ptr = &app;
  const std::vector<std::size_t> valid(valid_problems.begin(), valid_problems.end());
  task.evaluate_quality = [cache, app_ptr, valid](const nas::PipelineModel& pm) {
    double total = 0.0;
    for (std::size_t i = 0; i < cache->size(); ++i) {
      const auto& [features, exact] = (*cache)[i];
      const std::vector<double> pred = pm.infer(features);
      total += app_ptr->qoi_error(valid[i], exact, pred);
    }
    return total / static_cast<double>(cache->size());
  };
  return task;
}

PipelineResult AutoHPCnet::run(apps::Application& app) const {
  const std::size_t n_train = config_.train_problems > 0
                                  ? config_.train_problems
                                  : app.recommended_train_problems();
  const std::size_t total = n_train + config_.valid_problems + config_.eval_problems;
  app.generate_problems(total, config_.seed);

  std::vector<std::size_t> all(total);
  std::iota(all.begin(), all.end(), 0);
  const std::span<const std::size_t> train_ids(all.data(), n_train);
  const std::span<const std::size_t> valid_ids(all.data() + n_train,
                                               config_.valid_problems);
  const std::span<const std::size_t> eval_ids(all.data() + n_train + config_.valid_problems,
                                              config_.eval_problems);

  PipelineResult result;
  result.eval_problems.assign(eval_ids.begin(), eval_ids.end());

  // One trace per pipeline run: the phase spans below all nest under it, so
  // an exported trace shows sample-gen / search / retrain as siblings.
  obs::Tracer& tracer = obs::Tracer::global();
  const obs::Span pipeline_span(tracer, "offline.pipeline");

  // Phase 1: data acquisition (§3) — the trace-generation analogue.
  const Timer acq_timer;
  nn::Dataset data;
  {
    const obs::Span span(tracer, "offline.sample_generation");
    data = acquire_samples(app, train_ids);
  }
  result.offline.sample_generation_seconds = acq_timer.seconds();

  // Phase 2: hierarchical BO with the customized autoencoder (§4, §5).
  std::shared_ptr<sparse::Csr> sparse_storage;
  nas::SearchTask task = make_task(app, std::move(data), valid_ids, sparse_storage);
  nas::NasOptions nas_opts = config_.nas_options();
  std::unique_ptr<runtime::ThreadPool> search_pool;
  if (config_.search_workers > 1) {
    search_pool = std::make_unique<runtime::ThreadPool>(config_.search_workers);
    nas_opts.pool = search_pool.get();
  }
  const nas::TwoDNas searcher(nas_opts);
  {
    const obs::Span span(tracer, "offline.search");
    result.search = searcher.search(task);
  }
  result.offline.search_seconds = result.search.search_seconds;
  result.offline.autoencoder_seconds = result.search.autoencoder_train_seconds;
  result.model = result.search.best;

  // Phase 2b: the search trains candidates with a cheap proxy budget; give
  // the winning (K, theta) one long final training run before deployment.
  if (config_.retrain_epochs > config_.num_epoch &&
      result.model.surrogate.net.layer_count() > 0) {
    const obs::Span span(tracer, "offline.retrain");
    const Timer retrain_timer;
    task.train.epochs = config_.retrain_epochs;
    task.train.patience = 30;
    nn::Dataset reduced;
    if (result.model.encoder != nullptr) {
      reduced.x = task.sparse_x != nullptr
                      ? result.model.encoder->encode_sparse(*task.sparse_x)
                      : result.model.encoder->encode(task.data.x);
      reduced.y = task.data.y;
    } else {
      reduced = task.data;
    }
    Rng retrain_rng(config_.seed ^ 0x2e72a12ULL);
    nas::PipelineModel retrained = nas::evaluate_candidate(
        task, result.model.spec, result.model.encoder, reduced, retrain_rng);
    // Keep the retrained model only if it is at least as good on f_e.
    if (retrained.quality_error <= result.model.quality_error) {
      result.model = std::move(retrained);
    }
    result.offline.search_seconds += retrain_timer.seconds();
  }
  AHN_INFO_C("pipeline", app.name() << ": search done, feasible=" << result.search.found_feasible
                      << " f_e=" << result.model.quality_error
                      << " K=" << result.model.latent_k << " spec="
                      << result.model.spec.describe());

  // Phase 3: deployment + evaluation on held-out problems (§7.1).
  EvalOptions eopts;
  eopts.mu = config_.mu;
  result.evaluation = evaluate_pipeline(app, eval_ids, result.model, task.device, eopts);
  return result;
}

}  // namespace ahn::core
