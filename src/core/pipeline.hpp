#pragma once
// The Auto-HPCnet end-to-end workflow (Fig. 1): data acquisition ->
// customized autoencoder + 2D NAS -> deployment -> evaluation, with
// per-phase offline timing (the §7.3 overhead analysis).

#include <memory>

#include "apps/application.hpp"
#include "core/config.hpp"
#include "core/evaluation.hpp"
#include "nas/two_d_nas.hpp"

namespace ahn::core {

struct OfflineReport {
  double sample_generation_seconds = 0.0;  ///< data acquisition (§3)
  double search_seconds = 0.0;             ///< hierarchical BO (§5)
  double autoencoder_seconds = 0.0;        ///< AE training inside the BO (§4)

  [[nodiscard]] double total() const noexcept {
    return sample_generation_seconds + search_seconds;
    // autoencoder_seconds is included in search_seconds (it runs inside the
    // outer BO loop); it is reported separately for the §7.3 breakdown.
  }
};

/// Everything the framework produced for one application.
struct PipelineResult {
  nas::PipelineModel model;
  nas::NasResult search;
  OfflineReport offline;
  AppEvaluation evaluation;
  std::vector<std::size_t> eval_problems;
};

class AutoHPCnet {
 public:
  explicit AutoHPCnet(Config config) : config_(std::move(config)) {}

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Runs the full workflow on `app`: generates problems, acquires samples,
  /// searches, evaluates on held-out problems.
  [[nodiscard]] PipelineResult run(apps::Application& app) const;

  /// Data acquisition only (§3): runs the exact region over the training
  /// problems and assembles the (features -> outputs) dataset.
  [[nodiscard]] nn::Dataset acquire_samples(const apps::Application& app,
                                            std::span<const std::size_t> problems) const;

  /// Builds the search task for `app` (quality callback over validation
  /// problems, device model, Table-1 bounds). `sparse_storage` receives the
  /// CSR view when the app has sparse inputs and must outlive the task.
  [[nodiscard]] nas::SearchTask make_task(const apps::Application& app,
                                          nn::Dataset data,
                                          std::span<const std::size_t> valid_problems,
                                          std::shared_ptr<sparse::Csr>& sparse_storage) const;

 private:
  Config config_;
};

}  // namespace ahn::core
