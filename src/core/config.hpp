#pragma once
// Framework configuration — the user-facing knob surface of Table 1, plus
// the reproduction's workload-scale knobs. Parsed from key=value strings so
// benches and examples can override from the command line.

#include <cstdint>
#include <string>
#include <vector>

#include "nas/two_d_nas.hpp"
#include "nn/topology.hpp"

namespace ahn::core {

struct Config {
  // ----- search-level (Table 1) -----
  nas::SearchType search_type = nas::SearchType::Autokeras;  ///< -searchType
  std::size_t bayesian_init = 3;     ///< -bayesianInit
  double encoding_loss = 0.25;       ///< -encodingLoss (Eqn-1 bound)
  double quality_loss = 0.1;         ///< -qualityLoss (epsilon on f_e)
  std::size_t outer_iterations = 3;  ///< outer-BO budget (K search)
  std::size_t inner_iterations = 5;  ///< inner-BO budget (theta search)
  std::size_t k_min = 4;
  std::size_t k_max = 48;
  std::size_t ae_epochs = 30;
  /// Worker threads for concurrent NAS candidate training (-searchWorkers).
  /// <= 1 evaluates inline; > 1 also widens the inner-BO proposal batch to
  /// match. Either way the search result is identical (see NasOptions).
  std::size_t search_workers = 1;

  // ----- model-level (Table 1) -----
  nn::ModelKind init_model = nn::ModelKind::Mlp;  ///< -initModel
  bool preprocessing = true;                      ///< -preprocessing
  std::size_t num_epoch = 120;                    ///< -numEpoch (search-time proxy)
  std::size_t retrain_epochs = 250;               ///< final retraining of the winner
  double train_ratio = 0.8;                       ///< -trainRatio
  std::size_t batch_size = 32;                    ///< -batchSize
  double lr = 2e-3;                               ///< -lr

  // ----- data acquisition / evaluation scale -----
  std::size_t train_problems = 0;    ///< 0 = use the app's recommendation
  std::size_t valid_problems = 20;   ///< problems driving f_e inside the search
  std::size_t eval_problems = 60;    ///< held-out problems for speedup/HitRate
  double mu = 0.1;                   ///< Eqn-3 acceptance bound
  std::uint64_t seed = 42;

  /// Applies one "key=value" override; throws on unknown keys/bad values.
  void apply(const std::string& assignment);

  /// Applies argv-style overrides (each "key=value").
  static Config from_args(int argc, const char* const* argv);

  [[nodiscard]] nas::NasOptions nas_options() const;
  [[nodiscard]] nn::TrainOptions train_options() const;
};

}  // namespace ahn::core
