#include "core/config.hpp"

#include <algorithm>
#include <charconv>

#include "common/error.hpp"

namespace ahn::core {

namespace {

std::pair<std::string, std::string> split_assignment(const std::string& s) {
  const std::size_t eq = s.find('=');
  AHN_CHECK_MSG(eq != std::string::npos && eq > 0 && eq + 1 < s.size(),
                "expected key=value, got '" << s << "'");
  return {s.substr(0, eq), s.substr(eq + 1)};
}

std::size_t to_size(const std::string& v) {
  std::size_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  AHN_CHECK_MSG(ec == std::errc{} && ptr == v.data() + v.size(),
                "bad integer '" << v << "'");
  return out;
}

double to_double(const std::string& v) {
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    AHN_CHECK_MSG(pos == v.size(), "bad number '" << v << "'");
    return out;
  } catch (const std::exception&) {
    throw Error("bad number '" + v + "'");
  }
}

}  // namespace

void Config::apply(const std::string& assignment) {
  const auto [key, value] = split_assignment(assignment);
  if (key == "searchType") {
    if (value == "autokeras") {
      search_type = nas::SearchType::Autokeras;
    } else if (value == "userModel") {
      search_type = nas::SearchType::UserModel;
    } else if (value == "fullInput") {
      search_type = nas::SearchType::FullInput;
    } else {
      throw Error("unknown searchType '" + value + "'");
    }
  } else if (key == "bayesianInit") {
    bayesian_init = to_size(value);
  } else if (key == "encodingLoss") {
    encoding_loss = to_double(value);
  } else if (key == "qualityLoss") {
    quality_loss = to_double(value);
  } else if (key == "outerIterations") {
    outer_iterations = to_size(value);
  } else if (key == "innerIterations") {
    inner_iterations = to_size(value);
  } else if (key == "kMin") {
    k_min = to_size(value);
  } else if (key == "kMax") {
    k_max = to_size(value);
  } else if (key == "aeEpochs") {
    ae_epochs = to_size(value);
  } else if (key == "searchWorkers") {
    search_workers = to_size(value);
  } else if (key == "initModel") {
    if (value == "MLP" || value == "mlp") {
      init_model = nn::ModelKind::Mlp;
    } else if (value == "CNN" || value == "cnn") {
      init_model = nn::ModelKind::Cnn;
    } else {
      throw Error("unknown initModel '" + value + "'");
    }
  } else if (key == "preprocessing") {
    preprocessing = value == "1" || value == "true" || value == "on";
  } else if (key == "numEpoch") {
    num_epoch = to_size(value);
  } else if (key == "retrainEpochs") {
    retrain_epochs = to_size(value);
  } else if (key == "trainRatio") {
    train_ratio = to_double(value);
  } else if (key == "batchSize") {
    batch_size = to_size(value);
  } else if (key == "lr") {
    lr = to_double(value);
  } else if (key == "trainProblems") {
    train_problems = to_size(value);
  } else if (key == "validProblems") {
    valid_problems = to_size(value);
  } else if (key == "evalProblems") {
    eval_problems = to_size(value);
  } else if (key == "mu") {
    mu = to_double(value);
  } else if (key == "seed") {
    seed = to_size(value);
  } else {
    throw Error("unknown config key '" + key + "'");
  }
}

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) cfg.apply(argv[i]);
  return cfg;
}

nas::NasOptions Config::nas_options() const {
  nas::NasOptions opts;
  opts.search_type = search_type;
  opts.bayesian_init = bayesian_init;
  opts.outer_iterations = outer_iterations;
  opts.inner_iterations = inner_iterations;
  opts.k_min = k_min;
  opts.k_max = k_max;
  opts.ae_epochs = ae_epochs;
  opts.eval_batch = std::max<std::size_t>(1, search_workers);
  return opts;
}

nn::TrainOptions Config::train_options() const {
  nn::TrainOptions opts;
  opts.epochs = num_epoch;
  opts.batch_size = batch_size;
  opts.lr = lr;
  opts.train_ratio = train_ratio;
  opts.standardize = preprocessing;
  opts.seed = seed ^ 0x7ea1ULL;
  return opts;
}

}  // namespace ahn::core
