#pragma once
// Analytic accelerator model — the reproduction's stand-in for the paper's
// V100 GPUs (no GPU exists on this testbed). Kernels report analytic FLOP
// and byte counts (common/flops.hpp); this model converts them into modeled
// execution time, cache behaviour and bandwidth using a roofline-style
// formulation:
//
//   t_kernel = launch_latency + max(flops / (peak_flops * eff),
//                                   bytes / mem_bandwidth)
//
// `eff` captures how well a workload maps onto the device: dense NN
// inference (vendor-tuned GEMM) achieves high efficiency; irregular sparse
// solvers (the "original code on GPU" comparator of Table 3, i.e. AMGX)
// achieve much lower efficiency because of divergent control flow and
// uncoalesced access — exactly the contrast the paper measures.
//
// Speedup *shape* (who wins, by what rough factor) depends only on relative
// op counts and these ratios; absolute seconds are not claimed (DESIGN.md).

#include <algorithm>
#include <cstdint>

#include "common/flops.hpp"

namespace ahn::runtime {

struct DeviceSpec {
  double peak_flops = 14e12;           ///< V100-like FP32 peak
  double mem_bandwidth = 9.0e11;       ///< HBM2
  double transfer_bandwidth = 1.2e10;  ///< PCIe-like host<->device
  double transfer_latency = 10e-6;     ///< per-transfer fixed cost
  double launch_latency = 8e-6;        ///< per-kernel fixed cost
  double model_load_latency = 3e-6;    ///< surrogate weight-cache touch cost
};

/// Workload-to-device mapping efficiency (fraction of peak attainable).
struct WorkloadProfile {
  double compute_efficiency = 0.6;  ///< dense NN inference default
  double bandwidth_efficiency = 0.7;
};

[[nodiscard]] constexpr WorkloadProfile nn_inference_profile() noexcept {
  return {0.60, 0.70};
}
/// Int8 dense inference. compute_efficiency is expressed as a fraction of
/// the SAME fp32 peak the spec quotes: accelerator int8 dot units sustain
/// roughly 4x the fp32 FMA rate, so 0.60 * 4 = 2.40 "fp32-equivalent"
/// efficiency prices a quantized GEMM ~4x cheaper at equal FLOP count.
[[nodiscard]] constexpr WorkloadProfile nn_int8_inference_profile() noexcept {
  return {2.40, 0.70};
}
/// Irregular sparse solver ported to the device (AMGX-like comparator).
[[nodiscard]] constexpr WorkloadProfile sparse_solver_profile() noexcept {
  return {0.04, 0.35};
}

/// Thread-safety: immutable after construction — all members are const
/// reads, so one DeviceModel may be shared by every shard and thread.
class DeviceModel {
 public:
  explicit DeviceModel(DeviceSpec spec = {}) noexcept : spec_(spec) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

  /// Modeled kernel time for the given op counts and workload profile.
  [[nodiscard]] double kernel_seconds(const OpCounts& ops,
                                      const WorkloadProfile& profile) const noexcept {
    const double compute = static_cast<double>(ops.flops) /
                           (spec_.peak_flops * profile.compute_efficiency);
    const double memory = static_cast<double>(ops.bytes_total()) /
                          (spec_.mem_bandwidth * profile.bandwidth_efficiency);
    return spec_.launch_latency + (compute > memory ? compute : memory);
  }

  /// Host <-> device transfer time for a payload.
  [[nodiscard]] double transfer_seconds(std::uint64_t bytes) const noexcept {
    return spec_.transfer_latency +
           static_cast<double>(bytes) / spec_.transfer_bandwidth;
  }

  /// Modeled energy of a kernel (f_c may be "running time, energy or other
  /// execution metric" per §5.1): dynamic power scales with utilization on
  /// top of a board idle floor.
  [[nodiscard]] double kernel_joules(const OpCounts& ops,
                                     const WorkloadProfile& profile) const noexcept {
    constexpr double kIdleWatts = 50.0;
    constexpr double kPeakDynamicWatts = 250.0;
    const double t = kernel_seconds(ops, profile);
    const double utilization =
        std::min(1.0, static_cast<double>(ops.flops) /
                          (t * spec_.peak_flops * profile.compute_efficiency + 1.0));
    return t * (kIdleWatts + kPeakDynamicWatts * utilization);
  }

  /// Modeled last-level cache miss rate: decreasing in arithmetic intensity
  /// (regular high-intensity GEMM reuses cached tiles; irregular gathers do
  /// not). Calibrated so sparse CPU solvers land near the paper's 37%,
  /// device sparse solvers near 26% and NN inference near 18% (Table 3).
  [[nodiscard]] static double modeled_l2_miss_rate(const OpCounts& ops,
                                                   const WorkloadProfile& profile) noexcept {
    const double intensity = ops.intensity();
    const double base = 0.45 / (1.0 + 0.55 * intensity);
    // Better-mapped workloads also cache better.
    return base * (1.0 - 0.45 * profile.compute_efficiency);
  }

  /// Achieved memory bandwidth given modeled runtime.
  [[nodiscard]] static double achieved_bandwidth(const OpCounts& ops,
                                                 double seconds) noexcept {
    return seconds > 0.0 ? static_cast<double>(ops.bytes_total()) / seconds : 0.0;
  }

 private:
  DeviceSpec spec_;
};

}  // namespace ahn::runtime
