#include "runtime/circuit_breaker.hpp"

#include <chrono>

#include "common/error.hpp"

namespace ahn::runtime {

namespace {
double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions opts, ServingStats* stats)
    : opts_(std::move(opts)), stats_(stats) {
  AHN_CHECK_MSG(opts_.window >= 1, "breaker window must be at least 1");
  AHN_CHECK_MSG(opts_.half_open_probes >= 1, "breaker needs at least one probe");
  if (opts_.min_samples > opts_.window) opts_.min_samples = opts_.window;
  window_.assign(opts_.window, false);
}

double CircuitBreaker::now_locked() const {
  return opts_.clock ? opts_.clock() : steady_seconds();
}

void CircuitBreaker::transition_locked(BreakerState to, double now) {
  if (state_ == to) return;
  if (stats_ != nullptr) {
    stats_->record_breaker_transition(breaker_state_name(state_),
                                      breaker_state_name(to));
  }
  if (opts_.on_transition) {
    const double rate = window_count_ == 0
                            ? 0.0
                            : static_cast<double>(window_misses_) /
                                  static_cast<double>(window_count_);
    opts_.on_transition(state_, to, rate);
  }
  state_ = to;
  if (to == BreakerState::kOpen) {
    ++trips_;
    opened_at_ = now;
  }
  if (to == BreakerState::kHalfOpen) {
    probes_admitted_ = 0;
    probes_passed_ = 0;
  }
  if (to == BreakerState::kClosed) {
    // Fresh window: pre-trip misses must not immediately re-trip.
    window_.assign(opts_.window, false);
    window_next_ = window_count_ = window_misses_ = 0;
  }
}

CircuitBreaker::Route CircuitBreaker::admit() {
  const std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return Route::kSurrogate;
    case BreakerState::kOpen: {
      const double now = now_locked();
      if (now - opened_at_ < opts_.cooldown_seconds) return Route::kOriginal;
      transition_locked(BreakerState::kHalfOpen, now);
      [[fallthrough]];
    }
    case BreakerState::kHalfOpen:
      if (probes_admitted_ < opts_.half_open_probes) {
        ++probes_admitted_;
        return Route::kSurrogate;
      }
      return Route::kOriginal;
  }
  return Route::kSurrogate;  // unreachable
}

void CircuitBreaker::record_outcome(bool qoi_ok) {
  const std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kOpen:
      // A stale outcome from a batch that was in flight when the breaker
      // tripped (or re-opened mid-probe); the window restarts on close.
      return;
    case BreakerState::kHalfOpen:
      if (!qoi_ok) {
        transition_locked(BreakerState::kOpen, now_locked());
        return;
      }
      ++probes_passed_;
      if (probes_passed_ >= opts_.half_open_probes) {
        transition_locked(BreakerState::kClosed, now_locked());
      }
      return;
    case BreakerState::kClosed: {
      window_misses_ += static_cast<std::size_t>(!qoi_ok);
      if (window_count_ == window_.size()) {
        window_misses_ -= static_cast<std::size_t>(window_[window_next_]);
      } else {
        ++window_count_;
      }
      window_[window_next_] = !qoi_ok;
      window_next_ = (window_next_ + 1) % window_.size();
      if (window_count_ >= opts_.min_samples &&
          static_cast<double>(window_misses_) >=
              opts_.trip_threshold * static_cast<double>(window_count_)) {
        transition_locked(BreakerState::kOpen, now_locked());
      }
      return;
    }
  }
}

BreakerState CircuitBreaker::state() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

double CircuitBreaker::window_fallback_rate() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return window_count_ == 0 ? 0.0
                            : static_cast<double>(window_misses_) /
                                  static_cast<double>(window_count_);
}

}  // namespace ahn::runtime
