#pragma once
// Fixed-size thread-pool executor behind run_model_async: clients submit
// callables and receive std::futures; worker threads drain a single locked
// queue. Destruction drains the queue (already-submitted work completes)
// and joins every worker.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ahn::runtime {

/// Thread-safety: fully thread-safe — submit may race from any thread;
/// destruction joins workers after draining already-accepted work.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown by
  /// `fn` are captured and rethrown from future::get().
  template <typename Fn>
  [[nodiscard]] std::future<std::invoke_result_t<Fn>> submit(Fn&& fn) {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Tasks accepted but not yet finished (approximate under concurrency).
  [[nodiscard]] std::size_t pending() const;

  /// Blocks until every task accepted so far has finished (queue empty and
  /// no job executing). Used by Orchestrator::drain(); tasks submitted
  /// concurrently with the wait may extend it.
  void wait_idle();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;  ///< signaled when the pool goes idle
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< jobs popped but still executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ahn::runtime
