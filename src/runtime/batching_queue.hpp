#pragma once
// Micro-batching for single-row inference requests (§7.3 amortization):
// pending requests against the same model are coalesced into one batched
// forward — one fetch, one encode, one weight-load, one GEMM — instead of B
// independent single-row passes. Because the NN stack's GEMM accumulates
// each output row independently in a fixed order, a batched forward returns
// bitwise-identical rows to B separate one-row forwards.
//
// Dispatch policy: the client thread whose submit() fills a batch to
// `max_batch` executes that batch inline ("leader executes" — natural
// backpressure, no handoff latency); a background flusher thread sweeps
// stragglers every `max_delay_seconds` so a partially-filled batch is never
// stranded. flush() force-drains synchronously (used by tests and by
// clients that need a latency bound tighter than the flusher period).

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/serving_stats.hpp"
#include "tensor/tensor.hpp"

namespace ahn::runtime {

struct BatchingOptions {
  std::size_t max_batch = 32;          ///< coalesce at most this many rows
  double max_delay_seconds = 200e-6;   ///< flusher sweep period
};

class BatchingQueue {
 public:
  /// `run_batch` executes one coalesced (B x features) batch for `model` and
  /// returns the (B x outputs) result. It is called from client threads (on
  /// batch-full) and from the flusher thread, potentially concurrently for
  /// different batches — it must be thread-safe.
  using BatchFn = std::function<Tensor(const std::string& model, const Tensor& batch)>;

  BatchingQueue(BatchFn run_batch, BatchingOptions opts, ServingStats* stats = nullptr);
  ~BatchingQueue();  ///< stops the flusher after a final drain

  BatchingQueue(const BatchingQueue&) = delete;
  BatchingQueue& operator=(const BatchingQueue&) = delete;

  /// Enqueues one inference row (rank-1, or rank-2 with a single row) for
  /// `model`. The future resolves to the (1 x outputs) result row; a failed
  /// batch execution propagates its exception through every affected future.
  [[nodiscard]] std::future<Tensor> submit(const std::string& model, Tensor row);

  /// Synchronously executes every pending batch on the calling thread.
  void flush();

  [[nodiscard]] const BatchingOptions& options() const noexcept { return opts_; }

 private:
  struct PendingBatch {
    std::vector<Tensor> rows;                   // each (1 x features)
    std::vector<std::promise<Tensor>> promises;
  };

  /// Takes ownership of one model's pending batch (caller executes it).
  [[nodiscard]] PendingBatch take_locked(const std::string& model);
  void execute(const std::string& model, PendingBatch batch);
  void flusher_loop();

  BatchFn run_batch_;
  BatchingOptions opts_;
  ServingStats* stats_;

  std::mutex mu_;
  std::unordered_map<std::string, PendingBatch> pending_;
  bool stop_ = false;
  std::condition_variable stop_cv_;  ///< wakes the flusher early on shutdown
  std::thread flusher_;
};

}  // namespace ahn::runtime
