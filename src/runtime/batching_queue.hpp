#pragma once
// Micro-batching for single-row inference requests (§7.3 amortization):
// pending requests against the same model are coalesced into one batched
// forward — one fetch, one encode, one weight-load, one GEMM — instead of B
// independent single-row passes. Because the NN stack's GEMM accumulates
// each output row independently in a fixed order, a batched forward returns
// bitwise-identical rows to B separate one-row forwards.
//
// Dispatch policy: the client thread whose submit() fills a batch to
// `max_batch` executes that batch inline ("leader executes" — natural
// backpressure, no handoff latency); a background flusher thread sweeps
// stragglers every `max_delay_seconds` so a partially-filled batch is never
// stranded. flush() force-drains synchronously (used by tests and by
// clients that need a latency bound tighter than the flusher period).
//
// Reliability contract (docs/RELIABILITY.md):
//  * every future carries a Result<Tensor> — batch failures resolve futures
//    with a typed Status, never a broken promise;
//  * a request may carry a deadline: expired requests are completed with
//    kDeadlineExceeded at dispatch time and are NOT coalesced into the
//    batch (no device time is spent on work nobody is waiting for);
//  * drain() executes everything pending, then rejects new submits with
//    kShuttingDown; destruction completes any still-pending requests with
//    kShuttingDown — every accepted request resolves, in every path.

#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/serving_stats.hpp"
#include "common/status.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"

namespace ahn::runtime {

struct BatchingOptions {
  std::size_t max_batch = 32;          ///< coalesce at most this many rows
  double max_delay_seconds = 200e-6;   ///< flusher sweep period
};

/// Thread-safety: fully thread-safe — submit/flush may race from any
/// thread; internal state is mutex-guarded and futures are single-owner.
class BatchingQueue {
 public:
  using Clock = std::chrono::steady_clock;
  using Deadline = std::optional<Clock::time_point>;

  /// `run_batch` executes one coalesced (B x features) batch for `model` and
  /// returns one Result per row, in row order (size must equal B — on a
  /// batch-wide failure, return B copies of the same error Status). It is
  /// called from client threads (on batch-full) and from the flusher thread,
  /// potentially concurrently for different batches — it must be
  /// thread-safe, and it must not throw: typed failures travel as Statuses.
  /// `contexts` carries one SpanContext per batch row (trace_id 0 = the row
  /// was submitted untraced) so per-row downstream work — QoI fallback
  /// spans, latency exemplars — can stay attached to the submitting trace.
  using RowResults = std::vector<Result<Tensor>>;
  using BatchFn =
      std::function<RowResults(const std::string& model, const Tensor& batch,
                               const std::vector<obs::SpanContext>& contexts)>;

  /// `tracer` (optional) receives, per dispatched batch, one
  /// "batching.execute" span — parented under the first traced row's context
  /// when the batch carries one (cross-thread hand-off), else under the
  /// executing thread's current span — plus one "batching.batch_wait" span
  /// per traced row covering its enqueue -> dispatch interval.
  BatchingQueue(BatchFn run_batch, BatchingOptions opts, ServingStats* stats = nullptr,
                obs::Tracer* tracer = nullptr);
  ~BatchingQueue();  ///< stops the flusher; fails stragglers with kShuttingDown

  BatchingQueue(const BatchingQueue&) = delete;
  BatchingQueue& operator=(const BatchingQueue&) = delete;

  /// Enqueues one inference row (rank-1, or rank-2 with a single row) for
  /// `model`. The future resolves to the (1 x outputs) result row or a typed
  /// Status (kDeadlineExceeded if `deadline` passes before dispatch,
  /// kShuttingDown after drain()/destruction, or whatever run_batch reports).
  [[nodiscard]] std::future<Result<Tensor>> submit(const std::string& model,
                                                   Tensor row,
                                                   Deadline deadline = {});

  /// Synchronously executes every pending batch on the calling thread.
  void flush();

  /// Graceful shutdown: flushes everything pending, then completes all
  /// subsequent submits immediately with kShuttingDown. Idempotent.
  void drain();

  [[nodiscard]] bool draining() const;

  [[nodiscard]] const BatchingOptions& options() const noexcept { return opts_; }

 private:
  struct PendingBatch {
    std::vector<Tensor> rows;                   // each (1 x features)
    std::vector<std::promise<Result<Tensor>>> promises;
    std::vector<Deadline> deadlines;
    std::vector<obs::SpanContext> contexts;     // submitter's span per row
    std::vector<double> enqueue_seconds;        // tracer-epoch enqueue time

    [[nodiscard]] bool empty() const noexcept { return rows.empty(); }
  };

  /// Takes ownership of one model's pending batch (caller executes it).
  [[nodiscard]] PendingBatch take_locked(const std::string& model);
  [[nodiscard]] std::vector<std::pair<std::string, PendingBatch>> take_all_locked();
  void execute(const std::string& model, PendingBatch batch);
  /// Completes every request in `batch` with `status` (no execution).
  void fail_batch(PendingBatch batch, const Status& status);
  void flusher_loop();

  /// Updates the `serving.batch_queue_depth` gauge (total pending rows
  /// across models). Callers hold mu_.
  void update_depth_locked(std::ptrdiff_t delta);

  BatchFn run_batch_;
  BatchingOptions opts_;
  ServingStats* stats_;
  obs::Tracer* tracer_;
  obs::Gauge* depth_gauge_ = nullptr;  ///< null when stats_ is null

  mutable std::mutex mu_;
  std::size_t pending_rows_ = 0;  ///< total rows across pending_ batches
  std::unordered_map<std::string, PendingBatch> pending_;
  bool draining_ = false;  ///< reject new submits with kShuttingDown
  bool stop_ = false;      ///< terminate the flusher thread
  std::condition_variable stop_cv_;  ///< wakes the flusher early on shutdown
  std::thread flusher_;
};

}  // namespace ahn::runtime
