#include "runtime/thread_pool.hpp"

#include "common/error.hpp"

namespace ahn::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  AHN_CHECK_MSG(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    AHN_CHECK_MSG(!stop_, "submit on a stopping thread pool");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();  // packaged_task captures exceptions into the future
    bool idle = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      idle = queue_.empty() && in_flight_ == 0;
    }
    if (idle) idle_cv_.notify_all();
  }
}

}  // namespace ahn::runtime
