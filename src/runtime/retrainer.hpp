#pragma once
// Automatic drift-triggered retraining (docs/RETRAINING.md): the consumer of
// the model-health alerts that PR 5 left dangling. A Retrainer subscribes to
// its host's AlertSink and keeps a per-model reservoir of live feature rows
// harvested from the serving path; when a drift_detected / qoi_degraded
// alert fires, a background worker labels the reservoir with the model's
// original-code fallback (the §7.1 ground truth that is always available),
// fine-tunes the active surrogate on it, and hands the candidate to the
// host's shadow → canary → promote rollout. Serving threads never train;
// the worker never serves.
//
// Reservoir semantics follow Turaco (PAPERS.md): instead of uniform
// reservoir sampling, each row carries a complexity weight — its worst
// per-feature standardized deviation from the active version's training
// reference — and eviction drops the *lowest*-weight row. Under drift the
// reservoir therefore fills with exactly the rows the current surrogate was
// not trained on, which is what the retrain needs to learn.
//
// Thread-safety: fully thread-safe. The sample hook and alert callback run
// on serving threads and only touch the reservoir/queue (mutex + cv); the
// training cycle runs on the one worker thread. All callbacks hold a
// weak_ptr to the internal state, so a Retrainer may be destroyed while its
// host keeps serving. The host must outlive the Retrainer.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/flops.hpp"
#include "nn/train.hpp"
#include "runtime/rollout.hpp"

namespace ahn::obs {
class FeatureSketch;
}  // namespace ahn::obs

namespace ahn::runtime {

/// Turaco-style complexity weight of one live row against the training
/// reference: the worst per-feature standardized deviation
/// max_f |x_f - mu_f| / sigma_f. Rows the training distribution covered
/// score near zero; drifted rows score in "sigmas" — the ones worth keeping.
[[nodiscard]] double complexity_weight(const obs::FeatureSketch& reference,
                                       std::span<const double> row);

struct ReservoirRow {
  std::vector<double> x;
  double weight = 0.0;
};

/// Bounded, complexity-weighted retraining buffer. offer() keeps the row if
/// there is room, otherwise replaces the current minimum-weight row when the
/// newcomer outweighs it. Thread-safe.
class RetrainReservoir {
 public:
  explicit RetrainReservoir(std::size_t capacity);

  void offer(std::span<const double> row, double weight);
  [[nodiscard]] std::vector<ReservoirRow> snapshot() const;
  void clear();
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t offered() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<ReservoirRow> rows_;
  std::uint64_t offered_ = 0;
};

/// What a retrain cycle produced: the candidate surrogate and, optionally, a
/// replacement feature-reduction stage. The plain train_fn seam can only
/// fine-tune the surrogate behind the active encoder; a NAS-backed cycle
/// (nas::make_population_train_fn) may pick a different latent K — or drop
/// reduction entirely — so it must be able to swap the candidate's encode
/// path too.
struct RetrainCandidate {
  nn::TrainedSurrogate surrogate;
  /// When true, the candidate ServableModel's encode/encode_ops are replaced
  /// with the fields below (an empty `encode` means "serve unreduced").
  bool replace_encoder = false;
  std::function<Tensor(const Tensor&)> encode;
  OpCounts encode_ops;
  /// Per-row surrogate cost of the candidate; used only with
  /// replace_encoder (otherwise the active model's accounting stands).
  OpCounts infer_ops;
};

/// Full-candidate training seam: active model + labeled reservoir ->
/// candidate. Takes precedence over RetrainerOptions::train_fn.
using RetrainCandidateFn = std::function<RetrainCandidate(
    const ServableModel& active, const nn::Dataset& data)>;

struct RetrainerOptions {
  /// 1 in `sample_every` hook rows is offered to the reservoir (the hook
  /// already only sees served rows; this bounds reservoir-update cost).
  std::uint64_t sample_every = 4;
  std::size_t reservoir_capacity = 1024;
  /// A retrain cycle is skipped (and the trigger re-queued by the next
  /// alert) until the reservoir holds at least this many rows.
  std::size_t min_retrain_rows = 64;

  /// Fine-tune knobs handed to the training seam.
  nn::TrainOptions train;
  /// Shadow/canary evaluation for every candidate this worker produces.
  RolloutOptions rollout;

  bool retrain_on_drift = true;    ///< drift_detected triggers a cycle
  bool retrain_on_qoi = true;      ///< qoi_degraded triggers a cycle
  bool retrain_on_breaker = false; ///< breaker_open triggers a cycle

  /// Rollout progress poll cadence while a candidate is being evaluated
  /// (each poll also drives the host's stage-deadline checks).
  double poll_interval_seconds = 2e-3;
  /// Wall-clock budget for one cycle's rollout wait; past it the worker
  /// stops polling (the rollout's own stage timeout then fails it).
  double cycle_timeout_seconds = 120.0;

  /// Training seam: active surrogate + labeled reservoir -> candidate
  /// surrogate. Empty = fine-tune a copy of the active network with
  /// nn::train_surrogate (warm start, normalizers refitted on the new
  /// rows). The NAS layer can inject an architecture-search trainer here —
  /// runtime cannot link nas, so the seam points the other way.
  std::function<nn::TrainedSurrogate(const nn::TrainedSurrogate& active,
                                     const nn::Dataset& data)>
      train_fn;

  /// Richer seam: sees the whole active ServableModel and may replace the
  /// candidate's encoder (NAS re-search). When set, `train_fn` is ignored.
  RetrainCandidateFn candidate_fn;
};

struct RetrainerStats {
  std::uint64_t alerts_seen = 0;      ///< trigger alerts observed
  std::uint64_t cycles_started = 0;
  std::uint64_t cycles_promoted = 0;
  std::uint64_t cycles_rolled_back = 0;
  std::uint64_t cycles_skipped = 0;   ///< no fallback / too few rows / busy
  /// Alert-storm dedupes: triggers dropped because a cycle for the same
  /// model was already queued, training, or mid-rollout. Also published as
  /// the serving.retrain.coalesced counter on the host's registry.
  std::uint64_t cycles_coalesced = 0;
};

/// The background retraining worker. One instance per host (single-node
/// Orchestrator or ClusterOrchestrator — anything implementing RolloutHost).
class Retrainer {
 public:
  explicit Retrainer(RolloutHost& host, RetrainerOptions opts = RetrainerOptions{});
  ~Retrainer();

  Retrainer(const Retrainer&) = delete;
  Retrainer& operator=(const Retrainer&) = delete;

  /// Queues a retrain cycle for `model` as if an alert had fired (operator
  /// override / tests). Deduplicated against already-queued cycles.
  void request_retrain(const std::string& model);

  /// Stops the worker after the in-flight cycle (if any) finishes and
  /// detaches the sample hook. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] RetrainerStats stats() const;
  /// Rows currently held for `model` (0 for unknown names).
  [[nodiscard]] std::size_t reservoir_size(const std::string& model) const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace ahn::runtime
