#pragma once
// Deterministic, seedable fault injection for the serving runtime. The
// orchestrator consults an (optional) injector at each online phase of the
// §7.3 breakdown so degradation behavior — latency spikes, transient device
// faults, NaN-corrupted surrogate outputs, dropped batches — is testable
// and reproducible from a single seed. Production deployments simply never
// install one; the hooks cost a null check.
//
// Thread-safety: all draw_* members may be called concurrently from client,
// pool, and flusher threads (one mutex around the shared Rng). The spec is
// runtime-mutable (set_spec) so tests can start/stop fault storms mid-run —
// the breaker-recovery lifecycle test depends on this.

#include <array>
#include <cstdint>
#include <mutex>

#include "common/rng.hpp"

namespace ahn::runtime {

/// Online serving phases a fault can target (§7.3 breakdown).
enum class ServingPhase : std::size_t { kFetch = 0, kEncode, kLoad, kRun };

/// Fault categories, used for per-kind accounting.
enum class FaultKind : std::size_t {
  kLatencySpike = 0,  ///< a phase takes `latency_spike_seconds` longer
  kTransient,         ///< a phase fails retriably (kTransientFailure)
  kNanCorruption,     ///< one output row is overwritten with NaN
  kBatchDrop,         ///< a dispatched batch is lost before execution
};
inline constexpr std::size_t kFaultKindCount = 4;

/// Per-draw fault probabilities (all default to "never fire").
struct FaultSpec {
  double latency_spike_prob = 0.0;     ///< per phase execution
  double latency_spike_seconds = 1e-3; ///< magnitude of a spike
  double transient_prob = 0.0;         ///< per phase execution
  double nan_prob = 0.0;               ///< per executed batch (one row hit)
  double batch_drop_prob = 0.0;        ///< per dispatched batch
};

/// Thread-safety: fully thread-safe — probability draws use a mutex-guarded
/// RNG, so concurrent serving threads may share one injector.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec = FaultSpec{}, std::uint64_t seed = 42);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Atomically replaces the fault probabilities (draws in flight finish
  /// against whichever spec they read first).
  void set_spec(const FaultSpec& spec);
  [[nodiscard]] FaultSpec spec() const;

  /// Extra seconds this phase execution should take (0.0 = no spike).
  [[nodiscard]] double draw_latency_spike(ServingPhase phase);

  /// Whether this phase execution fails with a retriable transient fault.
  [[nodiscard]] bool draw_transient(ServingPhase phase);

  /// Whether this executed batch gets one NaN-corrupted output row.
  [[nodiscard]] bool draw_nan_corruption();

  /// Whether this dispatched batch is dropped before execution.
  [[nodiscard]] bool draw_batch_drop();

  /// Uniform row index in [0, rows) — picks the corrupted row.
  [[nodiscard]] std::size_t draw_row(std::size_t rows);

  /// Faults fired so far, by kind (draws that returned "inject").
  [[nodiscard]] std::uint64_t injected(FaultKind kind) const;
  [[nodiscard]] std::uint64_t total_injected() const;

 private:
  mutable std::mutex mu_;
  FaultSpec spec_;
  Rng rng_;
  std::array<std::uint64_t, kFaultKindCount> counts_{};
};

}  // namespace ahn::runtime
