#pragma once
// Deployed surrogate pipeline: optional autoencoder feature reduction in
// front of the trained surrogate, with modeled online timing per inference
// (fetch / encode / load / run — the §7.3 online-time breakdown) and the
// QoI-fallback contract (§7.1: a problem that misses the quality bound is
// re-run with the original code).
//
// DeploymentPackage is the unit Orchestrator::deploy() installs: the
// servable model bundled with the training-set reference FeatureSketch that
// the model-health monitor scores live inputs against
// (docs/OBSERVABILITY.md — drift detection).

#include <memory>
#include <optional>
#include <string>

#include "autoencoder/autoencoder.hpp"
#include "nn/quantization.hpp"
#include "nn/train.hpp"
#include "obs/monitor.hpp"
#include "runtime/device.hpp"
#include "runtime/orchestrator.hpp"
#include "sparse/formats.hpp"

namespace ahn::runtime {

/// Opt-in int8 packaging: when enabled, DeploymentPackage::build runs the
/// calibrator over the training inputs (through the encoder when present)
/// and installs quantized payloads before the model is frozen — so the int8
/// weights live inside the ServableModel and replicate through ModelRegistry
/// versioning and cluster deploy fan-out with no extra plumbing.
struct QuantizeSpec {
  bool enabled = false;
  nn::QuantizationOptions options;
};

/// Everything a surrogate needs to go live: the servable model plus the
/// training-set reference sketch drift detection compares live inputs to.
/// Built once at deployment time (the sketch is a single bounded pass over
/// the training inputs) and handed to Orchestrator::deploy().
struct DeploymentPackage {
  std::string name;
  std::shared_ptr<const ServableModel> model;
  /// Per-feature count/mean/variance + P² decile estimates over the
  /// training inputs; may be null (no drift detection for this model).
  std::shared_ptr<const obs::FeatureSketch> reference;

  /// Sketches `training_inputs` (N x F, the raw pre-encode features —
  /// exactly what the serving paths see) and bundles it with the model.
  [[nodiscard]] static DeploymentPackage build(std::string name,
                                               std::shared_ptr<const ServableModel> model,
                                               const Tensor& training_inputs);

  /// Quantizing overload: takes the model by value, calibrates + quantizes
  /// per `spec`, refreshes infer_ops for the int8 cost model, then freezes.
  [[nodiscard]] static DeploymentPackage build(std::string name, ServableModel model,
                                               const Tensor& training_inputs,
                                               const QuantizeSpec& spec);
};

/// Deep-copies `base`, calibrates on `raw_inputs` (the same pre-encode rows
/// serving sees) and switches the copy to int8. The returned model is a
/// drop-in rollout candidate: install_candidate + begin_rollout put it
/// behind the identical shadow/canary/QoI machinery a retrained model gets.
[[nodiscard]] ServableModel quantized_servable(const ServableModel& base,
                                               const Tensor& raw_inputs,
                                               const nn::QuantizationOptions& opts = {});

struct InferenceTiming {
  double fetch_seconds = 0.0;
  double encode_seconds = 0.0;
  double load_seconds = 0.0;
  double run_seconds = 0.0;

  [[nodiscard]] double total() const noexcept {
    return fetch_seconds + encode_seconds + load_seconds + run_seconds;
  }
};

struct InferenceResult {
  std::vector<double> outputs;
  InferenceTiming timing;
};

/// Thread-safety: const-only after construction — infer() is safe to call
/// concurrently; the model weights are immutable once deployed.
class DeployedSurrogate {
 public:
  DeployedSurrogate(std::shared_ptr<const autoencoder::Autoencoder> encoder,
                    nn::TrainedSurrogate surrogate, DeviceModel device);

  /// Inference on one problem's dense feature vector.
  [[nodiscard]] InferenceResult infer(std::span<const double> features) const;

  /// Inference on a CSR batch row (sparse path: no densified input; the
  /// fetch phase only moves the compressed bytes).
  [[nodiscard]] InferenceResult infer_sparse(const sparse::Csr& batch,
                                             std::size_t row) const;

  [[nodiscard]] bool has_encoder() const noexcept { return encoder_ != nullptr; }
  [[nodiscard]] const nn::TrainedSurrogate& surrogate() const noexcept {
    return surrogate_;
  }
  [[nodiscard]] const DeviceModel& device() const noexcept { return device_; }

  /// Modeled per-problem online seconds (timing.total() of a typical call).
  [[nodiscard]] double modeled_seconds(std::size_t feature_bytes) const;

 private:
  [[nodiscard]] InferenceTiming timing_for(std::size_t input_bytes,
                                           std::size_t output_count) const;

  std::shared_ptr<const autoencoder::Autoencoder> encoder_;
  nn::TrainedSurrogate surrogate_;
  DeviceModel device_;
  OpCounts encode_ops_;  ///< per-row encoder cost
  OpCounts infer_ops_;   ///< per-row surrogate cost
};

}  // namespace ahn::runtime
