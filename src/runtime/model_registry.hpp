#pragma once
// Versioned model registry (docs/RETRAINING.md): the serving-side source of
// truth for which weights answer requests under each model name. Every
// publish() mints (or adopts) a monotone version id; promote()/rollback()
// atomically flip which version is active while retaining up to
// RegistryOptions::retain versions per name, so a bad promotion is undone in
// O(1) without re-training or re-deploying anything.
//
// The registry deliberately knows nothing about *how* versions are chosen —
// shadow/canary evaluation lives in rollout.hpp, retraining in
// retrainer.hpp. It only guarantees: ids are monotone per name, the active
// flip is atomic, the prior version survives eviction (rollback is always
// possible), and lookups are cheap (shared_mutex, read-mostly).
//
// Thread-safety: fully thread-safe; one shared_mutex guards the name map.
// Serving paths take it shared per lookup; publish/promote/rollback are
// exclusive and O(versions-per-name).

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ahn::obs {
class FeatureSketch;
}  // namespace ahn::obs

namespace ahn::runtime {

struct ServableModel;  // runtime/orchestrator.hpp

/// One immutable retained version of a served model: the weights, the
/// training-set reference sketch drift detection scores against, and a
/// human-readable origin tag ("deploy", "retrain", "replicated", ...).
struct ModelVersion {
  std::uint64_t id = 0;  ///< monotone per name; 0 = invalid/none
  std::shared_ptr<const ServableModel> model;
  std::shared_ptr<const obs::FeatureSketch> reference;  ///< may be null
  std::string origin;
};

struct RegistryOptions {
  /// Versions retained per name. Eviction drops the oldest id that is
  /// neither active nor the rollback target; the floor of 2 keeps
  /// rollback always possible.
  std::size_t retain = 4;
};

/// Point-in-time view of one name's version bookkeeping.
struct RegistryEntrySnapshot {
  std::string name;
  std::uint64_t active = 0;           ///< 0 = nothing promoted yet
  std::uint64_t prior = 0;            ///< rollback target (0 = none)
  std::vector<std::uint64_t> retained;  ///< ascending ids currently held
};

class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryOptions opts = RegistryOptions{});
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers a new version of `name` and returns its id. With
  /// `explicit_id` = 0 the registry mints the next monotone id; a non-zero
  /// `explicit_id` adopts that id verbatim (cluster fan-out replicates the
  /// coordinator's ids onto shards) and future minted ids stay above it.
  /// Publishing does NOT change which version serves — promote() does.
  /// Throws ahn::Error on a duplicate explicit id or a null model.
  std::uint64_t publish(const std::string& name,
                        std::shared_ptr<const ServableModel> model,
                        std::shared_ptr<const obs::FeatureSketch> reference,
                        std::string origin, std::uint64_t explicit_id = 0);

  /// Atomically makes version `id` of `name` the serving version; the
  /// previously active version becomes the rollback target. Returns false
  /// (and changes nothing) if the name or id is unknown. Promoting the
  /// already-active id is a no-op that still returns true.
  bool promote(const std::string& name, std::uint64_t id);

  /// Atomically swaps the active version back to the rollback target.
  /// Returns the version now serving, or nullopt if there is no prior
  /// version to roll back to.
  std::optional<ModelVersion> rollback(const std::string& name);

  /// The currently serving version of `name` (nullopt: unknown name or
  /// nothing promoted yet).
  [[nodiscard]] std::optional<ModelVersion> active(const std::string& name) const;
  /// The active version's model only — the serving hot path's lookup (one
  /// shared_ptr copy, no origin-string copy).
  [[nodiscard]] std::shared_ptr<const ServableModel> active_model(
      const std::string& name) const;
  /// Serving version id (0 = none). Cheaper than active() for gauges.
  [[nodiscard]] std::uint64_t active_id(const std::string& name) const;

  /// A specific retained version (nullopt: unknown or evicted).
  [[nodiscard]] std::optional<ModelVersion> version(const std::string& name,
                                                    std::uint64_t id) const;

  /// All retained versions of `name`, ascending by id.
  [[nodiscard]] std::vector<ModelVersion> versions(const std::string& name) const;

  [[nodiscard]] std::optional<RegistryEntrySnapshot> snapshot(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] const RegistryOptions& options() const noexcept { return opts_; }

 private:
  struct Entry {
    std::uint64_t next = 1;    ///< next id to mint
    std::uint64_t active = 0;  ///< 0 = none promoted
    std::uint64_t prior = 0;   ///< rollback target
    std::vector<ModelVersion> versions;  ///< ascending by id
  };

  /// Drops the oldest versions beyond opts_.retain, never evicting the
  /// active version, the rollback target, or `keep`.
  void evict_locked(Entry& e, std::uint64_t keep);

  const RegistryOptions opts_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace ahn::runtime
