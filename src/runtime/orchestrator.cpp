#include "runtime/orchestrator.hpp"

#include "common/error.hpp"

namespace ahn::runtime {

Orchestrator::Orchestrator(DeviceModel device, OrchestratorOptions opts)
    : device_(device), opts_(opts), tensors_(opts.store_shards) {}

Orchestrator::~Orchestrator() = default;

void Orchestrator::put_tensor(const std::string& key, Tensor value) {
  tensors_.put(key, std::move(value));
}

Tensor Orchestrator::get_tensor(const std::string& key) const {
  return tensors_.get(key);
}

bool Orchestrator::has_tensor(const std::string& key) const {
  return tensors_.has(key);
}

void Orchestrator::delete_tensor(const std::string& key) {
  tensors_.erase(key);
}

void Orchestrator::set_model(const std::string& name,
                             std::shared_ptr<const ServableModel> model) {
  AHN_CHECK(model != nullptr);
  const std::unique_lock<std::shared_mutex> lock(models_mu_);
  models_[name] = std::move(model);
}

std::shared_ptr<const ServableModel> Orchestrator::model(const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(models_mu_);
  const auto it = models_.find(name);
  AHN_CHECK_MSG(it != models_.end(), "no model named '" << name << "'");
  return it->second;
}

Tensor Orchestrator::execute(const ServableModel& m, Tensor input,
                             RequestPhases* batch_phases) const {
  AHN_CHECK(input.rank() == 2);
  const std::size_t batch = input.rows();

  // (1) fetch: move the input tensor onto the device.
  const double fetch_s = device_.transfer_seconds(sizeof(double) * input.size());

  // (2) encode: feature reduction on device (skipped without an encoder).
  double encode_s = 0.0;
  Tensor reduced = std::move(input);
  if (m.encode) {
    reduced = m.encode(reduced);
    OpCounts per_batch = m.encode_ops;
    per_batch.flops *= batch;
    per_batch.bytes_read *= batch;
    per_batch.bytes_written *= batch;
    encode_s = device_.kernel_seconds(per_batch, nn_inference_profile());
  }

  // (3) load: touch the cached surrogate weights (once per batch — this is
  // the phase micro-batching amortizes, §7.3).
  const double load_s = device_.spec().model_load_latency;

  // (4) run: surrogate inference + result transfer back.
  const Tensor out = m.surrogate.predict(reduced);
  OpCounts run_ops = m.infer_ops;
  run_ops.flops *= batch;
  run_ops.bytes_read *= batch;
  run_ops.bytes_written *= batch;
  const double run_s = device_.kernel_seconds(run_ops, nn_inference_profile()) +
                       device_.transfer_seconds(sizeof(double) * out.size());

  if (batch_phases != nullptr) {
    batch_phases->fetch = fetch_s;
    batch_phases->encode = encode_s;
    batch_phases->load = load_s;
    batch_phases->run = run_s;
  }
  if (opts_.simulate_device_occupancy) {
    // Stand in for the accelerator: the whole batch holds the device for its
    // modeled online time, however many rows it coalesced. Busy-wait rather
    // than sleep — the waits are tens of microseconds, below timer slack.
    const double busy_s = fetch_s + encode_s + load_s + run_s;
    for (Timer t; t.seconds() < busy_s;) {
    }
  }
  return out;
}

void Orchestrator::record_requests(const RequestPhases& batch_phases, std::size_t rows) {
  if (rows == 0) return;
  const double n = static_cast<double>(rows);
  // Per-request latency is the batch's modeled phase time amortized over the
  // coalesced rows — the quantity the batch-size histogram trades against.
  const RequestPhases per_request{batch_phases.fetch / n, batch_phases.encode / n,
                                  batch_phases.load / n, batch_phases.run / n};
  for (std::size_t i = 0; i < rows; ++i) stats_.record_request(per_request);
}

void Orchestrator::run_model(const std::string& name, const std::string& in_key,
                             const std::string& out_key, PhaseAccumulator* phases) {
  const std::shared_ptr<const ServableModel> m = model(name);
  Tensor input = get_tensor(in_key);
  const std::size_t rows = input.rank() == 2 ? input.rows() : 0;

  RequestPhases batch_phases;
  Tensor out = execute(*m, std::move(input), &batch_phases);

  if (phases != nullptr) {
    phases->add("fetch", batch_phases.fetch);
    phases->add("encode", batch_phases.encode);
    phases->add("load", batch_phases.load);
    phases->add("run", batch_phases.run);
  }
  stats_.record_batch(rows);
  record_requests(batch_phases, rows);
  put_tensor(out_key, std::move(out));
}

std::future<void> Orchestrator::run_model_async(const std::string& name,
                                                const std::string& in_key,
                                                const std::string& out_key) {
  return pool().submit([this, name, in_key, out_key] {
    run_model(name, in_key, out_key, /*phases=*/nullptr);
  });
}

std::future<Tensor> Orchestrator::run_model_batched(const std::string& name,
                                                    Tensor row) {
  return batches().submit(name, std::move(row));
}

void Orchestrator::flush_batches() {
  // Only started queues can hold pending rows; don't spawn one just to drain.
  if (batches_ != nullptr) batches_->flush();
}

ThreadPool& Orchestrator::pool() {
  std::call_once(pool_once_,
                 [this] { pool_ = std::make_unique<ThreadPool>(opts_.pool_threads); });
  return *pool_;
}

BatchingQueue& Orchestrator::batches() {
  std::call_once(batches_once_, [this] {
    BatchingOptions bopts;
    bopts.max_batch = opts_.max_batch;
    bopts.max_delay_seconds = opts_.batch_delay_seconds;
    batches_ = std::make_unique<BatchingQueue>(
        [this](const std::string& model_name, const Tensor& batch) {
          const std::shared_ptr<const ServableModel> m = model(model_name);
          RequestPhases batch_phases;
          Tensor out = execute(*m, batch, &batch_phases);
          record_requests(batch_phases, batch.rows());
          return out;
        },
        bopts, &stats_);
  });
  return *batches_;
}

}  // namespace ahn::runtime
