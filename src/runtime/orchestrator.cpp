#include "runtime/orchestrator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "runtime/deployment.hpp"

namespace ahn::runtime {

namespace {

/// An already-resolved batched-request future (rejections and breaker
/// fallbacks never enter the queue).
std::future<Result<Tensor>> ready_result(Result<Tensor> r) {
  std::promise<Result<Tensor>> p;
  p.set_value(std::move(r));
  return p.get_future();
}

}  // namespace

Orchestrator::Orchestrator(DeviceModel device, OrchestratorOptions opts)
    : device_(device),
      opts_(opts),
      tracer_(opts.tracer != nullptr ? opts.tracer : &obs::Tracer::global()),
      tensors_(opts.store_shards) {
  // The SLO engine outlives every serving thread (destroyed after the
  // executors join) and feeds this orchestrator's own alert sink/registry.
  slo_ = std::make_unique<obs::SloEngine>(opts_.slos, &alerts_, &stats_.metrics());
}

Orchestrator::~Orchestrator() = default;

void Orchestrator::put_tensor(const std::string& key, Tensor value) {
  tensors_.put(key, std::move(value));
}

Tensor Orchestrator::get_tensor(const std::string& key) const {
  return tensors_.get(key);
}

bool Orchestrator::has_tensor(const std::string& key) const {
  return tensors_.has(key);
}

void Orchestrator::delete_tensor(const std::string& key) {
  tensors_.erase(key);
}

void Orchestrator::set_model(const std::string& name,
                             std::shared_ptr<const ServableModel> model) {
  AHN_CHECK(model != nullptr);
  const std::uint64_t id =
      registry_.publish(name, std::move(model), nullptr, "set_model");
  promote(name, id);
}

void Orchestrator::deploy(const DeploymentPackage& pkg) {
  AHN_CHECK_MSG(pkg.model != nullptr, "deployment package has no model");
  const std::uint64_t id =
      registry_.publish(pkg.name, pkg.model, pkg.reference, "deploy");
  promote(pkg.name, id);
}

std::shared_ptr<const ServableModel> Orchestrator::model(const std::string& name) const {
  std::shared_ptr<const ServableModel> m = find_model(name);
  AHN_CHECK_MSG(m != nullptr, "no model named '" << name << "'");
  return m;
}

std::shared_ptr<const ServableModel> Orchestrator::find_model(
    const std::string& name) const {
  return registry_.active_model(name);
}

bool Orchestrator::promote(const std::string& name, std::uint64_t id) {
  const std::optional<ModelVersion> ver = registry_.version(name, id);
  if (!ver.has_value() || !registry_.promote(name, id)) return false;
  if (opts_.monitor.enabled) {
    // Re-baseline decay detection for the newly serving weights: install
    // the version's own reference sketch when it carries one, otherwise
    // re-arm against the existing reference. Either way both edge-triggers
    // reset, so a recovered model can alert on a *second* drift episode.
    obs::ModelMonitor& mon = monitor(name);
    if (ver->reference != nullptr) {
      mon.set_reference(ver->reference);
    } else {
      mon.rebaseline();
    }
  }
  stats_.metrics()
      .gauge("serving.model_version{model=\"" + name + "\"}")
      .set(static_cast<double>(id));
  return true;
}

std::optional<std::uint64_t> Orchestrator::rollback(const std::string& name) {
  const std::optional<ModelVersion> ver = registry_.rollback(name);
  if (!ver.has_value()) return std::nullopt;
  if (opts_.monitor.enabled) {
    obs::ModelMonitor& mon = monitor(name);
    if (ver->reference != nullptr) {
      mon.set_reference(ver->reference);
    } else {
      mon.rebaseline();
    }
  }
  stats_.metrics()
      .gauge("serving.model_version{model=\"" + name + "\"}")
      .set(static_cast<double>(ver->id));
  return ver->id;
}

std::optional<ActiveModelInfo> Orchestrator::active_model(
    const std::string& name) const {
  std::optional<ModelVersion> v = registry_.active(name);
  if (!v.has_value()) return std::nullopt;
  ActiveModelInfo info;
  info.version = v->id;
  info.model = std::move(v->model);
  info.reference = std::move(v->reference);
  return info;
}

std::uint64_t Orchestrator::install_candidate(
    const std::string& name, std::shared_ptr<const ServableModel> model,
    std::shared_ptr<const obs::FeatureSketch> reference, std::string origin) {
  return registry_.publish(name, std::move(model), std::move(reference),
                           std::move(origin));
}

std::uint64_t Orchestrator::install_version(
    const std::string& name, std::shared_ptr<const ServableModel> model,
    std::shared_ptr<const obs::FeatureSketch> reference, std::string origin,
    std::uint64_t explicit_id) {
  return registry_.publish(name, std::move(model), std::move(reference),
                           std::move(origin), explicit_id);
}

Status Orchestrator::begin_rollout(const std::string& name,
                                   std::uint64_t candidate_version,
                                   RolloutOptions opts) {
  const std::optional<ModelVersion> cand = registry_.version(name, candidate_version);
  if (!cand.has_value()) {
    return Status(StatusCode::kNotFound,
                  "no retained version " + std::to_string(candidate_version) +
                      " of model '" + name + "'");
  }
  const std::uint64_t active = registry_.active_id(name);
  if (active == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "no active version of '" + name + "' to shadow against");
  }
  if (active == candidate_version) {
    return Status(StatusCode::kInvalidArgument,
                  "candidate is already the active version of '" + name + "'");
  }

  auto ro = std::make_shared<ActiveRollout>(name, candidate_version, cand->model,
                                            std::move(opts));
  obs::MetricsRegistry& mx = stats_.metrics();
  const std::string lbl = "{model=\"" + name + "\"}";
  ro->shadow_rows = &mx.counter("serving.shadow.rows" + lbl);
  ro->shadow_active_miss = &mx.counter("serving.shadow.active_qoi_miss" + lbl);
  ro->shadow_candidate_miss = &mx.counter("serving.shadow.candidate_qoi_miss" + lbl);
  ro->canary_rows = &mx.counter("serving.canary.rows" + lbl);
  ro->canary_miss = &mx.counter("serving.canary.qoi_miss" + lbl);
  {
    const std::unique_lock<std::shared_mutex> lock(rollouts_mu_);
    if (rollouts_.find(name) != rollouts_.end()) {
      return Status(StatusCode::kInvalidArgument,
                    "a rollout is already in flight for '" + name + "'");
    }
    rollouts_.emplace(name, std::move(ro));
    rollouts_live_.fetch_add(1, std::memory_order_release);
  }
  mx.gauge("serving.rollout_state" + lbl)
      .set(static_cast<double>(RolloutState::kShadow));
  return Status::ok();
}

std::shared_ptr<Orchestrator::ActiveRollout> Orchestrator::find_rollout(
    const std::string& name) {
  if (rollouts_live_.load(std::memory_order_acquire) == 0) return nullptr;
  const std::shared_lock<std::shared_mutex> lock(rollouts_mu_);
  const auto it = rollouts_.find(name);
  return it == rollouts_.end() ? nullptr : it->second;
}

void Orchestrator::clear_rollout(const std::string& name, const ActiveRollout& ro) {
  const RolloutSnapshot snap = ro.ctl.snapshot();
  {
    const std::unique_lock<std::shared_mutex> lock(rollouts_mu_);
    const auto it = rollouts_.find(name);
    if (it == rollouts_.end() || it->second.get() != &ro) return;
    last_rollouts_[name] = snap;
    rollouts_.erase(it);
    rollouts_live_.fetch_sub(1, std::memory_order_release);
  }
  stats_.metrics()
      .gauge("serving.rollout_state{model=\"" + name + "\"}")
      .set(static_cast<double>(snap.state));
}

void Orchestrator::maybe_conclude_rollout(const std::string& name,
                                          ActiveRollout& ro) {
  if (!ro.ctl.options().auto_finalize) return;
  const RolloutState st = ro.ctl.state();
  if (st == RolloutState::kPassed) {
    conclude_rollout(name, ro, /*promote_candidate=*/true, "");
  } else if (st == RolloutState::kFailed) {
    conclude_rollout(name, ro, /*promote_candidate=*/false, "");
  }
}

void Orchestrator::conclude_rollout(const std::string& name, ActiveRollout& ro,
                                    bool promote_candidate, const std::string& reason) {
  if (promote_candidate) {
    ro.ctl.mark_promoted();
    promote(name, ro.version);
    stats_.metrics()
        .counter("serving.rollout.promotions{model=\"" + name + "\"}")
        .increment();
  } else {
    // The candidate never became the active version — discarding it leaves
    // the prior weights serving, which *is* the rollback (§7.1's safety
    // property extended to deployments).
    ro.ctl.mark_rolled_back(reason);
    stats_.metrics()
        .counter("serving.rollout.rollbacks{model=\"" + name + "\"}")
        .increment();
    obs::Alert a;
    a.kind = obs::AlertKind::kRolloutRolledBack;
    a.model = name;
    a.value = static_cast<double>(ro.version);
    a.message = "candidate v" + std::to_string(ro.version) +
                " rolled back: " + ro.ctl.snapshot().reason;
    alerts_.raise(a);
  }
  clear_rollout(name, ro);
}

void Orchestrator::finalize_rollout(const std::string& name, bool promote_candidate,
                                    const std::string& reason) {
  const std::shared_ptr<ActiveRollout> ro = find_rollout(name);
  if (ro != nullptr) conclude_rollout(name, *ro, promote_candidate, reason);
}

bool Orchestrator::rollout_in_flight(const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(rollouts_mu_);
  return rollouts_.find(name) != rollouts_.end();
}

std::optional<RolloutSnapshot> Orchestrator::rollout_progress(const std::string& name) {
  const std::shared_ptr<ActiveRollout> ro = find_rollout(name);
  if (ro == nullptr) {
    const std::shared_lock<std::shared_mutex> lock(rollouts_mu_);
    const auto it = last_rollouts_.find(name);
    if (it == last_rollouts_.end()) return std::nullopt;
    return it->second;
  }
  ro->ctl.poll();  // stage-deadline check rides on every progress poll
  maybe_conclude_rollout(name, *ro);
  const RolloutSnapshot snap = ro->ctl.snapshot();
  stats_.metrics()
      .gauge("serving.rollout_state{model=\"" + name + "\"}")
      .set(static_cast<double>(snap.state));
  return snap;
}

void Orchestrator::set_sample_hook(SampleHook hook) {
  const std::lock_guard<std::mutex> lock(hook_mu_);
  sample_hook_ = std::move(hook);
  hook_set_.store(static_cast<bool>(sample_hook_), std::memory_order_release);
}

void Orchestrator::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  const std::lock_guard<std::mutex> lock(injector_mu_);
  injector_ = std::move(injector);
}

std::shared_ptr<FaultInjector> Orchestrator::fault_injector() const {
  const std::lock_guard<std::mutex> lock(injector_mu_);
  return injector_;
}

CircuitBreaker& Orchestrator::breaker(const std::string& name) {
  const std::lock_guard<std::mutex> lock(breakers_mu_);
  std::unique_ptr<CircuitBreaker>& b = breakers_[name];
  if (b == nullptr) {
    CircuitBreakerOptions bopts = opts_.breaker;
    // Per-model state gauge (closed=0 / open=1 / half_open=2) plus the
    // breaker_open alert hook. Both targets live at stable addresses for
    // this orchestrator's lifetime; the callback runs under the breaker
    // mutex and never calls back into the breaker.
    obs::Gauge& state_gauge =
        stats_.metrics().gauge("serving.breaker_state{model=\"" + name + "\"}");
    state_gauge.set(0.0);
    obs::ModelMonitor* mon = opts_.monitor.enabled ? &monitor(name) : nullptr;
    const double trip_threshold = bopts.trip_threshold;
    bopts.on_transition = [this, &state_gauge, mon, trip_threshold, name](
                              BreakerState /*from*/, BreakerState to,
                              double window_fallback_rate) {
      state_gauge.set(static_cast<double>(to));
      if (to == BreakerState::kOpen) {
        if (mon != nullptr) {
          mon->record_breaker_open(window_fallback_rate, trip_threshold);
        }
        // A trip mid-rollout fails the candidate immediately, whatever the
        // stage (lock order: breaker mutex -> rollouts_mu_ shared ->
        // controller mutex; nothing here calls back into the breaker).
        if (const std::shared_ptr<ActiveRollout> ro = find_rollout(name)) {
          ro->ctl.note_breaker_trip();
        }
      }
    };
    b = std::make_unique<CircuitBreaker>(std::move(bopts), &stats_);
  }
  return *b;
}

obs::ModelMonitor& Orchestrator::monitor(const std::string& name) {
  const std::lock_guard<std::mutex> lock(monitors_mu_);
  std::unique_ptr<obs::ModelMonitor>& m = monitors_[name];
  if (m == nullptr) {
    m = std::make_unique<obs::ModelMonitor>(name, opts_.monitor, &alerts_);
  }
  return *m;
}

obs::ModelHealth Orchestrator::model_health(const std::string& name) {
  obs::ModelHealth h = monitor(name).health();
  {
    const std::lock_guard<std::mutex> lock(breakers_mu_);
    const auto it = breakers_.find(name);
    if (it != breakers_.end()) {
      h.breaker_state = breaker_state_name(it->second->state());
      h.breaker_trips = it->second->trips();
    }
  }
  h.latency_p50 = stats_.latency_percentile("total", 50.0);
  h.latency_p95 = stats_.latency_percentile("total", 95.0);
  h.latency_p99 = stats_.latency_percentile("total", 99.0);
  return h;
}

Result<Tensor> Orchestrator::execute(const ServableModel& m, const Tensor& input,
                                     RequestPhases* batch_phases) {
  AHN_CHECK(input.rank() == 2);
  const std::size_t batch = input.rows();
  const std::shared_ptr<FaultInjector> inj = fault_injector();

  // A dropped batch is lost before any phase runs; it is retriable.
  if (inj != nullptr && inj->draw_batch_drop()) {
    stats_.record_fault_injected("batch_drop");
    return Status(StatusCode::kTransientFailure, "injected batch drop");
  }

  // Consults the injector for one phase: returns false on a transient fault
  // (the attempt is abandoned), otherwise folds any latency spike into the
  // phase's modeled seconds.
  const char* failed_phase = nullptr;
  const auto probe_phase = [&](ServingPhase p, const char* name,
                               double& phase_s) -> bool {
    if (inj == nullptr) return true;
    if (inj->draw_transient(p)) {
      stats_.record_fault_injected("transient");
      failed_phase = name;
      return false;
    }
    const double spike = inj->draw_latency_spike(p);
    if (spike > 0.0) {
      stats_.record_fault_injected("latency_spike");
      phase_s += spike;
    }
    return true;
  };
  const auto transient = [&] {
    return Status(StatusCode::kTransientFailure,
                  std::string("injected transient fault in ") + failed_phase);
  };

  // (1) fetch: move the input tensor onto the device.
  double fetch_s = device_.transfer_seconds(sizeof(double) * input.size());
  if (!probe_phase(ServingPhase::kFetch, "fetch", fetch_s)) return transient();

  // (2) encode: feature reduction on device (skipped without an encoder).
  double encode_s = 0.0;
  Tensor reduced = m.encode ? m.encode(input) : input;
  if (m.encode) {
    OpCounts per_batch = m.encode_ops;
    per_batch.flops *= batch;
    per_batch.bytes_read *= batch;
    per_batch.bytes_written *= batch;
    encode_s = device_.kernel_seconds(per_batch, nn_inference_profile());
    if (!probe_phase(ServingPhase::kEncode, "encode", encode_s)) return transient();
  }

  // (3) load: touch the cached surrogate weights (once per batch — this is
  // the phase micro-batching amortizes, §7.3).
  double load_s = device_.spec().model_load_latency;
  if (!probe_phase(ServingPhase::kLoad, "load", load_s)) return transient();

  // (4) run: surrogate inference + result transfer back.
  Tensor out = m.surrogate.predict(reduced);
  OpCounts run_ops = m.infer_ops;
  run_ops.flops *= batch;
  run_ops.bytes_read *= batch;
  run_ops.bytes_written *= batch;
  double run_s = device_.kernel_seconds(run_ops, nn_inference_profile()) +
                 device_.transfer_seconds(sizeof(double) * out.size());
  if (!probe_phase(ServingPhase::kRun, "run", run_s)) return transient();

  // NaN corruption: one output row silently poisoned — the QoI guard in
  // finalize_batch is what must catch it, exactly as a real device fault
  // would have to be caught.
  if (inj != nullptr && out.rows() > 0 && inj->draw_nan_corruption()) {
    stats_.record_fault_injected("nan_corruption");
    const std::size_t r = inj->draw_row(out.rows());
    for (double& v : out.row(r)) v = std::numeric_limits<double>::quiet_NaN();
  }

  if (batch_phases != nullptr) {
    batch_phases->fetch = fetch_s;
    batch_phases->encode = encode_s;
    batch_phases->load = load_s;
    batch_phases->run = run_s;
  }
  if (opts_.simulate_device_occupancy) {
    // Stand in for the accelerator: the whole batch holds the device for its
    // modeled online time, however many rows it coalesced. Busy-wait rather
    // than sleep — the waits are tens of microseconds, below timer slack.
    const double busy_s = fetch_s + encode_s + load_s + run_s;
    for (Timer t; t.seconds() < busy_s;) {
    }
  }
  return out;
}

Result<Tensor> Orchestrator::execute_with_retry(const ServableModel& m,
                                                const Tensor& input,
                                                RequestPhases* batch_phases) {
  const std::size_t max_attempts = std::max<std::size_t>(opts_.retry.max_attempts, 1);
  double backoff = opts_.retry.initial_backoff_seconds;
  for (std::size_t attempt = 1;; ++attempt) {
    Result<Tensor> r = execute(m, input, batch_phases);
    if (r.is_ok() || r.code() != StatusCode::kTransientFailure ||
        attempt >= max_attempts) {
      return r;
    }
    stats_.record_retry();
    double sleep_s = backoff;
    if (opts_.retry.jitter_fraction > 0.0) {
      // Jitter de-correlates retry storms from concurrent clients.
      const std::lock_guard<std::mutex> lock(retry_mu_);
      sleep_s *= retry_rng_.uniform(1.0 - opts_.retry.jitter_fraction,
                                    1.0 + opts_.retry.jitter_fraction);
    }
    if (sleep_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    }
    backoff *= opts_.retry.backoff_multiplier;
  }
}

void Orchestrator::record_requests(const RequestPhases& batch_phases, std::size_t rows,
                                   const std::vector<obs::SpanContext>& contexts) {
  if (rows == 0) return;
  const double n = static_cast<double>(rows);
  // Per-request latency is the batch's modeled phase time amortized over the
  // coalesced rows — the quantity the batch-size histogram trades against.
  const RequestPhases per_request{batch_phases.fetch / n, batch_phases.encode / n,
                                  batch_phases.load / n, batch_phases.run / n};
  for (std::size_t i = 0; i < rows; ++i) {
    // Traced rows stamp their trace id onto the latency buckets they land
    // in, so a scraped histogram links straight to a captured trace.
    const std::uint64_t trace_id = i < contexts.size() ? contexts[i].trace_id : 0;
    stats_.record_request(per_request, trace_id);
  }
}

Status Orchestrator::run_model(const std::string& name, const std::string& in_key,
                               const std::string& out_key, PhaseAccumulator* phases) {
  if (draining()) {
    stats_.record_shutdown_rejection();
    return Status(StatusCode::kShuttingDown, "orchestrator draining");
  }
  const obs::Span span(*tracer_, "serve.run_model");
  return run_model_admitted(name, in_key, out_key, phases);
}

Status Orchestrator::run_model_admitted(const std::string& name,
                                        const std::string& in_key,
                                        const std::string& out_key,
                                        PhaseAccumulator* phases) {
  const std::shared_ptr<const ServableModel> m = find_model(name);
  if (m == nullptr) {
    return Status(StatusCode::kModelUnavailable, "no model named '" + name + "'");
  }
  std::optional<Tensor> input = tensors_.try_get(in_key);
  if (!input.has_value()) {
    return Status(StatusCode::kNotFound, "no tensor at key '" + in_key + "'");
  }
  const std::size_t rows = input->rank() == 2 ? input->rows() : 0;

  RequestPhases batch_phases;
  Result<Tensor> out = execute_with_retry(*m, *input, &batch_phases);
  if (!out.is_ok()) return out.status();

  if (phases != nullptr) {
    phases->add("fetch", batch_phases.fetch);
    phases->add("encode", batch_phases.encode);
    phases->add("load", batch_phases.load);
    phases->add("run", batch_phases.run);
  }
  stats_.record_batch(rows);
  record_requests(batch_phases, rows);
  if (opts_.monitor.enabled && rows > 0) {
    // Sampled drift observation for the keyed-store path (no per-row QoI
    // here). Lock-free for unsampled rows — see obs/monitor.hpp.
    obs::ModelMonitor& mon = monitor(name);
    for (std::size_t r = 0; r < rows; ++r) mon.observe_input(input->row(r));
  }
  put_tensor(out_key, std::move(out.value()));
  return Status::ok();
}

std::future<Status> Orchestrator::run_model_async(const std::string& name,
                                                  const std::string& in_key,
                                                  const std::string& out_key) {
  if (draining()) {
    stats_.record_shutdown_rejection();
    std::promise<Status> p;
    p.set_value(Status(StatusCode::kShuttingDown, "orchestrator draining"));
    return p.get_future();
  }
  // The draining check above is the admission decision; once accepted, the
  // task runs to completion even if a drain starts before the pool gets to
  // it (the drain contract: every accepted request is served). The caller's
  // span context rides along so the pool-side span stays on its trace.
  const obs::SpanContext parent = obs::Tracer::current();
  return pool().submit([this, name, in_key, out_key, parent] {
    const obs::Span span(*tracer_, "serve.run_model_async", parent);
    return run_model_admitted(name, in_key, out_key, /*phases=*/nullptr);
  });
}

std::future<Result<Tensor>> Orchestrator::run_model_batched(const std::string& name,
                                                            Tensor row,
                                                            RequestOptions request) {
  if (draining()) {
    stats_.record_shutdown_rejection();
    return ready_result(Status(StatusCode::kShuttingDown, "orchestrator draining"));
  }
  // Head sampling: a request arriving with a trace already current on this
  // thread (the cluster router's route span) always joins it; otherwise
  // every trace_sample_every'th request opens a fresh root span. The span
  // covers admission + enqueue; the queue carries its context the rest of
  // the way (batch_wait -> execute -> qoi children + exemplars).
  std::optional<obs::Span> span;
  if (obs::Tracer::current().trace_id != 0) {
    span.emplace(*tracer_, "serve.run_model_batched");
  } else if (opts_.trace_sample_every > 0 &&
             trace_ticker_.fetch_add(1, std::memory_order_relaxed) %
                     opts_.trace_sample_every ==
                 0) {
    span.emplace(*tracer_, "serve.run_model_batched");
  }
  const std::shared_ptr<const ServableModel> m = find_model(name);
  if (m == nullptr) {
    slo_->record_dropped(name);
    return ready_result(
        Status(StatusCode::kModelUnavailable, "no model named '" + name + "'"));
  }
  if (opts_.enable_breaker && m->fallback) {
    if (breaker(name).admit() == CircuitBreaker::Route::kOriginal) {
      // Open (or probe-saturated half-open) breaker: the request is served
      // by the original code on the caller's thread — graceful systemic
      // degradation instead of doomed surrogate traffic.
      const obs::Span fb_span(*tracer_, "serve.breaker_fallback");
      stats_.record_breaker_fallback();
      slo_->record(name, 0.0, /*ok=*/true, /*qoi_fallback=*/true);
      if (row.rank() == 1) row.reshape({1, row.size()});
      return ready_result(Result<Tensor>(m->fallback(row)));
    }
  }
  return batches().submit(name, std::move(row), request.deadline);
}

BatchingQueue::RowResults Orchestrator::finalize_batch(
    const std::string& name, const ServableModel& m, const Tensor& batch,
    const Tensor& out, ActiveRollout* ro, const Tensor* cand_out,
    const std::vector<obs::SpanContext>& contexts, double per_row_seconds) {
  const std::size_t rows = batch.rows();
  BatchingQueue::RowResults results;
  results.reserve(rows);
  CircuitBreaker* br =
      (opts_.enable_breaker && m.fallback) ? &breaker(name) : nullptr;
  obs::ModelMonitor* mon = opts_.monitor.enabled ? &monitor(name) : nullptr;
  SampleHook hook;
  if (hook_set_.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(hook_mu_);
    hook = sample_hook_;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    Tensor row_out({1, out.cols()});
    std::copy(out.row(r).begin(), out.row(r).end(), row_out.row(0).begin());

    // Built on demand: only QoI checks and fallbacks need the input row.
    Tensor row_in;
    const auto input_row = [&]() -> const Tensor& {
      if (row_in.size() == 0) {
        row_in = Tensor({1, batch.cols()});
        std::copy(batch.row(r).begin(), batch.row(r).end(), row_in.row(0).begin());
      }
      return row_in;
    };

    // Non-finite outputs are always a QoI miss (this is what catches
    // injected NaN corruption); the model's own check refines further.
    bool qoi_ok = std::all_of(row_out.row(0).begin(), row_out.row(0).end(),
                              [](double v) { return std::isfinite(v); });
    if (qoi_ok && m.qoi_check) qoi_ok = m.qoi_check(input_row(), row_out);

    // Live rollout: score the candidate's duplicate output for this row and
    // decide whether the row is a shadow observation (response untouched)
    // or a canary row (served by the candidate).
    bool serve_candidate = false;
    bool cand_ok = false;
    Tensor cand_row;
    if (ro != nullptr && cand_out != nullptr) {
      cand_row = Tensor({1, cand_out->cols()});
      std::copy(cand_out->row(r).begin(), cand_out->row(r).end(),
                cand_row.row(0).begin());
      cand_ok = std::all_of(cand_row.row(0).begin(), cand_row.row(0).end(),
                            [](double v) { return std::isfinite(v); });
      const ServableModel& cand_model = *ro->candidate;
      if (cand_ok && cand_model.qoi_check) {
        cand_ok = cand_model.qoi_check(input_row(), cand_row);
      }
      const RolloutState stage = ro->ctl.state();
      if (stage == RolloutState::kCanary && ro->ctl.admit_canary()) {
        serve_candidate = true;
        ro->canary_rows->increment();
        if (!cand_ok) ro->canary_miss->increment();
        ro->ctl.record_canary(cand_ok);
      } else if (stage == RolloutState::kShadow) {
        ro->shadow_rows->increment();
        if (!qoi_ok) ro->shadow_active_miss->increment();
        if (!cand_ok) ro->shadow_candidate_miss->increment();
        ro->ctl.record_shadow(qoi_ok, cand_ok);
      }
    }

    // Health signals track whichever model actually served the row.
    const bool served_ok = serve_candidate ? cand_ok : qoi_ok;
    if (br != nullptr) br->record_outcome(served_ok);
    if (mon != nullptr) mon->record_request(batch.row(r), served_ok);
    if (hook) hook(name, batch.row(r), served_ok);

    if (served_ok) {
      slo_->record(name, per_row_seconds, /*ok=*/true, /*qoi_fallback=*/false);
      results.emplace_back(serve_candidate ? std::move(cand_row)
                                           : std::move(row_out));
      continue;
    }
    stats_.record_qoi_fallback();
    if (m.fallback) {
      // §7.1: re-run the original code for this request, transparently.
      // Parented under the submitting request's span when the row is traced
      // (the trace shows *which request* paid the original-code cost), else
      // under the enclosing batch span (same thread).
      const obs::SpanContext row_ctx =
          r < contexts.size() ? contexts[r] : obs::SpanContext{};
      std::optional<obs::Span> span;
      if (row_ctx.trace_id != 0) {
        span.emplace(*tracer_, "serve.qoi_fallback", row_ctx);
      } else {
        span.emplace(*tracer_, "serve.qoi_fallback");
      }
      slo_->record(name, per_row_seconds, /*ok=*/true, /*qoi_fallback=*/true);
      results.emplace_back(m.fallback(input_row()));
    } else {
      slo_->record(name, per_row_seconds, /*ok=*/false, /*qoi_fallback=*/false);
      results.emplace_back(
          Status(StatusCode::kQoIRejected, "QoI miss with no original-code fallback"));
    }
  }
  return results;
}

void Orchestrator::flush_batches() {
  // Only started queues can hold pending rows; don't spawn one just to drain.
  if (batches_ != nullptr) batches_->flush();
}

void Orchestrator::drain() {
  draining_.store(true, std::memory_order_release);
  // Everything accepted before the flag flipped still gets served: pending
  // micro-batches execute, in-flight async work finishes. Requests arriving
  // after the flag resolve immediately with kShuttingDown. Going through the
  // call_once accessors (not the raw pointers) synchronizes with clients
  // that are lazily creating the executors concurrently with shutdown.
  batches().drain();
  pool().wait_idle();
}

ThreadPool& Orchestrator::pool() {
  std::call_once(pool_once_,
                 [this] { pool_ = std::make_unique<ThreadPool>(opts_.pool_threads); });
  return *pool_;
}

BatchingQueue& Orchestrator::batches() {
  std::call_once(batches_once_, [this] {
    BatchingOptions bopts;
    bopts.max_batch = opts_.max_batch;
    bopts.max_delay_seconds = opts_.batch_delay_seconds;
    batches_ = std::make_unique<BatchingQueue>(
        [this](const std::string& model_name, const Tensor& batch,
               const std::vector<obs::SpanContext>& contexts)
            -> BatchingQueue::RowResults {
          // Nested inside the queue's "batching.execute" span (same thread):
          // the batch span covers model lookup + the fused forward + QoI.
          // Join-only — when the batch carried no traced row there is no
          // current span and this batch records nothing (head sampling is
          // decided at the serving edge).
          std::optional<obs::Span> span;
          if (obs::Tracer::current().trace_id != 0) {
            span.emplace(*tracer_, "serve.batch");
          }
          const std::size_t rows = batch.rows();
          const auto fail_rows = [&](const Status& status) {
            // A batch-wide failure is `rows` availability bad events.
            for (std::size_t r = 0; r < rows; ++r) {
              slo_->record(model_name, 0.0, /*ok=*/false, /*qoi_fallback=*/false);
            }
            return BatchingQueue::RowResults(rows, Result<Tensor>(status));
          };
          const std::shared_ptr<const ServableModel> m = find_model(model_name);
          if (m == nullptr) {
            return fail_rows(Status(StatusCode::kModelUnavailable,
                                    "no model named '" + model_name + "'"));
          }
          RequestPhases batch_phases;
          Result<Tensor> out = execute_with_retry(*m, batch, &batch_phases);
          if (!out.is_ok()) {
            return fail_rows(out.status());
          }
          record_requests(batch_phases, rows, contexts);

          // Live rollout for this model: run the candidate's duplicate
          // forward over the same batch (no stats, no fault injection — the
          // shadow must not perturb the serving measurements it is judged
          // against).
          const std::shared_ptr<ActiveRollout> ro = find_rollout(model_name);
          Tensor cand_out;
          bool have_candidate = false;
          if (ro != nullptr) {
            const RolloutState st = ro->ctl.poll();
            if (st == RolloutState::kShadow || st == RolloutState::kCanary) {
              std::optional<obs::Span> shadow_span;
              if (obs::Tracer::current().trace_id != 0) {
                shadow_span.emplace(*tracer_, "serve.shadow_infer");
              }
              const ServableModel& cand = *ro->candidate;
              cand_out = cand.encode ? cand.surrogate.predict(cand.encode(batch))
                                     : cand.surrogate.predict(batch);
              have_candidate = cand_out.rows() == rows;
            }
          }
          const double per_row_seconds =
              rows > 0 ? (batch_phases.fetch + batch_phases.encode +
                          batch_phases.load + batch_phases.run) /
                             static_cast<double>(rows)
                       : 0.0;
          BatchingQueue::RowResults results = finalize_batch(
              model_name, *m, batch, out.value(), have_candidate ? ro.get() : nullptr,
              have_candidate ? &cand_out : nullptr, contexts, per_row_seconds);
          if (ro != nullptr) maybe_conclude_rollout(model_name, *ro);
          return results;
        },
        bopts, &stats_, tracer_);
  });
  return *batches_;
}

}  // namespace ahn::runtime
