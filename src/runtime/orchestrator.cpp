#include "runtime/orchestrator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "runtime/deployment.hpp"

namespace ahn::runtime {

namespace {

/// An already-resolved batched-request future (rejections and breaker
/// fallbacks never enter the queue).
std::future<Result<Tensor>> ready_result(Result<Tensor> r) {
  std::promise<Result<Tensor>> p;
  p.set_value(std::move(r));
  return p.get_future();
}

}  // namespace

Orchestrator::Orchestrator(DeviceModel device, OrchestratorOptions opts)
    : device_(device),
      opts_(opts),
      tracer_(opts.tracer != nullptr ? opts.tracer : &obs::Tracer::global()),
      tensors_(opts.store_shards) {}

Orchestrator::~Orchestrator() = default;

void Orchestrator::put_tensor(const std::string& key, Tensor value) {
  tensors_.put(key, std::move(value));
}

Tensor Orchestrator::get_tensor(const std::string& key) const {
  return tensors_.get(key);
}

bool Orchestrator::has_tensor(const std::string& key) const {
  return tensors_.has(key);
}

void Orchestrator::delete_tensor(const std::string& key) {
  tensors_.erase(key);
}

void Orchestrator::set_model(const std::string& name,
                             std::shared_ptr<const ServableModel> model) {
  AHN_CHECK(model != nullptr);
  const std::unique_lock<std::shared_mutex> lock(models_mu_);
  models_[name] = std::move(model);
}

void Orchestrator::deploy(const DeploymentPackage& pkg) {
  AHN_CHECK_MSG(pkg.model != nullptr, "deployment package has no model");
  set_model(pkg.name, pkg.model);
  monitor(pkg.name).set_reference(pkg.reference);
}

std::shared_ptr<const ServableModel> Orchestrator::model(const std::string& name) const {
  std::shared_ptr<const ServableModel> m = find_model(name);
  AHN_CHECK_MSG(m != nullptr, "no model named '" << name << "'");
  return m;
}

std::shared_ptr<const ServableModel> Orchestrator::find_model(
    const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(models_mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

void Orchestrator::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  const std::lock_guard<std::mutex> lock(injector_mu_);
  injector_ = std::move(injector);
}

std::shared_ptr<FaultInjector> Orchestrator::fault_injector() const {
  const std::lock_guard<std::mutex> lock(injector_mu_);
  return injector_;
}

CircuitBreaker& Orchestrator::breaker(const std::string& name) {
  const std::lock_guard<std::mutex> lock(breakers_mu_);
  std::unique_ptr<CircuitBreaker>& b = breakers_[name];
  if (b == nullptr) {
    CircuitBreakerOptions bopts = opts_.breaker;
    // Per-model state gauge (closed=0 / open=1 / half_open=2) plus the
    // breaker_open alert hook. Both targets live at stable addresses for
    // this orchestrator's lifetime; the callback runs under the breaker
    // mutex and never calls back into the breaker.
    obs::Gauge& state_gauge =
        stats_.metrics().gauge("serving.breaker_state{model=\"" + name + "\"}");
    state_gauge.set(0.0);
    obs::ModelMonitor* mon = opts_.monitor.enabled ? &monitor(name) : nullptr;
    const double trip_threshold = bopts.trip_threshold;
    bopts.on_transition = [&state_gauge, mon, trip_threshold](
                              BreakerState /*from*/, BreakerState to,
                              double window_fallback_rate) {
      state_gauge.set(static_cast<double>(to));
      if (to == BreakerState::kOpen && mon != nullptr) {
        mon->record_breaker_open(window_fallback_rate, trip_threshold);
      }
    };
    b = std::make_unique<CircuitBreaker>(std::move(bopts), &stats_);
  }
  return *b;
}

obs::ModelMonitor& Orchestrator::monitor(const std::string& name) {
  const std::lock_guard<std::mutex> lock(monitors_mu_);
  std::unique_ptr<obs::ModelMonitor>& m = monitors_[name];
  if (m == nullptr) {
    m = std::make_unique<obs::ModelMonitor>(name, opts_.monitor, &alerts_);
  }
  return *m;
}

obs::ModelHealth Orchestrator::model_health(const std::string& name) {
  obs::ModelHealth h = monitor(name).health();
  {
    const std::lock_guard<std::mutex> lock(breakers_mu_);
    const auto it = breakers_.find(name);
    if (it != breakers_.end()) {
      h.breaker_state = breaker_state_name(it->second->state());
      h.breaker_trips = it->second->trips();
    }
  }
  h.latency_p50 = stats_.latency_percentile("total", 50.0);
  h.latency_p95 = stats_.latency_percentile("total", 95.0);
  h.latency_p99 = stats_.latency_percentile("total", 99.0);
  return h;
}

Result<Tensor> Orchestrator::execute(const ServableModel& m, const Tensor& input,
                                     RequestPhases* batch_phases) {
  AHN_CHECK(input.rank() == 2);
  const std::size_t batch = input.rows();
  const std::shared_ptr<FaultInjector> inj = fault_injector();

  // A dropped batch is lost before any phase runs; it is retriable.
  if (inj != nullptr && inj->draw_batch_drop()) {
    stats_.record_fault_injected("batch_drop");
    return Status(StatusCode::kTransientFailure, "injected batch drop");
  }

  // Consults the injector for one phase: returns false on a transient fault
  // (the attempt is abandoned), otherwise folds any latency spike into the
  // phase's modeled seconds.
  const char* failed_phase = nullptr;
  const auto probe_phase = [&](ServingPhase p, const char* name,
                               double& phase_s) -> bool {
    if (inj == nullptr) return true;
    if (inj->draw_transient(p)) {
      stats_.record_fault_injected("transient");
      failed_phase = name;
      return false;
    }
    const double spike = inj->draw_latency_spike(p);
    if (spike > 0.0) {
      stats_.record_fault_injected("latency_spike");
      phase_s += spike;
    }
    return true;
  };
  const auto transient = [&] {
    return Status(StatusCode::kTransientFailure,
                  std::string("injected transient fault in ") + failed_phase);
  };

  // (1) fetch: move the input tensor onto the device.
  double fetch_s = device_.transfer_seconds(sizeof(double) * input.size());
  if (!probe_phase(ServingPhase::kFetch, "fetch", fetch_s)) return transient();

  // (2) encode: feature reduction on device (skipped without an encoder).
  double encode_s = 0.0;
  Tensor reduced = m.encode ? m.encode(input) : input;
  if (m.encode) {
    OpCounts per_batch = m.encode_ops;
    per_batch.flops *= batch;
    per_batch.bytes_read *= batch;
    per_batch.bytes_written *= batch;
    encode_s = device_.kernel_seconds(per_batch, nn_inference_profile());
    if (!probe_phase(ServingPhase::kEncode, "encode", encode_s)) return transient();
  }

  // (3) load: touch the cached surrogate weights (once per batch — this is
  // the phase micro-batching amortizes, §7.3).
  double load_s = device_.spec().model_load_latency;
  if (!probe_phase(ServingPhase::kLoad, "load", load_s)) return transient();

  // (4) run: surrogate inference + result transfer back.
  Tensor out = m.surrogate.predict(reduced);
  OpCounts run_ops = m.infer_ops;
  run_ops.flops *= batch;
  run_ops.bytes_read *= batch;
  run_ops.bytes_written *= batch;
  double run_s = device_.kernel_seconds(run_ops, nn_inference_profile()) +
                 device_.transfer_seconds(sizeof(double) * out.size());
  if (!probe_phase(ServingPhase::kRun, "run", run_s)) return transient();

  // NaN corruption: one output row silently poisoned — the QoI guard in
  // finalize_batch is what must catch it, exactly as a real device fault
  // would have to be caught.
  if (inj != nullptr && out.rows() > 0 && inj->draw_nan_corruption()) {
    stats_.record_fault_injected("nan_corruption");
    const std::size_t r = inj->draw_row(out.rows());
    for (double& v : out.row(r)) v = std::numeric_limits<double>::quiet_NaN();
  }

  if (batch_phases != nullptr) {
    batch_phases->fetch = fetch_s;
    batch_phases->encode = encode_s;
    batch_phases->load = load_s;
    batch_phases->run = run_s;
  }
  if (opts_.simulate_device_occupancy) {
    // Stand in for the accelerator: the whole batch holds the device for its
    // modeled online time, however many rows it coalesced. Busy-wait rather
    // than sleep — the waits are tens of microseconds, below timer slack.
    const double busy_s = fetch_s + encode_s + load_s + run_s;
    for (Timer t; t.seconds() < busy_s;) {
    }
  }
  return out;
}

Result<Tensor> Orchestrator::execute_with_retry(const ServableModel& m,
                                                const Tensor& input,
                                                RequestPhases* batch_phases) {
  const std::size_t max_attempts = std::max<std::size_t>(opts_.retry.max_attempts, 1);
  double backoff = opts_.retry.initial_backoff_seconds;
  for (std::size_t attempt = 1;; ++attempt) {
    Result<Tensor> r = execute(m, input, batch_phases);
    if (r.is_ok() || r.code() != StatusCode::kTransientFailure ||
        attempt >= max_attempts) {
      return r;
    }
    stats_.record_retry();
    double sleep_s = backoff;
    if (opts_.retry.jitter_fraction > 0.0) {
      // Jitter de-correlates retry storms from concurrent clients.
      const std::lock_guard<std::mutex> lock(retry_mu_);
      sleep_s *= retry_rng_.uniform(1.0 - opts_.retry.jitter_fraction,
                                    1.0 + opts_.retry.jitter_fraction);
    }
    if (sleep_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    }
    backoff *= opts_.retry.backoff_multiplier;
  }
}

void Orchestrator::record_requests(const RequestPhases& batch_phases, std::size_t rows) {
  if (rows == 0) return;
  const double n = static_cast<double>(rows);
  // Per-request latency is the batch's modeled phase time amortized over the
  // coalesced rows — the quantity the batch-size histogram trades against.
  const RequestPhases per_request{batch_phases.fetch / n, batch_phases.encode / n,
                                  batch_phases.load / n, batch_phases.run / n};
  for (std::size_t i = 0; i < rows; ++i) stats_.record_request(per_request);
}

Status Orchestrator::run_model(const std::string& name, const std::string& in_key,
                               const std::string& out_key, PhaseAccumulator* phases) {
  if (draining()) {
    stats_.record_shutdown_rejection();
    return Status(StatusCode::kShuttingDown, "orchestrator draining");
  }
  const obs::Span span(*tracer_, "serve.run_model");
  return run_model_admitted(name, in_key, out_key, phases);
}

Status Orchestrator::run_model_admitted(const std::string& name,
                                        const std::string& in_key,
                                        const std::string& out_key,
                                        PhaseAccumulator* phases) {
  const std::shared_ptr<const ServableModel> m = find_model(name);
  if (m == nullptr) {
    return Status(StatusCode::kModelUnavailable, "no model named '" + name + "'");
  }
  std::optional<Tensor> input = tensors_.try_get(in_key);
  if (!input.has_value()) {
    return Status(StatusCode::kNotFound, "no tensor at key '" + in_key + "'");
  }
  const std::size_t rows = input->rank() == 2 ? input->rows() : 0;

  RequestPhases batch_phases;
  Result<Tensor> out = execute_with_retry(*m, *input, &batch_phases);
  if (!out.is_ok()) return out.status();

  if (phases != nullptr) {
    phases->add("fetch", batch_phases.fetch);
    phases->add("encode", batch_phases.encode);
    phases->add("load", batch_phases.load);
    phases->add("run", batch_phases.run);
  }
  stats_.record_batch(rows);
  record_requests(batch_phases, rows);
  if (opts_.monitor.enabled && rows > 0) {
    // Sampled drift observation for the keyed-store path (no per-row QoI
    // here). Lock-free for unsampled rows — see obs/monitor.hpp.
    obs::ModelMonitor& mon = monitor(name);
    for (std::size_t r = 0; r < rows; ++r) mon.observe_input(input->row(r));
  }
  put_tensor(out_key, std::move(out.value()));
  return Status::ok();
}

std::future<Status> Orchestrator::run_model_async(const std::string& name,
                                                  const std::string& in_key,
                                                  const std::string& out_key) {
  if (draining()) {
    stats_.record_shutdown_rejection();
    std::promise<Status> p;
    p.set_value(Status(StatusCode::kShuttingDown, "orchestrator draining"));
    return p.get_future();
  }
  // The draining check above is the admission decision; once accepted, the
  // task runs to completion even if a drain starts before the pool gets to
  // it (the drain contract: every accepted request is served). The caller's
  // span context rides along so the pool-side span stays on its trace.
  const obs::SpanContext parent = obs::Tracer::current();
  return pool().submit([this, name, in_key, out_key, parent] {
    const obs::Span span(*tracer_, "serve.run_model_async", parent);
    return run_model_admitted(name, in_key, out_key, /*phases=*/nullptr);
  });
}

std::future<Result<Tensor>> Orchestrator::run_model_batched(const std::string& name,
                                                            Tensor row,
                                                            RequestOptions request) {
  if (draining()) {
    stats_.record_shutdown_rejection();
    return ready_result(Status(StatusCode::kShuttingDown, "orchestrator draining"));
  }
  const std::shared_ptr<const ServableModel> m = find_model(name);
  if (m == nullptr) {
    return ready_result(
        Status(StatusCode::kModelUnavailable, "no model named '" + name + "'"));
  }
  if (opts_.enable_breaker && m->fallback) {
    if (breaker(name).admit() == CircuitBreaker::Route::kOriginal) {
      // Open (or probe-saturated half-open) breaker: the request is served
      // by the original code on the caller's thread — graceful systemic
      // degradation instead of doomed surrogate traffic.
      const obs::Span span(*tracer_, "serve.breaker_fallback");
      stats_.record_breaker_fallback();
      if (row.rank() == 1) row.reshape({1, row.size()});
      return ready_result(Result<Tensor>(m->fallback(row)));
    }
  }
  return batches().submit(name, std::move(row), request.deadline);
}

BatchingQueue::RowResults Orchestrator::finalize_batch(const std::string& name,
                                                       const ServableModel& m,
                                                       const Tensor& batch,
                                                       const Tensor& out) {
  const std::size_t rows = batch.rows();
  BatchingQueue::RowResults results;
  results.reserve(rows);
  CircuitBreaker* br =
      (opts_.enable_breaker && m.fallback) ? &breaker(name) : nullptr;
  obs::ModelMonitor* mon = opts_.monitor.enabled ? &monitor(name) : nullptr;
  for (std::size_t r = 0; r < rows; ++r) {
    Tensor row_out({1, out.cols()});
    std::copy(out.row(r).begin(), out.row(r).end(), row_out.row(0).begin());

    // Built on demand: only QoI checks and fallbacks need the input row.
    Tensor row_in;
    const auto input_row = [&]() -> const Tensor& {
      if (row_in.size() == 0) {
        row_in = Tensor({1, batch.cols()});
        std::copy(batch.row(r).begin(), batch.row(r).end(), row_in.row(0).begin());
      }
      return row_in;
    };

    // Non-finite outputs are always a QoI miss (this is what catches
    // injected NaN corruption); the model's own check refines further.
    bool qoi_ok = std::all_of(row_out.row(0).begin(), row_out.row(0).end(),
                              [](double v) { return std::isfinite(v); });
    if (qoi_ok && m.qoi_check) qoi_ok = m.qoi_check(input_row(), row_out);

    if (br != nullptr) br->record_outcome(qoi_ok);
    if (mon != nullptr) mon->record_request(batch.row(r), qoi_ok);
    if (qoi_ok) {
      results.emplace_back(std::move(row_out));
      continue;
    }
    stats_.record_qoi_fallback();
    if (m.fallback) {
      // §7.1: re-run the original code for this request, transparently.
      // Nested under the enclosing batch span (same thread), so the trace
      // shows which batch paid the original-code cost.
      const obs::Span span(*tracer_, "serve.qoi_fallback");
      results.emplace_back(m.fallback(input_row()));
    } else {
      results.emplace_back(
          Status(StatusCode::kQoIRejected, "QoI miss with no original-code fallback"));
    }
  }
  return results;
}

void Orchestrator::flush_batches() {
  // Only started queues can hold pending rows; don't spawn one just to drain.
  if (batches_ != nullptr) batches_->flush();
}

void Orchestrator::drain() {
  draining_.store(true, std::memory_order_release);
  // Everything accepted before the flag flipped still gets served: pending
  // micro-batches execute, in-flight async work finishes. Requests arriving
  // after the flag resolve immediately with kShuttingDown. Going through the
  // call_once accessors (not the raw pointers) synchronizes with clients
  // that are lazily creating the executors concurrently with shutdown.
  batches().drain();
  pool().wait_idle();
}

ThreadPool& Orchestrator::pool() {
  std::call_once(pool_once_,
                 [this] { pool_ = std::make_unique<ThreadPool>(opts_.pool_threads); });
  return *pool_;
}

BatchingQueue& Orchestrator::batches() {
  std::call_once(batches_once_, [this] {
    BatchingOptions bopts;
    bopts.max_batch = opts_.max_batch;
    bopts.max_delay_seconds = opts_.batch_delay_seconds;
    batches_ = std::make_unique<BatchingQueue>(
        [this](const std::string& model_name,
               const Tensor& batch) -> BatchingQueue::RowResults {
          // Nested inside the queue's "batching.execute" span (same thread):
          // the batch span covers model lookup + the fused forward + QoI.
          const obs::Span span(*tracer_, "serve.batch");
          const std::size_t rows = batch.rows();
          const std::shared_ptr<const ServableModel> m = find_model(model_name);
          if (m == nullptr) {
            return BatchingQueue::RowResults(
                rows, Result<Tensor>(Status(StatusCode::kModelUnavailable,
                                            "no model named '" + model_name + "'")));
          }
          RequestPhases batch_phases;
          Result<Tensor> out = execute_with_retry(*m, batch, &batch_phases);
          if (!out.is_ok()) {
            return BatchingQueue::RowResults(rows, Result<Tensor>(out.status()));
          }
          record_requests(batch_phases, rows);
          return finalize_batch(model_name, *m, batch, out.value());
        },
        bopts, &stats_, tracer_);
  });
  return *batches_;
}

}  // namespace ahn::runtime
