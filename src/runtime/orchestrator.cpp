#include "runtime/orchestrator.hpp"

#include "common/error.hpp"

namespace ahn::runtime {

void Orchestrator::put_tensor(const std::string& key, Tensor value) {
  const std::lock_guard<std::mutex> lock(mu_);
  tensors_[key] = std::move(value);
}

Tensor Orchestrator::get_tensor(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = tensors_.find(key);
  AHN_CHECK_MSG(it != tensors_.end(), "no tensor at key '" << key << "'");
  return it->second;
}

bool Orchestrator::has_tensor(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tensors_.contains(key);
}

void Orchestrator::delete_tensor(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  tensors_.erase(key);
}

void Orchestrator::set_model(const std::string& name,
                             std::shared_ptr<const ServableModel> model) {
  AHN_CHECK(model != nullptr);
  const std::lock_guard<std::mutex> lock(mu_);
  models_[name] = std::move(model);
}

std::shared_ptr<const ServableModel> Orchestrator::model(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  AHN_CHECK_MSG(it != models_.end(), "no model named '" << name << "'");
  return it->second;
}

void Orchestrator::run_model(const std::string& name, const std::string& in_key,
                             const std::string& out_key, PhaseAccumulator* phases) {
  const std::shared_ptr<const ServableModel> m = model(name);
  Tensor input = get_tensor(in_key);
  AHN_CHECK(input.rank() == 2);
  const std::size_t batch = input.rows();

  // (1) fetch: move the input tensor onto the device.
  const double fetch_s =
      device_.transfer_seconds(sizeof(double) * input.size());

  // (2) encode: feature reduction on device (skipped without an encoder).
  double encode_s = 0.0;
  Tensor reduced = std::move(input);
  if (m->encode) {
    reduced = m->encode(reduced);
    OpCounts per_batch = m->encode_ops;
    per_batch.flops *= batch;
    per_batch.bytes_read *= batch;
    per_batch.bytes_written *= batch;
    encode_s = device_.kernel_seconds(per_batch, nn_inference_profile());
  }

  // (3) load: touch the cached surrogate weights.
  const double load_s = device_.spec().model_load_latency;

  // (4) run: surrogate inference + result transfer back.
  const Tensor out = m->surrogate.predict(reduced);
  OpCounts run_ops = m->infer_ops;
  run_ops.flops *= batch;
  run_ops.bytes_read *= batch;
  run_ops.bytes_written *= batch;
  const double run_s = device_.kernel_seconds(run_ops, nn_inference_profile()) +
                       device_.transfer_seconds(sizeof(double) * out.size());

  if (phases != nullptr) {
    phases->add("fetch", fetch_s);
    phases->add("encode", encode_s);
    phases->add("load", load_s);
    phases->add("run", run_s);
  }
  put_tensor(out_key, out);
}

}  // namespace ahn::runtime
