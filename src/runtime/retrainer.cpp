#include "runtime/retrainer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <set>
#include <thread>
#include <unordered_map>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "runtime/orchestrator.hpp"

namespace ahn::runtime {

double complexity_weight(const obs::FeatureSketch& reference,
                         std::span<const double> row) {
  double w = 0.0;
  const std::size_t features = std::min(row.size(), reference.features());
  for (std::size_t f = 0; f < features; ++f) {
    if (std::isnan(row[f])) continue;
    const double sigma = std::max(reference.stddev(f), 1e-12);
    w = std::max(w, std::abs(row[f] - reference.mean(f)) / sigma);
  }
  return w;
}

// --------------------------------------------------------- RetrainReservoir

RetrainReservoir::RetrainReservoir(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void RetrainReservoir::offer(std::span<const double> row, double weight) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++offered_;
  if (rows_.size() < capacity_) {
    rows_.push_back(ReservoirRow{std::vector<double>(row.begin(), row.end()), weight});
    return;
  }
  // Full: replace the current minimum-weight row iff the newcomer outweighs
  // it — the Turaco rule that concentrates the buffer on drifted inputs.
  std::size_t min_i = 0;
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i].weight < rows_[min_i].weight) min_i = i;
  }
  if (weight > rows_[min_i].weight) {
    rows_[min_i].x.assign(row.begin(), row.end());
    rows_[min_i].weight = weight;
  }
}

std::vector<ReservoirRow> RetrainReservoir::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

void RetrainReservoir::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
}

std::size_t RetrainReservoir::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

std::uint64_t RetrainReservoir::offered() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return offered_;
}

// ------------------------------------------------------------------ Impl

struct Retrainer::Impl {
  RolloutHost* host;
  RetrainerOptions opts;

  std::atomic<std::uint64_t> ticker{0};
  std::atomic<bool> stopping{false};

  mutable std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> queue;
  std::set<std::string> queued;  ///< dedup: queued or mid-cycle names
  std::unordered_map<std::string, std::unique_ptr<RetrainReservoir>> reservoirs;

  std::atomic<std::uint64_t> alerts_seen{0};
  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> promoted{0};
  std::atomic<std::uint64_t> rolled_back{0};
  std::atomic<std::uint64_t> skipped{0};
  std::atomic<std::uint64_t> coalesced{0};

  std::thread worker;

  explicit Impl(RolloutHost& h, RetrainerOptions o) : host(&h), opts(std::move(o)) {
    opts.sample_every = std::max<std::uint64_t>(1, opts.sample_every);
  }

  RetrainReservoir& reservoir(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mu);
    std::unique_ptr<RetrainReservoir>& r = reservoirs[name];
    if (r == nullptr) r = std::make_unique<RetrainReservoir>(opts.reservoir_capacity);
    return *r;  // never erased -> address stable after creation
  }

  /// Sample hook body (serving threads): subsample, weight, offer.
  void on_row(const std::string& name, std::span<const double> row) {
    if (stopping.load(std::memory_order_relaxed) || row.empty()) return;
    if (ticker.fetch_add(1, std::memory_order_relaxed) % opts.sample_every != 0) {
      return;
    }
    double weight = 1.0;
    if (const std::optional<ActiveModelInfo> info = host->active_model(name)) {
      if (info->reference != nullptr) {
        weight = complexity_weight(*info->reference, row);
      }
    }
    reservoir(name).offer(row, weight);
  }

  /// Alert callback body (serving threads): filter and enqueue.
  void on_alert(const obs::Alert& a) {
    bool trigger = false;
    switch (a.kind) {
      case obs::AlertKind::kDriftDetected: trigger = opts.retrain_on_drift; break;
      case obs::AlertKind::kQoiDegraded: trigger = opts.retrain_on_qoi; break;
      case obs::AlertKind::kBreakerOpen: trigger = opts.retrain_on_breaker; break;
      case obs::AlertKind::kRolloutRolledBack: trigger = false; break;
      // Budget burn pages an operator; it does not by itself imply the
      // model decayed (a latency SLO can burn on pure load), so no retrain.
      case obs::AlertKind::kSloBurn: trigger = false; break;
    }
    if (!trigger) return;
    alerts_seen.fetch_add(1, std::memory_order_relaxed);
    enqueue(a.model);
  }

  /// One alert-storm trigger dropped: a cycle for the model is already
  /// queued, training, or mid-rollout. Counted rather than queued — when the
  /// in-flight cycle concludes, its promotion re-baselines the monitor, so
  /// replaying the storm would retrain on the very drift just fixed.
  void note_coalesced(const std::string& name) {
    coalesced.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsRegistry* reg = host->metrics_registry()) {
      reg->counter("serving.retrain.coalesced").increment();
    }
    AHN_INFO_C("retrain", name << ": trigger coalesced into the in-flight cycle");
  }

  void enqueue(const std::string& name) {
    // A rollout in flight means a retrain cycle is already being judged for
    // this model (ours or an operator's): don't stack another behind it.
    // rollout_in_flight is side-effect-free, unlike rollout_progress.
    if (host->rollout_in_flight(name)) {
      note_coalesced(name);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (!queued.insert(name).second) {  // already queued or mid-cycle
        note_coalesced(name);
        return;
      }
      queue.push_back(name);
    }
    cv.notify_one();
  }

  void run() {
    for (;;) {
      std::string name;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stopping.load() || !queue.empty(); });
        if (stopping.load()) return;
        name = queue.front();
        queue.pop_front();
      }
      run_cycle(name);
      const std::lock_guard<std::mutex> lock(mu);
      queued.erase(name);
    }
  }

  void run_cycle(const std::string& name) {
    started.fetch_add(1, std::memory_order_relaxed);
    const obs::Span cycle_span(obs::Tracer::global(), "retrain.cycle");

    const std::optional<ActiveModelInfo> info = host->active_model(name);
    if (!info.has_value() || info->model == nullptr || !info->model->fallback) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      AHN_WARN_C("retrain", name << ": no active model with an original-code "
                                    "fallback to label rows; cycle skipped");
      return;
    }
    const std::vector<ReservoirRow> rows = reservoir(name).snapshot();
    if (rows.size() < opts.min_retrain_rows) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      AHN_INFO_C("retrain", name << ": reservoir has " << rows.size() << " rows, "
                                 << opts.min_retrain_rows
                                 << " required; cycle skipped");
      return;
    }

    // Label the reservoir with the original code (§7.1: the fallback is the
    // ground truth that is always available, exactly what a drifted
    // surrogate is missing).
    const std::size_t n = rows.size();
    const std::size_t in_features = rows[0].x.size();
    nn::Dataset data;
    data.x = Tensor({n, in_features});
    {
      const obs::Span label_span(obs::Tracer::global(), "retrain.label");
      Tensor row_in({1, in_features});
      for (std::size_t i = 0; i < n; ++i) {
        std::copy(rows[i].x.begin(), rows[i].x.end(), data.x.row(i).begin());
        std::copy(rows[i].x.begin(), rows[i].x.end(), row_in.row(0).begin());
        const Tensor label = info->model->fallback(row_in);
        if (i == 0) data.y = Tensor({n, label.size()});
        const std::span<const double> flat = label.flat();
        std::copy(flat.begin(), flat.end(), data.y.row(i).begin());
      }
    }

    // Candidate = the active servable with the surrogate swapped (and, for
    // the candidate_fn seam, possibly a replacement encoder); the new
    // reference sketch is the reservoir itself (the distribution the
    // candidate was just trained on).
    auto candidate = std::make_shared<ServableModel>(*info->model);
    {
      const obs::Span train_span(obs::Tracer::global(), "retrain.train");
      if (opts.candidate_fn) {
        RetrainCandidate produced = opts.candidate_fn(*info->model, data);
        candidate->surrogate = std::move(produced.surrogate);
        if (produced.replace_encoder) {
          candidate->encode = std::move(produced.encode);
          candidate->encode_ops = produced.encode_ops;
          candidate->infer_ops = produced.infer_ops;
        }
      } else {
        candidate->surrogate =
            opts.train_fn
                ? opts.train_fn(info->model->surrogate, data)
                : nn::train_surrogate(info->model->surrogate.net, data, opts.train);
      }
    }
    auto reference = std::make_shared<obs::FeatureSketch>(in_features);
    for (const ReservoirRow& r : rows) reference->observe(r.x);

    const std::uint64_t version =
        host->install_candidate(name, std::move(candidate), std::move(reference),
                                "retrain");
    const Status begun = host->begin_rollout(name, version, opts.rollout);
    if (!begun.is_ok()) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      AHN_WARN_C("retrain", name << ": begin_rollout(v" << version
                                 << ") failed: " << begun.message());
      return;
    }
    AHN_INFO_C("retrain", name << ": candidate v" << version << " trained on "
                               << n << " reservoir rows (val loss "
                               << candidate->surrogate.result.val_loss
                               << "); rollout started");

    // Drive the rollout to its verdict (each poll also runs the host's
    // stage-deadline checks). Past the cycle budget, stop polling — the
    // rollout's own stage timeout fails it on a later poll.
    const Timer elapsed;
    RolloutState final_state = RolloutState::kIdle;
    for (;;) {
      const std::optional<RolloutSnapshot> snap = host->rollout_progress(name);
      if (snap.has_value() && snap->candidate_version == version &&
          rollout_terminal(snap->state)) {
        final_state = snap->state;
        break;
      }
      if (stopping.load(std::memory_order_relaxed) ||
          elapsed.seconds() > opts.cycle_timeout_seconds) {
        break;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opts.poll_interval_seconds));
    }

    if (final_state == RolloutState::kPromoted) {
      promoted.fetch_add(1, std::memory_order_relaxed);
      // Promotion re-baselined the monitor (retrain_recommended clears);
      // start collecting the *new* distribution from scratch.
      reservoir(name).clear();
      AHN_INFO_C("retrain", name << ": v" << version << " promoted");
    } else if (final_state == RolloutState::kRolledBack) {
      rolled_back.fetch_add(1, std::memory_order_relaxed);
      AHN_WARN_C("retrain", name << ": v" << version << " rolled back");
    } else {
      AHN_WARN_C("retrain", name << ": rollout of v" << version
                                 << " unresolved within the cycle budget");
    }
  }
};

// ------------------------------------------------------------- Retrainer

Retrainer::Retrainer(RolloutHost& host, RetrainerOptions opts)
    : impl_(std::make_shared<Impl>(host, std::move(opts))) {
  // Both callbacks hold weak refs: the host may outlive this Retrainer and
  // keep raising alerts / serving rows without dangling into freed state.
  // Pre-register the coalescing counter so the metrics family exists (and
  // exports as 0) before the first alert storm.
  if (obs::MetricsRegistry* reg = host.metrics_registry()) {
    static_cast<void>(reg->counter("serving.retrain.coalesced"));
  }
  std::weak_ptr<Impl> weak = impl_;
  host.set_sample_hook([weak](const std::string& name, std::span<const double> row,
                              bool /*qoi_ok*/) {
    if (const std::shared_ptr<Impl> impl = weak.lock()) impl->on_row(name, row);
  });
  host.alert_sink().add_callback([weak](const obs::Alert& a) {
    if (const std::shared_ptr<Impl> impl = weak.lock()) impl->on_alert(a);
  });
  impl_->worker = std::thread([impl = impl_] { impl->run(); });
}

Retrainer::~Retrainer() { stop(); }

void Retrainer::stop() {
  if (impl_ == nullptr) return;
  impl_->stopping.store(true, std::memory_order_relaxed);
  impl_->cv.notify_all();
  if (impl_->worker.joinable()) impl_->worker.join();
  impl_->host->set_sample_hook({});
  // impl_ stays alive: stats()/reservoir_size() remain readable after stop
  // (benches and operators inspect the outcome once the worker is quiet).
}

void Retrainer::request_retrain(const std::string& model) {
  if (impl_ != nullptr) impl_->enqueue(model);
}

RetrainerStats Retrainer::stats() const {
  RetrainerStats s;
  if (impl_ == nullptr) return s;
  s.alerts_seen = impl_->alerts_seen.load(std::memory_order_relaxed);
  s.cycles_started = impl_->started.load(std::memory_order_relaxed);
  s.cycles_promoted = impl_->promoted.load(std::memory_order_relaxed);
  s.cycles_rolled_back = impl_->rolled_back.load(std::memory_order_relaxed);
  s.cycles_skipped = impl_->skipped.load(std::memory_order_relaxed);
  s.cycles_coalesced = impl_->coalesced.load(std::memory_order_relaxed);
  return s;
}

std::size_t Retrainer::reservoir_size(const std::string& model) const {
  if (impl_ == nullptr) return 0;
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->reservoirs.find(model);
  return it == impl_->reservoirs.end() ? 0 : it->second->size();
}

}  // namespace ahn::runtime
