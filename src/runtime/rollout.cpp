#include "runtime/rollout.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/log.hpp"

namespace ahn::runtime {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RolloutController::RolloutController(std::string model,
                                     std::uint64_t candidate_version,
                                     RolloutOptions opts)
    : model_(std::move(model)),
      candidate_version_(candidate_version),
      opts_(std::move(opts)) {
  stage_started_ = now_locked();
}

double RolloutController::now_locked() const {
  return opts_.clock ? opts_.clock() : steady_seconds();
}

void RolloutController::transition_locked(RolloutState to, std::string reason) {
  if (state_ == to) return;
  AHN_INFO_C("rollout", model_ << " v" << candidate_version_ << " "
                               << rollout_state_name(state_) << " -> "
                               << rollout_state_name(to)
                               << (reason.empty() ? "" : ": ") << reason);
  state_ = to;
  if (!reason.empty()) reason_ = std::move(reason);
  stage_started_ = now_locked();
}

RolloutState RolloutController::record_shadow(bool active_ok, bool candidate_ok) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (state_ != RolloutState::kShadow) return state_;
  ++shadow_rows_;
  if (!active_ok) ++shadow_active_miss_;
  if (!candidate_ok) ++shadow_candidate_miss_;
  if (shadow_rows_ < std::max<std::size_t>(1, opts_.shadow_rows)) return state_;

  const double n = static_cast<double>(shadow_rows_);
  const double active_rate = static_cast<double>(shadow_active_miss_) / n;
  const double cand_rate = static_cast<double>(shadow_candidate_miss_) / n;
  if (cand_rate <= active_rate + opts_.shadow_margin) {
    transition_locked(RolloutState::kCanary, "");
  } else {
    std::ostringstream why;
    why << "shadow QoI regression: candidate miss rate " << cand_rate
        << " vs active " << active_rate << " + margin " << opts_.shadow_margin;
    transition_locked(RolloutState::kFailed, why.str());
  }
  return state_;
}

bool RolloutController::admit_canary() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (state_ != RolloutState::kCanary) return false;
  canary_acc_ += std::clamp(opts_.canary_fraction, 0.0, 1.0);
  if (canary_acc_ < 1.0) return false;
  canary_acc_ -= 1.0;
  return true;
}

RolloutState RolloutController::record_canary(bool candidate_ok) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (state_ != RolloutState::kCanary) return state_;
  ++canary_rows_;
  if (!candidate_ok) ++canary_miss_;

  if (canary_rows_ >= opts_.canary_min_samples) {
    const double rate =
        static_cast<double>(canary_miss_) / static_cast<double>(canary_rows_);
    if (rate > opts_.canary_max_miss) {
      std::ostringstream why;
      why << "canary QoI miss rate " << rate << " > " << opts_.canary_max_miss
          << " after " << canary_rows_ << " rows";
      transition_locked(RolloutState::kFailed, why.str());
      return state_;
    }
  }
  if (canary_rows_ >= std::max<std::size_t>(1, opts_.canary_rows)) {
    transition_locked(RolloutState::kPassed, "");
  }
  return state_;
}

void RolloutController::note_breaker_trip() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (state_ == RolloutState::kShadow || state_ == RolloutState::kCanary) {
    transition_locked(RolloutState::kFailed,
                      "QoI circuit breaker tripped mid-rollout");
  }
}

RolloutState RolloutController::poll() {
  const std::lock_guard<std::mutex> lock(mu_);
  if ((state_ == RolloutState::kShadow || state_ == RolloutState::kCanary) &&
      opts_.stage_timeout_seconds > 0.0 &&
      now_locked() - stage_started_ > opts_.stage_timeout_seconds) {
    std::ostringstream why;
    why << rollout_state_name(state_) << " stage exceeded its "
        << opts_.stage_timeout_seconds << "s budget";
    transition_locked(RolloutState::kFailed, why.str());
  }
  return state_;
}

void RolloutController::mark_promoted() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!rollout_terminal(state_)) transition_locked(RolloutState::kPromoted, "");
}

void RolloutController::mark_rolled_back(std::string reason) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!rollout_terminal(state_)) {
    transition_locked(RolloutState::kRolledBack, std::move(reason));
  }
}

RolloutState RolloutController::state() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

RolloutSnapshot RolloutController::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  RolloutSnapshot s;
  s.model = model_;
  s.state = state_;
  s.candidate_version = candidate_version_;
  s.shadow_rows = shadow_rows_;
  s.shadow_active_miss = shadow_active_miss_;
  s.shadow_candidate_miss = shadow_candidate_miss_;
  s.canary_rows = canary_rows_;
  s.canary_miss = canary_miss_;
  s.reason = reason_;
  return s;
}

}  // namespace ahn::runtime
