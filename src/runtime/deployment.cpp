#include "runtime/deployment.hpp"

#include "common/error.hpp"

namespace ahn::runtime {

DeploymentPackage DeploymentPackage::build(std::string name,
                                           std::shared_ptr<const ServableModel> model,
                                           const Tensor& training_inputs) {
  AHN_CHECK(model != nullptr);
  AHN_CHECK_MSG(training_inputs.rank() == 2 && training_inputs.rows() > 0,
                "reference sketch needs a non-empty N x F training matrix");
  auto sketch = std::make_shared<obs::FeatureSketch>(training_inputs.cols());
  for (std::size_t r = 0; r < training_inputs.rows(); ++r) {
    sketch->observe(training_inputs.row(r));
  }
  DeploymentPackage pkg;
  pkg.name = std::move(name);
  pkg.model = std::move(model);
  pkg.reference = std::move(sketch);
  return pkg;
}

namespace {

/// Calibrate + quantize `model` in place on the pre-encode training rows.
std::size_t quantize_model(ServableModel& model, const Tensor& raw_inputs,
                           const nn::QuantizationOptions& opts) {
  // The surrogate consumes post-encoder rows; calibrate on exactly those.
  const Tensor calib = model.encode ? model.encode(raw_inputs) : raw_inputs;
  const std::size_t n = nn::quantize_surrogate(model.surrogate, calib, opts);
  model.infer_ops = model.surrogate.net.inference_cost(1);
  return n;
}

}  // namespace

DeploymentPackage DeploymentPackage::build(std::string name, ServableModel model,
                                           const Tensor& training_inputs,
                                           const QuantizeSpec& spec) {
  if (spec.enabled) quantize_model(model, training_inputs, spec.options);
  return build(std::move(name),
               std::make_shared<const ServableModel>(std::move(model)), training_inputs);
}

ServableModel quantized_servable(const ServableModel& base, const Tensor& raw_inputs,
                                 const nn::QuantizationOptions& opts) {
  ServableModel copy = base;  // deep copy: Network assignment clones layers
  quantize_model(copy, raw_inputs, opts);
  return copy;
}

DeployedSurrogate::DeployedSurrogate(
    std::shared_ptr<const autoencoder::Autoencoder> encoder,
    nn::TrainedSurrogate surrogate, DeviceModel device)
    : encoder_(std::move(encoder)), surrogate_(std::move(surrogate)), device_(device) {
  if (encoder_ != nullptr) encode_ops_ = encoder_->encode_cost(1);
  infer_ops_ = surrogate_.net.inference_cost(1);
}

InferenceTiming DeployedSurrogate::timing_for(std::size_t input_bytes,
                                              std::size_t output_count) const {
  InferenceTiming t;
  t.fetch_seconds = device_.transfer_seconds(input_bytes);
  if (encoder_ != nullptr) {
    t.encode_seconds = device_.kernel_seconds(encode_ops_, nn_inference_profile());
  }
  t.load_seconds = device_.spec().model_load_latency;
  const WorkloadProfile run_profile = surrogate_.net.precision() == nn::Precision::kInt8
                                          ? nn_int8_inference_profile()
                                          : nn_inference_profile();
  t.run_seconds = device_.kernel_seconds(infer_ops_, run_profile) +
                  device_.transfer_seconds(sizeof(double) * output_count);
  return t;
}

InferenceResult DeployedSurrogate::infer(std::span<const double> features) const {
  Tensor x({1, features.size()});
  std::copy(features.begin(), features.end(), x.row(0).begin());

  Tensor reduced = encoder_ != nullptr ? encoder_->encode(x) : std::move(x);
  const Tensor pred = surrogate_.predict(reduced);

  InferenceResult res;
  res.outputs.assign(pred.row(0).begin(), pred.row(0).end());
  res.timing = timing_for(sizeof(double) * features.size(), res.outputs.size());
  return res;
}

InferenceResult DeployedSurrogate::infer_sparse(const sparse::Csr& batch,
                                                std::size_t row) const {
  AHN_CHECK(row < batch.rows());
  // Slice the single CSR row out of the batch.
  sparse::Coo coo;
  coo.rows = 1;
  coo.cols = batch.cols();
  const auto& rp = batch.row_ptr();
  const auto& ci = batch.col_idx();
  const auto& v = batch.values();
  for (std::size_t k = rp[row]; k < rp[row + 1]; ++k) coo.push(0, ci[k], v[k]);
  const sparse::Csr x = sparse::Csr::from_coo(std::move(coo));

  Tensor reduced;
  if (encoder_ != nullptr) {
    reduced = encoder_->encode_sparse(x);
  } else {
    reduced = x.to_dense();
  }
  const Tensor pred = surrogate_.predict(reduced);

  InferenceResult res;
  res.outputs.assign(pred.row(0).begin(), pred.row(0).end());
  // The sparse path only ships the compressed bytes to the device — the
  // temporal/spatial saving §4.2 claims for the embedding-style first layer.
  res.timing = timing_for(x.bytes(), res.outputs.size());
  return res;
}

double DeployedSurrogate::modeled_seconds(std::size_t feature_bytes) const {
  return timing_for(feature_bytes, /*output_count=*/1).total();
}

}  // namespace ahn::runtime
