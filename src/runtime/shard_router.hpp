#pragma once
// Consistent-hash request routing for the multi-shard serving layer
// (docs/SHARDING.md). Two pieces:
//
//  * ConsistentHashRing — classic virtual-node consistent hashing: every
//    shard owns `vnodes` pseudo-random points on a 64-bit ring (ring_hash of
//    "shard-<id>#<vnode>"), and a key is owned by the first shard point at
//    or clockwise of the key's hash. Adding or removing one shard therefore
//    migrates only ~1/N of the key space (the slices adjacent to the
//    added/removed points) — keys that move on an add all move TO the new
//    shard, and keys not owned by a removed shard keep their owner exactly.
//    The ring also enumerates replica owners: the next r *distinct* shards
//    clockwise, which is what gives every key a stable replica set.
//
//  * ShardRouter — the ring plus per-shard liveness: `route` resolves a key
//    to its first *alive* owner (primary first, then replicas in ring
//    order), which is the failover rule the ClusterOrchestrator builds on.
//    Liveness flips are O(1) and do not touch the ring, so a dead shard's
//    keys fail over without migrating anyone else's.
//
// The hash is explicit (FNV-1a + a fixed avalanche finalizer, not
// std::hash) so placement is identical across builds, platforms, and
// standard libraries — a key's owner is part of the documented contract,
// and the stability tests pin it.

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ahn::runtime {

/// 64-bit FNV-1a. Exposed for tests and for callers that want to pre-shard
/// keys themselves.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& key) noexcept;

/// The ring's placement hash: FNV-1a pushed through a murmur3-style 64-bit
/// avalanche finalizer. Plain FNV-1a barely mixes the last byte into the
/// high bits, so sequential keys ("key/17", "key/18", ...) land within a
/// ~2^40 band and pile onto one ring slice; the finalizer restores uniform
/// spread while keeping placement a fixed cross-build contract.
[[nodiscard]] std::uint64_t ring_hash(const std::string& key) noexcept;

/// Virtual-node consistent-hash ring over shard ids [0, N). Not internally
/// synchronized: ShardRouter (and tests) mutate it only at topology changes,
/// under their own lock.
class ConsistentHashRing {
 public:
  static constexpr std::size_t kDefaultVnodes = 64;

  explicit ConsistentHashRing(std::size_t shards = 0,
                              std::size_t vnodes = kDefaultVnodes);

  /// Adds shard `id`'s vnodes to the ring (no-op if already present).
  void add_shard(std::size_t id);
  /// Removes shard `id`'s vnodes (no-op if absent).
  void remove_shard(std::size_t id);
  [[nodiscard]] bool contains(std::size_t id) const;

  /// The shard owning `key`. Ring must be non-empty.
  [[nodiscard]] std::size_t owner(const std::string& key) const;

  /// The first min(replicas, shard_count) distinct shards clockwise from
  /// `key`'s point: owners[0] is the primary, the rest are the replica set
  /// in failover order.
  [[nodiscard]] std::vector<std::size_t> owners(const std::string& key,
                                                std::size_t replicas) const;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t vnodes_per_shard() const noexcept { return vnodes_; }
  [[nodiscard]] const std::vector<std::size_t>& shards() const noexcept {
    return shards_;
  }

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t shard;
  };

  /// Index into points_ of the first point at or clockwise of `h`.
  [[nodiscard]] std::size_t first_point_at(std::uint64_t h) const;

  std::size_t vnodes_;
  std::vector<std::size_t> shards_;  ///< member shard ids, sorted
  std::vector<Point> points_;        ///< sorted by hash (ties: by shard)
};

/// The ring plus per-shard liveness and failover resolution. Thread-safe:
/// route/owners take a shared lock, liveness flips and topology changes take
/// an exclusive one — routing never blocks routing.
class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shards, std::size_t replicas = 2,
                       std::size_t vnodes = ConsistentHashRing::kDefaultVnodes);

  /// Primary owner of `key`, alive or not (the placement, not the route).
  [[nodiscard]] std::size_t primary(const std::string& key) const;

  /// The replica set of `key` (primary first), alive or not.
  [[nodiscard]] std::vector<std::size_t> owners(const std::string& key) const;

  /// First *alive* shard in `key`'s replica set; nullopt-like sentinel
  /// kNoShard when the whole replica set is dead.
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t route(const std::string& key) const;

  /// Alive owners of `key` in failover order (possibly empty).
  [[nodiscard]] std::vector<std::size_t> alive_owners(const std::string& key) const;

  void set_alive(std::size_t shard, bool alive);
  [[nodiscard]] bool alive(std::size_t shard) const;
  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] std::size_t shard_count() const;
  [[nodiscard]] std::size_t replicas() const noexcept { return replicas_; }

 private:
  const std::size_t replicas_;
  mutable std::shared_mutex mu_;
  ConsistentHashRing ring_;
  std::vector<bool> alive_;
};

}  // namespace ahn::runtime
