#include "runtime/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "obs/exposition.hpp"
#include "runtime/circuit_breaker.hpp"

namespace ahn::runtime {

namespace {

/// An already-resolved batched-request future (routing rejections and
/// re-wrapped immediate results never enter a queue).
std::future<Result<Tensor>> ready_result(Result<Tensor> r) {
  std::promise<Result<Tensor>> p;
  p.set_value(std::move(r));
  return p.get_future();
}

/// Head-sampling draw: true for every `every`'th call (0 = never).
bool sample_head(std::atomic<std::uint64_t>& ticker, std::size_t every) {
  return every > 0 &&
         ticker.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

/// Appends a shard="<id>" label to a metric name, composing with an
/// existing label block (`a{model="x"}` -> `a{model="x",shard="3"}`) so the
/// exposition layer groups per-shard series into one family.
std::string with_shard_label(const std::string& name, std::size_t shard) {
  const std::string label = "shard=\"" + std::to_string(shard) + "\"";
  if (!name.empty() && name.back() == '}') {
    return name.substr(0, name.size() - 1) + "," + label + "}";
  }
  return name + "{" + label + "}";
}

}  // namespace

ClusterOrchestrator::ClusterOrchestrator(ClusterOptions opts)
    : opts_(opts),
      router_(opts.shards, opts.replication, opts.vnodes),
      failovers_(cluster_metrics_.counter("cluster.failovers")),
      breaker_reroutes_(cluster_metrics_.counter("cluster.breaker_reroutes")),
      shard_failures_(cluster_metrics_.counter("cluster.shard_failures")),
      shards_alive_gauge_(cluster_metrics_.gauge("cluster.shards_alive")),
      shards_total_gauge_(cluster_metrics_.gauge("cluster.shards_total")),
      tracer_(opts.shard_opts.tracer != nullptr ? opts.shard_opts.tracer
                                                : &obs::Tracer::global()) {
  AHN_CHECK_MSG(opts_.shards >= 1, "cluster needs at least one shard");
  AHN_CHECK_MSG(opts_.replication >= 1, "replication factor must be >= 1");
  shards_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    shards_.push_back(
        std::make_shared<Orchestrator>(opts_.device, opts_.shard_opts));
    wire_shard(*shards_.back());
  }
  set_alive_gauges();
}

ClusterOrchestrator::~ClusterOrchestrator() = default;

std::shared_ptr<Orchestrator> ClusterOrchestrator::shard_ptr(std::size_t i) const {
  const std::shared_lock<std::shared_mutex> lock(shards_mu_);
  AHN_CHECK_MSG(i < shards_.size(), "no shard " << i);
  return shards_[i];
}

Orchestrator& ClusterOrchestrator::shard(std::size_t i) { return *shard_ptr(i); }

void ClusterOrchestrator::set_alive_gauges() {
  shards_alive_gauge_.set(static_cast<double>(router_.alive_count()));
  shards_total_gauge_.set(static_cast<double>(shards_.size()));
}

// --- replicated keyed tensor store -----------------------------------------

void ClusterOrchestrator::put_tensor(const std::string& key, Tensor value) {
  std::size_t wrote = 0;
  for (const std::size_t s : router_.owners(key)) {
    if (!router_.alive(s)) continue;
    shard_ptr(s)->put_tensor(key, value);  // copy per replica
    ++wrote;
  }
  AHN_CHECK_MSG(wrote > 0, "entire replica set for key '" << key << "' is down");
}

Tensor ClusterOrchestrator::get_tensor(const std::string& key) const {
  for (const std::size_t s : router_.owners(key)) {
    if (!router_.alive(s)) continue;
    const std::shared_ptr<Orchestrator> orc = shard_ptr(s);
    if (orc->has_tensor(key)) return orc->get_tensor(key);
  }
  throw Error("no alive replica holds tensor key '" + key + "'");
}

bool ClusterOrchestrator::has_tensor(const std::string& key) const {
  for (const std::size_t s : router_.owners(key)) {
    if (router_.alive(s) && shard_ptr(s)->has_tensor(key)) return true;
  }
  return false;
}

void ClusterOrchestrator::delete_tensor(const std::string& key) {
  for (const std::size_t s : router_.owners(key)) {
    if (router_.alive(s)) shard_ptr(s)->delete_tensor(key);
  }
}

// --- cluster health plane wiring ---------------------------------------------

void ClusterOrchestrator::wire_shard(Orchestrator& orc) {
  // `this` outlives every shard (the cluster owns them), so capturing it in
  // the forwarding callbacks is safe; cluster_alerts_ and the hook slots are
  // declared before shards_ for exactly this reason.
  orc.alerts().add_callback(
      [this](const obs::Alert& alert) { cluster_alerts_.raise(alert); });
  orc.set_sample_hook([this](const std::string& name, std::span<const double> row,
                             bool qoi_ok) {
    if (!hook_set_.load(std::memory_order_acquire)) return;
    SampleHook hook;
    {
      const std::lock_guard<std::mutex> lock(hook_mu_);
      hook = sample_hook_;
    }
    if (hook) hook(name, row, qoi_ok);
  });
}

void ClusterOrchestrator::set_sample_hook(SampleHook hook) {
  const std::lock_guard<std::mutex> lock(hook_mu_);
  sample_hook_ = std::move(hook);
  hook_set_.store(static_cast<bool>(sample_hook_), std::memory_order_release);
}

// --- replicated versioned model registry --------------------------------------

void ClusterOrchestrator::set_model(const std::string& name,
                                    std::shared_ptr<const ServableModel> model) {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  const std::uint64_t id = registry_.publish(name, model, nullptr, "set_model");
  registry_.promote(name, id);
  ++registry_version_;
  // Fan out to every shard, dead ones included: registry state is
  // replicated, so a drained shard's replacement still needs the version on
  // revive — and a drained Orchestrator accepts registry mutations.
  for (std::size_t i = 0; i < shard_count(); ++i) {
    const std::shared_ptr<Orchestrator> orc = shard_ptr(i);
    orc->install_version(name, model, nullptr, "replicated", id);
    orc->promote(name, id);
  }
}

void ClusterOrchestrator::deploy(const DeploymentPackage& pkg) {
  AHN_CHECK_MSG(pkg.model != nullptr, "deployment package has no model");
  const std::lock_guard<std::mutex> lock(registry_mu_);
  const std::uint64_t id =
      registry_.publish(pkg.name, pkg.model, pkg.reference, "deploy");
  registry_.promote(pkg.name, id);
  ++registry_version_;
  for (std::size_t i = 0; i < shard_count(); ++i) {
    const std::shared_ptr<Orchestrator> orc = shard_ptr(i);
    orc->install_version(pkg.name, pkg.model, pkg.reference, "deploy", id);
    orc->promote(pkg.name, id);
  }
}

bool ClusterOrchestrator::promote(const std::string& name, std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  if (!registry_.promote(name, id)) return false;
  ++registry_version_;
  for (std::size_t i = 0; i < shard_count(); ++i) {
    shard_ptr(i)->promote(name, id);
  }
  return true;
}

std::optional<std::uint64_t> ClusterOrchestrator::rollback(const std::string& name) {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  const std::optional<ModelVersion> restored = registry_.rollback(name);
  if (!restored.has_value()) return std::nullopt;
  ++registry_version_;
  // Shard promote() is idempotent and syncs every shard to the cluster's
  // choice regardless of each shard's own prior pointer.
  for (std::size_t i = 0; i < shard_count(); ++i) {
    shard_ptr(i)->promote(name, restored->id);
  }
  return restored->id;
}

std::uint64_t ClusterOrchestrator::registry_version() const {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  return registry_version_;
}

std::vector<std::string> ClusterOrchestrator::model_names() const {
  return registry_.names();
}

// --- coordinated rollouts (RolloutHost) ---------------------------------------

std::optional<ActiveModelInfo> ClusterOrchestrator::active_model(
    const std::string& name) const {
  const std::optional<ModelVersion> ver = registry_.active(name);
  if (!ver.has_value()) return std::nullopt;
  return ActiveModelInfo{ver->id, ver->model, ver->reference};
}

std::uint64_t ClusterOrchestrator::install_candidate(
    const std::string& name, std::shared_ptr<const ServableModel> model,
    std::shared_ptr<const obs::FeatureSketch> reference, std::string origin) {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  const std::uint64_t id = registry_.publish(name, model, reference, origin);
  ++registry_version_;
  for (std::size_t i = 0; i < shard_count(); ++i) {
    shard_ptr(i)->install_version(name, model, reference, origin, id);
  }
  return id;
}

Status ClusterOrchestrator::begin_rollout(const std::string& name,
                                          std::uint64_t candidate_version,
                                          RolloutOptions opts) {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  if (!registry_.version(name, candidate_version).has_value()) {
    return Status(StatusCode::kNotFound,
                  "no version " + std::to_string(candidate_version) +
                      " of model '" + name + "'");
  }
  if (const auto it = cluster_rollouts_.find(name);
      it != cluster_rollouts_.end() && !it->second.concluded) {
    return Status(StatusCode::kInvalidArgument,
                  "rollout already in flight for model '" + name + "'");
  }
  // This coordinator owns the verdict: shards report PASSED/FAILED and hold
  // there until conclude_rollout_locked fans the cluster decision back out.
  opts.auto_finalize = false;
  for (std::size_t i = 0; i < shard_count(); ++i) {
    const Status st = shard_ptr(i)->begin_rollout(name, candidate_version, opts);
    if (!st.is_ok()) {
      for (std::size_t j = 0; j < i; ++j) {
        shard_ptr(j)->finalize_rollout(name, false, "cluster begin_rollout aborted");
      }
      return st;
    }
  }
  ClusterRollout cr;
  cr.version = candidate_version;
  cr.opts = std::move(opts);
  cluster_rollouts_[name] = std::move(cr);
  return Status::ok();
}

void ClusterOrchestrator::conclude_rollout_locked(const std::string& name,
                                                  ClusterRollout& cr,
                                                  bool promote_candidate,
                                                  const std::string& reason) {
  // Every shard (dead ones included — their registries replicate) applies
  // the same verdict; each shard's rollback alert forwards into
  // cluster_alerts_ via wire_shard.
  for (std::size_t i = 0; i < shard_count(); ++i) {
    shard_ptr(i)->finalize_rollout(name, promote_candidate, reason);
  }
  if (promote_candidate) {
    registry_.promote(name, cr.version);
    ++registry_version_;
  }
  // On failure the cluster registry never promoted the candidate, so the
  // active version is already correct — nothing to undo.
  cr.concluded = true;
}

bool ClusterOrchestrator::rollout_in_flight(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = cluster_rollouts_.find(name);
  return it != cluster_rollouts_.end() && !it->second.concluded;
}

std::optional<RolloutSnapshot> ClusterOrchestrator::rollout_progress(
    const std::string& name) {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = cluster_rollouts_.find(name);
  if (it == cluster_rollouts_.end()) return std::nullopt;
  ClusterRollout& cr = it->second;
  if (cr.concluded) return cr.last;

  RolloutSnapshot merged;
  merged.model = name;
  merged.candidate_version = cr.version;

  bool any_failed = false;
  bool all_passed = true;
  std::size_t alive = 0;
  // Least-advanced stage across alive shards, for the merged in-flight view.
  RolloutState least = RolloutState::kPassed;
  std::string fail_reason;

  for (std::size_t i = 0; i < shard_count(); ++i) {
    if (!router_.alive(i)) continue;
    ++alive;
    // Each per-shard poll also drives that shard's stage-deadline check.
    const std::optional<RolloutSnapshot> snap =
        shard_ptr(i)->rollout_progress(name);
    if (!snap.has_value()) {
      all_passed = false;
      continue;
    }
    merged.shadow_rows += snap->shadow_rows;
    merged.shadow_active_miss += snap->shadow_active_miss;
    merged.shadow_candidate_miss += snap->shadow_candidate_miss;
    merged.canary_rows += snap->canary_rows;
    merged.canary_miss += snap->canary_miss;
    switch (snap->state) {
      case RolloutState::kFailed:
      case RolloutState::kRolledBack:
        any_failed = true;
        if (fail_reason.empty()) {
          fail_reason = "shard " + std::to_string(i) + ": " +
                        (snap->reason.empty() ? "failed" : snap->reason);
        }
        break;
      case RolloutState::kPassed:
      case RolloutState::kPromoted:
        break;
      default:
        all_passed = false;
        least = std::min(least, snap->state);
        break;
    }
  }

  if (any_failed) {
    conclude_rollout_locked(name, cr, /*promote_candidate=*/false, fail_reason);
    merged.state = RolloutState::kRolledBack;
    merged.reason = fail_reason;
    cr.last = std::move(merged);
    return cr.last;
  }
  if (alive > 0 && all_passed) {
    conclude_rollout_locked(name, cr, /*promote_candidate=*/true, "");
    merged.state = RolloutState::kPromoted;
    cr.last = std::move(merged);
    return cr.last;
  }
  merged.state = alive == 0 ? RolloutState::kShadow : least;
  return merged;
}

// --- serving ------------------------------------------------------------------

Status ClusterOrchestrator::run_model(const std::string& name,
                                      const std::string& in_key,
                                      const std::string& out_key,
                                      PhaseAccumulator* phases) {
  // Cluster head sampling: every Nth request opens the root span of a new
  // trace (a caller already inside a trace always joins it); the shard's
  // own serve.* spans then nest under it on this thread.
  std::optional<obs::Span> root;
  if (obs::Tracer::current().trace_id != 0 ||
      sample_head(trace_ticker_, opts_.shard_opts.trace_sample_every)) {
    root.emplace(*tracer_, "cluster.run_model");
  }
  const std::vector<std::size_t> owners = router_.owners(in_key);
  bool primary_seen = false;
  Status last(StatusCode::kTransientFailure,
              "entire replica set for key '" + in_key + "' is down");
  for (const std::size_t s : owners) {
    if (!router_.alive(s)) continue;
    if (!primary_seen && s != owners.front()) failovers_.increment();
    primary_seen = true;
    const std::shared_ptr<Orchestrator> orc = shard_ptr(s);
    const Status st = orc->run_model(name, in_key, out_key, phases);
    if (st.is_ok()) {
      // Re-home the result to out_key's replica set; the executing shard
      // keeps its local copy only if it happens to be an owner.
      Tensor out = orc->get_tensor(out_key);
      put_tensor(out_key, std::move(out));
      const std::vector<std::size_t> out_owners = router_.owners(out_key);
      if (std::find(out_owners.begin(), out_owners.end(), s) == out_owners.end()) {
        orc->delete_tensor(out_key);
      }
      return st;
    }
    if (st.code() == StatusCode::kNotFound ||
        st.code() == StatusCode::kShuttingDown) {
      // This replica misses the key (it was dead for the put) or is going
      // down — the next owner can still serve the request.
      failovers_.increment();
      if (const obs::SpanContext ctx = obs::Tracer::current(); ctx.trace_id != 0) {
        tracer_->record_span("cluster.failover", ctx, tracer_->now_seconds(), 0.0);
      }
      last = st;
      continue;
    }
    return st;  // a real serving failure, not a placement problem
  }
  return last;
}

std::vector<std::size_t> ClusterOrchestrator::prefer_closed_breakers(
    std::vector<std::size_t> candidates, const std::string& name) {
  if (!opts_.shard_opts.enable_breaker || candidates.size() < 2) return candidates;
  const auto breaker_open = [&](std::size_t s) {
    return shard_ptr(s)->breaker(name).state() == BreakerState::kOpen;
  };
  // Only pay the per-shard breaker lookup when the head of the line is
  // open — the common (healthy) case stays one lookup.
  if (!breaker_open(candidates.front())) return candidates;
  const auto first_closed =
      std::stable_partition(candidates.begin(), candidates.end(),
                            [&](std::size_t s) { return !breaker_open(s); });
  if (first_closed != candidates.begin()) breaker_reroutes_.increment();
  return candidates;
}

std::future<Result<Tensor>> ClusterOrchestrator::submit_failover(
    const std::vector<std::size_t>& candidates, const std::string& name,
    const Tensor& row, const RequestOptions& request) {
  // Routing happens inside a "cluster.route" child span when the request is
  // traced: the shard-side serve.run_model_batched span (same thread) nests
  // under it, carrying the trace id into the shard's batching queue.
  std::optional<obs::Span> route;
  if (obs::Tracer::current().trace_id != 0) {
    route.emplace(*tracer_, "cluster.route");
  }
  for (const std::size_t s : candidates) {
    std::future<Result<Tensor>> fut =
        shard_ptr(s)->run_model_batched(name, row, request);
    if (fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      return fut;  // accepted: the shard's reliability layer owns it now
    }
    // Immediately-ready futures are either a breaker-fallback result (OK —
    // hand it back) or an admission rejection worth failing over.
    Result<Tensor> r = fut.get();
    if (r.is_ok() || r.code() != StatusCode::kShuttingDown) {
      return ready_result(std::move(r));
    }
    // The kill race: the shard started draining between routing and submit.
    // Mark it dead so the router stops offering it, and resubmit.
    failovers_.increment();
    if (const obs::SpanContext ctx = obs::Tracer::current(); ctx.trace_id != 0) {
      tracer_->record_span("cluster.failover", ctx, tracer_->now_seconds(), 0.0);
    }
    router_.set_alive(s, false);
    set_alive_gauges();
  }
  return ready_result(Status(StatusCode::kTransientFailure,
                             "no alive shard accepted the request"));
}

std::future<Result<Tensor>> ClusterOrchestrator::run_model_batched(
    const std::string& name, Tensor row, RequestOptions request) {
  std::optional<obs::Span> root;
  if (obs::Tracer::current().trace_id != 0 ||
      sample_head(trace_ticker_, opts_.shard_opts.trace_sample_every)) {
    root.emplace(*tracer_, "cluster.run_model_batched");
  }
  // Round-robin over the alive shards: maximum spread, no key affinity.
  std::vector<std::size_t> alive;
  alive.reserve(shard_count());
  for (std::size_t i = 0; i < shard_count(); ++i) {
    if (router_.alive(i)) alive.push_back(i);
  }
  if (alive.empty()) {
    return ready_result(
        Status(StatusCode::kTransientFailure, "no alive shards in the cluster"));
  }
  const std::size_t start =
      rr_.fetch_add(1, std::memory_order_relaxed) % alive.size();
  std::rotate(alive.begin(), alive.begin() + static_cast<std::ptrdiff_t>(start),
              alive.end());
  return submit_failover(prefer_closed_breakers(std::move(alive), name), name, row,
                         request);
}

std::future<Result<Tensor>> ClusterOrchestrator::run_model_batched(
    const std::string& name, Tensor row, const std::string& routing_key,
    RequestOptions request) {
  std::optional<obs::Span> root;
  if (obs::Tracer::current().trace_id != 0 ||
      sample_head(trace_ticker_, opts_.shard_opts.trace_sample_every)) {
    root.emplace(*tracer_, "cluster.run_model_batched");
  }
  const std::vector<std::size_t> owners = router_.owners(routing_key);
  std::vector<std::size_t> alive;
  alive.reserve(owners.size());
  for (const std::size_t s : owners) {
    if (router_.alive(s)) alive.push_back(s);
  }
  if (alive.empty()) {
    return ready_result(
        Status(StatusCode::kTransientFailure,
               "entire replica set for key '" + routing_key + "' is down"));
  }
  if (alive.front() != owners.front()) failovers_.increment();
  return submit_failover(prefer_closed_breakers(std::move(alive), name), name, row,
                         request);
}

void ClusterOrchestrator::flush_batches() {
  for (std::size_t i = 0; i < shard_count(); ++i) {
    if (router_.alive(i)) shard_ptr(i)->flush_batches();
  }
}

// --- failure handling ---------------------------------------------------------

void ClusterOrchestrator::fail_shard(std::size_t i) {
  if (!router_.alive(i)) return;
  // Order matters for the zero-loss contract: stop routing first, then
  // drain — everything the shard accepted before (or during) the flip still
  // resolves, and the submit/kill race is absorbed by submit_failover.
  router_.set_alive(i, false);
  shard_failures_.increment();
  set_alive_gauges();
  shard_ptr(i)->drain();
}

void ClusterOrchestrator::revive_shard(std::size_t i) {
  if (router_.alive(i)) return;
  auto fresh = std::make_shared<Orchestrator>(opts_.device, opts_.shard_opts);
  {
    // registry_mu_ before shards_mu_ — the same order as the deploy fan-out.
    const std::lock_guard<std::mutex> registry_lock(registry_mu_);
    // Replay every retained version with the cluster's ids, then promote the
    // cluster's active version — the revived shard reconciles to exactly the
    // registry_version_ epoch it missed, rollback targets included.
    for (const std::string& name : registry_.names()) {
      for (const ModelVersion& v : registry_.versions(name)) {
        fresh->install_version(name, v.model, v.reference, v.origin, v.id);
      }
      if (const std::uint64_t active_id = registry_.active_id(name);
          active_id != 0) {
        fresh->promote(name, active_id);
      }
    }
    // A rollout still in flight resumes on the revived shard (its shadow /
    // canary counts restart from zero; the merge sums across shards).
    for (const auto& [name, cr] : cluster_rollouts_) {
      if (cr.concluded) continue;
      const Status st = fresh->begin_rollout(name, cr.version, cr.opts);
      AHN_CHECK_MSG(st.is_ok(), "revive could not resume rollout for '"
                                    << name << "': " << st.message());
    }
    wire_shard(*fresh);
    const std::unique_lock<std::shared_mutex> shards_lock(shards_mu_);
    shards_[i] = std::move(fresh);
  }
  router_.set_alive(i, true);
  set_alive_gauges();
}

// --- aggregate health ----------------------------------------------------------

double ClusterOrchestrator::device_seconds(std::size_t i) {
  const obs::RegistrySnapshot snap = shard_ptr(i)->stats().metrics().snapshot();
  const auto it = snap.histograms.find("serving.latency.total");
  return it == snap.histograms.end() ? 0.0 : it->second.sum;
}

std::uint64_t ClusterOrchestrator::failovers() const { return failovers_.value(); }

std::uint64_t ClusterOrchestrator::breaker_reroutes() const {
  return breaker_reroutes_.value();
}

ClusterHealth ClusterOrchestrator::cluster_health() {
  ClusterHealth h;
  h.shards_total = shard_count();
  h.shards_alive = router_.alive_count();
  h.failovers = failovers_.value();
  h.breaker_reroutes = breaker_reroutes_.value();
  h.registry_version = registry_version();
  h.uptime_seconds = uptime_.seconds();

  const std::vector<std::string> names = model_names();
  obs::HistogramSnapshot cluster_latency;
  double max_device_seconds = 0.0;
  double max_slo_burn = 0.0;   // worst burn rate across shards/specs/windows
  double slo_burning = 0.0;    // 1 when any shard's alert condition holds

  for (std::size_t i = 0; i < shard_count(); ++i) {
    const std::shared_ptr<Orchestrator> orc = shard_ptr(i);
    // Scrape-driven SLO evaluation: burns decay to "now" and alert edges
    // fire/clear even when the shard's inline eval cadence hasn't hit.
    orc->slo_engine().evaluate();
    const obs::RegistrySnapshot snap = orc->stats().metrics().snapshot();

    ShardHealth sh;
    sh.shard = i;
    sh.alive = router_.alive(i);
    if (const auto it = snap.counters.find("serving.requests_served");
        it != snap.counters.end()) {
      sh.requests_served = it->second;
    }
    if (const auto it = snap.histograms.find("serving.latency.total");
        it != snap.histograms.end()) {
      sh.device_seconds = it->second.sum;
      sh.latency_p50 = it->second.percentile(50.0);
      sh.latency_p95 = it->second.percentile(95.0);
      sh.latency_p99 = it->second.percentile(99.0);
      cluster_latency.merge(it->second);
    }
    for (const std::string& name : names) {
      sh.breaker_states[name] = breaker_state_name(orc->breaker(name).state());
    }
    max_device_seconds = std::max(max_device_seconds, sh.device_seconds);
    h.requests_served += sh.requests_served;

    // Shard-labeled copy of every per-shard instrument: same-named metrics
    // from different shards become one family with a shard label, so the
    // merged snapshot is collision-free and exposition-ready.
    for (const auto& [k, v] : snap.counters) {
      h.merged.counters[with_shard_label(k, i)] = v;
    }
    for (const auto& [k, v] : snap.gauges) {
      // A shard's SLO gauges roll up pessimistically: the cluster burns as
      // hard as its worst shard.
      if (k.rfind("slo.burn_rate", 0) == 0) max_slo_burn = std::max(max_slo_burn, v);
      if (k.rfind("slo.burning", 0) == 0) slo_burning = std::max(slo_burning, v);
      h.merged.gauges[with_shard_label(k, i)] = v;
    }
    for (const auto& [k, v] : snap.histograms) {
      h.merged.histograms[with_shard_label(k, i)] = v;
    }
    h.shards.push_back(std::move(sh));
  }

  h.latency_p50 = cluster_latency.percentile(50.0);
  h.latency_p95 = cluster_latency.percentile(95.0);
  h.latency_p99 = cluster_latency.percentile(99.0);
  h.avg_rps = h.uptime_seconds > 0.0
                  ? static_cast<double>(h.requests_served) / h.uptime_seconds
                  : 0.0;
  h.modeled_rps = max_device_seconds > 0.0
                      ? static_cast<double>(h.requests_served) / max_device_seconds
                      : 0.0;

  // Worst drift per model across shards (each shard sketches only the live
  // rows it served, so the cluster view is the most pessimistic shard).
  for (const std::string& name : names) {
    double worst = 0.0;
    for (std::size_t i = 0; i < shard_count(); ++i) {
      const obs::ModelHealth mh = shard_ptr(i)->model_health(name);
      worst = std::max(worst, mh.drift_score);
    }
    h.merged.gauges["cluster.drift_score{model=\"" + name + "\"}"] = worst;
    h.merged.gauges["cluster.model_version{model=\"" + name + "\"}"] =
        static_cast<double>(registry_.active_id(name));
    if (worst > h.max_drift_score) {
      h.max_drift_score = worst;
      h.max_drift_model = name;
    }
  }

  // Cluster-level instruments and computed aggregates.
  h.merged.merge(cluster_metrics_.snapshot());
  h.merged.counters["cluster.requests_served"] = h.requests_served;
  h.merged.histograms["cluster.latency.total"] = cluster_latency;
  h.merged.gauges["cluster.modeled_rps"] = h.modeled_rps;
  h.merged.gauges["cluster.max_drift_score"] = h.max_drift_score;
  h.merged.gauges["cluster.registry_version"] =
      static_cast<double>(h.registry_version);
  h.merged.gauges["cluster.slo_burn_rate"] = max_slo_burn;
  h.merged.gauges["cluster.slo_burning"] = slo_burning;
  return h;
}

void ClusterOrchestrator::drain() {
  for (std::size_t i = 0; i < shard_count(); ++i) shard_ptr(i)->drain();
}

// --- exposition ---------------------------------------------------------------

obs::HttpServer& ClusterOrchestrator::serve_exposition(std::uint16_t port) {
  const std::lock_guard<std::mutex> lock(http_mu_);
  if (http_ != nullptr && http_->running()) return *http_;
  obs::HttpServer::Options hopts;
  hopts.port = port;
  auto server = std::make_unique<obs::HttpServer>(hopts);

  // Handlers run on the server's connection threads; everything they read
  // (shards, tracer, cluster metrics) is thread-safe and outlives the
  // server (it is declared last, so destroyed/drained first).
  server->add_route("/metrics", [this](const obs::HttpRequest&,
                                       obs::HttpResponse& res) {
    ClusterHealth h = cluster_health();
    {
      const std::lock_guard<std::mutex> http_lock(http_mu_);
      if (http_ != nullptr) {
        h.merged.counters["http.requests_served"] = http_->requests_served();
      }
    }
    obs::PrometheusOptions popts;
    popts.exemplars = true;
    popts.openmetrics_eof = true;
    res.content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8";
    res.body = obs::export_prometheus_string(h.merged, popts);
  });

  server->add_route("/healthz", [this](const obs::HttpRequest&,
                                       obs::HttpResponse& res) {
    const std::size_t total = shard_count();
    const std::size_t alive = router_.alive_count();
    std::ostringstream os;
    os << "{\"status\": \"" << (alive > 0 ? "ok" : "unavailable")
       << "\", \"shards_alive\": " << alive << ", \"shards_total\": " << total
       << ", \"shards\": [";
    for (std::size_t i = 0; i < total; ++i) {
      if (i > 0) os << ", ";
      os << "{\"shard\": " << i << ", \"alive\": "
         << (router_.alive(i) ? "true" : "false") << "}";
    }
    os << "]}\n";
    res.status = alive > 0 ? 200 : 503;
    res.content_type = "application/json";
    res.body = os.str();
  });

  server->add_route("/slo", [this](const obs::HttpRequest&,
                                   obs::HttpResponse& res) {
    std::ostringstream os;
    os << "{\"shards\": [";
    for (std::size_t i = 0; i < shard_count(); ++i) {
      if (i > 0) os << ", ";
      obs::SloEngine& eng = shard_ptr(i)->slo_engine();
      eng.evaluate();
      os << "{\"shard\": " << i << ", \"alive\": "
         << (router_.alive(i) ? "true" : "false") << ", \"slos\": "
         << eng.status_json() << "}";
    }
    os << "]}\n";
    res.content_type = "application/json";
    res.body = os.str();
  });

  server->add_route("/tracez", [this](const obs::HttpRequest&,
                                      obs::HttpResponse& res) {
    res.content_type = "application/json";
    res.body = obs::export_chrome_trace_string(tracer_->snapshot());
  });

  AHN_CHECK_MSG(server->start(), "exposition server failed to bind port "
                                     << port);
  http_ = std::move(server);
  return *http_;
}

}  // namespace ahn::runtime
