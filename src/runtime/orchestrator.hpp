#pragma once
// In-memory inference orchestration — the reproduction of the paper's §6.3
// deployment path (SmartSim Orchestrator + RedisAI middleware): a keyed
// tensor store shared between the HPC application and the NN runtime, a
// model registry, and a lightweight client (Listing 1's API: put_tensor /
// run_model / unpack_tensor) compiled into the application.
//
// Concurrency model (docs/SERVING.md has the full contract):
//  * the tensor store is mutex-striped (ShardedTensorStore) — puts/gets on
//    different keys from many client threads do not serialize;
//  * the model registry is read-mostly (shared_mutex: concurrent lookups,
//    exclusive registration);
//  * run_model_async dispatches inference to a lazily-created thread pool;
//  * run_model_batched coalesces single-row requests per model into one
//    batched forward (BatchingQueue), amortizing the fetch/encode/load
//    phases of the §7.3 cost breakdown across the batch;
//  * every served request is tallied in a ServingStats collector.
//
// Reliability model (docs/RELIABILITY.md has the full contract):
//  * run_model* report failures as typed Status / Result values — unknown
//    model, missing input, expired deadline, exhausted retries, shutdown —
//    instead of raw ahn::Error exceptions;
//  * transient faults are retried with exponential backoff + jitter
//    (RetryPolicy) before surfacing kTransientFailure;
//  * batched requests may carry a deadline (RequestOptions); expired
//    requests resolve kDeadlineExceeded and are never coalesced;
//  * a per-model QoI circuit breaker turns the §7.1 per-request fallback
//    into systemic degradation: a high fallback rate routes traffic
//    straight to the original-code path for a cool-down, then half-open
//    probes restore surrogate serving;
//  * drain() flushes partial batches and rejects new work with
//    kShuttingDown — every accepted request resolves, never a broken
//    promise;
//  * an optional FaultInjector makes all of the above testable.

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/serving_stats.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"
#include "nn/train.hpp"
#include "obs/monitor.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "runtime/batching_queue.hpp"
#include "runtime/circuit_breaker.hpp"
#include "runtime/device.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/model_registry.hpp"
#include "runtime/rollout.hpp"
#include "runtime/sharded_store.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace ahn::runtime {

struct DeploymentPackage;  // runtime/deployment.hpp

/// A servable model: an optional feature-reduction encoder in front of the
/// trained surrogate (both execute "on device" via the device model), plus
/// the optional §7.1 quality contract. All callables must be
/// stateless/thread-safe: batched and concurrent paths invoke them from
/// multiple threads.
struct ServableModel {
  std::function<Tensor(const Tensor&)> encode;  ///< may be empty (no reduction)
  OpCounts encode_ops;                           ///< per-row encode cost
  nn::TrainedSurrogate surrogate;
  OpCounts infer_ops;                            ///< per-row inference cost

  /// §7.1 quality check for one served row (inputs: the 1 x F request row
  /// and the 1 x O surrogate output). Empty = accept everything except
  /// non-finite outputs (NaN/Inf always count as a QoI miss).
  std::function<bool(const Tensor& row_in, const Tensor& row_out)> qoi_check;

  /// The original-code path for one request row: returns the 1 x O exact
  /// result. When set, QoI misses fall back to it transparently and the
  /// circuit breaker may route entire cool-down windows through it. When
  /// empty, a QoI miss surfaces as kQoIRejected.
  std::function<Tensor(const Tensor& row_in)> fallback;
};

/// Exponential backoff + jitter for retrying kTransientFailure faults.
struct RetryPolicy {
  std::size_t max_attempts = 3;           ///< total tries (1 = no retry)
  double initial_backoff_seconds = 50e-6; ///< sleep before the first retry
  double backoff_multiplier = 2.0;        ///< growth per retry
  double jitter_fraction = 0.25;          ///< sleep in [b(1-j), b(1+j)]
};

/// Serving-side tuning knobs (defaults suit tests and small deployments).
struct OrchestratorOptions {
  std::size_t store_shards = ShardedTensorStore::kDefaultShards;
  std::size_t pool_threads = 4;        ///< run_model_async executor width
  std::size_t max_batch = 32;          ///< micro-batch coalescing bound
  double batch_delay_seconds = 200e-6; ///< straggler flush period (<=0: off)
  /// When true, each executed batch occupies the caller for its modeled
  /// device time (busy-wait on the §7.3 fetch+encode+load+run total). This
  /// makes wall-clock serving measurements honor the analytic accelerator
  /// model — the testbed has no real device — and is what the
  /// serving-throughput bench turns on. Off by default: the pipeline and
  /// tests want modeled time accounted, not elapsed.
  bool simulate_device_occupancy = false;

  RetryPolicy retry;                   ///< transient-fault retry budget
  CircuitBreakerOptions breaker;       ///< per-model QoI breaker tuning
  bool enable_breaker = true;          ///< engages for models with a fallback

  /// Model-health monitoring knobs (docs/OBSERVABILITY.md): input-drift
  /// detection against the deployed reference sketch, QoI trend alerting,
  /// sampling rate. monitor.enabled = false turns the whole layer off.
  obs::MonitorOptions monitor;

  /// Span sink for the per-request serving traces (docs/OBSERVABILITY.md).
  /// nullptr = obs::Tracer::global(); tests point this at their own tracer.
  obs::Tracer* tracer = nullptr;

  /// Head-sampling rate for the batched request path: every Nth
  /// run_model_batched call opens a root "serve.run_model_batched" span (and
  /// its batch_wait/execute/qoi children + latency exemplars follow). A call
  /// arriving with a trace already current on its thread (the cluster
  /// router) always joins that trace regardless of sampling. 0 disables
  /// head sampling; 1 traces everything (tests).
  std::size_t trace_sample_every = 16;

  /// Declarative SLOs over the served-request stream (docs/OBSERVABILITY.md).
  /// Every batched-path outcome is folded into each matching spec; burn-rate
  /// gauges land in stats().metrics() and edge-triggered kSloBurn alerts in
  /// alerts(). Empty = no SLO engine overhead beyond an empty loop.
  std::vector<obs::SloSpec> slos;
};

/// Per-request options for the batched path.
struct RequestOptions {
  /// Absolute completion deadline; unset = no deadline. A request that
  /// expires before its batch dispatches resolves kDeadlineExceeded and is
  /// not coalesced.
  BatchingQueue::Deadline deadline{};

  /// Convenience: a deadline `seconds` from now.
  [[nodiscard]] static RequestOptions within(double seconds) {
    RequestOptions o;
    o.deadline = BatchingQueue::Clock::now() +
                 std::chrono::duration_cast<BatchingQueue::Clock::duration>(
                     std::chrono::duration<double>(seconds));
    return o;
  }
};

/// The keyed tensor store + versioned model registry (one per "experiment").
/// Thread-safety: fully thread-safe — any mix of clients may call any member
/// concurrently (striped store, shared_mutex registry, locked queues).
///
/// Model versioning (docs/RETRAINING.md): set_model()/deploy() publish a new
/// version and promote it immediately; install_candidate()/begin_rollout()
/// publish without promoting and shadow/canary-evaluate the candidate on
/// live traffic, promoting (or discarding) it atomically via the rollout
/// state machine. Serving always reads the registry's active version.
class Orchestrator : public RolloutHost {
 public:
  explicit Orchestrator(DeviceModel device = DeviceModel{},
                        OrchestratorOptions opts = OrchestratorOptions{});
  ~Orchestrator() override;

  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  void put_tensor(const std::string& key, Tensor value);
  [[nodiscard]] Tensor get_tensor(const std::string& key) const;
  [[nodiscard]] bool has_tensor(const std::string& key) const;
  void delete_tensor(const std::string& key);

  /// Publishes `model` as a new version of `name` and promotes it
  /// immediately (no rollout evaluation — the trusted-deploy path).
  void set_model(const std::string& name, std::shared_ptr<const ServableModel> model);

  /// Registers `pkg.model` under `pkg.name` (publish + promote) and installs
  /// the training-set reference sketch on the model's health monitor, arming
  /// drift detection for every subsequently served request
  /// (docs/OBSERVABILITY.md).
  void deploy(const DeploymentPackage& pkg);
  /// Active-version lookup; throws ahn::Error for unknown names (the
  /// serving paths use the non-throwing internal lookup and report
  /// kModelUnavailable instead).
  [[nodiscard]] std::shared_ptr<const ServableModel> model(const std::string& name) const;

  /// The versioned registry behind set_model/deploy/rollouts (exposed for
  /// observability, the cluster coordinator, and tests).
  [[nodiscard]] ModelRegistry& registry() noexcept { return registry_; }

  /// Atomically makes retained version `id` the serving version and
  /// re-baselines the model's health monitor against that version's
  /// reference sketch (both decay edge-triggers re-arm — a recovered model
  /// can alert again). Returns false if the name/id is unknown.
  bool promote(const std::string& name, std::uint64_t id);

  /// Atomically restores the previous serving version (the §7.1 safety
  /// valve when a promotion goes bad) and re-baselines the monitor.
  /// Returns the version now serving, or nullopt if there is none to
  /// roll back to.
  std::optional<std::uint64_t> rollback(const std::string& name);

  // RolloutHost — the surface the Retrainer (and tests) drive. A live
  // rollout double-scores every executed batch for `name`: shadow rows
  // leave responses bitwise-unchanged; canary rows serve the candidate
  // (per-row QoI fallback still applies). With
  // RolloutOptions::auto_finalize the PASSED/FAILED verdict is applied
  // inline after the deciding batch; the cluster coordinator turns that
  // off and finalizes across shards itself.
  [[nodiscard]] std::optional<ActiveModelInfo> active_model(
      const std::string& name) const override;
  std::uint64_t install_candidate(
      const std::string& name, std::shared_ptr<const ServableModel> model,
      std::shared_ptr<const obs::FeatureSketch> reference, std::string origin) override;
  /// install_candidate with a caller-chosen version id: the cluster
  /// coordinator replicates its registry onto shards with this, so the same
  /// version carries the same id everywhere (including revive replay).
  std::uint64_t install_version(const std::string& name,
                                std::shared_ptr<const ServableModel> model,
                                std::shared_ptr<const obs::FeatureSketch> reference,
                                std::string origin, std::uint64_t explicit_id);
  Status begin_rollout(const std::string& name, std::uint64_t candidate_version,
                       RolloutOptions opts) override;
  std::optional<RolloutSnapshot> rollout_progress(const std::string& name) override;
  /// Side-effect-free "is a rollout live for name" (live entries are erased
  /// from rollouts_ when they conclude).
  [[nodiscard]] bool rollout_in_flight(const std::string& name) const override;
  [[nodiscard]] obs::MetricsRegistry* metrics_registry() override {
    return &stats_.metrics();
  }
  [[nodiscard]] obs::AlertSink& alert_sink() override { return alerts_; }
  void set_sample_hook(SampleHook hook) override;

  /// Coordinated finalization (RolloutOptions::auto_finalize off): applies
  /// the verdict an external coordinator reached — promote the candidate,
  /// or discard it and raise the rollback alert. No-op without a live
  /// rollout for `name`.
  void finalize_rollout(const std::string& name, bool promote_candidate,
                        const std::string& reason = "");

  /// Runs `name` on the tensor at `in_key`, storing the result at `out_key`.
  /// Wall time of each online phase is modeled with the device model and
  /// accumulated into `phases` when provided (the §7.3 breakdown:
  /// "fetch" / "encode" / "load" / "run"). Returns kModelUnavailable /
  /// kNotFound / kTransientFailure / kShuttingDown instead of throwing.
  [[nodiscard]] Status run_model(const std::string& name, const std::string& in_key,
                                 const std::string& out_key,
                                 PhaseAccumulator* phases = nullptr);

  /// Asynchronous run_model: returns immediately; the future resolves to
  /// the request's final Status once the result tensor is stored at
  /// `out_key`. No PhaseAccumulator parameter: per-phase latency is
  /// recorded thread-safely in stats().
  [[nodiscard]] std::future<Status> run_model_async(const std::string& name,
                                                    const std::string& in_key,
                                                    const std::string& out_key);

  /// Micro-batched single-row inference: bypasses the keyed store and
  /// coalesces up to OrchestratorOptions::max_batch pending rows for `name`
  /// into one batched forward. The future resolves to the (1 x outputs)
  /// result row — bitwise-identical to the row a sync run_model would
  /// store — or to a typed Status (deadline, shutdown, retry exhaustion,
  /// QoI rejection). Rows served by the original-code path (QoI fallback or
  /// an open breaker) resolve OK with the exact result.
  [[nodiscard]] std::future<Result<Tensor>> run_model_batched(
      const std::string& name, Tensor row, RequestOptions request = {});

  /// Force-drains partially filled micro-batches (see BatchingQueue::flush).
  void flush_batches();

  /// Graceful shutdown: executes every pending micro-batch, waits for
  /// in-flight async work, and completes all subsequent run_model* calls
  /// with kShuttingDown. Every request accepted before drain() resolves
  /// with a result or a typed status. Idempotent.
  void drain();
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Installs (or clears, with nullptr) the fault injector consulted by
  /// every serving phase. Shared so tests can keep a handle for mid-run
  /// spec changes and fault accounting.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);
  [[nodiscard]] std::shared_ptr<FaultInjector> fault_injector() const;

  /// The QoI circuit breaker for `name` (created on first use; one per
  /// model). Exposed for observability and tests.
  [[nodiscard]] CircuitBreaker& breaker(const std::string& name);

  /// The health monitor for `name` (created on first use; one per model).
  /// The serving paths feed it sampled inputs and QoI outcomes; deploy()
  /// seeds its drift reference.
  [[nodiscard]] obs::ModelMonitor& monitor(const std::string& name);

  /// Point-in-time health of one model: drift score, QoI trend, alert and
  /// retrain-recommended flags (from the monitor) plus breaker state/trips
  /// and total-latency percentiles (from this orchestrator's breaker map
  /// and stats).
  [[nodiscard]] obs::ModelHealth model_health(const std::string& name);

  /// The alert fan-out every model monitor (and breaker hook) raises into.
  [[nodiscard]] obs::AlertSink& alerts() noexcept { return alerts_; }

  [[nodiscard]] ServingStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ServingStats& stats() const noexcept { return stats_; }

  /// The span sink serving traces are recorded into (see
  /// OrchestratorOptions::tracer).
  [[nodiscard]] obs::Tracer& tracer() const noexcept { return *tracer_; }

  /// The burn-rate evaluator over OrchestratorOptions::slos (never null;
  /// empty spec list when none were configured). Exposed for the /slo
  /// endpoint, the cluster coordinator, and tests.
  [[nodiscard]] obs::SloEngine& slo_engine() noexcept { return *slo_; }

  [[nodiscard]] const DeviceModel& device() const noexcept { return device_; }
  [[nodiscard]] const OrchestratorOptions& options() const noexcept { return opts_; }

 private:
  /// Shared inference core: fault-injection hooks, encode (optional) +
  /// batched surrogate forward, with modeled per-phase seconds for the
  /// whole batch. Returns kTransientFailure when the injector fires.
  [[nodiscard]] Result<Tensor> execute(const ServableModel& m, const Tensor& input,
                                       RequestPhases* batch_phases);

  /// execute() wrapped in RetryPolicy: transient faults are retried with
  /// exponential backoff + jitter before the failure surfaces.
  [[nodiscard]] Result<Tensor> execute_with_retry(const ServableModel& m,
                                                  const Tensor& input,
                                                  RequestPhases* batch_phases);

  /// run_model() past the admission (draining) check — the body shared by
  /// the sync path and already-accepted async tasks, so a drain that starts
  /// after acceptance cannot strand in-flight work.
  [[nodiscard]] Status run_model_admitted(const std::string& name,
                                          const std::string& in_key,
                                          const std::string& out_key,
                                          PhaseAccumulator* phases);

  /// Non-throwing active-version lookup (nullptr = unknown model).
  [[nodiscard]] std::shared_ptr<const ServableModel> find_model(
      const std::string& name) const;

  /// Records one executed batch of `rows` requests into stats_ (per-request
  /// latency = batch phases amortized over the rows). `contexts` (may be
  /// empty) carries each row's submitting span so traced rows stamp latency
  /// exemplars onto the histogram buckets they land in.
  void record_requests(const RequestPhases& batch_phases, std::size_t rows,
                       const std::vector<obs::SpanContext>& contexts = {});

  /// One in-flight rollout: the candidate weights pinned for the shadow
  /// duplicate forward, the state machine, and cached metric handles (the
  /// per-row loop must not re-hash metric names).
  struct ActiveRollout {
    ActiveRollout(std::string model_name, std::uint64_t v,
                  std::shared_ptr<const ServableModel> cand, RolloutOptions opts)
        : version(v), candidate(std::move(cand)), ctl(std::move(model_name), v, std::move(opts)) {}

    std::uint64_t version;
    std::shared_ptr<const ServableModel> candidate;
    RolloutController ctl;
    obs::Counter* shadow_rows = nullptr;
    obs::Counter* shadow_active_miss = nullptr;
    obs::Counter* shadow_candidate_miss = nullptr;
    obs::Counter* canary_rows = nullptr;
    obs::Counter* canary_miss = nullptr;
  };

  /// The live rollout for `name` (nullptr when none) — shared-lock lookup
  /// behind a lock-free "any rollout live?" fast path.
  [[nodiscard]] std::shared_ptr<ActiveRollout> find_rollout(const std::string& name);

  /// Applies a PASSED/FAILED verdict (promote / discard + alert), moves the
  /// terminal snapshot to last_rollouts_, and erases the live entry. No-op
  /// while the rollout is still deciding or when auto_finalize is off.
  void maybe_conclude_rollout(const std::string& name, ActiveRollout& ro);

  /// The shared promote-or-discard body behind maybe_conclude_rollout and
  /// finalize_rollout.
  void conclude_rollout(const std::string& name, ActiveRollout& ro,
                        bool promote_candidate, const std::string& reason);

  /// Retires the live rollout entry for `name` (terminal snapshot kept for
  /// rollout_progress; rollout_state gauge updated).
  void clear_rollout(const std::string& name, const ActiveRollout& ro);

  /// Per-row QoI check + fallback + breaker outcome for one executed batch.
  /// With a live rollout, `ro`/`cand_out` carry the candidate's duplicate
  /// forward: shadow rows are double-scored (response untouched), canary
  /// rows are served from the candidate output. `contexts` (one per row, or
  /// empty) parents each row's qoi_fallback span under its submitting
  /// request; `per_row_seconds` (the amortized batch latency) feeds the SLO
  /// engine's per-outcome stream.
  [[nodiscard]] BatchingQueue::RowResults finalize_batch(
      const std::string& name, const ServableModel& m, const Tensor& batch,
      const Tensor& out, ActiveRollout* ro, const Tensor* cand_out,
      const std::vector<obs::SpanContext>& contexts, double per_row_seconds);

  ThreadPool& pool();
  BatchingQueue& batches();

  DeviceModel device_;
  OrchestratorOptions opts_;
  obs::Tracer* tracer_;  ///< never null (defaults to the global tracer)
  ServingStats stats_;

  ShardedTensorStore tensors_;
  ModelRegistry registry_;

  // Rollout bookkeeping. rollouts_live_ is the lock-free fast path the
  // batch executor checks before touching the map; last_rollouts_ keeps the
  // terminal snapshot per name so rollout_progress outlives conclusion.
  // Lock order: a breaker's on_transition hook (under the breaker mutex)
  // takes rollouts_mu_ shared then the controller mutex — never hold the
  // controller mutex while calling into a breaker.
  mutable std::shared_mutex rollouts_mu_;
  std::unordered_map<std::string, std::shared_ptr<ActiveRollout>> rollouts_;
  std::unordered_map<std::string, RolloutSnapshot> last_rollouts_;
  std::atomic<std::size_t> rollouts_live_{0};

  // Sampled-row observer (the Retrainer's reservoir feed). Copied once per
  // executed batch; fed per served row.
  mutable std::mutex hook_mu_;
  SampleHook sample_hook_;
  std::atomic<bool> hook_set_{false};

  std::atomic<bool> draining_{false};

  mutable std::mutex injector_mu_;
  std::shared_ptr<FaultInjector> injector_;

  std::mutex retry_mu_;
  Rng retry_rng_{0x5eedULL};  ///< backoff jitter (deterministic per orchestrator)

  std::mutex breakers_mu_;
  std::unordered_map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;

  // Model-health layer. Lock order: breakers_mu_ may be held while
  // monitors_mu_ is taken (breaker creation wires its monitor hook), never
  // the reverse — monitor code does not call into breakers.
  obs::AlertSink alerts_;
  std::mutex monitors_mu_;
  std::unordered_map<std::string, std::unique_ptr<obs::ModelMonitor>> monitors_;

  /// Burn-rate evaluation over opts_.slos (constructed after alerts_ and
  /// stats_, which it feeds into). Never null.
  std::unique_ptr<obs::SloEngine> slo_;

  /// Head-sampling counter for the batched trace path.
  std::atomic<std::uint64_t> trace_ticker_{0};

  // Both executors are created on first use so sync-only users (most tests,
  // the pipeline) never spawn threads. Destruction order matters: members
  // below are destroyed first, joining their threads while the store and
  // registry above are still alive.
  std::once_flag pool_once_, batches_once_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<BatchingQueue> batches_;
};

/// Listing 1's application-side client.
/// Thread-safety: as safe as the Orchestrator it wraps — stateless itself;
/// one Client may be shared, or cheaply created per thread.
class Client {
 public:
  explicit Client(Orchestrator& orc) noexcept : orc_(&orc) {}

  void put_tensor(const std::string& key, Tensor value) {
    orc_->put_tensor(key, std::move(value));
  }

  Status run_model(const std::string& name, const std::string& in_key,
                   const std::string& out_key, PhaseAccumulator* phases = nullptr) {
    return orc_->run_model(name, in_key, out_key, phases);
  }

  /// Async variant of the Listing-1 call (see Orchestrator::run_model_async).
  [[nodiscard]] std::future<Status> run_model_async(const std::string& name,
                                                    const std::string& in_key,
                                                    const std::string& out_key) {
    return orc_->run_model_async(name, in_key, out_key);
  }

  /// Micro-batched single-row inference (see Orchestrator::run_model_batched).
  [[nodiscard]] std::future<Result<Tensor>> run_model_batched(
      const std::string& name, Tensor row, RequestOptions request = {}) {
    return orc_->run_model_batched(name, std::move(row), request);
  }

  [[nodiscard]] Tensor unpack_tensor(const std::string& key) const {
    return orc_->get_tensor(key);
  }

 private:
  Orchestrator* orc_;
};

}  // namespace ahn::runtime
