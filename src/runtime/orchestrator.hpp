#pragma once
// In-memory inference orchestration — the reproduction of the paper's §6.3
// deployment path (SmartSim Orchestrator + RedisAI middleware): a keyed
// tensor store shared between the HPC application and the NN runtime, a
// model registry, and a lightweight client (Listing 1's API: put_tensor /
// run_model / unpack_tensor) compiled into the application.
//
// Concurrency model (docs/SERVING.md has the full contract):
//  * the tensor store is mutex-striped (ShardedTensorStore) — puts/gets on
//    different keys from many client threads do not serialize;
//  * the model registry is read-mostly (shared_mutex: concurrent lookups,
//    exclusive registration);
//  * run_model_async dispatches inference to a lazily-created thread pool;
//  * run_model_batched coalesces single-row requests per model into one
//    batched forward (BatchingQueue), amortizing the fetch/encode/load
//    phases of the §7.3 cost breakdown across the batch;
//  * every served request is tallied in a ServingStats collector.

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/serving_stats.hpp"
#include "common/timer.hpp"
#include "nn/train.hpp"
#include "runtime/batching_queue.hpp"
#include "runtime/device.hpp"
#include "runtime/sharded_store.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace ahn::runtime {

/// A servable model: an optional feature-reduction encoder in front of the
/// trained surrogate (both execute "on device" via the device model). The
/// encode callable must be stateless/thread-safe: batched and concurrent
/// paths invoke it from multiple threads.
struct ServableModel {
  std::function<Tensor(const Tensor&)> encode;  ///< may be empty (no reduction)
  OpCounts encode_ops;                           ///< per-row encode cost
  nn::TrainedSurrogate surrogate;
  OpCounts infer_ops;                            ///< per-row inference cost
};

/// Serving-side tuning knobs (defaults suit tests and small deployments).
struct OrchestratorOptions {
  std::size_t store_shards = ShardedTensorStore::kDefaultShards;
  std::size_t pool_threads = 4;        ///< run_model_async executor width
  std::size_t max_batch = 32;          ///< micro-batch coalescing bound
  double batch_delay_seconds = 200e-6; ///< straggler flush period (<=0: off)
  /// When true, each executed batch occupies the caller for its modeled
  /// device time (busy-wait on the §7.3 fetch+encode+load+run total). This
  /// makes wall-clock serving measurements honor the analytic accelerator
  /// model — the testbed has no real device — and is what the
  /// serving-throughput bench turns on. Off by default: the pipeline and
  /// tests want modeled time accounted, not elapsed.
  bool simulate_device_occupancy = false;
};

/// The keyed tensor store + model registry (one per "experiment").
class Orchestrator {
 public:
  explicit Orchestrator(DeviceModel device = DeviceModel{},
                        OrchestratorOptions opts = OrchestratorOptions{});
  ~Orchestrator();

  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  void put_tensor(const std::string& key, Tensor value);
  [[nodiscard]] Tensor get_tensor(const std::string& key) const;
  [[nodiscard]] bool has_tensor(const std::string& key) const;
  void delete_tensor(const std::string& key);

  void set_model(const std::string& name, std::shared_ptr<const ServableModel> model);
  [[nodiscard]] std::shared_ptr<const ServableModel> model(const std::string& name) const;

  /// Runs `name` on the tensor at `in_key`, storing the result at `out_key`.
  /// Wall time of each online phase is modeled with the device model and
  /// accumulated into `phases` when provided (the §7.3 breakdown:
  /// "fetch" / "encode" / "load" / "run").
  void run_model(const std::string& name, const std::string& in_key,
                 const std::string& out_key, PhaseAccumulator* phases = nullptr);

  /// Asynchronous run_model: returns immediately; the future resolves once
  /// the result tensor is stored at `out_key` (exceptions — unknown model,
  /// missing input — surface from future::get()). No PhaseAccumulator
  /// parameter: per-phase latency is recorded thread-safely in stats().
  [[nodiscard]] std::future<void> run_model_async(const std::string& name,
                                                  const std::string& in_key,
                                                  const std::string& out_key);

  /// Micro-batched single-row inference: bypasses the keyed store and
  /// coalesces up to OrchestratorOptions::max_batch pending rows for `name`
  /// into one batched forward. The future resolves to the (1 x outputs)
  /// result row, bitwise-identical to the row a sync run_model would store.
  [[nodiscard]] std::future<Tensor> run_model_batched(const std::string& name,
                                                      Tensor row);

  /// Force-drains partially filled micro-batches (see BatchingQueue::flush).
  void flush_batches();

  [[nodiscard]] ServingStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ServingStats& stats() const noexcept { return stats_; }

  [[nodiscard]] const DeviceModel& device() const noexcept { return device_; }
  [[nodiscard]] const OrchestratorOptions& options() const noexcept { return opts_; }

 private:
  /// Shared inference core: encode (optional) + batched surrogate forward,
  /// with modeled per-phase seconds for the whole batch. Stateless with
  /// respect to the orchestrator (callable from any thread).
  [[nodiscard]] Tensor execute(const ServableModel& m, Tensor input,
                               RequestPhases* batch_phases) const;

  /// Records one executed batch of `rows` requests into stats_ (per-request
  /// latency = batch phases amortized over the rows).
  void record_requests(const RequestPhases& batch_phases, std::size_t rows);

  ThreadPool& pool();
  BatchingQueue& batches();

  DeviceModel device_;
  OrchestratorOptions opts_;
  ServingStats stats_;

  ShardedTensorStore tensors_;
  mutable std::shared_mutex models_mu_;
  std::unordered_map<std::string, std::shared_ptr<const ServableModel>> models_;

  // Both executors are created on first use so sync-only users (most tests,
  // the pipeline) never spawn threads. Destruction order matters: members
  // below are destroyed first, joining their threads while the store and
  // registry above are still alive.
  std::once_flag pool_once_, batches_once_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<BatchingQueue> batches_;
};

/// Listing 1's application-side client.
class Client {
 public:
  explicit Client(Orchestrator& orc) noexcept : orc_(&orc) {}

  void put_tensor(const std::string& key, Tensor value) {
    orc_->put_tensor(key, std::move(value));
  }

  void run_model(const std::string& name, const std::string& in_key,
                 const std::string& out_key, PhaseAccumulator* phases = nullptr) {
    orc_->run_model(name, in_key, out_key, phases);
  }

  /// Async variant of the Listing-1 call (see Orchestrator::run_model_async).
  [[nodiscard]] std::future<void> run_model_async(const std::string& name,
                                                  const std::string& in_key,
                                                  const std::string& out_key) {
    return orc_->run_model_async(name, in_key, out_key);
  }

  /// Micro-batched single-row inference (see Orchestrator::run_model_batched).
  [[nodiscard]] std::future<Tensor> run_model_batched(const std::string& name,
                                                      Tensor row) {
    return orc_->run_model_batched(name, std::move(row));
  }

  [[nodiscard]] Tensor unpack_tensor(const std::string& key) const {
    return orc_->get_tensor(key);
  }

 private:
  Orchestrator* orc_;
};

}  // namespace ahn::runtime
