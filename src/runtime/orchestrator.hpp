#pragma once
// In-memory inference orchestration — the reproduction of the paper's §6.3
// deployment path (SmartSim Orchestrator + RedisAI middleware): a keyed
// tensor store shared between the HPC application and the NN runtime, a
// model registry, and a lightweight client (Listing 1's API: put_tensor /
// run_model / unpack_tensor) compiled into the application.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/timer.hpp"
#include "nn/train.hpp"
#include "runtime/device.hpp"
#include "tensor/tensor.hpp"

namespace ahn::runtime {

/// A servable model: an optional feature-reduction encoder in front of the
/// trained surrogate (both execute "on device" via the device model).
struct ServableModel {
  std::function<Tensor(const Tensor&)> encode;  ///< may be empty (no reduction)
  OpCounts encode_ops;                           ///< per-row encode cost
  nn::TrainedSurrogate surrogate;
  OpCounts infer_ops;                            ///< per-row inference cost
};

/// The keyed tensor store + model registry (one per "experiment").
class Orchestrator {
 public:
  explicit Orchestrator(DeviceModel device = DeviceModel{}) : device_(device) {}

  void put_tensor(const std::string& key, Tensor value);
  [[nodiscard]] Tensor get_tensor(const std::string& key) const;
  [[nodiscard]] bool has_tensor(const std::string& key) const;
  void delete_tensor(const std::string& key);

  void set_model(const std::string& name, std::shared_ptr<const ServableModel> model);
  [[nodiscard]] std::shared_ptr<const ServableModel> model(const std::string& name) const;

  /// Runs `name` on the tensor at `in_key`, storing the result at `out_key`.
  /// Wall time of each online phase is modeled with the device model and
  /// accumulated into `phases` when provided (the §7.3 breakdown:
  /// "fetch" / "encode" / "load" / "run").
  void run_model(const std::string& name, const std::string& in_key,
                 const std::string& out_key, PhaseAccumulator* phases = nullptr);

  [[nodiscard]] const DeviceModel& device() const noexcept { return device_; }

 private:
  DeviceModel device_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Tensor> tensors_;
  std::unordered_map<std::string, std::shared_ptr<const ServableModel>> models_;
};

/// Listing 1's application-side client.
class Client {
 public:
  explicit Client(Orchestrator& orc) noexcept : orc_(&orc) {}

  void put_tensor(const std::string& key, Tensor value) {
    orc_->put_tensor(key, std::move(value));
  }

  void run_model(const std::string& name, const std::string& in_key,
                 const std::string& out_key, PhaseAccumulator* phases = nullptr) {
    orc_->run_model(name, in_key, out_key, phases);
  }

  [[nodiscard]] Tensor unpack_tensor(const std::string& key) const {
    return orc_->get_tensor(key);
  }

 private:
  Orchestrator* orc_;
};

}  // namespace ahn::runtime
