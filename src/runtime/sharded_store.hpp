#pragma once
// N-way mutex-striped keyed tensor store — the concurrent replacement for
// the orchestrator's original single-mutex map. Keys hash to one of N
// independent shards, each with its own lock and map, so put/get traffic
// from many client threads only contends when two keys land on the same
// shard. Values are stored (and returned) by copy: a get never hands out a
// reference into a shard another thread may mutate.

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "tensor/tensor.hpp"

namespace ahn::runtime {

/// Thread-safety: fully thread-safe — keys hash to independently locked
/// shards, and values are copied in/out so no reference escapes a lock.
class ShardedTensorStore {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  explicit ShardedTensorStore(std::size_t shards = kDefaultShards) {
    AHN_CHECK_MSG(shards >= 1, "tensor store needs at least one shard");
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  void put(const std::string& key, Tensor value) {
    Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    s.map[key] = std::move(value);
  }

  [[nodiscard]] Tensor get(const std::string& key) const {
    const Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    AHN_CHECK_MSG(it != s.map.end(), "no tensor at key '" << key << "'");
    return it->second;
  }

  /// Non-throwing get: nullopt when `key` is absent (the serving paths use
  /// this to report kNotFound instead of throwing).
  [[nodiscard]] std::optional<Tensor> try_get(const std::string& key) const {
    const Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    const Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    return s.map.contains(key);
  }

  /// Removes `key`; returns whether it was present.
  bool erase(const std::string& key) {
    Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    return s.map.erase(key) > 0;
  }

  /// Total tensors stored (locks shards one at a time, so the count is a
  /// consistent-per-shard approximation under concurrent writes).
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      const std::lock_guard<std::mutex> lock(s->mu);
      n += s->map.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Tensor> map;
  };

  [[nodiscard]] Shard& shard_for(const std::string& key) const {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  // unique_ptr keeps Shard (which owns a mutex) at a stable address and the
  // container movable; the shard vector itself is immutable after build.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ahn::runtime
