#include "runtime/model_registry.hpp"

#include <algorithm>
#include <mutex>

#include "common/error.hpp"

namespace ahn::runtime {

namespace {

std::vector<ModelVersion>::iterator find_version(std::vector<ModelVersion>& v,
                                                 std::uint64_t id) {
  return std::find_if(v.begin(), v.end(),
                      [id](const ModelVersion& mv) { return mv.id == id; });
}

std::vector<ModelVersion>::const_iterator find_version(
    const std::vector<ModelVersion>& v, std::uint64_t id) {
  return std::find_if(v.begin(), v.end(),
                      [id](const ModelVersion& mv) { return mv.id == id; });
}

}  // namespace

ModelRegistry::ModelRegistry(RegistryOptions opts) : opts_(opts) {}

std::uint64_t ModelRegistry::publish(const std::string& name,
                                     std::shared_ptr<const ServableModel> model,
                                     std::shared_ptr<const obs::FeatureSketch> reference,
                                     std::string origin, std::uint64_t explicit_id) {
  AHN_CHECK_MSG(model != nullptr, "publish(" << name << "): null model");
  const std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& e = entries_[name];

  std::uint64_t id = explicit_id;
  if (id == 0) {
    id = e.next;
  } else {
    AHN_CHECK_MSG(find_version(e.versions, id) == e.versions.end(),
                  "publish(" << name << "): version " << id
                             << " already retained");
  }
  e.next = std::max(e.next, id + 1);

  ModelVersion mv;
  mv.id = id;
  mv.model = std::move(model);
  mv.reference = std::move(reference);
  mv.origin = std::move(origin);
  // Keep the vector ascending by id (explicit ids may arrive out of order
  // during a revive replay).
  const auto pos = std::find_if(e.versions.begin(), e.versions.end(),
                                [id](const ModelVersion& v) { return v.id > id; });
  e.versions.insert(pos, std::move(mv));
  evict_locked(e, id);
  return id;
}

bool ModelRegistry::promote(const std::string& name, std::uint64_t id) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (find_version(e.versions, id) == e.versions.end()) return false;
  if (e.active == id) return true;
  e.prior = e.active;
  e.active = id;
  return true;
}

std::optional<ModelVersion> ModelRegistry::rollback(const std::string& name) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  Entry& e = it->second;
  if (e.prior == 0) return std::nullopt;
  const auto vit = find_version(e.versions, e.prior);
  if (vit == e.versions.end()) return std::nullopt;  // evicted (shouldn't happen)
  std::swap(e.active, e.prior);
  return *vit;
}

std::optional<ModelVersion> ModelRegistry::active(const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.active == 0) return std::nullopt;
  const auto vit = find_version(it->second.versions, it->second.active);
  if (vit == it->second.versions.end()) return std::nullopt;
  return *vit;
}

std::shared_ptr<const ServableModel> ModelRegistry::active_model(
    const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.active == 0) return nullptr;
  const auto vit = find_version(it->second.versions, it->second.active);
  return vit == it->second.versions.end() ? nullptr : vit->model;
}

std::uint64_t ModelRegistry::active_id(const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.active;
}

std::optional<ModelVersion> ModelRegistry::version(const std::string& name,
                                                   std::uint64_t id) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  const auto vit = find_version(it->second.versions, id);
  if (vit == it->second.versions.end()) return std::nullopt;
  return *vit;
}

std::vector<ModelVersion> ModelRegistry::versions(const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return {};
  return it->second.versions;
}

std::optional<RegistryEntrySnapshot> ModelRegistry::snapshot(
    const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  RegistryEntrySnapshot s;
  s.name = name;
  s.active = it->second.active;
  s.prior = it->second.prior;
  s.retained.reserve(it->second.versions.size());
  for (const ModelVersion& v : it->second.versions) s.retained.push_back(v.id);
  return s;
}

std::vector<std::string> ModelRegistry::names() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

void ModelRegistry::evict_locked(Entry& e, std::uint64_t keep) {
  const std::size_t retain = std::max<std::size_t>(2, opts_.retain);
  for (auto it = e.versions.begin();
       e.versions.size() > retain && it != e.versions.end();) {
    if (it->id == e.active || it->id == e.prior || it->id == keep) {
      ++it;
    } else {
      it = e.versions.erase(it);  // ascending order ⇒ oldest evictable first
    }
  }
}

}  // namespace ahn::runtime
