#pragma once
// Shadow → canary → promote rollout state machine (docs/RETRAINING.md): how
// a retrained candidate earns the right to replace the serving version
// without ever degrading responses.
//
//          shadow miss-rate regression / breaker trip / stage timeout
//   SHADOW ------------------------------------------------------> FAILED
//     | shadow_rows scored, candidate no worse than active + margin     |
//     v                                                                 v
//   CANARY ---- canary miss rate > max after min samples ----------> FAILED
//     | canary_rows served within budget                                |
//     v                                                                 v
//   PASSED --(host promotes)--> PROMOTED          FAILED --(host)--> ROLLED_BACK
//
// During SHADOW the candidate scores every batch in duplicate while the
// active version's outputs are returned bitwise-unchanged; during CANARY a
// configurable fraction of rows is actually served by the candidate (QoI
// fallback still applies per row, so clients never see a raw miss). PASSED
// and FAILED are decisions, not endpoints: the hosting Orchestrator (or the
// cluster coordinator, which needs every shard to agree) applies the
// promote/rollback and marks the terminal state.
//
// RolloutController is the bookkeeping core — one mutex, no references to
// serving internals — so the state machine is testable in isolation.
// RolloutHost is the narrow surface the Retrainer drives: it is implemented
// by both Orchestrator (auto-finalizing, single node) and
// ClusterOrchestrator (coordinated fan-out), which is what makes the
// retraining loop topology-agnostic.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>

#include "common/status.hpp"

namespace ahn::obs {
class AlertSink;
class FeatureSketch;
class MetricsRegistry;
}  // namespace ahn::obs

namespace ahn::runtime {

struct ServableModel;  // runtime/orchestrator.hpp

/// Gauge values for serving.rollout_state{model=...} — keep stable.
enum class RolloutState {
  kIdle = 0,        ///< no rollout in flight
  kShadow = 1,      ///< candidate double-scores traffic, responses unchanged
  kCanary = 2,      ///< candidate serves a fraction of rows
  kPassed = 3,      ///< decided: promote (host applies it)
  kFailed = 4,      ///< decided: roll back (host applies it)
  kPromoted = 5,    ///< terminal: candidate is the active version
  kRolledBack = 6,  ///< terminal: prior version restored
};

[[nodiscard]] constexpr const char* rollout_state_name(RolloutState s) noexcept {
  switch (s) {
    case RolloutState::kIdle: return "idle";
    case RolloutState::kShadow: return "shadow";
    case RolloutState::kCanary: return "canary";
    case RolloutState::kPassed: return "passed";
    case RolloutState::kFailed: return "failed";
    case RolloutState::kPromoted: return "promoted";
    case RolloutState::kRolledBack: return "rolled_back";
  }
  return "unknown";
}

[[nodiscard]] constexpr bool rollout_terminal(RolloutState s) noexcept {
  return s == RolloutState::kPromoted || s == RolloutState::kRolledBack;
}

struct RolloutOptions {
  /// Shadow stage length: live rows double-scored before the verdict.
  std::size_t shadow_rows = 128;
  /// The candidate may miss QoI at most this much more often than the
  /// active version over the shadow window and still advance.
  double shadow_margin = 0.05;
  /// Canary stage length: rows actually served by the candidate.
  std::size_t canary_rows = 128;
  /// No canary failure verdict before this many candidate-served rows.
  std::size_t canary_min_samples = 16;
  /// Fraction of live rows the canary stage routes to the candidate.
  double canary_fraction = 0.25;
  /// Candidate QoI miss rate that fails the canary stage.
  double canary_max_miss = 0.25;
  /// A stage (shadow or canary) that cannot reach its verdict within this
  /// budget fails the rollout — a starved canary must not pin the registry
  /// forever. <= 0 disables the deadline.
  double stage_timeout_seconds = 60.0;
  /// Single-node hosts apply the PASSED/FAILED decision themselves, inline
  /// after the deciding batch. The cluster coordinator sets this false and
  /// finalizes only when every shard has decided.
  bool auto_finalize = true;
  /// Monotonic seconds source; empty = steady_clock. Tests inject a fake.
  std::function<double()> clock;
};

/// Point-in-time rollout progress (merged into health/metrics views).
struct RolloutSnapshot {
  std::string model;
  RolloutState state = RolloutState::kIdle;
  std::uint64_t candidate_version = 0;
  std::uint64_t shadow_rows = 0;
  std::uint64_t shadow_active_miss = 0;     ///< active-model QoI misses (shadow)
  std::uint64_t shadow_candidate_miss = 0;  ///< candidate QoI misses (shadow)
  std::uint64_t canary_rows = 0;            ///< rows served by the candidate
  std::uint64_t canary_miss = 0;
  std::string reason;  ///< why FAILED / ROLLED_BACK (empty otherwise)
};

/// The rollout bookkeeping core. Thread-safe (one mutex); records come from
/// batch-execution threads, poll/finalize from the Retrainer or coordinator.
class RolloutController {
 public:
  RolloutController(std::string model, std::uint64_t candidate_version,
                    RolloutOptions opts);
  RolloutController(const RolloutController&) = delete;
  RolloutController& operator=(const RolloutController&) = delete;

  /// Shadow stage: one live row scored by both models. Advances to CANARY
  /// or FAILED once the shadow window fills. Returns the state after.
  RolloutState record_shadow(bool active_ok, bool candidate_ok);

  /// Canary admission for one live row: true = serve it with the candidate.
  /// Deterministic stride at canary_fraction; false outside CANARY.
  [[nodiscard]] bool admit_canary();

  /// QoI outcome of one candidate-served canary row.
  RolloutState record_canary(bool candidate_ok);

  /// The active model's breaker tripped while a rollout was in flight:
  /// fail fast, whatever the stage.
  void note_breaker_trip();

  /// Deadline check (call periodically): a stage over its time budget
  /// transitions to FAILED. Returns the state after.
  RolloutState poll();

  /// Host finalization: PASSED -> PROMOTED, or anything -> ROLLED_BACK.
  void mark_promoted();
  void mark_rolled_back(std::string reason);

  [[nodiscard]] RolloutState state() const;
  [[nodiscard]] RolloutSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t candidate_version() const noexcept {
    return candidate_version_;
  }
  [[nodiscard]] const RolloutOptions& options() const noexcept { return opts_; }

 private:
  void transition_locked(RolloutState to, std::string reason);
  [[nodiscard]] double now_locked() const;

  const std::string model_;
  const std::uint64_t candidate_version_;
  const RolloutOptions opts_;

  mutable std::mutex mu_;
  RolloutState state_ = RolloutState::kShadow;
  double stage_started_ = 0.0;
  std::uint64_t shadow_rows_ = 0;
  std::uint64_t shadow_active_miss_ = 0;
  std::uint64_t shadow_candidate_miss_ = 0;
  std::uint64_t canary_rows_ = 0;
  std::uint64_t canary_miss_ = 0;
  double canary_acc_ = 0.0;  ///< fractional-stride admission accumulator
  std::string reason_;
};

/// The active version of a model as a rollout host reports it.
struct ActiveModelInfo {
  std::uint64_t version = 0;
  std::shared_ptr<const ServableModel> model;
  std::shared_ptr<const obs::FeatureSketch> reference;  ///< may be null
};

/// The narrow serving surface the Retrainer drives. Implemented by
/// Orchestrator (single node, auto-finalize) and ClusterOrchestrator
/// (replicates candidates and coordinates the verdict across shards).
class RolloutHost {
 public:
  /// Observes every monitor-sampled served row: (model, raw feature row,
  /// QoI outcome). Runs on serving threads — must be fast and non-blocking
  /// (the Retrainer's hook only folds the row into its reservoir).
  using SampleHook =
      std::function<void(const std::string& name, std::span<const double> row,
                         bool qoi_ok)>;

  virtual ~RolloutHost() = default;

  /// The version currently answering requests for `name`.
  [[nodiscard]] virtual std::optional<ActiveModelInfo> active_model(
      const std::string& name) const = 0;

  /// Registers a candidate version without serving it; returns its id.
  virtual std::uint64_t install_candidate(
      const std::string& name, std::shared_ptr<const ServableModel> model,
      std::shared_ptr<const obs::FeatureSketch> reference, std::string origin) = 0;

  /// Starts shadow-scoring `candidate_version` against live traffic.
  /// Fails (kInvalidArgument / kNotFound) if a rollout is already in
  /// flight for `name` or the version is unknown.
  virtual Status begin_rollout(const std::string& name,
                               std::uint64_t candidate_version,
                               RolloutOptions opts) = 0;

  /// Progress of the current (or most recently finished) rollout for
  /// `name`; also drives deadline checks and, for coordinated hosts, the
  /// cross-shard verdict. nullopt = no rollout ever started.
  virtual std::optional<RolloutSnapshot> rollout_progress(const std::string& name) = 0;

  /// True while a rollout for `name` is between begin_rollout and its
  /// terminal conclusion. Unlike rollout_progress this is side-effect-free
  /// (no deadline polling, no verdict driving), so the Retrainer can use it
  /// to coalesce alert storms without perturbing the rollout. Default: never
  /// in flight (hosts that do not track rollouts).
  [[nodiscard]] virtual bool rollout_in_flight(const std::string& name) const {
    (void)name;
    return false;
  }

  /// The host's metrics registry, for cross-cutting workers (the Retrainer's
  /// serving.retrain.* counters) to publish into. Default: none.
  [[nodiscard]] virtual obs::MetricsRegistry* metrics_registry() { return nullptr; }

  /// The alert fan-out retraining subscribes to.
  [[nodiscard]] virtual obs::AlertSink& alert_sink() = 0;

  /// Installs (or clears) the sampled-row observer feeding the reservoir.
  virtual void set_sample_hook(SampleHook hook) = 0;
};

}  // namespace ahn::runtime
