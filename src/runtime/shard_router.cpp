#include "runtime/shard_router.hpp"

#include <algorithm>
#include <mutex>

namespace ahn::runtime {

std::uint64_t fnv1a64(const std::string& key) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t ring_hash(const std::string& key) noexcept {
  // MurmurHash3 fmix64 finalizer — fixed constants, part of the placement
  // contract.
  std::uint64_t h = fnv1a64(key);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

namespace {

/// The ring point for one (shard, vnode) pair. The label format is part of
/// the placement contract (docs/SHARDING.md): changing it migrates keys.
std::uint64_t vnode_hash(std::size_t shard, std::size_t vnode) {
  return ring_hash("shard-" + std::to_string(shard) + "#" + std::to_string(vnode));
}

}  // namespace

ConsistentHashRing::ConsistentHashRing(std::size_t shards, std::size_t vnodes)
    : vnodes_(vnodes) {
  AHN_CHECK_MSG(vnodes_ >= 1, "ring needs at least one vnode per shard");
  for (std::size_t s = 0; s < shards; ++s) add_shard(s);
}

void ConsistentHashRing::add_shard(std::size_t id) {
  if (contains(id)) return;
  shards_.insert(std::lower_bound(shards_.begin(), shards_.end(), id), id);
  points_.reserve(points_.size() + vnodes_);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    points_.push_back(Point{vnode_hash(id, v), id});
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

void ConsistentHashRing::remove_shard(std::size_t id) {
  const auto it = std::lower_bound(shards_.begin(), shards_.end(), id);
  if (it == shards_.end() || *it != id) return;
  shards_.erase(it);
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [id](const Point& p) { return p.shard == id; }),
                points_.end());
}

bool ConsistentHashRing::contains(std::size_t id) const {
  return std::binary_search(shards_.begin(), shards_.end(), id);
}

std::size_t ConsistentHashRing::first_point_at(std::uint64_t h) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  // Clockwise wrap: past the last point, ownership falls to the first.
  return it == points_.end() ? 0 : static_cast<std::size_t>(it - points_.begin());
}

std::size_t ConsistentHashRing::owner(const std::string& key) const {
  AHN_CHECK_MSG(!points_.empty(), "consistent-hash ring is empty");
  return points_[first_point_at(ring_hash(key))].shard;
}

std::vector<std::size_t> ConsistentHashRing::owners(const std::string& key,
                                                    std::size_t replicas) const {
  AHN_CHECK_MSG(!points_.empty(), "consistent-hash ring is empty");
  const std::size_t want = std::min(replicas, shards_.size());
  std::vector<std::size_t> out;
  out.reserve(want);
  std::size_t i = first_point_at(ring_hash(key));
  for (std::size_t steps = 0; out.size() < want && steps < points_.size(); ++steps) {
    const std::size_t shard = points_[(i + steps) % points_.size()].shard;
    if (std::find(out.begin(), out.end(), shard) == out.end()) out.push_back(shard);
  }
  return out;
}

ShardRouter::ShardRouter(std::size_t shards, std::size_t replicas, std::size_t vnodes)
    : replicas_(std::max<std::size_t>(replicas, 1)),
      ring_(shards, vnodes),
      alive_(shards, true) {
  AHN_CHECK_MSG(shards >= 1, "router needs at least one shard");
}

std::size_t ShardRouter::primary(const std::string& key) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return ring_.owner(key);
}

std::vector<std::size_t> ShardRouter::owners(const std::string& key) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return ring_.owners(key, replicas_);
}

std::size_t ShardRouter::route(const std::string& key) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  for (const std::size_t s : ring_.owners(key, replicas_)) {
    if (alive_[s]) return s;
  }
  return kNoShard;
}

std::vector<std::size_t> ShardRouter::alive_owners(const std::string& key) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::size_t> out;
  for (const std::size_t s : ring_.owners(key, replicas_)) {
    if (alive_[s]) out.push_back(s);
  }
  return out;
}

void ShardRouter::set_alive(std::size_t shard, bool alive) {
  const std::unique_lock<std::shared_mutex> lock(mu_);
  AHN_CHECK_MSG(shard < alive_.size(), "no shard " << shard);
  alive_[shard] = alive;
}

bool ShardRouter::alive(std::size_t shard) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  AHN_CHECK_MSG(shard < alive_.size(), "no shard " << shard);
  return alive_[shard];
}

std::size_t ShardRouter::alive_count() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<std::size_t>(std::count(alive_.begin(), alive_.end(), true));
}

std::size_t ShardRouter::shard_count() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return ring_.shard_count();
}

}  // namespace ahn::runtime
