#include "runtime/batching_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "nn/train.hpp"

namespace ahn::runtime {

BatchingQueue::BatchingQueue(BatchFn run_batch, BatchingOptions opts, ServingStats* stats,
                             obs::Tracer* tracer)
    : run_batch_(std::move(run_batch)), opts_(opts), stats_(stats), tracer_(tracer) {
  AHN_CHECK(run_batch_ != nullptr);
  AHN_CHECK_MSG(opts_.max_batch >= 1, "max_batch must be at least 1");
  // Looked up once (stable address for the registry's lifetime) so depth
  // updates on the submit path are a single atomic store.
  if (stats_ != nullptr) {
    depth_gauge_ = &stats_->metrics().gauge("serving.batch_queue_depth");
  }
  if (opts_.max_delay_seconds > 0.0) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
}

BatchingQueue::~BatchingQueue() {
  std::vector<std::pair<std::string, PendingBatch>> stranded;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    stop_ = true;
    stranded = take_all_locked();
  }
  stop_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // Requests still pending at teardown are completed with a typed status —
  // never a broken promise, and no surprise inference on a dying queue.
  // Callers that want stragglers *served* call drain() (or flush()) first.
  for (auto& [model, batch] : stranded) {
    fail_batch(std::move(batch), Status(StatusCode::kShuttingDown,
                                        "batching queue destroyed"));
  }
}

std::future<Result<Tensor>> BatchingQueue::submit(const std::string& model,
                                                  Tensor row, Deadline deadline) {
  if (row.rank() == 1) row.reshape({1, row.size()});
  AHN_CHECK_MSG(row.rank() == 2 && row.rows() == 1,
                "batched submit expects a single row, got shape " << row.shape_string());

  std::promise<Result<Tensor>> promise;
  std::future<Result<Tensor>> result = promise.get_future();

  if (deadline.has_value() && Clock::now() >= *deadline) {
    if (stats_ != nullptr) stats_->record_deadline_miss();
    promise.set_value(Status(StatusCode::kDeadlineExceeded, "expired before enqueue"));
    return result;
  }

  PendingBatch ready;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      if (stats_ != nullptr) stats_->record_shutdown_rejection();
      promise.set_value(Status(StatusCode::kShuttingDown, "batching queue draining"));
      return result;
    }
    PendingBatch& pending = pending_[model];
    pending.rows.push_back(std::move(row));
    pending.promises.push_back(std::move(promise));
    pending.deadlines.push_back(deadline);
    // The submitting thread's span context rides along so dispatch — which
    // may happen on the flusher or another client's thread — can parent
    // batch_wait/execute spans under the trace that enqueued the row.
    pending.contexts.push_back(obs::Tracer::current());
    pending.enqueue_seconds.push_back(tracer_ != nullptr ? tracer_->now_seconds() : 0.0);
    update_depth_locked(+1);
    if (pending.rows.size() >= opts_.max_batch) ready = take_locked(model);
  }
  // Leader executes outside the lock: other clients keep filling the next
  // batch (and other models' batches) while this one runs.
  if (!ready.empty()) execute(model, std::move(ready));
  return result;
}

void BatchingQueue::flush() {
  std::vector<std::pair<std::string, PendingBatch>> ready;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ready = take_all_locked();
  }
  for (auto& [model, batch] : ready) execute(model, std::move(batch));
}

void BatchingQueue::drain() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  flush();  // everything accepted before the flag flipped gets served
}

bool BatchingQueue::draining() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void BatchingQueue::update_depth_locked(std::ptrdiff_t delta) {
  pending_rows_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(pending_rows_) + delta);
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<double>(pending_rows_));
  }
}

BatchingQueue::PendingBatch BatchingQueue::take_locked(const std::string& model) {
  PendingBatch taken = std::exchange(pending_[model], PendingBatch{});
  update_depth_locked(-static_cast<std::ptrdiff_t>(taken.rows.size()));
  return taken;
}

std::vector<std::pair<std::string, BatchingQueue::PendingBatch>>
BatchingQueue::take_all_locked() {
  std::vector<std::pair<std::string, PendingBatch>> ready;
  for (auto& [model, pending] : pending_) {
    if (!pending.empty()) ready.emplace_back(model, take_locked(model));
  }
  return ready;
}

void BatchingQueue::fail_batch(PendingBatch batch, const Status& status) {
  for (auto& p : batch.promises) p.set_value(status);
}

void BatchingQueue::execute(const std::string& model, PendingBatch batch) {
  // Expired requests are resolved here and NOT coalesced: no device time for
  // results nobody is waiting on, and no deadline-blown rows inflating the
  // batch the live requests pay for.
  const Clock::time_point now = Clock::now();
  PendingBatch live;
  for (std::size_t r = 0; r < batch.rows.size(); ++r) {
    if (batch.deadlines[r].has_value() && now >= *batch.deadlines[r]) {
      if (stats_ != nullptr) stats_->record_deadline_miss();
      batch.promises[r].set_value(
          Status(StatusCode::kDeadlineExceeded, "expired before dispatch"));
      continue;
    }
    live.rows.push_back(std::move(batch.rows[r]));
    live.promises.push_back(std::move(batch.promises[r]));
    live.deadlines.push_back(batch.deadlines[r]);
    live.contexts.push_back(batch.contexts[r]);
    live.enqueue_seconds.push_back(batch.enqueue_seconds[r]);
  }
  if (live.empty()) return;

  // Per traced row, the coalescing delay becomes a "batching.batch_wait"
  // span parented under the *submitting* request — the one interval a
  // thread-current span could never cover, since no thread runs it.
  obs::SpanContext batch_parent{};  // first traced row adopts the batch
  if (tracer_ != nullptr) {
    const double now_s = tracer_->now_seconds();
    for (std::size_t r = 0; r < live.contexts.size(); ++r) {
      if (live.contexts[r].trace_id == 0) continue;
      const double start = live.enqueue_seconds[r];
      tracer_->record_span("batching.batch_wait", live.contexts[r], start,
                           std::max(0.0, now_s - start));
      if (batch_parent.trace_id == 0) batch_parent = live.contexts[r];
    }
  }

  // One span per dispatched batch: the coalescing itself is what the trace
  // should show (B requests riding one fetch/encode/load/run). When the
  // batch carries a traced row, the span joins that trace (explicit parent —
  // the dispatching thread may be the flusher with no current span). A batch
  // with no traced row and no ambient trace records nothing: head sampling
  // decides at the cluster edge, not here.
  std::optional<obs::Span> span;
  if (tracer_ != nullptr) {
    if (batch_parent.trace_id != 0) {
      span.emplace(*tracer_, "batching.execute", batch_parent);
    } else if (obs::Tracer::current().trace_id != 0) {
      span.emplace(*tracer_, "batching.execute");
    }
  }

  RowResults results;
  try {
    results = run_batch_(model, nn::pack_rows(live.rows), live.contexts);
  } catch (const std::exception& e) {
    // The BatchFn contract is no-throw; treat an escapee as an internal
    // error rather than letting it tear down a serving thread.
    fail_batch(std::move(live), Status(StatusCode::kInternal, e.what()));
    return;
  }
  if (results.size() != live.rows.size()) {
    fail_batch(std::move(live),
               Status(StatusCode::kInternal, "batch executor returned " +
                                                 std::to_string(results.size()) +
                                                 " results for " +
                                                 std::to_string(live.rows.size()) +
                                                 " rows"));
    return;
  }
  if (stats_ != nullptr) stats_->record_batch(live.rows.size());
  for (std::size_t r = 0; r < live.promises.size(); ++r) {
    live.promises[r].set_value(std::move(results[r]));
  }
}

void BatchingQueue::flusher_loop() {
  const auto period = std::chrono::duration<double>(opts_.max_delay_seconds);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    stop_cv_.wait_for(lock, period);
    if (stop_) return;  // destructor resolves any stragglers
    std::vector<std::pair<std::string, PendingBatch>> ready = take_all_locked();
    lock.unlock();
    for (auto& [model, batch] : ready) execute(model, std::move(batch));
    lock.lock();
  }
}

}  // namespace ahn::runtime
