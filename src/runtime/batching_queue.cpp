#include "runtime/batching_queue.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "nn/train.hpp"

namespace ahn::runtime {

BatchingQueue::BatchingQueue(BatchFn run_batch, BatchingOptions opts, ServingStats* stats)
    : run_batch_(std::move(run_batch)), opts_(opts), stats_(stats) {
  AHN_CHECK(run_batch_ != nullptr);
  AHN_CHECK_MSG(opts_.max_batch >= 1, "max_batch must be at least 1");
  if (opts_.max_delay_seconds > 0.0) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
}

BatchingQueue::~BatchingQueue() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  flush();  // nothing new can arrive; resolve any stragglers
}

std::future<Tensor> BatchingQueue::submit(const std::string& model, Tensor row) {
  if (row.rank() == 1) row.reshape({1, row.size()});
  AHN_CHECK_MSG(row.rank() == 2 && row.rows() == 1,
                "batched submit expects a single row, got shape " << row.shape_string());

  std::promise<Tensor> promise;
  std::future<Tensor> result = promise.get_future();
  PendingBatch ready;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    PendingBatch& pending = pending_[model];
    pending.rows.push_back(std::move(row));
    pending.promises.push_back(std::move(promise));
    if (pending.rows.size() >= opts_.max_batch) ready = take_locked(model);
  }
  // Leader executes outside the lock: other clients keep filling the next
  // batch (and other models' batches) while this one runs.
  if (!ready.rows.empty()) execute(model, std::move(ready));
  return result;
}

void BatchingQueue::flush() {
  std::vector<std::pair<std::string, PendingBatch>> ready;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [model, pending] : pending_) {
      if (!pending.rows.empty()) ready.emplace_back(model, take_locked(model));
    }
  }
  for (auto& [model, batch] : ready) execute(model, std::move(batch));
}

BatchingQueue::PendingBatch BatchingQueue::take_locked(const std::string& model) {
  return std::exchange(pending_[model], PendingBatch{});
}

void BatchingQueue::execute(const std::string& model, PendingBatch batch) {
  try {
    const Tensor out = run_batch_(model, nn::pack_rows(batch.rows));
    AHN_CHECK_MSG(out.rank() == 2 && out.rows() == batch.rows.size(),
                  "batch executor returned " << out.shape_string() << " for "
                                             << batch.rows.size() << " rows");
    if (stats_ != nullptr) stats_->record_batch(batch.rows.size());
    for (std::size_t r = 0; r < batch.promises.size(); ++r) {
      Tensor row({1, out.cols()});
      std::copy(out.row(r).begin(), out.row(r).end(), row.row(0).begin());
      batch.promises[r].set_value(std::move(row));
    }
  } catch (...) {
    for (auto& p : batch.promises) p.set_exception(std::current_exception());
  }
}

void BatchingQueue::flusher_loop() {
  const auto period = std::chrono::duration<double>(opts_.max_delay_seconds);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    stop_cv_.wait_for(lock, period);
    if (stop_) return;  // destructor performs the final drain
    std::vector<std::pair<std::string, PendingBatch>> ready;
    for (auto& [model, pending] : pending_) {
      if (!pending.rows.empty()) ready.emplace_back(model, take_locked(model));
    }
    lock.unlock();
    for (auto& [model, batch] : ready) execute(model, std::move(batch));
    lock.lock();
  }
}

}  // namespace ahn::runtime
