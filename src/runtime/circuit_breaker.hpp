#pragma once
// QoI circuit breaker for the batched serving path. The paper's §7.1
// deployment contract handles a quality miss per request (fall back to the
// original code); the breaker generalizes that to systemic degradation: a
// sliding window tracks the recent QoI-fallback rate and, when it exceeds a
// threshold, the breaker OPENS — every request routes straight to the
// original-code path for a cool-down, sparing a misbehaving surrogate the
// traffic (and clients the doomed inference latency). After the cool-down
// the breaker goes HALF-OPEN and admits a few surrogate probes; if they all
// pass QoI the breaker CLOSES (surrogate serving restored), and a single
// probe miss re-opens it.
//
//            trip (miss rate >= threshold over window)
//   CLOSED ------------------------------------------> OPEN
//     ^                                                  | cool-down elapsed
//     |  all probes pass              probe misses       v
//     +------------------- HALF-OPEN <-----------------> OPEN
//
// Thread-safety: one mutex; admit() and record_outcome() are called from
// client and batch-execution threads concurrently. The clock is injectable
// so tests can drive the cool-down deterministically.

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/serving_stats.hpp"

namespace ahn::runtime {

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

[[nodiscard]] constexpr const char* breaker_state_name(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

struct CircuitBreakerOptions {
  std::size_t window = 64;           ///< sliding outcome window (requests)
  std::size_t min_samples = 16;      ///< no tripping before this many outcomes
  double trip_threshold = 0.5;       ///< fallback rate in window that opens
  double cooldown_seconds = 50e-3;   ///< OPEN dwell before probing
  std::size_t half_open_probes = 4;  ///< surrogate probes admitted half-open
  /// Monotonic seconds source; empty = steady_clock. Tests inject a fake.
  std::function<double()> clock;
  /// Invoked on every state change with the window fallback rate at the
  /// moment of transition. Runs under the breaker mutex: the callback must
  /// be fast and must not call back into this breaker (the orchestrator
  /// uses it to set the per-model state gauge and raise breaker_open
  /// alerts — docs/OBSERVABILITY.md).
  std::function<void(BreakerState from, BreakerState to, double window_fallback_rate)>
      on_transition;
};

/// Thread-safety: fully thread-safe — admit/record_outcome/state may race
/// from any serving thread; one mutex guards the window and state machine.
class CircuitBreaker {
 public:
  /// Where admit() routes a request.
  enum class Route { kSurrogate, kOriginal };

  explicit CircuitBreaker(CircuitBreakerOptions opts = CircuitBreakerOptions{},
                          ServingStats* stats = nullptr);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Routing decision for one incoming request. May transition
  /// OPEN -> HALF-OPEN when the cool-down has elapsed (the admitting request
  /// becomes the first probe).
  [[nodiscard]] Route admit();

  /// Reports the QoI outcome of one surrogate-served request
  /// (qoi_ok = false means the request needed the §7.1 fallback). May trip
  /// CLOSED -> OPEN or resolve HALF-OPEN -> CLOSED / OPEN.
  void record_outcome(bool qoi_ok);

  [[nodiscard]] BreakerState state() const;
  [[nodiscard]] std::uint64_t trips() const;  ///< transitions into OPEN

  /// Current fallback rate over the sliding window (0 when empty).
  [[nodiscard]] double window_fallback_rate() const;

 private:
  void transition_locked(BreakerState to, double now);
  [[nodiscard]] double now_locked() const;

  CircuitBreakerOptions opts_;
  ServingStats* stats_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  double opened_at_ = 0.0;

  // Sliding outcome window: ring buffer of "was a fallback" flags.
  std::vector<bool> window_;
  std::size_t window_next_ = 0;
  std::size_t window_count_ = 0;
  std::size_t window_misses_ = 0;

  // Half-open probe accounting.
  std::size_t probes_admitted_ = 0;
  std::size_t probes_passed_ = 0;

  std::uint64_t trips_ = 0;
};

}  // namespace ahn::runtime
