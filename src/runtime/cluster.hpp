#pragma once
// Multi-shard serving frontend (docs/SHARDING.md): N in-process shards —
// each a full Orchestrator owning its own ShardedTensorStore, BatchingQueue,
// per-model CircuitBreakers, ModelMonitors, and one modeled accelerator —
// behind a consistent-hash ShardRouter, with:
//
//  * a replicated keyed store: put_tensor writes the key's R-shard replica
//    set (ShardRouter::owners), get_tensor reads the first alive owner, so
//    a dead shard's keys stay readable from replicas;
//  * a replicated *versioned* model registry with atomic deploy fan-out:
//    set_model / deploy / install_candidate replicate the same immutable
//    version (same version id, same drift-reference sketch) onto every
//    shard under one cluster registry lock, so any shard can serve any
//    model, a deploy is never observed half-applied between deploys, and a
//    revived shard reconciles to the cluster's registry_version exactly;
//  * coordinated rollouts (docs/RETRAINING.md): as a RolloutHost the
//    cluster fans a candidate out to every shard in shadow/canary mode
//    with auto-finalize off, merges the per-shard verdicts on each
//    rollout_progress poll, and promotes cluster-wide only when every
//    alive shard passed — any shard failing rolls the candidate back
//    everywhere;
//  * replica failover: requests route to the first alive owner; a shard
//    that is killed (fail_shard) or announces shutdown is skipped — and a
//    shard whose per-model QoI breaker is OPEN is deprioritized in favor of
//    a replica whose surrogate is still healthy;
//  * cross-shard aggregate health: cluster_health() merges the per-shard
//    MetricsRegistry snapshots (they merge associatively by design) into
//    one shard-labeled, exposition-ready RegistrySnapshot plus headline
//    aggregates (requests, pXX latency, worst drift, breaker states).
//
// Thread-safety: all public members may be called from any thread; routing
// reads take shared locks, topology/registry changes take exclusive ones.
//
// Zero-loss failover contract: fail_shard marks the shard dead (the router
// stops sending it traffic) and then drains it, so every request the dead
// shard had already accepted still resolves with a result — and a submit
// that races the kill and lands on a draining shard comes back as an
// immediately-ready kShuttingDown future, which the cluster detects and
// transparently resubmits to a replica. bench/multi_shard gates this at
// zero lost requests through a mid-run kill.

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/serving_stats.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "runtime/deployment.hpp"
#include "runtime/orchestrator.hpp"
#include "runtime/shard_router.hpp"

namespace ahn::runtime {

struct ClusterOptions {
  std::size_t shards = 4;       ///< in-process shard (Orchestrator) count
  std::size_t replication = 2;  ///< tensor-key replica set size (>= 1)
  std::size_t vnodes = ConsistentHashRing::kDefaultVnodes;
  DeviceModel device = DeviceModel{};  ///< one modeled accelerator per shard
  OrchestratorOptions shard_opts;  ///< applied to every shard
};

/// One shard's slice of the cluster health view.
struct ShardHealth {
  std::size_t shard = 0;
  bool alive = true;
  std::uint64_t requests_served = 0;
  /// Accumulated modeled online device time (seconds) this shard's
  /// accelerator has been busy — the per-shard serving capacity spent.
  double device_seconds = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  std::map<std::string, std::string> breaker_states;  ///< model -> state
};

/// Point-in-time aggregate health of the whole cluster (docs/SHARDING.md).
struct ClusterHealth {
  std::size_t shards_total = 0;
  std::size_t shards_alive = 0;
  std::uint64_t requests_served = 0;  ///< sum across shards
  std::uint64_t failovers = 0;        ///< requests re-routed off a dead shard
  std::uint64_t breaker_reroutes = 0; ///< requests steered off an open breaker
  std::uint64_t registry_version = 0; ///< deploy fan-outs applied
  double uptime_seconds = 0.0;
  double avg_rps = 0.0;          ///< requests_served / uptime (wall)
  /// Device-bound aggregate throughput: shards serve in parallel, so the
  /// cluster finishes its work in max-over-shards device time. This is the
  /// quantity that scales with shard count (bench/multi_shard gates it).
  double modeled_rps = 0.0;
  double latency_p50 = 0.0;  ///< percentiles of the cluster-merged histogram
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double max_drift_score = 0.0;
  std::string max_drift_model;
  std::vector<ShardHealth> shards;
  /// Every per-shard metric re-labeled with shard="<id>" plus computed
  /// cluster.* aggregates — feed it straight to obs::export_prometheus /
  /// export_json.
  obs::RegistrySnapshot merged;
};

/// The multi-shard serving frontend. Thread-safe for any mix of concurrent
/// clients; shards are created at construction and live for the cluster's
/// lifetime (a failed shard's Orchestrator is only replaced on revive).
class ClusterOrchestrator : public RolloutHost {
 public:
  explicit ClusterOrchestrator(ClusterOptions opts = ClusterOptions{});
  ~ClusterOrchestrator() override;

  ClusterOrchestrator(const ClusterOrchestrator&) = delete;
  ClusterOrchestrator& operator=(const ClusterOrchestrator&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t alive_count() const { return router_.alive_count(); }
  [[nodiscard]] bool shard_alive(std::size_t i) const { return router_.alive(i); }
  /// Direct access to one shard's Orchestrator (tests, observability).
  [[nodiscard]] Orchestrator& shard(std::size_t i);
  [[nodiscard]] const ShardRouter& router() const noexcept { return router_; }

  // --- replicated keyed tensor store --------------------------------------
  /// Writes `key` to every *alive* shard of its replica set (last-write-wins
  /// per shard; a dead owner misses the write and warms lazily on revive).
  void put_tensor(const std::string& key, Tensor value);
  /// Reads from the first alive owner holding the key; throws ahn::Error
  /// when no alive replica has it (matching ShardedTensorStore::get).
  [[nodiscard]] Tensor get_tensor(const std::string& key) const;
  [[nodiscard]] bool has_tensor(const std::string& key) const;
  void delete_tensor(const std::string& key);

  // --- replicated versioned model registry --------------------------------
  /// Publishes `model` as a new version and promotes it on every shard
  /// (dead ones included — registry state is replicated so a revived shard
  /// serves immediately) under one cluster registry lock; concurrent
  /// deploys serialize, so readers never observe an interleaving of two
  /// fan-outs. Shards adopt the cluster's version id verbatim.
  void set_model(const std::string& name, std::shared_ptr<const ServableModel> model);
  /// set_model plus the drift-reference fan-out (every shard's ModelMonitor
  /// gets the same training-set sketch).
  void deploy(const DeploymentPackage& pkg);
  /// The cluster's source-of-truth registry (version ids shards replicate).
  [[nodiscard]] ModelRegistry& registry() noexcept { return registry_; }
  /// Cluster-wide atomic promote/rollback: flips the active version in the
  /// cluster registry and fans the same flip out to every shard.
  bool promote(const std::string& name, std::uint64_t id);
  std::optional<std::uint64_t> rollback(const std::string& name);
  /// Monotone fan-out epoch: bumped by every registry mutation
  /// (set_model / deploy / install_candidate / promote / rollback), the
  /// value revive_shard reconciles a rebuilt shard against.
  [[nodiscard]] std::uint64_t registry_version() const;
  [[nodiscard]] std::vector<std::string> model_names() const;

  // --- coordinated rollouts (RolloutHost) ----------------------------------
  /// The cluster registry's active version of `name`.
  [[nodiscard]] std::optional<ActiveModelInfo> active_model(
      const std::string& name) const override;
  /// Publishes a candidate version cluster-wide (same id everywhere)
  /// without promoting it.
  std::uint64_t install_candidate(
      const std::string& name, std::shared_ptr<const ServableModel> model,
      std::shared_ptr<const obs::FeatureSketch> reference, std::string origin) override;
  /// Starts the candidate shadowing live traffic on every shard
  /// (auto-finalize forced off: this coordinator owns the verdict).
  Status begin_rollout(const std::string& name, std::uint64_t candidate_version,
                       RolloutOptions opts) override;
  /// Merges the per-shard rollout snapshots (summed counts, least-advanced
  /// stage) and applies the cluster verdict: every alive shard PASSED =>
  /// promote everywhere; any shard FAILED => roll back everywhere. Each
  /// call also drives the shards' stage-deadline checks.
  std::optional<RolloutSnapshot> rollout_progress(const std::string& name) override;
  /// Side-effect-free "is a cluster rollout live for name" (tracked entries
  /// stay in the registry after conclusion, flagged concluded).
  [[nodiscard]] bool rollout_in_flight(const std::string& name) const override;
  [[nodiscard]] obs::MetricsRegistry* metrics_registry() override {
    return &cluster_metrics_;
  }
  /// Cluster-merged alert stream: every shard's AlertSink forwards here.
  [[nodiscard]] obs::AlertSink& alert_sink() override { return cluster_alerts_; }
  /// Observer fed by every shard's served rows (the Retrainer's reservoir).
  void set_sample_hook(SampleHook hook) override;

  // --- serving -------------------------------------------------------------
  /// Keyed-store inference routed by `in_key`: executes on the first alive
  /// owner of `in_key` (which holds the input locally, by replication), then
  /// re-homes the result to `out_key`'s replica set. Fails over to the next
  /// owner on kNotFound / kShuttingDown.
  [[nodiscard]] Status run_model(const std::string& name, const std::string& in_key,
                                 const std::string& out_key,
                                 PhaseAccumulator* phases = nullptr);

  /// Micro-batched single-row inference, spread round-robin over alive
  /// shards (maximum aggregate throughput; no key affinity).
  [[nodiscard]] std::future<Result<Tensor>> run_model_batched(
      const std::string& name, Tensor row, RequestOptions request = {});

  /// Micro-batched inference with consistent-hash affinity: the request
  /// lands on `routing_key`'s first alive owner, preferring owners whose
  /// breaker for `name` is not open. Requests with the same key batch on the
  /// same shard.
  [[nodiscard]] std::future<Result<Tensor>> run_model_batched(
      const std::string& name, Tensor row, const std::string& routing_key,
      RequestOptions request = {});

  /// Force-drains partial micro-batches on every alive shard.
  void flush_batches();

  // --- failure handling ----------------------------------------------------
  /// Simulates an abrupt shard death: the router stops sending it traffic,
  /// then the shard drains so everything it had already accepted still
  /// resolves. Idempotent.
  void fail_shard(std::size_t i);
  /// Rebuilds the failed shard's Orchestrator from scratch and re-syncs the
  /// replicated registry onto it. Its store rejoins empty (replicas keep
  /// serving its keys; entries repopulate on subsequent puts).
  void revive_shard(std::size_t i);

  // --- exposition ----------------------------------------------------------
  /// Starts (idempotently) the embedded HTTP exposition server
  /// (docs/OBSERVABILITY.md) bound to 127.0.0.1:`port` (0 = ephemeral — read
  /// the real one off the returned server) serving:
  ///   /metrics — cluster-merged OpenMetrics text with exemplars + `# EOF`
  ///   /healthz — liveness JSON; 200 while >= 1 shard is alive, else 503
  ///   /slo     — per-shard SLO burn-rate verdicts as JSON
  ///   /tracez  — the tracer's recent-span ring as Chrome trace JSON
  /// The server drains on cluster destruction (before the shards it reads).
  obs::HttpServer& serve_exposition(std::uint16_t port = 0);

  // --- aggregate health -----------------------------------------------------
  [[nodiscard]] ClusterHealth cluster_health();
  /// Modeled accelerator-busy seconds accumulated by shard `i`.
  [[nodiscard]] double device_seconds(std::size_t i);
  [[nodiscard]] std::uint64_t failovers() const;
  [[nodiscard]] std::uint64_t breaker_reroutes() const;

  /// Graceful cluster shutdown: drains every shard (pending work resolves,
  /// new work is refused with kShuttingDown). Idempotent.
  void drain();

  [[nodiscard]] const ClusterOptions& options() const noexcept { return opts_; }

 private:
  /// One coordinated rollout's cluster-side bookkeeping (guarded by
  /// registry_mu_). `last` keeps the final merged snapshot after the
  /// verdict so rollout_progress outlives conclusion.
  struct ClusterRollout {
    std::uint64_t version = 0;
    RolloutOptions opts;
    bool concluded = false;
    RolloutSnapshot last;
  };

  /// Wires a shard into the cluster-level health plane: alert forwarding
  /// into cluster_alerts_ and the sample-hook relay.
  void wire_shard(Orchestrator& orc);

  /// Applies the cluster verdict for `name` to every shard and the cluster
  /// registry. Caller holds registry_mu_.
  void conclude_rollout_locked(const std::string& name, ClusterRollout& cr,
                               bool promote_candidate, const std::string& reason);

  /// Submits to the candidate shards in order, transparently resubmitting
  /// when a submit comes back immediately-ready with kShuttingDown (the
  /// kill race — see the header comment).
  [[nodiscard]] std::future<Result<Tensor>> submit_failover(
      const std::vector<std::size_t>& candidates, const std::string& name,
      const Tensor& row, const RequestOptions& request);

  /// Candidates reordered so shards whose breaker for `name` is OPEN come
  /// last (a fully-open set still serves via the per-shard fallback path).
  [[nodiscard]] std::vector<std::size_t> prefer_closed_breakers(
      std::vector<std::size_t> candidates, const std::string& name);

  void set_alive_gauges();

  /// Copies one shard's pointer under the shared lock (the Orchestrator
  /// stays alive while any caller still holds the copy, even across revive).
  [[nodiscard]] std::shared_ptr<Orchestrator> shard_ptr(std::size_t i) const;

  ClusterOptions opts_;
  ShardRouter router_;
  // cluster_alerts_ and the hook slots are declared before shards_: shard
  // callbacks raise into / read them, so they must outlive the shards.
  obs::AlertSink cluster_alerts_;
  mutable std::mutex hook_mu_;
  SampleHook sample_hook_;
  std::atomic<bool> hook_set_{false};
  std::vector<std::shared_ptr<Orchestrator>> shards_;
  mutable std::shared_mutex shards_mu_;  ///< guards the shard pointers (revive swaps)

  mutable std::mutex registry_mu_;  ///< serializes fan-outs + rollout verdicts
  ModelRegistry registry_;          ///< cluster source of truth (version ids)
  std::map<std::string, ClusterRollout> cluster_rollouts_;
  std::uint64_t registry_version_ = 0;

  std::atomic<std::uint64_t> rr_{0};  ///< round-robin cursor (batched path)
  Timer uptime_;

  obs::MetricsRegistry cluster_metrics_;
  obs::Counter& failovers_;
  obs::Counter& breaker_reroutes_;
  obs::Counter& shard_failures_;
  obs::Gauge& shards_alive_gauge_;
  obs::Gauge& shards_total_gauge_;

  /// Span sink for the cluster-level request spans (route/failover); the
  /// shards share it (shard_opts.tracer), so one trace id crosses the
  /// router -> shard -> batch hops. Never null.
  obs::Tracer* tracer_;
  std::atomic<std::uint64_t> trace_ticker_{0};  ///< cluster head-sampling

  /// Declared after shards_ so it is destroyed (and drained) first — its
  /// handlers read the shards and the tracer.
  std::mutex http_mu_;
  std::unique_ptr<obs::HttpServer> http_;
};

}  // namespace ahn::runtime
