#include "runtime/fault_injector.hpp"

namespace ahn::runtime {

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {}

void FaultInjector::set_spec(const FaultSpec& spec) {
  const std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
}

FaultSpec FaultInjector::spec() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spec_;
}

double FaultInjector::draw_latency_spike(ServingPhase /*phase*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (spec_.latency_spike_prob <= 0.0 || !rng_.bernoulli(spec_.latency_spike_prob)) {
    return 0.0;
  }
  ++counts_[static_cast<std::size_t>(FaultKind::kLatencySpike)];
  return spec_.latency_spike_seconds;
}

bool FaultInjector::draw_transient(ServingPhase /*phase*/) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (spec_.transient_prob <= 0.0 || !rng_.bernoulli(spec_.transient_prob)) {
    return false;
  }
  ++counts_[static_cast<std::size_t>(FaultKind::kTransient)];
  return true;
}

bool FaultInjector::draw_nan_corruption() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (spec_.nan_prob <= 0.0 || !rng_.bernoulli(spec_.nan_prob)) return false;
  ++counts_[static_cast<std::size_t>(FaultKind::kNanCorruption)];
  return true;
}

bool FaultInjector::draw_batch_drop() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (spec_.batch_drop_prob <= 0.0 || !rng_.bernoulli(spec_.batch_drop_prob)) {
    return false;
  }
  ++counts_[static_cast<std::size_t>(FaultKind::kBatchDrop)];
  return true;
}

std::size_t FaultInjector::draw_row(std::size_t rows) {
  const std::lock_guard<std::mutex> lock(mu_);
  return rows == 0 ? 0 : static_cast<std::size_t>(rng_.uniform_index(rows));
}

std::uint64_t FaultInjector::injected(FaultKind kind) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counts_[static_cast<std::size_t>(kind)];
}

std::uint64_t FaultInjector::total_injected() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const std::uint64_t c : counts_) n += c;
  return n;
}

}  // namespace ahn::runtime
