#pragma once
// Customized autoencoder for feature reduction (§4). Hourglass encoder +
// horn-shaped decoder trained jointly; the encoder output is the reduced
// feature vector fed to the surrogate NAS. Customizations from the paper:
//
//  * sparse first layer — CSR inputs are consumed directly through the
//    sparse matmul path (the "TensorFlow embedding API" equivalent), so no
//    unroll to dense happens at training or online encoding time;
//  * gradient-checkpointed offline training (§4.2's GPU-memory workaround);
//  * an error-bounded, element-wise reconstruction quality metric (Eqn 1)
//    computed on the fly, with a user-configured lower bound that gates the
//    encoding ("encodingLoss" knob of Table 1).

#include <iosfwd>
#include <optional>

#include "nn/network.hpp"
#include "nn/train.hpp"
#include "sparse/formats.hpp"

namespace ahn::autoencoder {

/// Eqn 1: fraction of elements whose reconstruction differs from the
/// original by more than mu * |x_i| (with an absolute epsilon for exact
/// zeros, which sparse inputs are full of).
[[nodiscard]] double relative_miss_fraction(const Tensor& original,
                                            const Tensor& reconstruction, double mu,
                                            double zero_tol = 1e-6);

struct AutoencoderConfig {
  std::size_t latent_dim = 16;        ///< reduced feature count (set by outer BO)
  std::size_t hidden_dim = 0;         ///< 0 = geometric mean of in/latent
  std::size_t epochs = 60;
  std::size_t batch_size = 32;
  double lr = 1e-3;
  double mu = 0.1;                    ///< Eqn 1 scaling factor
  double encoding_loss_bound = 0.2;   ///< acceptable miss fraction (Table 1)
  std::size_t checkpoint_segments = 4;///< gradient checkpointing granularity
  std::uint64_t seed = 7;
};

struct AutoencoderReport {
  double final_train_loss = 0.0;
  double miss_fraction = 0.0;  ///< Eqn 1 on the training matrix
  bool meets_bound = false;
  std::size_t epochs_run = 0;
};

class Autoencoder {
 public:
  /// Builds the hourglass for `input_dim` features.
  Autoencoder(std::size_t input_dim, AutoencoderConfig config);

  /// Offline training on dense rows (samples x input_dim). Uses gradient
  /// checkpointing when config.checkpoint_segments > 1. Stops early once
  /// the Eqn-1 bound is met.
  AutoencoderReport train(const Tensor& data);

  /// Offline training consuming CSR rows directly (sparse path).
  AutoencoderReport train_sparse(const sparse::Csr& data);

  /// Online feature reduction.
  [[nodiscard]] Tensor encode(const Tensor& x) const;
  [[nodiscard]] Tensor encode_sparse(const sparse::Csr& x) const;

  /// Reconstruction (decoder only / round trip).
  [[nodiscard]] Tensor decode(const Tensor& latent) const;
  [[nodiscard]] Tensor reconstruct(const Tensor& x) const;

  /// The paper's "Autoencoder.evl" quality probe: Eqn-1 miss fraction of a
  /// round trip over `x` at the configured mu.
  [[nodiscard]] double evaluate(const Tensor& x) const;
  [[nodiscard]] double evaluate_sparse(const sparse::Csr& x) const;

  [[nodiscard]] std::size_t input_dim() const noexcept { return input_dim_; }
  [[nodiscard]] std::size_t latent_dim() const noexcept { return config_.latent_dim; }
  [[nodiscard]] const AutoencoderConfig& config() const noexcept { return config_; }

  /// Analytic cost of encoding a batch (for the online-time model).
  [[nodiscard]] OpCounts encode_cost(std::size_t batch) const;

  /// Serialization (§6.1: "save and share the Autoencoder ... across
  /// applications"): weights + per-feature scale. The loader must be
  /// constructed with the identical (input_dim, config) shape.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  /// Fits the per-feature scale (max-abs, no centering so sparsity is
  /// preserved) used to condition the nonlinearities on raw HPC features.
  void fit_scale(const Tensor& data);
  void fit_scale_sparse(const sparse::Csr& data);
  [[nodiscard]] Tensor apply_scale(const Tensor& x) const;
  [[nodiscard]] sparse::Csr apply_scale(const sparse::Csr& x) const;
  [[nodiscard]] Tensor invert_scale(Tensor x) const;

  std::size_t input_dim_;
  AutoencoderConfig config_;
  nn::Network net_;               ///< encoder layers then decoder layers
  std::size_t encoder_layers_;    ///< split point inside net_
  std::vector<double> scale_;     ///< per-feature max-abs (1 when unfitted)
};

}  // namespace ahn::autoencoder
