#include "autoencoder/autoencoder.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/log.hpp"
#include "nn/optimizer.hpp"

namespace ahn::autoencoder {

double relative_miss_fraction(const Tensor& original, const Tensor& reconstruction,
                              double mu, double zero_tol) {
  AHN_CHECK(original.size() == reconstruction.size() && original.size() > 0);
  std::size_t misses = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double x = original[i];
    const double y = reconstruction[i];
    const double tol = std::max(mu * std::abs(x), zero_tol);
    if (std::abs(y - x) > tol) ++misses;
  }
  return static_cast<double>(misses) / static_cast<double>(original.size());
}

Autoencoder::Autoencoder(std::size_t input_dim, AutoencoderConfig config)
    : input_dim_(input_dim), config_(config) {
  AHN_CHECK(input_dim >= 1);
  config_.latent_dim = std::max<std::size_t>(1, std::min(config_.latent_dim, input_dim));
  std::size_t hidden = config_.hidden_dim;
  if (hidden == 0) {
    hidden = static_cast<std::size_t>(std::round(
        std::sqrt(static_cast<double>(input_dim) *
                  static_cast<double>(config_.latent_dim))));
    hidden = std::clamp<std::size_t>(hidden, config_.latent_dim, input_dim);
    hidden = std::max<std::size_t>(hidden, 4);
    // Cap the hourglass waist for very wide inputs: reconstruction quality
    // saturates well before sqrt(in * K) there, and the decoder's
    // hidden x in weight block dominates offline training cost.
    hidden = std::min<std::size_t>(hidden, 320);
  }
  config_.hidden_dim = hidden;

  scale_.assign(input_dim_, 1.0);
  Rng rng(config_.seed);
  // Encoder (hourglass): in -> hidden -> latent.
  net_.add(std::make_unique<nn::DenseLayer>(input_dim, hidden, rng));
  net_.add(std::make_unique<nn::ActivationLayer>(nn::Activation::Tanh));
  net_.add(std::make_unique<nn::DenseLayer>(hidden, config_.latent_dim, rng));
  encoder_layers_ = net_.layer_count();
  // Decoder (horn): latent -> hidden -> in.
  net_.add(std::make_unique<nn::DenseLayer>(config_.latent_dim, hidden, rng));
  net_.add(std::make_unique<nn::ActivationLayer>(nn::Activation::Tanh));
  net_.add(std::make_unique<nn::DenseLayer>(hidden, input_dim, rng));
}

void Autoencoder::fit_scale(const Tensor& data) {
  scale_.assign(input_dim_, 1.0);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < input_dim_; ++c) {
      scale_[c] = std::max(scale_[c], std::abs(data.at(r, c)));
    }
  }
}

void Autoencoder::fit_scale_sparse(const sparse::Csr& data) {
  scale_.assign(input_dim_, 1.0);
  const auto& ci = data.col_idx();
  const auto& v = data.values();
  for (std::size_t k = 0; k < v.size(); ++k) {
    scale_[ci[k]] = std::max(scale_[ci[k]], std::abs(v[k]));
  }
}

Tensor Autoencoder::apply_scale(const Tensor& x) const {
  Tensor out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < input_dim_; ++c) out.at(r, c) /= scale_[c];
  }
  return out;
}

sparse::Csr Autoencoder::apply_scale(const sparse::Csr& x) const {
  sparse::Csr out = x;
  auto& v = out.mutable_values();
  const auto& ci = out.col_idx();
  for (std::size_t k = 0; k < v.size(); ++k) v[k] /= scale_[ci[k]];
  return out;
}

Tensor Autoencoder::invert_scale(Tensor x) const {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < input_dim_; ++c) x.at(r, c) *= scale_[c];
  }
  return x;
}

namespace {

/// Shared training loop. `make_batch` yields (loss for one shuffled batch).
template <typename TrainBatchFn, typename EvalFn>
AutoencoderReport run_training(std::size_t samples, const AutoencoderConfig& cfg,
                               TrainBatchFn&& train_one_epoch, EvalFn&& eval) {
  AutoencoderReport rep;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    rep.final_train_loss = train_one_epoch(epoch);
    rep.epochs_run = epoch + 1;
    // Eqn-1 quality probe every few epochs; stop once the bound holds.
    if ((epoch + 1) % 5 == 0 || epoch + 1 == cfg.epochs) {
      rep.miss_fraction = eval();
      if (rep.miss_fraction <= cfg.encoding_loss_bound) {
        rep.meets_bound = true;
        AHN_DEBUG("autoencoder met encoding bound at epoch " << epoch + 1
                                                             << " over " << samples
                                                             << " samples");
        return rep;
      }
    }
  }
  rep.miss_fraction = eval();
  rep.meets_bound = rep.miss_fraction <= cfg.encoding_loss_bound;
  return rep;
}

}  // namespace

AutoencoderReport Autoencoder::train(const Tensor& raw_data) {
  AHN_CHECK(raw_data.rank() == 2 && raw_data.cols() == input_dim_ && raw_data.rows() >= 1);
  fit_scale(raw_data);
  const Tensor data = apply_scale(raw_data);
  nn::Adam opt(config_.lr);
  opt.bind(net_.params(), net_.grads());
  Rng rng(config_.seed ^ 0x5eedULL);

  const std::size_t n = data.rows();
  const std::size_t bs = std::max<std::size_t>(1, std::min(config_.batch_size, n));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  auto one_epoch = [&](std::size_t) {
    rng.shuffle(order);
    double loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += bs) {
      const std::size_t end = std::min(start + bs, n);
      Tensor xb({end - start, input_dim_});
      for (std::size_t i = start; i < end; ++i) {
        std::copy(data.row(order[i]).begin(), data.row(order[i]).end(),
                  xb.row(i - start).begin());
      }
      loss += net_.train_batch(xb, xb, nn::LossKind::Mse, opt,
                               config_.checkpoint_segments);
      ++batches;
    }
    return loss / static_cast<double>(std::max<std::size_t>(1, batches));
  };
  auto eval = [&] { return evaluate(raw_data); };
  return run_training(n, config_, one_epoch, eval);
}

AutoencoderReport Autoencoder::train_sparse(const sparse::Csr& raw_data) {
  AHN_CHECK(raw_data.cols() == input_dim_ && raw_data.rows() >= 1);
  fit_scale_sparse(raw_data);
  const sparse::Csr data = apply_scale(raw_data);
  nn::Adam opt(config_.lr);
  opt.bind(net_.params(), net_.grads());

  // Minibatch over contiguous CSR row slices: inputs stay compressed all
  // the way into the first layer; reconstruction targets are the dense rows
  // of each slice only (never the full matrix).
  const std::size_t n = data.rows();
  const std::size_t bs = std::max<std::size_t>(1, std::min(config_.batch_size, n));
  std::vector<sparse::Csr> batches;
  std::vector<Tensor> targets;
  for (std::size_t start = 0; start < n; start += bs) {
    const std::size_t end = std::min(start + bs, n);
    batches.push_back(data.slice_rows(start, end));
    targets.push_back(batches.back().to_dense());
  }

  auto one_epoch = [&](std::size_t) {
    double loss = 0.0;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      loss += net_.train_batch_sparse(batches[b], targets[b], nn::LossKind::Mse, opt);
    }
    return loss / static_cast<double>(batches.size());
  };
  auto eval = [&] { return evaluate_sparse(raw_data); };
  return run_training(raw_data.rows(), config_, one_epoch, eval);
}

Tensor Autoencoder::encode(const Tensor& x) const {
  return net_.predict_range(apply_scale(x), 0, encoder_layers_);
}

Tensor Autoencoder::encode_sparse(const sparse::Csr& x) const {
  return net_.predict_sparse_range(apply_scale(x), encoder_layers_);
}

Tensor Autoencoder::decode(const Tensor& latent) const {
  return invert_scale(net_.predict_range(latent, encoder_layers_, net_.layer_count()));
}

Tensor Autoencoder::reconstruct(const Tensor& x) const {
  return decode(encode(x));
}

namespace {
/// Absolute tolerance used by Eqn 1 for (near-)zero entries: a fraction of
/// the matrix's RMS magnitude, so exact zeros in sparse inputs are judged
/// at the data's scale rather than against an impossible 0-tolerance.
double zero_tolerance(const Tensor& x, double mu) {
  double rms = 0.0;
  for (double v : x.flat()) rms += v * v;
  rms = std::sqrt(rms / static_cast<double>(x.size()));
  return mu * std::max(rms, 1e-12);
}
}  // namespace

double Autoencoder::evaluate(const Tensor& x) const {
  return relative_miss_fraction(x, reconstruct(x), config_.mu, zero_tolerance(x, config_.mu));
}

double Autoencoder::evaluate_sparse(const sparse::Csr& x) const {
  const Tensor recon = decode(encode_sparse(x));
  const Tensor dense = x.to_dense();
  return relative_miss_fraction(dense, recon, config_.mu,
                                zero_tolerance(dense, config_.mu));
}

void Autoencoder::save(std::ostream& os) const {
  os.precision(17);
  os << input_dim_ << " " << config_.latent_dim << " " << config_.hidden_dim << "\n";
  for (double s : scale_) os << s << " ";
  os << "\n";
  net_.save_weights(os);
}

void Autoencoder::load(std::istream& is) {
  std::size_t in = 0, latent = 0, hidden = 0;
  is >> in >> latent >> hidden;
  AHN_CHECK_MSG(in == input_dim_ && latent == config_.latent_dim &&
                    hidden == config_.hidden_dim,
                "autoencoder shape mismatch on load");
  for (double& s : scale_) is >> s;
  net_.load_weights(is);
  AHN_CHECK_MSG(static_cast<bool>(is), "truncated autoencoder stream");
}

OpCounts Autoencoder::encode_cost(std::size_t batch) const {
  OpCounts c;
  for (std::size_t i = 0; i < encoder_layers_; ++i) {
    c += net_.layer(i).inference_cost(batch);
  }
  return c;
}

}  // namespace ahn::autoencoder
