#pragma once
// Constrained Bayesian optimization over [0,1]^d — the update / generation /
// evaluation loop of §5.2. Minimizes an objective (the paper's cost f_c)
// subject to a black-box constraint (quality degradation f_e <= epsilon),
// using Expected Improvement weighted by the GP probability of feasibility.

#include <functional>
#include <optional>

#include "common/rng.hpp"
#include "gp/gaussian_process.hpp"

namespace ahn::gp {

struct BoObservation {
  std::vector<double> x;
  double objective = 0.0;   ///< f_c — minimized
  double constraint = 0.0;  ///< f_e — must be <= threshold to be feasible
};

struct BoOptions {
  std::size_t dim = 2;
  double constraint_threshold = 0.1;  ///< epsilon on f_e
  std::size_t init_samples = 4;       ///< random designs before GP proposals
  std::size_t candidates = 256;       ///< acquisition candidates per proposal
  double exploration = 0.01;          ///< EI xi (exploration bonus)
  KernelKind kernel = KernelKind::Matern52;
};

/// Ask/tell interface: propose() yields the next x to evaluate; report the
/// measured (objective, constraint) via observe(). best_feasible() tracks
/// the incumbent.
class BayesianOptimizer {
 public:
  BayesianOptimizer(BoOptions opts, Rng rng);

  /// Next point to evaluate. The first `init_samples` calls are random
  /// (Table 1 "bayesianInit"); afterwards, constrained-EI maximization over
  /// random candidates plus local perturbations of the incumbent.
  [[nodiscard]] std::vector<double> propose();

  /// Proposes q points for concurrent evaluation using the constant-liar
  /// strategy: after each proposal the optimizer observes a fantasy outcome
  /// (the incumbent objective at the feasibility boundary), so successive
  /// proposals avoid piling onto one spot. The fantasies are removed and the
  /// models refitted on real data before returning. propose_batch(1) draws
  /// exactly the same point propose() would; propose_batch(0) returns an
  /// empty batch without consuming randomness or touching the models.
  [[nodiscard]] std::vector<std::vector<double>> propose_batch(std::size_t q);

  void observe(BoObservation obs);

  [[nodiscard]] const std::vector<BoObservation>& history() const noexcept {
    return history_;
  }

  [[nodiscard]] std::optional<BoObservation> best_feasible() const;

  /// Expected-improvement acquisition at x given the current models; exposed
  /// for tests. Returns 0 before any GP can be fitted.
  [[nodiscard]] double acquisition(std::span<const double> x) const;

  [[nodiscard]] const BoOptions& options() const noexcept { return opts_; }

 private:
  void refit();

  BoOptions opts_;
  Rng rng_;
  std::vector<BoObservation> history_;
  GaussianProcess objective_gp_;
  GaussianProcess constraint_gp_;
  bool models_ready_ = false;
};

/// Normal CDF (used by probability-of-feasibility weighting).
[[nodiscard]] double normal_cdf(double z) noexcept;

}  // namespace ahn::gp
