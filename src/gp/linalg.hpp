#pragma once
// Small dense symmetric linear algebra for the Gaussian process: Cholesky
// factorization and triangular solves. Kept separate from tensor/ops because
// these kernels are numerical-stability-sensitive and size-small (the GP
// sees at most a few hundred observations).

#include <vector>

#include "common/error.hpp"

namespace ahn::gp {

/// Lower-triangular Cholesky of a symmetric positive-definite matrix stored
/// row-major in `a` (n x n). Returns L (row-major, upper part zeroed).
/// Throws ahn::Error if the matrix is not (numerically) SPD.
[[nodiscard]] std::vector<double> cholesky(const std::vector<double>& a, std::size_t n);

/// Solves L y = b (forward substitution), L lower-triangular row-major.
[[nodiscard]] std::vector<double> solve_lower(const std::vector<double>& l, std::size_t n,
                                              const std::vector<double>& b);

/// Solves L^T x = b (backward substitution).
[[nodiscard]] std::vector<double> solve_lower_transpose(const std::vector<double>& l,
                                                        std::size_t n,
                                                        const std::vector<double>& b);

/// Solves (L L^T) x = b given the Cholesky factor.
[[nodiscard]] inline std::vector<double> solve_cholesky(const std::vector<double>& l,
                                                        std::size_t n,
                                                        const std::vector<double>& b) {
  return solve_lower_transpose(l, n, solve_lower(l, n, b));
}

/// log(det(L L^T)) = 2 * sum(log diag(L)).
[[nodiscard]] double log_det_from_cholesky(const std::vector<double>& l, std::size_t n);

}  // namespace ahn::gp
