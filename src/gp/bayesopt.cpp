#include "gp/bayesopt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace ahn::gp {

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

BayesianOptimizer::BayesianOptimizer(BoOptions opts, Rng rng)
    : opts_(opts), rng_(rng) {
  AHN_CHECK(opts_.dim >= 1);
  AHN_CHECK(opts_.init_samples >= 1);
  objective_gp_ = GaussianProcess(KernelParams{.kind = opts_.kernel});
  constraint_gp_ = GaussianProcess(KernelParams{.kind = opts_.kernel});
}

std::vector<double> BayesianOptimizer::propose() {
  if (history_.size() < opts_.init_samples || !models_ready_) {
    std::vector<double> x(opts_.dim);
    for (auto& v : x) v = rng_.uniform();
    return x;
  }

  // Candidate pool: uniform samples plus jittered copies of the incumbent
  // (local exploitation), scored by constrained EI.
  std::vector<std::vector<double>> candidates;
  candidates.reserve(opts_.candidates);
  for (std::size_t i = 0; i < opts_.candidates; ++i) {
    std::vector<double> x(opts_.dim);
    for (auto& v : x) v = rng_.uniform();
    candidates.push_back(std::move(x));
  }
  if (const auto best = best_feasible()) {
    for (std::size_t i = 0; i < opts_.candidates / 4; ++i) {
      std::vector<double> x = best->x;
      for (auto& v : x) v = std::clamp(v + rng_.gaussian(0.0, 0.1), 0.0, 1.0);
      candidates.push_back(std::move(x));
    }
  }

  double best_acq = -std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double a = acquisition(candidates[i]);
    if (a > best_acq) {
      best_acq = a;
      best_idx = i;
    }
  }
  return candidates[best_idx];
}

std::vector<std::vector<double>> BayesianOptimizer::propose_batch(std::size_t q) {
  if (q == 0) return {};  // degenerate batch: nothing proposed, Rng untouched
  std::vector<std::vector<double>> batch;
  batch.reserve(q);
  if (q == 1) {
    batch.push_back(propose());
    return batch;
  }

  // Constant-liar fantasy: pretend each pending point came back at the
  // incumbent objective, exactly on the feasibility boundary.
  double liar = 0.0;
  if (const auto best = best_feasible()) {
    liar = best->objective;
  } else if (!history_.empty()) {
    liar = std::numeric_limits<double>::infinity();
    for (const auto& h : history_) liar = std::min(liar, h.objective);
  }

  const std::size_t real = history_.size();
  for (std::size_t i = 0; i < q; ++i) {
    std::vector<double> x = propose();
    batch.push_back(x);
    observe({std::move(x), liar, opts_.constraint_threshold});
  }
  // Drop the fantasies and restore the models to the real history.
  history_.resize(real);
  if (history_.size() >= opts_.init_samples) {
    refit();
  } else {
    models_ready_ = false;
  }
  return batch;
}

void BayesianOptimizer::observe(BoObservation obs) {
  AHN_CHECK(obs.x.size() == opts_.dim);
  history_.push_back(std::move(obs));
  if (history_.size() >= opts_.init_samples) refit();
}

void BayesianOptimizer::refit() {
  std::vector<std::vector<double>> xs;
  std::vector<double> fo, fc;
  xs.reserve(history_.size());
  for (const auto& h : history_) {
    xs.push_back(h.x);
    fo.push_back(h.objective);
    fc.push_back(h.constraint);
  }
  objective_gp_.fit(xs, fo);
  constraint_gp_.fit(std::move(xs), std::move(fc));
  models_ready_ = true;
}

std::optional<BoObservation> BayesianOptimizer::best_feasible() const {
  const BoObservation* best = nullptr;
  for (const auto& h : history_) {
    if (h.constraint <= opts_.constraint_threshold &&
        (best == nullptr || h.objective < best->objective)) {
      best = &h;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

double BayesianOptimizer::acquisition(std::span<const double> x) const {
  if (!models_ready_) return 0.0;

  const auto pred = objective_gp_.predict(x);
  const double sigma = std::sqrt(pred.variance);

  // Incumbent: best feasible objective, or best objective overall when
  // nothing is feasible yet (then feasibility probability dominates).
  double f_best;
  if (const auto best = best_feasible()) {
    f_best = best->objective;
  } else {
    f_best = std::numeric_limits<double>::infinity();
    for (const auto& h : history_) f_best = std::min(f_best, h.objective);
  }

  double ei;
  if (sigma < 1e-12) {
    ei = std::max(0.0, f_best - pred.mean - opts_.exploration);
  } else {
    const double z = (f_best - pred.mean - opts_.exploration) / sigma;
    const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
    ei = (f_best - pred.mean - opts_.exploration) * normal_cdf(z) + sigma * pdf;
    ei = std::max(ei, 0.0);
  }

  // Probability the constraint GP predicts f_e <= threshold at x.
  const auto cpred = constraint_gp_.predict(x);
  const double csigma = std::sqrt(cpred.variance);
  const double pf =
      csigma < 1e-12
          ? (cpred.mean <= opts_.constraint_threshold ? 1.0 : 0.0)
          : normal_cdf((opts_.constraint_threshold - cpred.mean) / csigma);

  return ei * pf;
}

}  // namespace ahn::gp
