#include "gp/linalg.hpp"

#include <cmath>

namespace ahn::gp {

std::vector<double> cholesky(const std::vector<double>& a, std::size_t n) {
  AHN_CHECK(a.size() == n * n);
  std::vector<double> l(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= l[i * n + k] * l[j * n + k];
      if (i == j) {
        AHN_CHECK_MSG(s > 0.0, "matrix not SPD at pivot " << i << " (value " << s << ")");
        l[i * n + i] = std::sqrt(s);
      } else {
        l[i * n + j] = s / l[j * n + j];
      }
    }
  }
  return l;
}

std::vector<double> solve_lower(const std::vector<double>& l, std::size_t n,
                                const std::vector<double>& b) {
  AHN_CHECK(b.size() == n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l[i * n + k] * y[k];
    y[i] = s / l[i * n + i];
  }
  return y;
}

std::vector<double> solve_lower_transpose(const std::vector<double>& l, std::size_t n,
                                          const std::vector<double>& b) {
  AHN_CHECK(b.size() == n);
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l[k * n + i] * x[k];
    x[i] = s / l[i * n + i];
  }
  return x;
}

double log_det_from_cholesky(const std::vector<double>& l, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::log(l[i * n + i]);
  return 2.0 * s;
}

}  // namespace ahn::gp
