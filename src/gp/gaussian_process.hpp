#pragma once
// Gaussian-process regression — the probabilistic model inside both levels
// of the hierarchical Bayesian optimization (Algorithm 2's GaussianProcess()
// update step). Supports RBF and Matern-5/2 kernels with marginal-likelihood
// hyperparameter selection over a small grid (deterministic, no gradients).

#include <span>
#include <vector>

#include "common/error.hpp"

namespace ahn::gp {

enum class KernelKind { Rbf, Matern52 };

struct KernelParams {
  KernelKind kind = KernelKind::Rbf;
  double length_scale = 0.3;
  double amplitude = 1.0;
  double noise = 1e-4;
};

/// Kernel value for the distance r = ||x - x'||.
[[nodiscard]] double kernel_value(const KernelParams& p, double r) noexcept;

/// Exact GP regression with Cholesky factorization. Targets are internally
/// standardized so hyperparameter defaults behave across objective scales.
class GaussianProcess {
 public:
  explicit GaussianProcess(KernelParams params = {}) : params_(params) {}

  /// Fits on n points of dimension d. If `tune` is set, selects length scale
  /// and noise by maximizing the log marginal likelihood over a fixed grid.
  void fit(std::vector<std::vector<double>> x, std::vector<double> y, bool tune = true);

  [[nodiscard]] bool fitted() const noexcept { return !x_.empty(); }
  [[nodiscard]] std::size_t observations() const noexcept { return x_.size(); }

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };

  [[nodiscard]] Prediction predict(std::span<const double> x) const;

  /// Log marginal likelihood of the fitted data (for tests and tuning).
  [[nodiscard]] double log_marginal_likelihood() const noexcept { return lml_; }

  [[nodiscard]] const KernelParams& params() const noexcept { return params_; }

 private:
  void factorize();
  [[nodiscard]] double lml_for(const KernelParams& p) const;

  KernelParams params_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_raw_;
  std::vector<double> y_;        // standardized targets
  double y_mean_ = 0.0, y_std_ = 1.0;
  std::vector<double> chol_;     // Cholesky of K + noise I
  std::vector<double> alpha_;    // (K + noise I)^-1 y
  double lml_ = 0.0;
};

}  // namespace ahn::gp
