#include "gp/gaussian_process.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "gp/linalg.hpp"

namespace ahn::gp {

double kernel_value(const KernelParams& p, double r) noexcept {
  const double s = r / p.length_scale;
  switch (p.kind) {
    case KernelKind::Rbf:
      return p.amplitude * std::exp(-0.5 * s * s);
    case KernelKind::Matern52: {
      const double t = std::sqrt(5.0) * s;
      return p.amplitude * (1.0 + t + t * t / 3.0) * std::exp(-t);
    }
  }
  return 0.0;
}

namespace {
double distance(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}
}  // namespace

void GaussianProcess::fit(std::vector<std::vector<double>> x, std::vector<double> y,
                          bool tune) {
  AHN_CHECK(x.size() == y.size() && !x.empty());
  const std::size_t d = x.front().size();
  for (const auto& xi : x) AHN_CHECK_MSG(xi.size() == d, "ragged GP inputs");

  x_ = std::move(x);
  y_raw_ = std::move(y);

  // Standardize targets.
  y_mean_ = 0.0;
  for (double v : y_raw_) y_mean_ += v;
  y_mean_ /= static_cast<double>(y_raw_.size());
  double var = 0.0;
  for (double v : y_raw_) var += (v - y_mean_) * (v - y_mean_);
  y_std_ = std::sqrt(var / static_cast<double>(y_raw_.size()));
  if (y_std_ < 1e-12) y_std_ = 1.0;
  y_.resize(y_raw_.size());
  for (std::size_t i = 0; i < y_raw_.size(); ++i) y_[i] = (y_raw_[i] - y_mean_) / y_std_;

  if (tune && x_.size() >= 4) {
    static constexpr double kLengthGrid[] = {0.1, 0.2, 0.35, 0.6, 1.0};
    static constexpr double kNoiseGrid[] = {1e-6, 1e-4, 1e-2};
    double best = -std::numeric_limits<double>::infinity();
    KernelParams best_p = params_;
    for (double ls : kLengthGrid) {
      for (double nz : kNoiseGrid) {
        KernelParams p = params_;
        p.length_scale = ls;
        p.noise = nz;
        const double lml = lml_for(p);
        if (lml > best) {
          best = lml;
          best_p = p;
        }
      }
    }
    params_ = best_p;
  }
  factorize();
}

double GaussianProcess::lml_for(const KernelParams& p) const {
  const std::size_t n = x_.size();
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel_value(p, distance(x_[i], x_[j]));
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
    k[i * n + i] += p.noise;
  }
  std::vector<double> l;
  try {
    l = cholesky(k, n);
  } catch (const Error&) {
    return -std::numeric_limits<double>::infinity();
  }
  const std::vector<double> alpha = solve_cholesky(l, n, y_);
  double fit_term = 0.0;
  for (std::size_t i = 0; i < n; ++i) fit_term += y_[i] * alpha[i];
  return -0.5 * fit_term - 0.5 * log_det_from_cholesky(l, n) -
         0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
}

void GaussianProcess::factorize() {
  const std::size_t n = x_.size();
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel_value(params_, distance(x_[i], x_[j]));
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
    k[i * n + i] += params_.noise;
  }
  // Jitter escalation if near-singular (duplicated observations).
  double jitter = 0.0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      std::vector<double> kj = k;
      if (jitter > 0.0) {
        for (std::size_t i = 0; i < n; ++i) kj[i * n + i] += jitter;
      }
      chol_ = cholesky(kj, n);
      break;
    } catch (const Error&) {
      jitter = jitter == 0.0 ? 1e-8 : jitter * 100.0;
      AHN_CHECK_MSG(attempt < 4, "GP kernel matrix irrecoverably singular");
    }
  }
  alpha_ = solve_cholesky(chol_, n, y_);
  double fit_term = 0.0;
  for (std::size_t i = 0; i < n; ++i) fit_term += y_[i] * alpha_[i];
  lml_ = -0.5 * fit_term - 0.5 * log_det_from_cholesky(chol_, n) -
         0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
}

GaussianProcess::Prediction GaussianProcess::predict(std::span<const double> x) const {
  AHN_CHECK_MSG(fitted(), "predict before fit");
  const std::size_t n = x_.size();
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < n; ++i) {
    kstar[i] = kernel_value(params_, distance(x_[i], x));
  }
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += kstar[i] * alpha_[i];

  const std::vector<double> v = solve_lower(chol_, n, kstar);
  double var = kernel_value(params_, 0.0);
  for (double vi : v) var -= vi * vi;
  var = std::max(var, 1e-12);

  return {mean * y_std_ + y_mean_, var * y_std_ * y_std_};
}

}  // namespace ahn::gp
