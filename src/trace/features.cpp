#include "trace/features.hpp"

#include <algorithm>
#include <sstream>

namespace ahn::trace {

FeatureReport identify_features(const TraceRecorder& rec, const Dddg& dddg) {
  AHN_CHECK_MSG(!rec.in_region(), "identify_features requires a finished region");
  FeatureReport rep;

  const auto& read_after = rec.read_after_region();
  const auto& overwritten = rec.overwritten_after_region();
  bool any_post_region_access = false;
  for (std::size_t v = 0; v < rec.variable_count(); ++v) {
    if (read_after[v] || overwritten[v]) any_post_region_access = true;
  }

  for (std::size_t i = 0; i < rec.variable_count(); ++i) {
    const auto v = static_cast<VarId>(i);
    const Variable& var = rec.variable(v);
    const bool touched = dddg.loaded_vars().contains(v) || dddg.stored_vars().contains(v);
    if (!touched) continue;

    // Input: declared outside the region with an upward-exposed read (DDDG
    // root). Array grouping is implicit: v names the whole array.
    const bool is_input = var.declared_outside && dddg.root_vars().contains(v);

    // Output: stored inside the region and live afterwards. Liveness comes
    // from observed post-region reads; when the caller recorded no
    // post-region accesses at all, fall back to the DDDG leaf set (§3.1:
    // "only taking the outputs from the DDDG is not sufficient" — hence the
    // liveness + use-def combination when the information exists).
    bool is_output = false;
    if (dddg.stored_vars().contains(v) && var.declared_outside) {
      if (any_post_region_access) {
        is_output = read_after[i] && !overwritten[i];
      } else {
        is_output = dddg.leaf_vars().contains(v);
      }
    }

    if (is_input) {
      rep.inputs.push_back(v);
      rep.input_width += var.size;
    }
    if (is_output) {
      rep.outputs.push_back(v);
      rep.output_width += var.size;
    }
    if (!is_input && !is_output) rep.internals.push_back(v);
  }

  std::sort(rep.inputs.begin(), rep.inputs.end());
  std::sort(rep.outputs.begin(), rep.outputs.end());
  std::sort(rep.internals.begin(), rep.internals.end());
  return rep;
}

FeatureReport identify_features(const TraceRecorder& rec) {
  return identify_features(rec, Dddg::build(rec));
}

std::string FeatureReport::describe(const TraceRecorder& rec) const {
  std::ostringstream os;
  auto emit = [&](const char* label, const std::vector<VarId>& vars) {
    os << label << ": ";
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (i) os << ", ";
      const Variable& v = rec.variable(vars[i]);
      os << v.name;
      if (v.size > 1) os << "[" << v.size << "]";
    }
    os << "\n";
  };
  emit("inputs", inputs);
  emit("outputs", outputs);
  emit("internals", internals);
  os << "input_width=" << input_width << " output_width=" << output_width;
  return os.str();
}

}  // namespace ahn::trace
