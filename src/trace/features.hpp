#pragma once
// Input/output variable identification (§3.1 Step 2) combining the DDDG
// root/leaf sets with liveness information from the recorder (reads after
// the region) and the declared-outside attribute. Implements the paper's
// array-grouping rule: a variable is a whole array, so features never split
// arrays into unrelated scalars.

#include <string>
#include <vector>

#include "trace/dddg.hpp"
#include "trace/recorder.hpp"

namespace ahn::trace {

struct FeatureReport {
  /// Variables the surrogate must take as input features (declared outside
  /// the region, upward-exposed read inside).
  std::vector<VarId> inputs;
  /// Variables the surrogate must produce (stored in the region, live-out).
  std::vector<VarId> outputs;
  /// Region-local scratch (neither input nor output).
  std::vector<VarId> internals;

  /// Flattened feature widths after array grouping (sum of array sizes).
  std::size_t input_width = 0;
  std::size_t output_width = 0;

  [[nodiscard]] std::string describe(const TraceRecorder& rec) const;
};

/// Runs the identification pipeline on a finished region trace.
[[nodiscard]] FeatureReport identify_features(const TraceRecorder& rec, const Dddg& dddg);

/// Convenience: trace -> DDDG -> report.
[[nodiscard]] FeatureReport identify_features(const TraceRecorder& rec);

}  // namespace ahn::trace
