#pragma once
// Traced value handles. Code regions written against these types execute
// normally AND emit the dynamic instruction trace — the functional equivalent
// of running an LLVM-instrumented binary (§3.1).
//
//   TraceRecorder rec;
//   TracedArray a(rec, "A", 100, /*outside=*/true);
//   TracedScalar s(rec, "sum", /*outside=*/true);
//   rec.begin_region();
//   rec.begin_loop();
//   for (int i = 0; i < 100; ++i) { s = s + a[i]; rec.end_loop_iteration(); }
//   rec.end_loop();
//   rec.end_region();

#include <cmath>
#include <vector>

#include "trace/recorder.hpp"

namespace ahn::trace {

/// SSA-like rvalue: a runtime double plus the trace value id that produced it.
struct TracedValue {
  double v = 0.0;
  ValueId id = kNoValue;
  TraceRecorder* rec = nullptr;

  TracedValue() = default;
  TracedValue(double value, ValueId value_id, TraceRecorder& recorder) noexcept
      : v(value), id(value_id), rec(&recorder) {}

  /// Lifts a literal constant into the trace.
  static TracedValue constant(TraceRecorder& rec, double value) {
    return {value, rec.record_const(value), rec};
  }
};

namespace detail {
inline TracedValue binary(OpKind k, const TracedValue& a, const TracedValue& b,
                          double result) {
  AHN_DCHECK(a.rec != nullptr && a.rec == b.rec);
  return {result, a.rec->record_binary(k, a.id, b.id, result), *a.rec};
}
}  // namespace detail

inline TracedValue operator+(const TracedValue& a, const TracedValue& b) {
  return detail::binary(OpKind::Add, a, b, a.v + b.v);
}
inline TracedValue operator-(const TracedValue& a, const TracedValue& b) {
  return detail::binary(OpKind::Sub, a, b, a.v - b.v);
}
inline TracedValue operator*(const TracedValue& a, const TracedValue& b) {
  return detail::binary(OpKind::Mul, a, b, a.v * b.v);
}
inline TracedValue operator/(const TracedValue& a, const TracedValue& b) {
  return detail::binary(OpKind::Div, a, b, a.v / b.v);
}
inline TracedValue operator-(const TracedValue& a) {
  AHN_DCHECK(a.rec != nullptr);
  return {-a.v, a.rec->record_unary(OpKind::Neg, a.id, -a.v), *a.rec};
}
inline TracedValue tsqrt(const TracedValue& a) {
  AHN_DCHECK(a.rec != nullptr);
  const double r = std::sqrt(a.v);
  return {r, a.rec->record_unary(OpKind::Sqrt, a.id, r), *a.rec};
}
inline TracedValue tabs(const TracedValue& a) {
  AHN_DCHECK(a.rec != nullptr);
  const double r = std::abs(a.v);
  return {r, a.rec->record_unary(OpKind::Abs, a.id, r), *a.rec};
}
inline bool operator<(const TracedValue& a, const TracedValue& b) {
  (void)detail::binary(OpKind::Cmp, a, b, a.v < b.v ? 1.0 : 0.0);
  return a.v < b.v;
}

/// Named scalar variable; loads/stores are recorded.
class TracedScalar {
 public:
  TracedScalar(TraceRecorder& rec, std::string name, bool declared_outside,
               double init = 0.0)
      : rec_(&rec), var_(rec.declare(std::move(name), 1, declared_outside)),
        value_(init) {}

  /// Read: records a load.
  [[nodiscard]] TracedValue get() const {
    return {value_, rec_->record_load(var_, 0, value_), *rec_};
  }
  operator TracedValue() const { return get(); }  // NOLINT(google-explicit-constructor)

  /// Write: records a store.
  TracedScalar& operator=(const TracedValue& rhs) {
    value_ = rhs.v;
    rec_->record_store(var_, 0, rhs.id, rhs.v);
    return *this;
  }
  TracedScalar& operator=(double rhs) { return *this = TracedValue::constant(*rec_, rhs); }

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] VarId var() const noexcept { return var_; }

 private:
  TraceRecorder* rec_;
  VarId var_;
  double value_;
};

/// Named array variable; element accesses are recorded with their index.
class TracedArray {
 public:
  TracedArray(TraceRecorder& rec, std::string name, std::size_t size,
              bool declared_outside)
      : rec_(&rec), var_(rec.declare(std::move(name), size, declared_outside)),
        data_(size, 0.0) {}

  TracedArray(TraceRecorder& rec, std::string name, std::vector<double> init,
              bool declared_outside)
      : rec_(&rec), var_(rec.declare(std::move(name), init.size(), declared_outside)),
        data_(std::move(init)) {}

  class ElementRef {
   public:
    ElementRef(TracedArray& arr, std::size_t i) noexcept : arr_(arr), i_(i) {}

    /// Read access.
    [[nodiscard]] TracedValue get() const {
      return {arr_.data_[i_], arr_.rec_->record_load(arr_.var_, i_, arr_.data_[i_]),
              *arr_.rec_};
    }
    operator TracedValue() const { return get(); }  // NOLINT(google-explicit-constructor)

    /// Write access.
    ElementRef& operator=(const TracedValue& rhs) {
      arr_.data_[i_] = rhs.v;
      arr_.rec_->record_store(arr_.var_, i_, rhs.id, rhs.v);
      return *this;
    }
    ElementRef& operator=(double rhs) {
      return *this = TracedValue::constant(*arr_.rec_, rhs);
    }

   private:
    TracedArray& arr_;
    std::size_t i_;
  };

  [[nodiscard]] ElementRef operator[](std::size_t i) {
    AHN_DCHECK(i < data_.size());
    return {*this, i};
  }
  [[nodiscard]] TracedValue operator[](std::size_t i) const {
    AHN_DCHECK(i < data_.size());
    return {data_[i], rec_->record_load(var_, i, data_[i]), *rec_};
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] VarId var() const noexcept { return var_; }
  [[nodiscard]] const std::vector<double>& raw() const noexcept { return data_; }
  [[nodiscard]] std::vector<double>& raw() noexcept { return data_; }

 private:
  friend class ElementRef;
  TraceRecorder* rec_;
  VarId var_;
  std::vector<double> data_;
};

/// Arithmetic between TracedValue and plain doubles (lifted as constants).
inline TracedValue operator+(const TracedValue& a, double b) {
  return a + TracedValue::constant(*a.rec, b);
}
inline TracedValue operator*(const TracedValue& a, double b) {
  return a * TracedValue::constant(*a.rec, b);
}
inline TracedValue operator*(double a, const TracedValue& b) {
  return TracedValue::constant(*b.rec, a) * b;
}
inline TracedValue operator-(double a, const TracedValue& b) {
  return TracedValue::constant(*b.rec, a) - b;
}

}  // namespace ahn::trace
