#include "trace/recorder.hpp"

namespace ahn::trace {

const char* op_kind_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::Load: return "load";
    case OpKind::Store: return "store";
    case OpKind::Add: return "add";
    case OpKind::Sub: return "sub";
    case OpKind::Mul: return "mul";
    case OpKind::Div: return "div";
    case OpKind::Neg: return "neg";
    case OpKind::Sqrt: return "sqrt";
    case OpKind::Abs: return "abs";
    case OpKind::Cmp: return "cmp";
    case OpKind::Const: return "const";
  }
  return "?";
}

VarId TraceRecorder::declare(std::string name, std::size_t size, bool declared_outside) {
  AHN_CHECK(size >= 1);
  vars_.push_back(Variable{std::move(name), size, declared_outside});
  read_after_region_.push_back(false);
  overwritten_after_region_.push_back(false);
  return static_cast<VarId>(vars_.size() - 1);
}

void TraceRecorder::begin_region() {
  AHN_CHECK_MSG(!in_region_ && !region_done_, "region directives must nest once");
  in_region_ = true;
}

void TraceRecorder::end_region() {
  AHN_CHECK_MSG(in_region_, "end_region without begin_region");
  AHN_CHECK_MSG(loops_.empty(), "end_region inside an open loop");
  in_region_ = false;
  region_done_ = true;
}

void TraceRecorder::begin_loop() {
  if (!in_region_) return;
  LoopFrame f;
  f.first_iter_begin = trace_.size();
  f.iter_begin = trace_.size();
  loops_.push_back(std::move(f));
}

void TraceRecorder::end_loop_iteration() {
  if (!in_region_ || loops_.empty()) return;
  LoopFrame& f = loops_.back();
  if (f.in_first_iteration) {
    f.in_first_iteration = false;
    f.iter_begin = trace_.size();
    f.current_signature.clear();
    return;
  }
  if (f.compressible && f.current_signature == f.first_signature) {
    // Same control flow and same touched variables as the first iteration:
    // drop this iteration's stored instructions (§3.1 Step 1 optimization).
    trace_.resize(f.iter_begin);
    ++f.elided_iterations;
  } else {
    f.compressible = false;
  }
  f.iter_begin = trace_.size();
  f.current_signature.clear();
}

void TraceRecorder::end_loop() {
  if (!in_region_ || loops_.empty()) return;
  loops_.pop_back();
  if (!loops_.empty()) {
    // Parent sees the whole inner loop as one structural token so elision in
    // the inner loop does not desynchronize the parent's shape signature.
    loops_.back().current_signature.push_back(0xB00B5EA1F00DULL);
    if (loops_.back().in_first_iteration) {
      loops_.back().first_signature.push_back(0xB00B5EA1F00DULL);
    }
  }
}

void TraceRecorder::note_shape(OpKind kind, VarId var) {
  if (loops_.empty()) return;
  LoopFrame& f = loops_.back();
  const std::uint64_t token =
      (static_cast<std::uint64_t>(kind) << 32) ^
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(var + 1));
  if (f.in_first_iteration) {
    f.first_signature.push_back(token);
  } else {
    f.current_signature.push_back(token);
  }
}

ValueId TraceRecorder::push(Instruction inst) {
  const ValueId id = inst.kind == OpKind::Store ? kNoValue : next_value_++;
  if (inst.kind != OpKind::Store) inst.result = id;
  if (in_region_) {
    ++total_region_instructions_;
    note_shape(inst.kind, inst.var);
    trace_.push_back(inst);
  }
  return id;
}

ValueId TraceRecorder::record_load(VarId var, std::size_t elem, double value) {
  AHN_DCHECK(var >= 0 && static_cast<std::size_t>(var) < vars_.size());
  if (region_done_ && !in_region_) {
    const auto v = static_cast<std::size_t>(var);
    if (!overwritten_after_region_[v]) read_after_region_[v] = true;
    return next_value_++;
  }
  Instruction inst;
  inst.kind = OpKind::Load;
  inst.var = var;
  inst.elem = elem;
  inst.value = value;
  return push(inst);
}

void TraceRecorder::record_store(VarId var, std::size_t elem, ValueId src, double value) {
  AHN_DCHECK(var >= 0 && static_cast<std::size_t>(var) < vars_.size());
  if (region_done_ && !in_region_) {
    const auto v = static_cast<std::size_t>(var);
    // A full overwrite kills liveness only for scalars; for arrays we keep
    // the conservative answer (still live) unless the first post-region
    // access is a store to the same scalar.
    if (vars_[v].size == 1 && !read_after_region_[v]) {
      overwritten_after_region_[v] = true;
    }
    return;
  }
  Instruction inst;
  inst.kind = OpKind::Store;
  inst.var = var;
  inst.elem = elem;
  inst.lhs = src;
  inst.value = value;
  push(inst);
}

ValueId TraceRecorder::record_binary(OpKind kind, ValueId lhs, ValueId rhs, double value) {
  Instruction inst;
  inst.kind = kind;
  inst.lhs = lhs;
  inst.rhs = rhs;
  inst.value = value;
  return push(inst);
}

ValueId TraceRecorder::record_unary(OpKind kind, ValueId operand, double value) {
  Instruction inst;
  inst.kind = kind;
  inst.lhs = operand;
  inst.value = value;
  return push(inst);
}

ValueId TraceRecorder::record_const(double value) {
  Instruction inst;
  inst.kind = OpKind::Const;
  inst.value = value;
  return push(inst);
}

void TraceRecorder::clear() {
  vars_.clear();
  trace_.clear();
  loops_.clear();
  read_after_region_.clear();
  overwritten_after_region_.clear();
  next_value_ = 0;
  total_region_instructions_ = 0;
  in_region_ = false;
  region_done_ = false;
}

}  // namespace ahn::trace
