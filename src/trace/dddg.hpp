#pragma once
// Dynamic data dependency graph (§3.1 Step 2). Vertices are runtime values
// (trace value ids); edges are the instructions transforming operand values
// into result values. Loads are wired to their defining stores through
// memory (use-def chains); loads with no in-region defining store are
// upward-exposed — the root set that identifies input variables. Final
// stores never re-read in-region form the leaf set.
//
// Construction can run in parallel (the paper parallelizes DDDG building to
// make trace analysis user-friendly): the trace is partitioned into chunks,
// chunk-local def maps and unresolved loads are computed concurrently, then
// a sequential stitch resolves cross-chunk memory dependencies.

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/recorder.hpp"

namespace ahn::trace {

class Dddg {
 public:
  /// Builds from a recorded trace. `threads` = 0 uses the OpenMP default.
  static Dddg build(const TraceRecorder& rec, std::size_t threads = 0);

  /// Register-flow edges (operand value id -> result value id).
  [[nodiscard]] const std::vector<std::pair<ValueId, ValueId>>& edges() const noexcept {
    return edges_;
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  /// For each trace index of a Load: the trace index of its defining Store,
  /// or npos when upward-exposed (the use-def chain of §3.1).
  [[nodiscard]] const std::unordered_map<std::size_t, std::size_t>& use_def() const noexcept {
    return use_def_;
  }
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Variables with at least one upward-exposed load (DDDG roots).
  [[nodiscard]] const std::unordered_set<VarId>& root_vars() const noexcept {
    return root_vars_;
  }

  /// Variables whose final in-region store is never re-loaded in-region
  /// (DDDG leaves — output candidates).
  [[nodiscard]] const std::unordered_set<VarId>& leaf_vars() const noexcept {
    return leaf_vars_;
  }

  /// All variables stored to / loaded from inside the region.
  [[nodiscard]] const std::unordered_set<VarId>& stored_vars() const noexcept {
    return stored_vars_;
  }
  [[nodiscard]] const std::unordered_set<VarId>& loaded_vars() const noexcept {
    return loaded_vars_;
  }

 private:
  std::vector<std::pair<ValueId, ValueId>> edges_;
  std::unordered_map<std::size_t, std::size_t> use_def_;
  std::unordered_set<VarId> root_vars_, leaf_vars_, stored_vars_, loaded_vars_;
  std::size_t node_count_ = 0;
};

}  // namespace ahn::trace
