#pragma once
// Training-sample generation (§3.1 Step 3): run the code region N times
// under Gaussian (or uniform) perturbation of its input features and record
// (input, output) pairs as the surrogate training set.

#include <functional>

#include "common/rng.hpp"
#include "nn/train.hpp"

namespace ahn::trace {

/// The code region as a pure function over its identified features:
/// flattened inputs -> flattened outputs (widths from the FeatureReport).
using RegionFn = std::function<std::vector<double>(const std::vector<double>&)>;

enum class PerturbationKind { Gaussian, Uniform };

struct PerturbationSpec {
  PerturbationKind kind = PerturbationKind::Gaussian;
  double sigma = 0.1;       ///< Gaussian: stddev as a fraction of |base value|
  double floor_sigma = 0.01;///< absolute stddev floor for near-zero features
};

/// Generates `n` samples: X' ~ N(mu=base, sigma) per §3.1, evaluating the
/// region on each perturbed input.
[[nodiscard]] nn::Dataset generate_samples(const RegionFn& region,
                                           const std::vector<double>& base_input,
                                           std::size_t n, const PerturbationSpec& spec,
                                           Rng& rng);

}  // namespace ahn::trace
