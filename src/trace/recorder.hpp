#pragma once
// Dynamic instruction trace recording — the reproduction's stand-in for the
// paper's LLVM-Tracer instrumentation pass (§3.1 Step 1).
//
// Instead of instrumenting LLVM IR load/store instructions, application code
// regions execute against TracedScalar/TracedArray handles (trace/traced.hpp)
// that record every load, store and arithmetic op into this recorder,
// producing the same artifact the paper's tooling consumes: a dynamic trace
// whose entries carry instruction kind, operand value ids and operand values.
//
// The recorder implements the paper's trace-size optimization: inside a
// marked loop, iterations whose instruction shape (op kinds + touched
// variables) repeats the first iteration are counted but not stored.

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ahn::trace {

using VarId = std::int32_t;
using ValueId = std::int64_t;

inline constexpr VarId kNoVar = -1;
inline constexpr ValueId kNoValue = -1;

enum class OpKind : std::uint8_t {
  Load, Store, Add, Sub, Mul, Div, Neg, Sqrt, Abs, Cmp, Const
};

[[nodiscard]] const char* op_kind_name(OpKind k) noexcept;

/// One dynamic instruction. Mirrors LLVM-Tracer's per-instruction metadata:
/// instruction type, operand registers (value ids) and operand values.
struct Instruction {
  OpKind kind = OpKind::Const;
  ValueId result = kNoValue;   ///< value id produced (kNoValue for stores)
  ValueId lhs = kNoValue;      ///< first operand value id
  ValueId rhs = kNoValue;      ///< second operand value id
  VarId var = kNoVar;          ///< variable for Load/Store
  std::size_t elem = 0;        ///< element index for Load/Store
  double value = 0.0;          ///< produced/stored runtime value
};

/// Variable registered with the recorder (a scalar is an array of size 1).
struct Variable {
  std::string name;
  std::size_t size = 1;
  bool declared_outside = false;  ///< declared before the code region
};

class TraceRecorder {
 public:
  /// Registers a variable. `declared_outside` marks variables that exist
  /// before the code region begins (candidate inputs/outputs).
  VarId declare(std::string name, std::size_t size, bool declared_outside);

  [[nodiscard]] const Variable& variable(VarId v) const {
    AHN_CHECK(v >= 0 && static_cast<std::size_t>(v) < vars_.size());
    return vars_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::size_t variable_count() const noexcept { return vars_.size(); }

  /// Region annotation (the paper's two user directives, §6.1).
  void begin_region();
  void end_region();
  [[nodiscard]] bool in_region() const noexcept { return in_region_; }

  /// Loop-structure hints enabling trace compression (§3.1 Step 1).
  void begin_loop();
  void end_loop_iteration();
  void end_loop();

  // -- recording (called by TracedScalar/TracedArray) --
  ValueId record_load(VarId var, std::size_t elem, double value);
  void record_store(VarId var, std::size_t elem, ValueId src, double value);
  ValueId record_binary(OpKind kind, ValueId lhs, ValueId rhs, double value);
  ValueId record_unary(OpKind kind, ValueId operand, double value);
  ValueId record_const(double value);

  /// Stored region-trace (possibly loop-compressed).
  [[nodiscard]] const std::vector<Instruction>& instructions() const noexcept {
    return trace_;
  }

  /// Total dynamic instructions executed in-region (including those elided
  /// by loop compression); compression ratio = total / stored.
  [[nodiscard]] std::uint64_t total_region_instructions() const noexcept {
    return total_region_instructions_;
  }
  [[nodiscard]] double compression_ratio() const noexcept {
    return trace_.empty()
               ? 1.0
               : static_cast<double>(total_region_instructions_) /
                     static_cast<double>(trace_.size());
  }

  /// Variables loaded after end_region() — the post-region read set used by
  /// liveness analysis to find live-out outputs.
  [[nodiscard]] const std::vector<bool>& read_after_region() const noexcept {
    return read_after_region_;
  }
  /// Variables stored after end_region() before being read (their in-region
  /// value is dead even if read later).
  [[nodiscard]] const std::vector<bool>& overwritten_after_region() const noexcept {
    return overwritten_after_region_;
  }

  void clear();

 private:
  struct LoopFrame {
    // Signature of the first iteration: (kind, var) pairs hashed.
    std::vector<std::uint64_t> first_signature;
    std::vector<std::uint64_t> current_signature;
    std::size_t first_iter_begin = 0;   ///< trace index of first iteration
    std::size_t iter_begin = 0;         ///< trace index of current iteration
    bool in_first_iteration = true;
    bool compressible = true;
    std::uint64_t elided_iterations = 0;
  };

  ValueId push(Instruction inst);
  void note_shape(OpKind kind, VarId var);

  std::vector<Variable> vars_;
  std::vector<Instruction> trace_;
  std::vector<LoopFrame> loops_;
  std::vector<bool> read_after_region_;
  std::vector<bool> overwritten_after_region_;
  ValueId next_value_ = 0;
  std::uint64_t total_region_instructions_ = 0;
  bool in_region_ = false;
  bool region_done_ = false;
};

}  // namespace ahn::trace
