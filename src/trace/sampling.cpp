#include "trace/sampling.hpp"

#include <cmath>

namespace ahn::trace {

nn::Dataset generate_samples(const RegionFn& region, const std::vector<double>& base_input,
                             std::size_t n, const PerturbationSpec& spec, Rng& rng) {
  AHN_CHECK(n >= 1 && !base_input.empty());

  std::vector<std::vector<double>> xs, ys;
  xs.reserve(n);
  ys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x = base_input;
    for (double& v : x) {
      const double sigma = std::max(spec.sigma * std::abs(v), spec.floor_sigma);
      switch (spec.kind) {
        case PerturbationKind::Gaussian: v = rng.gaussian(v, sigma); break;
        case PerturbationKind::Uniform: v = rng.uniform(v - sigma, v + sigma); break;
      }
    }
    std::vector<double> y = region(x);
    AHN_CHECK_MSG(!y.empty(), "region returned no outputs");
    if (!ys.empty()) AHN_CHECK_MSG(y.size() == ys.front().size(), "ragged region outputs");
    xs.push_back(std::move(x));
    ys.push_back(std::move(y));
  }

  nn::Dataset data;
  data.x = Tensor({n, xs.front().size()});
  data.y = Tensor({n, ys.front().size()});
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(xs[i].begin(), xs[i].end(), data.x.row(i).begin());
    std::copy(ys[i].begin(), ys[i].end(), data.y.row(i).begin());
  }
  return data;
}

}  // namespace ahn::trace
