#include "trace/dddg.hpp"

#include <omp.h>

#include <algorithm>

namespace ahn::trace {

namespace {

/// Packs (var, elem) into one map key.
[[nodiscard]] std::uint64_t cell_key(VarId var, std::size_t elem) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(var)) << 32) |
         (elem & 0xffffffffULL);
}

struct ChunkResult {
  // Last store per memory cell within the chunk.
  std::unordered_map<std::uint64_t, std::size_t> last_store;
  // Loads whose defining store is not inside this chunk: (trace idx, cell).
  std::vector<std::pair<std::size_t, std::uint64_t>> unresolved_loads;
  // Register-flow edges local to the chunk (value ids are global, so these
  // are final as-is).
  std::vector<std::pair<ValueId, ValueId>> edges;
  // Use-def entries fully resolved inside the chunk.
  std::vector<std::pair<std::size_t, std::size_t>> resolved_use_def;
};

}  // namespace

Dddg Dddg::build(const TraceRecorder& rec, std::size_t threads) {
  const std::vector<Instruction>& trace = rec.instructions();
  Dddg g;
  if (trace.empty()) return g;

  const std::size_t hw = threads > 0
                             ? threads
                             : static_cast<std::size_t>(omp_get_max_threads());
  const std::size_t n = trace.size();
  const std::size_t chunks = std::max<std::size_t>(1, std::min(hw, (n + 1023) / 1024));
  std::vector<ChunkResult> results(chunks);

  // Phase 1 (parallel): per-chunk local analysis.
#pragma omp parallel for schedule(static) num_threads(static_cast<int>(chunks))
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    ChunkResult& r = results[c];
    for (std::size_t i = begin; i < end; ++i) {
      const Instruction& inst = trace[i];
      switch (inst.kind) {
        case OpKind::Load: {
          const std::uint64_t key = cell_key(inst.var, inst.elem);
          const auto it = r.last_store.find(key);
          if (it != r.last_store.end()) {
            r.resolved_use_def.emplace_back(i, it->second);
            // Memory RAW edge: stored value -> loaded value.
            const ValueId stored = trace[it->second].lhs;
            if (stored != kNoValue) r.edges.emplace_back(stored, inst.result);
          } else {
            r.unresolved_loads.emplace_back(i, key);
          }
          break;
        }
        case OpKind::Store:
          r.last_store[cell_key(inst.var, inst.elem)] = i;
          break;
        default:
          if (inst.lhs != kNoValue) r.edges.emplace_back(inst.lhs, inst.result);
          if (inst.rhs != kNoValue) r.edges.emplace_back(inst.rhs, inst.result);
          break;
      }
    }
  }

  // Phase 2 (sequential stitch): resolve cross-chunk loads left-to-right.
  std::unordered_map<std::uint64_t, std::size_t> global_last_store;
  for (std::size_t c = 0; c < chunks; ++c) {
    ChunkResult& r = results[c];
    for (const auto& [load_idx, key] : r.unresolved_loads) {
      const auto it = global_last_store.find(key);
      if (it != global_last_store.end()) {
        g.use_def_[load_idx] = it->second;
        const ValueId stored = trace[it->second].lhs;
        if (stored != kNoValue) {
          g.edges_.emplace_back(stored, trace[load_idx].result);
        }
      } else {
        g.use_def_[load_idx] = npos;  // upward-exposed: a DDDG root
        g.root_vars_.insert(trace[load_idx].var);
      }
    }
    for (const auto& [load_idx, def_idx] : r.resolved_use_def) {
      g.use_def_[load_idx] = def_idx;
    }
    for (const auto& [key, idx] : r.last_store) {
      auto [it, inserted] = global_last_store.try_emplace(key, idx);
      if (!inserted && idx > it->second) it->second = idx;
    }
    g.edges_.insert(g.edges_.end(), r.edges.begin(), r.edges.end());
  }

  // Phase 3: classify leaves — cells whose final store is never re-loaded
  // after that store. A load at trace index j kills finality of any store
  // with index < j to the same cell only if that store is the one recorded
  // in global_last_store with a later load; detect by scanning loads once.
  std::unordered_map<std::uint64_t, std::size_t> last_load;
  for (std::size_t i = 0; i < n; ++i) {
    if (trace[i].kind == OpKind::Load) {
      last_load[cell_key(trace[i].var, trace[i].elem)] = i;
    }
    if (trace[i].kind == OpKind::Store) g.stored_vars_.insert(trace[i].var);
    if (trace[i].kind == OpKind::Load) g.loaded_vars_.insert(trace[i].var);
  }
  for (const auto& [key, store_idx] : global_last_store) {
    const auto it = last_load.find(key);
    if (it == last_load.end() || it->second < store_idx) {
      g.leaf_vars_.insert(trace[store_idx].var);
    }
  }

  // Node count: distinct value ids touched by edges plus isolated results.
  std::unordered_set<ValueId> nodes;
  for (const auto& inst : trace) {
    if (inst.result != kNoValue) nodes.insert(inst.result);
  }
  g.node_count_ = nodes.size();
  return g;
}

}  // namespace ahn::trace
