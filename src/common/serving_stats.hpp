#pragma once
// Thread-safe serving metrics for the §6.3 deployment path: request and
// batch counters, the batch-size histogram produced by the micro-batching
// queue, the §7.1 QoI-fallback tally, per-phase latency percentiles over
// the §7.3 online breakdown (fetch / encode / load / run), and the
// reliability-layer counters (injected faults, retries, deadline misses,
// shutdown rejections, circuit-breaker fallbacks and state transitions —
// docs/RELIABILITY.md).

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace ahn {

/// One request's modeled online phase latencies (§7.3 breakdown), seconds.
struct RequestPhases {
  double fetch = 0.0;
  double encode = 0.0;
  double load = 0.0;
  double run = 0.0;

  [[nodiscard]] double total() const noexcept { return fetch + encode + load + run; }
};

/// Immutable copy of the collector state at one point in time.
struct ServingStatsSnapshot {
  std::uint64_t requests_served = 0;
  std::uint64_t batches_executed = 0;
  std::uint64_t qoi_fallbacks = 0;
  std::uint64_t faults_injected = 0;       ///< total injector firings
  std::uint64_t retries = 0;               ///< transient-fault retry attempts
  std::uint64_t deadline_misses = 0;       ///< requests expired unserved
  std::uint64_t shutdown_rejections = 0;   ///< requests refused while draining
  std::uint64_t breaker_fallbacks = 0;     ///< requests routed to original code
                                           ///  by an open/half-open breaker
  std::map<std::string, std::uint64_t> fault_kinds;  ///< kind -> firings
  std::map<std::string, std::uint64_t> breaker_transitions;  ///< "a->b" -> count
  std::map<std::size_t, std::uint64_t> batch_histogram;  ///< batch size -> count

  [[nodiscard]] double mean_batch_size() const noexcept {
    return batches_executed > 0
               ? static_cast<double>(requests_served) /
                     static_cast<double>(batches_executed)
               : 0.0;
  }
};

/// Serving-side metrics collector. Every member is safe to call from any
/// client, pool, or flusher thread; readers take the same mutex as writers,
/// so snapshots are consistent (no torn counters).
class ServingStats {
 public:
  /// Records one served request and its per-phase modeled latency.
  void record_request(const RequestPhases& phases) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    fetch_.push_back(phases.fetch);
    encode_.push_back(phases.encode);
    load_.push_back(phases.load);
    run_.push_back(phases.run);
    total_.push_back(phases.total());
  }

  /// Records one executed batch of `size` coalesced requests (size >= 1).
  void record_batch(std::size_t size) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++batches_;
    ++histogram_[size];
  }

  /// Records a §7.1 QoI miss that re-ran the original code region.
  void record_qoi_fallback() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++fallbacks_;
  }

  /// Records one injected fault of `kind` ("latency_spike", "transient",
  /// "nan_corruption", "batch_drop").
  void record_fault_injected(const std::string& kind) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++faults_;
    ++fault_kinds_[kind];
  }

  /// Records one retry attempt after a transient fault.
  void record_retry() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++retries_;
  }

  /// Records one request that expired (kDeadlineExceeded) before being served.
  void record_deadline_miss() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++deadline_misses_;
  }

  /// Records one request refused with kShuttingDown.
  void record_shutdown_rejection() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++shutdown_rejections_;
  }

  /// Records one request the QoI circuit breaker routed straight to the
  /// original-code path (open or exhausted half-open state).
  void record_breaker_fallback() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++breaker_fallbacks_;
  }

  /// Records one breaker state transition, keyed "from->to".
  void record_breaker_transition(const std::string& from, const std::string& to) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++breaker_transitions_[from + "->" + to];
  }

  [[nodiscard]] std::uint64_t requests_served() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return requests_;
  }
  [[nodiscard]] std::uint64_t batches_executed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return batches_;
  }
  [[nodiscard]] std::uint64_t qoi_fallbacks() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return fallbacks_;
  }
  [[nodiscard]] std::uint64_t faults_injected() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return faults_;
  }
  [[nodiscard]] std::uint64_t retries() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return retries_;
  }
  [[nodiscard]] std::uint64_t deadline_misses() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return deadline_misses_;
  }
  [[nodiscard]] std::uint64_t shutdown_rejections() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return shutdown_rejections_;
  }
  [[nodiscard]] std::uint64_t breaker_fallbacks() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return breaker_fallbacks_;
  }
  /// Count of `from`->`to` breaker transitions recorded so far.
  [[nodiscard]] std::uint64_t breaker_transitions(const std::string& from,
                                                  const std::string& to) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = breaker_transitions_.find(from + "->" + to);
    return it == breaker_transitions_.end() ? 0 : it->second;
  }

  /// Latency percentile (p in [0, 100]) for one phase: "fetch", "encode",
  /// "load", "run" or "total". Returns 0 when no requests were recorded.
  [[nodiscard]] double latency_percentile(const std::string& phase, double p) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::vector<double>* samples = phase_samples(phase);
    AHN_CHECK_MSG(samples != nullptr, "unknown serving phase '" << phase << "'");
    if (samples->empty()) return 0.0;
    return percentile(*samples, p);  // copies; sorting must not mutate state
  }

  [[nodiscard]] ServingStatsSnapshot snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    ServingStatsSnapshot s;
    s.requests_served = requests_;
    s.batches_executed = batches_;
    s.qoi_fallbacks = fallbacks_;
    s.faults_injected = faults_;
    s.retries = retries_;
    s.deadline_misses = deadline_misses_;
    s.shutdown_rejections = shutdown_rejections_;
    s.breaker_fallbacks = breaker_fallbacks_;
    s.fault_kinds = fault_kinds_;
    s.breaker_transitions = breaker_transitions_;
    s.batch_histogram = histogram_;
    return s;
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    requests_ = batches_ = fallbacks_ = 0;
    faults_ = retries_ = deadline_misses_ = shutdown_rejections_ = 0;
    breaker_fallbacks_ = 0;
    fault_kinds_.clear();
    breaker_transitions_.clear();
    histogram_.clear();
    fetch_.clear();
    encode_.clear();
    load_.clear();
    run_.clear();
    total_.clear();
  }

 private:
  [[nodiscard]] const std::vector<double>* phase_samples(const std::string& phase) const {
    if (phase == "fetch") return &fetch_;
    if (phase == "encode") return &encode_;
    if (phase == "load") return &load_;
    if (phase == "run") return &run_;
    if (phase == "total") return &total_;
    return nullptr;
  }

  mutable std::mutex mu_;
  std::uint64_t requests_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t shutdown_rejections_ = 0;
  std::uint64_t breaker_fallbacks_ = 0;
  std::map<std::string, std::uint64_t> fault_kinds_;
  std::map<std::string, std::uint64_t> breaker_transitions_;
  std::map<std::size_t, std::uint64_t> histogram_;
  std::vector<double> fetch_, encode_, load_, run_, total_;
};

}  // namespace ahn
