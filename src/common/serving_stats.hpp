#pragma once
// Thread-safe serving metrics for the §6.3 deployment path: request and
// batch counters, the batch-size histogram produced by the micro-batching
// queue, the §7.1 QoI-fallback tally, per-phase latency percentiles over
// the §7.3 online breakdown (fetch / encode / load / run), and the
// reliability-layer counters (injected faults, retries, deadline misses,
// shutdown rejections, circuit-breaker fallbacks and state transitions —
// docs/RELIABILITY.md).
//
// Built on the obs metrics registry (docs/OBSERVABILITY.md): scalar tallies
// are lock-free obs::Counters and per-phase latencies land in fixed-bucket
// obs::LatencyHistograms, so memory stays constant under sustained serving
// and a percentile read never stalls a recording thread. The raw per-phase
// sample vectors of the original implementation survive only behind the
// opt-in set_exact_samples(true) debug mode.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"

namespace ahn {

/// One request's modeled online phase latencies (§7.3 breakdown), seconds.
struct RequestPhases {
  double fetch = 0.0;
  double encode = 0.0;
  double load = 0.0;
  double run = 0.0;

  [[nodiscard]] double total() const noexcept { return fetch + encode + load + run; }
};

/// Immutable copy of the collector state at one point in time.
struct ServingStatsSnapshot {
  std::uint64_t requests_served = 0;
  std::uint64_t batches_executed = 0;
  std::uint64_t qoi_fallbacks = 0;
  std::uint64_t faults_injected = 0;       ///< total injector firings
  std::uint64_t retries = 0;               ///< transient-fault retry attempts
  std::uint64_t deadline_misses = 0;       ///< requests expired unserved
  std::uint64_t shutdown_rejections = 0;   ///< requests refused while draining
  std::uint64_t breaker_fallbacks = 0;     ///< requests routed to original code
                                           ///  by an open/half-open breaker
  std::map<std::string, std::uint64_t> fault_kinds;  ///< kind -> firings
  std::map<std::string, std::uint64_t> breaker_transitions;  ///< "a->b" -> count
  std::map<std::size_t, std::uint64_t> batch_histogram;  ///< batch size -> count

  [[nodiscard]] double mean_batch_size() const noexcept {
    return batches_executed > 0
               ? static_cast<double>(requests_served) /
                     static_cast<double>(batches_executed)
               : 0.0;
  }
};

/// Serving-side metrics collector. Every member is safe to call from any
/// client, pool, or flusher thread. Recording is lock-free for the hot path
/// (request counters + latency histograms); only the keyed maps (fault
/// kinds, breaker transitions, batch sizes) and the optional exact-sample
/// vectors take a mutex. Each counter/histogram read is untorn, but a
/// snapshot taken while recorders run may straddle concurrent updates by a
/// request or two — the price of never blocking the serving path.
class ServingStats {
 public:
  ServingStats()
      : requests_(registry_.counter("serving.requests_served")),
        batches_(registry_.counter("serving.batches_executed")),
        fallbacks_(registry_.counter("serving.qoi_fallbacks")),
        faults_(registry_.counter("serving.faults_injected")),
        retries_(registry_.counter("serving.retries")),
        deadline_misses_(registry_.counter("serving.deadline_misses")),
        shutdown_rejections_(registry_.counter("serving.shutdown_rejections")),
        breaker_fallbacks_(registry_.counter("serving.breaker_fallbacks")),
        fetch_hist_(registry_.histogram("serving.latency.fetch")),
        encode_hist_(registry_.histogram("serving.latency.encode")),
        load_hist_(registry_.histogram("serving.latency.load")),
        run_hist_(registry_.histogram("serving.latency.run")),
        total_hist_(registry_.histogram("serving.latency.total")) {}

  ServingStats(const ServingStats&) = delete;
  ServingStats& operator=(const ServingStats&) = delete;

  /// The registry every tally and histogram lives in, for obs::export_json
  /// and for merging into a process-wide view.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return registry_;
  }

  /// Debug mode: additionally keep every raw per-phase sample (unbounded
  /// memory!) so latency_percentile is exact instead of bucket-resolution.
  /// Off by default; intended for tests and short diagnostic runs.
  void set_exact_samples(bool on) {
    exact_samples_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool exact_samples() const noexcept {
    return exact_samples_.load(std::memory_order_relaxed);
  }

  /// Records one served request and its per-phase modeled latency. A
  /// nonzero `trace_id` stamps an exemplar on each histogram bucket the
  /// request lands in, linking scraped latency buckets to captured traces.
  void record_request(const RequestPhases& phases, std::uint64_t trace_id = 0) {
    requests_.increment();
    fetch_hist_.record(phases.fetch, trace_id);
    encode_hist_.record(phases.encode, trace_id);
    load_hist_.record(phases.load, trace_id);
    run_hist_.record(phases.run, trace_id);
    total_hist_.record(phases.total(), trace_id);
    if (exact_samples()) {
      const std::lock_guard<std::mutex> lock(mu_);
      fetch_.push_back(phases.fetch);
      encode_.push_back(phases.encode);
      load_.push_back(phases.load);
      run_.push_back(phases.run);
      total_.push_back(phases.total());
    }
  }

  /// Records one executed batch of `size` coalesced requests (size >= 1).
  void record_batch(std::size_t size) {
    batches_.increment();
    const std::lock_guard<std::mutex> lock(mu_);
    ++histogram_[size];
  }

  /// Records a §7.1 QoI miss that re-ran the original code region.
  void record_qoi_fallback() { fallbacks_.increment(); }

  /// Records one injected fault of `kind` ("latency_spike", "transient",
  /// "nan_corruption", "batch_drop").
  void record_fault_injected(const std::string& kind) {
    faults_.increment();
    registry_.counter("serving.fault." + kind).increment();
    const std::lock_guard<std::mutex> lock(mu_);
    ++fault_kinds_[kind];
  }

  /// Records one retry attempt after a transient fault.
  void record_retry() { retries_.increment(); }

  /// Records one request that expired (kDeadlineExceeded) before being served.
  void record_deadline_miss() { deadline_misses_.increment(); }

  /// Records one request refused with kShuttingDown.
  void record_shutdown_rejection() { shutdown_rejections_.increment(); }

  /// Records one request the QoI circuit breaker routed straight to the
  /// original-code path (open or exhausted half-open state).
  void record_breaker_fallback() { breaker_fallbacks_.increment(); }

  /// Records one breaker state transition, keyed "from->to". Also emits a
  /// structured log line; when the transition happens inside a serving span
  /// (batch execution, a client's admit), the line carries that trace id.
  void record_breaker_transition(const std::string& from, const std::string& to) {
    const std::string key = from + "->" + to;
    registry_.counter("serving.breaker_transition." + key).increment();
    AHN_INFO_C("breaker", "transition " << key);
    const std::lock_guard<std::mutex> lock(mu_);
    ++breaker_transitions_[key];
  }

  [[nodiscard]] std::uint64_t requests_served() const { return requests_.value(); }
  [[nodiscard]] std::uint64_t batches_executed() const { return batches_.value(); }
  [[nodiscard]] std::uint64_t qoi_fallbacks() const { return fallbacks_.value(); }
  [[nodiscard]] std::uint64_t faults_injected() const { return faults_.value(); }
  [[nodiscard]] std::uint64_t retries() const { return retries_.value(); }
  [[nodiscard]] std::uint64_t deadline_misses() const {
    return deadline_misses_.value();
  }
  [[nodiscard]] std::uint64_t shutdown_rejections() const {
    return shutdown_rejections_.value();
  }
  [[nodiscard]] std::uint64_t breaker_fallbacks() const {
    return breaker_fallbacks_.value();
  }
  /// Count of `from`->`to` breaker transitions recorded so far.
  [[nodiscard]] std::uint64_t breaker_transitions(const std::string& from,
                                                  const std::string& to) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = breaker_transitions_.find(from + "->" + to);
    return it == breaker_transitions_.end() ? 0 : it->second;
  }

  /// Latency percentile (p in [0, 100]) for one phase: "fetch", "encode",
  /// "load", "run" or "total". Returns 0 when no requests were recorded.
  /// Reads the fixed-bucket histogram (bucket-resolution, lock-free with
  /// respect to recorders); in exact-samples debug mode it copies the raw
  /// samples out under the lock and sorts the copy outside it, so even the
  /// exact path never holds the collector mutex through an O(n log n) sort.
  [[nodiscard]] double latency_percentile(const std::string& phase, double p) const {
    if (exact_samples()) {
      std::vector<double> samples;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        const std::vector<double>* exact = exact_phase_samples(phase);
        AHN_CHECK_MSG(exact != nullptr, "unknown serving phase '" << phase << "'");
        samples = *exact;  // copy out; sort happens outside the lock
      }
      return samples.empty() ? 0.0 : percentile(std::move(samples), p);
    }
    const obs::LatencyHistogram* hist = phase_histogram(phase);
    AHN_CHECK_MSG(hist != nullptr, "unknown serving phase '" << phase << "'");
    return hist->percentile(p);
  }

  /// The live histogram behind one phase (see latency_percentile for names).
  [[nodiscard]] const obs::LatencyHistogram& latency_histogram(
      const std::string& phase) const {
    const obs::LatencyHistogram* hist = phase_histogram(phase);
    AHN_CHECK_MSG(hist != nullptr, "unknown serving phase '" << phase << "'");
    return *hist;
  }

  [[nodiscard]] ServingStatsSnapshot snapshot() const {
    ServingStatsSnapshot s;
    s.requests_served = requests_.value();
    s.batches_executed = batches_.value();
    s.qoi_fallbacks = fallbacks_.value();
    s.faults_injected = faults_.value();
    s.retries = retries_.value();
    s.deadline_misses = deadline_misses_.value();
    s.shutdown_rejections = shutdown_rejections_.value();
    s.breaker_fallbacks = breaker_fallbacks_.value();
    const std::lock_guard<std::mutex> lock(mu_);
    s.fault_kinds = fault_kinds_;
    s.breaker_transitions = breaker_transitions_;
    s.batch_histogram = histogram_;
    return s;
  }

  void reset() {
    registry_.reset();
    const std::lock_guard<std::mutex> lock(mu_);
    fault_kinds_.clear();
    breaker_transitions_.clear();
    histogram_.clear();
    fetch_.clear();
    encode_.clear();
    load_.clear();
    run_.clear();
    total_.clear();
  }

 private:
  [[nodiscard]] const obs::LatencyHistogram* phase_histogram(
      const std::string& phase) const {
    if (phase == "fetch") return &fetch_hist_;
    if (phase == "encode") return &encode_hist_;
    if (phase == "load") return &load_hist_;
    if (phase == "run") return &run_hist_;
    if (phase == "total") return &total_hist_;
    return nullptr;
  }

  [[nodiscard]] const std::vector<double>* exact_phase_samples(
      const std::string& phase) const {
    if (phase == "fetch") return &fetch_;
    if (phase == "encode") return &encode_;
    if (phase == "load") return &load_;
    if (phase == "run") return &run_;
    if (phase == "total") return &total_;
    return nullptr;
  }

  obs::MetricsRegistry registry_;
  obs::Counter& requests_;
  obs::Counter& batches_;
  obs::Counter& fallbacks_;
  obs::Counter& faults_;
  obs::Counter& retries_;
  obs::Counter& deadline_misses_;
  obs::Counter& shutdown_rejections_;
  obs::Counter& breaker_fallbacks_;
  obs::LatencyHistogram& fetch_hist_;
  obs::LatencyHistogram& encode_hist_;
  obs::LatencyHistogram& load_hist_;
  obs::LatencyHistogram& run_hist_;
  obs::LatencyHistogram& total_hist_;

  std::atomic<bool> exact_samples_{false};

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> fault_kinds_;
  std::map<std::string, std::uint64_t> breaker_transitions_;
  std::map<std::size_t, std::uint64_t> histogram_;
  std::vector<double> fetch_, encode_, load_, run_, total_;  ///< exact mode only
};

}  // namespace ahn
