#pragma once
// Thread-safe serving metrics for the §6.3 deployment path: request and
// batch counters, the batch-size histogram produced by the micro-batching
// queue, the §7.1 QoI-fallback tally, and per-phase latency percentiles over
// the §7.3 online breakdown (fetch / encode / load / run).

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace ahn {

/// One request's modeled online phase latencies (§7.3 breakdown), seconds.
struct RequestPhases {
  double fetch = 0.0;
  double encode = 0.0;
  double load = 0.0;
  double run = 0.0;

  [[nodiscard]] double total() const noexcept { return fetch + encode + load + run; }
};

/// Immutable copy of the collector state at one point in time.
struct ServingStatsSnapshot {
  std::uint64_t requests_served = 0;
  std::uint64_t batches_executed = 0;
  std::uint64_t qoi_fallbacks = 0;
  std::map<std::size_t, std::uint64_t> batch_histogram;  ///< batch size -> count

  [[nodiscard]] double mean_batch_size() const noexcept {
    return batches_executed > 0
               ? static_cast<double>(requests_served) /
                     static_cast<double>(batches_executed)
               : 0.0;
  }
};

/// Serving-side metrics collector. Every member is safe to call from any
/// client, pool, or flusher thread; readers take the same mutex as writers,
/// so snapshots are consistent (no torn counters).
class ServingStats {
 public:
  /// Records one served request and its per-phase modeled latency.
  void record_request(const RequestPhases& phases) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    fetch_.push_back(phases.fetch);
    encode_.push_back(phases.encode);
    load_.push_back(phases.load);
    run_.push_back(phases.run);
    total_.push_back(phases.total());
  }

  /// Records one executed batch of `size` coalesced requests (size >= 1).
  void record_batch(std::size_t size) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++batches_;
    ++histogram_[size];
  }

  /// Records a §7.1 QoI miss that re-ran the original code region.
  void record_qoi_fallback() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++fallbacks_;
  }

  [[nodiscard]] std::uint64_t requests_served() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return requests_;
  }
  [[nodiscard]] std::uint64_t batches_executed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return batches_;
  }
  [[nodiscard]] std::uint64_t qoi_fallbacks() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return fallbacks_;
  }

  /// Latency percentile (p in [0, 100]) for one phase: "fetch", "encode",
  /// "load", "run" or "total". Returns 0 when no requests were recorded.
  [[nodiscard]] double latency_percentile(const std::string& phase, double p) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::vector<double>* samples = phase_samples(phase);
    AHN_CHECK_MSG(samples != nullptr, "unknown serving phase '" << phase << "'");
    if (samples->empty()) return 0.0;
    return percentile(*samples, p);  // copies; sorting must not mutate state
  }

  [[nodiscard]] ServingStatsSnapshot snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    ServingStatsSnapshot s;
    s.requests_served = requests_;
    s.batches_executed = batches_;
    s.qoi_fallbacks = fallbacks_;
    s.batch_histogram = histogram_;
    return s;
  }

  void reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    requests_ = batches_ = fallbacks_ = 0;
    histogram_.clear();
    fetch_.clear();
    encode_.clear();
    load_.clear();
    run_.clear();
    total_.clear();
  }

 private:
  [[nodiscard]] const std::vector<double>* phase_samples(const std::string& phase) const {
    if (phase == "fetch") return &fetch_;
    if (phase == "encode") return &encode_;
    if (phase == "load") return &load_;
    if (phase == "run") return &run_;
    if (phase == "total") return &total_;
    return nullptr;
  }

  mutable std::mutex mu_;
  std::uint64_t requests_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::map<std::size_t, std::uint64_t> histogram_;
  std::vector<double> fetch_, encode_, load_, run_, total_;
};

}  // namespace ahn
