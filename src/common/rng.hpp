#pragma once
// Deterministic, fast random number generation (xoshiro256++) plus common
// distributions. All stochastic components of the framework draw from Rng so
// every experiment is reproducible from a single seed.

#include <cstdint>
#include <cmath>
#include <limits>
#include <vector>

namespace ahn {

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Chosen over std::mt19937 for speed and small state; quality is more than
/// sufficient for workload generation and optimizer seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
    has_cached_gauss_ = false;
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double gaussian() noexcept {
    if (has_cached_gauss_) {
      has_cached_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * f;
    has_cached_gauss_ = true;
    return u * f;
  }

  /// Normal with mean mu and standard deviation sigma.
  double gaussian(double mu, double sigma) noexcept { return mu + sigma * gaussian(); }

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// Fork a statistically independent child stream (for parallel workers).
  Rng fork() noexcept { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_gauss_ = 0.0;
  bool has_cached_gauss_ = false;
};

}  // namespace ahn
