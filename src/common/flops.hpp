#pragma once
// Analytic floating-point-operation accounting.
//
// Table 3 of the paper compares FLOP counts, cache-miss rate and bandwidth of
// the original code versus the surrogate. On this testbed we have no GPU
// profiler, so kernels report their FLOP and byte traffic analytically
// through this counter; the device model (src/runtime/device.hpp) converts
// the totals into modeled execution time and cache behaviour.

#include <atomic>
#include <cstdint>

namespace ahn {

/// Aggregated operation counts for one kernel invocation or phase.
struct OpCounts {
  std::uint64_t flops = 0;        ///< floating point operations
  std::uint64_t bytes_read = 0;   ///< bytes loaded from memory
  std::uint64_t bytes_written = 0;///< bytes stored to memory

  OpCounts& operator+=(const OpCounts& o) noexcept {
    flops += o.flops;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }

  [[nodiscard]] std::uint64_t bytes_total() const noexcept {
    return bytes_read + bytes_written;
  }

  /// Arithmetic intensity (FLOPs per byte); 0 when no memory traffic.
  [[nodiscard]] double intensity() const noexcept {
    const std::uint64_t b = bytes_total();
    return b > 0 ? static_cast<double>(flops) / static_cast<double>(b) : 0.0;
  }
};

inline OpCounts operator+(OpCounts a, const OpCounts& b) noexcept { return a += b; }

/// Global accumulation point; kernels that want their cost modeled call
/// FlopCounter::add. Scoped regions can snapshot/diff. Counters are relaxed
/// atomics: the serving runtime runs inference kernels from many client and
/// pool threads concurrently, and each field is an independent tally.
class FlopCounter {
 public:
  static FlopCounter& instance() noexcept {
    static FlopCounter c;
    return c;
  }

  void add(const OpCounts& c) noexcept {
    flops_.fetch_add(c.flops, std::memory_order_relaxed);
    bytes_read_.fetch_add(c.bytes_read, std::memory_order_relaxed);
    bytes_written_.fetch_add(c.bytes_written, std::memory_order_relaxed);
  }
  void reset() noexcept {
    flops_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] OpCounts total() const noexcept {
    return {flops_.load(std::memory_order_relaxed),
            bytes_read_.load(std::memory_order_relaxed),
            bytes_written_.load(std::memory_order_relaxed)};
  }

 private:
  std::atomic<std::uint64_t> flops_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

/// RAII region: captures the OpCounts added between construction and read().
class FlopRegion {
 public:
  FlopRegion() noexcept : start_(FlopCounter::instance().total()) {}

  [[nodiscard]] OpCounts delta() const noexcept {
    const OpCounts now = FlopCounter::instance().total();
    OpCounts d;
    d.flops = now.flops - start_.flops;
    d.bytes_read = now.bytes_read - start_.bytes_read;
    d.bytes_written = now.bytes_written - start_.bytes_written;
    return d;
  }

 private:
  OpCounts start_;
};

}  // namespace ahn
