#include "common/table.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace ahn {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  AHN_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  AHN_CHECK_MSG(row.size() == header_.size(),
                "row arity " << row.size() << " != header arity " << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << "\n";
  };

  emit_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace ahn
