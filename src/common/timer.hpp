#pragma once
// Wall-clock timing utilities. All framework phase accounting (offline trace
// generation, BO search, autoencoder training; online fetch/encode/load/run)
// is measured through these.

#include <chrono>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ahn {

/// Monotonic stopwatch. start() on construction; seconds() reads elapsed.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double microseconds() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations; used for the paper's overhead analysis
/// (section 7.3) where online time is split into fetch / encode / load / run.
///
/// Internally synchronized: one accumulator may be passed by pointer into
/// Orchestrator::run_model and shared across concurrent run_model_async
/// requests — every member may be called from any thread. Reads return
/// values (entries() copies), never references into guarded state.
class PhaseAccumulator {
 public:
  PhaseAccumulator() = default;
  PhaseAccumulator(const PhaseAccumulator& other) { *this = other; }
  PhaseAccumulator& operator=(const PhaseAccumulator& other) {
    if (this != &other) {
      std::scoped_lock lock(mu_, other.mu_);
      entries_ = other.entries_;
      index_ = other.index_;
    }
    return *this;
  }

  void add(const std::string& phase, double seconds) {
    const std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = index_.try_emplace(phase, entries_.size());
    if (inserted) entries_.push_back({phase, 0.0, 0});
    entries_[it->second].seconds += seconds;
    entries_[it->second].count += 1;
  }

  [[nodiscard]] double total() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return total_locked();
  }

  [[nodiscard]] double seconds(const std::string& phase) const {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(phase);
    return it == index_.end() ? 0.0 : entries_[it->second].seconds;
  }

  /// Fraction of the accumulated total spent in `phase` (0 if nothing timed).
  [[nodiscard]] double fraction(const std::string& phase) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const double t = total_locked();
    if (t <= 0.0) return 0.0;
    auto it = index_.find(phase);
    return it == index_.end() ? 0.0 : entries_[it->second].seconds / t;
  }

  struct Entry {
    std::string phase;
    double seconds = 0.0;
    std::size_t count = 0;
  };

  /// Consistent copy of the accumulated entries (in first-seen order).
  [[nodiscard]] std::vector<Entry> entries() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    index_.clear();
  }

 private:
  [[nodiscard]] double total_locked() const noexcept {
    double t = 0.0;
    for (const auto& e : entries_) t += e.seconds;
    return t;
  }

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// RAII helper: adds the scope's duration to an accumulator on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseAccumulator& acc, std::string phase)
      : acc_(acc), phase_(std::move(phase)) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() { acc_.add(phase_, timer_.seconds()); }

 private:
  PhaseAccumulator& acc_;
  std::string phase_;
  Timer timer_;
};

}  // namespace ahn
