#pragma once
// Typed error taxonomy for the serving runtime. The client API boundary
// (run_model / run_model_async / run_model_batched) reports failures as
// Status / Result<T> values instead of raw ahn::Error exceptions, so callers
// can branch on *why* a request failed (deadline, shutdown, QoI rejection,
// transient device fault, ...) without string-matching exception text.
// AHN_CHECK remains the contract-violation path (programmer errors still
// throw); Status covers expected runtime failure modes.

#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace ahn {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< malformed request (bad row shape, null deadline, ...)
  kNotFound,           ///< missing tensor key
  kModelUnavailable,   ///< unknown / unregistered model name
  kDeadlineExceeded,   ///< request expired before (or while) being served
  kTransientFailure,   ///< retriable fault persisted past the retry budget
  kQoIRejected,        ///< §7.1 quality miss with no original-code fallback
  kShuttingDown,       ///< runtime is draining; request was not accepted
  kInternal,           ///< invariant failure escaping a serving thread
};

[[nodiscard]] constexpr const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kModelUnavailable: return "MODEL_UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kTransientFailure: return "TRANSIENT_FAILURE";
    case StatusCode::kQoIRejected: return "QOI_REJECTED";
    case StatusCode::kShuttingDown: return "SHUTTING_DOWN";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// A status code plus an optional human-readable detail message.
class Status {
 public:
  Status() noexcept = default;  ///< OK
  explicit Status(StatusCode code, std::string message = "")
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() noexcept { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the Status explaining its absence (StatusOr-style). An OK
/// Result always holds a value; a non-OK Result never does.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    AHN_CHECK_MSG(!status_.is_ok(), "OK Result must carry a value");
  }
  /*implicit*/ Result(StatusCode code) : Result(Status(code)) {}

  [[nodiscard]] bool is_ok() const noexcept { return status_.is_ok(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }
  [[nodiscard]] StatusCode code() const noexcept { return status_.code(); }

  [[nodiscard]] T& value() {
    AHN_CHECK_MSG(is_ok(), "value() on non-OK Result: " << status_.to_string());
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    AHN_CHECK_MSG(is_ok(), "value() on non-OK Result: " << status_.to_string());
    return *value_;
  }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;           // OK unless constructed from a non-OK Status
  std::optional<T> value_;  // engaged iff status_ is OK
};

}  // namespace ahn
