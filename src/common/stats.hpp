#pragma once
// Small statistics helpers used throughout evaluation: the paper reports a
// harmonic-mean speedup (section 7.1), hit rates, and percentiles.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace ahn {

[[nodiscard]] inline double mean(std::span<const double> v) {
  AHN_CHECK(!v.empty());
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Harmonic mean; the paper's headline "5.50x average speedup" is a harmonic
/// mean across applications. All entries must be positive.
[[nodiscard]] inline double harmonic_mean(std::span<const double> v) {
  AHN_CHECK(!v.empty());
  double s = 0.0;
  for (double x : v) {
    AHN_CHECK_MSG(x > 0.0, "harmonic mean requires positive values");
    s += 1.0 / x;
  }
  return static_cast<double>(v.size()) / s;
}

[[nodiscard]] inline double variance(std::span<const double> v) {
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

[[nodiscard]] inline double stddev(std::span<const double> v) {
  return std::sqrt(variance(v));
}

/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] inline double percentile(std::vector<double> v, double p) {
  AHN_CHECK(!v.empty());
  AHN_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

[[nodiscard]] inline double median(std::vector<double> v) {
  return percentile(std::move(v), 50.0);
}

/// Relative error |a - b| / |b|, with the convention that b == 0 compares
/// absolutely. Used by QoI acceptance checks (Eqn 3).
[[nodiscard]] inline double relative_error(double a, double b) noexcept {
  const double diff = std::abs(a - b);
  const double denom = std::abs(b);
  return denom > 0.0 ? diff / denom : diff;
}

}  // namespace ahn
