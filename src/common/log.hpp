#pragma once
// Structured leveled logger. Every line carries an ISO-8601 UTC timestamp,
// the level, a component tag, and — when the obs layer is active — the
// current trace id, so serving-path log lines can be joined against span
// records (docs/OBSERVABILITY.md). Benches and the pipeline narrate
// progress at Info; tests run quiet by default (level set via the
// AHN_LOG_LEVEL env var or set_level).
//
// Thread-safety: the level lives in a std::atomic<int> (set_level from one
// thread while others write is race-free), the sink is serialized by a
// mutex, and the trace-id provider is an atomic function pointer.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace ahn {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, ErrorLevel = 3, Off = 4 };

class Log {
 public:
  /// Returns the current trace id for the calling thread (0 = none). The
  /// obs tracing layer installs its thread-local span lookup here.
  using TraceIdFn = std::uint64_t (*)();

  [[nodiscard]] static LogLevel level() noexcept {
    return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
  }

  static void set_level(LogLevel lvl) noexcept {
    level_store().store(static_cast<int>(lvl), std::memory_order_relaxed);
  }

  static void set_trace_provider(TraceIdFn fn) noexcept {
    trace_provider().store(fn, std::memory_order_relaxed);
  }

  static void write(LogLevel lvl, const std::string& msg) { write(lvl, "ahn", msg); }

  static void write(LogLevel lvl, const char* component, const std::string& msg) {
    if (static_cast<int>(lvl) < static_cast<int>(level())) return;
    // Format outside the sink lock; only the final emit is serialized.
    std::ostringstream line;
    append_timestamp(line);
    line << " [" << name(lvl) << "] " << component;
    if (const TraceIdFn fn = trace_provider().load(std::memory_order_relaxed)) {
      if (const std::uint64_t trace = fn(); trace != 0) {
        line << " trace=" << trace;
      }
    }
    line << " " << msg << "\n";
    static std::mutex mu;
    const std::lock_guard<std::mutex> lock(mu);
    std::cerr << line.str();
  }

 private:
  static std::atomic<int>& level_store() noexcept {
    static std::atomic<int> lvl{static_cast<int>(init_level())};
    return lvl;
  }

  static std::atomic<TraceIdFn>& trace_provider() noexcept {
    static std::atomic<TraceIdFn> fn{nullptr};
    return fn;
  }

  static void append_timestamp(std::ostream& os) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000;
    std::tm tm{};
    gmtime_r(&secs, &tm);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                  tm.tm_min, tm.tm_sec, static_cast<int>(ms));
    os << buf;
  }

  static LogLevel init_level() noexcept {
    if (const char* env = std::getenv("AHN_LOG_LEVEL")) {
      const std::string s(env);
      if (s == "debug") return LogLevel::Debug;
      if (s == "info") return LogLevel::Info;
      if (s == "warn") return LogLevel::Warn;
      if (s == "error") return LogLevel::ErrorLevel;
      if (s == "off") return LogLevel::Off;
    }
    return LogLevel::Warn;
  }

  static const char* name(LogLevel lvl) noexcept {
    switch (lvl) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::ErrorLevel: return "error";
      default: return "?";
    }
  }
};

#define AHN_LOG_C(lvl, component, expr)                      \
  do {                                                       \
    if (static_cast<int>(lvl) >=                             \
        static_cast<int>(::ahn::Log::level())) {             \
      std::ostringstream os_;                                \
      os_ << expr;                                           \
      ::ahn::Log::write(lvl, component, os_.str());          \
    }                                                        \
  } while (0)

#define AHN_LOG(lvl, expr) AHN_LOG_C(lvl, "ahn", expr)

#define AHN_INFO(expr) AHN_LOG(::ahn::LogLevel::Info, expr)
#define AHN_DEBUG(expr) AHN_LOG(::ahn::LogLevel::Debug, expr)
#define AHN_WARN(expr) AHN_LOG(::ahn::LogLevel::Warn, expr)

#define AHN_INFO_C(component, expr) AHN_LOG_C(::ahn::LogLevel::Info, component, expr)
#define AHN_DEBUG_C(component, expr) AHN_LOG_C(::ahn::LogLevel::Debug, component, expr)
#define AHN_WARN_C(component, expr) AHN_LOG_C(::ahn::LogLevel::Warn, component, expr)

}  // namespace ahn
