#pragma once
// Minimal leveled logger. Benches and the pipeline narrate progress at Info;
// tests run quiet by default (level set via AHN_LOG_LEVEL env or set_level).

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace ahn {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, ErrorLevel = 3, Off = 4 };

class Log {
 public:
  static LogLevel& level() noexcept {
    static LogLevel lvl = init_level();
    return lvl;
  }

  static void set_level(LogLevel lvl) noexcept { level() = lvl; }

  static void write(LogLevel lvl, const std::string& msg) {
    if (static_cast<int>(lvl) < static_cast<int>(level())) return;
    static std::mutex mu;
    const std::lock_guard<std::mutex> lock(mu);
    std::cerr << "[" << name(lvl) << "] " << msg << "\n";
  }

 private:
  static LogLevel init_level() noexcept {
    if (const char* env = std::getenv("AHN_LOG_LEVEL")) {
      const std::string s(env);
      if (s == "debug") return LogLevel::Debug;
      if (s == "info") return LogLevel::Info;
      if (s == "warn") return LogLevel::Warn;
      if (s == "error") return LogLevel::ErrorLevel;
      if (s == "off") return LogLevel::Off;
    }
    return LogLevel::Warn;
  }

  static const char* name(LogLevel lvl) noexcept {
    switch (lvl) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::ErrorLevel: return "error";
      default: return "?";
    }
  }
};

#define AHN_LOG(lvl, expr)                                   \
  do {                                                       \
    std::ostringstream os_;                                  \
    os_ << expr;                                             \
    ::ahn::Log::write(lvl, os_.str());                       \
  } while (0)

#define AHN_INFO(expr) AHN_LOG(::ahn::LogLevel::Info, expr)
#define AHN_DEBUG(expr) AHN_LOG(::ahn::LogLevel::Debug, expr)
#define AHN_WARN(expr) AHN_LOG(::ahn::LogLevel::Warn, expr)

}  // namespace ahn
