#pragma once
// Error handling: checked invariants throw ahn::Error with a formatted
// message. Hot loops use AHN_DCHECK which compiles out in release builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ahn {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace ahn

#define AHN_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) ::ahn::detail::fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define AHN_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::ahn::detail::fail(#cond, __FILE__, __LINE__, os_.str());          \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define AHN_DCHECK(cond) ((void)0)
#else
#define AHN_DCHECK(cond) AHN_CHECK(cond)
#endif
