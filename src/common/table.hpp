#pragma once
// ASCII table rendering. Every bench prints the paper's tables/figures as
// aligned text tables through this helper so the harness output is directly
// comparable with the paper's rows and series.

#include <string>
#include <vector>

namespace ahn {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders the table with column alignment and a header separator.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ahn
