#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

namespace ahn::obs {

namespace {

/// Reads until the end of the request headers ("\r\n\r\n") or `budget_ms`
/// elapses. Returns false on timeout/EOF-before-headers/oversize.
bool read_request_head(int fd, double budget_seconds, std::string* out) {
  constexpr std::size_t kMaxHead = 16 * 1024;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(budget_seconds);
  char buf[2048];
  while (out->find("\r\n\r\n") == std::string::npos &&
         out->find("\n\n") == std::string::npos) {
    const auto left = deadline - std::chrono::steady_clock::now();
    const int left_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
    if (left_ms <= 0 || out->size() > kMaxHead) return false;
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, left_ms);
    if (pr <= 0) {
      if (pr < 0 && errno == EINTR) continue;
      return false;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    out->append(buf, static_cast<std::size_t>(n));
  }
  return true;
}

/// Parses "GET /path?query HTTP/1.1" out of the raw head. Returns false on
/// anything that is not an HTTP request line.
bool parse_request_line(const std::string& head, HttpRequest* req) {
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  std::istringstream is(line);
  std::string target, version;
  if (!(is >> req->method >> target >> version)) return false;
  if (version.rfind("HTTP/", 0) != 0) return false;
  const std::size_t q = target.find('?');
  req->path = target.substr(0, q);
  req->query = q == std::string::npos ? "" : target.substr(q + 1);
  return !req->path.empty() && req->path.front() == '/';
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& res, bool head_only) {
  std::ostringstream os;
  os << "HTTP/1.1 " << res.status << " " << http_status_reason(res.status)
     << "\r\nContent-Type: " << res.content_type
     << "\r\nContent-Length: " << res.body.size()
     << "\r\nConnection: close\r\n\r\n";
  if (!head_only) os << res.body;
  send_all(fd, os.str());
}

}  // namespace

const char* http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

HttpServer::HttpServer(Options opts) : opts_(std::move(opts)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::add_route(std::string path, Handler handler) {
  for (auto& [p, h] : routes_) {
    if (p == path) {
      h = std::move(handler);
      return;
    }
  }
  routes_.emplace_back(std::move(path), std::move(handler));
}

bool HttpServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, opts_.backlog) != 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> drained;
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    drained.swap(conn_threads_);
  }
  for (std::thread& t : drained) {
    if (t.joinable()) t.join();
  }
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, 200);  // short timeout: prompt stop()
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (in_flight_.load(std::memory_order_relaxed) >= opts_.max_connections) {
      HttpResponse res;
      res.status = 503;
      res.body = "too many connections\n";
      send_response(fd, res, /*head_only=*/false);
      served_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    std::thread worker([this, fd] {
      handle_connection(fd);
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    });
    const std::lock_guard<std::mutex> lock(conn_mu_);
    // Opportunistically reap finished-but-unjoined threads so a long-lived
    // server under steady scrapes does not grow the join list unboundedly.
    // (Threads are only detached from the list once joined; stop() joins
    // whatever remains.)
    if (conn_threads_.size() >= 2 * opts_.max_connections) {
      for (std::thread& t : conn_threads_) {
        if (t.joinable()) t.join();
      }
      conn_threads_.clear();
    }
    conn_threads_.push_back(std::move(worker));
  }
}

void HttpServer::handle_connection(int fd) {
  std::string head;
  HttpRequest req;
  HttpResponse res;
  if (!read_request_head(fd, opts_.read_timeout_seconds, &head) ||
      !parse_request_line(head, &req)) {
    res.status = 400;
    res.body = "bad request\n";
    send_response(fd, res, /*head_only=*/false);
  } else if (req.method != "GET" && req.method != "HEAD") {
    res.status = 405;
    res.body = "method not allowed\n";
    send_response(fd, res, req.method == "HEAD");
  } else {
    dispatch(req, res);
    send_response(fd, res, req.method == "HEAD");
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void HttpServer::dispatch(const HttpRequest& req, HttpResponse& res) const {
  for (const auto& [path, handler] : routes_) {
    if (path == req.path) {
      handler(req, res);
      return;
    }
  }
  res.status = 404;
  res.body = "not found\n";
}

}  // namespace ahn::obs
