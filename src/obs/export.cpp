#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace ahn::obs {

namespace {

/// JSON has no Inf/NaN; empty-histogram min/max and any stray non-finite
/// aggregate are exported as 0.
void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

class Writer {
 public:
  Writer(std::ostream& os, const ExportOptions& opts) : os_(os), opts_(opts) {}

  void open(char bracket) {
    os_ << bracket;
    ++depth_;
    first_ = true;
  }

  void close(char bracket) {
    --depth_;
    if (!first_) newline();
    os_ << bracket;
    first_ = false;
  }

  /// Starts the next element (comma + newline + indent).
  void item() {
    if (!first_) os_ << ",";
    first_ = false;
    newline();
  }

  void key(const std::string& k) {
    item();
    os_ << '"' << json_escape(k) << "\": ";
  }

  std::ostream& os() { return os_; }

 private:
  void newline() {
    os_ << "\n";
    const int spaces = opts_.base_indent + depth_ * opts_.indent;
    for (int i = 0; i < spaces; ++i) os_ << ' ';
  }

  std::ostream& os_;
  const ExportOptions& opts_;
  int depth_ = 0;
  bool first_ = true;
};

void write_histogram(Writer& w, const HistogramSnapshot& h) {
  w.open('{');
  w.key("count");
  w.os() << h.count;
  w.key("sum");
  write_number(w.os(), h.sum);
  w.key("mean");
  write_number(w.os(), h.mean());
  w.key("min");
  write_number(w.os(), h.count > 0 ? h.min : 0.0);
  w.key("max");
  write_number(w.os(), h.count > 0 ? h.max : 0.0);
  w.key("p50");
  write_number(w.os(), h.percentile(50.0));
  w.key("p95");
  write_number(w.os(), h.percentile(95.0));
  w.key("p99");
  write_number(w.os(), h.percentile(99.0));
  w.key("buckets");
  w.open('[');
  for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    w.item();
    w.os() << "{\"le\": ";
    write_number(w.os(), LatencyHistogram::lower_bound(i + 1));
    w.os() << ", \"count\": " << h.buckets[i] << "}";
  }
  w.close(']');
  w.close('}');
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void export_json(std::ostream& os, const RegistrySnapshot& registry,
                 const Tracer* tracer, const ExportOptions& opts) {
  Writer w(os, opts);
  w.open('{');

  w.key("counters");
  w.open('{');
  for (const auto& [name, v] : registry.counters) {
    w.key(name);
    w.os() << v;
  }
  w.close('}');

  w.key("gauges");
  w.open('{');
  for (const auto& [name, v] : registry.gauges) {
    w.key(name);
    write_number(w.os(), v);
  }
  w.close('}');

  w.key("histograms");
  w.open('{');
  for (const auto& [name, h] : registry.histograms) {
    w.key(name);
    write_histogram(w, h);
  }
  w.close('}');

  if (tracer != nullptr) {
    const TracerSnapshot spans = tracer->snapshot();
    w.key("spans");
    w.open('{');
    for (const auto& [name, agg] : spans.aggregates) {
      w.key(name);
      w.open('{');
      w.key("count");
      w.os() << agg.count;
      w.key("total_seconds");
      write_number(w.os(), agg.total_seconds);
      w.key("mean_seconds");
      write_number(w.os(), agg.mean_seconds());
      w.key("min_seconds");
      write_number(w.os(), agg.min_seconds);
      w.key("max_seconds");
      write_number(w.os(), agg.max_seconds);
      w.close('}');
    }
    w.close('}');

    w.key("recent_spans");
    w.open('[');
    const std::size_t n = spans.recent.size();
    const std::size_t from = n > opts.max_recent_spans ? n - opts.max_recent_spans : 0;
    for (std::size_t i = from; i < n; ++i) {
      const SpanRecord& r = spans.recent[i];
      w.item();
      w.os() << "{\"name\": \"" << json_escape(r.name) << "\", \"trace\": " << r.trace_id
             << ", \"span\": " << r.span_id << ", \"parent\": " << r.parent_span_id
             << ", \"start\": ";
      write_number(w.os(), r.start_seconds);
      w.os() << ", \"duration\": ";
      write_number(w.os(), r.duration_seconds);
      w.os() << "}";
    }
    w.close(']');
  }

  w.close('}');
}

void export_json(std::ostream& os, const MetricsRegistry& registry,
                 const Tracer* tracer, const ExportOptions& opts) {
  export_json(os, registry.snapshot(), tracer, opts);
}

std::string export_json_string(const MetricsRegistry& registry, const Tracer* tracer,
                               const ExportOptions& opts) {
  std::ostringstream os;
  export_json(os, registry, tracer, opts);
  return os.str();
}

bool export_json_file(const std::string& path, const MetricsRegistry& registry,
                      const Tracer* tracer, const ExportOptions& opts) {
  std::ofstream os(path);
  if (!os) return false;
  export_json(os, registry, tracer, opts);
  os << "\n";
  return static_cast<bool>(os);
}

}  // namespace ahn::obs
