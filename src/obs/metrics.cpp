#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ahn::obs {

namespace {

/// log10 span of the histogram range, shared by index and bound math.
const double kLogMin = std::log10(LatencyHistogram::kMinValue);
const double kLogSpan = std::log10(LatencyHistogram::kMaxValue) - kLogMin;

/// Lock-free min/max/sum folding on atomic doubles (relaxed CAS loops; the
/// aggregates are advisory statistics, not synchronization points).
void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramSnapshot::percentile(double p) const {
  AHN_CHECK(p >= 0.0 && p <= 100.0);
  if (count == 0) return 0.0;
  if (p <= 0.0) return min;    // the extremes are tracked exactly,
  if (p >= 100.0) return max;  // not at bucket resolution
  // Same rank convention as the exact reference (ahn::percentile): p spans
  // the order statistics 0 .. count-1 inclusive.
  const double rank = p / 100.0 * static_cast<double>(count - 1);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(below + in_bucket)) {
      const double lo = LatencyHistogram::lower_bound(i);
      const double hi = LatencyHistogram::lower_bound(i + 1);
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
      return std::clamp(lo + (hi - lo) * frac, min, max);
    }
    below += in_bucket;
  }
  return max;  // rank beyond the last occupied bucket (p == 100)
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets[i] += other.buckets[i];
    // Any exemplar beats none; between two, keep our own (arbitrary but
    // associative enough for advisory trace links).
    if (exemplars[i].trace_id == 0) exemplars[i] = other.exemplars[i];
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

std::size_t LatencyHistogram::bucket_index(double seconds) noexcept {
  if (!(seconds > kMinValue)) return 0;  // also catches NaN and non-positive
  if (seconds >= kMaxValue) return kBuckets - 1;
  const double pos =
      (std::log10(seconds) - kLogMin) / kLogSpan * static_cast<double>(kBuckets);
  return std::min<std::size_t>(static_cast<std::size_t>(pos), kBuckets - 1);
}

double LatencyHistogram::lower_bound(std::size_t i) noexcept {
  if (i == 0) return 0.0;  // bucket 0 sweeps up everything below kMinValue
  return std::pow(10.0, kLogMin +
                            kLogSpan * static_cast<double>(i) /
                                static_cast<double>(kBuckets));
}

void LatencyHistogram::record(double seconds, std::uint64_t trace_id) noexcept {
  if (std::isnan(seconds)) return;
  const std::size_t b = bucket_index(seconds);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  if (trace_id != 0) {
    exemplar_value_[b].store(seconds, std::memory_order_relaxed);
    exemplar_trace_[b].store(trace_id, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, seconds);
  atomic_min(min_, seconds);
  atomic_max(max_, seconds);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.exemplars[i].trace_id = exemplar_trace_[i].load(std::memory_order_relaxed);
    s.exemplars[i].value = exemplar_value_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  // Concurrent recording can momentarily leave count behind the buckets (or
  // ahead); reconcile so percentile() ranks against what it can actually see.
  std::uint64_t bucketed = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) bucketed += s.buckets[i];
  s.count = bucketed;
  return s;
}

void LatencyHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& e : exemplar_trace_) e.store(0, std::memory_order_relaxed);
  for (auto& e : exemplar_value_) e.store(0.0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

void RegistrySnapshot::merge(const RegistrySnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, h] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(name, h);
    if (!inserted) it->second.merge(h);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& c = counters_[name];
  if (c == nullptr) c = std::make_unique<Counter>();
  return *c;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& g = gauges_[name];
  if (g == nullptr) g = std::make_unique<Gauge>();
  return *g;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<LatencyHistogram>& h = histograms_[name];
  if (h == nullptr) h = std::make_unique<LatencyHistogram>();
  return *h;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  return s;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace ahn::obs
