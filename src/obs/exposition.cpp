#include "obs/exposition.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/export.hpp"

namespace ahn::obs {

namespace {

bool valid_name_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
  return first ? alpha : (alpha || (c >= '0' && c <= '9'));
}

std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

/// One sample's identity: sanitized family name + normalized label pairs.
struct SampleName {
  std::string family;
  std::vector<std::pair<std::string, std::string>> labels;  // key, escaped value
};

/// Splits `serving.breaker_state{model="heat3d"}` into family + labels.
/// Names without a label block (the common case) parse as family-only; a
/// malformed block is kept readable by folding it into the family name.
SampleName parse_name(const std::string& name) {
  SampleName out;
  const std::size_t open = name.find('{');
  std::string base = name;
  if (open != std::string::npos && !name.empty() && name.back() == '}') {
    base = name.substr(0, open);
    const std::string inner = name.substr(open + 1, name.size() - open - 2);
    std::size_t pos = 0;
    while (pos < inner.size()) {
      std::size_t comma = inner.find(',', pos);
      if (comma == std::string::npos) comma = inner.size();
      const std::string pair = inner.substr(pos, comma - pos);
      pos = comma + 1;
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) continue;
      std::string value = pair.substr(eq + 1);
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      out.labels.emplace_back(prometheus_sanitize_name(pair.substr(0, eq)),
                              prometheus_escape_label(value));
    }
  } else if (open != std::string::npos) {
    base = name;  // unbalanced block: sanitize the whole thing
  }
  out.family = prometheus_sanitize_name(base);
  return out;
}

void write_labels(std::ostream& os,
                  const std::vector<std::pair<std::string, std::string>>& labels,
                  const std::string& extra_key = {},
                  const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << "=\"" << v << '"';
  }
  if (!extra_key.empty()) {
    if (!first) os << ',';
    os << extra_key << "=\"" << extra_value << '"';
  }
  os << '}';
}

template <typename Value>
using FamilyMap =
    std::map<std::string, std::vector<std::pair<SampleName, Value>>>;

template <typename Value>
FamilyMap<Value> group_families(const std::map<std::string, Value>& metrics) {
  FamilyMap<Value> families;
  for (const auto& [name, value] : metrics) {
    SampleName sn = parse_name(name);
    families[sn.family].emplace_back(std::move(sn), value);
  }
  return families;
}

/// Escapes a HELP line (backslash and newline per the exposition format).
std::string escape_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// The process-wide HELP registry behind register_metric_help/metric_help.
/// Seeded with curated text for every family the runtime emits today; the
/// metric_help fallback keeps unknown families covered.
class HelpRegistry {
 public:
  static HelpRegistry& instance() {
    static HelpRegistry reg;
    return reg;
  }

  void set(const std::string& family, const std::string& help) {
    const std::lock_guard<std::mutex> lock(mu_);
    help_[prometheus_sanitize_name(family)] = help;
  }

  std::string get(const std::string& family) const {
    const std::string key = prometheus_sanitize_name(family);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = help_.find(key);
      if (it != help_.end()) return it->second;
    }
    // Prefix fallbacks keep derived families (per-kind fault counters,
    // per-transition breaker counters) described without one entry each.
    if (key.rfind("serving_fault_", 0) == 0) {
      return "Injected faults of one kind (suffix) observed by the serving path.";
    }
    if (key.rfind("serving_breaker_transition_", 0) == 0) {
      return "QoI circuit-breaker state transitions of one kind (suffix).";
    }
    return "Auto-HPCnet metric; see docs/OBSERVABILITY.md for the inventory.";
  }

 private:
  HelpRegistry() {
    const std::pair<const char*, const char*> seed[] = {
        {"serving.requests_served", "Requests served by this orchestrator."},
        {"serving.batches_executed", "Coalesced micro-batches executed."},
        {"serving.qoi_fallbacks", "Rows re-served by the original code after a QoI miss."},
        {"serving.faults_injected", "Total injected faults (all kinds)."},
        {"serving.retries", "Retry attempts after transient faults."},
        {"serving.deadline_misses", "Requests expired (kDeadlineExceeded) before service."},
        {"serving.shutdown_rejections", "Requests refused with kShuttingDown."},
        {"serving.breaker_fallbacks", "Requests routed to original code by an open breaker."},
        {"serving.batch_queue_depth", "Rows currently pending in the batching queue."},
        {"serving.latency.fetch", "Modeled per-request fetch-phase latency (seconds)."},
        {"serving.latency.encode", "Modeled per-request encode-phase latency (seconds)."},
        {"serving.latency.load", "Modeled per-request weight-load latency (seconds)."},
        {"serving.latency.run", "Modeled per-request inference latency (seconds)."},
        {"serving.latency.total", "Modeled per-request total online latency (seconds)."},
        {"serving.model_version", "Active registry version serving this model."},
        {"serving.breaker_state", "QoI breaker state (0 closed / 1 open / 2 half-open)."},
        {"serving.rollout_state", "Rollout stage of this model's live candidate."},
        {"serving.rollout.promotions", "Rollout candidates promoted to serving."},
        {"serving.rollout.rollbacks", "Rollout candidates discarded (rolled back)."},
        {"serving.shadow.rows", "Rows double-scored while shadowing a candidate."},
        {"serving.shadow.active_qoi_miss", "Shadowed rows where the active model missed QoI."},
        {"serving.shadow.candidate_qoi_miss", "Shadowed rows where the candidate missed QoI."},
        {"serving.canary.rows", "Rows served by the canary candidate."},
        {"serving.canary.qoi_miss", "Canary-served rows that missed QoI."},
        {"serving.retrain.coalesced", "Retrain triggers coalesced into an in-flight cycle."},
        {"cluster.requests_served", "Requests served across all shards."},
        {"cluster.failovers", "Requests re-routed off a dead or draining shard."},
        {"cluster.breaker_reroutes", "Requests steered away from an open breaker."},
        {"cluster.shard_failures", "Shards marked dead (fail_shard or kill race)."},
        {"cluster.shards_alive", "Shards currently routable."},
        {"cluster.shards_total", "Shards configured in the cluster."},
        {"cluster.latency.total", "Cluster-merged per-request total latency (seconds)."},
        {"cluster.modeled_rps", "Device-bound aggregate throughput (rows/second)."},
        {"cluster.max_drift_score", "Worst per-model drift score across shards."},
        {"cluster.registry_version", "Registry fan-out epoch applied to shards."},
        {"cluster.drift_score", "Worst drift score for one model across shards."},
        {"cluster.model_version", "Cluster registry's active version of one model."},
        {"cluster.slo_burn_rate", "Worst per-shard SLO burn rate (per window)."},
        {"cluster.slo_burning", "1 when any shard's burn-rate alert condition holds."},
        {"slo.burn_rate", "Error-budget burn rate over one window (1 = on budget)."},
        {"slo.burning", "1 while the multi-window burn alert condition holds."},
        {"slo.events", "Request outcomes evaluated against this SLO."},
        {"slo.bad_events", "Outcomes that consumed error budget."},
        {"slo.alerts", "Edge-triggered slo_burn alerts raised."},
        {"http.requests_served", "HTTP requests answered by the exposition server."},
    };
    for (const auto& [name, help] : seed) {
      help_[prometheus_sanitize_name(name)] = help;
    }
  }

  mutable std::mutex mu_;
  std::map<std::string, std::string> help_;
};

}  // namespace

void register_metric_help(const std::string& family, const std::string& help) {
  HelpRegistry::instance().set(family, help);
}

std::string metric_help(const std::string& family) {
  return HelpRegistry::instance().get(family);
}

std::string prometheus_sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    out.push_back(valid_name_char(c, i == 0) ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void export_prometheus(std::ostream& os, const RegistrySnapshot& snapshot,
                       const PrometheusOptions& opts) {
  const auto head = [&os](const std::string& family, const char* type) {
    os << "# HELP " << family << ' ' << escape_help(metric_help(family)) << '\n';
    os << "# TYPE " << family << ' ' << type << '\n';
  };
  for (const auto& [family, samples] : group_families(snapshot.counters)) {
    head(family, "counter");
    for (const auto& [sn, value] : samples) {
      os << family;
      write_labels(os, sn.labels);
      os << ' ' << value << '\n';
    }
  }
  for (const auto& [family, samples] : group_families(snapshot.gauges)) {
    head(family, "gauge");
    for (const auto& [sn, value] : samples) {
      os << family;
      write_labels(os, sn.labels);
      os << ' ' << format_value(value) << '\n';
    }
  }
  for (const auto& [family, samples] : group_families(snapshot.histograms)) {
    head(family, "histogram");
    for (const auto& [sn, h] : samples) {
      // Cumulative buckets; empty buckets are elided (le stays increasing,
      // the running count stays monotone, the scrape stays compact).
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
        if (h.buckets[i] == 0) continue;
        cumulative += h.buckets[i];
        os << family << "_bucket";
        write_labels(os, sn.labels, "le",
                     format_value(LatencyHistogram::lower_bound(i + 1)));
        os << ' ' << cumulative;
        if (opts.exemplars && h.exemplars[i].trace_id != 0) {
          // OpenMetrics exemplar: links this bucket to one captured trace.
          os << " # {trace_id=\"" << h.exemplars[i].trace_id << "\"} "
             << format_value(h.exemplars[i].value);
        }
        os << '\n';
      }
      os << family << "_bucket";
      write_labels(os, sn.labels, "le", "+Inf");
      os << ' ' << h.count << '\n';
      os << family << "_sum";
      write_labels(os, sn.labels);
      os << ' ' << format_value(std::isfinite(h.sum) ? h.sum : 0.0) << '\n';
      os << family << "_count";
      write_labels(os, sn.labels);
      os << ' ' << h.count << '\n';
    }
  }
  if (opts.openmetrics_eof) os << "# EOF\n";
}

void export_prometheus(std::ostream& os, const MetricsRegistry& registry) {
  export_prometheus(os, registry.snapshot());
}

std::string export_prometheus_string(const RegistrySnapshot& snapshot,
                                     const PrometheusOptions& opts) {
  std::ostringstream os;
  export_prometheus(os, snapshot, opts);
  return os.str();
}

bool export_prometheus_file(const std::string& path,
                            const RegistrySnapshot& snapshot) {
  std::ofstream out(path);
  if (!out) return false;
  export_prometheus(out, snapshot);
  out.flush();
  return static_cast<bool>(out);
}

bool export_prometheus_file(const std::string& path,
                            const MetricsRegistry& registry) {
  return export_prometheus_file(path, registry.snapshot());
}

void export_chrome_trace(std::ostream& os, const TracerSnapshot& snapshot,
                         const std::string& process_name) {
  os << "{\"traceEvents\": [\n";
  os << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", "
        "\"args\": {\"name\": \""
     << json_escape(process_name) << "\"}}";
  // Span ids are unique, so the ring doubles as a parent lookup table for
  // the cross-thread flow arrows below.
  std::map<std::uint64_t, const SpanRecord*> by_span;
  for (const SpanRecord& s : snapshot.recent) by_span[s.span_id] = &s;
  for (const SpanRecord& s : snapshot.recent) {
    os << ",\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << s.thread_id
       << ", \"name\": \"" << json_escape(s.name)
       << "\", \"ts\": " << s.start_seconds * 1e6
       << ", \"dur\": " << s.duration_seconds * 1e6
       << ", \"args\": {\"trace_id\": " << s.trace_id
       << ", \"span_id\": " << s.span_id
       << ", \"parent_span_id\": " << s.parent_span_id << "}}";
    // A parent on a different thread gets a flow-event pair (s -> f) so the
    // viewer draws the hand-off arrow; same-thread nesting needs none. The
    // flow id is the child span id (unique per edge).
    const auto parent = s.parent_span_id != 0 ? by_span.find(s.parent_span_id)
                                              : by_span.end();
    if (parent != by_span.end() && parent->second->thread_id != s.thread_id) {
      const SpanRecord& p = *parent->second;
      // Anchor the start inside the parent span and the finish at the
      // child's start; clamp so the viewer never sees f before s.
      const double start_ts =
          std::min(p.start_seconds, s.start_seconds) * 1e6;
      const double finish_ts = std::max(s.start_seconds * 1e6, start_ts);
      os << ",\n  {\"ph\": \"s\", \"pid\": 1, \"tid\": " << p.thread_id
         << ", \"name\": \"handoff\", \"cat\": \"flow\", \"id\": " << s.span_id
         << ", \"ts\": " << start_ts << "}";
      os << ",\n  {\"ph\": \"f\", \"bp\": \"e\", \"pid\": 1, \"tid\": "
         << s.thread_id << ", \"name\": \"handoff\", \"cat\": \"flow\", \"id\": "
         << s.span_id << ", \"ts\": " << finish_ts << "}";
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

std::string export_chrome_trace_string(const TracerSnapshot& snapshot,
                                       const std::string& process_name) {
  std::ostringstream os;
  export_chrome_trace(os, snapshot, process_name);
  return os.str();
}

bool export_chrome_trace_file(const std::string& path, const Tracer& tracer,
                              const std::string& process_name) {
  std::ofstream out(path);
  if (!out) return false;
  export_chrome_trace(out, tracer.snapshot(), process_name);
  out.flush();
  return static_cast<bool>(out);
}

// --------------------------------------------------------- PeriodicExporter

PeriodicExporter::PeriodicExporter(Options opts) : opts_(std::move(opts)) {
  thread_ = std::thread([this] { run(); });
}

PeriodicExporter::~PeriodicExporter() { stop(); }

void PeriodicExporter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  export_once();  // final pass: files reflect the end state
}

void PeriodicExporter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto period = std::chrono::duration<double>(
      opts_.period_seconds > 0.0 ? opts_.period_seconds : 0.001);
  while (!stopping_) {
    if (cv_.wait_for(lock, period, [this] { return stopping_; })) break;
    lock.unlock();
    export_once();
    lock.lock();
  }
}

void PeriodicExporter::export_once() {
  bool ok = true;
  if (opts_.registry != nullptr) {
    if (!opts_.prometheus_path.empty()) {
      ok = export_prometheus_file(opts_.prometheus_path, *opts_.registry) && ok;
    }
    if (!opts_.json_path.empty()) {
      ok = export_json_file(opts_.json_path, *opts_.registry, opts_.tracer) && ok;
    }
  }
  if (opts_.tracer != nullptr && !opts_.chrome_trace_path.empty()) {
    ok = export_chrome_trace_file(opts_.chrome_trace_path, *opts_.tracer) && ok;
  }
  last_ok_.store(ok, std::memory_order_relaxed);
  exports_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ahn::obs
