#pragma once
// Structured JSON export of the observability state (docs/OBSERVABILITY.md):
// registry counters/gauges, histogram summaries with p50/p95/p99 and the
// non-empty buckets, and tracer span aggregates plus the most recent span
// records. The benches embed this as the "metrics" section of their
// BENCH_*.json files; CI smoke-gates the result for well-formedness.

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ahn::obs {

struct ExportOptions {
  int indent = 2;                    ///< spaces per nesting level
  int base_indent = 0;               ///< outer indentation (for embedding)
  std::size_t max_recent_spans = 32; ///< newest span records to include
};

/// Writes one JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {...}, "spans": {...}, "recent_spans": [...]}. The span
/// sections are omitted when `tracer` is null. No trailing newline, so the
/// object can be embedded as a value inside a larger document.
void export_json(std::ostream& os, const RegistrySnapshot& registry,
                 const Tracer* tracer = nullptr, const ExportOptions& opts = {});

/// Convenience overload snapshotting the live registry.
void export_json(std::ostream& os, const MetricsRegistry& registry,
                 const Tracer* tracer = nullptr, const ExportOptions& opts = {});

[[nodiscard]] std::string export_json_string(const MetricsRegistry& registry,
                                             const Tracer* tracer = nullptr,
                                             const ExportOptions& opts = {});

/// Writes a standalone document (object + newline) to `path`; returns false
/// (without throwing) when the file cannot be opened.
bool export_json_file(const std::string& path, const MetricsRegistry& registry,
                      const Tracer* tracer = nullptr, const ExportOptions& opts = {});

/// Escapes `s` for use inside a JSON string literal (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace ahn::obs
