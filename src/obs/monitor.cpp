#include "obs/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"

namespace ahn::obs {

// ------------------------------------------------------------- P2Quantile

P2Quantile::P2Quantile(double p) : p_(p) {
  AHN_CHECK_MSG(p > 0.0 && p < 1.0, "P2 quantile must be in (0, 1)");
}

void P2Quantile::observe(double v) {
  if (std::isnan(v)) return;
  if (count_ < 5) {
    heights_[count_++] = v;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
    }
    return;
  }

  // Locate the marker cell containing v (extreme markers track min/max).
  std::size_t k = 0;
  if (v < heights_[0]) {
    heights_[0] = v;
    k = 0;
  } else if (v >= heights_[4]) {
    heights_[4] = v;
    k = 3;
  } else {
    while (k < 3 && v >= heights_[k + 1]) ++k;
  }
  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  ++count_;

  const double n = static_cast<double>(count_);
  const std::array<double, 5> desired = {
      1.0, 1.0 + (n - 1.0) * p_ / 2.0, 1.0 + (n - 1.0) * p_,
      1.0 + (n - 1.0) * (1.0 + p_) / 2.0, n};

  // Nudge each interior marker toward its desired position: parabolic
  // (piecewise-quadratic) interpolation when it keeps the heights ordered,
  // linear otherwise.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double nm = positions_[i - 1], ni = positions_[i], np = positions_[i + 1];
      double q = heights_[i] +
                 s / (np - nm) *
                     ((ni - nm + s) * (heights_[i + 1] - heights_[i]) / (np - ni) +
                      (np - ni - s) * (heights_[i] - heights_[i - 1]) / (ni - nm));
      if (!(heights_[i - 1] < q && q < heights_[i + 1])) {
        const std::size_t j = s > 0.0 ? i + 1 : i - 1;
        q = heights_[i] +
            s * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
      }
      heights_[i] = q;
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ <= 5) {
    // Exact while the marker array still holds raw samples (sorted at 5).
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(count_));
    const double rank = p_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= count_) return sorted[count_ - 1];
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
  }
  return heights_[2];
}

// ----------------------------------------------------------- FeatureSketch

FeatureSketch::PerFeature::PerFeature() {
  for (std::size_t i = 0; i < kDeciles; ++i) {
    deciles[i] = P2Quantile(0.1 * static_cast<double>(i + 1));
  }
}

FeatureSketch::FeatureSketch(std::size_t features) : features_(features) {}

void FeatureSketch::observe(std::span<const double> row) {
  if (features_.empty() && !row.empty()) features_.resize(row.size());
  AHN_CHECK_MSG(row.size() == features_.size(),
                "sketch expects " << features_.size() << " features, row has "
                                  << row.size());
  ++rows_;
  for (std::size_t f = 0; f < row.size(); ++f) {
    const double v = row[f];
    if (std::isnan(v)) continue;
    PerFeature& pf = features_[f];
    ++pf.n;
    if (pf.n == 1) {
      pf.min = pf.max = v;
    } else {
      pf.min = std::min(pf.min, v);
      pf.max = std::max(pf.max, v);
    }
    const double delta = v - pf.mean;
    pf.mean += delta / static_cast<double>(pf.n);
    pf.m2 += delta * (v - pf.mean);
    for (P2Quantile& q : pf.deciles) q.observe(v);
  }
}

double FeatureSketch::mean(std::size_t f) const {
  AHN_CHECK(f < features_.size());
  return features_[f].mean;
}

double FeatureSketch::stddev(std::size_t f) const {
  AHN_CHECK(f < features_.size());
  const PerFeature& pf = features_[f];
  return pf.n > 1 ? std::sqrt(pf.m2 / static_cast<double>(pf.n - 1)) : 0.0;
}

double FeatureSketch::decile(std::size_t f, std::size_t i) const {
  AHN_CHECK(f < features_.size() && i < kDeciles);
  return features_[f].deciles[i].value();
}

FeatureSummary FeatureSketch::summary(std::size_t f) const {
  AHN_CHECK(f < features_.size());
  const PerFeature& pf = features_[f];
  FeatureSummary s;
  s.count = pf.n;
  s.mean = pf.mean;
  s.stddev = stddev(f);
  s.min = pf.min;
  s.max = pf.max;
  for (std::size_t i = 0; i < kDeciles; ++i) s.deciles[i] = pf.deciles[i].value();
  return s;
}

// ----------------------------------------------------------- DriftDetector

DriftDetector::DriftDetector(std::shared_ptr<const FeatureSketch> reference,
                             DriftOptions opts)
    : opts_(opts) {
  AHN_CHECK(reference != nullptr);
  AHN_CHECK_MSG(reference->rows() > 0, "reference sketch is empty");
  live_.resize(reference->features());
  for (std::size_t f = 0; f < live_.size(); ++f) {
    LiveFeature& lf = live_[f];
    lf.ref_mean = reference->mean(f);
    lf.ref_sigma = reference->stddev(f);
    for (std::size_t i = 0; i < FeatureSketch::kDeciles; ++i) {
      lf.edges[i] = reference->decile(f, i);
      // P² estimates can jitter out of order by epsilon; bucket edges must
      // be monotone for the upper_bound search.
      if (i > 0) lf.edges[i] = std::max(lf.edges[i], lf.edges[i - 1]);
    }
  }
}

void DriftDetector::observe(std::span<const double> row) {
  AHN_CHECK_MSG(row.size() == live_.size(),
                "detector expects " << live_.size() << " features, row has "
                                    << row.size());
  ++rows_;
  for (std::size_t f = 0; f < row.size(); ++f) {
    const double v = row[f];
    if (std::isnan(v)) continue;
    LiveFeature& lf = live_[f];
    ++lf.n;
    const double delta = v - lf.mean;
    lf.mean += delta / static_cast<double>(lf.n);
    lf.m2 += delta * (v - lf.mean);
    const auto b = static_cast<std::size_t>(
        std::upper_bound(lf.edges.begin(), lf.edges.end(), v) - lf.edges.begin());
    ++lf.buckets[b];
  }
}

DriftReport DriftDetector::report() const {
  DriftReport r;
  r.live_rows = rows_;
  r.features.resize(live_.size());
  if (rows_ < opts_.min_samples) return r;  // too few samples to say anything

  constexpr std::size_t kBucketCount = FeatureSketch::kDeciles + 1;
  for (std::size_t f = 0; f < live_.size(); ++f) {
    const LiveFeature& lf = live_[f];
    if (lf.n == 0) continue;
    FeatureDrift& fd = r.features[f];

    // Standardized mean shift; constant reference features use a tiny floor
    // so any live movement on them registers as drift.
    const double sigma =
        lf.ref_sigma > 0.0
            ? lf.ref_sigma
            : std::max(1e-12, 1e-6 * std::abs(lf.ref_mean));
    fd.mean_shift = std::abs(lf.mean - lf.ref_mean) / sigma;

    // PSI over the reference deciles: each bucket holds ~10% of the training
    // distribution by construction. Laplace smoothing keeps empty live
    // buckets finite.
    const double n = static_cast<double>(lf.n);
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      const double actual = (static_cast<double>(lf.buckets[b]) + 0.5) /
                            (n + 0.5 * static_cast<double>(kBucketCount));
      const double expected = 1.0 / static_cast<double>(kBucketCount);
      fd.psi += (actual - expected) * std::log(actual / expected);
    }

    if (fd.score() > r.score) {
      r.score = fd.score();
      r.worst_feature = f;
    }
  }
  return r;
}

// --------------------------------------------------------------- RateTrend

RateTrend::RateTrend(TrendOptions opts)
    : opts_(opts), ring_(std::max<std::size_t>(1, opts.window), false) {}

void RateTrend::record(bool event) noexcept {
  total_.fetch_add(1, std::memory_order_relaxed);
  if (event) events_.fetch_add(1, std::memory_order_relaxed);
  const double x = event ? 1.0 : 0.0;
  bool seeded = seeded_.load(std::memory_order_relaxed);
  if (!seeded &&
      seeded_.compare_exchange_strong(seeded, true, std::memory_order_relaxed)) {
    ewma_.store(x, std::memory_order_relaxed);
    return;
  }
  double cur = ewma_.load(std::memory_order_relaxed);
  while (!ewma_.compare_exchange_weak(
      cur, opts_.ewma_alpha * x + (1.0 - opts_.ewma_alpha) * cur,
      std::memory_order_relaxed)) {
  }
}

void RateTrend::record_window(bool event) noexcept {
  const std::size_t cap = ring_.size();
  if (ring_count_.load(std::memory_order_relaxed) == cap) {
    if (ring_[ring_next_]) ring_events_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    ring_count_.fetch_add(1, std::memory_order_relaxed);
  }
  ring_[ring_next_] = event;
  if (event) ring_events_.fetch_add(1, std::memory_order_relaxed);
  ring_next_ = (ring_next_ + 1) % cap;
}

void RateTrend::reset() noexcept {
  ewma_.store(0.0, std::memory_order_relaxed);
  seeded_.store(false, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  events_.store(0, std::memory_order_relaxed);
  std::fill(ring_.begin(), ring_.end(), false);
  ring_next_ = 0;
  ring_count_.store(0, std::memory_order_relaxed);
  ring_events_.store(0, std::memory_order_relaxed);
}

double RateTrend::window_rate() const noexcept {
  const std::size_t n = ring_count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(ring_events_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

// --------------------------------------------------------------- AlertSink

AlertSink::AlertSink(std::size_t ring_capacity)
    : capacity_(std::max<std::size_t>(1, ring_capacity)) {
  ring_.reserve(capacity_);
}

void AlertSink::set_callback(Callback cb) {
  const std::lock_guard<std::mutex> lock(mu_);
  callback_ = std::move(cb);
}

void AlertSink::add_callback(Callback cb) {
  if (!cb) return;
  const std::lock_guard<std::mutex> lock(mu_);
  extra_callbacks_.push_back(std::move(cb));
}

void AlertSink::raise(Alert alert) {
  alert.sequence = raised_.fetch_add(1, std::memory_order_relaxed) + 1;
  by_kind_[static_cast<std::size_t>(alert.kind)].fetch_add(
      1, std::memory_order_relaxed);
  AHN_WARN_C("health", alert_kind_name(alert.kind)
                           << " model=" << alert.model << " value=" << alert.value
                           << " threshold=" << alert.threshold << " "
                           << alert.message);
  Callback cb;
  std::vector<Callback> extras;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(alert);
    } else {
      ring_[ring_next_] = alert;
      ring_next_ = (ring_next_ + 1) % capacity_;
    }
    cb = callback_;
    extras = extra_callbacks_;
  }
  // Outside the sink lock: callbacks may export, log, or page — but they
  // must not block for long and must not call back into the raising monitor.
  if (cb) cb(alert);
  for (const Callback& extra : extras) extra(alert);
}

std::vector<Alert> AlertSink::recent() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Alert> out;
  out.reserve(ring_.size());
  if (ring_.size() == capacity_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_));
  } else {
    out = ring_;
  }
  return out;
}

// ------------------------------------------------------------ ModelMonitor

namespace {

MonitorOptions normalized(MonitorOptions opts) {
  opts.sample_every = std::max<std::uint64_t>(1, opts.sample_every);
  opts.drift_check_every = std::max<std::uint64_t>(1, opts.drift_check_every);
  return opts;
}

}  // namespace

ModelMonitor::ModelMonitor(std::string model, MonitorOptions opts, AlertSink* alerts)
    : model_(std::move(model)),
      opts_(normalized(opts)),
      alerts_(alerts),
      qoi_(opts.qoi_trend) {}

void ModelMonitor::set_reference(std::shared_ptr<const FeatureSketch> reference) {
  const std::lock_guard<std::mutex> lock(mu_);
  reference_ = std::move(reference);
  rebaseline_locked();
}

void ModelMonitor::rebaseline() {
  const std::lock_guard<std::mutex> lock(mu_);
  rebaseline_locked();
}

void ModelMonitor::rebaseline_locked() {
  drift_ = reference_ != nullptr
               ? std::make_unique<DriftDetector>(reference_, opts_.drift)
               : nullptr;
  rows_sampled_ = 0;
  drift_score_ = 0.0;
  drift_worst_feature_ = 0;
  drift_active_ = false;
  // The served model changed (or was re-baselined after a rollout): QoI
  // evidence against the old weights is void, and both edge-triggers re-arm
  // so a *second* decay episode alerts again.
  qoi_active_ = false;
  qoi_.reset();
}

bool ModelMonitor::tick_sampler() noexcept {
  return sample_ticker_.fetch_add(1, std::memory_order_relaxed) %
             opts_.sample_every ==
         0;
}

void ModelMonitor::record_request(std::span<const double> row, bool qoi_ok) {
  if (!opts_.enabled) return;
  requests_.fetch_add(1, std::memory_order_relaxed);
  qoi_.record(!qoi_ok);
  if (!tick_sampler()) return;  // the lock-free fast path ends here
  const bool miss = !qoi_ok;
  observe_sampled(row, &miss);
}

void ModelMonitor::observe_input(std::span<const double> row) {
  if (!opts_.enabled) return;
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!tick_sampler()) return;
  observe_sampled(row, nullptr);
}

void ModelMonitor::observe_sampled(std::span<const double> row, const bool* qoi_miss) {
  // Alerts detected under the lock are raised after it: the sink callback
  // must be able to read this monitor's health without deadlocking.
  Alert pending[2];
  std::size_t n_pending = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (qoi_miss != nullptr) qoi_.record_window(*qoi_miss);
    ++rows_sampled_;
    if (drift_ != nullptr && row.size() == drift_->features()) {
      drift_->observe(row);
      if (rows_sampled_ % opts_.drift_check_every == 0) {
        const DriftReport rep = drift_->report();
        drift_score_ = rep.score;
        drift_worst_feature_ = rep.worst_feature;
        if (!drift_active_ && rep.score >= opts_.drift_threshold) {
          drift_active_ = true;
          Alert& a = pending[n_pending++];
          a.kind = AlertKind::kDriftDetected;
          a.model = model_;
          a.value = rep.score;
          a.threshold = opts_.drift_threshold;
          std::ostringstream msg;
          msg << "live inputs drifted from the training distribution (worst "
                 "feature "
              << rep.worst_feature << ", " << rep.live_rows << " sampled rows)";
          a.message = msg.str();
        } else if (drift_active_ && rep.score < opts_.drift_threshold) {
          drift_active_ = false;  // recovered; re-arm the edge trigger
        }
      }
    }
    const double ewma = qoi_.ewma();
    if (qoi_.total() >= opts_.qoi_trend.min_samples) {
      if (!qoi_active_ && ewma >= opts_.qoi_alert_rate) {
        qoi_active_ = true;
        Alert& a = pending[n_pending++];
        a.kind = AlertKind::kQoiDegraded;
        a.model = model_;
        a.value = ewma;
        a.threshold = opts_.qoi_alert_rate;
        a.message = "QoI miss trend degraded (EWMA over served requests)";
      } else if (qoi_active_ && ewma < opts_.qoi_alert_rate) {
        qoi_active_ = false;
      }
    }
  }
  if (alerts_ != nullptr) {
    for (std::size_t i = 0; i < n_pending; ++i) alerts_->raise(pending[i]);
  }
}

void ModelMonitor::record_breaker_open(double window_fallback_rate,
                                       double trip_threshold) {
  if (!opts_.enabled || alerts_ == nullptr) return;
  Alert a;
  a.kind = AlertKind::kBreakerOpen;
  a.model = model_;
  a.value = window_fallback_rate;
  a.threshold = trip_threshold;
  a.message = "QoI circuit breaker opened; traffic routed to original code";
  alerts_->raise(a);
}

ModelHealth ModelMonitor::health() const {
  ModelHealth h;
  h.model = model_;
  h.requests_observed = requests_.load(std::memory_order_relaxed);
  h.qoi_miss_ewma = qoi_.ewma();
  h.qoi_miss_window_rate = qoi_.window_rate();

  const std::lock_guard<std::mutex> lock(mu_);
  h.rows_sampled = rows_sampled_;
  h.has_reference = reference_ != nullptr;
  // Score is recomputed fresh on read (reads are rare, writes are hot);
  // the alert flags stay the edge-trigger state the serving path maintains.
  if (drift_ != nullptr && rows_sampled_ > 0) {
    const DriftReport rep = drift_->report();
    h.drift_score = rep.score;
    h.drift_worst_feature = rep.worst_feature;
  } else {
    h.drift_score = drift_score_;
    h.drift_worst_feature = drift_worst_feature_;
  }
  h.drift_alert = drift_active_;
  h.qoi_alert = qoi_active_;
  h.retrain_recommended = drift_active_ || qoi_active_;
  return h;
}

}  // namespace ahn::obs
