#include "obs/slo.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/timer.hpp"
#include "obs/export.hpp"
#include "obs/exposition.hpp"

namespace ahn::obs {

namespace {

/// Irregular-interval EWMA step: fold observation `x` into `ewma` given
/// `dt` seconds since the previous observation and time constant `tau`.
/// dt = 0 degenerates to "replace nothing" (w = 1) so bursts at one instant
/// still accumulate through repeated application with tiny dt.
double ewma_step(double ewma, double x, double dt, double tau) {
  if (tau <= 0.0) return x;
  const double w = std::exp(-std::max(dt, 0.0) / tau);
  return x + (ewma - x) * w;
}

/// A spec's error budget (burn denominator), floored away from zero.
double budget(const SloSpec& spec) {
  return std::max(1.0 - spec.objective, 1e-9);
}

}  // namespace

SloEngine::SloEngine(std::vector<SloSpec> specs, AlertSink* alerts,
                     MetricsRegistry* registry, ClockFn clock)
    : alerts_(alerts), registry_(registry), clock_(std::move(clock)) {
  if (!clock_) {
    // Default clock: seconds since engine construction (monotonic).
    clock_ = [epoch = std::make_shared<Timer>()] { return epoch->seconds(); };
  }
  states_.reserve(specs.size());
  for (SloSpec& spec : specs) {
    auto st = std::make_unique<SpecState>(std::move(spec));
    if (registry_ != nullptr) {
      const std::string slo_lbl = "{slo=\"" + st->spec.name + "\"";
      const std::string win = slo_lbl + ",window=\"";
      st->fast_gauge = &registry_->gauge("slo.burn_rate" + win + "fast\"}");
      st->mid_gauge = &registry_->gauge("slo.burn_rate" + win + "mid\"}");
      st->slow_gauge = &registry_->gauge("slo.burn_rate" + win + "slow\"}");
      st->burning_gauge = &registry_->gauge("slo.burning" + slo_lbl + "}");
      st->events_counter = &registry_->counter("slo.events" + slo_lbl + "}");
      st->bad_counter = &registry_->counter("slo.bad_events" + slo_lbl + "}");
      st->alerts_counter = &registry_->counter("slo.alerts" + slo_lbl + "}");
    }
    states_.push_back(std::move(st));
  }
}

void SloEngine::observe(SpecState& st, double x) {
  const double t = now();
  {
    const std::lock_guard<std::mutex> lock(st.mu);
    const double dt = st.last_seconds < 0.0 ? 0.0 : t - st.last_seconds;
    st.fast_ewma = ewma_step(st.fast_ewma, x, dt, st.spec.fast_window_seconds);
    st.mid_ewma = ewma_step(st.mid_ewma, x, dt, st.spec.mid_window_seconds);
    st.slow_ewma = ewma_step(st.slow_ewma, x, dt, st.spec.slow_window_seconds);
    st.last_seconds = t;
    ++st.events;
    if (x > 0.0) ++st.bad;
  }
  if (st.events_counter != nullptr) st.events_counter->increment();
  if (x > 0.0 && st.bad_counter != nullptr) st.bad_counter->increment();
}

void SloEngine::record(const std::string& model, double latency_seconds, bool ok,
                       bool qoi_fallback) {
  for (const std::unique_ptr<SpecState>& st : states_) {
    const SloSpec& spec = st->spec;
    if (!spec.model.empty() && spec.model != model) continue;
    double x = 0.0;
    switch (spec.kind) {
      case SloKind::kAvailability: x = ok ? 0.0 : 1.0; break;
      case SloKind::kLatency:
        x = (!ok || latency_seconds > spec.threshold_seconds) ? 1.0 : 0.0;
        break;
      case SloKind::kQoiFallbackRate: x = qoi_fallback ? 1.0 : 0.0; break;
    }
    observe(*st, x);
  }
  const std::uint64_t n = ticker_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % eval_every_.load(std::memory_order_relaxed) == 0) evaluate();
}

void SloEngine::record_dropped(const std::string& model) {
  for (const std::unique_ptr<SpecState>& st : states_) {
    const SloSpec& spec = st->spec;
    if (!spec.model.empty() && spec.model != model) continue;
    if (spec.kind != SloKind::kAvailability) continue;
    observe(*st, 1.0);
  }
}

void SloEngine::burns_locked(const SpecState& st, double at_seconds, double* fast,
                             double* mid, double* slow) const {
  // Between observations the rate estimate decays toward zero: an idle (or
  // recovered) stream stops burning even though no new event arrives to
  // push the EWMA down.
  const double dt = st.last_seconds < 0.0 ? 0.0 : at_seconds - st.last_seconds;
  const double b = budget(st.spec);
  *fast = ewma_step(st.fast_ewma, 0.0, dt, st.spec.fast_window_seconds) / b;
  *mid = ewma_step(st.mid_ewma, 0.0, dt, st.spec.mid_window_seconds) / b;
  *slow = ewma_step(st.slow_ewma, 0.0, dt, st.spec.slow_window_seconds) / b;
}

SloStatus SloEngine::status_one(const SpecState& st, double at_seconds) const {
  SloStatus s;
  const std::lock_guard<std::mutex> lock(st.mu);
  s.spec = st.spec;
  s.events = st.events;
  s.bad_events = st.bad;
  burns_locked(st, at_seconds, &s.fast_burn, &s.mid_burn, &s.slow_burn);
  s.burning = st.burning;
  s.alerts_raised = st.alerts;
  return s;
}

void SloEngine::evaluate_one(SpecState& st, double at_seconds) {
  double fast = 0.0, mid = 0.0, slow = 0.0;
  bool fired = false;
  Alert alert;
  {
    const std::lock_guard<std::mutex> lock(st.mu);
    burns_locked(st, at_seconds, &fast, &mid, &slow);
    const bool page = fast >= st.spec.page_burn_threshold &&
                      mid >= st.spec.page_burn_threshold;
    const bool ticket = mid >= st.spec.ticket_burn_threshold &&
                        slow >= st.spec.ticket_burn_threshold;
    const bool condition = page || ticket;
    if (condition && !st.burning) {
      // Edge trigger: one alert per burn episode; re-arms when it clears.
      st.burning = true;
      ++st.alerts;
      fired = true;
      alert.kind = AlertKind::kSloBurn;
      alert.model = st.spec.model.empty() ? st.spec.name : st.spec.model;
      alert.value = std::max(fast, mid);
      alert.threshold =
          page ? st.spec.page_burn_threshold : st.spec.ticket_burn_threshold;
      std::ostringstream msg;
      msg << "SLO '" << st.spec.name << "' (" << slo_kind_name(st.spec.kind)
          << ") burning error budget: fast=" << fast << " mid=" << mid
          << " slow=" << slow << " (" << (page ? "page" : "ticket")
          << " threshold " << alert.threshold << ")";
      alert.message = msg.str();
    } else if (!condition && st.burning) {
      st.burning = false;
    }
  }
  if (st.fast_gauge != nullptr) {
    st.fast_gauge->set(fast);
    st.mid_gauge->set(mid);
    st.slow_gauge->set(slow);
    st.burning_gauge->set(st.burning ? 1.0 : 0.0);
  }
  if (fired) {
    if (st.alerts_counter != nullptr) st.alerts_counter->increment();
    if (alerts_ != nullptr) alerts_->raise(alert);
  }
}

std::vector<SloStatus> SloEngine::evaluate() {
  const double t = now();
  std::vector<SloStatus> out;
  out.reserve(states_.size());
  for (const std::unique_ptr<SpecState>& st : states_) {
    evaluate_one(*st, t);
    out.push_back(status_one(*st, t));
  }
  return out;
}

std::vector<SloStatus> SloEngine::status() const {
  const double t = now();
  std::vector<SloStatus> out;
  out.reserve(states_.size());
  for (const std::unique_ptr<SpecState>& st : states_) {
    out.push_back(status_one(*st, t));
  }
  return out;
}

std::string SloEngine::status_json() const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const SloStatus& s : status()) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"slo\": \"" << json_escape(s.spec.name) << "\", \"kind\": \""
       << slo_kind_name(s.spec.kind) << "\", \"model\": \""
       << json_escape(s.spec.model) << "\", \"objective\": " << s.spec.objective
       << ", \"events\": " << s.events << ", \"bad_events\": " << s.bad_events
       << ", \"fast_burn\": " << s.fast_burn << ", \"mid_burn\": " << s.mid_burn
       << ", \"slow_burn\": " << s.slow_burn
       << ", \"burning\": " << (s.burning ? "true" : "false")
       << ", \"alerts_raised\": " << s.alerts_raised << "}";
  }
  os << "\n]";
  return os.str();
}

}  // namespace ahn::obs
